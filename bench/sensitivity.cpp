// Sensitivity of the deadline miss model to the overload arrival curve —
// the quantitative backing for the reproduction's Table II calibration
// (EXPERIMENTS.md): the paper's dmm_c(76)=4 and dmm_c(250)=5 pin the
// unpublished industrial delta_minus curve into 200-tick intervals, and
// no pure sporadic model can reproduce the table.
//
//   $ ./bench_sensitivity

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/case_studies.hpp"
#include "core/twca.hpp"
#include "io/tables.hpp"
#include "util/strings.hpp"

namespace {

using namespace wharf;
using namespace wharf::case_studies;

/// Case study with a parameterizable overload curve (shared by both
/// overload chains, keeping their distinct delta_minus(2)).
System case_study_with_curve(Time d3, Time d4, Time tail) {
  const System base = date17_case_study();
  std::vector<Chain> chains;
  for (int i = 0; i < base.size(); ++i) {
    const Chain& c = base.chain(i);
    Chain::Spec s;
    s.name = c.name();
    s.kind = c.kind();
    s.deadline = c.deadline();
    s.overload = c.is_overload();
    s.tasks = c.tasks();
    if (c.is_overload()) {
      const Time d2 = c.arrival().delta_minus(2);
      s.arrival = delta_curve({d2, d3, d4}, tail);
    } else {
      s.arrival = c.arrival_ptr();
    }
    chains.emplace_back(std::move(s));
  }
  return System("sweep", std::move(chains));
}

void print_tables() {
  std::cout << "=== dmm_c around k=76 as a function of the overload delta_minus(3) ===\n"
            << "(value dmm_c(76)=4 with the jump exactly at k=76 holds for\n"
            << " d3 in [15131, 15331); the paper's oddly specific k=76 is most\n"
            << " plausibly the first k where dmm increments)\n\n";
  io::TextTable d3_table({"delta_minus(3)", "dmm_c(75)", "dmm_c(76)", "jump at 76"});
  for (Time d3 : {14900, 15100, 15130, 15131, 15200, 15330, 15331, 15500}) {
    const System sys = case_study_with_curve(d3, 50'000, 35'000);
    TwcaAnalyzer analyzer{sys};
    const Count v75 = analyzer.dmm(kSigmaC, 75).dmm;
    const Count v76 = analyzer.dmm(kSigmaC, 76).dmm;
    d3_table.add_row({util::cat(d3), util::cat(v75), util::cat(v76),
                      (v75 == 3 && v76 == 4) ? "yes" : "no"});
  }
  std::cout << d3_table.render() << '\n';

  std::cout << "=== dmm_c around k=250 as a function of the overload delta_minus(4) ===\n"
            << "(value dmm_c(250)=5 with the jump exactly at k=250 holds for\n"
            << " d4 in [49931, 50131))\n\n";
  io::TextTable d4_table({"delta_minus(4)", "dmm_c(249)", "dmm_c(250)", "jump at 250"});
  for (Time d4 : {49700, 49930, 49931, 50000, 50130, 50131, 50400}) {
    const System sys = case_study_with_curve(15'200, d4, 35'000);
    TwcaAnalyzer analyzer{sys};
    const Count v249 = analyzer.dmm(kSigmaC, 249).dmm;
    const Count v250 = analyzer.dmm(kSigmaC, 250).dmm;
    d4_table.add_row({util::cat(d4), util::cat(v249), util::cat(v250),
                      (v249 == 4 && v250 == 5) ? "yes" : "no"});
  }
  std::cout << d4_table.render() << '\n';

  std::cout << "=== No pure sporadic curve can reproduce Table II ===\n"
            << "dmm_c under sporadic overload with min inter-arrival g (both chains):\n\n";
  io::TextTable sporadic_table({"g", "dmm_c(3)", "dmm_c(76)", "dmm_c(250)"});
  for (Time g : {300, 600, 700, 2000, 5110, 5200, 7600}) {
    const System base = date17_case_study();
    std::vector<Chain> chains;
    for (int i = 0; i < base.size(); ++i) {
      const Chain& c = base.chain(i);
      Chain::Spec s;
      s.name = c.name();
      s.kind = c.kind();
      s.deadline = c.deadline();
      s.overload = c.is_overload();
      s.tasks = c.tasks();
      s.arrival = c.is_overload() ? sporadic(g) : c.arrival_ptr();
      chains.emplace_back(std::move(s));
    }
    const System sys("sporadic_sweep", std::move(chains));
    TwcaAnalyzer analyzer{sys};
    sporadic_table.add_row({util::cat(g), util::cat(analyzer.dmm(kSigmaC, 3).dmm),
                            util::cat(analyzer.dmm(kSigmaC, 76).dmm),
                            util::cat(analyzer.dmm(kSigmaC, 250).dmm)});
  }
  std::cout << sporadic_table.render();
  std::cout << "Matching dmm_c(3)=3 forces g < 731, but then eta over the k=76 window\n"
               "(15331 ticks) is >= 21 — far above the paper's 4.  Matching dmm_c(76)=4\n"
               "forces g > 5110, which breaks dmm_c(3)=3 (and even dmm_c(1)).  Hence the\n"
               "calibrated rare-overload curve in case_studies.hpp.\n\n";
}

void BM_SweepPoint(benchmark::State& state) {
  for (auto _ : state) {
    const System sys = case_study_with_curve(15'200, 50'000, 35'000);
    TwcaAnalyzer analyzer{sys};
    benchmark::DoNotOptimize(analyzer.dmm(kSigmaC, 250));
  }
}
BENCHMARK(BM_SweepPoint);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
