// Reproduces Figure 5 of the paper (Experiment 2): histograms of
// dmm_c(10) and dmm_d(10) over 1000 random priority assignments of the
// case study, with the paper's headline statistics, then benchmarks the
// per-assignment analysis — all through the wharf::Engine batch API
// (one AnalysisRequest per sampled system, evaluated on the worker
// pool; reports are bit-identical for any --jobs value).
//
// Environment:
//   WHARF_FIG5_SAMPLES  (default 1000)   assignments per repetition
//   WHARF_FIG5_REPEATS  (default 3; paper used 30)
//   WHARF_JOBS          (default 0 = all hardware threads)
//
//   $ ./bench_fig5_random

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <map>

#include "core/case_studies.hpp"
#include "engine/engine.hpp"
#include "gen/random_systems.hpp"
#include "io/tables.hpp"
#include "util/strings.hpp"
#include "util/worker_pool.hpp"

namespace {

using namespace wharf;
using namespace wharf::case_studies;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

struct Fig5Stats {
  std::map<Count, Count> histogram_c;
  std::map<Count, Count> histogram_d;
  Count schedulable_c = 0;
  Count schedulable_d = 0;
  Count d_bounded_le3 = 0;  // non-schedulable sigma_d systems with dmm <= 3
  Count d_not_schedulable = 0;
};

/// One request per sampled priority assignment: dmm(10) of both chains.
std::vector<AnalysisRequest> make_workload(const System& base, int samples,
                                           std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<AnalysisRequest> requests;
  requests.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    requests.push_back(AnalysisRequest{gen::with_random_priorities(base, rng),
                                       {},
                                       {DmmQuery{"sigma_c", {10}}, DmmQuery{"sigma_d", {10}}}});
  }
  return requests;
}

Count dmm_of(const AnalysisReport& report, std::size_t query) {
  return std::get<DmmAnswer>(report.results[query].answer).curve.front().dmm;
}

Fig5Stats run_experiment(Engine& engine, const System& base, int samples, std::uint64_t seed) {
  Fig5Stats stats;
  const std::vector<AnalysisReport> reports =
      engine.run_batch(make_workload(base, samples, seed));
  for (const AnalysisReport& report : reports) {
    const Count dmm_c = dmm_of(report, 0);
    const Count dmm_d = dmm_of(report, 1);
    ++stats.histogram_c[dmm_c];
    ++stats.histogram_d[dmm_d];
    if (dmm_c == 0) ++stats.schedulable_c;
    if (dmm_d == 0) {
      ++stats.schedulable_d;
    } else {
      ++stats.d_not_schedulable;
      if (dmm_d <= 3) ++stats.d_bounded_le3;
    }
  }
  return stats;
}

void print_histogram(const char* title, const std::map<Count, Count>& h, int samples) {
  std::vector<std::string> labels;
  std::vector<Count> counts;
  for (Count v = 0; v <= 10; ++v) {
    const auto it = h.find(v);
    labels.push_back(util::cat(v));
    counts.push_back(it == h.end() ? 0 : it->second);
  }
  std::cout << title << "  (" << samples << " assignments)\n"
            << io::render_histogram(labels, counts, 50) << '\n';
}

void print_tables() {
  const int samples = env_int("WHARF_FIG5_SAMPLES", 1000);
  const int repeats = env_int("WHARF_FIG5_REPEATS", 3);
  const int jobs = env_int("WHARF_JOBS", 0);
  const System base = date17_case_study(OverloadModel::kRareOverload);
  Engine engine{EngineOptions{jobs, EngineOptions{}.cache_bytes}};

  std::cout << "=== Figure 5: dmm(10) over random priority assignments ===\n"
            << "(paper: sigma_c schedulable 633/1000, sigma_d 307/1000; for >500 of\n"
            << " the non-schedulable sigma_d systems TWCA guarantees <= 3/10 misses;\n"
            << " the paper repeated the experiment 30x with similar results)\n"
            << "(engine batch over " << (jobs == 0 ? util::hardware_jobs() : jobs)
            << " worker thread(s))\n\n";

  io::TextTable summary({"repeat", "sched. sigma_c", "sched. sigma_d",
                         "sigma_d dmm<=3 (of non-sched.)"});
  for (int rep = 0; rep < repeats; ++rep) {
    const Fig5Stats stats =
        run_experiment(engine, base, samples, 1000 + static_cast<std::uint64_t>(rep));
    if (rep == 0) {
      print_histogram("dmm_c(10)", stats.histogram_c, samples);
      print_histogram("dmm_d(10)", stats.histogram_d, samples);
    }
    summary.add_row({util::cat(rep), util::cat(stats.schedulable_c, "/", samples),
                     util::cat(stats.schedulable_d, "/", samples),
                     util::cat(stats.d_bounded_le3, "/", stats.d_not_schedulable)});
  }
  std::cout << "=== Repetition summary ===\n" << summary.render();
  std::cout << "Shape reproduced: sigma_c is schedulable for far more assignments than\n"
               "sigma_d, and TWCA bounds most non-schedulable sigma_d systems tightly.\n\n";
}

void BM_OneAssignmentBothDmms(benchmark::State& state) {
  const System base = date17_case_study(OverloadModel::kRareOverload);
  std::mt19937_64 rng(7);
  Engine engine{EngineOptions{1, EngineOptions{}.cache_bytes}};
  for (auto _ : state) {
    const AnalysisRequest request{gen::with_random_priorities(base, rng),
                                  {},
                                  {DmmQuery{"sigma_c", {10}}, DmmQuery{"sigma_d", {10}}}};
    benchmark::DoNotOptimize(engine.run(request));
  }
}
BENCHMARK(BM_OneAssignmentBothDmms);

void BM_BatchExperiment100(benchmark::State& state) {
  const System base = date17_case_study(OverloadModel::kRareOverload);
  Engine engine{EngineOptions{static_cast<int>(state.range(0)), EngineOptions{}.cache_bytes}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_experiment(engine, base, 100, 42));
  }
}
BENCHMARK(BM_BatchExperiment100)
    ->Arg(1)
    ->Arg(2)
    ->Arg(0)  // 0 = all hardware threads
    ->Unit(benchmark::kMillisecond);

void BM_RepeatedRequestHitsCache(benchmark::State& state) {
  // The artifact cache makes repeated queries on the same model
  // near-free: everything k-independent is memoized per system.
  const System base = date17_case_study(OverloadModel::kRareOverload);
  Engine engine{EngineOptions{1, EngineOptions{}.cache_bytes}};
  const AnalysisRequest request{base, {}, {DmmQuery{"sigma_c", {10}}}};
  (void)engine.run(request);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(request));
  }
}
BENCHMARK(BM_RepeatedRequestHitsCache);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
