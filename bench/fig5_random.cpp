// Reproduces Figure 5 of the paper (Experiment 2): histograms of
// dmm_c(10) and dmm_d(10) over 1000 random priority assignments of the
// case study, with the paper's headline statistics, then benchmarks the
// per-assignment analysis.
//
// Environment:
//   WHARF_FIG5_SAMPLES  (default 1000)   assignments per repetition
//   WHARF_FIG5_REPEATS  (default 3; paper used 30)
//
//   $ ./bench_fig5_random

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <map>

#include "core/case_studies.hpp"
#include "core/twca.hpp"
#include "gen/random_systems.hpp"
#include "io/tables.hpp"
#include "util/strings.hpp"

namespace {

using namespace wharf;
using namespace wharf::case_studies;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

struct Fig5Stats {
  std::map<Count, Count> histogram_c;
  std::map<Count, Count> histogram_d;
  Count schedulable_c = 0;
  Count schedulable_d = 0;
  Count d_bounded_le3 = 0;  // non-schedulable sigma_d systems with dmm <= 3
  Count d_not_schedulable = 0;
};

Fig5Stats run_experiment(const System& base, int samples, std::uint64_t seed) {
  Fig5Stats stats;
  std::mt19937_64 rng(seed);
  for (int i = 0; i < samples; ++i) {
    const System sys = gen::with_random_priorities(base, rng);
    TwcaAnalyzer analyzer{sys};
    const Count dmm_c = analyzer.dmm(kSigmaC, 10).dmm;
    const Count dmm_d = analyzer.dmm(kSigmaD, 10).dmm;
    ++stats.histogram_c[dmm_c];
    ++stats.histogram_d[dmm_d];
    if (dmm_c == 0) ++stats.schedulable_c;
    if (dmm_d == 0) {
      ++stats.schedulable_d;
    } else {
      ++stats.d_not_schedulable;
      if (dmm_d <= 3) ++stats.d_bounded_le3;
    }
  }
  return stats;
}

void print_histogram(const char* title, const std::map<Count, Count>& h, int samples) {
  std::vector<std::string> labels;
  std::vector<Count> counts;
  for (Count v = 0; v <= 10; ++v) {
    const auto it = h.find(v);
    labels.push_back(util::cat(v));
    counts.push_back(it == h.end() ? 0 : it->second);
  }
  std::cout << title << "  (" << samples << " assignments)\n"
            << io::render_histogram(labels, counts, 50) << '\n';
}

void print_tables() {
  const int samples = env_int("WHARF_FIG5_SAMPLES", 1000);
  const int repeats = env_int("WHARF_FIG5_REPEATS", 3);
  const System base = date17_case_study(OverloadModel::kRareOverload);

  std::cout << "=== Figure 5: dmm(10) over random priority assignments ===\n"
            << "(paper: sigma_c schedulable 633/1000, sigma_d 307/1000; for >500 of\n"
            << " the non-schedulable sigma_d systems TWCA guarantees <= 3/10 misses;\n"
            << " the paper repeated the experiment 30x with similar results)\n\n";

  io::TextTable summary({"repeat", "sched. sigma_c", "sched. sigma_d",
                         "sigma_d dmm<=3 (of non-sched.)"});
  for (int rep = 0; rep < repeats; ++rep) {
    const Fig5Stats stats = run_experiment(base, samples, 1000 + static_cast<std::uint64_t>(rep));
    if (rep == 0) {
      print_histogram("dmm_c(10)", stats.histogram_c, samples);
      print_histogram("dmm_d(10)", stats.histogram_d, samples);
    }
    summary.add_row({util::cat(rep), util::cat(stats.schedulable_c, "/", samples),
                     util::cat(stats.schedulable_d, "/", samples),
                     util::cat(stats.d_bounded_le3, "/", stats.d_not_schedulable)});
  }
  std::cout << "=== Repetition summary ===\n" << summary.render();
  std::cout << "Shape reproduced: sigma_c is schedulable for far more assignments than\n"
               "sigma_d, and TWCA bounds most non-schedulable sigma_d systems tightly.\n\n";
}

void BM_OneAssignmentBothDmms(benchmark::State& state) {
  const System base = date17_case_study(OverloadModel::kRareOverload);
  std::mt19937_64 rng(7);
  for (auto _ : state) {
    const System sys = gen::with_random_priorities(base, rng);
    TwcaAnalyzer analyzer{sys};
    benchmark::DoNotOptimize(analyzer.dmm(kSigmaC, 10));
    benchmark::DoNotOptimize(analyzer.dmm(kSigmaD, 10));
  }
}
BENCHMARK(BM_OneAssignmentBothDmms);

void BM_FullExperiment100(benchmark::State& state) {
  const System base = date17_case_study(OverloadModel::kRareOverload);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_experiment(base, 100, 42));
  }
}
BENCHMARK(BM_FullExperiment100)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
