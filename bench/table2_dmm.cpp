// Reproduces Table II of the paper: the deadline miss model of sigma_c at
// k = 3, 76, 250, under both overload arrival models (the calibrated
// rare-overload curve matches the paper exactly, including breakpoints),
// then benchmarks the DMM pipeline.
//
//   $ ./bench_table2_dmm

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/case_studies.hpp"
#include "core/twca.hpp"
#include "io/tables.hpp"
#include "util/strings.hpp"

namespace {

using namespace wharf;
using namespace wharf::case_studies;

void print_tables() {
  TwcaAnalyzer rare{date17_case_study(OverloadModel::kRareOverload)};
  TwcaAnalyzer literal{date17_case_study(OverloadModel::kLiteralSporadic)};

  io::TextTable table2({"k", "dmm_c(k) rare-overload", "dmm_c(k) literal", "paper"});
  const std::vector<std::pair<Count, std::string>> rows = {{3, "3"}, {76, "4"}, {250, "5"}};
  for (const auto& [k, paper] : rows) {
    table2.add_row({util::cat(k), util::cat(rare.dmm(kSigmaC, k).dmm),
                    util::cat(literal.dmm(kSigmaC, k).dmm), paper});
  }
  std::cout << "=== Table II: dmm(k) for task chain sigma_c ===\n" << table2.render();
  std::cout << "The rare-overload model reproduces the paper exactly; the literal\n"
               "sporadic reading of Figure 4 can only match k=3 (EXPERIMENTS.md has\n"
               "the impossibility argument and the calibration intervals).\n\n";

  io::TextTable breakpoints({"k", "dmm_c(k)", "note"});
  for (Count k : {75, 76, 249, 250}) {
    breakpoints.add_row({util::cat(k), util::cat(rare.dmm(kSigmaC, k).dmm),
                         (k == 76 || k == 250) ? "paper breakpoint" : ""});
  }
  std::cout << "=== Breakpoint check (rare-overload model) ===\n" << breakpoints.render() << '\n';

  const DmmResult r = rare.dmm(kSigmaC, 3);
  io::TextTable internals({"quantity", "value", "paper"});
  internals.add_row({"N_b (misses per busy window)", util::cat(r.n_b), "1 (implied)"});
  internals.add_row({"slack theta_c", util::cat(r.slack), "-"});
  internals.add_row({"unschedulable combinations", util::cat(r.unschedulable_count), "1 (c3)"});
  internals.add_row({"Omega_b, Omega_a at k=3",
                     util::cat(r.omegas[0], ", ", r.omegas[1]), "-"});
  std::cout << "=== Theorem 3 internals at k=3 ===\n" << internals.render() << '\n';

  const DmmResult d = rare.dmm(kSigmaD, 10);
  std::cout << "sigma_d: " << to_string(d.status)
            << " — needs no DMM (paper: \"sigma_d is schedulable\").\n\n";
}

void BM_DmmColdCache(benchmark::State& state) {
  const System system = date17_case_study(OverloadModel::kRareOverload);
  for (auto _ : state) {
    TwcaAnalyzer analyzer{system};
    benchmark::DoNotOptimize(analyzer.dmm(kSigmaC, state.range(0)));
  }
}
BENCHMARK(BM_DmmColdCache)->Arg(3)->Arg(76)->Arg(250);

void BM_DmmWarmCache(benchmark::State& state) {
  TwcaAnalyzer analyzer{date17_case_study(OverloadModel::kRareOverload)};
  (void)analyzer.dmm(kSigmaC, 1);  // warm the k-independent caches
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.dmm(kSigmaC, state.range(0)));
  }
}
BENCHMARK(BM_DmmWarmCache)->Arg(3)->Arg(250);

void BM_DmmCurve100Points(benchmark::State& state) {
  TwcaAnalyzer analyzer{date17_case_study(OverloadModel::kRareOverload)};
  std::vector<Count> ks;
  for (Count k = 1; k <= 100; ++k) ks.push_back(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.dmm_curve(kSigmaC, ks));
  }
}
BENCHMARK(BM_DmmCurve100Points);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
