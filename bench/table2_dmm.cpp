// Reproduces Table II of the paper: the deadline miss model of sigma_c at
// k = 3, 76, 250, under both overload arrival models (the calibrated
// rare-overload curve matches the paper exactly, including breakpoints),
// then benchmarks the DMM pipeline.  The tables are produced through the
// wharf::Engine request/response API — one request per overload model,
// all k-grids answered in one pass off the shared per-system artifacts.
//
//   $ ./bench_table2_dmm

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/case_studies.hpp"
#include "core/twca.hpp"
#include "engine/engine.hpp"
#include "io/tables.hpp"
#include "util/strings.hpp"

namespace {

using namespace wharf;
using namespace wharf::case_studies;

const DmmAnswer& dmm_answer(const AnalysisReport& report, std::size_t query) {
  return std::get<DmmAnswer>(report.results[query].answer);
}

void print_tables() {
  Engine engine;
  const std::vector<Count> table_ks = {3, 76, 250};
  const std::vector<Count> breakpoint_ks = {75, 76, 249, 250};

  // One request per overload model; the Engine shares each system's
  // k-independent artifacts across all four queries.
  const AnalysisReport rare = engine.run(AnalysisRequest{
      date17_case_study(OverloadModel::kRareOverload),
      {},
      {DmmQuery{"sigma_c", table_ks}, DmmQuery{"sigma_c", breakpoint_ks},
       DmmQuery{"sigma_d", {10}}}});
  const AnalysisReport literal = engine.run(
      AnalysisRequest{date17_case_study(), {}, {DmmQuery{"sigma_c", table_ks}}});

  io::TextTable table2({"k", "dmm_c(k) rare-overload", "dmm_c(k) literal", "paper"});
  const std::vector<std::string> paper = {"3", "4", "5"};
  for (std::size_t i = 0; i < table_ks.size(); ++i) {
    table2.add_row({util::cat(table_ks[i]), util::cat(dmm_answer(rare, 0).curve[i].dmm),
                    util::cat(dmm_answer(literal, 0).curve[i].dmm), paper[i]});
  }
  std::cout << "=== Table II: dmm(k) for task chain sigma_c ===\n" << table2.render();
  std::cout << "The rare-overload model reproduces the paper exactly; the literal\n"
               "sporadic reading of Figure 4 can only match k=3 (EXPERIMENTS.md has\n"
               "the impossibility argument and the calibration intervals).\n\n";

  io::TextTable breakpoints({"k", "dmm_c(k)", "note"});
  for (std::size_t i = 0; i < breakpoint_ks.size(); ++i) {
    const Count k = breakpoint_ks[i];
    breakpoints.add_row({util::cat(k), util::cat(dmm_answer(rare, 1).curve[i].dmm),
                         (k == 76 || k == 250) ? "paper breakpoint" : ""});
  }
  std::cout << "=== Breakpoint check (rare-overload model) ===\n" << breakpoints.render() << '\n';

  const DmmResult& r = dmm_answer(rare, 0).curve.front();  // k=3
  io::TextTable internals({"quantity", "value", "paper"});
  internals.add_row({"N_b (misses per busy window)", util::cat(r.n_b), "1 (implied)"});
  internals.add_row({"slack theta_c", util::cat(r.slack), "-"});
  internals.add_row({"unschedulable combinations", util::cat(r.unschedulable_count), "1 (c3)"});
  internals.add_row({"Omega_b, Omega_a at k=3",
                     util::cat(r.omegas[0], ", ", r.omegas[1]), "-"});
  std::cout << "=== Theorem 3 internals at k=3 ===\n" << internals.render() << '\n';

  const DmmResult& d = dmm_answer(rare, 2).curve.front();
  std::cout << "sigma_d: " << to_string(d.status)
            << " — needs no DMM (paper: \"sigma_d is schedulable\").\n\n";
}

void BM_DmmColdCache(benchmark::State& state) {
  const System system = date17_case_study(OverloadModel::kRareOverload);
  for (auto _ : state) {
    TwcaAnalyzer analyzer{system};
    benchmark::DoNotOptimize(analyzer.dmm(kSigmaC, state.range(0)));
  }
}
BENCHMARK(BM_DmmColdCache)->Arg(3)->Arg(76)->Arg(250);

void BM_DmmWarmCache(benchmark::State& state) {
  TwcaAnalyzer analyzer{date17_case_study(OverloadModel::kRareOverload)};
  (void)analyzer.dmm(kSigmaC, 1);  // warm the k-independent caches
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.dmm(kSigmaC, state.range(0)));
  }
}
BENCHMARK(BM_DmmWarmCache)->Arg(3)->Arg(250);

void BM_DmmCurve100Points(benchmark::State& state) {
  TwcaAnalyzer analyzer{date17_case_study(OverloadModel::kRareOverload)};
  std::vector<Count> ks;
  for (Count k = 1; k <= 100; ++k) ks.push_back(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.dmm_curve(kSigmaC, ks));
  }
}
BENCHMARK(BM_DmmCurve100Points);

void BM_EngineCurveColdVsCached(benchmark::State& state) {
  // state.range(0) == 0: fresh Engine each iteration (cold artifact
  // cache); == 1: one persistent Engine (every request after the first
  // is a cache hit).
  const System system = date17_case_study(OverloadModel::kRareOverload);
  std::vector<Count> ks;
  for (Count k = 1; k <= 100; ++k) ks.push_back(k);
  const AnalysisRequest request{system, {}, {DmmQuery{"sigma_c", ks}}};
  Engine persistent;
  for (auto _ : state) {
    if (state.range(0) == 0) {
      Engine cold;
      benchmark::DoNotOptimize(cold.run(request));
    } else {
      benchmark::DoNotOptimize(persistent.run(request));
    }
  }
}
BENCHMARK(BM_EngineCurveColdVsCached)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
