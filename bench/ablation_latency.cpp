// Ablation: the paper's segment-aware latency analysis (Section IV,
// refining [9]) versus the coarse baseline that treats every chain as
// arbitrarily interfering.  Shows where exploiting the priority structure
// pays off — on the case study the naive analysis wrongly rejects
// sigma_d — and aggregates the gain over random systems.
//
//   $ ./bench_ablation_latency

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/busy_window.hpp"
#include "core/case_studies.hpp"
#include "gen/random_systems.hpp"
#include "io/tables.hpp"
#include "util/strings.hpp"

namespace {

using namespace wharf;
using namespace wharf::case_studies;

void print_tables() {
  const System system = date17_case_study();
  AnalysisOptions naive;
  naive.naive_arbitrary = true;

  io::TextTable table({"chain", "WCL improved", "WCL naive", "verdict improved",
                       "verdict naive"});
  for (int c : {kSigmaC, kSigmaD}) {
    const LatencyResult imp = latency_analysis(system, c);
    const LatencyResult nai = latency_analysis(system, c, naive);
    table.add_row({system.chain(c).name(), util::cat(imp.wcl), util::cat(nai.wcl),
                   imp.schedulable ? "schedulable" : "may miss",
                   nai.schedulable ? "schedulable" : "may miss"});
  }
  std::cout << "=== Case study: segment-aware (Sec. IV) vs all-arbitrary baseline ===\n"
            << table.render();
  std::cout << "The baseline declares sigma_d unschedulable (267 > 200); the paper's\n"
               "deferred-chain analysis proves 175 <= 200.  This is exactly the gap\n"
               "the paper's Definitions 2-5 exist to close.\n\n";

  // Aggregate over random synchronous systems.
  gen::RandomSystemSpec spec;
  spec.min_chains = 3;
  spec.max_chains = 5;
  spec.utilization = 0.65;
  std::mt19937_64 rng(2024);
  int total = 0;
  int naive_diverged = 0;
  int improved_strictly_better = 0;
  int verdict_flips = 0;  // improved schedulable, naive not
  double gain_sum = 0.0;
  for (int i = 0; i < 300; ++i) {
    const System sys = gen::random_system(spec, rng);
    for (int c : sys.regular_indices()) {
      const LatencyResult imp = latency_analysis(sys, c);
      const LatencyResult nai = latency_analysis(sys, c, naive);
      if (!imp.bounded) continue;
      ++total;
      if (!nai.bounded) {
        ++naive_diverged;
        continue;
      }
      if (imp.wcl < nai.wcl) ++improved_strictly_better;
      if (imp.schedulable && !nai.schedulable) ++verdict_flips;
      gain_sum += static_cast<double>(nai.wcl - imp.wcl) / static_cast<double>(nai.wcl);
    }
  }
  io::TextTable agg({"metric", "value"});
  agg.add_row({"chains analyzed", util::cat(total)});
  agg.add_row({"naive diverged (improved bounded)", util::cat(naive_diverged)});
  agg.add_row({"improved strictly tighter", util::cat(improved_strictly_better)});
  agg.add_row({"schedulability verdict flipped", util::cat(verdict_flips)});
  agg.add_row({"mean relative WCL gain",
               util::cat(static_cast<int>(100.0 * gain_sum / std::max(1, total - naive_diverged)),
                         "%")});
  std::cout << "=== 300 random synchronous systems ===\n" << agg.render() << '\n';
}

void BM_ImprovedLatency(benchmark::State& state) {
  const System system = date17_case_study();
  for (auto _ : state) {
    benchmark::DoNotOptimize(latency_analysis(system, kSigmaD));
  }
}
BENCHMARK(BM_ImprovedLatency);

void BM_NaiveLatency(benchmark::State& state) {
  const System system = date17_case_study();
  AnalysisOptions naive;
  naive.naive_arbitrary = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(latency_analysis(system, kSigmaD, naive));
  }
}
BENCHMARK(BM_NaiveLatency);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
