// Async-serve benchmark: ~1k lockstep slow loopback clients — every
// request line dribbled in slices from ONE single-threaded multiplexed
// driver — against the epoll reactor core (net::AsyncServer), versus
// the historical thread-per-connection listener on the same workload.
//
// What the reactor buys:
//  * flat threads — serving N slow clients costs the same fixed thread
//    count (reactor + pool); the threaded baseline pays one OS thread
//    per live connection ("thread_growth" ≈ its client count);
//  * nothing lost, nothing reordered — every client gets every
//    response, bit-identical to the same conversation serialized
//    through serve_stream on a fresh engine.
//
// Emits machine-readable "BENCH {...}" JSON lines next to the tables;
// CI gates on the async variant's thread_growth staying flat, on
// lost_responses == 0, on identical_to_serialized, and on the client
// count actually reaching benchmark scale (the fd limit is raised to
// the hard cap first; a clamped run must still beat the gate floor).
//
//   $ ./bench_serve_async
// ---------------------------------------------------------------------

#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/serve.hpp"
#include "engine/engine.hpp"
#include "io/json.hpp"
#include "io/tables.hpp"
#include "net/server.hpp"
#include "tests/support/serve_client.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace {

using namespace wharf;
using testsupport::results_of;

constexpr const char* kSystemText =
    "system bench\n"
    "chain stage1 kind=sync activation=periodic(300) deadline=300\n"
    "  task s1a prio=6 wcet=20\n"
    "  task s1b prio=2 wcet=25\n"
    "chain stage2 kind=sync activation=periodic(300) deadline=300\n"
    "  task s2a prio=5 wcet=15\n"
    "  task s2b prio=1 wcet=30\n";

/// Every client replays this conversation (open, query, close) — small
/// on purpose: the bench stresses connection scale, not solver depth.
std::vector<std::string> conversation() {
  return {
      util::cat(R"({"id":1,"type":"open_session","session":"m","system":")",
                io::json_escape(kSystemText), "\"}"),
      R"({"id":2,"type":"query","session":"m","queries":[{"kind":"latency","chain":"stage1"},{"kind":"dmm","chain":"stage1","ks":[5,10]}]})",
      R"({"id":3,"type":"close","session":"m"})",
  };
}

/// The kernel thread count of this process (/proc/self/status).
int thread_count() {
  std::ifstream status("/proc/self/status");
  for (std::string line; std::getline(status, line);) {
    if (line.rfind("Threads:", 0) == 0) return std::stoi(line.substr(8));
  }
  return -1;
}

/// Raises RLIMIT_NOFILE to its hard cap and returns the resulting soft
/// limit (the client-count clamp below keeps a wide safety margin).
long raise_fd_limit() {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return 1024;
  limit.rlim_cur = limit.rlim_max;
  (void)::setrlimit(RLIMIT_NOFILE, &limit);
  (void)::getrlimit(RLIMIT_NOFILE, &limit);
  return static_cast<long>(limit.rlim_cur);
}

// ---------------------------------------------------------------------
// The multiplexed lockstep driver
// ---------------------------------------------------------------------

/// Outcome of one driver run against one listener variant.
struct Outcome {
  int clients = 0;
  double seconds = 0;
  long long responses = 0;
  long long lost_responses = 0;
  int base_threads = 0;
  int peak_threads = 0;
  bool identical = true;  ///< every query answer == the serialized oracle

  [[nodiscard]] int thread_growth() const { return peak_threads - base_threads; }
  [[nodiscard]] double requests_per_sec() const {
    return seconds > 0 ? static_cast<double>(responses) / seconds : 0.0;
  }
};

/// Replays `lines` through `clients` concurrently-open nonblocking
/// sockets in lockstep: every client receives request r in `kSlices`
/// dribbled fragments (the archetypal slow client), and no client sends
/// request r+1 before EVERY client was answered for r.  One driver
/// thread multiplexes all of them — the client side costs what the
/// reactor side costs.
Outcome run_lockstep(int port, int clients, const std::vector<std::string>& lines,
                     const std::string& oracle_results) {
  constexpr int kSlices = 3;
  Outcome outcome;
  outcome.clients = clients;
  outcome.base_threads = thread_count();
  outcome.peak_threads = outcome.base_threads;

  std::vector<int> fds(static_cast<std::size_t>(clients), -1);
  std::vector<std::string> buffers(static_cast<std::size_t>(clients));
  std::vector<std::vector<std::string>> replies(static_cast<std::size_t>(clients));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  for (int c = 0; c < clients; ++c) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) break;  // clamp failed us anyway; lost_responses reports it
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd);
      break;
    }
    const int flags = ::fcntl(fd, F_GETFL, 0);
    (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    fds[static_cast<std::size_t>(c)] = fd;
  }

  util::Stopwatch clock;
  for (std::size_t r = 0; r < lines.size(); ++r) {
    const std::string framed = lines[r] + "\n";
    // Dribble: every client gets fragment s before any client gets
    // fragment s+1, with a breath between fragment waves.
    const std::size_t slice = (framed.size() + kSlices - 1) / kSlices;
    for (int s = 0; s < kSlices; ++s) {
      const std::size_t lo = std::min(framed.size(), static_cast<std::size_t>(s) * slice);
      const std::size_t hi = std::min(framed.size(), lo + slice);
      if (lo == hi) continue;
      for (int c = 0; c < clients; ++c) {
        const int fd = fds[static_cast<std::size_t>(c)];
        if (fd < 0) continue;
        std::size_t sent = lo;
        while (sent < hi) {
          const ssize_t n = ::send(fd, framed.data() + sent, hi - sent, MSG_NOSIGNAL);
          if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) {
            pollfd pfd{fd, POLLOUT, 0};
            (void)::poll(&pfd, 1, 1000);
            continue;
          }
          ::close(fd);
          fds[static_cast<std::size_t>(c)] = -1;
          break;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    // Barrier: wait until every live client holds its r-th response.
    const auto barrier_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (true) {
      std::vector<pollfd> waiting;
      std::vector<int> owner;
      for (int c = 0; c < clients; ++c) {
        const int fd = fds[static_cast<std::size_t>(c)];
        if (fd < 0 || replies[static_cast<std::size_t>(c)].size() > r) continue;
        waiting.push_back(pollfd{fd, POLLIN, 0});
        owner.push_back(c);
      }
      if (waiting.empty()) break;
      if (std::chrono::steady_clock::now() > barrier_deadline) break;  // lost, gated
      const int ready = ::poll(waiting.data(), static_cast<nfds_t>(waiting.size()), 1000);
      outcome.peak_threads = std::max(outcome.peak_threads, thread_count());
      if (ready <= 0) continue;
      for (std::size_t w = 0; w < waiting.size(); ++w) {
        if ((waiting[w].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        const int c = owner[w];
        char chunk[4096];
        const ssize_t n = ::read(waiting[w].fd, chunk, sizeof chunk);
        if (n <= 0) {
          ::close(waiting[w].fd);
          fds[static_cast<std::size_t>(c)] = -1;
          continue;
        }
        std::string& buffer = buffers[static_cast<std::size_t>(c)];
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t newline = 0;
        while ((newline = buffer.find('\n')) != std::string::npos) {
          replies[static_cast<std::size_t>(c)].push_back(buffer.substr(0, newline));
          buffer.erase(0, newline + 1);
        }
      }
    }
    outcome.peak_threads = std::max(outcome.peak_threads, thread_count());
  }
  outcome.seconds = clock.seconds();

  for (int c = 0; c < clients; ++c) {
    const int fd = fds[static_cast<std::size_t>(c)];
    if (fd >= 0) ::close(fd);
    const std::vector<std::string>& got = replies[static_cast<std::size_t>(c)];
    outcome.responses += static_cast<long long>(got.size());
    outcome.lost_responses += static_cast<long long>(lines.size() - got.size());
    // Reply 1 is the query's: its answers must match the oracle exactly.
    if (got.size() < 2 || results_of(got[1]) != oracle_results) outcome.identical = false;
  }
  return outcome;
}

// ---------------------------------------------------------------------
// Variants
// ---------------------------------------------------------------------

/// The same conversation serialized through serve_stream on a fresh
/// engine: the bit-identity oracle for every client of every variant.
std::string oracle() {
  std::ostringstream text;
  for (const std::string& line : conversation()) text << line << '\n';
  Engine engine;
  std::istringstream in(text.str());
  std::ostringstream out;
  (void)cli::serve_stream(engine, in, out);
  std::istringstream lines(out.str());
  for (std::string line; std::getline(lines, line);) {
    if (line.find("\"report\":") != std::string::npos) return results_of(line);
  }
  return "<no oracle>";
}

/// The async reactor core: a wide request budget (the driver keeps all
/// clients in flight) over a deliberately tiny fixed pool — the flat
/// thread count IS the claim under test.
Outcome run_async(int clients, const std::string& oracle_results) {
  Engine engine;
  int port = 0;
  const Expected<int> listener = cli::bind_serve_socket(0, port);
  if (!listener) {
    std::cerr << "bench: " << listener.status().to_string() << "\n";
    std::exit(1);
  }
  net::AsyncServeOptions options;
  options.max_inflight = clients + 8;
  options.pool_threads = 4;
  std::ostringstream err;
  net::AsyncServer server(engine, listener.value(), options, err);
  std::thread loop([&] { (void)server.serve(); });
  Outcome outcome = run_lockstep(port, clients, conversation(), oracle_results);

  {
    // Scoped: the server only exits once every connection (including
    // the closer's) is gone.
    testsupport::ServeClient closer(port);
    (void)closer.roundtrip(R"({"type":"shutdown"})");
  }
  loop.join();
  return outcome;
}

/// The historical connection-per-thread listener on the same workload.
Outcome run_threaded(int clients, const std::string& oracle_results) {
  Engine engine;
  int port = 0;
  const Expected<int> listener = cli::bind_serve_socket(0, port);
  if (!listener) {
    std::cerr << "bench: " << listener.status().to_string() << "\n";
    std::exit(1);
  }
  std::ostringstream err;
  std::thread loop([&, fd = listener.value()] {
    (void)cli::serve_listener_threaded(engine, fd, clients + 8, err);
  });
  Outcome outcome = run_lockstep(port, clients, conversation(), oracle_results);

  {
    // Scoped: the server only exits once every connection (including
    // the closer's) is gone.
    testsupport::ServeClient closer(port);
    (void)closer.roundtrip(R"({"type":"shutdown"})");
  }
  loop.join();
  return outcome;
}

void emit_bench_json(const char* variant, const Outcome& o) {
  std::ostringstream os;
  io::JsonWriter w(os);
  w.begin_object();
  w.key("name");
  w.value("serve_async");
  w.key("variant");
  w.value(variant);
  w.key("clients");
  w.value(o.clients);
  w.key("responses");
  w.value(o.responses);
  w.key("lost_responses");
  w.value(o.lost_responses);
  w.key("seconds");
  w.value(o.seconds);
  w.key("requests_per_sec");
  w.value(o.requests_per_sec());
  w.key("base_threads");
  w.value(o.base_threads);
  w.key("peak_threads");
  w.value(o.peak_threads);
  w.key("thread_growth");
  w.value(o.thread_growth());
  w.key("identical_to_serialized");
  w.value(o.identical);
  w.end_object();
  std::cout << "BENCH " << os.str() << '\n';
}

/// Integer environment override (WHARF_BENCH_CLIENTS trims the run on
/// cramped machines); `fallback` when unset or unparsable.
int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value) > 0 ? std::atoi(value) : fallback;
}

void print_tables() {
  const long fd_limit = raise_fd_limit();
  // Every client needs one driver-side and one server-side descriptor;
  // keep half the limit in reserve for the process itself.
  const int async_clients = env_int(
      "WHARF_BENCH_CLIENTS", static_cast<int>(std::clamp(fd_limit / 4 - 64, 16L, 1000L)));
  // The threaded baseline pays a whole OS thread per client: cap it so
  // the contrast is visible without melting the runner.
  const int threaded_clients = std::min(async_clients, 128);

  const std::string oracle_results = oracle();
  Outcome async_outcome = run_async(async_clients, oracle_results);
  const Outcome threaded_outcome = run_threaded(threaded_clients, oracle_results);

  std::cout << "=== wharf serve: " << async_clients
            << " lockstep slow clients, epoll reactor vs thread-per-connection ===\n";
  io::TextTable table({"variant", "clients", "responses", "lost", "seconds", "req/s",
                       "base threads", "peak threads", "growth"});
  table.add_row({"async (reactor + fixed pool)", util::cat(async_outcome.clients),
                 util::cat(async_outcome.responses), util::cat(async_outcome.lost_responses),
                 util::cat(async_outcome.seconds), util::cat(async_outcome.requests_per_sec()),
                 util::cat(async_outcome.base_threads), util::cat(async_outcome.peak_threads),
                 util::cat(async_outcome.thread_growth())});
  table.add_row({"threaded (connection-per-thread)", util::cat(threaded_outcome.clients),
                 util::cat(threaded_outcome.responses),
                 util::cat(threaded_outcome.lost_responses),
                 util::cat(threaded_outcome.seconds),
                 util::cat(threaded_outcome.requests_per_sec()),
                 util::cat(threaded_outcome.base_threads),
                 util::cat(threaded_outcome.peak_threads),
                 util::cat(threaded_outcome.thread_growth())});
  std::cout << table.render();
  std::cout << "async thread growth: " << async_outcome.thread_growth()
            << " (flat); threaded thread growth: " << threaded_outcome.thread_growth()
            << " for " << threaded_outcome.clients
            << " clients; answers bit-identical: "
            << (async_outcome.identical && threaded_outcome.identical ? "yes" : "NO — BUG")
            << "\n\n";

  emit_bench_json("async", async_outcome);
  emit_bench_json("threaded", threaded_outcome);
}

void BM_AsyncLockstep(benchmark::State& state) {
  // End-to-end wall time of 16 lockstep dribbling clients against the
  // reactor (connect, open/query/close, drain).
  const std::string oracle_results = oracle();
  for (auto _ : state) {
    const Outcome outcome = run_async(16, oracle_results);
    benchmark::DoNotOptimize(outcome.responses);
  }
}
BENCHMARK(BM_AsyncLockstep)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
