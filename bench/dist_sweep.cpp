// Distributed-sweep benchmark: the same random candidate list scored
// through dist::run_sweep with 1 versus 4 spawned `wharf serve` workers
// (one evaluation job each), on a near-unit-utilization fixture whose
// per-candidate cost (~100ms) dwarfs the spawn/protocol overhead.
//
// What the coordinator must prove here:
//  * the merged 4-worker result is field-identical to the 1-worker run
//    (the determinism contract of docs/distributed.md) — gated in CI
//    unconditionally;
//  * with >= 4 CPUs the 4-worker sweep is >= 2.5x faster end to end —
//    gated in CI (the runners have 4 vCPUs), skipped on smaller hosts
//    where wall-clock parallelism physically cannot appear (this repo's
//    dev container has one core; cf. serve_concurrent's deterministic
//    counters for the same reason).
//
// Emits machine-readable "BENCH {...}" JSON lines next to the tables;
// the telemetry fields (stolen_units, reissued_units, duplicate_results)
// surface what the scheduler did so regressions in stealing show up in
// the uploaded artifacts even when the time gate is skipped.
//
//   $ ./bench_dist_sweep

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/arrival.hpp"
#include "core/system.hpp"
#include "dist/coordinator.hpp"
#include "io/json.hpp"
#include "io/tables.hpp"
#include "search/priority_search.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace {

using namespace wharf;

/// How much faster 4 workers must be than 1 before the CI gate passes
/// (only enforced when the host has >= 4 CPUs).
constexpr double kSpeedupGate = 2.5;

System sweep_base() {
  // Three synchronous two-task chains at combined utilization ~0.9991
  // plus a rarely-activated overload chain: busy windows are long, so a
  // *random* candidate (whose windows share almost nothing with its
  // neighbors' store artifacts) costs ~100ms to score at k=10.  That
  // makes the sweep evaluation-dominated — the regime the coordinator
  // exists for — while 40 candidates keep the 1-worker baseline at a
  // few seconds.  Built by hand: the integer-rounded random generator
  // cannot dial utilization this close to (but below) 1.
  std::vector<Chain> chains;
  const Time periods[3] = {100'000, 110'000, 120'000};
  const Time wcets[3] = {16'650, 18'320, 19'980};
  const char* names[3] = {"a", "b", "c"};
  for (int i = 0; i < 3; ++i) {
    Chain::Spec spec;
    spec.name = names[i];
    spec.arrival = periodic(periods[i]);
    spec.deadline = periods[i];
    spec.tasks = {Task{util::cat(names[i], 1), Priority(1 + 2 * i), wcets[i]},
                  Task{util::cat(names[i], 2), Priority(2 + 2 * i), wcets[i]}};
    chains.emplace_back(std::move(spec));
  }
  Chain::Spec ov;
  ov.name = "ov";
  ov.arrival = sporadic(2'500'000);
  ov.overload = true;
  ov.tasks = {Task{"o1", Priority(7), 3'000}};
  chains.emplace_back(std::move(ov));
  return System("dist_sweep", std::move(chains));
}

struct Run {
  double seconds = 0;
  dist::SweepOutcome outcome;
};

/// One timed sweep of `candidates` over `workers` freshly spawned
/// `wharf serve` children.  A sweep failure is a bench bug, not a data
/// point — bail loudly.
Run run_workers(const System& base, const std::vector<std::vector<Priority>>& candidates,
                int workers) {
  std::vector<dist::WorkerSpec> specs(static_cast<std::size_t>(workers));
  for (dist::WorkerSpec& spec : specs) {
    spec.binary = WHARF_BINARY_PATH;
    spec.jobs = 1;
  }
  dist::SweepOptions sweep;
  sweep.k = 10;
  sweep.unit_size = 1;  // one candidate per unit: finest stealing granularity
  util::Stopwatch clock;
  Expected<dist::SweepOutcome> outcome = dist::run_sweep(base, {}, candidates, specs, sweep);
  const double seconds = clock.seconds();
  if (!outcome.has_value()) {
    std::cerr << "bench: sweep failed: " << outcome.status().to_string() << "\n";
    std::exit(1);
  }
  return Run{seconds, std::move(outcome.value())};
}

/// The determinism contract, field by field — the same comparison the
/// fault battery (tests/dist_test.cpp) applies against its oracles.
bool identical(const dist::SweepOutcome& a, const dist::SweepOutcome& b) {
  return a.nominal == b.nominal && a.result.best_priorities == b.result.best_priorities &&
         a.result.best_objective == b.result.best_objective &&
         a.result.evaluations == b.result.evaluations;
}

void emit_bench_json(const char* variant, const Run& run, std::size_t candidates,
                     unsigned cores, double speedup, bool identical_to_single) {
  const dist::SweepTelemetry& t = run.outcome.telemetry;
  std::ostringstream os;
  io::JsonWriter w(os);
  w.begin_object();
  w.key("name");
  w.value("dist_sweep");
  w.key("variant");
  w.value(variant);
  w.key("workers");
  w.value(t.workers);
  w.key("candidates");
  w.value(static_cast<long long>(candidates));
  w.key("units");
  w.value(static_cast<long long>(t.units));
  w.key("seconds");
  w.value(run.seconds);
  w.key("stolen_units");
  w.value(t.stolen_units);
  w.key("reissued_units");
  w.value(t.reissued_units);
  w.key("duplicate_results");
  w.value(t.duplicate_results);
  w.key("worker_deaths");
  w.value(t.worker_deaths);
  w.key("cores");
  w.value(static_cast<long long>(cores));
  w.key("speedup_4w");
  w.value(speedup);
  w.key("identical_to_single");
  w.value(identical_to_single);
  w.end_object();
  std::cout << "BENCH " << os.str() << '\n';
}

void print_tables() {
  constexpr int kCandidates = 40;
  const System base = sweep_base();
  const std::vector<std::vector<Priority>> candidates =
      search::random_candidates(base, kCandidates, 7);
  const unsigned cores = std::thread::hardware_concurrency();

  Run single = run_workers(base, candidates, 1);
  Run quad = run_workers(base, candidates, 4);
  double speedup = quad.seconds > 0 ? single.seconds / quad.seconds : 0.0;
  // The time gate only applies where 4 workers can actually run in
  // parallel.  There, one unlucky schedule on a loaded runner can still
  // depress a single round; fresh rounds are independent, so a bounded
  // retry de-flakes the gate without masking a real regression (a
  // coordinator that serializes its workers fails every attempt).
  if (cores >= 4) {
    for (int attempt = 0; speedup < kSpeedupGate && attempt < 2; ++attempt) {
      std::cerr << "bench: speedup " << speedup << " below gate (attempt " << attempt + 1
                << "), retrying both rounds\n";
      single = run_workers(base, candidates, 1);
      quad = run_workers(base, candidates, 4);
      speedup = quad.seconds > 0 ? single.seconds / quad.seconds : 0.0;
    }
  }
  const bool same = identical(single.outcome, quad.outcome);

  std::cout << "=== wharf sweep: " << kCandidates
            << " random candidates, 1 vs 4 spawned workers (k=10, unit_size=1) ===\n";
  io::TextTable table(
      {"variant", "workers", "units", "seconds", "stolen", "reissued", "duplicates"});
  const auto row = [&table](const char* variant, const Run& run) {
    const dist::SweepTelemetry& t = run.outcome.telemetry;
    table.add_row({variant, util::cat(t.workers), util::cat(t.units), util::cat(run.seconds),
                   util::cat(t.stolen_units), util::cat(t.reissued_units),
                   util::cat(t.duplicate_results)});
  };
  row("1 worker", single);
  row("4 workers", quad);
  std::cout << table.render();
  std::cout << "speedup 4w vs 1w: " << speedup << "x on " << cores
            << " cores (gate " << kSpeedupGate << "x applies at >= 4); merged result identical: "
            << (same ? "yes" : "NO — BUG") << "\n\n";

  emit_bench_json("1w", single, candidates.size(), cores, 1.0, true);
  emit_bench_json("4w", quad, candidates.size(), cores, speedup, same);
}

void BM_TwoWorkerSweep(benchmark::State& state) {
  // End-to-end wall time of a small 2-worker sweep on a cheap 3-task
  // system — spawn + protocol + merge overhead, not evaluation cost.
  std::vector<Chain> chains;
  Chain::Spec a;
  a.name = "a";
  a.arrival = periodic(100);
  a.deadline = 90;
  a.tasks = {Task{"a1", Priority(1), 10}, Task{"a2", Priority(2), 10}};
  chains.emplace_back(std::move(a));
  Chain::Spec b;
  b.name = "b";
  b.arrival = periodic(200);
  b.deadline = 150;
  b.tasks = {Task{"b1", Priority(3), 20}};
  chains.emplace_back(std::move(b));
  const System base("bm", std::move(chains));
  const std::vector<std::vector<Priority>> candidates = search::exhaustive_candidates(base);
  for (auto _ : state) {
    const Run run = run_workers(base, candidates, 2);
    benchmark::DoNotOptimize(run.outcome.result.evaluations);
  }
}
BENCHMARK(BM_TwoWorkerSweep)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
