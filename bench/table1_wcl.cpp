// Reproduces Table I of the paper: worst-case latencies of sigma_c and
// sigma_d in the Figure 4 case study, plus the "second analysis" without
// overload chains, then benchmarks the latency analysis itself.
//
//   $ ./bench_table1_wcl

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/busy_window.hpp"
#include "core/case_studies.hpp"
#include "io/tables.hpp"
#include "util/strings.hpp"

namespace {

using namespace wharf;
using namespace wharf::case_studies;

void print_tables() {
  const System system = date17_case_study();

  io::TextTable table1({"task chain", "WCL", "D", "paper WCL"});
  const std::vector<std::pair<int, std::string>> rows = {{kSigmaC, "331"}, {kSigmaD, "175"}};
  for (const auto& [chain, paper] : rows) {
    const LatencyResult r = latency_analysis(system, chain);
    table1.add_row({system.chain(chain).name(), util::cat(r.wcl),
                    util::cat(*system.chain(chain).deadline()), paper});
  }
  std::cout << "=== Table I: WCL of task chains sigma_c and sigma_d ===\n" << table1.render();
  std::cout << "Paper conclusion reproduced: sigma_c can miss its deadline (331 > 200),\n"
               "sigma_d cannot (175 <= 200).\n\n";

  io::TextTable second({"task chain", "WCL w/o overload", "schedulable"});
  for (int chain : {kSigmaC, kSigmaD}) {
    const LatencyResult r = latency_analysis(system, chain, {}, system.overload_indices());
    second.add_row({system.chain(chain).name(), util::cat(r.wcl), r.schedulable ? "yes" : "no"});
  }
  std::cout << "=== Second analysis (overload chains abstracted away) ===\n" << second.render();
  std::cout << "Paper conclusion reproduced: the system is schedulable without overload.\n\n";
}

void BM_LatencyAnalysisSigmaC(benchmark::State& state) {
  const System system = date17_case_study();
  for (auto _ : state) {
    benchmark::DoNotOptimize(latency_analysis(system, kSigmaC));
  }
}
BENCHMARK(BM_LatencyAnalysisSigmaC);

void BM_LatencyAnalysisSigmaD(benchmark::State& state) {
  const System system = date17_case_study();
  for (auto _ : state) {
    benchmark::DoNotOptimize(latency_analysis(system, kSigmaD));
  }
}
BENCHMARK(BM_LatencyAnalysisSigmaD);

void BM_InterferenceContext(benchmark::State& state) {
  const System system = date17_case_study();
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_interference_context(system, kSigmaC));
  }
}
BENCHMARK(BM_InterferenceContext);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
