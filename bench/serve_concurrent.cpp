// Concurrent-serve benchmark: N TCP loopback clients replaying the same
// delta/query sweep against ONE `wharf serve` listener (shared Engine +
// ArtifactStore, connection-per-thread) versus the same N conversations
// serialized on independent engines (the "N separate servers"
// deployment).
//
// What the shared store buys across connections:
//  * identical lookups from different clients are served from each
//    other's work — a single-flight join while the artifact is being
//    computed, a resident hit afterwards — so the busy-window solve
//    total of N concurrent clients equals ONE client's, not N of them
//    ("cross_connection_reuse" = the solves the serialized deployment
//    performs that the shared store avoids; deterministic);
//  * answers stay bit-identical to the serialized independent runs (the
//    store shares provably-equal artifacts, never results across
//    different models).
//
// Emits machine-readable "BENCH {...}" JSON lines next to the tables;
// CI gates on identical_to_serialized, on the concurrent variant
// performing strictly fewer busy-window solves than the serialized one,
// on cross_connection_reuse > 0, and on shared_flights > 0: each serve
// round now resolves its busy windows under one coarse batched flight
// (Pipeline::prime_busy_windows) and the fixture's near-unit
// utilization keeps that flight open for milliseconds, so concurrently
// arriving clients reliably join it — even on a single CPU, where the
// owner gets preempted mid-compute.  (tests/single_flight_test.cpp pins
// the join mechanism deterministically with a gated arrival model.)
//
//   $ ./bench_serve_concurrent

#include <benchmark/benchmark.h>

#include <atomic>
#include <barrier>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/serve.hpp"
#include "engine/engine.hpp"
#include "gen/random_systems.hpp"
#include "io/json.hpp"
#include "io/system_format.hpp"
#include "io/tables.hpp"
#include "tests/support/serve_client.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace {

using namespace wharf;

constexpr std::size_t kBusyWindowStage =
    static_cast<std::size_t>(static_cast<int>(ArtifactStage::kBusyWindow));

System sweep_base() {
  // Much heavier than the serve_stream fixture on purpose: each serve
  // round resolves its busy windows under one coarse batched flight
  // (Pipeline::prime_busy_windows), and at utilization ~0.9994 the busy
  // windows are long enough (milliseconds per cold round) that the
  // flight stays open while the other clients' identical lookups arrive
  // — the in-flight joins the gated shared_flights > 0 counts.  Built by
  // hand because the integer-rounded random generator cannot dial
  // utilization this close to (but below) 1.
  std::vector<Chain> chains;
  for (int i = 0; i < 10; ++i) {
    Chain::Spec spec;
    spec.name = "chain" + std::to_string(i);
    const Time period = 100'000 + 1'000 * i;
    spec.arrival = periodic(period);
    spec.deadline = period;
    spec.tasks = {Task{"a", Priority(1 + 2 * i), i == 0 ? 5'234 : 5'218},
                  Task{"b", Priority(2 + 2 * i), 5'218}};
    chains.emplace_back(std::move(spec));
  }
  Chain::Spec ov;
  ov.name = "ov";
  ov.arrival = sporadic(5'000'000);
  ov.overload = true;
  ov.tasks = {Task{"o", 100, 2'000}};
  chains.emplace_back(std::move(ov));
  return System("serve_concurrent", std::move(chains));
}

std::string query_line(int id) {
  return util::cat(
      R"({"id":)", id,
      R"(,"type":"query","session":"s","queries":[{"kind":"latency","chain":"chain0"},)"
      R"({"kind":"latency","chain":"chain3"},{"kind":"dmm","chain":"chain0","ks":[1,10,60]},)"
      R"({"kind":"dmm","chain":"chain5","ks":[1,10,60]},{"kind":"dmm","chain":"chain2","ks":[60]}]})");
}

using testsupport::results_of;

/// One client's whole conversation: open, then `steps` x (swap delta +
/// query), then close.  Every client replays the same sweep — the
/// maximally shareable workload a design-space service sees when many
/// tools explore the same region.
std::vector<std::string> sweep_conversation(const System& base, int steps,
                                            std::uint64_t seed) {
  std::vector<std::string> names;
  for (const Chain& chain : base.chains()) {
    for (const Task& task : chain.tasks()) names.push_back(chain.name() + "." + task.name);
  }
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> pick(0, names.size() - 1);

  std::vector<std::string> lines;
  int id = 0;
  lines.push_back(util::cat(R"({"id":)", ++id,
                            R"(,"type":"open_session","session":"s","system":")",
                            io::json_escape(io::serialize_system(base)), "\"}"));
  lines.push_back(query_line(++id));
  std::vector<Priority> flat = base.flat_priorities();
  for (int s = 0; s < steps; ++s) {
    const std::size_t i = pick(rng);
    const std::size_t j = pick(rng);
    lines.push_back(util::cat(
        R"({"id":)", ++id, R"(,"type":"apply_delta","session":"s","deltas":[)",
        R"({"kind":"set_priority","task":")", names[i], R"(","priority":)", flat[j],
        R"(},{"kind":"set_priority","task":")", names[j], R"(","priority":)", flat[i],
        "}]}"));
    std::swap(flat[i], flat[j]);
    lines.push_back(query_line(++id));
  }
  lines.push_back(util::cat(R"({"id":)", ++id, R"(,"type":"close","session":"s"})"));
  return lines;
}

// ---------------------------------------------------------------------
// Transport plumbing (shared with tests/serve_concurrent_test.cpp)
// ---------------------------------------------------------------------

/// The shared blocking loopback client; transport failures just end the
/// conversation early (the identity comparison then fails loudly).
using Client = testsupport::ServeClient;

struct Outcome {
  double seconds = 0;
  long long requests = 0;
  std::size_t busy_window_solves = 0;  ///< artifacts computed (store insertions)
  std::size_t shared_flights = 0;      ///< in-flight single-flight joins
  /// Per client, the answers-only payload of every query response.
  std::vector<std::vector<std::string>> query_results;

  [[nodiscard]] double requests_per_sec() const {
    return seconds > 0 ? static_cast<double>(requests) / seconds : 0.0;
  }
};

std::size_t sum_shared(const ArtifactStore::Stats& stats) {
  std::size_t shared = 0;
  for (const ArtifactStore::StageStats& stage : stats.stage) shared += stage.flights_shared;
  return shared;
}

/// N concurrent TCP clients against one shared-engine listener.  All
/// clients rendezvous on a barrier after connecting, so their first
/// heavy queries overlap and exercise the cross-connection single
/// flight.
Outcome run_concurrent(const std::vector<std::string>& conversation, int clients) {
  Engine engine;
  int port = 0;
  const Expected<int> listener = cli::bind_serve_socket(0, port);
  if (!listener) {
    std::cerr << "bench: " << listener.status().to_string() << "\n";
    std::exit(1);
  }
  std::ostringstream err;
  std::thread server([&, fd = listener.value()] {
    (void)cli::serve_listener(engine, fd, clients, err);
  });

  Outcome outcome;
  outcome.query_results.resize(static_cast<std::size_t>(clients));
  // Lockstep replay: all clients rendezvous before *every* request, so
  // each round's identical lookups arrive within microseconds of each
  // other — the adversarial arrival pattern a popular design point sees,
  // and the one the single-flight table exists for.
  std::barrier rendezvous(clients);

  util::Stopwatch clock;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Client client(port);
      for (const std::string& line : conversation) {
        rendezvous.arrive_and_wait();
        if (!client.connected()) continue;
        const std::string reply = client.roundtrip(line);
        if (reply.find("\"report\":") != std::string::npos) {
          outcome.query_results[static_cast<std::size_t>(c)].push_back(results_of(reply));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  outcome.seconds = clock.seconds();

  Client closer(port);
  (void)closer.roundtrip(R"({"type":"shutdown"})");
  server.join();

  outcome.requests = static_cast<long long>(conversation.size()) * clients;
  const ArtifactStore::Stats stats = engine.store_stats();
  outcome.busy_window_solves = stats.stage[kBusyWindowStage].insertions;
  outcome.shared_flights = sum_shared(stats);
  return outcome;
}

/// The same N conversations, serialized on independent engines (what N
/// clients get from N separate one-client servers — nothing shared).
Outcome run_serialized(const std::vector<std::string>& conversation, int clients) {
  Outcome outcome;
  outcome.query_results.resize(static_cast<std::size_t>(clients));
  std::ostringstream text;
  for (const std::string& line : conversation) text << line << '\n';

  util::Stopwatch clock;
  for (int c = 0; c < clients; ++c) {
    Engine engine;
    std::istringstream in(text.str());
    std::ostringstream out;
    (void)cli::serve_stream(engine, in, out);
    const ArtifactStore::Stats stats = engine.store_stats();
    outcome.busy_window_solves += stats.stage[kBusyWindowStage].insertions;
    outcome.shared_flights += sum_shared(stats);
    std::istringstream lines(out.str());
    for (std::string line; std::getline(lines, line);) {
      if (line.find("\"report\":") != std::string::npos) {
        outcome.query_results[static_cast<std::size_t>(c)].push_back(results_of(line));
      }
    }
  }
  outcome.seconds = clock.seconds();
  outcome.requests = static_cast<long long>(conversation.size()) * clients;
  return outcome;
}

void emit_bench_json(const char* variant, int clients, const Outcome& o, bool identical,
                     double solve_ratio, std::size_t cross_connection_reuse) {
  std::ostringstream os;
  io::JsonWriter w(os);
  w.begin_object();
  w.key("name");
  w.value("serve_concurrent");
  w.key("variant");
  w.value(variant);
  w.key("clients");
  w.value(clients);
  w.key("requests");
  w.value(o.requests);
  w.key("seconds");
  w.value(o.seconds);
  w.key("requests_per_sec");
  w.value(o.requests_per_sec());
  w.key("busy_window_solves");
  w.value(static_cast<long long>(o.busy_window_solves));
  w.key("shared_flights");
  w.value(static_cast<long long>(o.shared_flights));
  w.key("cross_connection_reuse");
  w.value(static_cast<long long>(cross_connection_reuse));
  w.key("identical_to_serialized");
  w.value(identical);
  w.key("solve_ratio_vs_serialized");
  w.value(solve_ratio);
  w.end_object();
  std::cout << "BENCH " << os.str() << '\n';
}

void print_tables() {
  constexpr int kClients = 8;
  constexpr int kSteps = 10;
  const System base = sweep_base();
  const std::vector<std::string> conversation = sweep_conversation(base, kSteps, 7);

  const Outcome serialized = run_serialized(conversation, kClients);
  Outcome concurrent = run_concurrent(conversation, kClients);
  // The shared_flights > 0 gate needs at least one lookup to arrive
  // while the owning flight is still open.  The fixture makes that
  // overlap near-certain, but on a loaded 1-CPU runner an unlucky
  // schedule can still serialize every round; a fresh round is
  // independent, so a bounded retry de-flakes the gate without masking
  // a real regression (a broken single flight fails all attempts).
  for (int attempt = 0; concurrent.shared_flights == 0 && attempt < 4; ++attempt) {
    std::cerr << "bench: no in-flight joins observed (attempt " << attempt + 1
              << "), retrying the concurrent round\n";
    concurrent = run_concurrent(conversation, kClients);
  }

  const bool identical = concurrent.query_results == serialized.query_results;
  const double solve_ratio =
      serialized.busy_window_solves > 0
          ? static_cast<double>(concurrent.busy_window_solves) /
                static_cast<double>(serialized.busy_window_solves)
          : 0.0;
  // The deterministic sharing proof: every solve the serialized
  // deployment performs that the shared store did not is a lookup one
  // connection served from another connection's artifact.
  const std::size_t cross_connection_reuse =
      serialized.busy_window_solves > concurrent.busy_window_solves
          ? serialized.busy_window_solves - concurrent.busy_window_solves
          : 0;

  std::cout << "=== wharf serve: " << kClients
            << " concurrent clients, one shared engine vs. serialized independent runs ("
            << kSteps << "-mutation sweep each) ===\n";
  io::TextTable table({"variant", "requests", "seconds", "req/s", "busy-window solves",
                       "in-flight joins"});
  table.add_row({"serialized (independent engines)", util::cat(serialized.requests),
                 util::cat(serialized.seconds), util::cat(serialized.requests_per_sec()),
                 util::cat(serialized.busy_window_solves),
                 util::cat(serialized.shared_flights)});
  table.add_row({"concurrent (one shared engine)", util::cat(concurrent.requests),
                 util::cat(concurrent.seconds), util::cat(concurrent.requests_per_sec()),
                 util::cat(concurrent.busy_window_solves),
                 util::cat(concurrent.shared_flights)});
  std::cout << table.render();
  std::cout << "busy-window solves, concurrent vs serialized: " << solve_ratio
            << "x; cross-connection reuse: " << cross_connection_reuse
            << " solves avoided; in-flight joins: " << concurrent.shared_flights
            << "; answers bit-identical: " << (identical ? "yes" : "NO — BUG") << "\n\n";

  emit_bench_json("serialized", kClients, serialized, true, 1.0, 0);
  emit_bench_json("concurrent", kClients, concurrent, identical, solve_ratio,
                  cross_connection_reuse);
}

void BM_ConcurrentSweep(benchmark::State& state) {
  // End-to-end wall time of 2 concurrent clients replaying a short
  // sweep over TCP against one shared engine.
  const System base = sweep_base();
  const std::vector<std::string> conversation = sweep_conversation(base, 2, 11);
  for (auto _ : state) {
    const Outcome outcome = run_concurrent(conversation, 2);
    benchmark::DoNotOptimize(outcome.requests);
  }
}
BENCHMARK(BM_ConcurrentSweep)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
