// Warm-restart benchmark: the same analysis workload replayed against
// three engine lifetimes —
//  * cold            — a fresh engine with an empty --store-dir;
//  * warm (stayed up) — the SAME engine immediately replaying the
//    workload, every artifact still resident;
//  * warm (restarted) — a FRESH engine that loaded the snapshot the
//    first engine spilled (StoreSnapshot round trip through disk).
//
// What the persistent store must buy: the restarted engine's solve
// counts match the stayed-up engine's (the snapshot restores busy-window
// results, batch markers, overload artifacts, dmm curves and packing
// solutions alike — a restart costs one file read, not a re-analysis),
// and every variant's answers are bit-identical to the cold run's (the
// snapshot restores artifacts, never fabricates results).
//
// Emits machine-readable "BENCH {...}" JSON lines next to the table; CI
// gates restart-warm busy-window solves <= 1.1x stayed-up-warm and both
// identical_to_cold flags.
//
//   $ ./bench_store_restart

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "gen/random_systems.hpp"
#include "io/json.hpp"
#include "io/tables.hpp"
#include "tests/support/serve_client.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace {

using namespace wharf;
using testsupport::results_of;

constexpr std::size_t kBusyWindowStage =
    static_cast<std::size_t>(static_cast<int>(ArtifactStage::kBusyWindow));

/// The workload: one random base system plus priority-shuffled variants
/// of it (the paper's Experiment 2 shape), each analyzed with the
/// standard query set on two k values.  Deterministic by seed.
std::vector<System> workload_systems() {
  std::mt19937_64 rng(2017);
  gen::RandomSystemSpec spec;
  spec.min_chains = 3;
  spec.max_chains = 3;
  spec.min_tasks = 2;
  spec.max_tasks = 3;
  spec.utilization = 0.65;
  const System base = gen::random_system(spec, rng, "restart_base");
  std::vector<System> systems{base};
  for (int i = 0; i < 3; ++i) systems.push_back(gen::with_random_priorities(base, rng));
  return systems;
}

struct Outcome {
  double seconds = 0;
  std::size_t busy_window_solves = 0;  ///< busy-window insertions during the run
  std::size_t artifact_solves = 0;     ///< insertions across all stages
  std::vector<std::string> answers;    ///< answers-only payload per request
};

std::size_t sum_insertions(const ArtifactStore::Stats& stats) {
  std::size_t total = 0;
  for (const ArtifactStore::StageStats& stage : stats.stage) total += stage.insertions;
  return total;
}

/// Replays the workload on `engine`, measuring only the solves the run
/// itself performs (insertions made by a snapshot load at construction
/// happened before the `before` snapshot and are excluded).
Outcome run_workload(Engine& engine, const std::vector<System>& systems) {
  Outcome outcome;
  const ArtifactStore::Stats before = engine.store_stats();
  util::Stopwatch clock;
  for (const System& system : systems) {
    const AnalysisReport report = engine.run(AnalysisRequest::standard(system, {3, 10}));
    outcome.answers.push_back(results_of(to_json(report)));
  }
  outcome.seconds = clock.seconds();
  const ArtifactStore::Stats after = engine.store_stats();
  outcome.busy_window_solves =
      after.stage[kBusyWindowStage].insertions - before.stage[kBusyWindowStage].insertions;
  outcome.artifact_solves = sum_insertions(after) - sum_insertions(before);
  return outcome;
}

void emit_bench_json(const char* variant, const Outcome& o, bool identical_to_cold,
                     double solve_ratio_vs_warm, std::size_t persisted_artifacts,
                     std::size_t load_skipped_corrupt) {
  std::ostringstream os;
  io::JsonWriter w(os);
  w.begin_object();
  w.key("name");
  w.value("store_restart");
  w.key("variant");
  w.value(variant);
  w.key("seconds");
  w.value(o.seconds);
  w.key("busy_window_solves");
  w.value(static_cast<long long>(o.busy_window_solves));
  w.key("artifact_solves");
  w.value(static_cast<long long>(o.artifact_solves));
  w.key("identical_to_cold");
  w.value(identical_to_cold);
  w.key("solve_ratio_vs_warm");
  w.value(solve_ratio_vs_warm);
  w.key("persisted_artifacts");
  w.value(static_cast<long long>(persisted_artifacts));
  w.key("load_skipped_corrupt");
  w.value(static_cast<long long>(load_skipped_corrupt));
  w.end_object();
  std::cout << "BENCH " << os.str() << '\n';
}

void print_tables() {
  const std::vector<System> systems = workload_systems();

  char dir_template[] = "/tmp/wharf_store_restart_XXXXXX";
  const char* dir = ::mkdtemp(dir_template);
  if (dir == nullptr) {
    std::cerr << "bench: mkdtemp failed\n";
    std::exit(1);
  }

  // Cold, then stayed-up warm, on one persistent engine; spill on the
  // way out (exactly what `wharf analyze --store-dir` does per run).
  EngineOptions options;
  options.store_dir = dir;
  Engine first{options};
  const Outcome cold = run_workload(first, systems);
  const Outcome warm = run_workload(first, systems);
  const StoreSaveResult saved = first.persist();
  if (!saved.status.is_ok()) {
    std::cerr << "bench: snapshot save failed: " << saved.status.message() << "\n";
    std::exit(1);
  }

  // Restart-warm: a fresh engine loads the snapshot, then replays.
  Engine second{options};
  const Engine::PersistenceStats& loaded = second.persistence_stats();
  const Outcome restart = run_workload(second, systems);

  std::remove(store_snapshot_path(dir).c_str());
  ::rmdir(dir);

  const bool warm_identical = warm.answers == cold.answers;
  const bool restart_identical = restart.answers == cold.answers;
  // <= against the stayed-up run with +1 slack on both sides so the
  // ratio stays meaningful when the warm run resolves everything (0
  // solves) — the common case this bench exists to prove.
  const double solve_ratio =
      static_cast<double>(restart.busy_window_solves + 1) /
      static_cast<double>(warm.busy_window_solves + 1);

  std::cout << "=== wharf store restart: " << systems.size()
            << "-system workload, cold vs stayed-up-warm vs restart-warm (snapshot: "
            << saved.bytes_written << " bytes, " << saved.records_written << " records) ===\n";
  io::TextTable table(
      {"variant", "seconds", "busy-window solves", "all-stage solves", "identical to cold"});
  table.add_row({"cold (empty store)", util::cat(cold.seconds), util::cat(cold.busy_window_solves),
                 util::cat(cold.artifact_solves), "yes"});
  table.add_row({"warm (stayed up)", util::cat(warm.seconds), util::cat(warm.busy_window_solves),
                 util::cat(warm.artifact_solves), warm_identical ? "yes" : "NO — BUG"});
  table.add_row({"warm (restarted)", util::cat(restart.seconds),
                 util::cat(restart.busy_window_solves), util::cat(restart.artifact_solves),
                 restart_identical ? "yes" : "NO — BUG"});
  std::cout << table.render();
  std::cout << "snapshot restored " << loaded.persisted_artifacts << " artifacts ("
            << loaded.load_skipped_corrupt << " skipped); restart/warm busy-window solve ratio: "
            << solve_ratio << "\n\n";

  emit_bench_json("cold", cold, true, 0.0, 0, 0);
  emit_bench_json("warm", warm, warm_identical, 1.0, 0, 0);
  emit_bench_json("restart", restart, restart_identical, solve_ratio,
                  loaded.persisted_artifacts, loaded.load_skipped_corrupt);
}

void BM_SnapshotLoad(benchmark::State& state) {
  // Verified load (full CRC pass + deserialization + insertion) of the
  // bench workload's snapshot — the fixed cost a warm restart pays.
  const std::vector<System> systems = workload_systems();
  char dir_template[] = "/tmp/wharf_store_bm_XXXXXX";
  const char* dir = ::mkdtemp(dir_template);
  if (dir == nullptr) {
    state.SkipWithError("mkdtemp failed");
    return;
  }
  EngineOptions options;
  options.store_dir = dir;
  Engine writer{options};
  for (const System& system : systems) {
    (void)writer.run(AnalysisRequest::standard(system, {3, 10}));
  }
  (void)writer.persist();
  const std::string path = store_snapshot_path(dir);
  for (auto _ : state) {
    ArtifactStore store;
    const StoreLoadResult loaded = store.load(path);
    benchmark::DoNotOptimize(loaded.records_loaded);
  }
  std::remove(path.c_str());
  ::rmdir(dir);
}
BENCHMARK(BM_SnapshotLoad)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
