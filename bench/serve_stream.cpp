// Serve-stream benchmark: the end-to-end cost of the `wharf serve`
// NDJSON loop on the traffic shape it was designed for — an outer loop
// sweeping a design space one delta at a time.
//
// Two clients issue the same 60-mutation sweep (every mutation queried
// with the standard latency+dmm set), through the real wire path (JSON
// parse -> session -> report serialization):
//
//  * cold — the pre-session protocol: every mutation ships the whole
//    mutated system as a fresh open_session/query/close conversation
//    against a fresh engine (nothing reused, like N one-shot
//    `wharf analyze` calls);
//  * warm — the session protocol: one open_session, then
//    apply_delta/query pairs on one long-lived engine, so each delta
//    re-solves only the slices it touches.
//
// Emits machine-readable "BENCH {...}" JSON lines (requests/sec,
// busy-window solves, warm-vs-cold identity) next to the tables; CI
// gates on `identical_to_cold` and on warm performing strictly fewer
// busy-window solves.
//
//   $ ./bench_serve_stream

#include <benchmark/benchmark.h>

#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "cli/serve.hpp"
#include "engine/engine.hpp"
#include "gen/random_systems.hpp"
#include "io/json.hpp"
#include "io/system_format.hpp"
#include "io/tables.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace {

using namespace wharf;

constexpr std::size_t kBusyWindowStage =
    static_cast<std::size_t>(static_cast<int>(ArtifactStage::kBusyWindow));

System sweep_base() {
  gen::RandomSystemSpec spec;
  spec.min_chains = 8;
  spec.max_chains = 8;
  spec.min_tasks = 1;
  spec.max_tasks = 2;
  spec.utilization = 0.5;
  spec.overload_chains = 1;
  std::mt19937_64 rng(42);
  return gen::random_system(spec, rng, "serve_sweep");
}

/// One random pairwise priority swap per step, as (flat index, flat
/// index) pairs over the base task order.
std::vector<std::pair<std::size_t, std::size_t>> sweep_swaps(const System& base, int steps,
                                                             std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const std::size_t tasks = static_cast<std::size_t>(base.task_count());
  std::uniform_int_distribution<std::size_t> pick(0, tasks - 1);
  std::vector<std::pair<std::size_t, std::size_t>> swaps;
  swaps.reserve(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) swaps.emplace_back(pick(rng), pick(rng));
  return swaps;
}

std::string query_line(int id) {
  return util::cat(
      R"({"id":)", id,
      R"(,"type":"query","session":"s","queries":[{"kind":"latency","chain":"chain0"},)"
      R"({"kind":"latency","chain":"chain3"},{"kind":"dmm","chain":"chain0","ks":[1,10]},)"
      R"({"kind":"dmm","chain":"chain5","ks":[1,10]}]})");
}

/// The per-query "results":[...] payload of a response line (answers
/// only — diagnostics legitimately differ between warm and cold).
std::string results_of(const std::string& response_line) {
  const auto begin = response_line.find("\"results\":");
  const auto end = response_line.find(",\"diagnostics\"");
  if (begin == std::string::npos || end == std::string::npos) return response_line;
  return response_line.substr(begin, end - begin);
}

struct StreamOutcome {
  double seconds = 0;
  long long requests = 0;
  std::size_t busy_window_solves = 0;   ///< artifacts computed (store insertions)
  std::vector<std::string> query_results;  ///< per mutation, answers only

  [[nodiscard]] double requests_per_sec() const {
    return seconds > 0 ? static_cast<double>(requests) / seconds : 0.0;
  }
};

/// The session protocol: one conversation, deltas between queries.
StreamOutcome run_warm(const System& base,
                       const std::vector<std::pair<std::size_t, std::size_t>>& swaps) {
  std::vector<std::string> names;
  for (const Chain& chain : base.chains()) {
    for (const Task& task : chain.tasks()) names.push_back(chain.name() + "." + task.name);
  }

  std::ostringstream conversation;
  int id = 0;
  conversation << R"({"id":)" << ++id
               << R"(,"type":"open_session","session":"s","system":")"
               << io::json_escape(io::serialize_system(base)) << "\"}\n";
  std::vector<Priority> flat = base.flat_priorities();
  for (const auto& [i, j] : swaps) {
    conversation << R"({"id":)" << ++id
                 << R"(,"type":"apply_delta","session":"s","deltas":[)"
                 << R"({"kind":"set_priority","task":")" << names[i] << R"(","priority":)"
                 << flat[j] << R"(},{"kind":"set_priority","task":")" << names[j]
                 << R"(","priority":)" << flat[i] << "}]}\n";
    std::swap(flat[i], flat[j]);
    conversation << query_line(++id) << '\n';
  }
  conversation << R"({"id":)" << ++id << R"(,"type":"close","session":"s"})" << '\n';

  Engine engine;
  std::istringstream in(conversation.str());
  std::ostringstream out;
  util::Stopwatch clock;
  (void)cli::serve_stream(engine, in, out);
  StreamOutcome outcome;
  outcome.seconds = clock.seconds();
  outcome.requests = id;
  outcome.busy_window_solves = engine.store_stats().stage[kBusyWindowStage].insertions;

  std::istringstream lines(out.str());
  for (std::string line; std::getline(lines, line);) {
    if (line.find("\"report\":") != std::string::npos) {
      outcome.query_results.push_back(results_of(line));
    }
  }
  return outcome;
}

/// The pre-session protocol: every mutation is its own conversation
/// (whole system shipped, fresh engine — nothing reused).
StreamOutcome run_cold(const System& base,
                       const std::vector<std::pair<std::size_t, std::size_t>>& swaps) {
  StreamOutcome outcome;
  std::vector<Priority> flat = base.flat_priorities();
  util::Stopwatch clock;
  double seconds = 0;
  for (const auto& [i, j] : swaps) {
    std::swap(flat[i], flat[j]);
    const System mutated = base.with_priorities(flat);
    std::ostringstream conversation;
    conversation << R"({"id":1,"type":"open_session","session":"s","system":")"
                 << io::json_escape(io::serialize_system(mutated)) << "\"}\n"
                 << query_line(2) << '\n'
                 << R"({"id":3,"type":"close","session":"s"})" << '\n';

    Engine engine;
    std::istringstream in(conversation.str());
    std::ostringstream out;
    util::Stopwatch per_conversation;
    (void)cli::serve_stream(engine, in, out);
    seconds += per_conversation.seconds();
    outcome.requests += 3;
    outcome.busy_window_solves += engine.store_stats().stage[kBusyWindowStage].insertions;

    std::istringstream lines(out.str());
    for (std::string line; std::getline(lines, line);) {
      if (line.find("\"report\":") != std::string::npos) {
        outcome.query_results.push_back(results_of(line));
      }
    }
  }
  outcome.seconds = seconds;
  (void)clock;
  return outcome;
}

void emit_bench_json(const char* variant, const StreamOutcome& o, double speedup,
                     bool identical) {
  std::ostringstream os;
  io::JsonWriter w(os);
  w.begin_object();
  w.key("name");
  w.value("serve_stream");
  w.key("variant");
  w.value(variant);
  w.key("requests");
  w.value(o.requests);
  w.key("seconds");
  w.value(o.seconds);
  w.key("requests_per_sec");
  w.value(o.requests_per_sec());
  w.key("busy_window_solves");
  w.value(static_cast<long long>(o.busy_window_solves));
  w.key("identical_to_cold");
  w.value(identical);
  w.key("speedup_vs_cold");
  w.value(speedup);
  w.end_object();
  std::cout << "BENCH " << os.str() << '\n';
}

void print_tables() {
  constexpr int kSteps = 60;
  const System base = sweep_base();
  const auto swaps = sweep_swaps(base, kSteps, 7);

  const StreamOutcome cold = run_cold(base, swaps);
  const StreamOutcome warm = run_warm(base, swaps);
  const double speedup = warm.seconds > 0 ? cold.seconds / warm.seconds : 0.0;
  const bool identical = warm.query_results == cold.query_results &&
                         warm.query_results.size() == static_cast<std::size_t>(kSteps);

  std::cout << "=== wharf serve: one session + deltas vs. one conversation per mutation ("
            << kSteps << " mutations) ===\n";
  io::TextTable table({"variant", "requests", "seconds", "req/s", "busy-window solves"});
  table.add_row({"cold (open/query/close per mutation)", util::cat(cold.requests),
                 util::cat(cold.seconds), util::cat(cold.requests_per_sec()),
                 util::cat(cold.busy_window_solves)});
  table.add_row({"warm (one session, delta batches)", util::cat(warm.requests),
                 util::cat(warm.seconds), util::cat(warm.requests_per_sec()),
                 util::cat(warm.busy_window_solves)});
  std::cout << table.render();
  std::cout << "speedup warm vs cold: " << speedup
            << "x; answers bit-identical: " << (identical ? "yes" : "NO — BUG") << "\n\n";

  emit_bench_json("cold", cold, 1.0, true);
  emit_bench_json("warm", warm, speedup, identical);
}

void BM_ServeRoundtrip(benchmark::State& state) {
  // One apply_delta + query roundtrip against a persistent warm session.
  const System base = sweep_base();
  const auto swaps = sweep_swaps(base, 2, 11);
  for (auto _ : state) {
    state.PauseTiming();
    const StreamOutcome outcome = run_warm(base, swaps);
    state.ResumeTiming();
    benchmark::DoNotOptimize(outcome.requests);
  }
}
BENCHMARK(BM_ServeRoundtrip)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
