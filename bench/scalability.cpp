// Scalability of the analysis on synthetic systems: runtime versus number
// of chains, tasks per chain and number of overload chains, plus the
// cost of long dmm horizons.  (The paper evaluates a 13-task industrial
// system; this harness shows the implementation comfortably scales far
// beyond that.)
//
//   $ ./bench_scalability

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/case_studies.hpp"
#include "core/twca.hpp"
#include "engine/engine.hpp"
#include "gen/random_systems.hpp"
#include "io/tables.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace {

using namespace wharf;

System sized_system(int chains, int tasks, int overload, std::uint64_t seed) {
  gen::RandomSystemSpec spec;
  spec.min_chains = chains;
  spec.max_chains = chains;
  spec.min_tasks = tasks;
  spec.max_tasks = tasks;
  spec.utilization = 0.6;
  spec.overload_chains = overload;
  spec.overload_gap = 100'000;
  spec.periods = {500, 1000, 2000, 4000};
  std::mt19937_64 rng(seed);
  return gen::random_system(spec, rng, util::cat("s", chains, "x", tasks));
}

void print_tables() {
  std::cout << "=== Analysis wall time vs system size (single-shot, RelWithDebInfo) ===\n";
  io::TextTable table({"chains x tasks", "overload", "total tasks", "full analysis [us]",
                       "dmm(10) all chains [us]"});
  Engine engine;
  for (const auto& [chains, tasks, overload] :
       std::vector<std::tuple<int, int, int>>{{2, 3, 1}, {4, 4, 1}, {8, 5, 2}, {16, 5, 2},
                                              {32, 6, 3}}) {
    const System sys = sized_system(chains, tasks, overload, 99);
    AnalysisRequest latency_request{sys, {}, {}};
    AnalysisRequest dmm_request{sys, {}, {}};
    for (int c : sys.regular_indices()) {
      latency_request.queries.push_back(LatencyQuery{sys.chain(c).name(), false});
      dmm_request.queries.push_back(DmmQuery{sys.chain(c).name(), {10}});
    }
    util::Stopwatch sw;
    (void)engine.run(latency_request);  // cache miss: computes K/WCL/N_b
    const double latency_us = sw.microseconds();
    sw.reset();
    (void)engine.run(dmm_request);  // cache hit: only the k-dependent part
    const double dmm_us = sw.microseconds();
    table.add_row({util::cat(chains, " x ", tasks), util::cat(overload),
                   util::cat(sys.task_count()), util::cat(static_cast<long long>(latency_us)),
                   util::cat(static_cast<long long>(dmm_us))});
  }
  std::cout << table.render() << '\n';
}

void BM_EngineBatchJobs(benchmark::State& state) {
  // End-to-end batch throughput: 32 distinct random systems, full
  // latency+dmm standard requests, under a varying jobs knob.
  std::vector<AnalysisRequest> requests;
  for (int i = 0; i < 32; ++i) {
    requests.push_back(
        AnalysisRequest::standard(sized_system(4, 4, 1, 200 + static_cast<std::uint64_t>(i))));
  }
  for (auto _ : state) {
    Engine engine{EngineOptions{static_cast<int>(state.range(0)), EngineOptions{}.cache_bytes}};
    benchmark::DoNotOptimize(engine.run_batch(requests));
  }
}
BENCHMARK(BM_EngineBatchJobs)->Arg(1)->Arg(2)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_LatencyVsChains(benchmark::State& state) {
  const System sys = sized_system(static_cast<int>(state.range(0)), 4, 1, 7);
  const int target = sys.regular_indices().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(latency_analysis(sys, target));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LatencyVsChains)->RangeMultiplier(2)->Range(2, 32)->Complexity();

void BM_DmmVsOverloadChains(benchmark::State& state) {
  const System sys = sized_system(3, 4, static_cast<int>(state.range(0)), 13);
  for (auto _ : state) {
    TwcaAnalyzer analyzer{sys};
    benchmark::DoNotOptimize(analyzer.dmm(sys.regular_indices().front(), 10));
  }
}
BENCHMARK(BM_DmmVsOverloadChains)->DenseRange(1, 4);

void BM_DmmVsHorizon(benchmark::State& state) {
  // The case study's sigma_c exercises the full Theorem-3 pipeline
  // (Omega + combination packing) at every k.
  const System sys = case_studies::date17_case_study(case_studies::OverloadModel::kRareOverload);
  TwcaAnalyzer analyzer{sys};
  (void)analyzer.dmm(case_studies::kSigmaC, 1);  // warm the k-independent caches
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.dmm(case_studies::kSigmaC, state.range(0)));
  }
}
BENCHMARK(BM_DmmVsHorizon)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
