// Core-solver benchmark: the data-oriented busy-window kernel (flat
// ArrivalTable lookups, warm-started fixed points, allocation-free
// iterations) against the preserved pre-flattening implementation
// (wharf::reference — virtual eta/delta dispatch, cold Kleene starts),
// on a priority-sweep workload covering every arrival model family.
//
// Each candidate permutes the task priorities of a ~0.99-utilization
// system with periodic, jittered, sporadic, delta-curve and burst
// chains (plus an asynchronous chain and an overload chain), and every
// regular chain is solved twice per candidate: full and overload-free —
// exactly the per-target work of a standard engine request.
//
// Emits machine-readable "BENCH {...}" JSON lines next to the tables;
// CI gates on `identical_to_reference` (field-by-field LatencyResult
// equality across the whole sweep), on `speedup_vs_reference >= 2` and
// on an absolute solves/sec floor.
//
//   $ ./bench_core_solver

#include <benchmark/benchmark.h>

#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/busy_window.hpp"
#include "core/system.hpp"
#include "core/twca.hpp"
#include "gen/random_systems.hpp"
#include "io/json.hpp"
#include "io/tables.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace {

using namespace wharf;

/// A high-utilization system exercising all five arrival model families
/// (flat dense-prefix, tail-anchor and residue-maximization table paths
/// alike), an asynchronous chain (self header pile-up term) and one
/// sporadic overload chain.
System sweep_system() {
  std::vector<Chain> chains;
  auto chain = [](std::string name, ArrivalModelPtr arrival, std::vector<Task> tasks,
                  Time deadline, ChainKind kind = ChainKind::kSynchronous) {
    Chain::Spec spec;
    spec.name = std::move(name);
    spec.kind = kind;
    spec.arrival = std::move(arrival);
    spec.deadline = deadline;
    spec.tasks = std::move(tasks);
    return Chain(std::move(spec));
  };
  chains.push_back(chain("per", periodic(400), {Task{"p0", 1, 50}, Task{"p1", 2, 45}}, 400));
  chains.push_back(chain("jit", periodic_jitter(800, 1600, 300),
                         {Task{"j0", 3, 55}, Task{"j1", 4, 50}}, 800));
  chains.push_back(chain("spo", sporadic(500), {Task{"s0", 5, 60}, Task{"s1", 6, 52}}, 500));
  chains.push_back(chain("cur", delta_curve({0, 120, 250, 400, 560}, 350),
                         {Task{"c0", 7, 35}, Task{"c1", 8, 33}}, 700));
  chains.push_back(chain("bur", sporadic_burst(1200, 3, 60),
                         {Task{"b0", 9, 28}, Task{"b1", 10, 22}}, 1200));
  chains.push_back(chain("asy", periodic(900), {Task{"a0", 11, 40}, Task{"a1", 12, 35}}, 900,
                         ChainKind::kAsynchronous));
  Chain::Spec overload;
  overload.name = "ov";
  overload.arrival = sporadic(25'000);
  overload.overload = true;
  overload.tasks = {Task{"o0", 13, 60}};
  chains.emplace_back(std::move(overload));
  return System("core_sweep", std::move(chains));
}

/// Field-by-field LatencyResult equality — the bit-identity criterion.
bool same_result(const LatencyResult& a, const LatencyResult& b) {
  return a.bounded == b.bounded && a.reason == b.reason && a.K == b.K &&
         a.busy_times == b.busy_times && a.wcl == b.wcl && a.worst_q == b.worst_q &&
         a.misses_per_window == b.misses_per_window && a.schedulable == b.schedulable;
}

struct SweepOutcome {
  double seconds = 0;
  long long solves = 0;
  std::vector<LatencyResult> results;

  [[nodiscard]] double solves_per_sec() const {
    return seconds > 0 ? static_cast<double>(solves) / seconds : 0.0;
  }
};

/// Runs the sweep through one implementation: `flat` picks the
/// data-oriented kernel, otherwise the reference path.
SweepOutcome run_sweep(const std::vector<System>& candidates, bool flat) {
  AnalysisOptions options;
  options.max_busy_windows = 5'000;
  SweepOutcome outcome;
  util::Stopwatch clock;
  for (const System& sys : candidates) {
    for (int target : sys.regular_indices()) {
      for (const std::vector<int>& exclude :
           {std::vector<int>{}, sys.overload_indices()}) {
        outcome.results.push_back(flat ? latency_analysis(sys, target, options, exclude)
                                       : reference::latency_analysis(sys, target, options,
                                                                     exclude));
        ++outcome.solves;
      }
    }
  }
  outcome.seconds = clock.seconds();
  return outcome;
}

void emit_bench_json(const char* variant, const SweepOutcome& o, double speedup,
                     bool identical) {
  std::ostringstream os;
  io::JsonWriter w(os);
  w.begin_object();
  w.key("name");
  w.value("core_solver");
  w.key("variant");
  w.value(variant);
  w.key("solves");
  w.value(o.solves);
  w.key("seconds");
  w.value(o.seconds);
  w.key("solves_per_sec");
  w.value(o.solves_per_sec());
  w.key("speedup_vs_reference");
  w.value(speedup);
  w.key("identical_to_reference");
  w.value(identical);
  w.end_object();
  std::cout << "BENCH " << os.str() << '\n';
}

void print_tables() {
  constexpr int kCandidates = 60;
  const System base = sweep_system();
  std::vector<System> candidates;
  candidates.push_back(base);
  std::mt19937_64 rng(17);
  for (int i = 1; i < kCandidates; ++i) {
    candidates.push_back(gen::with_random_priorities(base, rng));
  }

  const SweepOutcome reference = run_sweep(candidates, /*flat=*/false);
  const SweepOutcome flat = run_sweep(candidates, /*flat=*/true);
  const double speedup =
      flat.seconds > 0 ? reference.seconds / flat.seconds : 0.0;
  bool identical = flat.results.size() == reference.results.size();
  for (std::size_t i = 0; identical && i < flat.results.size(); ++i) {
    identical = same_result(flat.results[i], reference.results[i]);
  }

  std::cout << "=== Core solver: flat arrival tables vs. virtual-dispatch reference ("
            << kCandidates << " priority permutations, all arrival families) ===\n";
  io::TextTable table({"variant", "solves", "seconds", "solves/s"});
  table.add_row({"reference (virtual dispatch, cold starts)", util::cat(reference.solves),
                 util::cat(reference.seconds), util::cat(reference.solves_per_sec())});
  table.add_row({"flat (arrival tables, warm starts)", util::cat(flat.solves),
                 util::cat(flat.seconds), util::cat(flat.solves_per_sec())});
  std::cout << table.render();
  std::cout << "speedup flat vs reference: " << speedup
            << "x; answers bit-identical: " << (identical ? "yes" : "NO — BUG") << "\n\n";

  emit_bench_json("reference", reference, 1.0, true);
  emit_bench_json("flat", flat, speedup, identical);
}

void BM_FlatLatency(benchmark::State& state) {
  const System sys = sweep_system();
  AnalysisOptions options;
  options.max_busy_windows = 5'000;
  const int target = sys.regular_indices().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(latency_analysis(sys, target, options));
  }
}
BENCHMARK(BM_FlatLatency);

void BM_ReferenceLatency(benchmark::State& state) {
  const System sys = sweep_system();
  AnalysisOptions options;
  options.max_busy_windows = 5'000;
  const int target = sys.regular_indices().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference::latency_analysis(sys, target, options));
  }
}
BENCHMARK(BM_ReferenceLatency);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
