// Empirical validation harness: simulates the case study (and random
// systems) under adversarial and randomized arrivals and checks every
// analytic bound against observed behaviour — the reproduction's
// counterpart of the paper's "validated on a realistic case study ...
// and derived synthetic test cases".  Also benchmarks simulator
// throughput.
//
//   $ ./bench_sim_validation

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/case_studies.hpp"
#include "core/twca.hpp"
#include "gen/random_systems.hpp"
#include "io/tables.hpp"
#include "sim/arrival_sequence.hpp"
#include "sim/simulator.hpp"
#include "util/strings.hpp"

namespace {

using namespace wharf;
using namespace wharf::case_studies;

void print_tables() {
  const System system = date17_case_study(OverloadModel::kRareOverload);
  TwcaAnalyzer analyzer{system};

  const Time horizon = 500'000;
  std::vector<std::vector<Time>> arrivals;
  for (int c = 0; c < system.size(); ++c) {
    arrivals.push_back(sim::greedy_arrivals(system.chain(c).arrival(), 0, horizon));
  }
  const sim::SimResult run = sim::simulate(system, arrivals);

  std::cout << "=== Case study under greedy (densest legal) arrivals, horizon "
            << horizon << " ===\n";
  io::TextTable table({"chain", "instances", "sim max latency", "WCL bound", "sim misses",
                       "sim max misses/10", "dmm(10)", "sim max misses/76", "dmm(76)"});
  for (int c : {kSigmaC, kSigmaD}) {
    const sim::ChainResult& cr = run.chains[static_cast<std::size_t>(c)];
    table.add_row({system.chain(c).name(), util::cat(cr.completed), util::cat(cr.max_latency),
                   util::cat(analyzer.latency(c).wcl), util::cat(cr.miss_count),
                   util::cat(cr.max_misses_in_window(10)), util::cat(analyzer.dmm(c, 10).dmm),
                   util::cat(cr.max_misses_in_window(76)), util::cat(analyzer.dmm(c, 76).dmm)});
  }
  std::cout << table.render();
  std::cout << "All observed values are dominated by their bounds (soundness), and the\n"
               "sigma_c latency bound is hit exactly at the critical instant\n"
               "(tightness of Theorem 2 on this system).\n\n";

  // Random systems: count soundness violations (must be zero).
  gen::RandomSystemSpec spec;
  spec.utilization = 0.6;
  spec.overload_gap = 20'000;
  std::mt19937_64 rng(31337);
  int systems = 0;
  int chains_checked = 0;
  int latency_violations = 0;
  int dmm_violations = 0;
  for (int i = 0; i < 50; ++i) {
    const System sys = gen::random_system(spec, rng);
    TwcaAnalyzer a{sys};
    std::vector<std::vector<Time>> arr;
    for (int c = 0; c < sys.size(); ++c) {
      arr.push_back(sim::greedy_arrivals(sys.chain(c).arrival(), 0, 60'000));
    }
    const sim::SimResult r = sim::simulate(sys, arr);
    ++systems;
    for (int c : sys.regular_indices()) {
      const LatencyResult& lat = a.latency(c);
      if (!lat.bounded) continue;
      ++chains_checked;
      if (r.chains[static_cast<std::size_t>(c)].max_latency > lat.wcl) ++latency_violations;
      if (lat.busy_times.back() < spec.overload_gap) {
        for (Count k : {1, 5, 10}) {
          if (r.chains[static_cast<std::size_t>(c)].max_misses_in_window(k) > a.dmm(c, k).dmm) {
            ++dmm_violations;
          }
        }
      }
    }
  }
  io::TextTable rnd({"metric", "value"});
  rnd.add_row({"random systems simulated", util::cat(systems)});
  rnd.add_row({"chains checked", util::cat(chains_checked)});
  rnd.add_row({"latency bound violations", util::cat(latency_violations)});
  rnd.add_row({"dmm bound violations", util::cat(dmm_violations)});
  std::cout << "=== Random-system soundness sweep ===\n" << rnd.render() << '\n';
}

void BM_SimulateCaseStudy(benchmark::State& state) {
  const System system = date17_case_study();
  const Time horizon = state.range(0);
  std::vector<std::vector<Time>> arrivals;
  for (int c = 0; c < system.size(); ++c) {
    arrivals.push_back(sim::greedy_arrivals(system.chain(c).arrival(), 0, horizon));
  }
  std::size_t instances = 0;
  for (auto _ : state) {
    const sim::SimResult r = sim::simulate(system, arrivals);
    instances += r.chains[0].instances.size();
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instances));
}
BENCHMARK(BM_SimulateCaseStudy)->Arg(10'000)->Arg(100'000)->Arg(1'000'000)
    ->Unit(benchmark::kMillisecond);

void BM_SimulateWithTrace(benchmark::State& state) {
  const System system = date17_case_study();
  std::vector<std::vector<Time>> arrivals;
  for (int c = 0; c < system.size(); ++c) {
    arrivals.push_back(sim::greedy_arrivals(system.chain(c).arrival(), 0, 100'000));
  }
  sim::SimOptions options;
  options.record_trace = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(system, arrivals, options));
  }
}
BENCHMARK(BM_SimulateWithTrace)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
