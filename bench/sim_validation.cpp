// Empirical validation harness: simulates the case study (and random
// systems) under adversarial and randomized arrivals and checks every
// analytic bound against observed behaviour — the reproduction's
// counterpart of the paper's "validated on a realistic case study ...
// and derived synthetic test cases".  Also benchmarks simulator
// throughput.
//
//   $ ./bench_sim_validation

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/case_studies.hpp"
#include "core/twca.hpp"
#include "engine/engine.hpp"
#include "gen/random_systems.hpp"
#include "io/tables.hpp"
#include "sim/arrival_sequence.hpp"
#include "sim/simulator.hpp"
#include "util/strings.hpp"

namespace {

using namespace wharf;
using namespace wharf::case_studies;

void print_tables() {
  const System system = date17_case_study(OverloadModel::kRareOverload);
  Engine engine;

  // One engine request covers both simulation runs (windows 10 and 76,
  // each cross-validated against the analytic bounds) plus the bounds
  // themselves; all five queries share the cached per-system artifacts.
  const Time horizon = 500'000;
  SimulationQuery sim10;
  sim10.horizon = horizon;
  sim10.check_k = 10;
  SimulationQuery sim76 = sim10;
  sim76.check_k = 76;
  const AnalysisReport report = engine.run(AnalysisRequest{
      system,
      {},
      {sim10, sim76, LatencyQuery{"sigma_c", false}, LatencyQuery{"sigma_d", false},
       DmmQuery{"sigma_c", {10, 76}}, DmmQuery{"sigma_d", {10, 76}}}});
  const auto& run10 = std::get<SimulationAnswer>(report.results[0].answer);
  const auto& run76 = std::get<SimulationAnswer>(report.results[1].answer);

  std::cout << "=== Case study under greedy (densest legal) arrivals, horizon "
            << horizon << " ===\n";
  io::TextTable table({"chain", "instances", "sim max latency", "WCL bound", "sim misses",
                       "sim max misses/10", "dmm(10)", "sim max misses/76", "dmm(76)"});
  for (int c : {kSigmaC, kSigmaD}) {
    const auto& cr = run10.chains[static_cast<std::size_t>(c)];
    const auto& lat = std::get<LatencyAnswer>(report.results[c == kSigmaC ? 2 : 3].answer);
    const auto& dmm = std::get<DmmAnswer>(report.results[c == kSigmaC ? 4 : 5].answer);
    table.add_row({cr.chain, util::cat(cr.completed), util::cat(cr.max_latency),
                   util::cat(lat.result.wcl), util::cat(cr.miss_count),
                   util::cat(cr.max_window_misses), util::cat(dmm.curve[0].dmm),
                   util::cat(run76.chains[static_cast<std::size_t>(c)].max_window_misses),
                   util::cat(dmm.curve[1].dmm)});
  }
  std::cout << table.render();
  std::cout << "cross-validation: " << (run10.validated && run76.validated ? "passed" : "FAILED")
            << " (" << run10.violations.size() + run76.violations.size() << " violations)\n";
  std::cout << "All observed values are dominated by their bounds (soundness), and the\n"
               "sigma_c latency bound is hit exactly at the critical instant\n"
               "(tightness of Theorem 2 on this system).\n\n";

  // Random systems: count soundness violations (must be zero).  One
  // batched engine run over all sampled systems, three cross-validated
  // simulation windows each.
  gen::RandomSystemSpec spec;
  spec.utilization = 0.6;
  spec.overload_gap = 20'000;
  std::mt19937_64 rng(31337);
  std::vector<AnalysisRequest> sweep;
  sweep.reserve(50);
// GCC 12 reports a spurious -Wmaybe-uninitialized deep inside the Query
// variant's inlined move when push_back relocates (no real path reads
// uninitialized storage; fixed in GCC 13).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
  for (int i = 0; i < 50; ++i) {
    AnalysisRequest request{gen::random_system(spec, rng), {}, {}};
    request.queries.reserve(3);
    for (const Count k : {1, 5, 10}) {
      SimulationQuery query;
      query.horizon = 60'000;
      query.check_k = k;
      request.queries.push_back(query);
    }
    sweep.push_back(std::move(request));
  }
#pragma GCC diagnostic pop
  Engine sweep_engine{EngineOptions{0, EngineOptions{}.cache_bytes}};  // all hardware threads
  const std::vector<AnalysisReport> reports = sweep_engine.run_batch(sweep);

  int checks = 0;
  int violations = 0;
  for (const AnalysisReport& r : reports) {
    for (const QueryResult& q : r.results) {
      const auto& answer = std::get<SimulationAnswer>(q.answer);
      ++checks;
      violations += static_cast<int>(answer.violations.size());
      for (const std::string& v : answer.violations) {
        std::cout << "VIOLATION in " << r.system << ": " << v << '\n';
      }
    }
  }
  io::TextTable rnd({"metric", "value"});
  rnd.add_row({"random systems simulated", util::cat(reports.size())});
  rnd.add_row({"cross-validated sim runs", util::cat(checks)});
  rnd.add_row({"soundness violations", util::cat(violations)});
  std::cout << "=== Random-system soundness sweep ===\n" << rnd.render() << '\n';
}

void BM_SimulateCaseStudy(benchmark::State& state) {
  const System system = date17_case_study();
  const Time horizon = state.range(0);
  std::vector<std::vector<Time>> arrivals;
  for (int c = 0; c < system.size(); ++c) {
    arrivals.push_back(sim::greedy_arrivals(system.chain(c).arrival(), 0, horizon));
  }
  std::size_t instances = 0;
  for (auto _ : state) {
    const sim::SimResult r = sim::simulate(system, arrivals);
    instances += r.chains[0].instances.size();
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instances));
}
BENCHMARK(BM_SimulateCaseStudy)->Arg(10'000)->Arg(100'000)->Arg(1'000'000)
    ->Unit(benchmark::kMillisecond);

void BM_SimulateWithTrace(benchmark::State& state) {
  const System system = date17_case_study();
  std::vector<std::vector<Time>> arrivals;
  for (int c = 0; c < system.size(); ++c) {
    arrivals.push_back(sim::greedy_arrivals(system.chain(c).arrival(), 0, 100'000));
  }
  sim::SimOptions options;
  options.record_trace = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(system, arrivals, options));
  }
}
BENCHMARK(BM_SimulateWithTrace)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
