// Ablation on the Theorem 3 machinery: (a) minimal-only versus full
// combination enumeration (Section V-C motivates avoiding the full U),
// and (b) the branch-and-bound ILP versus the exhaustive DFS packer.
// Both variants must agree on every dmm value; the ablation quantifies
// how much work each shortcut saves.
//
//   $ ./bench_ablation_ilp

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/case_studies.hpp"
#include "core/twca.hpp"
#include "gen/random_systems.hpp"
#include "ilp/packing.hpp"
#include "io/tables.hpp"
#include "util/strings.hpp"

namespace {

using namespace wharf;

/// A synthetic system with several overload chains and many active
/// segments, to give the combination machinery real work.
System heavy_overload_system(std::uint64_t seed) {
  gen::RandomSystemSpec spec;
  spec.min_chains = 2;
  spec.max_chains = 3;
  spec.min_tasks = 3;
  spec.max_tasks = 6;
  spec.utilization = 0.6;
  spec.deadline_factor = 0.8;  // tight deadlines: overload can cause misses
  spec.overload_chains = 3;
  spec.overload_tasks_max = 3;
  spec.overload_wcet_max = 60;
  spec.overload_gap = 50'000;
  std::mt19937_64 rng(seed);
  return gen::random_system(spec, rng, util::cat("heavy", seed));
}

/// Hand-crafted system whose single overload chain has three active
/// segments inside one segment (splits at the low-priority tasks o3 and
/// o5), so the combination lattice is a non-trivial 2^3-1 subset family:
/// with slack 20, four combinations are unschedulable and exactly three
/// of them are minimal.
System three_active_segments_system() {
  Chain::Spec target;
  target.name = "target";
  target.arrival = periodic(1000);
  target.deadline = 50;
  target.tasks = {Task{"t1", 2, 10}, Task{"t2", 10, 20}};  // min prio 2, tail prio 10

  Chain::Spec over;
  over.name = "over";
  over.arrival = sporadic(10'000);
  over.overload = true;
  over.tasks = {Task{"o1", 20, 8}, Task{"o2", 15, 6}, Task{"o3", 3, 7},
                Task{"o4", 18, 9}, Task{"o5", 4, 5},  Task{"o6", 16, 4}};
  return System("three_active", {Chain(std::move(target)), Chain(std::move(over))});
}

void print_tables() {
  std::cout << "=== Minimal-only vs full combination enumeration ===\n";
  io::TextTable table({"system", "chain", "|U| full", "|U| minimal", "dmm(20) full",
                       "dmm(20) minimal"});
  TwcaOptions full_opts;
  full_opts.minimal_only = false;
  TwcaOptions min_opts;
  min_opts.minimal_only = true;

  std::vector<System> systems;
  systems.push_back(three_active_segments_system());
  for (std::uint64_t seed : {1, 2, 3, 4, 5}) systems.push_back(heavy_overload_system(seed));

  for (const System& sys : systems) {
    TwcaAnalyzer full{sys, full_opts};
    TwcaAnalyzer minimal{sys, min_opts};
    for (int c : sys.regular_indices()) {
      const DmmResult f = full.dmm(c, 20);
      const DmmResult m = minimal.dmm(c, 20);
      if (f.status != DmmStatus::kBounded || f.unschedulable_count == 0) continue;
      table.add_row({sys.name(), sys.chain(c).name(), util::cat(f.unschedulable_count),
                     util::cat(m.unschedulable_count), util::cat(f.dmm), util::cat(m.dmm)});
    }
  }
  std::cout << table.render();
  std::cout << "dmm values agree by construction (proof in combinations.hpp); the\n"
               "minimal set is never larger and often much smaller.\n\n";

  std::cout << "=== Eq. 5 sufficient criterion vs exact Eq. 3 classification ===\n";
  io::TextTable criteria({"system", "chain", "slack Eq5", "slack exact", "dmm(20) Eq5",
                          "dmm(20) exact"});
  {
    TwcaOptions eq5_opts;
    TwcaOptions eq3_opts;
    eq3_opts.criterion = SchedulabilityCriterion::kExactEq3;
    for (const System& sys : systems) {
      TwcaAnalyzer eq5{sys, eq5_opts};
      TwcaAnalyzer eq3{sys, eq3_opts};
      for (int c : sys.regular_indices()) {
        const DmmResult a = eq5.dmm(c, 20);
        const DmmResult b = eq3.dmm(c, 20);
        if (a.status != DmmStatus::kBounded || a.unschedulable_count == 0) continue;
        criteria.add_row({sys.name(), sys.chain(c).name(), util::cat(a.slack),
                          util::cat(b.slack), util::cat(a.dmm), util::cat(b.dmm)});
      }
    }
  }
  std::cout << criteria.render();
  std::cout << "The exact per-q fixed-point test never yields a worse dmm; where the\n"
               "slacks agree, the paper's cheap criterion is tight.\n\n";

  std::cout << "=== Branch&bound ILP vs exhaustive DFS packing ===\n";
  io::TextTable solvers({"instance", "optimum", "B&B nodes", "DFS nodes"});
  std::vector<System> solver_systems;
  solver_systems.push_back(three_active_segments_system());
  for (std::uint64_t seed : {11, 12, 13, 14, 15}) {
    solver_systems.push_back(heavy_overload_system(seed));
  }
  for (const System& sys : solver_systems) {
    TwcaOptions ilp_opts;
    TwcaOptions dfs_opts;
    dfs_opts.use_dfs_packer = true;
    TwcaAnalyzer with_ilp{sys, ilp_opts};
    TwcaAnalyzer with_dfs{sys, dfs_opts};
    for (int c : sys.regular_indices()) {
      const DmmResult a = with_ilp.dmm(c, 50);
      const DmmResult b = with_dfs.dmm(c, 50);
      if (a.status != DmmStatus::kBounded || a.unschedulable_count == 0) continue;
      solvers.add_row({util::cat(sys.name(), "/", sys.chain(c).name()),
                       util::cat(a.packing_optimum), util::cat(a.solver_nodes),
                       util::cat(b.solver_nodes)});
    }
  }
  std::cout << solvers.render() << '\n';
}

void BM_EnumerationFull(benchmark::State& state) {
  const System sys = heavy_overload_system(1);
  const OverloadStructure structure = overload_structure(sys, sys.regular_indices().front());
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_combinations(sys, structure, 1'000'000));
  }
}
BENCHMARK(BM_EnumerationFull);

void BM_PackingIlp(benchmark::State& state) {
  ilp::PackingProblem p;
  p.capacities = {4, 5, 3, 6, 2};
  p.item_resources = {{0, 1}, {1, 2}, {0, 3}, {2, 3, 4}, {0, 4}, {1, 3}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ilp::solve_packing_ilp(p));
  }
}
BENCHMARK(BM_PackingIlp);

void BM_PackingDfs(benchmark::State& state) {
  ilp::PackingProblem p;
  p.capacities = {4, 5, 3, 6, 2};
  p.item_resources = {{0, 1}, {1, 2}, {0, 3}, {2, 3, 4}, {0, 4}, {1, 3}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ilp::solve_packing_dfs(p));
  }
}
BENCHMARK(BM_PackingDfs);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
