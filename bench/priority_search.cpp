// Priority-assignment synthesis harness (extension motivated by the
// paper's Experiment 2): compares random sampling against hill climbing
// on the case study, reporting the best weakly-hard objective per
// evaluation budget.
//
//   $ ./bench_priority_search

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/case_studies.hpp"
#include "engine/engine.hpp"
#include "io/tables.hpp"
#include "search/priority_search.hpp"
#include "util/strings.hpp"

namespace {

using namespace wharf;
using namespace wharf::case_studies;

std::string objective_string(const search::Objective& o) {
  return util::cat("(missing=", o.chains_missing, ", dmm=", o.total_dmm, ", wcl=", o.total_wcl,
                   ")");
}

void print_tables() {
  const System sys = date17_case_study(OverloadModel::kRareOverload);

  // All six strategy/budget configurations as one engine request: the
  // queries are independent and run on the worker pool.
  AnalysisRequest request{sys, {}, {}};
  std::vector<std::string> labels;
  for (int samples : {10, 100, 1000}) {
    PrioritySearchQuery query;
    query.strategy = PrioritySearchQuery::Strategy::kRandom;
    query.budget = samples;
    query.seed = 7;
    request.queries.push_back(query);
    labels.push_back(util::cat("random(", samples, ")"));
  }
  for (int restarts : {1, 2, 4}) {
    PrioritySearchQuery query;
    query.strategy = PrioritySearchQuery::Strategy::kHillClimb;
    query.restarts = restarts;
    query.budget = 50;
    query.seed = 7;
    request.queries.push_back(query);
    labels.push_back(util::cat("hill_climb(restarts=", restarts, ")"));
  }
  Engine engine{EngineOptions{0, EngineOptions{}.cache_bytes}};  // all hardware threads
  const AnalysisReport report = engine.run(request);

  std::cout << "=== Priority synthesis on the case study (objective: lexicographic\n"
               "    [#chains missing, sum dmm(10), sum WCL], smaller is better) ===\n\n";
  std::cout << "Nominal Figure 4 assignment: "
            << objective_string(std::get<SearchAnswer>(report.results[0].answer).nominal)
            << "\n\n";

  io::TextTable table({"strategy", "evaluations", "best objective"});
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const auto& answer = std::get<SearchAnswer>(report.results[i].answer);
    table.add_row({labels[i], util::cat(answer.result.evaluations),
                   objective_string(answer.result.best_objective)});
  }
  std::cout << table.render();
  std::cout << "Hill climbing reaches zero-miss assignments with modest budgets; random\n"
               "sampling needs orders of magnitude more evaluations for the same\n"
               "objective on larger systems.\n\n";
}

void BM_EvaluateAssignment(benchmark::State& state) {
  const System sys = date17_case_study(OverloadModel::kRareOverload);
  const search::EvaluationSpec spec{10, {}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(search::evaluate_assignment(sys, spec));
  }
}
BENCHMARK(BM_EvaluateAssignment);

void BM_RandomSearch100(benchmark::State& state) {
  const System sys = date17_case_study(OverloadModel::kRareOverload);
  const search::EvaluationSpec spec{10, {}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(search::random_search(sys, spec, 100, 3));
  }
}
BENCHMARK(BM_RandomSearch100)->Unit(benchmark::kMillisecond);

void BM_HillClimbOneRestart(benchmark::State& state) {
  const System sys = date17_case_study(OverloadModel::kRareOverload);
  const search::EvaluationSpec spec{10, {}};
  search::HillClimbOptions options;
  options.restarts = 1;
  options.max_steps = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(search::hill_climb(sys, spec, options));
  }
}
BENCHMARK(BM_HillClimbOneRestart)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
