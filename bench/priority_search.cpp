// Priority-assignment synthesis harness (extension motivated by the
// paper's Experiment 2): hill climbing over pairwise priority swaps,
// scored cold (ReferenceEvaluator — the pre-refactor path, one
// standalone TwcaAnalyzer per candidate) vs. warm (PipelineEvaluator —
// the production path, candidates scored through a shared
// ArtifactStore, so a swap re-solves only the slices it changed).  The
// neighborhood fixture is an 8-chain system, the design-space shape the
// store was built for (cf. bench_cache_effectiveness's sweep).
//
// Emits machine-readable "BENCH {...}" JSON lines next to the
// human-readable tables, so the perf trajectory of the search layer can
// be tracked across commits (CI uploads them as BENCH_priority_search):
//  * `identical_to_cold` — warm search results are bit-identical to the
//    cold sequential objective on the same seeds (hard requirement);
//  * `busy_window_reuse` — fraction of busy-window solves the warm path
//    skips: its every lookup is a solve the cold path performs, so
//    reuse = hits / lookups is exactly "solves avoided vs. cold"
//    (acceptance bar: >= 0.5);
//  * `speedup_vs_cold` — wall-clock ratio (fixture-dependent: on
//    µs-cheap systems key serialization dominates and warm trails cold
//    sequentially; on expensive instances and under --jobs the skipped
//    solves win).
//
//   $ ./bench_priority_search

#include <benchmark/benchmark.h>

#include <iostream>
#include <random>
#include <sstream>

#include "core/case_studies.hpp"
#include "engine/engine.hpp"
#include "gen/random_systems.hpp"
#include "io/json.hpp"
#include "io/tables.hpp"
#include "search/priority_search.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace {

using namespace wharf;
using namespace wharf::case_studies;

constexpr std::size_t kBusyWindowStage =
    static_cast<std::size_t>(static_cast<int>(ArtifactStage::kBusyWindow));

std::string objective_string(const search::Objective& o) {
  return util::cat("(missing=", o.chains_missing, ", dmm=", o.total_dmm, ", wcl=", o.total_wcl,
                   ")");
}

/// Eight regular chains plus two rare overload chains: wide enough that
/// a pairwise swap leaves most targets' model slices untouched.
System neighborhood_fixture() {
  gen::RandomSystemSpec spec;
  spec.min_chains = 8;
  spec.max_chains = 8;
  spec.min_tasks = 1;
  spec.max_tasks = 2;
  spec.utilization = 0.9;
  spec.deadline_factor = 0.95;
  spec.overload_chains = 2;
  spec.overload_tasks_max = 3;
  spec.overload_gap = 8'000;
  spec.overload_wcet_max = 60;
  std::mt19937_64 rng(42);
  return gen::random_system(spec, rng, "neighborhood");
}

search::HillClimbOptions climb_options() {
  search::HillClimbOptions options;
  options.restarts = 2;
  options.max_steps = 6;
  options.seed = 7;
  return options;
}

struct Outcome {
  search::SearchResult result;
  search::EvaluatorStats stats;
  double seconds = 0;

  [[nodiscard]] double busy_window_reuse() const {
    const StageDiagnostics& bw = stats.stages[kBusyWindowStage];
    return bw.lookups == 0 ? 0.0
                           : static_cast<double>(bw.hits) / static_cast<double>(bw.lookups);
  }

  /// Fraction of per-chain key fragments served from the cross-candidate
  /// slice memo instead of re-serialized (the key-cost lever: candidates
  /// of one neighborhood share almost every untouched chain's slice).
  [[nodiscard]] double slice_reuse() const {
    const std::size_t total = stats.slices.hits + stats.slices.misses;
    return total == 0 ? 0.0 : static_cast<double>(stats.slices.hits) /
                                  static_cast<double>(total);
  }
};

/// Cold baseline: the pre-refactor sequential objective — a standalone
/// analyzer per candidate, nothing reused.
Outcome run_cold(const System& sys) {
  Outcome outcome;
  search::ReferenceEvaluator evaluator(sys, search::EvaluationSpec{10, {}});
  util::Stopwatch clock;
  outcome.result = search::hill_climb(evaluator, climb_options());
  outcome.seconds = clock.seconds();
  outcome.stats = evaluator.stats();
  return outcome;
}

/// Production path: candidates scored through a persistent shared store.
Outcome run_warm(const System& sys, int jobs) {
  Outcome outcome;
  ArtifactStore store;
  search::PipelineEvaluator evaluator(sys, search::EvaluationSpec{10, {}}, {}, store, jobs);
  util::Stopwatch clock;
  outcome.result = search::hill_climb(evaluator, climb_options());
  outcome.seconds = clock.seconds();
  outcome.stats = evaluator.stats();
  return outcome;
}

void emit_bench_json(const char* variant, const Outcome& o, double speedup, bool identical) {
  std::ostringstream os;
  io::JsonWriter w(os);
  w.begin_object();
  w.key("name");
  w.value("priority_search");
  w.key("variant");
  w.value(variant);
  w.key("seconds");
  w.value(o.seconds);
  w.key("evaluations");
  w.value(o.result.evaluations);
  w.key("best");
  w.begin_object();
  w.key("chains_missing");
  w.value(o.result.best_objective.chains_missing);
  w.key("total_dmm");
  w.value(o.result.best_objective.total_dmm);
  w.key("total_wcl");
  w.value(o.result.best_objective.total_wcl);
  w.end_object();
  w.key("identical_to_cold");
  w.value(identical);
  w.key("busy_window_reuse");
  w.value(o.busy_window_reuse());
  w.key("busy_window_lookups");
  w.value(static_cast<long long>(o.stats.stages[kBusyWindowStage].lookups));
  w.key("busy_window_misses");
  w.value(static_cast<long long>(o.stats.stages[kBusyWindowStage].misses));
  w.key("store_hits");
  w.value(static_cast<long long>(o.stats.hits()));
  w.key("store_misses");
  w.value(static_cast<long long>(o.stats.misses()));
  w.key("slice_hits");
  w.value(static_cast<long long>(o.stats.slices.hits));
  w.key("slice_misses");
  w.value(static_cast<long long>(o.stats.slices.misses));
  w.key("slice_reuse");
  w.value(o.slice_reuse());
  w.key("speedup_vs_cold");
  w.value(speedup);
  w.end_object();
  std::cout << "BENCH " << os.str() << '\n';
}

void print_warm_vs_cold() {
  const System sys = neighborhood_fixture();

  const Outcome cold = run_cold(sys);
  const Outcome warm = run_warm(sys, /*jobs=*/1);
  const double speedup = warm.seconds > 0 ? cold.seconds / warm.seconds : 0.0;
  const bool identical = warm.result.best_priorities == cold.result.best_priorities &&
                         warm.result.best_objective == cold.result.best_objective &&
                         warm.result.evaluations == cold.result.evaluations;

  std::cout << "=== Hill climbing, cold (standalone analyzer per candidate) vs. warm\n"
               "    (pipeline-backed evaluator over a shared artifact store) ===\n";
  io::TextTable table(
      {"variant", "seconds", "evaluations", "busy-window reuse", "slice reuse", "best"});
  table.add_row({"cold (reference)", util::cat(cold.seconds),
                 util::cat(cold.result.evaluations), "0 (re-solves all)", "0 (re-keys all)",
                 objective_string(cold.result.best_objective)});
  table.add_row({"warm (pipeline)", util::cat(warm.seconds), util::cat(warm.result.evaluations),
                 util::cat(warm.busy_window_reuse()), util::cat(warm.slice_reuse()),
                 objective_string(warm.result.best_objective)});
  std::cout << table.render();
  std::cout << "speedup warm vs cold: " << speedup
            << "x; results bit-identical: " << (identical ? "yes" : "NO — BUG") << "\n\n";

  emit_bench_json("cold", cold, 1.0, true);
  emit_bench_json("warm", warm, speedup, identical);
}

void print_strategy_table() {
  const System sys = date17_case_study(OverloadModel::kRareOverload);

  // All six strategy/budget configurations as one engine request: the
  // queries are independent and run on the worker pool, all scoring
  // through the engine's shared store.
  AnalysisRequest request{sys, {}, {}};
  std::vector<std::string> labels;
  for (int samples : {10, 100, 1000}) {
    PrioritySearchQuery query;
    query.strategy = PrioritySearchQuery::Strategy::kRandom;
    query.budget = samples;
    query.seed = 7;
    request.queries.push_back(query);
    labels.push_back(util::cat("random(", samples, ")"));
  }
  for (int restarts : {1, 2, 4}) {
    PrioritySearchQuery query;
    query.strategy = PrioritySearchQuery::Strategy::kHillClimb;
    query.restarts = restarts;
    query.budget = 50;
    query.seed = 7;
    request.queries.push_back(query);
    labels.push_back(util::cat("hill_climb(restarts=", restarts, ")"));
  }
  Engine engine{EngineOptions{0, EngineOptions{}.cache_bytes}};  // all hardware threads
  const AnalysisReport report = engine.run(request);

  std::cout << "=== Priority synthesis on the case study (objective: lexicographic\n"
               "    [#chains missing, sum dmm(10), sum WCL], smaller is better) ===\n\n";
  std::cout << "Nominal Figure 4 assignment: "
            << objective_string(std::get<SearchAnswer>(report.results[0].answer).nominal)
            << "\n\n";

  io::TextTable table({"strategy", "evaluations", "best objective", "store hits/misses"});
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const auto& answer = std::get<SearchAnswer>(report.results[i].answer);
    table.add_row({labels[i], util::cat(answer.result.evaluations),
                   objective_string(answer.result.best_objective),
                   util::cat(answer.stats.hits(), "/", answer.stats.misses())});
  }
  std::cout << table.render();
  std::cout << "Hill climbing reaches zero-miss assignments with modest budgets; the\n"
               "shared store makes each neighborhood cost a fraction of its size in\n"
               "busy-window solves.\n\n";
}

void BM_EvaluateAssignment(benchmark::State& state) {
  const System sys = date17_case_study(OverloadModel::kRareOverload);
  const search::EvaluationSpec spec{10, {}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(search::evaluate_assignment(sys, spec));
  }
}
BENCHMARK(BM_EvaluateAssignment);

void BM_HillClimbReference(benchmark::State& state) {
  const System sys = date17_case_study(OverloadModel::kRareOverload);
  search::HillClimbOptions options;
  options.restarts = 1;
  options.max_steps = 3;
  for (auto _ : state) {
    search::ReferenceEvaluator evaluator(sys, search::EvaluationSpec{10, {}});
    benchmark::DoNotOptimize(search::hill_climb(evaluator, options).evaluations);
  }
}
BENCHMARK(BM_HillClimbReference)->Unit(benchmark::kMillisecond);

void BM_HillClimbPipeline(benchmark::State& state) {
  const System sys = date17_case_study(OverloadModel::kRareOverload);
  search::HillClimbOptions options;
  options.restarts = 1;
  options.max_steps = 3;
  for (auto _ : state) {
    ArtifactStore store;
    search::PipelineEvaluator evaluator(sys, search::EvaluationSpec{10, {}}, {}, store, 1);
    benchmark::DoNotOptimize(search::hill_climb(evaluator, options).evaluations);
  }
}
BENCHMARK(BM_HillClimbPipeline)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_warm_vs_cold();
  print_strategy_table();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
