// Priority-assignment synthesis harness (extension motivated by the
// paper's Experiment 2): compares random sampling against hill climbing
// on the case study, reporting the best weakly-hard objective per
// evaluation budget.
//
//   $ ./bench_priority_search

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/case_studies.hpp"
#include "io/tables.hpp"
#include "search/priority_search.hpp"
#include "util/strings.hpp"

namespace {

using namespace wharf;
using namespace wharf::case_studies;

std::string objective_string(const search::Objective& o) {
  return util::cat("(missing=", o.chains_missing, ", dmm=", o.total_dmm, ", wcl=", o.total_wcl,
                   ")");
}

void print_tables() {
  const System sys = date17_case_study(OverloadModel::kRareOverload);
  const search::EvaluationSpec spec{10, {}};

  std::cout << "=== Priority synthesis on the case study (objective: lexicographic\n"
               "    [#chains missing, sum dmm(10), sum WCL], smaller is better) ===\n\n";
  std::cout << "Nominal Figure 4 assignment: "
            << objective_string(search::evaluate_assignment(sys, spec)) << "\n\n";

  io::TextTable table({"strategy", "evaluations", "best objective"});
  for (int samples : {10, 100, 1000}) {
    const search::SearchResult r = search::random_search(sys, spec, samples, 7);
    table.add_row({util::cat("random(", samples, ")"), util::cat(r.evaluations),
                   objective_string(r.best_objective)});
  }
  for (int restarts : {1, 2, 4}) {
    search::HillClimbOptions options;
    options.restarts = restarts;
    options.max_steps = 50;
    options.seed = 7;
    const search::SearchResult r = search::hill_climb(sys, spec, options);
    table.add_row({util::cat("hill_climb(restarts=", restarts, ")"), util::cat(r.evaluations),
                   objective_string(r.best_objective)});
  }
  std::cout << table.render();
  std::cout << "Hill climbing reaches zero-miss assignments with modest budgets; random\n"
               "sampling needs orders of magnitude more evaluations for the same\n"
               "objective on larger systems.\n\n";
}

void BM_EvaluateAssignment(benchmark::State& state) {
  const System sys = date17_case_study(OverloadModel::kRareOverload);
  const search::EvaluationSpec spec{10, {}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(search::evaluate_assignment(sys, spec));
  }
}
BENCHMARK(BM_EvaluateAssignment);

void BM_RandomSearch100(benchmark::State& state) {
  const System sys = date17_case_study(OverloadModel::kRareOverload);
  const search::EvaluationSpec spec{10, {}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(search::random_search(sys, spec, 100, 3));
  }
}
BENCHMARK(BM_RandomSearch100)->Unit(benchmark::kMillisecond);

void BM_HillClimbOneRestart(benchmark::State& state) {
  const System sys = date17_case_study(OverloadModel::kRareOverload);
  const search::EvaluationSpec spec{10, {}};
  search::HillClimbOptions options;
  options.restarts = 1;
  options.max_steps = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(search::hill_climb(sys, spec, options));
  }
}
BENCHMARK(BM_HillClimbOneRestart)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
