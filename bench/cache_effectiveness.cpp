// Cache-effectiveness benchmark: quantifies what the staged ArtifactStore
// buys on the workload it was built for — a design-space sweep that
// mutates one chain at a time and re-analyzes thousands of near-identical
// systems (SAW-style weakly-hard tooling, priority-class exploration).
//
// Two sweeps over the same mutated systems:
//  * cold — a fresh Engine per system (every artifact recomputed);
//  * warm — one persistent Engine whose store carries artifacts across
//    systems, so only the slices a mutation touches recompute.
//
// Emits machine-readable "BENCH {...}" JSON lines (hit rates per stage,
// wall-clock speedup) next to the human-readable table, so the perf
// trajectory of the cache can be tracked across commits:
//
//   $ ./bench_cache_effectiveness

#include <benchmark/benchmark.h>

#include <iostream>
#include <random>
#include <vector>

#include "engine/engine.hpp"
#include "gen/random_systems.hpp"
#include "io/json.hpp"
#include "io/tables.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace {

using namespace wharf;

/// The sweep: a base system plus single-pair priority mutations of it.
/// Swapping one pair of task priorities per step is the smallest move of
/// the paper's Experiment-2 search neighborhood.
std::vector<System> mutation_sweep(int systems, std::uint64_t seed) {
  gen::RandomSystemSpec spec;
  spec.min_chains = 8;
  spec.max_chains = 8;
  spec.min_tasks = 1;
  spec.max_tasks = 2;
  spec.utilization = 0.5;
  spec.overload_chains = 1;
  std::mt19937_64 rng(seed);
  const System base = gen::random_system(spec, rng, "sweep_base");

  std::vector<System> sweep;
  sweep.reserve(static_cast<std::size_t>(systems));
  sweep.push_back(base);
  std::vector<Priority> priorities = base.flat_priorities();
  std::uniform_int_distribution<std::size_t> pick(0, priorities.size() - 1);
  for (int i = 1; i < systems; ++i) {
    std::swap(priorities[pick(rng)], priorities[pick(rng)]);
    sweep.push_back(base.with_priorities(priorities));
  }
  return sweep;
}

struct SweepOutcome {
  double seconds = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::array<StageDiagnostics, kArtifactStageCount> stages{};

  [[nodiscard]] double hit_rate() const {
    const std::size_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

/// Analyzes every system of the sweep, one request each.  `persistent`
/// keeps one engine (warm artifact sharing across systems); otherwise a
/// fresh engine serves each system (cold baseline).
SweepOutcome run_sweep(const std::vector<System>& sweep, bool persistent) {
  SweepOutcome outcome;
  Engine shared;
  util::Stopwatch clock;
  for (const System& sys : sweep) {
    Engine local;
    Engine& engine = persistent ? shared : local;
    const AnalysisReport report = engine.run(AnalysisRequest::standard(sys, {1, 10}));
    outcome.hits += report.diagnostics.cache_hits;
    outcome.misses += report.diagnostics.cache_misses;
    for (std::size_t s = 0; s < kArtifactStageCount; ++s) {
      outcome.stages[s].lookups += report.diagnostics.stages[s].lookups;
      outcome.stages[s].hits += report.diagnostics.stages[s].hits;
      outcome.stages[s].misses += report.diagnostics.stages[s].misses;
      outcome.stages[s].bytes_inserted += report.diagnostics.stages[s].bytes_inserted;
    }
    benchmark::DoNotOptimize(report.results.size());
  }
  outcome.seconds = clock.seconds();
  return outcome;
}

void emit_bench_json(const char* variant, int systems, const SweepOutcome& o, double speedup) {
  std::ostringstream os;
  io::JsonWriter w(os);
  w.begin_object();
  w.key("name");
  w.value("cache_effectiveness");
  w.key("variant");
  w.value(variant);
  w.key("systems");
  w.value(systems);
  w.key("seconds");
  w.value(o.seconds);
  w.key("hit_rate");
  w.value(o.hit_rate());
  w.key("speedup_vs_cold");
  w.value(speedup);
  w.key("stages");
  w.begin_object();
  for (std::size_t s = 0; s < kArtifactStageCount; ++s) {
    w.key(to_string(static_cast<ArtifactStage>(static_cast<int>(s))));
    w.begin_object();
    w.key("lookups");
    w.value(static_cast<long long>(o.stages[s].lookups));
    w.key("hits");
    w.value(static_cast<long long>(o.stages[s].hits));
    w.key("misses");
    w.value(static_cast<long long>(o.stages[s].misses));
    w.end_object();
  }
  w.end_object();
  w.end_object();
  std::cout << "BENCH " << os.str() << '\n';
}

void print_tables() {
  constexpr int kSystems = 200;
  const std::vector<System> sweep = mutation_sweep(kSystems, 42);

  const SweepOutcome cold = run_sweep(sweep, /*persistent=*/false);
  const SweepOutcome warm = run_sweep(sweep, /*persistent=*/true);
  const double speedup = warm.seconds > 0 ? cold.seconds / warm.seconds : 0.0;

  std::cout << "=== Artifact-store effectiveness on a priority-mutation sweep ("
            << kSystems << " systems) ===\n";
  io::TextTable table({"variant", "seconds", "hit rate", "busy-window misses"});
  table.add_row({"cold (fresh engine per system)", util::cat(cold.seconds), "0",
                 util::cat(cold.stages[static_cast<int>(ArtifactStage::kBusyWindow)].misses)});
  table.add_row({"warm (persistent engine)", util::cat(warm.seconds),
                 util::cat(warm.hit_rate()),
                 util::cat(warm.stages[static_cast<int>(ArtifactStage::kBusyWindow)].misses)});
  std::cout << table.render();
  std::cout << "speedup warm vs cold: " << speedup << "x\n\n";

  emit_bench_json("cold", kSystems, cold, 1.0);
  emit_bench_json("warm", kSystems, warm, speedup);
}

void BM_SweepColdEngines(benchmark::State& state) {
  const std::vector<System> sweep = mutation_sweep(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_sweep(sweep, /*persistent=*/false).misses);
  }
}
BENCHMARK(BM_SweepColdEngines)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_SweepWarmEngine(benchmark::State& state) {
  const std::vector<System> sweep = mutation_sweep(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_sweep(sweep, /*persistent=*/true).misses);
  }
}
BENCHMARK(BM_SweepWarmEngine)->Arg(20)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
