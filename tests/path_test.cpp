// Tests for path analysis (paper footnote 1): derived output models,
// per-chain deadline budgeting, the Σ-composition bounds, and the linked
// simulation that validates them.

#include <gtest/gtest.h>

#include "core/path_analysis.hpp"
#include "sim/arrival_sequence.hpp"
#include "sim/simulator.hpp"
#include "util/expect.hpp"

namespace wharf {
namespace {

/// Two-stage pipeline plus an overload chain.  Hand-computed values:
///   stage1: B(1) = 45 + 15 (crit. segment of stage2) + 35 (overload)
///           = 95 = WCL1;  derived output: shift = 95 - 45 = 50.
///   stage2 (declared arrival = derived output model of stage1):
///           B(1) = 45 + 45 (stage1 arbitrary) + 35 = 125 = WCL2.
///   path WCL = 220.
System pipeline_system() {
  Chain::Spec stage1;
  stage1.name = "stage1";
  stage1.arrival = periodic(300);
  stage1.deadline = 300;
  stage1.tasks = {Task{"s1a", 6, 20}, Task{"s1b", 2, 25}};

  Chain::Spec stage2;
  stage2.name = "stage2";
  // Declared activation: placeholder, replaced by the derived model in
  // linked_pipeline_system() below; standalone tests use this directly.
  stage2.arrival = periodic(300);
  stage2.deadline = 300;
  stage2.tasks = {Task{"s2a", 5, 15}, Task{"s2b", 1, 30}};

  Chain::Spec overload;
  overload.name = "ov";
  overload.arrival = sporadic(10'000);
  overload.overload = true;
  overload.tasks = {Task{"ov1", 7, 35}};

  return System("pipeline",
                {Chain(std::move(stage1)), Chain(std::move(stage2)), Chain(std::move(overload))});
}

/// pipeline_system() with stage2's activation replaced by the sound
/// derived output model of stage1.
System linked_pipeline_system() {
  const System base = pipeline_system();
  const LatencyResult lat1 = latency_analysis(base, 0);
  const ArrivalModelPtr derived = derived_output_model(base.chain(0), lat1);

  std::vector<Chain> chains;
  for (int c = 0; c < base.size(); ++c) {
    const Chain& chain = base.chain(c);
    Chain::Spec spec;
    spec.name = chain.name();
    spec.kind = chain.kind();
    spec.arrival = c == 1 ? derived : chain.arrival_ptr();
    spec.deadline = chain.deadline();
    spec.overload = chain.is_overload();
    spec.tasks = chain.tasks();
    chains.emplace_back(std::move(spec));
  }
  return System(base.name(), std::move(chains));
}

// ---------------------------------------------------------------------------
// Oracle boundary: path_latency/path_dmm compose over PathChainOracle
// ---------------------------------------------------------------------------

/// A recording oracle forwarding to standalone analyses (the default
/// behavior), capturing which budgets the composition hands out.
class RecordingOracle final : public PathChainOracle {
 public:
  explicit RecordingOracle(const System& system) : system_(system) {}

  LatencyResult latency(int chain) override { return latency_analysis(system_, chain); }

  DmmResult dmm_with_budget(int chain, Time budget, Count k) override {
    budgets_seen.push_back(budget);
    const TwcaAnalyzer analyzer{system_.with_deadline(chain, budget)};
    return analyzer.dmm(chain, k);
  }

  std::vector<Time> budgets_seen;

 private:
  const System& system_;
};

TEST(PathOracle, FreeFunctionsMatchPathAnalyzer) {
  const System sys = pipeline_system();
  PathSpec path;
  path.chains = {0, 1};
  path.deadline = 200;  // < 220: misses possible

  RecordingOracle oracle{sys};
  const PathLatencyResult lat = path_latency(sys, path, oracle);
  const PathDmmResult dmm = path_dmm(sys, path, 5, oracle);

  const PathAnalyzer analyzer{sys};
  const PathLatencyResult lat_ref = analyzer.latency(path);
  const PathDmmResult dmm_ref = analyzer.dmm(path, 5);
  EXPECT_EQ(lat.wcl, lat_ref.wcl);
  EXPECT_EQ(lat.per_chain_wcl, lat_ref.per_chain_wcl);
  EXPECT_EQ(dmm.dmm, dmm_ref.dmm);
  EXPECT_EQ(dmm.status, dmm_ref.status);
  EXPECT_EQ(dmm.budgets, dmm_ref.budgets);
}

TEST(PathOracle, BudgetsHandedToOracleSumToDeadline) {
  const System sys = pipeline_system();
  PathSpec path;
  path.chains = {0, 1};
  path.deadline = 200;

  RecordingOracle oracle{sys};
  const PathDmmResult result = path_dmm(sys, path, 5, oracle);
  ASSERT_EQ(oracle.budgets_seen.size(), 2u);
  EXPECT_EQ(oracle.budgets_seen[0] + oracle.budgets_seen[1], 200);
  EXPECT_EQ(oracle.budgets_seen, result.budgets);
}

TEST(SystemWithDeadline, ReplacesOnlyTheTarget) {
  const System sys = pipeline_system();
  const System budgeted = sys.with_deadline(0, 123);
  EXPECT_EQ(budgeted.chain(0).deadline(), std::optional<Time>(123));
  EXPECT_EQ(budgeted.chain(1).deadline(), sys.chain(1).deadline());
  const System removed = sys.with_deadline(1, std::nullopt);
  EXPECT_FALSE(removed.chain(1).deadline().has_value());
  EXPECT_THROW((void)sys.with_deadline(99, 5), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Derived output models
// ---------------------------------------------------------------------------

TEST(DerivedOutput, PeriodicInputShiftsBothCurves) {
  const System sys = pipeline_system();
  const LatencyResult lat = latency_analysis(sys, 0);
  ASSERT_TRUE(lat.bounded);
  EXPECT_EQ(lat.wcl, 95);

  const ArrivalModelPtr out = derived_output_model(sys.chain(0), lat);
  // shift = 95 - 45 = 50: delta_minus(q) = max(0, (q-1)*300 - 50).
  EXPECT_EQ(out->delta_minus(2), 250);
  EXPECT_EQ(out->delta_minus(3), 550);
  // delta_plus(q) = (q-1)*300 + 50 (finite!).
  EXPECT_EQ(out->delta_plus(2), 350);
  EXPECT_EQ(out->delta_plus(5), 1250);
  EXPECT_FALSE(is_infinite(out->delta_plus(100)));
}

TEST(DerivedOutput, SporadicInputKeepsUnboundedPlus) {
  Chain::Spec s;
  s.name = "sporadic_chain";
  s.arrival = sporadic(500);
  s.deadline = 400;
  s.tasks = {Task{"t", 1, 40}};
  const System sys("one", {Chain(std::move(s))});
  const LatencyResult lat = latency_analysis(sys, 0);
  const ArrivalModelPtr out = derived_output_model(sys.chain(0), lat);
  EXPECT_EQ(out->delta_plus(2), kTimeInfinity);
  // WCL == C here (chain alone): no shift at all.
  EXPECT_EQ(out->delta_minus(2), 500);
}

TEST(DerivedOutput, ObservedLinkedArrivalsAreLegalForDerivedModel) {
  // The key soundness property: the completions of stage1 (= linked
  // activations of stage2) must be legal for the derived model.
  const System sys = linked_pipeline_system();
  const ArrivalModelPtr declared = sys.chain(1).arrival_ptr();

  sim::SimOptions options;
  options.links = {sim::ChainLink{0, 1}};
  std::vector<std::vector<Time>> arrivals(3);
  arrivals[0] = sim::periodic_arrivals(300, 0, 30'000);
  arrivals[2] = sim::greedy_arrivals(sys.chain(2).arrival(), 0, 30'000);
  const sim::SimResult r = sim::simulate(sys, arrivals, options);

  std::vector<Time> stage2_activations;
  for (const sim::InstanceRecord& rec : r.chains[1].instances) {
    stage2_activations.push_back(rec.activation);
  }
  EXPECT_EQ(stage2_activations.size(), arrivals[0].size());
  EXPECT_TRUE(sim::is_legal_sequence(stage2_activations, *declared));
}

// ---------------------------------------------------------------------------
// Path analysis
// ---------------------------------------------------------------------------

TEST(PathAnalysis, LatencySumsPerChainWcls) {
  PathAnalyzer analyzer{linked_pipeline_system()};
  PathSpec path;
  path.chains = {0, 1};
  const PathLatencyResult r = analyzer.latency(path);
  ASSERT_TRUE(r.bounded);
  EXPECT_EQ(r.per_chain_wcl, (std::vector<Time>{95, 125}));
  EXPECT_EQ(r.wcl, 220);
}

TEST(PathAnalysis, AlwaysMeetsWhenDeadlineCoversSum) {
  PathAnalyzer analyzer{linked_pipeline_system()};
  PathSpec path;
  path.chains = {0, 1};
  path.deadline = 250;
  const PathDmmResult r = analyzer.dmm(path, 10);
  EXPECT_EQ(r.status, DmmStatus::kAlwaysMeets);
  EXPECT_EQ(r.dmm, 0);
}

TEST(PathAnalysis, DmmSumsBudgetedChainDmms) {
  PathAnalyzer analyzer{linked_pipeline_system()};
  PathSpec path;
  path.chains = {0, 1};
  path.deadline = 200;  // < 220: misses possible
  const PathDmmResult r = analyzer.dmm(path, 5);
  EXPECT_EQ(r.status, DmmStatus::kBounded);
  // Proportional budgets: 200 * 95/220 = 86, remainder to stage2 -> 114.
  EXPECT_EQ(r.budgets, (std::vector<Time>{86, 114}));
  // Each stage: slack below the overload cost (35) -> dmm_i(5) = 2.
  EXPECT_EQ(r.per_chain, (std::vector<Count>{2, 2}));
  EXPECT_EQ(r.dmm, 4);
}

TEST(PathAnalysis, ExplicitBudgetsHonoured) {
  PathAnalyzer analyzer{linked_pipeline_system()};
  PathSpec path;
  path.chains = {0, 1};
  path.deadline = 200;
  path.budgets = {100, 100};
  const PathDmmResult r = analyzer.dmm(path, 5);
  EXPECT_EQ(r.status, DmmStatus::kBounded);
  EXPECT_EQ(r.budgets, (std::vector<Time>{100, 100}));
  // stage1 with D=100: WCL 95 <= 100 -> always meets -> 0 misses;
  // stage2 with D=100: slack 100-90=10 < 35 -> dmm 2.
  EXPECT_EQ(r.per_chain, (std::vector<Count>{0, 2}));
  EXPECT_EQ(r.dmm, 2);
}

TEST(PathAnalysis, SingleChainPathDegeneratesToChainAnalysis) {
  PathAnalyzer analyzer{linked_pipeline_system()};
  PathSpec path;
  path.chains = {0};
  path.deadline = 90;  // < WCL 95
  const PathDmmResult r = analyzer.dmm(path, 5);
  EXPECT_EQ(r.status, DmmStatus::kBounded);
  EXPECT_EQ(r.budgets, (std::vector<Time>{90}));
  TwcaAnalyzer chain_analyzer{[] {
    // same system with stage1 deadline 90
    const System base = linked_pipeline_system();
    std::vector<Chain> chains;
    for (int c = 0; c < base.size(); ++c) {
      const Chain& chain = base.chain(c);
      Chain::Spec spec;
      spec.name = chain.name();
      spec.kind = chain.kind();
      spec.arrival = chain.arrival_ptr();
      spec.deadline = c == 0 ? std::optional<Time>(90) : chain.deadline();
      spec.overload = chain.is_overload();
      spec.tasks = chain.tasks();
      chains.emplace_back(std::move(spec));
    }
    return System(base.name(), std::move(chains));
  }()};
  EXPECT_EQ(r.dmm, chain_analyzer.dmm(0, 5).dmm);
}

TEST(PathAnalysis, Validation) {
  PathAnalyzer analyzer{linked_pipeline_system()};
  PathSpec empty;
  EXPECT_THROW(analyzer.latency(empty), InvalidArgument);

  PathSpec dup;
  dup.chains = {0, 0};
  EXPECT_THROW(analyzer.latency(dup), InvalidArgument);

  PathSpec with_overload;
  with_overload.chains = {0, 2};
  EXPECT_THROW(analyzer.latency(with_overload), InvalidArgument);

  PathSpec no_deadline;
  no_deadline.chains = {0, 1};
  EXPECT_THROW(analyzer.dmm(no_deadline, 5), InvalidArgument);

  PathSpec bad_budgets;
  bad_budgets.chains = {0, 1};
  bad_budgets.deadline = 200;
  bad_budgets.budgets = {50, 100};  // sums to 150, not 200
  EXPECT_THROW(analyzer.dmm(bad_budgets, 5), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Linked simulation vs path bounds
// ---------------------------------------------------------------------------

TEST(PathSimulation, ObservedPathLatencyWithinBound) {
  const System sys = linked_pipeline_system();
  PathAnalyzer analyzer{sys};
  PathSpec path;
  path.chains = {0, 1};
  const PathLatencyResult bound = analyzer.latency(path);
  ASSERT_TRUE(bound.bounded);

  sim::SimOptions options;
  options.links = {sim::ChainLink{0, 1}};
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    std::vector<std::vector<Time>> arrivals(3);
    arrivals[0] = sim::periodic_arrivals(300, static_cast<Time>(seed * 37), 60'000);
    arrivals[2] = sim::random_arrivals(sys.chain(2).arrival(), 0, 60'000, 2'000.0, seed);
    const sim::SimResult r = sim::simulate(sys, arrivals, options);
    for (Time latency : sim::path_latencies(r, path.chains)) {
      EXPECT_LE(latency, bound.wcl) << "seed " << seed;
    }
  }
}

TEST(PathSimulation, LinkValidation) {
  const System sys = linked_pipeline_system();
  std::vector<std::vector<Time>> arrivals(3);
  arrivals[0] = {0};

  sim::SimOptions self_link;
  self_link.links = {sim::ChainLink{0, 0}};
  EXPECT_THROW(sim::simulate(sys, arrivals, self_link), InvalidArgument);

  sim::SimOptions join;
  join.links = {sim::ChainLink{0, 1}, sim::ChainLink{2, 1}};
  EXPECT_THROW(sim::simulate(sys, arrivals, join), InvalidArgument);

  sim::SimOptions cycle;
  cycle.links = {sim::ChainLink{0, 1}, sim::ChainLink{1, 0}};
  EXPECT_THROW(sim::simulate(sys, arrivals, cycle), InvalidArgument);

  sim::SimOptions external_arrivals;
  external_arrivals.links = {sim::ChainLink{0, 1}};
  std::vector<std::vector<Time>> bad = arrivals;
  bad[1] = {5};
  EXPECT_THROW(sim::simulate(sys, bad, external_arrivals), InvalidArgument);
}

TEST(PathSimulation, ForkActivatesBothDownstreams) {
  // head forks into two single-task chains.
  Chain::Spec head;
  head.name = "head";
  head.arrival = periodic(100);
  head.deadline = 100;
  head.tasks = {Task{"h", 3, 10}};
  Chain::Spec left;
  left.name = "left";
  left.arrival = periodic(100);  // declared; fed by link
  left.deadline = 100;
  left.tasks = {Task{"l", 2, 5}};
  Chain::Spec right;
  right.name = "right";
  right.arrival = periodic(100);
  right.deadline = 100;
  right.tasks = {Task{"r", 1, 7}};
  const System sys("fork", {Chain(std::move(head)), Chain(std::move(left)),
                            Chain(std::move(right))});

  sim::SimOptions options;
  options.links = {sim::ChainLink{0, 1}, sim::ChainLink{0, 2}};
  const sim::SimResult r = sim::simulate(sys, {{0, 100}, {}, {}}, options);
  ASSERT_EQ(r.chains[1].instances.size(), 2u);
  ASSERT_EQ(r.chains[2].instances.size(), 2u);
  // head finishes at 10; left (higher prio) runs [10,15); right [15,22).
  EXPECT_EQ(r.chains[1].instances[0].activation, 10);
  EXPECT_EQ(r.chains[1].instances[0].finish, 15);
  EXPECT_EQ(r.chains[2].instances[0].finish, 22);
}

TEST(PathSimulation, PathLatenciesValidation) {
  sim::SimResult r;
  r.chains.resize(2);
  EXPECT_THROW(sim::path_latencies(r, {}), InvalidArgument);
  EXPECT_THROW(sim::path_latencies(r, {5}), InvalidArgument);
  sim::InstanceRecord rec;
  rec.completed = true;
  rec.activation = 0;
  rec.finish = 10;
  r.chains[0].instances.push_back(rec);
  EXPECT_THROW(sim::path_latencies(r, {0, 1}), InvalidArgument);  // count mismatch
  EXPECT_EQ(sim::path_latencies(r, {0}), (std::vector<Time>{10}));
}

}  // namespace
}  // namespace wharf
