// Unit tests for TWCA of task chains (Section V / Theorem 3): combination
// enumeration (Def. 9), Omega (Lemma 4), and the DMM pipeline — anchored
// on the paper's Table II and in-text statements.

#include <gtest/gtest.h>

#include "core/case_studies.hpp"
#include "core/twca.hpp"
#include "util/expect.hpp"

namespace wharf {
namespace {

using case_studies::date17_case_study;
using case_studies::figure1_system;
using case_studies::kSigmaC;
using case_studies::kSigmaD;
using case_studies::OverloadModel;

// ---------------------------------------------------------------------------
// Combinations (Def. 9), validated on the paper's in-text examples
// ---------------------------------------------------------------------------

TEST(Combinations, Figure1FourCombinations) {
  // Build the Figure 1 system with sigma_a flagged as the overload chain;
  // the paper counts exactly four possible combinations of its active
  // segments w.r.t. sigma_b.
  const System base = figure1_system();
  Chain::Spec a_spec;
  a_spec.name = "sigma_a";
  a_spec.kind = ChainKind::kSynchronous;
  a_spec.arrival = sporadic(10'000);
  a_spec.overload = true;
  a_spec.tasks = base.chain(0).tasks();
  Chain::Spec b_spec;
  b_spec.name = "sigma_b";
  b_spec.kind = ChainKind::kSynchronous;
  b_spec.arrival = periodic(100);
  b_spec.deadline = 100;
  b_spec.tasks = base.chain(1).tasks();
  const System sys("fig1_overload", {Chain(std::move(a_spec)), Chain(std::move(b_spec))});

  const OverloadStructure structure = overload_structure(sys, 1);
  ASSERT_EQ(structure.per_chain.size(), 1u);
  EXPECT_EQ(structure.total_active(), 3);

  const auto combos = enumerate_combinations(sys, structure, 1'000);
  EXPECT_EQ(combos.size(), 4u);  // {(t1,t2)}, {(t3)}, {(t1,t2),(t3)}, {(t5)}
}

TEST(Combinations, SameSegmentRuleExcludesCrossSegmentPairs) {
  const System base = figure1_system();
  Chain::Spec a_spec;
  a_spec.name = "sigma_a";
  a_spec.kind = ChainKind::kSynchronous;
  a_spec.arrival = sporadic(10'000);
  a_spec.overload = true;
  a_spec.tasks = base.chain(0).tasks();
  Chain::Spec b_spec;
  b_spec.name = "sigma_b";
  b_spec.kind = ChainKind::kSynchronous;
  b_spec.arrival = periodic(100);
  b_spec.deadline = 100;
  b_spec.tasks = base.chain(1).tasks();
  const System sys("fig1_overload", {Chain(std::move(a_spec)), Chain(std::move(b_spec))});
  const OverloadStructure structure = overload_structure(sys, 1);
  const auto combos = enumerate_combinations(sys, structure, 1'000);
  // No combination may contain active segments from different segments of
  // the same chain: (tau5) never appears together with the others.
  for (const Combination& c : combos) {
    if (c.segments.size() < 2) continue;
    const int seg = structure.per_chain[0].active[static_cast<std::size_t>(c.segments[0].active_index)].segment_index;
    for (const ActiveSegmentId& id : c.segments) {
      EXPECT_EQ(structure.per_chain[0].active[static_cast<std::size_t>(id.active_index)].segment_index, seg);
    }
  }
}

TEST(Combinations, CaseStudyThreeCombinations) {
  // Paper: "Our set of combinations thus has three elements."
  const System sys = date17_case_study();
  const OverloadStructure structure = overload_structure(sys, kSigmaC);
  EXPECT_EQ(structure.total_active(), 2);
  const auto combos = enumerate_combinations(sys, structure, 1'000);
  EXPECT_EQ(combos.size(), 3u);
}

TEST(Combinations, CaseStudyOnlyC3Unschedulable) {
  // Paper: "c3 is the only unschedulable combination" (slack 34; costs
  // 20, 30, 50).
  const System sys = date17_case_study();
  const OverloadStructure structure = overload_structure(sys, kSigmaC);
  const auto unsched = unschedulable_combinations(sys, structure, 34, 1'000, false);
  ASSERT_EQ(unsched.size(), 1u);
  EXPECT_EQ(unsched[0].cost, 50);
  EXPECT_EQ(unsched[0].segments.size(), 2u);
}

TEST(Combinations, MinimalFilterKeepsEquivalentOptimum) {
  const System sys = date17_case_study();
  const OverloadStructure structure = overload_structure(sys, kSigmaC);
  const auto all = unschedulable_combinations(sys, structure, 34, 1'000, false);
  const auto minimal = unschedulable_combinations(sys, structure, 34, 1'000, true);
  EXPECT_EQ(all.size(), minimal.size());  // the only unschedulable combo is minimal
}

TEST(Combinations, FormatCombination) {
  const System sys = date17_case_study();
  const OverloadStructure structure = overload_structure(sys, kSigmaC);
  const auto combos = enumerate_combinations(sys, structure, 1'000);
  bool found_pair = false;
  for (const Combination& c : combos) {
    if (c.segments.size() == 2) {
      const std::string text = format_combination(sys, structure, c);
      EXPECT_NE(text.find("tau1_b"), std::string::npos);
      EXPECT_NE(text.find("tau1_a"), std::string::npos);
      found_pair = true;
    }
  }
  EXPECT_TRUE(found_pair);
}

TEST(Combinations, NegativeSlackRejected) {
  const System sys = date17_case_study();
  const OverloadStructure structure = overload_structure(sys, kSigmaC);
  EXPECT_THROW(unschedulable_combinations(sys, structure, -1, 1'000, true), InvalidArgument);
}

TEST(Combinations, TargetMustNotBeOverload) {
  const System sys = date17_case_study();
  EXPECT_THROW(overload_structure(sys, case_studies::kSigmaA), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Table II, literal sporadic model
// ---------------------------------------------------------------------------

class TwcaLiteral : public ::testing::Test {
 protected:
  TwcaAnalyzer analyzer{date17_case_study(OverloadModel::kLiteralSporadic)};
};

TEST_F(TwcaLiteral, TableII_DmmC3Is3) {
  const DmmResult r = analyzer.dmm(kSigmaC, 3);
  EXPECT_EQ(r.status, DmmStatus::kBounded);
  EXPECT_EQ(r.dmm, 3);
  EXPECT_EQ(r.n_b, 1);
  EXPECT_EQ(r.slack, 34);
  ASSERT_EQ(r.omegas.size(), 2u);
  EXPECT_EQ(r.omegas[0], 3);  // sigma_b: eta(731)=2, +1
  EXPECT_EQ(r.omegas[1], 3);  // sigma_a: eta(731)=2, +1
  EXPECT_EQ(r.unschedulable_count, 1u);
  EXPECT_EQ(r.packing_optimum, 3);
}

TEST_F(TwcaLiteral, SigmaDAlwaysMeets) {
  const DmmResult r = analyzer.dmm(kSigmaD, 10);
  EXPECT_EQ(r.status, DmmStatus::kAlwaysMeets);
  EXPECT_EQ(r.dmm, 0);
  EXPECT_EQ(r.wcl, 175);
}

TEST_F(TwcaLiteral, LongHorizonsGrowWithSporadicModel) {
  // With the literal sporadic curves the k=76 and k=250 values are much
  // larger than the paper's 4 and 5 (see EXPERIMENTS.md): eta grows
  // linearly in the window.
  EXPECT_EQ(analyzer.dmm(kSigmaC, 76).dmm, 23);
  EXPECT_EQ(analyzer.dmm(kSigmaC, 250).dmm, 73);
}

TEST_F(TwcaLiteral, DmmCappedAtK) {
  const DmmResult r = analyzer.dmm(kSigmaC, 1);
  EXPECT_EQ(r.status, DmmStatus::kBounded);
  EXPECT_LE(r.dmm, 1);
}

TEST_F(TwcaLiteral, DmmMonotoneInK) {
  Count prev = 0;
  for (Count k : {1, 2, 3, 5, 10, 20, 50, 100}) {
    const Count v = analyzer.dmm(kSigmaC, k).dmm;
    EXPECT_GE(v, prev) << "k=" << k;
    prev = v;
  }
}

TEST_F(TwcaLiteral, WeaklyHardCheck) {
  EXPECT_TRUE(analyzer.satisfies_weakly_hard(kSigmaC, 3, 3));
  EXPECT_FALSE(analyzer.satisfies_weakly_hard(kSigmaC, 2, 3));
  EXPECT_TRUE(analyzer.satisfies_weakly_hard(kSigmaD, 0, 10));
}

TEST_F(TwcaLiteral, LatencyAccessorsMatchAnalysis) {
  EXPECT_EQ(analyzer.latency(kSigmaC).wcl, 331);
  EXPECT_EQ(analyzer.latency_without_overload(kSigmaC).wcl, 166);
  EXPECT_TRUE(analyzer.latency_without_overload(kSigmaC).schedulable);
}

TEST_F(TwcaLiteral, RejectsBadQueries) {
  EXPECT_THROW(analyzer.dmm(kSigmaC, 0), InvalidArgument);
  EXPECT_THROW(analyzer.dmm(case_studies::kSigmaA, 3), InvalidArgument);
  EXPECT_THROW(analyzer.dmm(99, 3), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Table II, rare-overload model: exact reproduction including breakpoints
// ---------------------------------------------------------------------------

class TwcaRare : public ::testing::Test {
 protected:
  TwcaAnalyzer analyzer{date17_case_study(OverloadModel::kRareOverload)};
};

TEST_F(TwcaRare, TableII_AllEntries) {
  EXPECT_EQ(analyzer.dmm(kSigmaC, 3).dmm, 3);
  EXPECT_EQ(analyzer.dmm(kSigmaC, 76).dmm, 4);
  EXPECT_EQ(analyzer.dmm(kSigmaC, 250).dmm, 5);
}

TEST_F(TwcaRare, TableII_Breakpoints) {
  // dmm increments exactly at the paper's sample points.
  EXPECT_EQ(analyzer.dmm(kSigmaC, 75).dmm, 3);
  EXPECT_EQ(analyzer.dmm(kSigmaC, 76).dmm, 4);
  EXPECT_EQ(analyzer.dmm(kSigmaC, 249).dmm, 4);
  EXPECT_EQ(analyzer.dmm(kSigmaC, 250).dmm, 5);
}

TEST_F(TwcaRare, TableIUnchangedByOverloadModel) {
  // WCL only depends on short windows where both models agree.
  EXPECT_EQ(analyzer.latency(kSigmaC).wcl, 331);
  EXPECT_EQ(analyzer.latency(kSigmaD).wcl, 175);
}

TEST_F(TwcaRare, DmmCurveMatchesPointQueries) {
  const std::vector<Count> ks = {1, 3, 75, 76, 249, 250};
  const auto curve = analyzer.dmm_curve(kSigmaC, ks);
  ASSERT_EQ(curve.size(), ks.size());
  for (std::size_t i = 0; i < ks.size(); ++i) {
    EXPECT_EQ(curve[i].k, ks[i]);
    EXPECT_EQ(curve[i].dmm, analyzer.dmm(kSigmaC, ks[i]).dmm);
  }
}

// ---------------------------------------------------------------------------
// Pipeline edge cases
// ---------------------------------------------------------------------------

TEST(Twca, NoOverloadChainsMeansNoGuaranteeWhenMissing) {
  // sigma_c alone with sigma_d (no overload chains): WCL = 166 <= 200 so
  // it always meets; but if we shrink the deadline it misses with no
  // overload to blame -> kNoGuarantee.
  System sys = date17_case_study();
  std::vector<Chain> chains;
  for (int i : sys.regular_indices()) {
    const Chain& c = sys.chain(i);
    Chain::Spec s;
    s.name = c.name();
    s.kind = c.kind();
    s.arrival = c.arrival_ptr();
    s.deadline = c.name() == "sigma_c" ? std::optional<Time>(100) : c.deadline();
    s.tasks = c.tasks();
    chains.push_back(Chain(std::move(s)));
  }
  const System reduced("no_overload", std::move(chains));
  TwcaAnalyzer analyzer{reduced};
  const DmmResult r = analyzer.dmm(1, 5);  // sigma_c, D=100 < WCL=166
  EXPECT_EQ(r.status, DmmStatus::kNoGuarantee);
  EXPECT_EQ(r.dmm, 5);
  EXPECT_FALSE(r.reason.empty());
}

TEST(Twca, AlwaysMeetsWithoutOverloadChains) {
  System sys = date17_case_study();
  std::vector<Chain> chains;
  for (int i : sys.regular_indices()) chains.push_back(sys.chain(i));
  const System reduced("no_overload", std::move(chains));
  TwcaAnalyzer analyzer{reduced};
  EXPECT_EQ(analyzer.dmm(1, 5).status, DmmStatus::kAlwaysMeets);
  EXPECT_EQ(analyzer.dmm(1, 5).dmm, 0);
}

TEST(Twca, NegativeSlackYieldsNoGuarantee) {
  // Make sigma_c's deadline so small that it misses even without
  // overload: D=150 < 166.
  System sys = date17_case_study();
  std::vector<Chain> chains;
  for (int i = 0; i < sys.size(); ++i) {
    const Chain& c = sys.chain(i);
    Chain::Spec s;
    s.name = c.name();
    s.kind = c.kind();
    s.arrival = c.arrival_ptr();
    s.overload = c.is_overload();
    s.deadline = c.name() == "sigma_c" ? std::optional<Time>(150) : c.deadline();
    s.tasks = c.tasks();
    chains.push_back(Chain(std::move(s)));
  }
  const System tight("tight", std::move(chains));
  TwcaAnalyzer analyzer{tight};
  const DmmResult r = analyzer.dmm(1, 10);
  EXPECT_EQ(r.status, DmmStatus::kNoGuarantee);
  EXPECT_EQ(r.dmm, 10);
  EXPECT_NE(r.reason.find("slack"), std::string::npos);
}

TEST(Twca, ExactCriterionMatchesEq5OnCaseStudy) {
  TwcaOptions exact;
  exact.criterion = SchedulabilityCriterion::kExactEq3;
  TwcaAnalyzer eq5{date17_case_study(OverloadModel::kRareOverload)};
  TwcaAnalyzer eq3{date17_case_study(OverloadModel::kRareOverload), exact};
  for (Count k : {3, 76, 250}) {
    const DmmResult a = eq5.dmm(kSigmaC, k);
    const DmmResult b = eq3.dmm(kSigmaC, k);
    EXPECT_EQ(a.dmm, b.dmm) << "k=" << k;
    EXPECT_EQ(a.slack, b.slack);  // both 34: Eq. 5 is tight here
  }
}

TEST(Twca, ExactCriterionNeverPessimizes) {
  // By construction the exact slack dominates the Eq.-5 slack, so the
  // exact dmm can only be smaller or equal.
  TwcaOptions exact;
  exact.criterion = SchedulabilityCriterion::kExactEq3;
  TwcaAnalyzer eq5{date17_case_study(OverloadModel::kLiteralSporadic)};
  TwcaAnalyzer eq3{date17_case_study(OverloadModel::kLiteralSporadic), exact};
  for (Count k : {1, 5, 20, 100}) {
    const DmmResult a = eq5.dmm(kSigmaC, k);
    const DmmResult b = eq3.dmm(kSigmaC, k);
    EXPECT_GE(b.slack, a.slack) << "k=" << k;
    EXPECT_LE(b.dmm, a.dmm) << "k=" << k;
  }
}

TEST(Twca, DfsPackerMatchesIlpPacker) {
  TwcaOptions dfs_options;
  dfs_options.use_dfs_packer = true;
  TwcaAnalyzer ilp_analyzer{date17_case_study(OverloadModel::kRareOverload)};
  TwcaAnalyzer dfs_analyzer{date17_case_study(OverloadModel::kRareOverload), dfs_options};
  for (Count k : {1, 3, 76, 250}) {
    EXPECT_EQ(ilp_analyzer.dmm(kSigmaC, k).dmm, dfs_analyzer.dmm(kSigmaC, k).dmm) << "k=" << k;
  }
}

TEST(Twca, SporadicTargetHasUnboundedDeltaPlus) {
  // If the analyzed chain itself is sporadic, delta_plus(k) is unbounded
  // and Lemma 4 cannot bound Omega -> no guarantee.
  Chain::Spec target;
  target.name = "t";
  target.arrival = sporadic(200);
  target.deadline = 60;
  target.tasks = {Task{"t1", 2, 50}};
  Chain::Spec over;
  over.name = "o";
  over.arrival = sporadic(10'000);
  over.overload = true;
  over.tasks = {Task{"o1", 3, 20}};
  Chain::Spec filler;
  filler.name = "f";
  filler.arrival = periodic(1'000);
  filler.deadline = 1'000;
  filler.tasks = {Task{"f1", 1, 1}};
  const System sys("sporadic_target",
                   {Chain(std::move(target)), Chain(std::move(over)), Chain(std::move(filler))});
  TwcaAnalyzer analyzer{sys};
  const DmmResult r = analyzer.dmm(0, 4);
  EXPECT_EQ(r.status, DmmStatus::kNoGuarantee);
  EXPECT_EQ(r.dmm, 4);
  EXPECT_NE(r.reason.find("delta_plus"), std::string::npos);
}

TEST(Twca, AsynchronousTargetEndToEnd) {
  // Hand-computed asynchronous example exercising the self-interference
  // terms of Eq. (1) and Eq. (4).  Chain t (async, period 25, D 42):
  // header h (prio 5, C 10), tail (prio 1, C 10); overload o: single task
  // (prio 6, C 15), sporadic(10000).
  //   B(1) = 20 + 1*10 + 15 = 45;  B(2) = 65;  B(3) = 75 = delta(4) -> K=3.
  //   WCL = 45 (q=1); N_b = 1 (only 45 > 42);
  //   L(1) = 30 -> slack 12 < 15 = cost(o) -> U = {{o}}.
  //   Omega(5) = eta_o(100 + 45) + 1 = 2 -> dmm(5) = 2.
  Chain::Spec t;
  t.name = "t";
  t.kind = ChainKind::kAsynchronous;
  t.arrival = periodic(25);
  t.deadline = 42;
  t.tasks = {Task{"h", 5, 10}, Task{"tail", 1, 10}};
  Chain::Spec o;
  o.name = "o";
  o.arrival = sporadic(10'000);
  o.overload = true;
  o.tasks = {Task{"o1", 6, 15}};
  const System sys("async_target", {Chain(std::move(t)), Chain(std::move(o))});

  TwcaAnalyzer analyzer{sys};
  const LatencyResult& lat = analyzer.latency(0);
  ASSERT_TRUE(lat.bounded);
  EXPECT_EQ(lat.K, 3);
  ASSERT_EQ(lat.busy_times.size(), 3u);
  EXPECT_EQ(lat.busy_times[0], 45);
  EXPECT_EQ(lat.busy_times[1], 65);
  EXPECT_EQ(lat.busy_times[2], 75);
  EXPECT_EQ(lat.wcl, 45);
  ASSERT_TRUE(lat.misses_per_window.has_value());
  EXPECT_EQ(*lat.misses_per_window, 1);

  const DmmResult r = analyzer.dmm(0, 5);
  EXPECT_EQ(r.status, DmmStatus::kBounded);
  EXPECT_EQ(r.slack, 12);
  EXPECT_EQ(r.unschedulable_count, 1u);
  EXPECT_EQ(r.dmm, 2);
  EXPECT_EQ(analyzer.dmm(0, 1).dmm, 1);  // capped at k
}

TEST(Twca, StatusToString) {
  EXPECT_EQ(to_string(DmmStatus::kAlwaysMeets), "always-meets");
  EXPECT_EQ(to_string(DmmStatus::kBounded), "bounded");
  EXPECT_EQ(to_string(DmmStatus::kNoGuarantee), "no-guarantee");
}

}  // namespace
}  // namespace wharf
