// Unit tests for src/io: system format round-trips and parse errors, the
// JSON writer, tables/histograms and the Gantt renderer.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/case_studies.hpp"
#include "core/twca.hpp"
#include "io/gantt.hpp"
#include "io/json.hpp"
#include "io/report.hpp"
#include "io/system_format.hpp"
#include "io/tables.hpp"
#include "sim/simulator.hpp"
#include "util/expect.hpp"
#include "util/strings.hpp"

namespace wharf::io {
namespace {

// ---------------------------------------------------------------------------
// System format
// ---------------------------------------------------------------------------

TEST(SystemFormat, RoundTripCaseStudy) {
  const System original = case_studies::date17_case_study();
  const std::string text = serialize_system(original);
  const System parsed = parse_system(text);
  EXPECT_EQ(parsed.name(), original.name());
  ASSERT_EQ(parsed.size(), original.size());
  for (int c = 0; c < original.size(); ++c) {
    EXPECT_EQ(parsed.chain(c).name(), original.chain(c).name());
    EXPECT_EQ(parsed.chain(c).kind(), original.chain(c).kind());
    EXPECT_EQ(parsed.chain(c).deadline(), original.chain(c).deadline());
    EXPECT_EQ(parsed.chain(c).is_overload(), original.chain(c).is_overload());
    EXPECT_EQ(parsed.chain(c).arrival().describe(), original.chain(c).arrival().describe());
    ASSERT_EQ(parsed.chain(c).size(), original.chain(c).size());
    for (int t = 0; t < original.chain(c).size(); ++t) {
      EXPECT_EQ(parsed.chain(c).task(t).name, original.chain(c).task(t).name);
      EXPECT_EQ(parsed.chain(c).task(t).priority, original.chain(c).task(t).priority);
      EXPECT_EQ(parsed.chain(c).task(t).wcet, original.chain(c).task(t).wcet);
    }
  }
}

TEST(SystemFormat, RoundTripRareOverloadCurve) {
  const System original =
      case_studies::date17_case_study(case_studies::OverloadModel::kRareOverload);
  const System parsed = parse_system(serialize_system(original));
  EXPECT_EQ(parsed.chain(case_studies::kSigmaA).arrival().describe(),
            "curve(700,15200,50000;35000)");
}

TEST(SystemFormat, ParsesMinimalSystem) {
  const System s = parse_system(R"(
# comment line
system demo
chain c1 kind=sync activation=periodic(100) deadline=100
  task t1 prio=2 wcet=10
  task t2 prio=1 wcet=5
chain ov activation=sporadic(5000) overload
  task o1 prio=3 wcet=7
)");
  EXPECT_EQ(s.name(), "demo");
  EXPECT_EQ(s.size(), 2);
  EXPECT_TRUE(s.chain(1).is_overload());
  EXPECT_EQ(s.chain(0).total_wcet(), 15);
}

TEST(SystemFormat, AsyncKindParsed) {
  const System s = parse_system(
      "system d\nchain c kind=async activation=periodic(50) deadline=50\n  task t prio=1 wcet=1\n");
  EXPECT_TRUE(s.chain(0).is_asynchronous());
}

struct ParseErrorCase {
  std::string name;
  std::string text;
  int line;
};

class SystemFormatErrors : public ::testing::TestWithParam<ParseErrorCase> {};

TEST_P(SystemFormatErrors, ReportsLineNumber) {
  try {
    (void)parse_system(GetParam().text);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), GetParam().line) << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SystemFormatErrors,
    ::testing::Values(
        ParseErrorCase{"chain_before_system",
                       "chain c activation=periodic(10)\n", 1},
        ParseErrorCase{"task_outside_chain", "system s\ntask t prio=1 wcet=1\n", 2},
        ParseErrorCase{"unknown_directive", "system s\nbogus x\n", 2},
        ParseErrorCase{"bad_kind",
                       "system s\nchain c kind=weird activation=periodic(10)\n", 2},
        ParseErrorCase{"missing_activation", "system s\nchain c kind=sync\n", 2},
        ParseErrorCase{"bad_activation",
                       "system s\nchain c activation=periodic(x)\n", 2},
        ParseErrorCase{"task_missing_wcet",
                       "system s\nchain c activation=periodic(10)\n  task t prio=1\n", 3},
        ParseErrorCase{"chain_without_tasks",
                       "system s\nchain c activation=periodic(10)\n", 2},
        ParseErrorCase{"unknown_chain_attr",
                       "system s\nchain c activation=periodic(10) bogus=1\n", 2},
        ParseErrorCase{"duplicate_system",
                       "system s\nsystem t\n", 2}),
    [](const ::testing::TestParamInfo<ParseErrorCase>& info) { return info.param.name; });

TEST(SystemFormat, ModelInvariantsStillEnforced) {
  // Duplicate priorities across chains: parse succeeds syntactically but
  // System validation rejects.
  EXPECT_THROW((void)parse_system(R"(
system s
chain c1 activation=periodic(10) deadline=10
  task t1 prio=1 wcet=1
chain c2 activation=periodic(10) deadline=10
  task t2 prio=1 wcet=1
)"),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(Json, WriterBasics) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("a");
  w.value(1);
  w.key("b");
  w.begin_array();
  w.value("x");
  w.value(true);
  w.null();
  w.end_array();
  w.key("c");
  w.value(2.5);
  w.end_object();
  EXPECT_EQ(os.str(), R"({"a":1,"b":["x",true,null],"c":2.5})");
}

TEST(Json, EscapesStrings) {
  std::ostringstream os;
  JsonWriter w(os);
  w.value(std::string("he said \"hi\"\n\tback\\slash"));
  EXPECT_EQ(os.str(), R"("he said \"hi\"\n\tback\\slash")");
}

TEST(Json, LatencyResultSerialization) {
  const System sys = case_studies::date17_case_study();
  const LatencyResult r = latency_analysis(sys, case_studies::kSigmaC);
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"wcl\":331"), std::string::npos);
  EXPECT_NE(json.find("\"K\":2"), std::string::npos);
  EXPECT_NE(json.find("\"schedulable\":false"), std::string::npos);
}

TEST(Json, DmmResultSerialization) {
  TwcaAnalyzer analyzer{case_studies::date17_case_study()};
  const DmmResult r = analyzer.dmm(case_studies::kSigmaC, 3);
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"k\":3"), std::string::npos);
  EXPECT_NE(json.find("\"dmm\":3"), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"bounded\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tables and histograms
// ---------------------------------------------------------------------------

TEST(Tables, RendersAligned) {
  TextTable t({"task chain", "WCL", "D"});
  t.add_row({"sigma_c", "331", "200"});
  t.add_row({"sigma_d", "175", "200"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| sigma_c"), std::string::npos);
  EXPECT_NE(s.find("| 331"), std::string::npos);
  EXPECT_NE(s.find("+--"), std::string::npos);
  // Header and 2 rows and 3 rules.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 6);
}

TEST(Tables, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), InvalidArgument);
}

TEST(Tables, Csv) {
  TextTable t({"name", "value"});
  t.add_row({"plain", "1"});
  t.add_row({"with,comma", "quote\"inside"});
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("name,value\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Histogram, ScalesAndLabels) {
  const std::string h = render_histogram({"0", "1", "2"}, {10, 5, 0}, 20);
  EXPECT_NE(h.find("0 | #################### 10"), std::string::npos);
  EXPECT_NE(h.find("1 | ########## 5"), std::string::npos);
  EXPECT_NE(h.find("2 |  0"), std::string::npos);
}

TEST(Histogram, RejectsSizeMismatch) {
  EXPECT_THROW(render_histogram({"a"}, {1, 2}), InvalidArgument);
}

// ---------------------------------------------------------------------------
// System report
// ---------------------------------------------------------------------------

TEST(Report, CaseStudyReport) {
  TwcaAnalyzer analyzer{
      case_studies::date17_case_study(case_studies::OverloadModel::kRareOverload)};
  const std::string report = render_system_report(analyzer, {3, 76});
  EXPECT_NE(report.find("sigma_c"), std::string::npos);
  EXPECT_NE(report.find("331"), std::string::npos);     // WCL sigma_c
  EXPECT_NE(report.find("166"), std::string::npos);     // WCL w/o overload
  EXPECT_NE(report.find("weakly hard"), std::string::npos);
  EXPECT_NE(report.find("always meets"), std::string::npos);  // sigma_d
  EXPECT_NE(report.find("dmm(76)"), std::string::npos);
  EXPECT_NE(report.find("Overload chains"), std::string::npos);
  EXPECT_NE(report.find("curve(700,15200,50000;35000)"), std::string::npos);
}

TEST(Report, DefaultHorizon) {
  TwcaAnalyzer analyzer{case_studies::date17_case_study()};
  const std::string report = render_system_report(analyzer);
  EXPECT_NE(report.find("dmm(10)"), std::string::npos);
}

TEST(Report, ChainWithoutDeadline) {
  const System sys = parse_system(R"(
system r
chain c activation=periodic(100)
  task t prio=1 wcet=5
)");
  TwcaAnalyzer analyzer{sys};
  const std::string report = render_system_report(analyzer);
  EXPECT_NE(report.find("no deadline"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Gantt
// ---------------------------------------------------------------------------

TEST(Gantt, RendersSlices) {
  const System sys = parse_system(R"(
system g
chain hi activation=periodic(100) deadline=100
  task h prio=2 wcet=3
chain lo activation=periodic(100) deadline=100
  task l prio=1 wcet=5
)");
  sim::SimOptions options;
  options.record_trace = true;
  const sim::SimResult r = sim::simulate(sys, {{1}, {0}}, options);
  const std::string g = render_gantt(sys, r.trace);
  // lo runs [0,1), hi [1,4), lo [4,8).
  EXPECT_NE(g.find("hi.h"), std::string::npos);
  EXPECT_NE(g.find("lo.l"), std::string::npos);
  const auto lines = util::split(g, '\n');
  ASSERT_GE(lines.size(), 2u);
  EXPECT_NE(lines[0].find(".###...."), std::string::npos);  // hi row
  EXPECT_NE(lines[1].find("#...####"), std::string::npos);  // lo row
}

TEST(Gantt, CompressionFactor) {
  const System sys = parse_system(R"(
system g
chain c activation=periodic(100) deadline=100
  task t prio=1 wcet=40
)");
  sim::SimOptions options;
  options.record_trace = true;
  const sim::SimResult r = sim::simulate(sys, {{0}}, options);
  GanttOptions g;
  g.ticks_per_char = 10;
  const std::string out = render_gantt(sys, r.trace, g);
  EXPECT_NE(out.find("####"), std::string::npos);
  EXPECT_EQ(out.find("#####"), std::string::npos);  // exactly 4 chars at 10 ticks/char
}

}  // namespace
}  // namespace wharf::io
