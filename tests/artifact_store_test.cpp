// Unit tests for the staged ArtifactStore: lookup/insert semantics,
// epoch-based hit classification, weight-based admission and LRU
// eviction, per-stage statistics, and model-slice key granularity.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/case_studies.hpp"
#include "core/model_slice.hpp"
#include "engine/artifact_store.hpp"

namespace wharf {
namespace {

std::shared_ptr<const void> payload(int value) {
  return std::make_shared<const int>(value);
}

int payload_value(const ArtifactStore::Found& found) {
  return *static_cast<const int*>(found.value.get());
}

TEST(ArtifactStore, LookupMissThenInsertThenHit) {
  ArtifactStore store;
  EXPECT_FALSE(store.lookup(ArtifactStage::kBusyWindow, "k1").has_value());
  store.insert(ArtifactStage::kBusyWindow, "k1", payload(7), 100);
  const auto found = store.lookup(ArtifactStage::kBusyWindow, "k1");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(payload_value(*found), 7);
}

TEST(ArtifactStore, StagesDoNotCollide) {
  ArtifactStore store;
  store.insert(ArtifactStage::kBusyWindow, "same-key", payload(1), 10);
  store.insert(ArtifactStage::kIlp, "same-key", payload(2), 10);
  EXPECT_EQ(payload_value(*store.lookup(ArtifactStage::kBusyWindow, "same-key")), 1);
  EXPECT_EQ(payload_value(*store.lookup(ArtifactStage::kIlp, "same-key")), 2);
}

TEST(ArtifactStore, FirstInsertionWins) {
  ArtifactStore store;
  store.insert(ArtifactStage::kIlp, "k", payload(1), 10);
  store.insert(ArtifactStage::kIlp, "k", payload(2), 10);
  EXPECT_EQ(payload_value(*store.lookup(ArtifactStage::kIlp, "k")), 1);
  EXPECT_EQ(store.stats().stage[static_cast<int>(ArtifactStage::kIlp)].insertions, 1u);
}

TEST(ArtifactStore, EpochClassifiesHits) {
  ArtifactStore store;
  const std::uint64_t first = store.begin_epoch();
  store.insert(ArtifactStage::kOverload, "k", payload(1), 10);
  // Inserted during `first`: same-epoch find reports that epoch.
  EXPECT_EQ(store.lookup(ArtifactStage::kOverload, "k")->epoch, first);
  const std::uint64_t second = store.begin_epoch();
  EXPECT_LT(store.lookup(ArtifactStage::kOverload, "k")->epoch, second);
}

TEST(ArtifactStore, RejectsArtifactsHeavierThanBudget) {
  ArtifactStore store{/*byte_budget=*/128};
  store.insert(ArtifactStage::kDmmCurve, "big", payload(1), 4096);
  EXPECT_FALSE(store.lookup(ArtifactStage::kDmmCurve, "big").has_value());
  const auto stats = store.stats();
  EXPECT_EQ(stats.stage[static_cast<int>(ArtifactStage::kDmmCurve)].rejected, 1u);
  EXPECT_EQ(stats.resident_entries, 0u);
}

TEST(ArtifactStore, EvictsLeastRecentlyUsedToBudget) {
  // Three 40-byte artifacts against a budget fitting roughly two
  // (charged weight includes the key bytes).
  ArtifactStore store{/*byte_budget=*/100};
  store.insert(ArtifactStage::kIlp, "a", payload(1), 40);
  store.insert(ArtifactStage::kIlp, "b", payload(2), 40);
  EXPECT_TRUE(store.lookup(ArtifactStage::kIlp, "a").has_value());  // bump a over b
  store.insert(ArtifactStage::kIlp, "c", payload(3), 40);           // evicts b (LRU)
  EXPECT_TRUE(store.lookup(ArtifactStage::kIlp, "a").has_value());
  EXPECT_FALSE(store.lookup(ArtifactStage::kIlp, "b").has_value());
  EXPECT_TRUE(store.lookup(ArtifactStage::kIlp, "c").has_value());
  const auto stats = store.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.resident_bytes, 100u);
}

TEST(ArtifactStore, UnlimitedBudgetNeverEvicts) {
  ArtifactStore store{/*byte_budget=*/0};
  for (int i = 0; i < 100; ++i) {
    store.insert(ArtifactStage::kIlp, "k" + std::to_string(i), payload(i), 1 << 16);
  }
  EXPECT_EQ(store.stats().resident_entries, 100u);
  EXPECT_EQ(store.stats().evictions, 0u);
}

TEST(ArtifactStore, ClearDropsResidencyKeepsCounters) {
  ArtifactStore store;
  store.insert(ArtifactStage::kIlp, "k", payload(1), 10);
  store.clear();
  EXPECT_FALSE(store.lookup(ArtifactStage::kIlp, "k").has_value());
  EXPECT_EQ(store.stats().resident_entries, 0u);
  EXPECT_EQ(store.stats().resident_bytes, 0u);
  EXPECT_EQ(store.stats().stage[static_cast<int>(ArtifactStage::kIlp)].insertions, 1u);
}

TEST(ArtifactStore, StageNames) {
  EXPECT_STREQ(to_string(ArtifactStage::kInterference), "interference");
  EXPECT_STREQ(to_string(ArtifactStage::kBusyWindow), "busy_window");
  EXPECT_STREQ(to_string(ArtifactStage::kOverload), "overload");
  EXPECT_STREQ(to_string(ArtifactStage::kDmmCurve), "dmm_curve");
  EXPECT_STREQ(to_string(ArtifactStage::kIlp), "ilp");
}

// ---------------------------------------------------------------------------
// Model-slice keys: the granularity contract the store relies on
// ---------------------------------------------------------------------------

using case_studies::date17_case_study;
using case_studies::kSigmaC;
using case_studies::kSigmaD;
using case_studies::OverloadModel;

TEST(ModelSlice, EqualSystemsYieldEqualKeys) {
  const System a = date17_case_study(OverloadModel::kRareOverload);
  const System b = date17_case_study(OverloadModel::kRareOverload);
  const TwcaOptions options;
  for (int target : a.regular_indices()) {
    EXPECT_EQ(interference_key(a, target), interference_key(b, target));
    EXPECT_EQ(busy_window_key(a, target, options.analysis, false),
              busy_window_key(b, target, options.analysis, false));
    EXPECT_EQ(overload_key(a, target, options), overload_key(b, target, options));
    EXPECT_EQ(dmm_key(a, target, 10, options), dmm_key(b, target, 10, options));
  }
}

TEST(ModelSlice, TargetContentChangesItsOwnKeys) {
  const System base = date17_case_study(OverloadModel::kRareOverload);
  const System tweaked = base.with_deadline(kSigmaC, 123);
  const TwcaOptions options;
  EXPECT_NE(busy_window_key(base, kSigmaC, options.analysis, false),
            busy_window_key(tweaked, kSigmaC, options.analysis, false));
}

TEST(ModelSlice, DeadlineOfOtherChainDoesNotTaintTarget) {
  // sigma_d's deadline is read only by sigma_d's own stages; sigma_c's
  // keys must be unchanged (this is what makes path budgets cheap).
  const System base = date17_case_study(OverloadModel::kRareOverload);
  const System tweaked = base.with_deadline(kSigmaD, 150);
  const TwcaOptions options;
  EXPECT_EQ(busy_window_key(base, kSigmaC, options.analysis, false),
            busy_window_key(tweaked, kSigmaC, options.analysis, false));
  EXPECT_EQ(overload_key(base, kSigmaC, options), overload_key(tweaked, kSigmaC, options));
}

TEST(ModelSlice, OverloadModelDoesNotTaintOverloadFreeVariant) {
  // The "second analysis" excludes overload chains entirely, so the two
  // overload arrival models must produce the same overload-free key.
  const System rare = date17_case_study(OverloadModel::kRareOverload);
  const System literal = date17_case_study(OverloadModel::kLiteralSporadic);
  const TwcaOptions options;
  EXPECT_EQ(busy_window_key(rare, kSigmaC, options.analysis, true),
            busy_window_key(literal, kSigmaC, options.analysis, true));
  EXPECT_NE(busy_window_key(rare, kSigmaC, options.analysis, false),
            busy_window_key(literal, kSigmaC, options.analysis, false));
}

TEST(ModelSlice, DmmKeyDependsOnK) {
  const System sys = date17_case_study(OverloadModel::kRareOverload);
  const TwcaOptions options;
  EXPECT_NE(dmm_key(sys, kSigmaC, 3, options), dmm_key(sys, kSigmaC, 76, options));
}

/// Same three chains, two listing orders.  Keys whose artifacts embed
/// absolute chain indices (interference context, overload structure)
/// must pin positions and differ between the orders; the busy-window
/// artifact is pure data, so its key may legitimately coincide.
std::pair<System, System> reordered_pair() {
  Chain::Spec u;
  u.name = "u";
  u.arrival = periodic(400);
  u.deadline = 400;
  u.tasks = {Task{"tu", 3, 10}};
  Chain::Spec v;
  v.name = "v";
  v.arrival = sporadic(5000);
  v.overload = true;
  v.tasks = {Task{"tv", 5, 20}};
  Chain::Spec t;
  t.name = "t";
  t.arrival = periodic(300);
  t.deadline = 300;
  t.tasks = {Task{"tt", 1, 30}};
  System a{"sys", {Chain(u), Chain(v), Chain(t)}};   // t at index 2
  System b{"sys", {Chain(t), Chain(u), Chain(v)}};   // t at index 0
  return {std::move(a), std::move(b)};
}

TEST(ModelSlice, ReorderedChainsDoNotCollideOnIndexBearingKeys) {
  const auto [a, b] = reordered_pair();
  const int target_a = *a.chain_index("t");
  const int target_b = *b.chain_index("t");
  const TwcaOptions options;
  EXPECT_NE(interference_key(a, target_a), interference_key(b, target_b));
  EXPECT_NE(overload_key(a, target_a, options), overload_key(b, target_b, options));
}

}  // namespace
}  // namespace wharf
