// End-to-end integration tests: the full pipeline (parse -> analyze ->
// simulate -> report) on the paper's case study, plus cross-module
// consistency checks.

#include <gtest/gtest.h>

#include "core/case_studies.hpp"
#include "core/twca.hpp"
#include "io/json.hpp"
#include "io/system_format.hpp"
#include "sim/arrival_sequence.hpp"
#include "sim/simulator.hpp"

namespace wharf {
namespace {

using case_studies::date17_case_study;
using case_studies::kSigmaC;
using case_studies::kSigmaD;
using case_studies::OverloadModel;

TEST(Integration, ParsedSystemReproducesTableI) {
  // Serialize the case study, parse it back, and verify the analysis
  // produces identical results — the full fidelity loop.
  const std::string text = io::serialize_system(date17_case_study());
  const System sys = io::parse_system(text);
  const auto c = sys.chain_index("sigma_c");
  const auto d = sys.chain_index("sigma_d");
  ASSERT_TRUE(c.has_value());
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(latency_analysis(sys, *c).wcl, 331);
  EXPECT_EQ(latency_analysis(sys, *d).wcl, 175);
}

TEST(Integration, ParsedSystemReproducesTableII) {
  const System sys =
      io::parse_system(io::serialize_system(date17_case_study(OverloadModel::kRareOverload)));
  TwcaAnalyzer analyzer{sys};
  const auto c = sys.chain_index("sigma_c");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(analyzer.dmm(*c, 3).dmm, 3);
  EXPECT_EQ(analyzer.dmm(*c, 76).dmm, 4);
  EXPECT_EQ(analyzer.dmm(*c, 250).dmm, 5);
}

TEST(Integration, SimulatedMissesRespectDmmOnCaseStudy) {
  // Simulate the case study under adversarial (greedy) arrivals and check
  // the windowed miss counts never exceed the analytic DMM.
  const System sys = date17_case_study(OverloadModel::kRareOverload);
  TwcaAnalyzer analyzer{sys};

  const Time horizon = 400'000;
  std::vector<std::vector<Time>> arrivals;
  for (int c = 0; c < sys.size(); ++c) {
    arrivals.push_back(sim::greedy_arrivals(sys.chain(c).arrival(), 0, horizon));
  }
  const sim::SimResult r = sim::simulate(sys, arrivals);

  for (Count k : {1, 3, 10, 76, 250}) {
    const DmmResult bound = analyzer.dmm(kSigmaC, k);
    const Count observed = r.chains[kSigmaC].max_misses_in_window(k);
    EXPECT_LE(observed, bound.dmm) << "k=" << k;
  }
  // sigma_d never misses (WCL 175 <= 200).
  EXPECT_EQ(r.chains[kSigmaD].miss_count, 0);
}

TEST(Integration, SimulatedLatencyNeverExceedsWclUnderRandomArrivals) {
  const System sys = date17_case_study(OverloadModel::kRareOverload);
  TwcaAnalyzer analyzer{sys};
  const Time wcl_c = analyzer.latency(kSigmaC).wcl;
  const Time wcl_d = analyzer.latency(kSigmaD).wcl;

  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Time horizon = 200'000;
    std::vector<std::vector<Time>> arrivals;
    for (int c = 0; c < sys.size(); ++c) {
      const Chain& chain = sys.chain(c);
      if (chain.is_overload()) {
        arrivals.push_back(sim::random_arrivals(chain.arrival(), 0, horizon, 3'000.0, seed * 7 + static_cast<std::uint64_t>(c)));
      } else {
        arrivals.push_back(sim::periodic_arrivals(200, static_cast<Time>(seed * 13 % 200), horizon));
      }
    }
    const sim::SimResult r = sim::simulate(sys, arrivals);
    EXPECT_LE(r.chains[kSigmaC].max_latency, wcl_c) << "seed " << seed;
    EXPECT_LE(r.chains[kSigmaD].max_latency, wcl_d) << "seed " << seed;
  }
}

TEST(Integration, OverloadActivationProvokesObservableMiss) {
  // Without overload activations, sigma_c never misses; with a
  // simultaneous burst of sigma_a and sigma_b at t=0 it does — the
  // empirical counterpart of the paper's "c3 is the only unschedulable
  // combination".
  const System sys = date17_case_study();
  const Time horizon = 10'000;

  std::vector<std::vector<Time>> quiet(static_cast<std::size_t>(sys.size()));
  quiet[kSigmaD] = sim::periodic_arrivals(200, 0, horizon);
  quiet[kSigmaC] = sim::periodic_arrivals(200, 0, horizon);
  const sim::SimResult no_overload = sim::simulate(sys, quiet);
  EXPECT_EQ(no_overload.chains[kSigmaC].miss_count, 0);
  EXPECT_EQ(no_overload.chains[kSigmaD].miss_count, 0);

  std::vector<std::vector<Time>> burst = quiet;
  burst[case_studies::kSigmaA] = {0};
  burst[case_studies::kSigmaB] = {0};
  const sim::SimResult with_overload = sim::simulate(sys, burst);
  EXPECT_GT(with_overload.chains[kSigmaC].miss_count, 0);
  EXPECT_EQ(with_overload.chains[kSigmaD].miss_count, 0);  // sigma_d holds (WCL 175)
}

TEST(Integration, SingleOverloadCombinationIsScheduable) {
  // c1 = {sigma_a alone} and c2 = {sigma_b alone} are schedulable per the
  // paper; verify empirically: activating only one overload chain causes
  // no sigma_c miss.
  const System sys = date17_case_study();
  const Time horizon = 10'000;
  for (int overload_chain : {case_studies::kSigmaA, case_studies::kSigmaB}) {
    std::vector<std::vector<Time>> arrivals(static_cast<std::size_t>(sys.size()));
    arrivals[kSigmaD] = sim::periodic_arrivals(200, 0, horizon);
    arrivals[kSigmaC] = sim::periodic_arrivals(200, 0, horizon);
    arrivals[static_cast<std::size_t>(overload_chain)] = {0, 700, 1400};
    const sim::SimResult r = sim::simulate(sys, arrivals);
    EXPECT_EQ(r.chains[kSigmaC].miss_count, 0) << "overload chain " << overload_chain;
  }
}

TEST(Integration, JsonReportPipeline) {
  TwcaAnalyzer analyzer{date17_case_study(OverloadModel::kRareOverload)};
  const std::string latency_json = io::to_json(analyzer.latency(kSigmaC));
  const std::string dmm_json = io::to_json(analyzer.dmm(kSigmaC, 76));
  EXPECT_NE(latency_json.find("\"wcl\":331"), std::string::npos);
  EXPECT_NE(dmm_json.find("\"dmm\":4"), std::string::npos);
}

TEST(Integration, LiteralAndRareModelsAgreeOnShortHorizons) {
  TwcaAnalyzer lit{date17_case_study(OverloadModel::kLiteralSporadic)};
  TwcaAnalyzer rare{date17_case_study(OverloadModel::kRareOverload)};
  for (Count k = 1; k <= 4; ++k) {
    EXPECT_EQ(lit.dmm(kSigmaC, k).dmm, rare.dmm(kSigmaC, k).dmm) << "k=" << k;
  }
  // They diverge at longer horizons (the rare curve caps eta_plus).
  EXPECT_GT(lit.dmm(kSigmaC, 76).dmm, rare.dmm(kSigmaC, 76).dmm);
}

}  // namespace
}  // namespace wharf
