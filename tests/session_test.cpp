// Tests for the session-oriented incremental Engine API
// (engine/session.hpp):
//
//  * delta semantics — every kind applies, batches are atomic, errors
//    are Statuses that leave the session untouched;
//  * the incrementality contract — for ANY random delta sequence
//    (including structural kinds), session query results are
//    bit-identical to a fresh one-shot Engine::analyze of the mutated
//    system, across jobs 1/4/16 and under a tiny cache budget
//    (eviction pressure);
//  * the acceptance telemetry — a 100-delta mutation sweep through one
//    Session performs strictly fewer busy-window solves than 100
//    one-shot Engine::analyze calls, with every answer equal;
//  * the cross-candidate/cross-revision slice memo (SliceCache).

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "core/case_studies.hpp"
#include "engine/engine.hpp"
#include "engine/session.hpp"
#include "gen/random_systems.hpp"
#include "io/system_format.hpp"
#include "search/priority_search.hpp"

namespace wharf {
namespace {

using case_studies::date17_case_study;
using case_studies::OverloadModel;

constexpr std::size_t kBusyWindowStage =
    static_cast<std::size_t>(static_cast<int>(ArtifactStage::kBusyWindow));

System case_study() { return date17_case_study(OverloadModel::kRareOverload); }

/// Serialization-level equality of two reports' *answers* (diagnostics
/// deliberately excluded — the whole point of a session is that its
/// telemetry differs from a cold engine's).
void expect_same_answers(AnalysisReport a, AnalysisReport b, const std::string& what) {
  a.diagnostics = ReportDiagnostics{};
  b.diagnostics = ReportDiagnostics{};
  EXPECT_EQ(to_json(a), to_json(b)) << what;
}

/// The standard query list of the session's current model.
std::vector<Query> standard_queries(const System& system, std::vector<Count> ks) {
  return AnalysisRequest::standard(system, std::move(ks)).queries;
}

// ---------------------------------------------------------------------
// Delta semantics
// ---------------------------------------------------------------------

TEST(Session, PrioritySwapDeltaMatchesWithPriorities) {
  ArtifactStore store;
  Session session(case_study(), {}, store);
  const System base = session.system();

  // Swap the priorities of two tasks through the delta API...
  const std::string t1 = base.chain(0).name() + "." + base.chain(0).task(0).name;
  const std::string t2 = base.chain(1).name() + "." + base.chain(1).task(0).name;
  const Priority p1 = base.chain(0).task(0).priority;
  const Priority p2 = base.chain(1).task(0).priority;
  ASSERT_TRUE(session.apply({SetPriorityDelta{t1, p2}, SetPriorityDelta{t2, p1}}).is_ok());
  EXPECT_EQ(session.revision(), 1u);

  // ...and against the model API: identical serialized systems.
  std::vector<Priority> flat = base.flat_priorities();
  std::swap(flat[0], flat[static_cast<std::size_t>(base.chain(0).size())]);
  EXPECT_EQ(io::serialize_system(session.system()),
            io::serialize_system(base.with_priorities(flat)));
}

TEST(Session, EveryStructuralDeltaKindApplies) {
  ArtifactStore store;
  Session session(case_study(), {}, store);
  const std::string chain0 = session.system().chain(0).name();
  const std::string task0 = chain0 + "." + session.system().chain(0).task(0).name;

  ASSERT_TRUE(session.apply({SetWcetDelta{task0, 7}}).is_ok());
  EXPECT_EQ(session.system().chain(0).task(0).wcet, 7);

  ASSERT_TRUE(session.apply({SetDeadlineDelta{chain0, 555}}).is_ok());
  EXPECT_EQ(session.system().chain(0).deadline(), std::optional<Time>(555));
  ASSERT_TRUE(session.apply({SetDeadlineDelta{chain0, std::nullopt}}).is_ok());
  EXPECT_FALSE(session.system().chain(0).deadline().has_value());

  ASSERT_TRUE(session.apply({SetArrivalDelta{chain0, "periodic(1234)"}}).is_ok());
  EXPECT_EQ(session.system().chain(0).arrival().describe(), "periodic(1234)");

  const int before = session.system().size();
  const Chain extra = io::parse_chain(
      "chain extra kind=sync activation=periodic(5000) deadline=4000\n"
      "  task extra1 prio=99 wcet=3\n");
  ASSERT_TRUE(session.apply({AddChainDelta{extra}}).is_ok());
  EXPECT_EQ(session.system().size(), before + 1);
  ASSERT_TRUE(session.system().chain_index("extra").has_value());

  ASSERT_TRUE(session.apply({RemoveChainDelta{"extra"}}).is_ok());
  EXPECT_EQ(session.system().size(), before);
  EXPECT_FALSE(session.system().chain_index("extra").has_value());
  EXPECT_EQ(session.revision(), 6u);
  EXPECT_EQ(session.stats().deltas_applied, 6);
}

TEST(Session, InvalidBatchesAreAtomicStatusesNotThrows) {
  ArtifactStore store;
  Session session(case_study(), {}, store);
  const std::string before = io::serialize_system(session.system());
  const std::string task0 =
      session.system().chain(0).name() + "." + session.system().chain(0).task(0).name;

  // Unknown names -> not-found.
  EXPECT_EQ(session.apply({SetPriorityDelta{"nope.t", 1}}).code(), StatusCode::kNotFound);
  EXPECT_EQ(session.apply({SetWcetDelta{"sigma_c.nope", 1}}).code(), StatusCode::kNotFound);
  EXPECT_EQ(session.apply({RemoveChainDelta{"nope"}}).code(), StatusCode::kNotFound);
  // Undotted task reference -> invalid-argument.
  EXPECT_EQ(session.apply({SetPriorityDelta{"undotted", 1}}).code(),
            StatusCode::kInvalidArgument);
  // Unparsable arrival -> invalid-argument.
  EXPECT_EQ(session.apply({SetArrivalDelta{session.system().chain(0).name(), "bogus(1)"}}).code(),
            StatusCode::kInvalidArgument);
  // Duplicate priority across tasks -> model validation rejects.
  EXPECT_EQ(session.apply({SetPriorityDelta{task0, session.system().chain(1).task(0).priority}})
                .code(),
            StatusCode::kInvalidArgument);
  // A batch whose *last* delta fails must roll back the earlier ones.
  EXPECT_EQ(session.apply({SetWcetDelta{task0, 1}, RemoveChainDelta{"nope"}}).code(),
            StatusCode::kNotFound);

  EXPECT_EQ(session.revision(), 0u);
  EXPECT_EQ(io::serialize_system(session.system()), before);
  // And the untouched session still answers.
  const QueryResult result = session.query(LatencyQuery{session.system().chain(0).name()});
  EXPECT_TRUE(result.ok()) << result.status.to_string();
}

TEST(Session, SpeculateScoresHypotheticalWithoutMutating) {
  ArtifactStore store;
  Session session(case_study(), {}, store);
  const std::string before = io::serialize_system(session.system());
  const std::string task0 =
      session.system().chain(0).name() + "." + session.system().chain(0).task(0).name;

  Session hypothetical = session.speculate({SetWcetDelta{task0, 1}});
  EXPECT_NE(io::serialize_system(hypothetical.system()), before);
  EXPECT_EQ(io::serialize_system(session.system()), before);
  EXPECT_EQ(session.revision(), 0u);

  EXPECT_THROW((void)session.speculate({RemoveChainDelta{"nope"}}), InvalidArgument);
}

TEST(Session, DottedChainNamesResolveBySplitSearch) {
  // Chain names may contain '.'; the delta address "a.b.t1" must try
  // every split and find chain "a.b" / task "t1" (and priority search
  // over such a system must keep working — it candidates via deltas).
  const System sys = io::parse_system(
      "system dotted\n"
      "chain a.b kind=sync activation=periodic(100) deadline=90\n"
      "  task t1 prio=1 wcet=10\n"
      "  task t2 prio=2 wcet=5\n"
      "chain plain kind=sync activation=periodic(200) deadline=150\n"
      "  task p1 prio=3 wcet=20\n");
  ArtifactStore store;
  Session session(sys, {}, store);
  ASSERT_TRUE(session.apply({SetPriorityDelta{"a.b.t1", 2}, SetPriorityDelta{"a.b.t2", 1}})
                  .is_ok());
  EXPECT_EQ(session.system().chain(0).task(0).priority, 2);

  search::PipelineEvaluator pipeline_backed(sys, search::EvaluationSpec{5, {}}, {}, store, 1);
  search::ReferenceEvaluator reference(sys, search::EvaluationSpec{5, {}});
  const search::SearchResult got = search::random_search(pipeline_backed, 10, 3);
  const search::SearchResult want = search::random_search(reference, 10, 3);
  EXPECT_EQ(got.best_priorities, want.best_priorities);
  EXPECT_EQ(got.best_objective, want.best_objective);
}

TEST(Session, AmbiguousDottedReferenceIsRefusedNotGuessed) {
  // "a.b.c" resolves as chain "a" task "b.c" AND chain "a.b" task "c":
  // the delta must be refused, never applied to an arbitrary winner.
  const System sys = io::parse_system(
      "system ambiguous\n"
      "chain a kind=sync activation=periodic(100) deadline=90\n"
      "  task b.c prio=1 wcet=10\n"
      "chain a.b kind=sync activation=periodic(200) deadline=150\n"
      "  task c prio=2 wcet=20\n");
  ArtifactStore store;
  Session session(sys, {}, store);
  const Status refused = session.apply({SetPriorityDelta{"a.b.c", 9}});
  EXPECT_EQ(refused.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(refused.message().find("ambiguous"), std::string::npos);
  EXPECT_EQ(session.revision(), 0u);
}

TEST(Session, StructuralApplyDetachesLiveSpeculativeSessions) {
  // A priority-only speculation shares the slice memo; a structural
  // apply() on the base must detach it so neither session can feed the
  // other stale-structure key fragments afterwards.
  ArtifactStore store;
  Session session(case_study(), {}, store);
  const std::string t1 =
      session.system().chain(0).name() + "." + session.system().chain(0).task(0).name;
  const std::string t2 =
      session.system().chain(1).name() + "." + session.system().chain(1).task(0).name;
  const Priority p1 = session.system().chain(0).task(0).priority;
  const Priority p2 = session.system().chain(1).task(0).priority;

  Session candidate =
      session.speculate({SetPriorityDelta{t1, p2}, SetPriorityDelta{t2, p1}});
  ASSERT_TRUE(session.apply({SetWcetDelta{t1, 1}}).is_ok());

  // The candidate (old structure) keeps answering consistently with a
  // fresh one-shot analysis of its own model...
  const std::vector<Query> old_queries = standard_queries(candidate.system(), {5});
  Engine reference;
  expect_same_answers(candidate.serve(old_queries),
                      reference.analyze(AnalysisRequest{candidate.system(), {}, old_queries}),
                      "old-structure candidate after structural apply");
  // ...and so does the mutated base, even though the candidate kept
  // (re)populating the previously shared memo.
  const std::vector<Query> new_queries = standard_queries(session.system(), {5});
  expect_same_answers(session.serve(new_queries),
                      reference.analyze(AnalysisRequest{session.system(), {}, new_queries}),
                      "new-structure base after structural apply");
}

TEST(Session, IsStructuralClassifiesDeltaKinds) {
  EXPECT_FALSE(is_structural(SetPriorityDelta{"a.t", 1}));
  EXPECT_TRUE(is_structural(SetWcetDelta{"a.t", 1}));
  EXPECT_TRUE(is_structural(SetDeadlineDelta{"a", 10}));
  EXPECT_TRUE(is_structural(SetArrivalDelta{"a", "periodic(10)"}));
  EXPECT_TRUE(is_structural(RemoveChainDelta{"a"}));
}

TEST(Session, RemovedChainQueriesFailWithNotFound) {
  ArtifactStore store;
  Session session(case_study(), {}, store);
  const std::string victim = session.system().chain(0).name();
  ASSERT_TRUE(session.apply({RemoveChainDelta{victim}}).is_ok());
  const QueryResult result = session.query(LatencyQuery{victim});
  EXPECT_EQ(result.status.code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------
// Bit-identical to the one-shot path
// ---------------------------------------------------------------------

/// Applies a random delta batch to `session` (mirroring nothing — the
/// reference analyzes session.system() afterwards).  Returns a
/// description for failure messages.  Names are copied out before
/// apply(): the session.system() reference dies with the old revision.
std::string random_batch(Session& session, std::mt19937_64& rng, int& add_counter) {
  const System& sys = session.system();
  std::uniform_int_distribution<int> kind_pick(0, 5);
  const auto chain_of = [&](int c) { return sys.chain(c).name(); };
  const auto task_of = [&](int c, int t) {
    return sys.chain(c).name() + "." + sys.chain(c).task(t).name;
  };
  std::uniform_int_distribution<int> chain_pick(0, sys.size() - 1);

  switch (kind_pick(rng)) {
    case 0: {  // pairwise priority swap (the search neighborhood move)
      std::vector<Priority> flat = sys.flat_priorities();
      std::uniform_int_distribution<std::size_t> pick(0, flat.size() - 1);
      const std::size_t i = pick(rng);
      const std::size_t j = pick(rng);
      std::vector<std::string> names;
      for (int c = 0; c < sys.size(); ++c) {
        for (int t = 0; t < sys.chain(c).size(); ++t) names.push_back(task_of(c, t));
      }
      const std::string what = "swap " + names[i] + "<->" + names[j];
      const Status s = session.apply({SetPriorityDelta{names[i], flat[j]},
                                      SetPriorityDelta{names[j], flat[i]}});
      EXPECT_TRUE(s.is_ok()) << s.to_string();
      return what;
    }
    case 1: {  // wcet nudge
      const int c = chain_pick(rng);
      std::uniform_int_distribution<int> task_pick(0, sys.chain(c).size() - 1);
      const int t = task_pick(rng);
      std::uniform_int_distribution<Time> wcet(1, 30);
      const std::string name = task_of(c, t);
      const Status s = session.apply({SetWcetDelta{name, wcet(rng)}});
      EXPECT_TRUE(s.is_ok()) << s.to_string();
      return "wcet " + name;
    }
    case 2: {  // deadline change on a regular chain
      const std::vector<int>& regular = sys.regular_indices();
      std::uniform_int_distribution<std::size_t> pick(0, regular.size() - 1);
      const std::string name = chain_of(regular[pick(rng)]);
      std::uniform_int_distribution<Time> deadline(50, 400);
      const Status s = session.apply({SetDeadlineDelta{name, deadline(rng)}});
      EXPECT_TRUE(s.is_ok()) << s.to_string();
      return "deadline " + name;
    }
    case 3: {  // arrival period change (regular chains: an overload
               // chain made frequent would leave the paper's regime and
               // blow up combination enumeration)
      const std::vector<int>& regular = sys.regular_indices();
      std::uniform_int_distribution<std::size_t> reg_pick(0, regular.size() - 1);
      const std::string name = chain_of(regular[reg_pick(rng)]);
      std::uniform_int_distribution<Time> period(80, 1000);
      const Status s = session.apply(
          {SetArrivalDelta{name, "periodic(" + std::to_string(period(rng)) + ")"}});
      EXPECT_TRUE(s.is_ok()) << s.to_string();
      return "arrival " + name;
    }
    case 4: {  // add a low-rate chain with fresh name/priority
      Priority top = 0;
      for (const Priority p : sys.flat_priorities()) top = std::max(top, p);
      const std::string name = "added" + std::to_string(++add_counter);
      const Chain chain = io::parse_chain(
          "chain " + name + " kind=sync activation=periodic(2000) deadline=1500\n  task " +
          name + "_t prio=" + std::to_string(top + 1) + " wcet=5\n");
      const Status s = session.apply({AddChainDelta{chain}});
      EXPECT_TRUE(s.is_ok()) << s.to_string();
      return "add " + name;
    }
    default: {  // remove (keep at least two chains)
      if (sys.size() <= 2) return random_batch(session, rng, add_counter);
      const std::string name = chain_of(chain_pick(rng));
      const Status s = session.apply({RemoveChainDelta{name}});
      EXPECT_TRUE(s.is_ok()) << s.to_string();
      return "remove " + name;
    }
  }
}

TEST(Session, RandomDeltaSequencesMatchOneShotAcrossJobsAndEviction) {
  // The satellite property: for a random delta sequence, Session query
  // results are bit-identical to a fresh one-shot Engine::analyze of the
  // mutated system — across jobs 1/4/16, with the session's store under
  // a tiny byte budget (artifacts are evicted and recomputed mid-sweep).
  gen::RandomSystemSpec spec;
  spec.min_chains = 3;
  spec.max_chains = 4;
  spec.overload_chains = 1;
  std::mt19937_64 rng(2026);

  for (const int jobs : {1, 4, 16}) {
    const System base = gen::random_system(spec, rng, "delta_property");
    ArtifactStore tiny{/*byte_budget=*/4096};
    Session session(base, {}, tiny, jobs);
    Engine reference{EngineOptions{jobs, EngineOptions{}.cache_bytes}};
    int add_counter = 0;

    for (int step = 0; step < 8; ++step) {
      const std::string what = random_batch(session, rng, add_counter);
      const std::vector<Query> queries = standard_queries(session.system(), {5});
      AnalysisReport via_session = session.serve(queries);
      AnalysisReport one_shot =
          reference.analyze(AnalysisRequest{session.system(), {}, queries});
      expect_same_answers(std::move(via_session), std::move(one_shot),
                          "jobs=" + std::to_string(jobs) + " step " + std::to_string(step) +
                              " (" + what + ")");
    }
    // The tiny budget really was under pressure.
    EXPECT_LE(tiny.stats().resident_bytes, 4096u);
  }
}

TEST(Session, HundredDeltaSweepSolvesStrictlyFewerBusyWindows) {
  // The acceptance bar: a 100-delta mutation sweep through one Session
  // performs strictly fewer busy-window solves than 100 one-shot
  // Engine::analyze calls, while every query result stays bit-identical.
  gen::RandomSystemSpec spec;
  spec.min_chains = 8;
  spec.max_chains = 8;
  spec.min_tasks = 1;
  spec.max_tasks = 2;
  spec.utilization = 0.5;
  spec.overload_chains = 1;
  std::mt19937_64 rng(42);
  const System base = gen::random_system(spec, rng, "sweep");

  ArtifactStore store;
  Session session(base, {}, store);
  std::size_t one_shot_busy_window_solves = 0;

  std::vector<std::string> names;
  for (const Chain& chain : base.chains()) {
    for (const Task& task : chain.tasks()) names.push_back(chain.name() + "." + task.name);
  }
  std::uniform_int_distribution<std::size_t> pick(0, names.size() - 1);

  for (int step = 0; step < 100; ++step) {
    const std::vector<Priority> flat = session.system().flat_priorities();
    const std::size_t i = pick(rng);
    const std::size_t j = pick(rng);
    ASSERT_TRUE(session
                    .apply({SetPriorityDelta{names[i], flat[j]},
                            SetPriorityDelta{names[j], flat[i]}})
                    .is_ok());

    const std::vector<Query> queries = standard_queries(session.system(), {10});
    AnalysisReport via_session = session.serve(queries);

    Engine one_shot;  // fresh store: the pre-session client behavior
    AnalysisReport cold = one_shot.analyze(AnalysisRequest{session.system(), {}, queries});
    one_shot_busy_window_solves +=
        cold.diagnostics.stages[kBusyWindowStage].misses +
        cold.diagnostics.stages[kBusyWindowStage].shared;

    expect_same_answers(std::move(via_session), std::move(cold),
                        "step " + std::to_string(step));
  }

  const SessionStats stats = session.stats();
  const std::size_t session_solves =
      stats.stages[kBusyWindowStage].misses + stats.stages[kBusyWindowStage].shared;
  EXPECT_LT(session_solves, one_shot_busy_window_solves);
  // The sweep's reuse is structural, not marginal: a swap touches ~2 of
  // 8 chains, so the session re-solves well under half of what the
  // one-shot path does.
  EXPECT_LT(session_solves * 2, one_shot_busy_window_solves);
  EXPECT_EQ(stats.revision, 100u);
  EXPECT_EQ(stats.deltas_applied, 200);
}

// ---------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------

TEST(Session, OpenSessionSharesTheEngineStore) {
  Engine engine;
  Session first = engine.open_session(case_study());
  const AnalysisReport cold = first.serve(standard_queries(first.system(), {10}));
  EXPECT_GT(cold.diagnostics.cache_misses, 0u);

  // A second session over the same system starts warm off the shared
  // store: every artifact hits.
  Session second = engine.open_session(case_study());
  const AnalysisReport warm = second.serve(standard_queries(second.system(), {10}));
  EXPECT_EQ(warm.diagnostics.cache_misses, 0u);
  EXPECT_GT(warm.diagnostics.cache_hits, 0u);
  EXPECT_TRUE(warm.diagnostics.cache_hit);
}

TEST(Session, EngineRunIsAnEphemeralSessionAdapter) {
  // analyze/run and a hand-rolled session produce identical reports
  // (diagnostics included — both are one fresh epoch over one store).
  const AnalysisRequest request = AnalysisRequest::standard(case_study(), {3, 76});

  Engine engine;
  const AnalysisReport via_engine = engine.analyze(request);

  ArtifactStore store;
  Session session(request.system, request.options, store);
  const AnalysisReport via_session = session.serve(request.queries);

  EXPECT_EQ(to_json(via_engine), to_json(via_session));
}

TEST(Session, ServeCollectsPerCallDiagnostics) {
  ArtifactStore store;
  Session session(case_study(), {}, store);
  const std::vector<Query> queries = standard_queries(session.system(), {10});

  const AnalysisReport first = session.serve(queries);
  EXPECT_GT(first.diagnostics.cache_misses, 0u);
  EXPECT_EQ(first.diagnostics.cache_hits, 0u);

  // The same queries again: the pipeline memo already holds every
  // artifact, so the second report's *own* diagnostics are empty rather
  // than a rolling total.
  const AnalysisReport second = session.serve(queries);
  EXPECT_EQ(second.diagnostics.cache_misses, 0u);
  EXPECT_EQ(second.diagnostics.cache_hits, 0u);

  // After a delta, the re-keyed slices re-resolve and prior artifacts
  // classify as hits.
  const System& sys = session.system();
  const std::string t1 = sys.chain(0).name() + "." + sys.chain(0).task(0).name;
  const std::string t2 = sys.chain(1).name() + "." + sys.chain(1).task(0).name;
  const Priority p1 = sys.chain(0).task(0).priority;
  const Priority p2 = sys.chain(1).task(0).priority;
  ASSERT_TRUE(session.apply({SetPriorityDelta{t1, p2}, SetPriorityDelta{t2, p1}}).is_ok());
  const AnalysisReport third = session.serve(standard_queries(session.system(), {10}));
  EXPECT_GT(third.diagnostics.cache_hits, 0u);

  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.queries_served,
            static_cast<long long>(queries.size()) * 2 +
                static_cast<long long>(standard_queries(session.system(), {10}).size()));
}

// ---------------------------------------------------------------------
// Slice memo
// ---------------------------------------------------------------------

TEST(Session, SliceMemoReusesUntouchedChainFragmentsAcrossRevisions) {
  ArtifactStore store;
  Session session(case_study(), {}, store);
  (void)session.serve(standard_queries(session.system(), {10}));
  const SliceCache::Stats cold = session.stats().slices;
  EXPECT_GT(cold.misses, 0u);

  // A priority swap leaves most chains' sub-vectors untouched: re-keying
  // after the delta reuses their serialized slices.
  const System& sys = session.system();
  const std::string t1 = sys.chain(0).name() + "." + sys.chain(0).task(0).name;
  const std::string t2 = sys.chain(1).name() + "." + sys.chain(1).task(0).name;
  const Priority p1 = sys.chain(0).task(0).priority;
  const Priority p2 = sys.chain(1).task(0).priority;
  ASSERT_TRUE(session.apply({SetPriorityDelta{t1, p2}, SetPriorityDelta{t2, p1}}).is_ok());
  (void)session.serve(standard_queries(session.system(), {10}));

  const SliceCache::Stats warm = session.stats().slices;
  EXPECT_GT(warm.hits, cold.hits);

  // A structural delta invalidates the memo: the next serve rebuilds.
  ASSERT_TRUE(session.apply({SetWcetDelta{t1, 1}}).is_ok());
  (void)session.serve(standard_queries(session.system(), {10}));
  EXPECT_GT(session.stats().slices.misses, warm.misses);
}

TEST(Session, EvaluatorSharesSliceMemoAcrossCandidates) {
  // The cross-candidate slice memo: scoring a neighborhood through the
  // pipeline evaluator reuses the untouched chains' key fragments, and
  // the reuse is visible in EvaluatorStats.
  ArtifactStore store;
  search::PipelineEvaluator evaluator(case_study(), search::EvaluationSpec{10, {}}, {}, store,
                                      1);
  search::HillClimbOptions options;
  options.restarts = 1;
  options.max_steps = 2;
  options.seed = 5;
  (void)search::hill_climb(evaluator, options);

  const search::EvaluatorStats stats = evaluator.stats();
  EXPECT_GT(stats.slices.hits, 0u);
  EXPECT_GT(stats.slices.hits, stats.slices.misses);
}

}  // namespace
}  // namespace wharf
