// Tests for the non-throwing error channel (src/util/status.hpp):
// Status codes, Expected<T>, and exception capture at the boundary.

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/expect.hpp"
#include "util/status.hpp"

namespace wharf {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
  EXPECT_EQ(s, Status::ok());
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status s = Status::not_found("no such chain");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such chain");
  EXPECT_EQ(s.to_string(), "not-found: no such chain");
}

TEST(Status, CodeNames) {
  EXPECT_EQ(to_string(StatusCode::kOk), "ok");
  EXPECT_EQ(to_string(StatusCode::kInvalidArgument), "invalid-argument");
  EXPECT_EQ(to_string(StatusCode::kNotFound), "not-found");
  EXPECT_EQ(to_string(StatusCode::kParseError), "parse-error");
  EXPECT_EQ(to_string(StatusCode::kResourceExhausted), "resource-exhausted");
  EXPECT_EQ(to_string(StatusCode::kNoGuarantee), "no-guarantee");
  EXPECT_EQ(to_string(StatusCode::kInternal), "internal");
}

TEST(Expected, HoldsValue) {
  const Expected<int> e = 42;
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(static_cast<bool>(e));
  EXPECT_EQ(e.value(), 42);
  EXPECT_EQ(e.value_or(7), 42);
  EXPECT_TRUE(e.status().is_ok());
}

TEST(Expected, HoldsError) {
  const Expected<int> e = Status::invalid_argument("bad k");
  EXPECT_FALSE(e.has_value());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(e.value_or(7), 7);
  EXPECT_THROW((void)e.value(), std::logic_error);
}

TEST(Expected, RejectsOkStatusAsError) {
  EXPECT_THROW(Expected<int>{Status::ok()}, InvalidArgument);
}

TEST(Capture, PassesValuesThrough) {
  const Expected<int> e = capture([] { return 5; });
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e.value(), 5);
}

TEST(Capture, MapsWharfExceptionsToCodes) {
  const Expected<int> invalid =
      capture([]() -> int { throw InvalidArgument("negative period"); });
  EXPECT_EQ(invalid.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(invalid.status().message().find("negative period"), std::string::npos);

  const Expected<int> parse = capture([]() -> int { throw ParseError("bad token", 3); });
  EXPECT_EQ(parse.status().code(), StatusCode::kParseError);
  EXPECT_NE(parse.status().message().find("line 3"), std::string::npos);

  const Expected<int> solver = capture([]() -> int { throw SolverError("node cap"); });
  EXPECT_EQ(solver.status().code(), StatusCode::kResourceExhausted);

  const Expected<int> analysis = capture([]() -> int { throw AnalysisError("window cap"); });
  EXPECT_EQ(analysis.status().code(), StatusCode::kResourceExhausted);
}

TEST(Capture, MapsForeignExceptionsToInternal) {
  const Expected<int> logic = capture([]() -> int { throw std::logic_error("invariant"); });
  EXPECT_EQ(logic.status().code(), StatusCode::kInternal);

  const Expected<int> unknown = capture([]() -> int { throw 42; });
  EXPECT_EQ(unknown.status().code(), StatusCode::kInternal);
  EXPECT_EQ(unknown.status().message(), "unknown exception");
}

TEST(Capture, VoidVariantReturnsStatus) {
  const Status ok = capture([] {});
  EXPECT_TRUE(ok.is_ok());

  const Status bad = capture([] { throw InvalidArgument("nope"); });
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
}

TEST(Capture, PreconditionMacroRoutesThroughCapture) {
  const auto guarded = [](int k) {
    return capture([&] {
      WHARF_EXPECT(k >= 1, "k must be >= 1, got " << k);
      return k * 2;
    });
  };
  EXPECT_EQ(guarded(4).value(), 8);
  EXPECT_EQ(guarded(0).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace wharf
