// Unit tests for the random system generator (src/gen).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "core/case_studies.hpp"
#include "gen/random_systems.hpp"
#include "util/expect.hpp"

namespace wharf::gen {
namespace {

TEST(UUniFast, SumsToTotal) {
  std::mt19937_64 rng(1);
  for (int n : {1, 2, 5, 10}) {
    const auto u = uunifast(n, 0.7, rng);
    ASSERT_EQ(u.size(), static_cast<std::size_t>(n));
    const double sum = std::accumulate(u.begin(), u.end(), 0.0);
    EXPECT_NEAR(sum, 0.7, 1e-9);
    for (double v : u) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 0.7 + 1e-9);
    }
  }
}

TEST(UUniFast, RejectsBadArgs) {
  std::mt19937_64 rng(1);
  EXPECT_THROW(uunifast(0, 0.5, rng), InvalidArgument);
  EXPECT_THROW(uunifast(3, -0.5, rng), InvalidArgument);
}

TEST(ShuffledPriorities, IsPermutation) {
  std::mt19937_64 rng(7);
  const auto p = shuffled_priorities(13, rng);
  std::set<Priority> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 13u);
  EXPECT_EQ(*seen.begin(), 1);
  EXPECT_EQ(*seen.rbegin(), 13);
}

TEST(ShuffledPriorities, SeededDeterminism) {
  std::mt19937_64 a(42);
  std::mt19937_64 b(42);
  EXPECT_EQ(shuffled_priorities(13, a), shuffled_priorities(13, b));
}

TEST(WithRandomPriorities, PreservesStructure) {
  const System base = case_studies::date17_case_study();
  std::mt19937_64 rng(3);
  const System shuffled = with_random_priorities(base, rng);
  EXPECT_EQ(shuffled.size(), base.size());
  EXPECT_EQ(shuffled.task_count(), base.task_count());
  for (int c = 0; c < base.size(); ++c) {
    EXPECT_EQ(shuffled.chain(c).total_wcet(), base.chain(c).total_wcet());
    EXPECT_EQ(shuffled.chain(c).is_overload(), base.chain(c).is_overload());
  }
  // Priorities remain a permutation of 1..13.
  const auto p = shuffled.flat_priorities();
  std::set<Priority> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 13u);
}

TEST(WithRandomPriorities, EventuallyDiffersFromBase) {
  const System base = case_studies::date17_case_study();
  std::mt19937_64 rng(3);
  bool differs = false;
  for (int i = 0; i < 5 && !differs; ++i) {
    differs = with_random_priorities(base, rng).flat_priorities() != base.flat_priorities();
  }
  EXPECT_TRUE(differs);
}

TEST(RandomSystem, ValidAndWithinSpec) {
  RandomSystemSpec spec;
  std::mt19937_64 rng(11);
  for (int i = 0; i < 20; ++i) {
    const System s = random_system(spec, rng, "r");
    EXPECT_GE(s.size(), spec.min_chains + spec.overload_chains);
    EXPECT_LE(s.size(), spec.max_chains + spec.overload_chains);
    EXPECT_EQ(static_cast<int>(s.overload_indices().size()), spec.overload_chains);
    for (int c : s.regular_indices()) {
      EXPECT_GE(s.chain(c).size(), spec.min_tasks);
      EXPECT_LE(s.chain(c).size(), spec.max_tasks);
      EXPECT_TRUE(s.chain(c).deadline().has_value());
      for (const Task& t : s.chain(c).tasks()) EXPECT_GE(t.wcet, 1);
    }
    // Regular utilization close to the spec (quantization may push it
    // slightly up since every task gets at least WCET 1).
    EXPECT_LT(s.utilization(), 1.0);
  }
}

TEST(RandomSystem, SeededDeterminism) {
  RandomSystemSpec spec;
  std::mt19937_64 a(5);
  std::mt19937_64 b(5);
  const System s1 = random_system(spec, a, "x");
  const System s2 = random_system(spec, b, "x");
  EXPECT_EQ(s1.flat_priorities(), s2.flat_priorities());
  EXPECT_EQ(s1.size(), s2.size());
  for (int c = 0; c < s1.size(); ++c) {
    EXPECT_EQ(s1.chain(c).total_wcet(), s2.chain(c).total_wcet());
  }
}

TEST(RandomSystem, AsyncFractionProducesAsynchronousChains) {
  RandomSystemSpec spec;
  spec.async_fraction = 1.0;
  std::mt19937_64 rng(2);
  const System s = random_system(spec, rng, "a");
  for (int c : s.regular_indices()) {
    EXPECT_TRUE(s.chain(c).is_asynchronous());
  }
  for (int c : s.overload_indices()) {
    EXPECT_TRUE(s.chain(c).is_synchronous());  // overload stays synchronous
  }
}

TEST(RandomSystem, RejectsBadSpec) {
  RandomSystemSpec spec;
  spec.utilization = 1.5;
  std::mt19937_64 rng(1);
  EXPECT_THROW(random_system(spec, rng), InvalidArgument);
  spec.utilization = 0.5;
  spec.min_chains = 3;
  spec.max_chains = 2;
  EXPECT_THROW(random_system(spec, rng), InvalidArgument);
}

TEST(RandomSystem, OverloadChainsAreRare) {
  RandomSystemSpec spec;
  std::mt19937_64 rng(9);
  const System s = random_system(spec, rng);
  for (int c : s.overload_indices()) {
    EXPECT_EQ(s.chain(c).arrival().delta_minus(2), spec.overload_gap);
    EXPECT_FALSE(s.chain(c).deadline().has_value());
  }
}

}  // namespace
}  // namespace wharf::gen
