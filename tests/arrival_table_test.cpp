// Property tests for the data-oriented core: the flat ArrivalTable must
// agree pointwise with the virtual arrival model it was built from
// (eta_plus / delta_minus, over every model family and randomized
// parameters, including the exact delta(q) +- 1 boundary windows), the
// flattened latency analysis must reproduce the preserved reference
// implementation field for field on random systems, and full
// AnalysisReports must stay bit-identical across engine worker counts
// and under a cache too small to retain artifacts.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "core/arrival.hpp"
#include "core/arrival_table.hpp"
#include "core/busy_window.hpp"
#include "engine/engine.hpp"
#include "gen/random_systems.hpp"
#include "io/system_format.hpp"

namespace wharf {
namespace {

/// One randomized model per family, parameters drawn fresh per call.
std::vector<ArrivalModelPtr> random_models(std::mt19937_64& rng) {
  std::uniform_int_distribution<Time> period(1, 5'000);
  std::uniform_int_distribution<Time> jitter(0, 20'000);
  std::uniform_int_distribution<Time> step(0, 500);
  std::uniform_int_distribution<int> prefix_len(1, 12);
  std::uniform_int_distribution<Count> burst(1, 6);

  std::vector<ArrivalModelPtr> models;
  models.push_back(periodic(period(rng)));

  const Time p = period(rng);
  std::uniform_int_distribution<Time> dmin(1, p);
  models.push_back(periodic_jitter(p, jitter(rng), dmin(rng)));

  models.push_back(sporadic(period(rng)));

  std::vector<Time> prefix;
  Time d = step(rng);
  for (int i = prefix_len(rng); i > 0; --i) {
    prefix.push_back(d);
    d += step(rng);
  }
  models.push_back(delta_curve(std::move(prefix), period(rng)));

  const Count b = burst(rng);
  std::uniform_int_distribution<Time> inner(1, 200);
  const Time gap = inner(rng);
  models.push_back(sporadic_burst((b - 1) * gap + period(rng), b, gap));
  return models;
}

TEST(ArrivalTable, AgreesWithModelPointwise) {
  std::mt19937_64 rng(2024);
  std::uniform_int_distribution<Time> window(0, 200'000);
  for (int round = 0; round < 50; ++round) {
    for (const ArrivalModelPtr& model : random_models(rng)) {
      const ArrivalTable table(model);
      SCOPED_TRACE(model->describe());

      // delta_minus over the dense prefix, the tail, and deep into it.
      for (Count q = 0; q <= 64; ++q) {
        EXPECT_EQ(table.delta_minus(q), model->delta_minus(q)) << "q=" << q;
      }
      for (Count q : {Count{1000}, Count{4095}, Count{4097}, Count{100'000}}) {
        EXPECT_EQ(table.delta_minus(q), model->delta_minus(q)) << "q=" << q;
      }

      // eta_plus at random windows and at the delta(q) +- 1 boundaries,
      // where the strict-inequality convention is easiest to get wrong.
      for (int i = 0; i < 32; ++i) {
        const Time w = window(rng);
        EXPECT_EQ(table.eta_plus(w), model->eta_plus(w)) << "window=" << w;
      }
      for (Count q = 1; q <= 40; ++q) {
        const Time d = model->delta_minus(q);
        for (const Time w : {d - 1, d, d + 1}) {
          EXPECT_EQ(table.eta_plus(w), model->eta_plus(w))
              << "q=" << q << " window=" << w;
        }
      }

      // Infinite / huge windows go through the overflow fallbacks.
      EXPECT_EQ(table.eta_plus(kTimeInfinity), model->eta_plus(kTimeInfinity));
      EXPECT_EQ(table.eta_plus(kTimeInfinity - 1), model->eta_plus(kTimeInfinity - 1));
      EXPECT_EQ(table.delta_minus(kCountInfinity - 1), model->delta_minus(kCountInfinity - 1));
    }
  }
}

/// Field-by-field equality against the preserved pre-flattening
/// implementation (wharf::reference) on randomized systems.
TEST(ArrivalTable, FlatLatencyAnalysisMatchesReference) {
  std::mt19937_64 rng(7);
  gen::RandomSystemSpec spec;
  spec.min_chains = 3;
  spec.max_chains = 6;
  spec.utilization = 0.85;
  spec.async_fraction = 0.3;
  for (int round = 0; round < 25; ++round) {
    const System sys = gen::random_system(spec, rng, "prop" + std::to_string(round));
    AnalysisOptions options;
    options.max_busy_windows = 10'000;
    for (int target : sys.regular_indices()) {
      for (const std::vector<int>& exclude :
           {std::vector<int>{}, sys.overload_indices()}) {
        const LatencyResult flat = latency_analysis(sys, target, options, exclude);
        const LatencyResult ref = reference::latency_analysis(sys, target, options, exclude);
        SCOPED_TRACE("round " + std::to_string(round) + " target " + std::to_string(target));
        EXPECT_EQ(flat.bounded, ref.bounded);
        EXPECT_EQ(flat.reason, ref.reason);
        EXPECT_EQ(flat.K, ref.K);
        EXPECT_EQ(flat.busy_times, ref.busy_times);
        EXPECT_EQ(flat.wcl, ref.wcl);
        EXPECT_EQ(flat.worst_q, ref.worst_q);
        EXPECT_EQ(flat.misses_per_window, ref.misses_per_window);
        EXPECT_EQ(flat.schedulable, ref.schedulable);
      }
    }
  }
}

/// Serializes only the query results (diagnostics stripped), as
/// engine_test does, so reports compare on *answers*.
std::string results_json(const AnalysisReport& report) {
  AnalysisReport stripped = report;
  stripped.diagnostics = ReportDiagnostics{};
  return to_json(stripped);
}

TEST(ArrivalTable, ReportsBitIdenticalAcrossJobsAndTinyCache) {
  std::mt19937_64 rng(99);
  gen::RandomSystemSpec spec;
  spec.min_chains = 4;
  spec.max_chains = 4;
  spec.utilization = 0.8;
  std::vector<AnalysisRequest> requests;
  for (int i = 0; i < 8; ++i) {
    requests.push_back(
        AnalysisRequest::standard(gen::random_system(spec, rng, "rep" + std::to_string(i))));
  }

  // A cache this small evicts aggressively, so artifacts are recomputed
  // rather than reused — the answers must not care.
  std::vector<std::string> baseline;
  for (const int jobs : {1, 4, 16}) {
    Engine engine{EngineOptions{jobs, /*cache_bytes=*/4'096, /*store_dir=*/""}};
    const std::vector<AnalysisReport> reports = engine.run_batch(requests);
    ASSERT_EQ(reports.size(), requests.size());
    if (baseline.empty()) {
      for (const AnalysisReport& r : reports) baseline.push_back(results_json(r));
      continue;
    }
    for (std::size_t i = 0; i < reports.size(); ++i) {
      EXPECT_EQ(results_json(reports[i]), baseline[i])
          << "jobs=" << jobs << " request " << i;
    }
  }
}

}  // namespace
}  // namespace wharf
