// Torture tests for the async serve core (net/server.hpp) behind the
// TCP listener: slow clients that dribble requests byte-by-byte,
// oversized protocol lines, streaming queries under backpressure,
// per-request deadlines expiring while queued, abortive disconnects
// with output still queued, fd exhaustion on accept, and the flat
// thread-count property the reactor exists for.  Throughout, answers
// must stay bit-identical to serialized execution on a fresh engine.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/serve.hpp"
#include "core/arrival.hpp"
#include "core/case_studies.hpp"
#include "core/system.hpp"
#include "engine/engine.hpp"
#include "io/json.hpp"
#include "io/system_format.hpp"
#include "net/server.hpp"
#include "tests/support/serve_client.hpp"
#include "util/strings.hpp"

namespace wharf::net {
namespace {

using testsupport::results_of;

std::string case_study_text() {
  return io::serialize_system(
      case_studies::date17_case_study(case_studies::OverloadModel::kRareOverload));
}

/// The shared ServeClient with failures routed into gtest.
class Client : public testsupport::ServeClient {
 public:
  explicit Client(int port)
      : ServeClient(port, [](const std::string& message) { ADD_FAILURE() << message; }) {}
};

/// An AsyncServer constructed directly (custom AsyncServeOptions) on an
/// ephemeral loopback listener, with serve() running on a background
/// thread.  Join via a client-requested shutdown, then join().
class AsyncHarness {
 public:
  AsyncHarness(Engine& engine, AsyncServeOptions options) {
    const Expected<int> listener = cli::bind_serve_socket(0, port_);
    EXPECT_TRUE(listener) << listener.status().to_string();
    server_ = std::make_unique<AsyncServer>(engine, listener.value(), options, err_);
    thread_ = std::thread([this] { ok_ = server_->serve(); });
  }

  ~AsyncHarness() {
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] ServeTelemetry& telemetry() { return server_->telemetry(); }

  /// Joins serve() (after a shutdown request drained every connection)
  /// and returns its graceful/fatal verdict.
  bool join() {
    thread_.join();
    return ok_;
  }

  /// The accept diagnostics stream; read only after join() (the loop
  /// thread writes it while serving).
  [[nodiscard]] std::string err() const { return err_.str(); }

 private:
  int port_ = 0;
  bool ok_ = false;
  std::ostringstream err_;
  std::unique_ptr<AsyncServer> server_;
  std::thread thread_;
};

std::string open_line(int id, const std::string& session) {
  return util::cat("{\"id\":", id, ",\"type\":\"open_session\",\"session\":\"", session,
                   "\",\"system\":\"", io::json_escape(case_study_text()), "\"}");
}

std::string query_line(int id, const std::string& session) {
  return util::cat("{\"id\":", id, ",\"type\":\"query\",\"session\":\"", session,
                   "\",\"queries\":[{\"kind\":\"latency\",\"chain\":\"sigma_c\"},"
                   "{\"kind\":\"dmm\",\"chain\":\"sigma_c\",\"ks\":[5,10]},"
                   "{\"kind\":\"latency\",\"chain\":\"sigma_d\"}]}");
}

std::string swap_line(int id, const std::string& session) {
  return util::cat("{\"id\":", id, ",\"type\":\"apply_delta\",\"session\":\"", session,
                   "\",\"deltas\":[{\"kind\":\"set_priority\",\"task\":\"sigma_c.tau1_c\","
                   "\"priority\":7},{\"kind\":\"set_priority\",\"task\":\"sigma_c.tau2_c\","
                   "\"priority\":8}]}");
}

/// Replays one conversation through serve_stream on a fresh engine (the
/// serialized reference) and returns every query response's answers.
std::vector<std::string> serialized_reference(const std::vector<std::string>& lines) {
  std::ostringstream conversation;
  for (const std::string& line : lines) conversation << line << '\n';
  Engine engine;
  std::istringstream in(conversation.str());
  std::ostringstream out;
  (void)cli::serve_stream(engine, in, out);
  std::vector<std::string> results;
  std::istringstream replies(out.str());
  for (std::string line; std::getline(replies, line);) {
    if (line.find("\"report\":") != std::string::npos) results.push_back(results_of(line));
  }
  return results;
}

/// The kernel thread count of this process (/proc/self/status).
int thread_count() {
  std::ifstream status("/proc/self/status");
  for (std::string line; std::getline(status, line);) {
    if (line.rfind("Threads:", 0) == 0) return std::stoi(line.substr(8));
  }
  return -1;
}

/// A near-unit-utilization system whose cold busy-window solves take
/// milliseconds (the deadline tests need a request that reliably
/// outlives a 1ms deadline armed behind it).
System heavy_system() {
  std::vector<Chain> chains;
  for (int i = 0; i < 10; ++i) {
    Chain::Spec spec;
    spec.name = "chain" + std::to_string(i);
    const Time period = 100'000 + 1'000 * i;
    spec.arrival = periodic(period);
    spec.deadline = period;
    spec.tasks = {Task{"a", Priority(1 + 2 * i), i == 0 ? 5'234 : 5'218},
                  Task{"b", Priority(2 + 2 * i), 5'218}};
    chains.emplace_back(std::move(spec));
  }
  Chain::Spec ov;
  ov.name = "ov";
  ov.arrival = sporadic(5'000'000);
  ov.overload = true;
  ov.tasks = {Task{"o", 100, 2'000}};
  chains.emplace_back(std::move(ov));
  return System("serve_async_heavy", std::move(chains));
}

// ---------------------------------------------------------------------
// Dribbled requests: byte-by-byte framing, answers bit-identical
// ---------------------------------------------------------------------

TEST(ServeAsync, DribbledRequestsAnswerBitIdentical) {
  const std::vector<std::string> conversation = {
      open_line(1, "d"), query_line(2, "d"), swap_line(3, "d"), query_line(4, "d"),
      "{\"id\":5,\"type\":\"close\",\"session\":\"d\"}"};
  const std::vector<std::string> want = serialized_reference(conversation);
  ASSERT_EQ(want.size(), 2u);

  Engine engine;
  AsyncHarness server(engine, {});
  Client dribbler(server.port());
  std::vector<std::string> got;
  for (const std::string& line : conversation) {
    // One byte per send: the line assembler sees the request in as many
    // fragments as the kernel cares to deliver, never a whole line.
    const std::string framed = line + "\n";
    for (std::size_t i = 0; i < framed.size(); ++i) {
      dribbler.send_raw(framed.substr(i, 1));
      if (i % 257 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const std::string reply = dribbler.recv_line();
    if (reply.find("\"report\":") != std::string::npos) got.push_back(results_of(reply));
  }
  EXPECT_EQ(got, want);

  dribbler.send_line(R"({"type":"shutdown"})");
  (void)dribbler.recv_line();
  dribbler.close();
  EXPECT_TRUE(server.join()) << server.err();
}

// ---------------------------------------------------------------------
// Oversized lines: rejected with the protocol envelope, stream in sync
// ---------------------------------------------------------------------

TEST(ServeAsync, OversizedLineIsRejectedAndStreamStaysInSync) {
  Engine engine;
  AsyncServeOptions options;
  options.max_line_bytes = 256;
  AsyncHarness server(engine, options);

  Client client(server.port());
  // Oversized line delivered whole...
  client.send_line(std::string(1000, 'x'));
  EXPECT_NE(client.recv_line().find("exceeds the 256-byte protocol bound"),
            std::string::npos);
  // ...and oversized again, split across many reads (the discard state
  // must span chunks without leaking bytes into the next line).
  const std::string big(900, 'y');
  for (std::size_t i = 0; i < big.size(); i += 100) client.send_raw(big.substr(i, 100));
  client.send_raw("\n");
  EXPECT_NE(client.recv_line().find("exceeds the 256-byte protocol bound"),
            std::string::npos);
  // The very next in-bound request is answered normally: still in sync.
  client.send_line(R"({"id":3,"type":"diagnostics","session":"nope"})");
  const std::string reply = client.recv_line();
  EXPECT_NE(reply.find(R"("id":3)"), std::string::npos);
  EXPECT_NE(reply.find(R"("status":"not-found")"), std::string::npos);
  EXPECT_EQ(server.telemetry().oversized_lines.load(), 2);

  client.send_line(R"({"type":"shutdown"})");
  (void)client.recv_line();
  client.close();
  EXPECT_TRUE(server.join()) << server.err();
}

// ---------------------------------------------------------------------
// Streaming: frames bit-identical to the monolithic report, in order
// ---------------------------------------------------------------------

/// The "result" object of one streamed result frame (everything behind
/// the "result": key, up to the envelope's closing brace).
std::string frame_result_of(const std::string& frame_line) {
  const auto begin = frame_line.find("\"result\":");
  if (begin == std::string::npos || frame_line.empty()) return frame_line;
  return frame_line.substr(begin + 9, frame_line.size() - (begin + 9) - 1);
}

TEST(ServeAsync, StreamedFramesAreBitIdenticalToMonolithicReport) {
  Engine engine;
  AsyncHarness server(engine, {});
  Client client(server.port());
  client.send_line(open_line(1, "s"));
  ASSERT_NE(client.recv_line().find(R"("status":"ok")"), std::string::npos);

  client.send_line(query_line(2, "s"));
  const std::string monolithic = client.recv_line();
  ASSERT_NE(monolithic.find("\"report\":"), std::string::npos);

  // The same three queries, streamed: three result frames, one summary.
  std::string streamed = query_line(3, "s");
  streamed.replace(streamed.find("\"queries\""), 9, "\"stream\":true,\"queries\"");
  client.send_line(streamed);
  std::vector<std::string> frame_results;
  for (int i = 0; i < 3; ++i) {
    const std::string frame = client.recv_line();
    EXPECT_NE(frame.find(util::cat(R"("frame":"result","index":)", i)), std::string::npos);
    frame_results.push_back(frame_result_of(frame));
  }
  const std::string summary = client.recv_line();
  EXPECT_NE(summary.find(R"("frame":"summary")"), std::string::npos);
  EXPECT_NE(summary.find(R"("results":3)"), std::string::npos);

  // Reassembling the frames yields the monolithic results array, byte
  // for byte — a streaming client loses nothing but the envelope.
  const std::string reassembled =
      util::cat("\"results\":[", frame_results[0], ",", frame_results[1], ",",
                frame_results[2], "]");
  EXPECT_EQ(reassembled, results_of(monolithic));
  EXPECT_EQ(server.telemetry().stream_frames.load(), 3);

  client.send_line(R"({"type":"shutdown"})");
  (void)client.recv_line();
  client.close();
  EXPECT_TRUE(server.join()) << server.err();
}

TEST(ServeAsync, StreamParksUnderTinyWriteBudgetAndStillDeliversInOrder) {
  // A 64-byte write budget is smaller than any single frame, so the
  // stream parks at every inter-query boundary and resumes when the
  // loop drains — the park/resume machinery runs several times per
  // request.  A trailing request queued behind the stream must still be
  // answered after the summary (FIFO across parks).
  Engine engine;
  AsyncServeOptions options;
  options.write_buffer_limit = 64;
  AsyncHarness server(engine, options);

  Client client(server.port());
  client.send_line(open_line(1, "p"));
  ASSERT_NE(client.recv_line().find(R"("status":"ok")"), std::string::npos);

  std::string streamed = query_line(2, "p");
  streamed.replace(streamed.find("\"queries\""), 9, "\"stream\":true,\"queries\"");
  client.send_line(streamed);
  client.send_line(R"({"id":3,"type":"diagnostics","session":"p"})");

  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(client.recv_line().find(R"("frame":"result")"), std::string::npos) << i;
  }
  EXPECT_NE(client.recv_line().find(R"("frame":"summary")"), std::string::npos);
  const std::string diagnostics = client.recv_line();
  EXPECT_NE(diagnostics.find(R"("id":3)"), std::string::npos);
  EXPECT_NE(diagnostics.find(R"("stream_frames":3)"), std::string::npos);

  client.send_line(R"({"type":"shutdown"})");
  (void)client.recv_line();
  client.close();
  EXPECT_TRUE(server.join()) << server.err();
}

TEST(ServeAsync, DisconnectWithQueuedStreamOutputNeverHurtsSiblings) {
  Engine engine;
  AsyncServeOptions options;
  options.write_buffer_limit = 64;  // force parking mid-stream
  AsyncHarness server(engine, options);

  Client steady(server.port());
  steady.send_line(open_line(1, "steady"));
  ASSERT_NE(steady.recv_line().find(R"("status":"ok")"), std::string::npos);

  {
    // Opens, fires a streaming query, and slams the connection (RST)
    // without reading a single frame: the stream aborts against the
    // closed socket and its budget slot is released.
    Client vanisher(server.port());
    vanisher.send_line(open_line(1, "v"));
    std::string streamed = query_line(2, "v");
    streamed.replace(streamed.find("\"queries\""), 9, "\"stream\":true,\"queries\"");
    vanisher.send_line(streamed);
    vanisher.abort_close();
  }

  for (int round = 0; round < 3; ++round) {
    steady.send_line(query_line(10 + round, "steady"));
    EXPECT_NE(steady.recv_line().find(R"("wcl":331)"), std::string::npos) << round;
  }
  steady.send_line(R"({"type":"shutdown"})");
  (void)steady.recv_line();
  steady.close();
  EXPECT_TRUE(server.join()) << server.err();
}

// ---------------------------------------------------------------------
// Deadlines: expiry while queued answers the envelope, skips the work
// ---------------------------------------------------------------------

TEST(ServeAsync, DeadlineExpiresWhileQueuedBehindHeavyRequests) {
  Engine engine;
  AsyncServeOptions options;
  options.pool_threads = 1;   // one worker: everything behind it queues
  options.max_inflight = 32;  // the whole burst parses up front
  AsyncHarness server(engine, options);

  Client client(server.port());
  client.send_line(util::cat("{\"id\":1,\"type\":\"open_session\",\"session\":\"h\","
                             "\"system\":\"",
                             io::json_escape(io::serialize_system(heavy_system())), "\"}"));
  ASSERT_NE(client.recv_line().find(R"("status":"ok")"), std::string::npos);

  // One burst: ten delta+query rounds, each against a *distinct* model
  // (so every round is a cold solve, no store hits), then a 1ms
  // deadline.  The timer arms when the burst parses; the lone worker
  // needs many milliseconds to reach the deadlined request.
  constexpr int kRounds = 10;
  std::ostringstream burst;
  int id = 1;
  for (int r = 0; r < kRounds; ++r) {
    burst << "{\"id\":" << ++id
          << R"(,"type":"apply_delta","session":"h","deltas":[{"kind":"set_priority",)"
          << R"("task":"chain0.a","priority":)" << 50 + r << "}]}\n";
    burst << "{\"id\":" << ++id
          << R"(,"type":"query","session":"h","queries":[{"kind":"dmm","chain":"chain0",)"
          << R"("ks":[1,10,60]}]})"
          << "\n";
  }
  burst << R"({"id":99,"type":"query","session":"h","deadline_ms":1,)"
        << R"("queries":[{"kind":"latency","chain":"chain1"}]})"
        << "\n";
  client.send_raw(burst.str());

  for (int i = 0; i < 2 * kRounds; ++i) {
    EXPECT_NE(client.recv_line(60000).find(R"("status":"ok")"), std::string::npos) << i;
  }
  const std::string expired = client.recv_line();
  EXPECT_NE(expired.find(R"("id":99)"), std::string::npos);
  EXPECT_NE(expired.find(R"("status":"deadline-exceeded")"), std::string::npos);
  EXPECT_EQ(server.telemetry().deadline_expired.load(), 1);

  // A generous deadline on an idle server never expires: the request
  // runs normally and the timer is simply never heard from again.
  client.send_line(
      R"({"id":4,"type":"query","session":"h","deadline_ms":60000,)"
      R"("queries":[{"kind":"latency","chain":"chain1"}]})");
  const std::string unexpired = client.recv_line();
  EXPECT_NE(unexpired.find(R"("id":4)"), std::string::npos);
  EXPECT_NE(unexpired.find("\"report\":"), std::string::npos);
  EXPECT_EQ(server.telemetry().deadline_expired.load(), 1);

  client.send_line(R"({"type":"shutdown"})");
  (void)client.recv_line();
  client.close();
  EXPECT_TRUE(server.join()) << server.err();
}

// ---------------------------------------------------------------------
// Flat threads: many slow connections, fixed reactor + pool
// ---------------------------------------------------------------------

TEST(ServeAsync, ThreadCountStaysFlatAcrossManySlowClients) {
  Engine engine;
  AsyncServeOptions options;
  options.max_inflight = 4;
  AsyncHarness server(engine, options);

  // Warm up: first conversation spins up nothing extra (the pool is
  // created with the server), so this reading is the steady state.
  Client active(server.port());
  active.send_line(open_line(1, "a"));
  ASSERT_NE(active.recv_line().find(R"("status":"ok")"), std::string::npos);
  const int baseline = thread_count();
  ASSERT_GT(baseline, 0);

  // 40 connections park themselves mid-request-line — the classic slow
  // client — while the active one keeps being served.
  std::vector<std::unique_ptr<Client>> slow;
  for (int i = 0; i < 40; ++i) {
    slow.push_back(std::make_unique<Client>(server.port()));
    slow.back()->send_raw(R"({"id":1,"type":"query","session")");
  }
  for (int round = 0; round < 3; ++round) {
    active.send_line(query_line(2 + round, "a"));
    EXPECT_NE(active.recv_line().find(R"("wcl":331)"), std::string::npos) << round;
  }
  // The whole point of the reactor: 41 live connections, zero new
  // threads (the threaded listener would be 40 threads deeper here).
  EXPECT_EQ(thread_count(), baseline);

  for (std::unique_ptr<Client>& client : slow) client->close();
  slow.clear();
  active.send_line(R"({"type":"shutdown"})");
  (void)active.recv_line();
  active.close();
  EXPECT_TRUE(server.join()) << server.err();
}

// ---------------------------------------------------------------------
// fd exhaustion: accept pauses and recovers, never spins or exits
// ---------------------------------------------------------------------

TEST(ServeAsync, FdExhaustionHelpersClassifyAndExplain) {
  EXPECT_TRUE(is_fd_exhaustion(EMFILE));
  EXPECT_TRUE(is_fd_exhaustion(ENFILE));
  EXPECT_FALSE(is_fd_exhaustion(EAGAIN));
  EXPECT_FALSE(is_fd_exhaustion(ECONNABORTED));
  const std::string message = accept_pause_message(EMFILE);
  EXPECT_NE(message.find(util::errno_message(EMFILE)), std::string::npos);
  EXPECT_NE(message.find("pausing accepts"), std::string::npos);
}

TEST(ServeAsync, AcceptPausesOnEmfileAndRecovers) {
  Engine engine;
  AsyncServeOptions options;
  options.accept_retry = std::chrono::milliseconds(10);
  AsyncHarness server(engine, options);

  Client first(server.port());
  first.send_line("not json");
  ASSERT_NE(first.recv_line().find(R"("type":"error")"), std::string::npos);

  // The victim's socket exists *before* the squeeze; its connect() then
  // completes in the kernel's accept backlog while the server cannot
  // accept a single descriptor.
  const int raw = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(raw, 0);
  const timeval receive_timeout{10, 0};  // a hung server fails, not hangs
  ::setsockopt(raw, SOL_SOCKET, SO_RCVTIMEO, &receive_timeout, sizeof receive_timeout);

  rlimit old{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &old), 0);
  const int probe = ::dup(0);
  ASSERT_GE(probe, 0);
  ::close(probe);
  rlimit squeezed = old;
  // The lowest free descriptor is now `probe`; capping there makes
  // every allocation — accept4 included — fail with EMFILE.
  squeezed.rlim_cur = static_cast<rlim_t>(probe);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &squeezed), 0);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  ASSERT_EQ(::connect(raw, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);

  // Wait until the server has logged at least one pause (atomic counter;
  // the err stream itself is read only after join).
  for (int i = 0; i < 200 && server.telemetry().accept_pauses.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server.telemetry().accept_pauses.load(), 1);

  // Descriptors return; within one retry period the backlog drains and
  // the queued client is served as if nothing happened.
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &old), 0);
  const std::string request = "also not json\n";
  ASSERT_EQ(::send(raw, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));
  std::string reply;
  char c = 0;
  while (reply.find('\n') == std::string::npos && ::read(raw, &c, 1) == 1) reply.push_back(c);
  EXPECT_NE(reply.find(R"("type":"error")"), std::string::npos);
  ::close(raw);

  first.send_line(R"({"type":"shutdown"})");
  (void)first.recv_line();
  first.close();
  EXPECT_TRUE(server.join());
  EXPECT_NE(server.err().find(accept_pause_message(EMFILE)), std::string::npos)
      << server.err();
}

// ---------------------------------------------------------------------
// Budget: the in-flight bound pauses reads, never drops requests
// ---------------------------------------------------------------------

TEST(ServeAsync, InflightBudgetQueuesExcessRequestsWithoutLoss) {
  Engine engine;
  AsyncServeOptions options;
  options.max_inflight = 1;  // every concurrent second request must wait
  AsyncHarness server(engine, options);

  // A two-request burst in one write overshoots the budget by the
  // documented one-read-chunk bound, pausing this connection's reads —
  // and resuming them once the answers drain.  (A perfectly unlucky
  // scheduler can let the worker drain the burst before the loop's
  // budget check runs; a fresh burst retries the race, and every
  // attempt must answer correctly regardless.)
  for (int attempt = 0;
       attempt < 20 && server.telemetry().backpressure_stalls.load() == 0; ++attempt) {
    Client burster(server.port());
    const std::string session = "burst" + std::to_string(attempt);
    burster.send_raw(open_line(1, session) + "\n" + query_line(2, session) + "\n");
    EXPECT_NE(burster.recv_line().find(R"("status":"ok")"), std::string::npos);
    EXPECT_NE(burster.recv_line().find(R"("wcl":331)"), std::string::npos);
    // Reads resumed: a third request on the same connection is served.
    burster.send_line(query_line(3, session));
    EXPECT_NE(burster.recv_line().find(R"("wcl":331)"), std::string::npos);
  }
  EXPECT_GE(server.telemetry().backpressure_stalls.load(), 1);

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(server.port());
      const std::string session = "b" + std::to_string(c);
      client.send_line(open_line(1, session));
      EXPECT_NE(client.recv_line().find(R"("status":"ok")"), std::string::npos);
      client.send_line(query_line(2, session));
      EXPECT_NE(client.recv_line().find(R"("wcl":331)"), std::string::npos);
    });
  }
  for (std::thread& t : clients) t.join();

  Client closer(server.port());
  closer.send_line(R"({"type":"shutdown"})");
  (void)closer.recv_line();
  closer.close();
  EXPECT_TRUE(server.join()) << server.err();
}

// Regression: the shutdown-requesting connection is over once its ack
// drains — the server closes it and exits while the closer still holds
// its socket open (bench_serve_concurrent joins the server thread
// exactly this way; requiring the client to hang up first deadlocks
// that join).  Anything pipelined behind the shutdown line is dropped,
// as in the stdio loop.
TEST(AsyncServe, ShutdownDrainsWhileTheRequesterStaysConnected) {
  Engine engine;
  AsyncHarness server(engine, {});
  // Bare ServeClient: the server-side close is expected, not a failure.
  testsupport::ServeClient closer(server.port());
  closer.send_raw(
      "{\"id\":1,\"type\":\"shutdown\"}\n{\"id\":2,\"type\":\"diagnostics\",\"session\":\"x\"}\n");
  const std::string ack = closer.recv_line();
  EXPECT_NE(ack.find(R"("status":"ok")"), std::string::npos) << ack;
  // Next read sees EOF (empty line): the pipelined diagnostics request
  // was dropped and the server closed the connection from its side.
  EXPECT_EQ(closer.recv_line(), "");
  // serve() returns while the closer's fd is still open.
  EXPECT_TRUE(server.join()) << server.err();
}

}  // namespace
}  // namespace wharf::net
