// Unit tests for the busy-window / latency analysis (Theorems 1 and 2,
// Lemma 3, Eq. 4) — anchored on the paper's Table I values, which we also
// verified by hand (DESIGN.md §2).

#include <gtest/gtest.h>

#include "core/busy_window.hpp"
#include "core/case_studies.hpp"
#include "util/expect.hpp"

namespace wharf {
namespace {

using case_studies::date17_case_study;
using case_studies::kSigmaA;
using case_studies::kSigmaB;
using case_studies::kSigmaC;
using case_studies::kSigmaD;

class CaseStudy : public ::testing::Test {
 protected:
  System system = date17_case_study();
};

// ---------------------------------------------------------------------------
// Table I: WCL(sigma_c) = 331, WCL(sigma_d) = 175
// ---------------------------------------------------------------------------

TEST_F(CaseStudy, TableI_SigmaC_WCL331) {
  const LatencyResult r = latency_analysis(system, kSigmaC);
  ASSERT_TRUE(r.bounded);
  EXPECT_EQ(r.wcl, 331);
  EXPECT_FALSE(r.schedulable);  // 331 > D = 200
}

TEST_F(CaseStudy, TableI_SigmaD_WCL175) {
  const LatencyResult r = latency_analysis(system, kSigmaD);
  ASSERT_TRUE(r.bounded);
  EXPECT_EQ(r.wcl, 175);
  EXPECT_TRUE(r.schedulable);  // 175 <= D = 200
}

TEST_F(CaseStudy, SigmaC_BusyTimes) {
  // Hand-computed: B_c(1) = 331 (51 + 20 + 30 + 2*115), B_c(2) = 382.
  const LatencyResult r = latency_analysis(system, kSigmaC);
  ASSERT_TRUE(r.bounded);
  EXPECT_EQ(r.K, 2);
  ASSERT_EQ(r.busy_times.size(), 2u);
  EXPECT_EQ(r.busy_times[0], 331);
  EXPECT_EQ(r.busy_times[1], 382);
  EXPECT_EQ(r.worst_q, 1);
}

TEST_F(CaseStudy, SigmaD_BusyTimes) {
  // Hand-computed: B_d(1) = 115 + 20 + 30 + 10 (critical segment of c).
  const LatencyResult r = latency_analysis(system, kSigmaD);
  ASSERT_TRUE(r.bounded);
  EXPECT_EQ(r.K, 1);
  ASSERT_EQ(r.busy_times.size(), 1u);
  EXPECT_EQ(r.busy_times[0], 175);
}

TEST_F(CaseStudy, Lemma3_MissCounts) {
  const LatencyResult c = latency_analysis(system, kSigmaC);
  ASSERT_TRUE(c.misses_per_window.has_value());
  EXPECT_EQ(*c.misses_per_window, 1);  // only q=1 misses (331>200; 382-200=182<=200)
  const LatencyResult d = latency_analysis(system, kSigmaD);
  ASSERT_TRUE(d.misses_per_window.has_value());
  EXPECT_EQ(*d.misses_per_window, 0);
}

// ---------------------------------------------------------------------------
// The paper's "second analysis": abstract overload chains away.
// ---------------------------------------------------------------------------

TEST_F(CaseStudy, WithoutOverloadSigmaCSchedulable) {
  const LatencyResult r = latency_analysis(system, kSigmaC, {}, system.overload_indices());
  ASSERT_TRUE(r.bounded);
  EXPECT_EQ(r.wcl, 166);  // 51 + 115
  EXPECT_TRUE(r.schedulable);
}

TEST_F(CaseStudy, WithoutOverloadSigmaDSchedulable) {
  const LatencyResult r = latency_analysis(system, kSigmaD, {}, system.overload_indices());
  ASSERT_TRUE(r.bounded);
  EXPECT_EQ(r.wcl, 125);  // 115 + 10
  EXPECT_TRUE(r.schedulable);
}

// ---------------------------------------------------------------------------
// Ablation: naive all-arbitrary interference (no Def. 2-5 structure)
// ---------------------------------------------------------------------------

TEST_F(CaseStudy, NaiveAnalysisPessimisticForSigmaD) {
  AnalysisOptions naive;
  naive.naive_arbitrary = true;
  const LatencyResult r = latency_analysis(system, kSigmaD, naive);
  ASSERT_TRUE(r.bounded);
  // With sigma_c treated as arbitrarily interfering: 115 + 2*51 + 20 + 30.
  EXPECT_EQ(r.busy_times[0], 267);
  EXPECT_EQ(r.wcl, 267);
  EXPECT_FALSE(r.schedulable);  // naive analysis wrongly rejects sigma_d
}

TEST_F(CaseStudy, NaiveAnalysisMatchesImprovedForSigmaC) {
  // Every chain already interferes arbitrarily with sigma_c, so the
  // improved analysis cannot gain anything there.
  AnalysisOptions naive;
  naive.naive_arbitrary = true;
  const LatencyResult r = latency_analysis(system, kSigmaC, naive);
  const LatencyResult improved = latency_analysis(system, kSigmaC);
  ASSERT_TRUE(r.bounded);
  EXPECT_EQ(r.wcl, improved.wcl);
}

TEST_F(CaseStudy, NaiveNeverBeatsImproved) {
  AnalysisOptions naive;
  naive.naive_arbitrary = true;
  for (int target : {kSigmaC, kSigmaD}) {
    const LatencyResult n = latency_analysis(system, target, naive);
    const LatencyResult i = latency_analysis(system, target);
    ASSERT_TRUE(n.bounded);
    ASSERT_TRUE(i.bounded);
    EXPECT_GE(n.wcl, i.wcl) << "target " << target;
  }
}

// ---------------------------------------------------------------------------
// Eq. (4) typical bound and slack
// ---------------------------------------------------------------------------

TEST_F(CaseStudy, TypicalBoundSigmaC) {
  const InterferenceContext ctx = make_interference_context(system, kSigmaC);
  // L_c(1) = 51 + eta_d(0 + 200)*115 = 166;  L_c(2) = 102 + eta_d(400)*115 = 332.
  EXPECT_EQ(typical_bound(system, ctx, 1, {}), 166);
  EXPECT_EQ(typical_bound(system, ctx, 2, {}), 332);
}

TEST_F(CaseStudy, TypicalSlackSigmaC) {
  const InterferenceContext ctx = make_interference_context(system, kSigmaC);
  // min(0+200-166, 200+200-332) = min(34, 68) = 34.
  EXPECT_EQ(typical_slack(system, ctx, 2, {}), 34);
}

TEST_F(CaseStudy, TypicalBoundSigmaD) {
  const InterferenceContext ctx = make_interference_context(system, kSigmaD);
  // L_d(1) = 115 + critical segment of sigma_c (10) = 125.
  EXPECT_EQ(typical_bound(system, ctx, 1, {}), 125);
}

// ---------------------------------------------------------------------------
// Eq. (3): busy time with a fixed combination and the exact criterion
// ---------------------------------------------------------------------------

TEST_F(CaseStudy, CombinationBusyTimeMatchesHandComputation) {
  const InterferenceContext ctx = make_interference_context(system, kSigmaC);
  // cost 0: the typical system: B = 51 + 115 = 166.
  EXPECT_EQ(busy_time_with_combination(system, ctx, 1, 0, {}), std::optional<Time>(166));
  // cost 34: B = 51 + 34 + 115 = 200 (eta_d(200) = 1 under our convention).
  EXPECT_EQ(busy_time_with_combination(system, ctx, 1, 34, {}), std::optional<Time>(200));
  // cost 35: window crosses 200 -> second sigma_d instance: B = 316.
  EXPECT_EQ(busy_time_with_combination(system, ctx, 1, 35, {}), std::optional<Time>(316));
  // cost 50 (the paper's combination c3): B = 331 = Table I value.
  EXPECT_EQ(busy_time_with_combination(system, ctx, 1, 50, {}), std::optional<Time>(331));
}

TEST_F(CaseStudy, ExactSlackEqualsEq5SlackHere) {
  // On the case study the sufficient criterion is tight: both give 34.
  const InterferenceContext ctx = make_interference_context(system, kSigmaC);
  EXPECT_EQ(exact_combination_slack(system, ctx, 2, 50, {}), 34);
  EXPECT_EQ(typical_slack(system, ctx, 2, {}), 34);
}

TEST_F(CaseStudy, ExactSlackSaturatesAtMaxCost) {
  const InterferenceContext ctx = make_interference_context(system, kSigmaD);
  // sigma_d has huge margin: even the full overload cost 50 is fine.
  EXPECT_EQ(exact_combination_slack(system, ctx, 1, 50, {}), 50);
}

TEST(BusyWindowExact, NegativeSlackWhenTypicallyUnschedulable) {
  Chain::Spec tight;
  tight.name = "tight";
  tight.arrival = periodic(100);
  tight.deadline = 5;  // impossible even alone
  tight.tasks = {Task{"t", 1, 10}};
  Chain::Spec o;
  o.name = "o";
  o.arrival = sporadic(10'000);
  o.overload = true;
  o.tasks = {Task{"o1", 2, 3}};
  const System sys("tight", {Chain(std::move(tight)), Chain(std::move(o))});
  const InterferenceContext ctx = make_interference_context(sys, 0);
  EXPECT_EQ(exact_combination_slack(sys, ctx, 1, 3, {}), -1);
}

// ---------------------------------------------------------------------------
// Breakdown (itemized Eq. 1)
// ---------------------------------------------------------------------------

TEST_F(CaseStudy, BreakdownSumsToFixedPoint) {
  const InterferenceContext ctx = make_interference_context(system, kSigmaC);
  for (Count q = 1; q <= 2; ++q) {
    const std::optional<Time> b = busy_time(system, ctx, q, {});
    ASSERT_TRUE(b.has_value());
    const auto terms = busy_time_breakdown(system, ctx, q, *b);
    Time sum = 0;
    for (const BusyTimeTerm& t : terms) sum += t.amount;
    EXPECT_EQ(sum, *b) << "q=" << q;
  }
}

TEST_F(CaseStudy, BreakdownSigmaCAtQ1) {
  // 331 = 51 (demand) + 30 (sigma_b) + 20 (sigma_a) + 230 (sigma_d, 2 inst).
  const InterferenceContext ctx = make_interference_context(system, kSigmaC);
  const auto terms = busy_time_breakdown(system, ctx, 1, 331);
  ASSERT_EQ(terms.size(), 4u);
  EXPECT_EQ(terms[0].amount, 51);
  EXPECT_NE(terms[0].label(system).find("demand"), std::string::npos);
  Time sigma_d_amount = 0;
  for (const auto& t : terms) {
    const std::string label = t.label(system);
    if (label.find("sigma_d") != std::string::npos) sigma_d_amount = t.amount;
    if (label.find("sigma_") == 0) {
      EXPECT_NE(label.find("arbitrary"), std::string::npos) << label;
    }
  }
  EXPECT_EQ(sigma_d_amount, 230);
}

TEST_F(CaseStudy, BreakdownSigmaDShowsCriticalSegment) {
  const InterferenceContext ctx = make_interference_context(system, kSigmaD);
  const auto terms = busy_time_breakdown(system, ctx, 1, 175);
  bool found = false;
  for (const BusyTimeTerm& t : terms) {
    const std::string label = t.label(system);
    if (label.find("sigma_c") != std::string::npos) {
      EXPECT_NE(label.find("critical segment"), std::string::npos);
      EXPECT_EQ(t.amount, 10);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(CaseStudy, BreakdownRespectsExclusion) {
  const InterferenceContext ctx = make_interference_context(system, kSigmaC);
  const auto terms = busy_time_breakdown(system, ctx, 1, 166, {}, system.overload_indices());
  Time sum = 0;
  for (const BusyTimeTerm& t : terms) {
    const std::string label = t.label(system);
    EXPECT_EQ(label.find("sigma_b"), std::string::npos);
    EXPECT_EQ(label.find("sigma_a"), std::string::npos);
    sum += t.amount;
  }
  EXPECT_EQ(sum, 166);
}

// ---------------------------------------------------------------------------
// Divergence and guards
// ---------------------------------------------------------------------------

TEST(BusyWindow, OverloadedProcessorDiverges) {
  // Utilization 2.0: the fixed point must be reported unbounded, not loop.
  Chain::Spec s1;
  s1.name = "x";
  s1.arrival = periodic(10);
  s1.deadline = 10;
  s1.tasks = {Task{"x1", 2, 10}};
  Chain::Spec s2;
  s2.name = "y";
  s2.arrival = periodic(10);
  s2.deadline = 10;
  s2.tasks = {Task{"y1", 1, 10}};
  System sys("overloaded", {Chain(std::move(s1)), Chain(std::move(s2))});
  const LatencyResult r = latency_analysis(sys, 1);
  EXPECT_FALSE(r.bounded);
  EXPECT_FALSE(r.reason.empty());
}

TEST(BusyWindow, ExactlyFullUtilizationHandled) {
  // U = 1.0 with harmonic load: busy window never closes for the lower
  // priority chain; must terminate via a cap, not hang.
  Chain::Spec s1;
  s1.name = "x";
  s1.arrival = periodic(10);
  s1.deadline = 10;
  s1.tasks = {Task{"x1", 2, 5}};
  Chain::Spec s2;
  s2.name = "y";
  s2.arrival = periodic(10);
  s2.deadline = 10;
  s2.tasks = {Task{"y1", 1, 5}};
  System sys("full", {Chain(std::move(s1)), Chain(std::move(s2))});
  AnalysisOptions options;
  options.max_busy_windows = 1000;  // keep the test fast
  const LatencyResult r = latency_analysis(sys, 1, options);
  // At exactly U=1 the busy window closes at every q (B(q) = 10q =
  // delta(q+1)); the analysis is bounded with K at the cap or earlier.
  ASSERT_TRUE(r.bounded);
  EXPECT_EQ(r.wcl, 10);
}

TEST(BusyWindow, SingleChainAloneIsItsOwnWcet) {
  Chain::Spec s;
  s.name = "solo";
  s.arrival = periodic(100);
  s.deadline = 100;
  s.tasks = {Task{"t1", 2, 7}, Task{"t2", 1, 5}};
  System sys("solo", {Chain(std::move(s))});
  const LatencyResult r = latency_analysis(sys, 0);
  ASSERT_TRUE(r.bounded);
  EXPECT_EQ(r.K, 1);
  EXPECT_EQ(r.wcl, 12);
  EXPECT_TRUE(r.schedulable);
}

TEST(BusyWindow, BusyTimeRequiresPositiveQ) {
  const System sys = date17_case_study();
  const InterferenceContext ctx = make_interference_context(sys, kSigmaC);
  EXPECT_THROW((void)busy_time(sys, ctx, 0, {}), InvalidArgument);
}

TEST(BusyWindow, ChainWithoutDeadlineHasNoMissData) {
  Chain::Spec s;
  s.name = "nodl";
  s.arrival = periodic(100);
  s.tasks = {Task{"t1", 1, 7}};
  System sys("nodl", {Chain(std::move(s))});
  const LatencyResult r = latency_analysis(sys, 0);
  ASSERT_TRUE(r.bounded);
  EXPECT_FALSE(r.misses_per_window.has_value());
  EXPECT_FALSE(r.schedulable);
  EXPECT_EQ(r.wcl, 7);
}

// ---------------------------------------------------------------------------
// Asynchronous self-interference term (2nd line of Eq. 1)
// ---------------------------------------------------------------------------

TEST(BusyWindow, AsynchronousSelfInterference) {
  // One async chain, alone: tasks (prio 2, C=6), (prio 1, C=6), period 10.
  // q=1: B = 12 + max(0, eta(B)-1)*6 ... instances pile up: eta(12)=2 ->
  // B=18, eta(18)=2 -> 18. So B(1)=18, latency 18.
  Chain::Spec s;
  s.name = "async";
  s.kind = ChainKind::kAsynchronous;
  s.arrival = periodic(10);
  s.deadline = 100;
  s.tasks = {Task{"h", 2, 6}, Task{"t", 1, 6}};
  System sys("async", {Chain(std::move(s))});
  AnalysisOptions options;
  options.max_busy_windows = 100000;
  const LatencyResult r = latency_analysis(sys, 0, options);
  // Utilization 1.2 > 1: diverges.
  EXPECT_FALSE(r.bounded);
}

TEST(BusyWindow, AsynchronousSelfInterferenceBounded) {
  // Async chain with period 20 (U = 0.6): B(1) = 12, no pile-up
  // (eta(12) = 1), K = 1.
  Chain::Spec s;
  s.name = "async";
  s.kind = ChainKind::kAsynchronous;
  s.arrival = periodic(20);
  s.deadline = 100;
  s.tasks = {Task{"h", 2, 6}, Task{"t", 1, 6}};
  System sys("async", {Chain(std::move(s))});
  const LatencyResult r = latency_analysis(sys, 0);
  ASSERT_TRUE(r.bounded);
  EXPECT_EQ(r.K, 1);
  EXPECT_EQ(r.wcl, 12);
}

TEST(BusyWindow, AsynchronousHeaderPileUp) {
  // Async chain where the header (high prio) can pile up while the tail
  // (lowest prio) is blocked: period 10, header C=3 (prio 3), tail C=4
  // (prio 1), U = 0.7. B(1) = 7 + max(0, eta(B)-1)*3: eta(7)=1 -> 7.
  // B(2) = 14 + max(0, eta(14)-2)*3 = 14; 14 > delta(3)=20? no -> K=2.
  Chain::Spec s;
  s.name = "async";
  s.kind = ChainKind::kAsynchronous;
  s.arrival = periodic(10);
  s.deadline = 100;
  s.tasks = {Task{"h", 3, 3}, Task{"t", 1, 4}};
  System sys("async", {Chain(std::move(s))});
  const LatencyResult r = latency_analysis(sys, 0);
  ASSERT_TRUE(r.bounded);
  EXPECT_EQ(r.busy_times[0], 7);
  EXPECT_EQ(r.wcl, 7);
}

}  // namespace
}  // namespace wharf
