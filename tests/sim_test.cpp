// Unit tests for the SPP discrete-event simulator (src/sim): scheduling
// semantics on hand-built timelines, sync/async chain behaviour, arrival
// generators and the sliding-window miss counter.

#include <gtest/gtest.h>

#include "core/case_studies.hpp"
#include "sim/arrival_sequence.hpp"
#include "sim/busy_windows.hpp"
#include "sim/simulator.hpp"
#include "util/expect.hpp"

namespace wharf::sim {
namespace {

Chain make_chain(const std::string& name, ChainKind kind, ArrivalModelPtr arrival,
                 std::optional<Time> deadline, std::vector<Task> tasks, bool overload = false) {
  Chain::Spec spec;
  spec.name = name;
  spec.kind = kind;
  spec.arrival = std::move(arrival);
  spec.deadline = deadline;
  spec.overload = overload;
  spec.tasks = std::move(tasks);
  return Chain(std::move(spec));
}

// ---------------------------------------------------------------------------
// Basic scheduling semantics
// ---------------------------------------------------------------------------

TEST(Simulator, SingleChainRunsBackToBack) {
  const System sys("one", {make_chain("c", ChainKind::kSynchronous, periodic(100), Time{100},
                                      {Task{"t1", 2, 3}, Task{"t2", 1, 4}})});
  const SimResult r = simulate(sys, {{0, 100}});
  ASSERT_EQ(r.chains[0].instances.size(), 2u);
  EXPECT_EQ(r.chains[0].instances[0].finish, 7);
  EXPECT_EQ(r.chains[0].instances[1].finish, 107);
  EXPECT_EQ(r.chains[0].max_latency, 7);
  EXPECT_EQ(r.chains[0].miss_count, 0);
  EXPECT_EQ(r.makespan, 107);
}

TEST(Simulator, PreemptionByHigherPriority) {
  // Low-priority long task preempted by a high-priority arrival at t=2.
  const System sys("two", {make_chain("lo", ChainKind::kSynchronous, periodic(1000), Time{1000},
                                      {Task{"l", 1, 10}}),
                           make_chain("hi", ChainKind::kSynchronous, periodic(1000), Time{1000},
                                      {Task{"h", 2, 5}})});
  SimOptions options;
  options.record_trace = true;
  const SimResult r = simulate(sys, {{0}, {2}}, options);
  // lo runs [0,2), hi runs [2,7), lo resumes [7,15).
  EXPECT_EQ(r.chains[0].instances[0].finish, 15);
  EXPECT_EQ(r.chains[1].instances[0].finish, 7);
  ASSERT_EQ(r.trace.size(), 3u);
  EXPECT_EQ(r.trace[0].chain, 0);
  EXPECT_EQ(r.trace[0].begin, 0);
  EXPECT_EQ(r.trace[0].end, 2);
  EXPECT_EQ(r.trace[1].chain, 1);
  EXPECT_EQ(r.trace[1].end, 7);
  EXPECT_EQ(r.trace[2].chain, 0);
  EXPECT_EQ(r.trace[2].begin, 7);
}

TEST(Simulator, NoPreemptionByLowerPriority) {
  const System sys("two", {make_chain("hi", ChainKind::kSynchronous, periodic(1000), Time{1000},
                                      {Task{"h", 2, 10}}),
                           make_chain("lo", ChainKind::kSynchronous, periodic(1000), Time{1000},
                                      {Task{"l", 1, 5}})});
  const SimResult r = simulate(sys, {{0}, {2}});
  EXPECT_EQ(r.chains[0].instances[0].finish, 10);
  EXPECT_EQ(r.chains[1].instances[0].finish, 15);
}

TEST(Simulator, ChainTasksRunInSequenceWithInterleaving) {
  // Chain x = (prio 3, C 2) -> (prio 1, C 2); chain y = single task
  // prio 2, C 3 arriving at 1.  x1 runs [0,2); y arrives at 1 but prio 2
  // < 3 waits; at 2, x2 (prio 1) is ready but y (prio 2) wins: y [2,5);
  // x2 [5,7).
  const System sys("mix", {make_chain("x", ChainKind::kSynchronous, periodic(1000), Time{1000},
                                      {Task{"x1", 3, 2}, Task{"x2", 1, 2}}),
                           make_chain("y", ChainKind::kSynchronous, periodic(1000), Time{1000},
                                      {Task{"y1", 2, 3}})});
  const SimResult r = simulate(sys, {{0}, {1}});
  EXPECT_EQ(r.chains[1].instances[0].finish, 5);
  EXPECT_EQ(r.chains[0].instances[0].finish, 7);
}

TEST(Simulator, DeadlineMissRecorded) {
  const System sys("miss", {make_chain("c", ChainKind::kSynchronous, periodic(100), Time{5},
                                       {Task{"t", 1, 10}})});
  const SimResult r = simulate(sys, {{0}});
  EXPECT_TRUE(r.chains[0].instances[0].missed);
  EXPECT_EQ(r.chains[0].miss_count, 1);
}

TEST(Simulator, ZeroWcetTaskCompletesInstantly) {
  const System sys("zero", {make_chain("c", ChainKind::kSynchronous, periodic(100), Time{100},
                                       {Task{"t1", 2, 0}, Task{"t2", 1, 5}})});
  const SimResult r = simulate(sys, {{0}});
  EXPECT_EQ(r.chains[0].instances[0].finish, 5);
}

// ---------------------------------------------------------------------------
// Synchronous vs. asynchronous chain semantics
// ---------------------------------------------------------------------------

TEST(Simulator, SynchronousChainQueuesActivations) {
  // Latency of the second activation is measured from its *arrival*, and
  // it cannot start before the first instance finishes.
  const System sys("syncq", {make_chain("c", ChainKind::kSynchronous, periodic(10), Time{100},
                                        {Task{"t1", 2, 8}, Task{"t2", 1, 7}})});
  const SimResult r = simulate(sys, {{0, 10}});
  ASSERT_EQ(r.chains[0].instances.size(), 2u);
  EXPECT_EQ(r.chains[0].instances[0].finish, 15);
  // Second instance starts at 15 (first finished), runs 15 ticks.
  EXPECT_EQ(r.chains[0].instances[1].finish, 30);
  EXPECT_EQ(r.chains[0].instances[1].latency(), 20);
}

TEST(Simulator, AsynchronousChainOverlapsInstances) {
  // Async: header of instance 2 (prio 2) preempts the tail of instance 1
  // (prio 1) upon its arrival at t=2.
  const System sys("asyncq", {make_chain("c", ChainKind::kAsynchronous, periodic(2), Time{100},
                                         {Task{"h", 2, 1}, Task{"t", 1, 9}})});
  const SimResult r = simulate(sys, {{0, 2}});
  ASSERT_EQ(r.chains[0].instances.size(), 2u);
  // Timeline: h1 [0,1), t1 [1,2), h2 [2,3) preempts t1, then t1 [3,11),
  // t2 [11,20).
  EXPECT_EQ(r.chains[0].instances[0].finish, 11);
  EXPECT_EQ(r.chains[0].instances[1].finish, 20);
}

TEST(Simulator, AsyncSameTaskInstancesAreFifo) {
  // Two activations at the same instant: header jobs run FIFO, so
  // instance 0 finishes first.
  const System sys("fifo", {make_chain("c", ChainKind::kAsynchronous, periodic(1), Time{100},
                                       {Task{"h", 2, 3}, Task{"t", 1, 1}})});
  const SimResult r = simulate(sys, {{0, 0}});
  ASSERT_EQ(r.chains[0].instances.size(), 2u);
  EXPECT_LT(r.chains[0].instances[0].finish, r.chains[0].instances[1].finish);
}

TEST(Simulator, SyncActivationCoincidingWithFinishStartsImmediately) {
  const System sys("edge", {make_chain("c", ChainKind::kSynchronous, periodic(5), Time{100},
                                       {Task{"t", 1, 5}})});
  const SimResult r = simulate(sys, {{0, 5}});
  EXPECT_EQ(r.chains[0].instances[0].finish, 5);
  EXPECT_EQ(r.chains[0].instances[1].finish, 10);
  EXPECT_EQ(r.chains[0].instances[1].latency(), 5);
}

// ---------------------------------------------------------------------------
// Validation and bookkeeping
// ---------------------------------------------------------------------------

TEST(Simulator, RejectsUnsortedArrivals) {
  const System sys("bad", {make_chain("c", ChainKind::kSynchronous, periodic(10), Time{10},
                                      {Task{"t", 1, 1}})});
  EXPECT_THROW(simulate(sys, {{5, 3}}), InvalidArgument);
}

TEST(Simulator, RejectsWrongArrivalVectorCount) {
  const System sys("bad", {make_chain("c", ChainKind::kSynchronous, periodic(10), Time{10},
                                      {Task{"t", 1, 1}})});
  EXPECT_THROW(simulate(sys, {}), InvalidArgument);
}

TEST(Simulator, EmptyArrivalsProduceEmptyRun) {
  const System sys("idle", {make_chain("c", ChainKind::kSynchronous, periodic(10), Time{10},
                                       {Task{"t", 1, 1}})});
  const SimResult r = simulate(sys, {{}});
  EXPECT_TRUE(r.chains[0].instances.empty());
  EXPECT_EQ(r.makespan, 0);
}

TEST(Simulator, TraceMergesContiguousSlices) {
  const System sys("merge", {make_chain("c", ChainKind::kSynchronous, periodic(10), Time{100},
                                        {Task{"t", 2, 4}}),
                             make_chain("lo", ChainKind::kSynchronous, periodic(100), Time{100},
                                        {Task{"l", 1, 1}})});
  SimOptions options;
  options.record_trace = true;
  // Arrival of "lo" at t=2 does not preempt "t" (prio 1 < 2); the trace
  // must still show one contiguous slice [0,4) for t.
  const SimResult r = simulate(sys, {{0}, {2}}, options);
  ASSERT_GE(r.trace.size(), 2u);
  EXPECT_EQ(r.trace[0].begin, 0);
  EXPECT_EQ(r.trace[0].end, 4);
}

TEST(ChainResult, MaxMissesInWindow) {
  ChainResult cr;
  for (bool missed : {true, false, true, true, false, false, true}) {
    InstanceRecord rec;
    rec.missed = missed;
    rec.completed = true;
    cr.instances.push_back(rec);
  }
  EXPECT_EQ(cr.max_misses_in_window(1), 1);
  EXPECT_EQ(cr.max_misses_in_window(2), 2);  // indices 2,3
  EXPECT_EQ(cr.max_misses_in_window(4), 3);  // indices 0..3
  EXPECT_EQ(cr.max_misses_in_window(7), 4);
  EXPECT_EQ(cr.max_misses_in_window(100), 4);
}

TEST(ChainResult, WindowSizeValidated) {
  ChainResult cr;
  EXPECT_THROW((void)cr.max_misses_in_window(0), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Arrival sequences
// ---------------------------------------------------------------------------

TEST(ArrivalSequences, Periodic) {
  const auto t = periodic_arrivals(100, 5, 350);
  EXPECT_EQ(t, (std::vector<Time>{5, 105, 205, 305}));
}

TEST(ArrivalSequences, PeriodicEmptyWhenPhaseBeyondHorizon) {
  EXPECT_TRUE(periodic_arrivals(100, 500, 300).empty());
}

TEST(ArrivalSequences, GreedySporadicPacksAtMinDistance) {
  const auto m = sporadic(700);
  const auto t = greedy_arrivals(*m, 0, 2200);
  EXPECT_EQ(t, (std::vector<Time>{0, 700, 1400, 2100}));
  EXPECT_TRUE(is_legal_sequence(t, *m));
}

TEST(ArrivalSequences, GreedyRespectsCurvePrefix) {
  const auto m = delta_curve({700, 15200, 50000}, 35000);
  const auto t = greedy_arrivals(*m, 0, 90'000);
  // t0=0, t1=700 (delta2), t2 >= delta3 = 15200 from t0, t3 >= 50000 from
  // t0; then tail period keeps spacing.
  ASSERT_GE(t.size(), 4u);
  EXPECT_EQ(t[0], 0);
  EXPECT_EQ(t[1], 700);
  EXPECT_EQ(t[2], 15200);
  EXPECT_EQ(t[3], 50000);
  EXPECT_TRUE(is_legal_sequence(t, *m));
}

TEST(ArrivalSequences, GreedyPeriodicMatchesPeriodicArrivals) {
  const auto m = periodic(200);
  EXPECT_EQ(greedy_arrivals(*m, 0, 1000), periodic_arrivals(200, 0, 1000));
}

TEST(ArrivalSequences, RandomArrivalsAreLegal) {
  const auto m = delta_curve({700, 15200, 50000}, 35000);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto t = random_arrivals(*m, 0, 300'000, 5'000.0, seed);
    EXPECT_TRUE(is_legal_sequence(t, *m)) << "seed " << seed;
  }
}

TEST(ArrivalSequences, RandomWithZeroExtraEqualsGreedy) {
  const auto m = sporadic(700);
  EXPECT_EQ(random_arrivals(*m, 0, 5000, 0.0, 42), greedy_arrivals(*m, 0, 5000));
}

TEST(ArrivalSequences, LegalityDetectsViolation) {
  const auto m = sporadic(700);
  EXPECT_FALSE(is_legal_sequence({0, 100}, *m));
  EXPECT_FALSE(is_legal_sequence({100, 0}, *m));  // unsorted
  EXPECT_TRUE(is_legal_sequence({}, *m));
  EXPECT_TRUE(is_legal_sequence({42}, *m));
}

TEST(ArrivalSequences, LegalityChecksLongWindows) {
  const auto m = delta_curve({0, 1000}, 1000);
  // delta_minus: (2)=0, (3)=1000, (4)=2000.  Pairs may coincide but
  // triples must span 1000 and quadruples 2000.
  EXPECT_TRUE(is_legal_sequence({0, 0, 1000, 2000}, *m));
  EXPECT_FALSE(is_legal_sequence({0, 0, 1000, 1000}, *m));  // 4 events in 1000
  EXPECT_FALSE(is_legal_sequence({0, 0, 999}, *m));
}

// ---------------------------------------------------------------------------
// Observed busy windows (Definition 6)
// ---------------------------------------------------------------------------

TEST(BusyWindows, MergesOverlappingPendingIntervals) {
  ChainResult cr;
  const auto add = [&cr](Time activation, Time finish) {
    InstanceRecord rec;
    rec.activation = activation;
    rec.finish = finish;
    rec.completed = true;
    cr.instances.push_back(rec);
  };
  add(0, 10);
  add(5, 20);    // overlaps the first
  add(20, 30);   // touches -> same busy window (still pending boundary)
  add(50, 60);   // separate
  const auto windows = observed_busy_windows(cr);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0], (BusyWindow{0, 30}));
  EXPECT_EQ(windows[1], (BusyWindow{50, 60}));
  EXPECT_EQ(max_busy_window_length(windows), 30);
}

TEST(BusyWindows, EmptyChain) {
  ChainResult cr;
  EXPECT_TRUE(observed_busy_windows(cr).empty());
  EXPECT_EQ(max_busy_window_length({}), 0);
}

TEST(BusyWindows, RejectsPendingInstances) {
  ChainResult cr;
  InstanceRecord rec;
  rec.completed = false;
  cr.instances.push_back(rec);
  EXPECT_THROW(observed_busy_windows(cr), InvalidArgument);
}

TEST(BusyWindows, ArrivalPerWindowChecker) {
  const std::vector<BusyWindow> windows = {{0, 100}, {200, 300}};
  EXPECT_TRUE(at_most_one_arrival_per_window(windows, {}));
  EXPECT_TRUE(at_most_one_arrival_per_window(windows, {50, 250}));
  EXPECT_TRUE(at_most_one_arrival_per_window(windows, {150}));     // outside all
  EXPECT_TRUE(at_most_one_arrival_per_window(windows, {100}));     // end-exclusive
  EXPECT_FALSE(at_most_one_arrival_per_window(windows, {10, 20}));
  EXPECT_FALSE(at_most_one_arrival_per_window(windows, {150, 250, 299}));
}

TEST(BusyWindows, CaseStudyAssumptionHolds) {
  // Under greedy arrivals the case-study busy windows of sigma_c stay
  // below the overload inter-arrivals, so the paper's TWCA assumption
  // demonstrably holds on the simulated run.
  const System sys = case_studies::date17_case_study();
  std::vector<std::vector<Time>> arrivals;
  for (int c = 0; c < sys.size(); ++c) {
    arrivals.push_back(greedy_arrivals(sys.chain(c).arrival(), 0, 50'000));
  }
  const SimResult r = simulate(sys, arrivals);
  const auto windows = observed_busy_windows(r.chains[case_studies::kSigmaC]);
  // A window may span K_c = 2 activations: bounded by B_c(2) = 382.
  EXPECT_LE(max_busy_window_length(windows), 382);
  for (int o : sys.overload_indices()) {
    EXPECT_TRUE(at_most_one_arrival_per_window(windows,
                                               arrivals[static_cast<std::size_t>(o)]))
        << "overload chain " << sys.chain(o).name();
  }
}

// ---------------------------------------------------------------------------
// Case-study smoke: simulate the paper system under dense arrivals
// ---------------------------------------------------------------------------

TEST(Simulator, CaseStudySmoke) {
  const System sys = case_studies::date17_case_study();
  const Time horizon = 60'000;
  std::vector<std::vector<Time>> arrivals;
  for (int c = 0; c < sys.size(); ++c) {
    arrivals.push_back(greedy_arrivals(sys.chain(c).arrival(), 0, horizon));
  }
  const SimResult r = simulate(sys, arrivals);
  // All activations complete (U < 1).
  for (int c = 0; c < sys.size(); ++c) {
    EXPECT_EQ(r.chains[static_cast<std::size_t>(c)].completed,
              static_cast<Count>(arrivals[static_cast<std::size_t>(c)].size()));
  }
  // The analytic WCLs (331, 175) must dominate every observed latency.
  EXPECT_LE(r.chains[case_studies::kSigmaD].max_latency, 175);
  EXPECT_LE(r.chains[case_studies::kSigmaC].max_latency, 331);
  // With all chains released together at t=0, sigma_c indeed misses.
  EXPECT_GT(r.chains[case_studies::kSigmaC].miss_count, 0);
}

}  // namespace
}  // namespace wharf::sim
