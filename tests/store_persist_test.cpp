// The persistence battery for engine/store_persist.{hpp,cpp}: the
// round-trip property (save → load → re-analyze is bit-identical with
// ZERO re-solves, across jobs values and under a tiny byte budget), the
// corruption contract (every flipped byte and every truncation point of
// a snapshot — header, string table, records, footer — degrades to a
// clean cold start: OK Status, records_skipped > 0, never a crash; run
// under ASan/UBSan in CI), the version-mismatch case (distinguishable
// from corruption by reason), and the crash-safety contract (a save
// that dies mid-write via the fail_after_bytes hook leaves the previous
// snapshot loadable — the atomic write-temp-then-rename promise).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "engine/engine.hpp"
#include "engine/session.hpp"
#include "engine/store_persist.hpp"
#include "gen/random_systems.hpp"
#include "tests/support/serve_client.hpp"

namespace wharf {
namespace {

using testsupport::results_of;

constexpr std::size_t kBusyWindowStage =
    static_cast<std::size_t>(static_cast<int>(ArtifactStage::kBusyWindow));

/// A scratch directory with automatic cleanup (the snapshot plus any
/// leftover temp files a failed save may have produced).
struct TempDir {
  std::string path;
  TempDir() {
    char name[] = "/tmp/wharf_persist_test_XXXXXX";
    const char* made = ::mkdtemp(name);
    EXPECT_NE(made, nullptr);
    path = made == nullptr ? "" : made;
  }
  ~TempDir() {
    if (path.empty()) return;
    std::remove(store_snapshot_path(path).c_str());
    ::rmdir(path.c_str());
  }
};

/// Deterministic workload: random systems plus priority shuffles of the
/// first one (maximum artifact sharing, like a design-space sweep).
std::vector<System> workload(std::uint64_t seed, int systems = 3) {
  std::mt19937_64 rng(seed);
  gen::RandomSystemSpec spec;
  spec.min_chains = 2;
  spec.max_chains = 3;
  spec.min_tasks = 2;
  spec.max_tasks = 3;
  spec.utilization = 0.6;
  std::vector<System> out;
  out.push_back(gen::random_system(spec, rng, "persist_base"));
  for (int i = 1; i < systems; ++i) out.push_back(gen::with_random_priorities(out.front(), rng));
  return out;
}

std::size_t insertions(const ArtifactStore::Stats& stats) {
  std::size_t total = 0;
  for (const ArtifactStore::StageStats& s : stats.stage) total += s.insertions;
  return total;
}

/// Runs the workload and returns the answers-only payload per request.
std::vector<std::string> run_workload(Engine& engine, const std::vector<System>& systems) {
  std::vector<std::string> answers;
  for (const System& system : systems) {
    answers.push_back(results_of(to_json(engine.run(AnalysisRequest::standard(system, {3, 8})))));
  }
  return answers;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------
// Round trip
// ---------------------------------------------------------------------

TEST(StorePersist, RoundTripIsBitIdenticalWithZeroResolves) {
  const std::vector<System> systems = workload(11);
  for (const int jobs : {1, 4, 16}) {
    TempDir dir;
    EngineOptions options;
    options.jobs = jobs;
    options.store_dir = dir.path;

    Engine writer{options};
    const std::vector<std::string> cold = run_workload(writer, systems);
    const StoreSaveResult saved = writer.persist();
    ASSERT_TRUE(saved.status.is_ok()) << saved.status.to_string();
    EXPECT_GT(saved.records_written, 0u);
    EXPECT_GT(saved.bytes_written, 0u);

    Engine reader{options};
    EXPECT_EQ(reader.persistence_stats().persisted_artifacts, saved.records_written);
    EXPECT_EQ(reader.persistence_stats().load_skipped_corrupt, 0u);
    const ArtifactStore::Stats before = reader.store_stats();
    const std::vector<std::string> warm = run_workload(reader, systems);

    // The property: identical answers, and the warm replay resolved
    // every artifact — batch markers included — from the snapshot.
    EXPECT_EQ(warm, cold) << "jobs=" << jobs;
    EXPECT_EQ(insertions(reader.store_stats()) - insertions(before), 0u) << "jobs=" << jobs;
  }
}

TEST(StorePersist, RoundTripUnderTinyBudgetStaysCorrect) {
  // A budget far below the workload's artifact weight: the loaded store
  // must re-account weights and keep evicting correctly, and answers
  // must stay identical (the cache is an optimization, never semantics).
  const std::vector<System> systems = workload(12);
  TempDir dir;
  EngineOptions options;
  options.cache_bytes = 4096;
  options.store_dir = dir.path;

  Engine writer{options};
  const std::vector<std::string> cold = run_workload(writer, systems);
  const StoreSaveResult saved = writer.persist();
  ASSERT_TRUE(saved.status.is_ok()) << saved.status.to_string();

  Engine reader{options};
  const ArtifactStore::Stats loaded = reader.store_stats();
  EXPECT_LE(loaded.resident_bytes, options.cache_bytes);
  EXPECT_EQ(run_workload(reader, systems), cold);
  EXPECT_LE(reader.store_stats().resident_bytes, options.cache_bytes);
}

TEST(StorePersist, LoadedWeightsMatchRemeasurement) {
  // Weights are not stored; load() re-measures via weight_of().  A
  // fresh store loaded from the snapshot must account exactly the same
  // resident weight a second loaded store does (determinism), and the
  // entry count must match what the writer persisted.
  const std::vector<System> systems = workload(13);
  TempDir dir;
  EngineOptions options;
  options.store_dir = dir.path;
  Engine writer{options};
  (void)run_workload(writer, systems);
  const StoreSaveResult saved = writer.persist();
  ASSERT_TRUE(saved.status.is_ok());

  ArtifactStore a;
  ArtifactStore b;
  const StoreLoadResult la = a.load(store_snapshot_path(dir.path));
  const StoreLoadResult lb = b.load(store_snapshot_path(dir.path));
  EXPECT_EQ(la.records_loaded, saved.records_written);
  EXPECT_EQ(lb.records_loaded, saved.records_written);
  EXPECT_EQ(a.stats().resident_entries, saved.records_written);
  EXPECT_GT(a.stats().resident_bytes, 0u);
  EXPECT_EQ(a.stats().resident_bytes, b.stats().resident_bytes);
}

TEST(StorePersist, MissingFileIsCleanCold) {
  TempDir dir;
  ArtifactStore store;
  const StoreLoadResult loaded = store.load(store_snapshot_path(dir.path));
  EXPECT_TRUE(loaded.status.is_ok());
  EXPECT_TRUE(loaded.cold);
  EXPECT_EQ(loaded.records_loaded, 0u);
  EXPECT_EQ(loaded.records_skipped, 0u);  // absence is not corruption
}

// ---------------------------------------------------------------------
// Corruption
// ---------------------------------------------------------------------

/// Builds one pristine snapshot and returns its bytes.
std::string pristine_snapshot(const std::string& dir) {
  EngineOptions options;
  options.store_dir = dir;
  Engine writer{options};
  const std::vector<System> systems = workload(21);
  for (const System& system : systems) {
    (void)writer.run(AnalysisRequest::standard(system, {3, 8}));
  }
  const StoreSaveResult saved = writer.persist();
  EXPECT_TRUE(saved.status.is_ok());
  EXPECT_GT(saved.records_written, 0u);
  return read_file(store_snapshot_path(dir));
}

/// The corruption contract on one mutated byte string: load never
/// throws, reports OK + cold + skipped, and leaves the store empty but
/// fully usable.
void expect_clean_cold(const std::string& bytes, const std::string& dir,
                       const std::string& what) {
  const std::string path = store_snapshot_path(dir);
  write_file(path, bytes);
  ArtifactStore store;
  const StoreLoadResult loaded = store.load(path);
  EXPECT_TRUE(loaded.status.is_ok()) << what;
  EXPECT_TRUE(loaded.cold) << what;
  EXPECT_EQ(loaded.records_loaded, 0u) << what;
  EXPECT_GT(loaded.records_skipped, 0u) << what;
  EXPECT_FALSE(loaded.reason.empty()) << what;
  EXPECT_EQ(store.stats().resident_entries, 0u) << what;
  // Still usable after the rejected load.
  store.insert(ArtifactStage::kIlp, "probe", std::make_shared<const int>(7), 64);
  EXPECT_TRUE(store.lookup(ArtifactStage::kIlp, "probe").has_value()) << what;
}

TEST(StorePersist, TargetedCorruptionFallsBackCold) {
  TempDir dir;
  const std::string good = pristine_snapshot(dir.path);
  ASSERT_GT(good.size(), 32u);

  // One flip in every section: magic, section marker, string-table
  // payload, first record, footer CRC (the last byte).
  const std::size_t offsets[] = {0, 13, good.size() / 4, good.size() / 2, good.size() - 1};
  for (const std::size_t offset : offsets) {
    std::string bad = good;
    bad[offset] = static_cast<char>(bad[offset] ^ 0x5a);
    expect_clean_cold(bad, dir.path, "flip@" + std::to_string(offset));
  }
}

TEST(StorePersist, VersionMismatchIsDistinguishable) {
  TempDir dir;
  std::string bad = pristine_snapshot(dir.path);
  // The u32 version sits right after the 8-byte magic, outside any CRC.
  bad[8] = static_cast<char>(bad[8] + 1);
  const std::string path = store_snapshot_path(dir.path);
  write_file(path, bad);
  ArtifactStore store;
  const StoreLoadResult loaded = store.load(path);
  EXPECT_TRUE(loaded.status.is_ok());
  EXPECT_TRUE(loaded.cold);
  EXPECT_GT(loaded.records_skipped, 0u);
  EXPECT_NE(loaded.reason.find("version"), std::string::npos) << loaded.reason;
}

TEST(StorePersist, CorruptionFuzzNeverCrashes) {
  TempDir dir;
  const std::string good = pristine_snapshot(dir.path);
  std::mt19937_64 rng(97);
  std::uniform_int_distribution<std::size_t> pick_offset(0, good.size() - 1);
  std::uniform_int_distribution<int> pick_bit(0, 7);
  std::uniform_int_distribution<int> pick_kind(0, 2);

  for (int i = 0; i < 200; ++i) {
    std::string bad = good;
    std::string what;
    switch (pick_kind(rng)) {
      case 0: {  // single bit flip
        const std::size_t offset = pick_offset(rng);
        bad[offset] = static_cast<char>(bad[offset] ^ (1 << pick_bit(rng)));
        what = "bitflip@" + std::to_string(offset);
        break;
      }
      case 1: {  // truncation (strictly shorter)
        bad.resize(pick_offset(rng));
        what = "truncate@" + std::to_string(bad.size());
        break;
      }
      default: {  // garbage tail appended after a truncation point
        bad.resize(pick_offset(rng));
        bad.append(16, static_cast<char>(0xee));
        what = "garbage-tail@" + std::to_string(bad.size());
        break;
      }
    }
    if (bad == good) continue;  // a flip can be undone by a resize; skip no-ops
    expect_clean_cold(bad, dir.path, what);
  }
}

// ---------------------------------------------------------------------
// Crash safety
// ---------------------------------------------------------------------

TEST(StorePersist, CrashMidSaveKeepsPreviousSnapshot) {
  TempDir dir;
  const std::string path = store_snapshot_path(dir.path);

  // First generation: a store with a known artifact population.
  EngineOptions options;
  options.store_dir = dir.path;
  Engine writer{options};
  const std::vector<System> systems = workload(31);
  for (const System& system : systems) {
    (void)writer.run(AnalysisRequest::standard(system, {3, 8}));
  }
  const StoreSaveResult first = writer.persist();
  ASSERT_TRUE(first.status.is_ok());
  const std::string generation_one = read_file(path);

  // Second generation dies mid-write at several depths, garbage temp
  // and all: the published snapshot must stay byte-identical.
  ArtifactStore second;
  ASSERT_GT(second.load(path).records_loaded, 0u);
  for (const std::size_t fail_after : {std::size_t{0}, std::size_t{7}, std::size_t{100}}) {
    StoreSaveOptions crash;
    crash.fail_after_bytes = fail_after;
    const StoreSaveResult died = StoreSnapshot::save(second, path, crash);
    EXPECT_FALSE(died.status.is_ok()) << fail_after;
    EXPECT_EQ(died.records_written, 0u) << fail_after;
    EXPECT_EQ(read_file(path), generation_one) << fail_after;
  }

  // And the survivor still loads warm.
  ArtifactStore survivor;
  const StoreLoadResult loaded = survivor.load(path);
  EXPECT_TRUE(loaded.status.is_ok());
  EXPECT_EQ(loaded.records_loaded, first.records_written);
  EXPECT_EQ(loaded.records_skipped, 0u);
}

TEST(StorePersist, SaveToUnwritableDirectoryFailsCleanly) {
  // Not a crash test hook but the everyday failure: the target
  // directory does not exist.  save() must report, not throw.
  ArtifactStore store;
  store.insert(ArtifactStage::kIlp, "probe", std::make_shared<const int>(7), 64);
  const StoreSaveResult saved = store.save("/nonexistent_wharf_dir/snap");
  EXPECT_FALSE(saved.status.is_ok());
}

}  // namespace
}  // namespace wharf
