// Unit tests for the dense two-phase simplex (src/lp), including a
// brute-force vertex-enumeration cross-check on random small LPs.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <random>
#include <vector>

#include "lp/simplex.hpp"
#include "util/expect.hpp"

namespace wharf::lp {
namespace {

constexpr double kTol = 1e-6;

TEST(Simplex, SingleVariableBound) {
  Problem p({1.0});
  p.add_le({1.0}, 5.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, kTol);
  EXPECT_NEAR(s.x[0], 5.0, kTol);
}

TEST(Simplex, ClassicTwoVariable) {
  // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18  => x=2, y=6, obj=36.
  Problem p({3.0, 5.0});
  p.add_le({1.0, 0.0}, 4.0);
  p.add_le({0.0, 2.0}, 12.0);
  p.add_le({3.0, 2.0}, 18.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, kTol);
  EXPECT_NEAR(s.x[0], 2.0, kTol);
  EXPECT_NEAR(s.x[1], 6.0, kTol);
}

TEST(Simplex, Unbounded) {
  Problem p({1.0, 0.0});
  p.add_le({0.0, 1.0}, 1.0);  // x unconstrained above
  EXPECT_EQ(solve(p).status, Status::kUnbounded);
}

TEST(Simplex, InfeasibleByContradiction) {
  Problem p({1.0});
  p.add_le({1.0}, 1.0);
  p.add_ge({1.0}, 2.0);
  EXPECT_EQ(solve(p).status, Status::kInfeasible);
}

TEST(Simplex, EqualityConstraint) {
  // max x + y st x + y == 3, x <= 1  => obj 3 with x<=1.
  Problem p({1.0, 1.0});
  p.add_eq({1.0, 1.0}, 3.0);
  p.add_le({1.0, 0.0}, 1.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, kTol);
  EXPECT_LE(s.x[0], 1.0 + kTol);
}

TEST(Simplex, GreaterEqualConstraint) {
  // max -x st x >= 2  (i.e. minimize x) => x=2.
  Problem p({-1.0});
  p.add_ge({1.0}, 2.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[0], 2.0, kTol);
  EXPECT_NEAR(s.objective, -2.0, kTol);
}

TEST(Simplex, NegativeRhsNormalization) {
  // x - y <= -1 with x,y >= 0: feasible (y >= x + 1); max x + y bounded by
  // y <= 4.
  Problem p({1.0, 1.0});
  p.add_le({1.0, -1.0}, -1.0);
  p.add_le({0.0, 1.0}, 4.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 7.0, kTol);  // x=3, y=4
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex.
  Problem p({1.0, 1.0});
  p.add_le({1.0, 0.0}, 1.0);
  p.add_le({1.0, 0.0}, 1.0);
  p.add_le({0.0, 1.0}, 1.0);
  p.add_le({1.0, 1.0}, 2.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, kTol);
}

TEST(Simplex, RedundantEqualityRows) {
  Problem p({1.0});
  p.add_eq({1.0}, 2.0);
  p.add_eq({1.0}, 2.0);  // duplicate row; phase 1 must drop one
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[0], 2.0, kTol);
}

TEST(Simplex, ZeroObjective) {
  Problem p({0.0, 0.0});
  p.add_le({1.0, 1.0}, 1.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 0.0, kTol);
}

TEST(Simplex, RejectsBadConstraintWidth) {
  Problem p({1.0, 2.0});
  EXPECT_THROW(p.add_le({1.0}, 1.0), InvalidArgument);
}

TEST(Simplex, UpperAndLowerBoundHelpers) {
  Problem p({1.0, -1.0});
  p.add_upper_bound(0, 7.0);
  p.add_lower_bound(1, 3.0);
  p.add_upper_bound(1, 10.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[0], 7.0, kTol);
  EXPECT_NEAR(s.x[1], 3.0, kTol);
}

TEST(Simplex, PackingShapeProblem) {
  // The TWCA packing LP shape: max sum(x) with 0/1 rows.
  Problem p({1.0, 1.0, 1.0});
  p.add_le({1.0, 0.0, 1.0}, 3.0);
  p.add_le({0.0, 1.0, 1.0}, 2.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, kTol);  // x0=3, x1=2, x2=0
}

// ---------------------------------------------------------------------------
// Brute-force cross-check on random 2- and 3-variable LPs.
// ---------------------------------------------------------------------------

/// Solves Ax = b for small dense systems with partial pivoting; returns
/// false when singular.
bool solve_linear(std::vector<std::vector<double>> a, std::vector<double> b,
                  std::vector<double>& x) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[piv][col])) piv = r;
    }
    if (std::abs(a[piv][col]) < 1e-9) return false;
    std::swap(a[piv], a[col]);
    std::swap(b[piv], b[col]);
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  x.resize(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[i] / a[i][i];
  return true;
}

/// Exhaustive vertex enumeration for  max cᵀx, Ax <= b, x >= 0  (all-≤
/// form): tries every choice of n active constraints (including x_j = 0
/// walls), keeps the best feasible vertex.  Returns -infinity when
/// infeasible or when no vertex exists.
double brute_force_lp(const std::vector<double>& c, const std::vector<std::vector<double>>& rows,
                      const std::vector<double>& rhs) {
  const std::size_t n = c.size();
  const std::size_t m = rows.size();
  // Build the full constraint list: rows plus coordinate walls.
  std::vector<std::vector<double>> all = rows;
  std::vector<double> all_rhs = rhs;
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<double> wall(n, 0.0);
    wall[j] = -1.0;  // -x_j <= 0
    all.push_back(wall);
    all_rhs.push_back(0.0);
  }
  double best = -std::numeric_limits<double>::infinity();
  std::vector<std::size_t> idx(all.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;

  // Enumerate all n-subsets of constraints (n <= 3, sizes tiny).
  std::vector<std::size_t> pick(n);
  const auto feasible = [&](const std::vector<double>& x) {
    for (std::size_t r = 0; r < m; ++r) {
      double lhs = 0;
      for (std::size_t j = 0; j < n; ++j) lhs += rows[r][j] * x[j];
      if (lhs > rhs[r] + 1e-6) return false;
    }
    for (double v : x) {
      if (v < -1e-6) return false;
    }
    return true;
  };
  const auto consider = [&](const std::vector<std::size_t>& subset) {
    std::vector<std::vector<double>> a;
    std::vector<double> b;
    for (std::size_t i : subset) {
      a.push_back(all[i]);
      b.push_back(all_rhs[i]);
    }
    std::vector<double> x;
    if (!solve_linear(a, b, x)) return;
    if (!feasible(x)) return;
    double obj = 0;
    for (std::size_t j = 0; j < n; ++j) obj += c[j] * x[j];
    best = std::max(best, obj);
  };
  // Recursive n-subset enumeration.
  const std::function<void(std::size_t, std::size_t)> rec = [&](std::size_t start,
                                                                std::size_t depth) {
    if (depth == n) {
      consider(pick);
      return;
    }
    for (std::size_t i = start; i < all.size(); ++i) {
      pick[depth] = i;
      rec(i + 1, depth + 1);
    }
  };
  rec(0, 0);
  return best;
}

class SimplexRandomCross : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomCross, MatchesVertexEnumeration) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_int_distribution<int> coeff(0, 9);
  std::uniform_int_distribution<int> dims(2, 3);
  std::uniform_int_distribution<int> rows_dist(2, 5);

  const std::size_t n = static_cast<std::size_t>(dims(rng));
  const std::size_t m = static_cast<std::size_t>(rows_dist(rng));
  std::vector<double> c(n);
  for (double& v : c) v = coeff(rng);
  std::vector<std::vector<double>> rows(m, std::vector<double>(n));
  std::vector<double> rhs(m);
  bool bounded_guard = false;
  for (std::size_t r = 0; r < m; ++r) {
    bool nonzero = false;
    for (std::size_t j = 0; j < n; ++j) {
      rows[r][j] = coeff(rng);
      nonzero = nonzero || rows[r][j] > 0;
    }
    rhs[r] = 1 + coeff(rng);
    bounded_guard = bounded_guard || nonzero;
  }
  // Ensure boundedness: cap the simplex sum.
  rows.push_back(std::vector<double>(n, 1.0));
  rhs.push_back(20.0);

  Problem p(c);
  for (std::size_t r = 0; r < rows.size(); ++r) p.add_le(rows[r], rhs[r]);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);

  const double expected = brute_force_lp(c, rows, rhs);
  EXPECT_NEAR(s.objective, expected, 1e-5) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomCross, ::testing::Range(0, 40));

}  // namespace
}  // namespace wharf::lp
