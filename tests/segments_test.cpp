// Unit tests for Definitions 2-8 (src/core/segments): deferred
// classification, segments, critical/header segments, active segments —
// validated against the paper's own Figure 1 examples plus wrap-around
// and edge cases the paper's definitions imply.

#include <gtest/gtest.h>

#include "core/case_studies.hpp"
#include "core/segments.hpp"
#include "util/expect.hpp"

namespace wharf {
namespace {

Chain make_chain(const std::string& name, std::vector<std::pair<Priority, Time>> tasks) {
  Chain::Spec spec;
  spec.name = name;
  spec.kind = ChainKind::kSynchronous;
  spec.arrival = periodic(1000);
  int i = 0;
  for (auto [prio, wcet] : tasks) {
    spec.tasks.push_back(Task{name + "_t" + std::to_string(i++), prio, wcet});
  }
  return Chain(std::move(spec));
}

std::vector<std::vector<int>> task_lists(const std::vector<Segment>& segments) {
  std::vector<std::vector<int>> out;
  for (const Segment& s : segments) out.push_back(s.tasks);
  return out;
}

std::vector<std::vector<int>> task_lists(const std::vector<ActiveSegment>& segments) {
  std::vector<std::vector<int>> out;
  for (const ActiveSegment& s : segments) out.push_back(s.tasks);
  return out;
}

// ---------------------------------------------------------------------------
// Paper Figure 1 examples
// ---------------------------------------------------------------------------

class Figure1 : public ::testing::Test {
 protected:
  System system = case_studies::figure1_system();
  const Chain& a = system.chain(case_studies::kFig1SigmaA);
  const Chain& b = system.chain(case_studies::kFig1SigmaB);
};

TEST_F(Figure1, SigmaAIsDeferredBySigmaB) {
  // tau4_a (prio 2) and tau6_a (prio 1) are below sigma_b's min prio 3.
  EXPECT_TRUE(is_deferred(a, b));
}

TEST_F(Figure1, SigmaBIsDeferredBySigmaA) {
  // tau2_b (prio 3) is below ... sigma_a's min prio is 1, so no task of b
  // is strictly below it: b arbitrarily interferes with a.
  EXPECT_FALSE(is_deferred(b, a));
}

TEST_F(Figure1, SegmentsMatchPaperExample) {
  // Paper: "Chain sigma_a in Figure 1 has 2 segments w.r.t. chain
  // sigma_b: (tau1,tau2,tau3) and (tau5)."
  const auto segs = segments_wrt(a, b);
  EXPECT_EQ(task_lists(segs), (std::vector<std::vector<int>>{{0, 1, 2}, {4}}));
  EXPECT_FALSE(segs[0].wraps);
  EXPECT_FALSE(segs[1].wraps);
  EXPECT_EQ(segs[0].cost, 3);  // WCET 1 each in the built-in system
  EXPECT_EQ(segs[1].cost, 1);
}

TEST_F(Figure1, CriticalSegmentIsLargest) {
  const auto crit = critical_segment(a, b);
  ASSERT_TRUE(crit.has_value());
  EXPECT_EQ(crit->tasks, (std::vector<int>{0, 1, 2}));
}

TEST_F(Figure1, ActiveSegmentsMatchPaperExample) {
  // Paper: "chain sigma_a has three active segments: (tau1,tau2), (tau3),
  // (tau5)" — split at tau3 because prio(tau3)=5 < prio(tail of b)=6.
  const auto active = active_segments_wrt(a, b);
  EXPECT_EQ(task_lists(active), (std::vector<std::vector<int>>{{0, 1}, {2}, {4}}));
  // The first two belong to the same segment, the last to another.
  EXPECT_EQ(active[0].segment_index, active[1].segment_index);
  EXPECT_NE(active[0].segment_index, active[2].segment_index);
}

TEST_F(Figure1, HeaderSubchainOfSigmaA) {
  // Lowest-priority task of sigma_a is tau6_a (index 5): header = 0..4.
  EXPECT_EQ(header_subchain(a), (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(Figure1, HeaderSegmentWrtSigmaB) {
  // First task of a below b's min priority (3) is tau4_a (index 3).
  EXPECT_EQ(header_segment_wrt(a, b), (std::vector<int>{0, 1, 2}));
}

TEST_F(Figure1, HeaderSegmentRequiresDeferred) {
  EXPECT_THROW(header_segment_wrt(b, a), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Case study (Figure 4) in-text statements
// ---------------------------------------------------------------------------

class Figure4 : public ::testing::Test {
 protected:
  System system = case_studies::date17_case_study();
  const Chain& d = system.chain(case_studies::kSigmaD);
  const Chain& c = system.chain(case_studies::kSigmaC);
  const Chain& b = system.chain(case_studies::kSigmaB);
  const Chain& a = system.chain(case_studies::kSigmaA);
};

TEST_F(Figure4, OverloadChainsArbitrarilyInterfereWithSigmaC) {
  // Paper: "Both chains sigma_a and sigma_b arbitrarily interfere with
  // sigma_c because neither has a task with a priority lower than 1."
  EXPECT_FALSE(is_deferred(a, c));
  EXPECT_FALSE(is_deferred(b, c));
  EXPECT_FALSE(is_deferred(d, c));
}

TEST_F(Figure4, OverloadChainsHaveOneSegmentWrtSigmaC) {
  const auto segs_a = segments_wrt(a, c);
  ASSERT_EQ(segs_a.size(), 1u);
  EXPECT_EQ(segs_a[0].tasks, (std::vector<int>{0, 1}));
  EXPECT_EQ(segs_a[0].cost, 20);

  const auto segs_b = segments_wrt(b, c);
  ASSERT_EQ(segs_b.size(), 1u);
  EXPECT_EQ(segs_b[0].tasks, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(segs_b[0].cost, 30);
}

TEST_F(Figure4, OverloadSegmentsAreActiveSegmentsWrtSigmaC) {
  // Paper: "These two segments are also active segments because the
  // priority of the tail task of chain sigma_c is lower than all
  // priorities in these segments."
  const auto active_a = active_segments_wrt(a, c);
  ASSERT_EQ(active_a.size(), 1u);
  EXPECT_EQ(active_a[0].tasks, (std::vector<int>{0, 1}));
  EXPECT_EQ(active_a[0].cost, 20);

  const auto active_b = active_segments_wrt(b, c);
  ASSERT_EQ(active_b.size(), 1u);
  EXPECT_EQ(active_b[0].cost, 30);
}

TEST_F(Figure4, SigmaCDeferredBySigmaD) {
  // tau3_c has priority 1 < min priority 2 of sigma_d.
  EXPECT_TRUE(is_deferred(c, d));
  const auto segs = segments_wrt(c, d);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].tasks, (std::vector<int>{0, 1}));
  EXPECT_EQ(segs[0].cost, 10);
  const auto crit = critical_segment(c, d);
  ASSERT_TRUE(crit.has_value());
  EXPECT_EQ(crit->cost, 10);
}

TEST_F(Figure4, SigmaDNotDeferredBySigmaCButViceVersa) {
  EXPECT_FALSE(is_deferred(d, c));  // min prio of c is 1; no d-task below 1
  EXPECT_TRUE(is_deferred(c, d));
}

// ---------------------------------------------------------------------------
// Wrap-around (modulo) semantics of Def. 3
// ---------------------------------------------------------------------------

TEST(Segments, WrapAroundSegment) {
  // Qualify pattern [1,1,0,1] w.r.t. min prio 2: runs {0,1} and {3} merge
  // into the wrapping segment (3,0,1).
  const Chain a = make_chain("a", {{10, 5}, {9, 7}, {1, 3}, {8, 11}});
  const Chain b = make_chain("b", {{2, 1}, {3, 1}});
  ASSERT_TRUE(is_deferred(a, b));
  const auto segs = segments_wrt(a, b);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_TRUE(segs[0].wraps);
  EXPECT_EQ(segs[0].tasks, (std::vector<int>{3, 0, 1}));
  EXPECT_EQ(segs[0].cost, 23);
}

TEST(Segments, WrapAroundWithMiddleRun) {
  // Pattern [1,0,1,0,1]: runs {0},{2},{4}; 4 wraps onto 0 -> segments
  // (2) and (4,0).
  const Chain a = make_chain("a", {{10, 1}, {1, 1}, {9, 2}, {2, 1}, {8, 4}});
  const Chain b = make_chain("b", {{3, 1}, {4, 1}});
  const auto segs = segments_wrt(a, b);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].tasks, (std::vector<int>{2}));
  EXPECT_FALSE(segs[0].wraps);
  EXPECT_EQ(segs[1].tasks, (std::vector<int>{4, 0}));
  EXPECT_TRUE(segs[1].wraps);
  EXPECT_EQ(segs[1].cost, 5);
}

TEST(Segments, AllTasksQualifyIsSingleNonWrappingSegment) {
  const Chain a = make_chain("a", {{10, 1}, {9, 1}, {8, 1}});
  const Chain b = make_chain("b", {{1, 1}, {2, 1}});
  EXPECT_FALSE(is_deferred(a, b));
  const auto segs = segments_wrt(a, b);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].tasks, (std::vector<int>{0, 1, 2}));
  EXPECT_FALSE(segs[0].wraps);
}

TEST(Segments, NoTaskQualifiesMeansNoSegments) {
  const Chain a = make_chain("a", {{1, 1}, {2, 1}});
  const Chain b = make_chain("b", {{9, 1}, {10, 1}});
  EXPECT_TRUE(is_deferred(a, b));
  EXPECT_TRUE(segments_wrt(a, b).empty());
  EXPECT_FALSE(critical_segment(a, b).has_value());
  EXPECT_TRUE(active_segments_wrt(a, b).empty());
  EXPECT_TRUE(header_segment_wrt(a, b).empty());
}

TEST(Segments, WrappedSegmentSplitsIntoNonWrappingActiveSegments) {
  // Wrapping segment (3,0,1); all its tasks above tail prio of b -> the
  // two linear pieces (3) and (0,1) become active segments of the same
  // parent segment (footnote 3: active segments never wrap).
  const Chain a = make_chain("a", {{10, 5}, {9, 7}, {1, 3}, {8, 11}});
  const Chain b = make_chain("b", {{3, 1}, {2, 1}});  // tail prio 2
  const auto active = active_segments_wrt(a, b);
  ASSERT_EQ(active.size(), 2u);
  EXPECT_EQ(active[0].tasks, (std::vector<int>{3}));
  EXPECT_EQ(active[1].tasks, (std::vector<int>{0, 1}));
  EXPECT_EQ(active[0].segment_index, active[1].segment_index);
}

TEST(Segments, ActiveSegmentFirstTaskUnconstrained) {
  // Def. 8 constrains tasks after the first only: a segment whose every
  // task is below b's tail priority still yields one active segment per
  // task.
  const Chain a = make_chain("a", {{4, 2}, {5, 3}});
  const Chain b = make_chain("b", {{3, 1}, {9, 1}});  // tail prio 9, min 3
  const auto segs = segments_wrt(a, b);
  ASSERT_EQ(segs.size(), 1u);  // both tasks above min prio 3
  const auto active = active_segments_wrt(a, b);
  ASSERT_EQ(active.size(), 2u);
  EXPECT_EQ(active[0].tasks, (std::vector<int>{0}));
  EXPECT_EQ(active[1].tasks, (std::vector<int>{1}));
}

TEST(Segments, CriticalSegmentTieBreaksFirst) {
  // Trailing non-qualifying task prevents a wrap, leaving two separate
  // cost-5 segments; ties resolve to the first.
  const Chain a = make_chain("a", {{10, 5}, {1, 1}, {9, 5}, {3, 1}});
  const Chain b = make_chain("b", {{4, 1}, {5, 1}});
  const auto segs = segments_wrt(a, b);
  ASSERT_EQ(segs.size(), 2u);
  const auto crit = critical_segment(a, b);
  ASSERT_TRUE(crit.has_value());
  EXPECT_EQ(crit->tasks, (std::vector<int>{0}));  // first of the two cost-5 segments
}

TEST(Segments, TailQualifyingRunWrapsOntoHead) {
  // Pattern [1,0,1] wraps: the runs {0} and {2} merge into segment (2,0);
  // this is the modulo-n_a reading of Def. 3.
  const Chain a = make_chain("a", {{10, 5}, {1, 1}, {9, 5}});
  const Chain b = make_chain("b", {{2, 1}, {3, 1}});
  const auto segs = segments_wrt(a, b);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_TRUE(segs[0].wraps);
  EXPECT_EQ(segs[0].tasks, (std::vector<int>{2, 0}));
  EXPECT_EQ(segs[0].cost, 10);
}

TEST(Segments, HeaderSubchainEmptyWhenHeaderIsLowest) {
  const Chain a = make_chain("a", {{1, 1}, {5, 1}, {9, 1}});
  EXPECT_TRUE(header_subchain(a).empty());
}

TEST(Segments, HeaderSubchainFullPrefix) {
  const Chain a = make_chain("a", {{9, 1}, {5, 1}, {1, 1}});
  EXPECT_EQ(header_subchain(a), (std::vector<int>{0, 1}));
}

TEST(Segments, SingleTaskChain) {
  const Chain a = make_chain("a", {{5, 7}});
  const Chain b = make_chain("b", {{3, 1}});
  EXPECT_FALSE(is_deferred(a, b));
  const auto segs = segments_wrt(a, b);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].cost, 7);
  EXPECT_TRUE(header_subchain(a).empty());
}

TEST(Segments, CostOfAndFormat) {
  const Chain a = make_chain("a", {{5, 7}, {6, 3}});
  EXPECT_EQ(cost_of(a, {0, 1}), 10);
  EXPECT_EQ(cost_of(a, {}), 0);
  EXPECT_EQ(format_task_list(a, {0, 1}), "(a_t0,a_t1)");
}

}  // namespace
}  // namespace wharf
