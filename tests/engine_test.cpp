// Tests for the wharf::Engine request/response facade: query dispatch,
// the non-throwing Status channel, batched parallel execution (results
// must be bit-identical to sequential), and the per-system artifact
// cache with its hit/miss diagnostics.

#include <gtest/gtest.h>

#include <random>

#include "core/case_studies.hpp"
#include "engine/engine.hpp"
#include "gen/random_systems.hpp"

namespace wharf {
namespace {

using case_studies::date17_case_study;
using case_studies::kSigmaC;
using case_studies::kSigmaD;
using case_studies::OverloadModel;

System case_study() { return date17_case_study(OverloadModel::kRareOverload); }

TEST(Engine, StandardRequestAnswersEveryQuery) {
  Engine engine;
  const AnalysisRequest request = AnalysisRequest::standard(case_study(), {3, 76, 250});
  const AnalysisReport report = engine.run(request);

  EXPECT_EQ(report.system, "date17_case_study");
  ASSERT_EQ(report.results.size(), request.queries.size());
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.worst_status().is_ok());
  EXPECT_EQ(report.diagnostics.queries_failed, 0u);

  // sigma_d and sigma_c each get latency (2x) + dmm: 6 queries total.
  ASSERT_EQ(report.results.size(), 6u);
  const auto& dmm_c = std::get<DmmAnswer>(report.results[5].answer);
  EXPECT_EQ(dmm_c.chain, "sigma_c");
  ASSERT_EQ(dmm_c.curve.size(), 3u);
  EXPECT_EQ(dmm_c.curve[0].dmm, 3);   // Table II: dmm_c(3) = 3
  EXPECT_EQ(dmm_c.curve[1].dmm, 4);   // dmm_c(76) = 4
  EXPECT_EQ(dmm_c.curve[2].dmm, 5);   // dmm_c(250) = 5

  const auto& lat_d = std::get<LatencyAnswer>(report.results[0].answer);
  EXPECT_EQ(lat_d.chain, "sigma_d");
  EXPECT_FALSE(lat_d.without_overload);
  EXPECT_EQ(lat_d.result.wcl, 175);  // Table I
}

TEST(Engine, UnknownChainYieldsNotFoundNotThrow) {
  Engine engine;
  const AnalysisReport report =
      engine.run(AnalysisRequest{case_study(), {}, {DmmQuery{"sigma_zz", {10}}}});
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_FALSE(report.results[0].ok());
  EXPECT_EQ(report.results[0].status.code(), StatusCode::kNotFound);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.diagnostics.queries_failed, 1u);
  EXPECT_EQ(report.worst_status().code(), StatusCode::kNotFound);
}

TEST(Engine, OverloadDmmTargetYieldsInvalidArgument) {
  Engine engine;
  const AnalysisReport report =
      engine.run(AnalysisRequest{case_study(), {}, {DmmQuery{"sigma_a", {10}}}});
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_EQ(report.results[0].status.code(), StatusCode::kInvalidArgument);
}

TEST(Engine, MixedFailuresDoNotPoisonTheBatch) {
  Engine engine;
  const AnalysisReport report = engine.run(AnalysisRequest{
      case_study(),
      {},
      {DmmQuery{"sigma_c", {10}}, DmmQuery{"nope", {10}}, LatencyQuery{"sigma_d", false}}});
  ASSERT_EQ(report.results.size(), 3u);
  EXPECT_TRUE(report.results[0].ok());
  EXPECT_EQ(report.results[1].status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(report.results[2].ok());
  EXPECT_EQ(report.diagnostics.queries_failed, 1u);
}

TEST(Engine, WeaklyHardQueryMatchesAnalyzer) {
  Engine engine;
  const AnalysisReport report = engine.run(AnalysisRequest{
      case_study(), {}, {WeaklyHardQuery{"sigma_c", 3, 10}, WeaklyHardQuery{"sigma_c", 2, 10}}});
  const auto& ok3 = std::get<WeaklyHardAnswer>(report.results[0].answer);
  const auto& bad2 = std::get<WeaklyHardAnswer>(report.results[1].answer);
  const TwcaAnalyzer analyzer{case_study()};
  EXPECT_EQ(ok3.satisfied, analyzer.satisfies_weakly_hard(kSigmaC, 3, 10));
  EXPECT_EQ(bad2.satisfied, analyzer.satisfies_weakly_hard(kSigmaC, 2, 10));
  EXPECT_EQ(ok3.dmm, analyzer.dmm(kSigmaC, 10).dmm);
}

TEST(Engine, SimulationCrossValidationFindsNoViolations) {
  Engine engine;
  SimulationQuery query;
  query.horizon = 50'000;
  const AnalysisReport report = engine.run(AnalysisRequest{case_study(), {}, {query}});
  ASSERT_TRUE(report.results[0].ok()) << report.results[0].status.to_string();
  const auto& answer = std::get<SimulationAnswer>(report.results[0].answer);
  EXPECT_TRUE(answer.validated);
  EXPECT_TRUE(answer.violations.empty());
  ASSERT_EQ(answer.chains.size(), 4u);
  EXPECT_GT(answer.chains[static_cast<std::size_t>(kSigmaC)].completed, 0);
}

TEST(Engine, PrioritySearchRandomUsesExactBudget) {
  Engine engine;
  PrioritySearchQuery query;
  query.strategy = PrioritySearchQuery::Strategy::kRandom;
  query.budget = 25;
  query.seed = 7;
  const AnalysisReport report = engine.run(AnalysisRequest{case_study(), {}, {query}});
  ASSERT_TRUE(report.results[0].ok()) << report.results[0].status.to_string();
  const auto& answer = std::get<SearchAnswer>(report.results[0].answer);
  EXPECT_EQ(answer.result.evaluations, 25);
  EXPECT_LE(answer.result.best_objective, answer.nominal);
}

TEST(Engine, RepeatedRequestHitsArtifactCache) {
  Engine engine;
  const AnalysisRequest request = AnalysisRequest::standard(case_study());

  const AnalysisReport first = engine.run(request);
  EXPECT_FALSE(first.diagnostics.cache_hit);
  EXPECT_EQ(first.diagnostics.cache_hits, 0u);
  EXPECT_EQ(first.diagnostics.cache_misses, 1u);

  const AnalysisReport second = engine.run(request);
  EXPECT_TRUE(second.diagnostics.cache_hit);
  EXPECT_EQ(second.diagnostics.cache_hits, 1u);
  EXPECT_EQ(second.diagnostics.cache_misses, 0u);
  EXPECT_EQ(second.diagnostics.system_hash, first.diagnostics.system_hash);

  const Engine::CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);

  // Apart from the cache diagnostics the reports are identical.
  ASSERT_EQ(first.results.size(), second.results.size());
  AnalysisReport first_copy = first;
  first_copy.diagnostics = second.diagnostics;
  EXPECT_EQ(to_json(first_copy), to_json(second));
}

TEST(Engine, DifferentOptionsMissTheCache) {
  Engine engine;
  AnalysisRequest request{case_study(), {}, {DmmQuery{"sigma_c", {10}}}};
  (void)engine.run(request);
  request.options.criterion = SchedulabilityCriterion::kExactEq3;
  const AnalysisReport other = engine.run(request);
  EXPECT_FALSE(other.diagnostics.cache_hit);
  EXPECT_EQ(engine.cache_stats().misses, 2u);
}

TEST(Engine, LruEvictionAtCapacity) {
  Engine engine{EngineOptions{1, /*cache_capacity=*/1}};
  const AnalysisRequest a{case_study(), {}, {LatencyQuery{"sigma_c", false}}};
  const AnalysisRequest b{date17_case_study(OverloadModel::kLiteralSporadic),
                          {},
                          {LatencyQuery{"sigma_c", false}}};
  (void)engine.run(a);
  (void)engine.run(b);          // evicts a
  const AnalysisReport again = engine.run(a);
  EXPECT_FALSE(again.diagnostics.cache_hit);
  EXPECT_GE(engine.cache_stats().evictions, 1u);
  EXPECT_EQ(engine.cache_stats().entries, 1u);
}

/// The acceptance workload: Fig. 5-style random priority assignments of
/// the case study, one request per sampled system, run as one batch.
std::vector<AnalysisRequest> fig5_workload(int samples, std::uint64_t seed) {
  const System base = case_study();
  std::mt19937_64 rng(seed);
  std::vector<AnalysisRequest> requests;
  requests.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    System sys = gen::with_random_priorities(base, rng);
    requests.push_back(AnalysisRequest{
        std::move(sys),
        {},
        {DmmQuery{"sigma_c", {10}}, DmmQuery{"sigma_d", {10}},
         LatencyQuery{"sigma_c", false}, LatencyQuery{"sigma_d", true}}});
  }
  return requests;
}

TEST(Engine, BatchParallelReportsBitIdenticalToSequential) {
  const std::vector<AnalysisRequest> requests = fig5_workload(24, 42);

  Engine sequential{EngineOptions{1, 256}};
  Engine parallel{EngineOptions{4, 256}};
  const std::vector<AnalysisReport> seq = sequential.run_batch(requests);
  const std::vector<AnalysisReport> par = parallel.run_batch(requests);

  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(to_json(seq[i]), to_json(par[i])) << "report " << i << " diverged";
  }
}

TEST(Engine, BatchSharesCacheAcrossIdenticalSystems) {
  Engine engine{EngineOptions{3, 256}};
  const AnalysisRequest request{case_study(), {}, {DmmQuery{"sigma_c", {10}}}};
  const std::vector<AnalysisReport> reports = engine.run_batch({request, request, request});
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_FALSE(reports[0].diagnostics.cache_hit);
  EXPECT_TRUE(reports[1].diagnostics.cache_hit);
  EXPECT_TRUE(reports[2].diagnostics.cache_hit);
  // All three share one entry, so the answers agree exactly.
  EXPECT_EQ(to_json(reports[1]), to_json(reports[2]));
}

TEST(Engine, JsonReportCarriesStatusAndDiagnostics) {
  Engine engine;
  const AnalysisReport report =
      engine.run(AnalysisRequest{case_study(), {}, {DmmQuery{"sigma_c", {3}}}});
  const std::string json = to_json(report);
  EXPECT_NE(json.find("\"system\":\"date17_case_study\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"dmm\":3"), std::string::npos);
  EXPECT_NE(json.find("\"cache_misses\":1"), std::string::npos);
  EXPECT_NE(json.find("\"system_hash\""), std::string::npos);
}

}  // namespace
}  // namespace wharf
