// Tests for the wharf::Engine request/response facade: query dispatch,
// the non-throwing Status channel, batched parallel execution (results
// must be bit-identical to sequential), path queries, and the staged
// ArtifactStore with its per-stage hit/miss diagnostics — in particular
// that mutating one chain invalidates only the affected target's
// artifacts (incremental re-analysis).

#include <gtest/gtest.h>

#include <random>

#include "core/case_studies.hpp"
#include "core/path_analysis.hpp"
#include "engine/engine.hpp"
#include "gen/random_systems.hpp"
#include "io/system_format.hpp"

namespace wharf {
namespace {

using case_studies::date17_case_study;
using case_studies::kSigmaC;
using case_studies::kSigmaD;
using case_studies::OverloadModel;

System case_study() { return date17_case_study(OverloadModel::kRareOverload); }

constexpr std::size_t kBusyWindowStage =
    static_cast<std::size_t>(static_cast<int>(ArtifactStage::kBusyWindow));
constexpr std::size_t kOverloadStage =
    static_cast<std::size_t>(static_cast<int>(ArtifactStage::kOverload));

std::size_t total_lookups(const ReportDiagnostics& d) {
  std::size_t n = 0;
  for (const StageDiagnostics& s : d.stages) n += s.lookups;
  return n;
}

/// Serializes only the query results (diagnostics stripped) so reports
/// can be compared for bit-identical *answers*.
std::string results_json(const AnalysisReport& report) {
  AnalysisReport stripped = report;
  stripped.diagnostics = ReportDiagnostics{};
  return to_json(stripped);
}

TEST(Engine, StandardRequestAnswersEveryQuery) {
  Engine engine;
  const AnalysisRequest request = AnalysisRequest::standard(case_study(), {3, 76, 250});
  const AnalysisReport report = engine.run(request);

  EXPECT_EQ(report.system, "date17_case_study");
  ASSERT_EQ(report.results.size(), request.queries.size());
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.worst_status().is_ok());
  EXPECT_EQ(report.diagnostics.queries_failed, 0u);

  // sigma_d and sigma_c each get latency (2x) + dmm: 6 queries total.
  ASSERT_EQ(report.results.size(), 6u);
  const auto& dmm_c = std::get<DmmAnswer>(report.results[5].answer);
  EXPECT_EQ(dmm_c.chain, "sigma_c");
  ASSERT_EQ(dmm_c.curve.size(), 3u);
  EXPECT_EQ(dmm_c.curve[0].dmm, 3);   // Table II: dmm_c(3) = 3
  EXPECT_EQ(dmm_c.curve[1].dmm, 4);   // dmm_c(76) = 4
  EXPECT_EQ(dmm_c.curve[2].dmm, 5);   // dmm_c(250) = 5

  const auto& lat_d = std::get<LatencyAnswer>(report.results[0].answer);
  EXPECT_EQ(lat_d.chain, "sigma_d");
  EXPECT_FALSE(lat_d.without_overload);
  EXPECT_EQ(lat_d.result.wcl, 175);  // Table I
}

TEST(Engine, UnknownChainYieldsNotFoundNotThrow) {
  Engine engine;
  const AnalysisReport report =
      engine.run(AnalysisRequest{case_study(), {}, {DmmQuery{"sigma_zz", {10}}}});
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_FALSE(report.results[0].ok());
  EXPECT_EQ(report.results[0].status.code(), StatusCode::kNotFound);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.diagnostics.queries_failed, 1u);
  EXPECT_EQ(report.worst_status().code(), StatusCode::kNotFound);
}

TEST(Engine, OverloadDmmTargetYieldsInvalidArgument) {
  Engine engine;
  const AnalysisReport report =
      engine.run(AnalysisRequest{case_study(), {}, {DmmQuery{"sigma_a", {10}}}});
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_EQ(report.results[0].status.code(), StatusCode::kInvalidArgument);
}

TEST(Engine, MixedFailuresDoNotPoisonTheBatch) {
  Engine engine;
  const AnalysisReport report = engine.run(AnalysisRequest{
      case_study(),
      {},
      {DmmQuery{"sigma_c", {10}}, DmmQuery{"nope", {10}}, LatencyQuery{"sigma_d", false}}});
  ASSERT_EQ(report.results.size(), 3u);
  EXPECT_TRUE(report.results[0].ok());
  EXPECT_EQ(report.results[1].status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(report.results[2].ok());
  EXPECT_EQ(report.diagnostics.queries_failed, 1u);
}

TEST(Engine, WeaklyHardQueryMatchesAnalyzer) {
  Engine engine;
  const AnalysisReport report = engine.run(AnalysisRequest{
      case_study(), {}, {WeaklyHardQuery{"sigma_c", 3, 10}, WeaklyHardQuery{"sigma_c", 2, 10}}});
  const auto& ok3 = std::get<WeaklyHardAnswer>(report.results[0].answer);
  const auto& bad2 = std::get<WeaklyHardAnswer>(report.results[1].answer);
  const TwcaAnalyzer analyzer{case_study()};
  EXPECT_EQ(ok3.satisfied, analyzer.satisfies_weakly_hard(kSigmaC, 3, 10));
  EXPECT_EQ(bad2.satisfied, analyzer.satisfies_weakly_hard(kSigmaC, 2, 10));
  EXPECT_EQ(ok3.dmm, analyzer.dmm(kSigmaC, 10).dmm);
}

TEST(Engine, SimulationCrossValidationFindsNoViolations) {
  Engine engine;
  SimulationQuery query;
  query.horizon = 50'000;
  const AnalysisReport report = engine.run(AnalysisRequest{case_study(), {}, {query}});
  ASSERT_TRUE(report.results[0].ok()) << report.results[0].status.to_string();
  const auto& answer = std::get<SimulationAnswer>(report.results[0].answer);
  EXPECT_TRUE(answer.validated);
  EXPECT_TRUE(answer.violations.empty());
  ASSERT_EQ(answer.chains.size(), 4u);
  EXPECT_GT(answer.chains[static_cast<std::size_t>(kSigmaC)].completed, 0);
}

TEST(Engine, PrioritySearchRandomUsesExactBudget) {
  Engine engine;
  PrioritySearchQuery query;
  query.strategy = PrioritySearchQuery::Strategy::kRandom;
  query.budget = 25;
  query.seed = 7;
  const AnalysisReport report = engine.run(AnalysisRequest{case_study(), {}, {query}});
  ASSERT_TRUE(report.results[0].ok()) << report.results[0].status.to_string();
  const auto& answer = std::get<SearchAnswer>(report.results[0].answer);
  EXPECT_EQ(answer.result.evaluations, 25);
  EXPECT_LE(answer.result.best_objective, answer.nominal);
}

TEST(Engine, RepeatedRequestHitsArtifactCache) {
  Engine engine;
  const AnalysisRequest request = AnalysisRequest::standard(case_study());

  const AnalysisReport first = engine.run(request);
  EXPECT_FALSE(first.diagnostics.cache_hit);
  EXPECT_EQ(first.diagnostics.cache_hits, 0u);
  EXPECT_GT(first.diagnostics.cache_misses, 0u);
  EXPECT_EQ(first.diagnostics.cache_misses, total_lookups(first.diagnostics));
  // Real store lookups, not a 0-or-1 flag: the standard request resolves
  // two busy-window artifacts (full + overload-free) per regular chain,
  // the case study has two regular chains, and serve() adds one batched
  // prime marker on top (Pipeline::prime_busy_windows).
  EXPECT_EQ(first.diagnostics.stages[kBusyWindowStage].lookups, 5u);
  EXPECT_GT(first.diagnostics.stages[kBusyWindowStage].bytes_inserted, 0u);

  const AnalysisReport second = engine.run(request);
  EXPECT_TRUE(second.diagnostics.cache_hit);
  EXPECT_EQ(second.diagnostics.cache_misses, 0u);
  EXPECT_EQ(second.diagnostics.cache_hits, total_lookups(second.diagnostics));
  // Warm runs may resolve *fewer* artifacts than cold ones: a dmm-curve
  // hit short-circuits the whole upstream pipeline for that query.
  EXPECT_GT(second.diagnostics.cache_hits, 0u);
  EXPECT_LE(second.diagnostics.cache_hits, first.diagnostics.cache_misses);
  EXPECT_EQ(second.diagnostics.system_hash, first.diagnostics.system_hash);

  const Engine::CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, second.diagnostics.cache_hits);
  EXPECT_EQ(stats.misses, first.diagnostics.cache_misses);
  EXPECT_GT(stats.entries, 0u);
  EXPECT_GT(stats.resident_bytes, 0u);

  // Apart from the cache diagnostics the reports are identical.
  ASSERT_EQ(first.results.size(), second.results.size());
  EXPECT_EQ(results_json(first), results_json(second));
}

TEST(Engine, DifferentOptionsShareUpstreamStages) {
  Engine engine;
  AnalysisRequest request{case_study(), {}, {DmmQuery{"sigma_c", {10}}}};
  (void)engine.run(request);
  request.options.criterion = SchedulabilityCriterion::kExactEq3;
  const AnalysisReport other = engine.run(request);
  // The criterion changes the overload/dmm artifacts, so the request is
  // not a pure hit ...
  EXPECT_FALSE(other.diagnostics.cache_hit);
  EXPECT_GT(other.diagnostics.stages[kOverloadStage].misses, 0u);
  // ... but the upstream busy-window artifacts do not read the
  // criterion and are reused as-is (stage-granular invalidation).
  EXPECT_GT(other.diagnostics.stages[kBusyWindowStage].hits, 0u);
  EXPECT_EQ(other.diagnostics.stages[kBusyWindowStage].misses, 0u);
}

TEST(Engine, WeightBudgetBoundsResidencyViaEviction) {
  // A budget far below the request's artifact weight: the store must
  // keep resident bytes within it by evicting LRU artifacts (or
  // rejecting oversized ones), while answers stay correct.
  Engine small{EngineOptions{1, /*cache_bytes=*/2048, /*store_dir=*/""}};
  Engine unlimited{EngineOptions{1, /*cache_bytes=*/0, /*store_dir=*/""}};
  const AnalysisRequest request = AnalysisRequest::standard(case_study());

  const AnalysisReport constrained = small.run(request);
  const AnalysisReport reference = unlimited.run(request);
  EXPECT_EQ(results_json(constrained), results_json(reference));

  const ArtifactStore::Stats stats = small.store_stats();
  EXPECT_LE(stats.resident_bytes, 2048u);
  std::size_t churn = 0;
  for (const ArtifactStore::StageStats& s : stats.stage) churn += s.evictions + s.rejected;
  EXPECT_GT(churn, 0u);
  EXPECT_GT(unlimited.store_stats().resident_bytes, 2048u);
}

/// The acceptance workload: Fig. 5-style random priority assignments of
/// the case study, one request per sampled system, run as one batch.
std::vector<AnalysisRequest> fig5_workload(int samples, std::uint64_t seed) {
  const System base = case_study();
  std::mt19937_64 rng(seed);
  std::vector<AnalysisRequest> requests;
  requests.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    System sys = gen::with_random_priorities(base, rng);
    requests.push_back(AnalysisRequest{
        std::move(sys),
        {},
        {DmmQuery{"sigma_c", {10}}, DmmQuery{"sigma_d", {10}},
         LatencyQuery{"sigma_c", false}, LatencyQuery{"sigma_d", true}}});
  }
  return requests;
}

TEST(Engine, BatchParallelReportsBitIdenticalToSequential) {
  const std::vector<AnalysisRequest> requests = fig5_workload(24, 42);

  Engine sequential{EngineOptions{1, EngineOptions{}.cache_bytes, ""}};
  Engine parallel{EngineOptions{4, EngineOptions{}.cache_bytes, ""}};
  const std::vector<AnalysisReport> seq = sequential.run_batch(requests);
  const std::vector<AnalysisReport> par = parallel.run_batch(requests);

  // Answers are bit-identical for any jobs value.  (Cache telemetry
  // inside one parallel batch is demand-driven and may legitimately
  // differ when sibling requests race on shared artifacts.)
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(results_json(seq[i]), results_json(par[i])) << "report " << i << " diverged";
  }
}

TEST(Engine, BatchSharesCacheAcrossIdenticalSystems) {
  Engine engine{EngineOptions{3, EngineOptions{}.cache_bytes, ""}};
  const AnalysisRequest request{case_study(), {}, {DmmQuery{"sigma_c", {10}}}};
  const std::vector<AnalysisReport> reports = engine.run_batch({request, request, request});
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(results_json(reports[0]), results_json(reports[1]));
  EXPECT_EQ(results_json(reports[1]), results_json(reports[2]));
  // A later run sees everything the batch inserted.
  const AnalysisReport warm = engine.run(request);
  EXPECT_TRUE(warm.diagnostics.cache_hit);
  EXPECT_EQ(warm.diagnostics.cache_misses, 0u);
}

TEST(Engine, JsonReportCarriesStatusAndDiagnostics) {
  Engine engine;
  const AnalysisReport report =
      engine.run(AnalysisRequest{case_study(), {}, {DmmQuery{"sigma_c", {3}}}});
  const std::string json = to_json(report);
  EXPECT_NE(json.find("\"system\":\"date17_case_study\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"dmm\":3"), std::string::npos);
  EXPECT_NE(json.find("\"cache_hit\":false"), std::string::npos);
  EXPECT_NE(json.find("\"cache_misses\":"), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  EXPECT_NE(json.find("\"busy_window\""), std::string::npos);
  EXPECT_NE(json.find("\"ilp\""), std::string::npos);
  EXPECT_NE(json.find("\"system_hash\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Incremental invalidation (the acceptance workload): mutate one chain's
// priority in a >= 8 chain system and re-analyze warm — only the mutated
// target's artifacts may recompute.
// ---------------------------------------------------------------------------

/// Eight regular single-task chains (priorities 10, 20, ..., 80) plus a
/// high-priority sporadic overload chain.  Priorities are spaced so a
/// small per-chain tweak crosses no other chain's priority.
System sweep_system(Priority mutated_chain_priority) {
  std::vector<Chain> chains;
  for (int i = 1; i <= 8; ++i) {
    Chain::Spec spec;
    spec.name = "c" + std::to_string(i);
    spec.arrival = periodic(1000);
    spec.deadline = 900;
    const Priority priority = i == 4 ? mutated_chain_priority : 10 * i;
    spec.tasks = {Task{"t" + std::to_string(i), priority, 5}};
    chains.emplace_back(std::move(spec));
  }
  Chain::Spec overload;
  overload.name = "ov";
  overload.arrival = sporadic(50'000);
  overload.overload = true;
  overload.tasks = {Task{"t_ov", 100, 3}};
  chains.emplace_back(std::move(overload));
  return System("sweep", std::move(chains));
}

TEST(Engine, IncrementalInvalidationRecomputesOnlyAffectedTarget) {
  Engine engine;
  const AnalysisReport cold = engine.run(AnalysisRequest::standard(sweep_system(40)));
  ASSERT_TRUE(cold.ok()) << cold.worst_status().to_string();
  const StageDiagnostics cold_bw = cold.diagnostics.stages[kBusyWindowStage];
  // 8 targets x (full + overload-free) plus the serve-round batch marker.
  EXPECT_EQ(cold_bw.misses, 17u);
  EXPECT_EQ(cold_bw.hits, 0u);

  // Mutate one chain's priority (40 -> 45 crosses no other priority).
  const AnalysisReport warm = engine.run(AnalysisRequest::standard(sweep_system(45)));
  ASSERT_TRUE(warm.ok()) << warm.worst_status().to_string();
  const StageDiagnostics warm_bw = warm.diagnostics.stages[kBusyWindowStage];
  // Strictly fewer busy-window computations than cold: only the mutated
  // target's two variants recompute (plus the batch marker, whose key
  // embeds the mutated slice), every other target's slice is untouched
  // by the tweak.
  EXPECT_LT(warm_bw.misses, cold_bw.misses);
  EXPECT_EQ(warm_bw.misses, 3u);
  EXPECT_EQ(warm_bw.hits, 14u);

  // Reused bit-identically: the warm report equals a cold analysis of
  // the mutated system on a fresh engine, answer for answer.
  Engine fresh;
  const AnalysisReport reference = fresh.run(AnalysisRequest::standard(sweep_system(45)));
  EXPECT_EQ(results_json(warm), results_json(reference));
}

TEST(Engine, ReorderedChainsAreNeverServedStaleArtifacts) {
  // The same chains in two listing orders: cached artifacts embed
  // absolute chain indices, so a warm engine serving the reordered
  // system must not reuse index-bearing artifacts across the orders —
  // answers must match a cold analysis exactly.
  const auto build = [](bool reordered) {
    Chain::Spec u;
    u.name = "u";
    u.arrival = periodic(400);
    u.deadline = 400;
    u.tasks = {Task{"tu", 3, 10}};
    Chain::Spec v;
    v.name = "v";
    v.arrival = sporadic(5000);
    v.overload = true;
    v.tasks = {Task{"tv", 5, 20}};
    Chain::Spec t;
    t.name = "t";
    t.arrival = periodic(300);
    t.deadline = 300;
    t.tasks = {Task{"tt", 1, 30}};
    return reordered ? System{"sys", {Chain(t), Chain(u), Chain(v)}}
                     : System{"sys", {Chain(u), Chain(v), Chain(t)}};
  };
  Engine engine;
  (void)engine.run(AnalysisRequest::standard(build(false), {5, 10}));
  const AnalysisReport warm = engine.run(AnalysisRequest::standard(build(true), {5, 10}));
  Engine fresh;
  const AnalysisReport cold = fresh.run(AnalysisRequest::standard(build(true), {5, 10}));
  EXPECT_EQ(results_json(warm), results_json(cold));
}

TEST(Engine, IncrementalInvalidationAcrossCriterionKeepsBusyWindows) {
  Engine engine;
  (void)engine.run(AnalysisRequest::standard(sweep_system(40)));
  AnalysisRequest exact = AnalysisRequest::standard(sweep_system(40));
  exact.options.criterion = SchedulabilityCriterion::kExactEq3;
  const AnalysisReport report = engine.run(exact);
  EXPECT_EQ(report.diagnostics.stages[kBusyWindowStage].misses, 0u);
}

// ---------------------------------------------------------------------------
// Path queries as first-class engine queries
// ---------------------------------------------------------------------------

/// Two linked chains (the path_test fixture shape): c1 -> c2.
System linked_system() {
  const char* text =
      "system linked\n"
      "chain c1 kind=sync activation=periodic(300) deadline=300\n"
      "  task a1 prio=4 wcet=40\n"
      "  task a2 prio=3 wcet=30\n"
      "chain c2 kind=sync activation=periodic(300) deadline=300\n"
      "  task b1 prio=2 wcet=50\n"
      "  task b2 prio=1 wcet=60\n";
  return io::parse_system(text);
}

TEST(Engine, PathLatencyQueryMatchesPathAnalyzer) {
  Engine engine;
  const AnalysisReport report = engine.run(
      AnalysisRequest{linked_system(), {}, {PathLatencyQuery{{"c1", "c2"}}}});
  ASSERT_TRUE(report.results[0].ok()) << report.results[0].status.to_string();
  const auto& answer = std::get<PathLatencyAnswer>(report.results[0].answer);

  const PathAnalyzer analyzer{linked_system()};
  PathSpec spec;
  spec.chains = {0, 1};
  const PathLatencyResult expected = analyzer.latency(spec);
  EXPECT_EQ(answer.result.bounded, expected.bounded);
  EXPECT_EQ(answer.result.wcl, expected.wcl);
  EXPECT_EQ(answer.result.per_chain_wcl, expected.per_chain_wcl);
}

TEST(Engine, PathDmmQueryMatchesPathAnalyzer) {
  Engine engine;
  PathDmmQuery query;
  query.chains = {"c1", "c2"};
  query.deadline = 200;  // < WCL: misses possible
  query.ks = {5, 10};
  const AnalysisReport report = engine.run(AnalysisRequest{linked_system(), {}, {query}});
  ASSERT_TRUE(report.results[0].ok()) << report.results[0].status.to_string();
  const auto& answer = std::get<PathDmmAnswer>(report.results[0].answer);
  ASSERT_EQ(answer.curve.size(), 2u);

  const PathAnalyzer analyzer{linked_system()};
  PathSpec spec;
  spec.chains = {0, 1};
  spec.deadline = 200;
  for (std::size_t i = 0; i < answer.curve.size(); ++i) {
    const PathDmmResult expected = analyzer.dmm(spec, query.ks[i]);
    EXPECT_EQ(answer.curve[i].dmm, expected.dmm) << "k=" << query.ks[i];
    EXPECT_EQ(answer.curve[i].status, expected.status);
    EXPECT_EQ(answer.curve[i].budgets, expected.budgets);
    EXPECT_EQ(answer.curve[i].per_chain, expected.per_chain);
  }
}

TEST(Engine, PathQueryErrorsAreStatusNotThrow) {
  Engine engine;
  const AnalysisReport unknown = engine.run(
      AnalysisRequest{linked_system(), {}, {PathLatencyQuery{{"c1", "nope"}}}});
  EXPECT_EQ(unknown.results[0].status.code(), StatusCode::kNotFound);

  PathDmmQuery no_deadline;
  no_deadline.chains = {"c1", "c2"};
  const AnalysisReport missing = engine.run(
      AnalysisRequest{linked_system(), {}, {no_deadline}});
  EXPECT_EQ(missing.results[0].status.code(), StatusCode::kInvalidArgument);

  const AnalysisReport duplicate = engine.run(
      AnalysisRequest{linked_system(), {}, {PathLatencyQuery{{"c1", "c1"}}}});
  EXPECT_EQ(duplicate.results[0].status.code(), StatusCode::kInvalidArgument);
}

TEST(Engine, PathDmmKGridResolvesEachBudgetedArtifactOnce) {
  Engine engine;
  PathDmmQuery query;
  query.chains = {"c1", "c2"};
  query.deadline = 200;
  query.ks = {2, 3, 5, 8, 10};
  const AnalysisReport report = engine.run(AnalysisRequest{linked_system(), {}, {query}});
  ASSERT_TRUE(report.results[0].ok()) << report.results[0].status.to_string();
  // Budgets do not depend on k, so the five-point grid shares one
  // budgeted sub-pipeline per chain: the busy-window stage resolves the
  // plain and budgeted variants once each, not once per k.
  EXPECT_LE(report.diagnostics.stages[kBusyWindowStage].lookups, 4u);
}

TEST(Engine, PathQueriesShareArtifactsWithPlainQueries) {
  Engine engine;
  // Warm the per-chain latency artifacts through plain queries ...
  (void)engine.run(AnalysisRequest{
      linked_system(), {}, {LatencyQuery{"c1", false}, LatencyQuery{"c2", false}}});
  // ... then a path latency query must run entirely off the store.
  const AnalysisReport path = engine.run(
      AnalysisRequest{linked_system(), {}, {PathLatencyQuery{{"c1", "c2"}}}});
  EXPECT_TRUE(path.diagnostics.cache_hit);
  EXPECT_EQ(path.diagnostics.cache_misses, 0u);
}

// ---------------------------------------------------------------------------
// Work-stealing ILP split determinism through the engine
// ---------------------------------------------------------------------------

TEST(Engine, ParallelIlpSplitBitIdenticalToSequential) {
  // Two overload chains give the packing real decomposable structure;
  // the full standard request plus a dense dmm grid exercises the ILP
  // stage repeatedly.
  gen::RandomSystemSpec spec;
  spec.min_chains = 3;
  spec.max_chains = 4;
  spec.overload_chains = 2;
  spec.deadline_factor = 0.8;
  std::mt19937_64 rng(2024);

  for (int sample = 0; sample < 6; ++sample) {
    const System sys = gen::random_system(spec, rng);
    AnalysisRequest request = AnalysisRequest::standard(sys, {1, 5, 10, 20});
    Engine sequential{EngineOptions{1, EngineOptions{}.cache_bytes, ""}};
    Engine parallel{EngineOptions{4, EngineOptions{}.cache_bytes, ""}};
    const AnalysisReport seq = sequential.run(request);
    const AnalysisReport par = parallel.run(request);
    EXPECT_EQ(to_json(seq), to_json(par)) << "sample " << sample;
  }
}

}  // namespace
}  // namespace wharf
