// Unit tests for src/util: saturating arithmetic, error machinery,
// string helpers, content hashing, byte-weight traits and the
// work-stealing scheduler.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include "util/expect.hpp"
#include "util/hash.hpp"
#include "util/strings.hpp"
#include "util/types.hpp"
#include "util/weight.hpp"
#include "util/work_stealing.hpp"

namespace wharf {
namespace {

TEST(Types, SatAddBasics) {
  EXPECT_EQ(sat_add(2, 3), 5);
  EXPECT_EQ(sat_add(0, 0), 0);
  EXPECT_EQ(sat_add(kTimeInfinity, 1), kTimeInfinity);
  EXPECT_EQ(sat_add(1, kTimeInfinity), kTimeInfinity);
  EXPECT_EQ(sat_add(kTimeInfinity, kTimeInfinity), kTimeInfinity);
}

TEST(Types, SatAddClampsNearOverflow) {
  const Time huge = kTimeInfinity - 5;
  EXPECT_EQ(sat_add(huge, 10), kTimeInfinity);
  EXPECT_EQ(sat_add(huge, 5), kTimeInfinity);
  EXPECT_EQ(sat_add(huge, 4), kTimeInfinity - 1);
}

TEST(Types, SatMulBasics) {
  EXPECT_EQ(sat_mul(6, 7), 42);
  EXPECT_EQ(sat_mul(0, kTimeInfinity), 0);
  EXPECT_EQ(sat_mul(kTimeInfinity, 0), 0);
  EXPECT_EQ(sat_mul(kTimeInfinity, 2), kTimeInfinity);
  EXPECT_EQ(sat_mul(3, kTimeInfinity), kTimeInfinity);
}

TEST(Types, SatMulClampsNearOverflow) {
  const Time big = Time{1} << 62;
  EXPECT_EQ(sat_mul(big, 4), kTimeInfinity);
  EXPECT_EQ(sat_mul(big, 1), big);
}

TEST(Types, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_EQ(ceil_div(5, 5), 1);
  EXPECT_EQ(ceil_div(6, 5), 2);
  EXPECT_EQ(ceil_div(331, 200), 2);
  EXPECT_EQ(ceil_div(731, 700), 2);
}

TEST(Types, FloorDiv) {
  EXPECT_EQ(floor_div(0, 5), 0);
  EXPECT_EQ(floor_div(4, 5), 0);
  EXPECT_EQ(floor_div(5, 5), 1);
  EXPECT_EQ(floor_div(9, 5), 1);
}

TEST(Types, InfinityPredicate) {
  EXPECT_TRUE(is_infinite(kTimeInfinity));
  EXPECT_FALSE(is_infinite(kTimeInfinity - 1));
  EXPECT_FALSE(is_infinite(0));
}

TEST(Expect, ThrowsInvalidArgumentWithMessage) {
  try {
    WHARF_EXPECT(1 == 2, "one is not " << 2);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("one is not 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Expect, PassesSilently) {
  EXPECT_NO_THROW(WHARF_EXPECT(true, "never happens"));
  EXPECT_NO_THROW(WHARF_ASSERT(2 + 2 == 4));
}

TEST(Expect, AssertThrowsLogicError) {
  EXPECT_THROW(WHARF_ASSERT(false), std::logic_error);
}

TEST(Expect, ParseErrorCarriesLine) {
  const ParseError e("bad token", 42);
  EXPECT_EQ(e.line(), 42);
  EXPECT_NE(std::string(e.what()).find("line 42"), std::string::npos);
}

TEST(Strings, Trim) {
  EXPECT_EQ(util::trim("  abc  "), "abc");
  EXPECT_EQ(util::trim("abc"), "abc");
  EXPECT_EQ(util::trim("   "), "");
  EXPECT_EQ(util::trim(""), "");
  EXPECT_EQ(util::trim("\t a b \n"), "a b");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = util::split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitSingleField) {
  const auto parts = util::split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitWhitespaceDropsEmpty) {
  const auto parts = util::split_whitespace("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitWhitespaceEmptyInput) {
  EXPECT_TRUE(util::split_whitespace("").empty());
  EXPECT_TRUE(util::split_whitespace("   \t ").empty());
}

TEST(Strings, Join) {
  EXPECT_EQ(util::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(util::join({}, ", "), "");
  EXPECT_EQ(util::join({"x"}, ", "), "x");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(util::starts_with("periodic(200)", "periodic"));
  EXPECT_FALSE(util::starts_with("periodic", "periodic(200)"));
  EXPECT_TRUE(util::starts_with("abc", ""));
}

TEST(Strings, ParseInt64) {
  long long v = 0;
  EXPECT_TRUE(util::parse_int64("123", v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(util::parse_int64("-7", v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(util::parse_int64("", v));
  EXPECT_FALSE(util::parse_int64("12x", v));
  EXPECT_FALSE(util::parse_int64("x12", v));
  EXPECT_FALSE(util::parse_int64("99999999999999999999999", v));  // overflow
}

TEST(Strings, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(util::parse_double("1.5", v));
  EXPECT_DOUBLE_EQ(v, 1.5);
  EXPECT_TRUE(util::parse_double("-2", v));
  EXPECT_DOUBLE_EQ(v, -2.0);
  EXPECT_FALSE(util::parse_double("", v));
  EXPECT_FALSE(util::parse_double("1.5x", v));
}

TEST(Strings, Cat) {
  EXPECT_EQ(util::cat("a", 1, 'b', 2.5), "a1b2.5");
  EXPECT_EQ(util::cat(), "");
}

TEST(Hash, Fnv1a64KnownVectorsAndSensitivity) {
  // Reference digests of the FNV-1a test vectors.
  EXPECT_EQ(util::fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(util::fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(util::fnv1a64("busy|c1"), util::fnv1a64("busy|c2"));
}

TEST(Weight, HeapBytesShapes) {
  EXPECT_EQ(util::heap_bytes(42), 0u);
  std::string s = "hello";
  EXPECT_GE(util::heap_bytes(s), s.size());
  std::vector<Time> v(10);
  EXPECT_GE(util::heap_bytes(v), 10 * sizeof(Time));
  std::optional<std::string> none;
  EXPECT_EQ(util::heap_bytes(none), 0u);
  EXPECT_EQ(util::byte_weight(42), sizeof(int));
  EXPECT_GT(util::byte_weight(v), util::heap_bytes(v));
}

TEST(WorkStealing, DequeOwnerLifoThiefFifo) {
  util::WorkStealingDeque deque;
  deque.push(1);
  deque.push(2);
  deque.push(3);
  EXPECT_EQ(deque.size(), 3u);

  std::size_t task = 0;
  ASSERT_TRUE(deque.steal(task));  // thief takes the oldest
  EXPECT_EQ(task, 1u);
  ASSERT_TRUE(deque.pop(task));  // owner takes the newest
  EXPECT_EQ(task, 3u);
  ASSERT_TRUE(deque.pop(task));
  EXPECT_EQ(task, 2u);
  EXPECT_FALSE(deque.pop(task));
  EXPECT_FALSE(deque.steal(task));
}

TEST(WorkStealing, ForIndexRunsEveryIndexExactlyOnce) {
  for (const int jobs : {1, 2, 4, 0}) {
    constexpr std::size_t kN = 500;
    std::vector<std::atomic<int>> runs(kN);
    util::work_steal_for_index(kN, jobs, [&](std::size_t i) {
      runs[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(runs[i].load(), 1) << "index " << i << " jobs " << jobs;
    }
  }
}

TEST(WorkStealing, ForIndexHandlesEmptyAndSingle) {
  int calls = 0;
  util::work_steal_for_index(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  util::work_steal_for_index(1, 4, [&](std::size_t i) { calls += static_cast<int>(i) + 1; });
  EXPECT_EQ(calls, 1);
}

TEST(WorkStealing, SkewedTasksAllComplete) {
  // Wildly skewed task sizes (the ILP-subproblem shape): stealing must
  // still complete everything and the results must be deterministic.
  constexpr std::size_t kN = 64;
  std::vector<long long> results(kN, 0);
  util::work_steal_for_index(kN, 4, [&](std::size_t i) {
    long long acc = 0;
    const long long rounds = i % 8 == 0 ? 200'000 : 100;
    for (long long r = 0; r < rounds; ++r) acc += static_cast<long long>(i) + r;
    results[i] = acc;
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_NE(results[i], 0) << "index " << i;
  }
}

TEST(WorkStealing, FirstExceptionPropagates) {
  EXPECT_THROW(
      util::work_steal_for_index(100, 4,
                                 [&](std::size_t i) {
                                   if (i == 37) throw InvalidArgument("boom");
                                 }),
      InvalidArgument);
}

}  // namespace
}  // namespace wharf
