// Unit tests for the dmm-curve utilities (breakpoints, (m,k) frontier),
// anchored on the paper's Table II breakpoint structure.

#include <gtest/gtest.h>

#include "core/case_studies.hpp"
#include "core/dmm_curve.hpp"
#include "util/expect.hpp"

namespace wharf {
namespace {

using case_studies::date17_case_study;
using case_studies::kSigmaC;
using case_studies::kSigmaD;
using case_studies::OverloadModel;

class RareCurve : public ::testing::Test {
 protected:
  TwcaAnalyzer analyzer{date17_case_study(OverloadModel::kRareOverload)};
};

TEST_F(RareCurve, BreakpointsMatchTableII) {
  const auto bps = dmm_breakpoints(analyzer, kSigmaC, 300);
  // dmm(1)=1, dmm(2)=2, dmm(3)=3, then the paper's breakpoints at 76, 250.
  ASSERT_EQ(bps.size(), 5u);
  EXPECT_EQ(bps[0].k, 1);
  EXPECT_EQ(bps[0].dmm, 1);
  EXPECT_EQ(bps[1].k, 2);
  EXPECT_EQ(bps[1].dmm, 2);
  EXPECT_EQ(bps[2].k, 3);
  EXPECT_EQ(bps[2].dmm, 3);
  EXPECT_EQ(bps[3].k, 76);
  EXPECT_EQ(bps[3].dmm, 4);
  EXPECT_EQ(bps[4].k, 250);
  EXPECT_EQ(bps[4].dmm, 5);
}

TEST_F(RareCurve, BreakpointsExtendWithTailPeriod) {
  // Next steps come from delta_minus(5)=85000 and delta_minus(6)=120000:
  // (k-1)*200 + 331 > 85000  =>  k = 425;  > 120000  =>  k = 600.
  const auto bps = dmm_breakpoints(analyzer, kSigmaC, 700);
  ASSERT_GE(bps.size(), 7u);
  EXPECT_EQ(bps[5].k, 425);
  EXPECT_EQ(bps[5].dmm, 6);
  EXPECT_EQ(bps[6].k, 600);
  EXPECT_EQ(bps[6].dmm, 7);
}

TEST_F(RareCurve, BreakpointsConsistentWithPointQueries) {
  const auto bps = dmm_breakpoints(analyzer, kSigmaC, 300);
  for (std::size_t i = 0; i < bps.size(); ++i) {
    EXPECT_EQ(analyzer.dmm(kSigmaC, bps[i].k).dmm, bps[i].dmm);
    if (bps[i].k > 1) {
      EXPECT_LT(analyzer.dmm(kSigmaC, bps[i].k - 1).dmm, bps[i].dmm)
          << "k=" << bps[i].k << " must be the first k at this level";
    }
  }
}

TEST_F(RareCurve, ScheduableChainHasFlatZeroCurve) {
  const auto bps = dmm_breakpoints(analyzer, kSigmaD, 500);
  ASSERT_EQ(bps.size(), 1u);
  EXPECT_EQ(bps[0].k, 1);
  EXPECT_EQ(bps[0].dmm, 0);
}

TEST_F(RareCurve, FrontierMatchesBreakpoints) {
  // Largest window tolerating m misses: one less than the breakpoint to
  // m+1 (Table II: dmm jumps to 4 at k=76, to 5 at k=250).
  EXPECT_EQ(max_window_for_misses(analyzer, kSigmaC, 3, 1000), 75);
  EXPECT_EQ(max_window_for_misses(analyzer, kSigmaC, 4, 1000), 249);
  EXPECT_EQ(max_window_for_misses(analyzer, kSigmaC, 5, 1000), 424);
}

TEST_F(RareCurve, FrontierEdgeCases) {
  // m=0: sigma_c misses its very first activation in the worst case.
  EXPECT_EQ(max_window_for_misses(analyzer, kSigmaC, 0, 1000), 0);
  // Schedulable chain: the frontier is the full horizon.
  EXPECT_EQ(max_window_for_misses(analyzer, kSigmaD, 0, 1000), 1000);
  // Huge m: full horizon.
  EXPECT_EQ(max_window_for_misses(analyzer, kSigmaC, 1'000'000, 500), 500);
}

TEST_F(RareCurve, ArgumentValidation) {
  EXPECT_THROW((void)dmm_breakpoints(analyzer, kSigmaC, 0), InvalidArgument);
  EXPECT_THROW((void)max_window_for_misses(analyzer, kSigmaC, -1, 10), InvalidArgument);
  EXPECT_THROW((void)max_window_for_misses(analyzer, kSigmaC, 0, 0), InvalidArgument);
}

TEST(DmmCurveLiteral, BreakpointsDenser) {
  // With the literal sporadic model the curve climbs roughly every
  // 3-4 activations (Omega grows linearly with the window).
  TwcaAnalyzer analyzer{date17_case_study(OverloadModel::kLiteralSporadic)};
  const auto bps = dmm_breakpoints(analyzer, kSigmaC, 100);
  ASSERT_GE(bps.size(), 10u);
  // Monotone strictly increasing values, strictly increasing ks.
  for (std::size_t i = 1; i < bps.size(); ++i) {
    EXPECT_GT(bps[i].k, bps[i - 1].k);
    EXPECT_GT(bps[i].dmm, bps[i - 1].dmm);
  }
}

TEST(DmmCurveLiteral, FrontierConsistency) {
  TwcaAnalyzer analyzer{date17_case_study(OverloadModel::kLiteralSporadic)};
  for (Count m : {1, 3, 7, 15}) {
    const Count k = max_window_for_misses(analyzer, kSigmaC, m, 400);
    ASSERT_GE(k, 1);
    EXPECT_LE(analyzer.dmm(kSigmaC, k).dmm, m);
    if (k < 400) {
      EXPECT_GT(analyzer.dmm(kSigmaC, k + 1).dmm, m);
    }
  }
}

}  // namespace
}  // namespace wharf
