// Tests for the concurrent `wharf serve` TCP mode (cli/serve.hpp): two+
// loopback clients served in parallel against one shared Engine — with
// proof of overlap (a whole conversation completes while another
// connection is open), answers bit-identical to serialized execution,
// per-connection error isolation (a client disconnecting mid-request
// never affects its siblings or the process), a bounded connection pool
// that queues rather than drops, and cross-connection artifact sharing.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/serve.hpp"
#include "core/case_studies.hpp"
#include "engine/engine.hpp"
#include "io/json.hpp"
#include "io/system_format.hpp"
#include "tests/support/serve_client.hpp"

namespace wharf::cli {
namespace {

constexpr std::size_t kBusyWindowStage =
    static_cast<std::size_t>(static_cast<int>(ArtifactStage::kBusyWindow));

std::string case_study_text() {
  return io::serialize_system(
      case_studies::date17_case_study(case_studies::OverloadModel::kRareOverload));
}

using testsupport::results_of;

// ---------------------------------------------------------------------
// Loopback plumbing (shared with bench/serve_concurrent.cpp)
// ---------------------------------------------------------------------

/// The shared ServeClient with failures routed into gtest.
class Client : public testsupport::ServeClient {
 public:
  explicit Client(int port)
      : ServeClient(port, [](const std::string& message) { ADD_FAILURE() << message; }) {}
};

/// A serve_listener running on a background thread.
class Server {
 public:
  explicit Server(Engine& engine, int max_connections) {
    const Expected<int> listener = bind_serve_socket(0, port_);
    EXPECT_TRUE(listener) << listener.status().to_string();
    thread_ = std::thread([this, &engine, fd = listener.value(), max_connections] {
      exit_code_ = serve_listener(engine, fd, max_connections, err_);
    });
  }

  ~Server() {
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] int port() const { return port_; }

  /// Joins the listener (after a client-requested shutdown has drained).
  int join() {
    thread_.join();
    return exit_code_;
  }

  [[nodiscard]] std::string err() const { return err_.str(); }

 private:
  int port_ = 0;
  int exit_code_ = -1;
  std::ostringstream err_;
  std::thread thread_;
};

std::string open_line(int id, const std::string& session) {
  return "{\"id\":" + std::to_string(id) + ",\"type\":\"open_session\",\"session\":\"" +
         session + "\",\"system\":\"" + io::json_escape(case_study_text()) + "\"}";
}

std::string query_line(int id, const std::string& session) {
  return "{\"id\":" + std::to_string(id) + ",\"type\":\"query\",\"session\":\"" + session +
         "\",\"queries\":[{\"kind\":\"latency\",\"chain\":\"sigma_c\"},"
         "{\"kind\":\"dmm\",\"chain\":\"sigma_c\",\"ks\":[5,10]},"
         "{\"kind\":\"latency\",\"chain\":\"sigma_d\"}]}";
}

std::string swap_line(int id, const std::string& session) {
  return "{\"id\":" + std::to_string(id) + ",\"type\":\"apply_delta\",\"session\":\"" +
         session +
         "\",\"deltas\":[{\"kind\":\"set_priority\",\"task\":\"sigma_c.tau1_c\","
         "\"priority\":7},{\"kind\":\"set_priority\",\"task\":\"sigma_c.tau2_c\","
         "\"priority\":8}]}";
}

// ---------------------------------------------------------------------
// Overlap: a second client is served while the first stays connected
// ---------------------------------------------------------------------

TEST(ServeConcurrent, SecondClientIsServedWhileFirstConnectionIsOpen) {
  Engine engine;
  Server server(engine, 4);

  // Client A opens a session and stays connected...
  Client a(server.port());
  a.send_line(open_line(1, "a"));
  ASSERT_NE(a.recv_line().find(R"("status":"ok")"), std::string::npos);

  // ...while client B runs a *complete* conversation — open, query,
  // close — and receives every response.  A sequentially accepting
  // server would never answer B here: this is the overlap proof.
  {
    Client b(server.port());
    b.send_line(open_line(1, "b"));
    ASSERT_NE(b.recv_line().find(R"("status":"ok")"), std::string::npos);
    b.send_line(query_line(2, "b"));
    const std::string report = b.recv_line();
    EXPECT_NE(report.find(R"("report":{"system":"date17_case_study")"), std::string::npos);
    b.send_line("{\"id\":3,\"type\":\"close\",\"session\":\"b\"}");
    EXPECT_NE(b.recv_line().find(R"("status":"ok")"), std::string::npos);
  }

  // A's conversation continues unharmed, then asks for shutdown.
  a.send_line(query_line(2, "a"));
  EXPECT_NE(a.recv_line().find(R"("wcl":331)"), std::string::npos);
  a.send_line(R"({"id":3,"type":"shutdown"})");
  EXPECT_NE(a.recv_line().find(R"("type":"shutdown","status":"ok")"), std::string::npos);
  a.close();
  EXPECT_EQ(server.join(), 0) << server.err();
}

// ---------------------------------------------------------------------
// Bit-identity: concurrent answers == serialized answers
// ---------------------------------------------------------------------

/// Replays one conversation through serve_stream on its own fresh
/// engine (the serialized, nothing-shared reference) and returns the
/// results payload of every query response.
std::vector<std::string> serialized_reference(const std::vector<std::string>& lines) {
  std::ostringstream conversation;
  for (const std::string& line : lines) conversation << line << '\n';
  Engine engine;
  std::istringstream in(conversation.str());
  std::ostringstream out;
  (void)serve_stream(engine, in, out);
  std::vector<std::string> results;
  std::istringstream replies(out.str());
  for (std::string line; std::getline(replies, line);) {
    if (line.find("\"report\":") != std::string::npos) results.push_back(results_of(line));
  }
  return results;
}

TEST(ServeConcurrent, AnswersAreBitIdenticalToSerializedExecution) {
  // Two different conversations: B diverges from A after one delta, so
  // the clients share some artifacts (the pre-delta model) and not
  // others — sharing must never leak one client's answers to the other.
  const std::vector<std::string> conversation_a = {open_line(1, "a"), query_line(2, "a"),
                                                   swap_line(3, "a"), query_line(4, "a")};
  const std::vector<std::string> conversation_b = {open_line(1, "b"), query_line(2, "b"),
                                                   query_line(3, "b")};

  const std::vector<std::string> want_a = serialized_reference(conversation_a);
  const std::vector<std::string> want_b = serialized_reference(conversation_b);
  ASSERT_EQ(want_a.size(), 2u);
  ASSERT_EQ(want_b.size(), 2u);

  Engine engine;
  Server server(engine, 4);
  std::vector<std::string> got_a;
  std::vector<std::string> got_b;
  std::thread client_a([&] {
    Client a(server.port());
    for (const std::string& line : conversation_a) {
      a.send_line(line);
      const std::string reply = a.recv_line();
      if (reply.find("\"report\":") != std::string::npos) got_a.push_back(results_of(reply));
    }
  });
  std::thread client_b([&] {
    Client b(server.port());
    for (const std::string& line : conversation_b) {
      b.send_line(line);
      const std::string reply = b.recv_line();
      if (reply.find("\"report\":") != std::string::npos) got_b.push_back(results_of(reply));
    }
  });
  client_a.join();
  client_b.join();

  EXPECT_EQ(got_a, want_a);
  EXPECT_EQ(got_b, want_b);

  Client closer(server.port());
  closer.send_line(R"({"type":"shutdown"})");
  (void)closer.recv_line();
  closer.close();
  EXPECT_EQ(server.join(), 0) << server.err();
}

// ---------------------------------------------------------------------
// Cross-connection sharing: identical work is not recomputed per client
// ---------------------------------------------------------------------

TEST(ServeConcurrent, IdenticalConversationsShareStoreArtifacts) {
  // The store keys artifacts by model content, and resolve() is
  // single-flight per key — so N clients opening the *same* system and
  // asking the same queries insert each busy-window artifact exactly
  // once, no matter how the connection threads interleave.
  Engine single;
  {
    std::istringstream in(open_line(1, "s") + "\n" + query_line(2, "s") + "\n");
    std::ostringstream out;
    (void)serve_stream(single, in, out);
  }
  const std::size_t single_solves =
      single.store_stats().stage[kBusyWindowStage].insertions;
  ASSERT_GT(single_solves, 0u);

  constexpr int kClients = 4;
  Engine engine;
  Server server(engine, kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(server.port());
      const std::string session = "s" + std::to_string(c);
      client.send_line(open_line(1, session));
      (void)client.recv_line();
      client.send_line(query_line(2, session));
      const std::string reply = client.recv_line();
      EXPECT_NE(reply.find(R"("wcl":331)"), std::string::npos);
    });
  }
  for (std::thread& t : clients) t.join();

  // Exactly the single-client solve count: every other lookup was a
  // resident hit or a single-flight join, never a recompute.
  EXPECT_EQ(engine.store_stats().stage[kBusyWindowStage].insertions, single_solves);

  Client closer(server.port());
  closer.send_line(R"({"type":"shutdown"})");
  (void)closer.recv_line();
  closer.close();
  EXPECT_EQ(server.join(), 0) << server.err();
}

// ---------------------------------------------------------------------
// Torture: disconnects mid-request never affect siblings or the process
// ---------------------------------------------------------------------

TEST(ServeConcurrent, ClientDisconnectMidRequestDoesNotAffectOthers) {
  Engine engine;
  Server server(engine, 4);

  Client steady(server.port());
  steady.send_line(open_line(1, "steady"));
  ASSERT_NE(steady.recv_line().find(R"("status":"ok")"), std::string::npos);

  {
    // Torture client 1: sends a full query, then slams the connection
    // abortively (RST) without ever reading — the server's response
    // write hits a dead socket (historically a process-killing SIGPIPE).
    Client vanisher(server.port());
    vanisher.send_line(open_line(1, "v"));
    vanisher.send_line(query_line(2, "v"));
    vanisher.abort_close();
  }
  {
    // Torture client 2: half a request line (no newline), then gone.
    Client half(server.port());
    half.send_raw(R"({"id":1,"type":"query","session")");
    half.close();
  }

  // The steady client keeps conversing across both disconnects.
  for (int round = 0; round < 3; ++round) {
    steady.send_line(query_line(10 + round, "steady"));
    const std::string reply = steady.recv_line();
    EXPECT_NE(reply.find(R"("wcl":331)"), std::string::npos) << "round " << round;
  }
  steady.send_line(R"({"type":"shutdown"})");
  EXPECT_NE(steady.recv_line().find(R"("status":"ok")"), std::string::npos);
  steady.close();
  EXPECT_EQ(server.join(), 0) << server.err();
}

TEST(ServeConcurrent, ShutdownHonoredEvenWhenAckIsUnwritable) {
  // A client that requests shutdown and aborts (RST) without reading
  // the acknowledgment: the request was accepted the moment it parsed,
  // so the server must still stop and exit 0 — not serve forever.
  Engine engine;
  Server server(engine, 4);
  {
    Client impatient(server.port());
    impatient.send_line(R"({"type":"shutdown"})");
    impatient.abort_close();
  }
  EXPECT_EQ(server.join(), 0) << server.err();
}

// ---------------------------------------------------------------------
// Bounded pool: more clients than slots queue, none are dropped
// ---------------------------------------------------------------------

TEST(ServeConcurrent, MoreClientsThanMaxConnectionsAllComplete) {
  Engine engine;
  Server server(engine, /*max_connections=*/2);

  constexpr int kClients = 5;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(server.port());
      const std::string session = "q" + std::to_string(c);
      client.send_line(open_line(1, session));
      EXPECT_NE(client.recv_line().find(R"("status":"ok")"), std::string::npos);
      client.send_line(query_line(2, session));
      EXPECT_NE(client.recv_line().find(R"("report":)"), std::string::npos);
      // Disconnect promptly so a queued sibling can take the slot.
    });
  }
  for (std::thread& t : clients) t.join();

  Client closer(server.port());
  closer.send_line(R"({"type":"shutdown"})");
  (void)closer.recv_line();
  closer.close();
  EXPECT_EQ(server.join(), 0) << server.err();
}

// ---------------------------------------------------------------------
// Diagnostics surface the server and cross-connection counters
// ---------------------------------------------------------------------

TEST(ServeConcurrent, DiagnosticsReportServerAndSharedCounters) {
  Engine engine;
  Server server(engine, 4);

  Client warm(server.port());
  warm.send_line(open_line(1, "w"));
  (void)warm.recv_line();
  warm.send_line(query_line(2, "w"));
  (void)warm.recv_line();

  Client probe(server.port());
  probe.send_line(open_line(1, "p"));
  (void)probe.recv_line();
  probe.send_line(R"({"id":2,"type":"diagnostics","session":"p"})");
  const std::string diagnostics = probe.recv_line();
  EXPECT_NE(diagnostics.find(R"("shared_flights":)"), std::string::npos);
  EXPECT_NE(diagnostics.find(R"("connections_active":2)"), std::string::npos);
  EXPECT_NE(diagnostics.find(R"("connections_served":2)"), std::string::npos);

  warm.close();
  probe.send_line(R"({"id":3,"type":"shutdown"})");
  (void)probe.recv_line();
  probe.close();
  EXPECT_EQ(server.join(), 0) << server.err();
}

}  // namespace
}  // namespace wharf::cli
