// Unit tests for the wharf CLI (src/cli), driven entirely through
// in-memory streams: every subcommand, exit code and error path.

#include <gtest/gtest.h>

#include <sstream>

#include "cli/cli.hpp"
#include "core/case_studies.hpp"
#include "io/json.hpp"
#include "io/system_format.hpp"

namespace wharf::cli {
namespace {

struct CliRun {
  int exit_code = -1;
  std::string out;
  std::string err;
};

CliRun invoke(const std::vector<std::string>& args, const std::string& stdin_text = "") {
  std::istringstream in(stdin_text);
  std::ostringstream out;
  std::ostringstream err;
  CliRun run;
  run.exit_code = cli::run(args, in, out, err);
  run.out = out.str();
  run.err = err.str();
  return run;
}

std::string case_study_text() {
  return io::serialize_system(
      case_studies::date17_case_study(case_studies::OverloadModel::kRareOverload));
}

TEST(Cli, HelpAndNoArgs) {
  const CliRun help = invoke({"help"});
  EXPECT_EQ(help.exit_code, 0);
  EXPECT_NE(help.out.find("usage:"), std::string::npos);

  const CliRun none = invoke({});
  EXPECT_EQ(none.exit_code, 1);
  EXPECT_NE(none.out.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownCommand) {
  const CliRun r = invoke({"frobnicate"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, AnalyzeFromStdin) {
  const CliRun r = invoke({"analyze", "-", "--k", "3,76,250"}, case_study_text());
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("sigma_c"), std::string::npos);
  EXPECT_NE(r.out.find("331"), std::string::npos);
  EXPECT_NE(r.out.find("dmm(76)"), std::string::npos);
  EXPECT_NE(r.out.find("always meets"), std::string::npos);
}

TEST(Cli, AnalyzeJson) {
  const CliRun r = invoke({"analyze", "-", "--json", "--k", "3"}, case_study_text());
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("\"system\":\"date17_case_study\""), std::string::npos);
  EXPECT_NE(r.out.find("\"wcl\":331"), std::string::npos);
  EXPECT_NE(r.out.find("\"dmm\":3"), std::string::npos);
}

TEST(Cli, AnalyzeRejectsBadFile) {
  const CliRun r = invoke({"analyze", "/nonexistent/path.wharf"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(Cli, AnalyzeRejectsParseError) {
  const CliRun r = invoke({"analyze", "-"}, "system x\nbogus line\n");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("line 2"), std::string::npos);
}

TEST(Cli, AnalyzeRejectsBadK) {
  const CliRun r = invoke({"analyze", "-", "--k", "3,zero"}, case_study_text());
  EXPECT_EQ(r.exit_code, 1);
}

TEST(Cli, AnalyzeUsage) {
  const CliRun r = invoke({"analyze"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("exactly one file"), std::string::npos);
}

TEST(Cli, DmmPointQuery) {
  const CliRun r = invoke({"dmm", "-", "sigma_c", "--k", "76"}, case_study_text());
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("dmm_sigma_c(76) = 4"), std::string::npos);
}

TEST(Cli, DmmBreakpoints) {
  const CliRun r = invoke({"dmm", "-", "sigma_c", "--breakpoints", "300"}, case_study_text());
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("76"), std::string::npos);
  EXPECT_NE(r.out.find("250"), std::string::npos);
}

TEST(Cli, DmmUnknownChain) {
  const CliRun r = invoke({"dmm", "-", "sigma_zz"}, case_study_text());
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("unknown chain"), std::string::npos);
}

TEST(Cli, DmmRejectsOverloadTarget) {
  const CliRun r = invoke({"dmm", "-", "sigma_a"}, case_study_text());
  EXPECT_EQ(r.exit_code, 2);
}

TEST(Cli, SimulateGreedy) {
  const CliRun r = invoke({"simulate", "-", "--horizon", "50000"}, case_study_text());
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("sigma_c"), std::string::npos);
  EXPECT_NE(r.out.find("max latency"), std::string::npos);
}

TEST(Cli, SimulateWithGantt) {
  const CliRun r = invoke({"simulate", "-", "--horizon", "1000", "--gantt", "400"},
                          case_study_text());
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("#"), std::string::npos);
  EXPECT_NE(r.out.find("sigma_d.tau1_d"), std::string::npos);
}

TEST(Cli, SimulateRandomizedArrivals) {
  const CliRun r = invoke(
      {"simulate", "-", "--horizon", "50000", "--extra-gap", "500", "--seed", "9"},
      case_study_text());
  EXPECT_EQ(r.exit_code, 0) << r.err;
}

TEST(Cli, SearchClimb) {
  const CliRun r = invoke({"search", "-", "--k", "10"}, case_study_text());
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("nominal:"), std::string::npos);
  EXPECT_NE(r.out.find("best:"), std::string::npos);
  EXPECT_NE(r.out.find("missing=0"), std::string::npos);  // climb finds zero-miss
}

TEST(Cli, SearchRandomStrategy) {
  const CliRun r = invoke({"search", "-", "--strategy", "random", "--budget", "50", "--seed",
                           "3"},
                          case_study_text());
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("50 evaluations"), std::string::npos);
}

TEST(Cli, SearchRejectsBadStrategy) {
  const CliRun r = invoke({"search", "-", "--strategy", "quantum"}, case_study_text());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("unknown strategy"), std::string::npos);
}

TEST(Cli, SearchHillAliasAndRestartsAndJobs) {
  const CliRun r = invoke({"search", "-", "--strategy", "hill", "--budget", "3", "--restarts",
                           "2", "--seed", "5", "--jobs", "2"},
                          case_study_text());
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("best:"), std::string::npos);
  EXPECT_NE(r.out.find("store:"), std::string::npos);  // reuse telemetry line
}

TEST(Cli, SearchExhaustiveGuardSurfacesAsInputError) {
  // 13 tasks -> 13! permutations: the guard must refuse with a status,
  // mapped to the input-error exit code, not crash or run forever.
  const CliRun r = invoke({"search", "-", "--strategy", "exhaustive"}, case_study_text());
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("max_permutations"), std::string::npos);
}

TEST(Cli, SearchMaxPermutationsIsConfigurable) {
  // A two-chain, three-task system: 3! = 6 permutations.  A guard of 6
  // admits the search, 5 refuses it.
  const std::string text =
      "system tiny\n"
      "chain a kind=sync activation=periodic(100) deadline=90\n"
      "  task a1 prio=1 wcet=10\n"
      "  task a2 prio=2 wcet=10\n"
      "chain b kind=sync activation=periodic(200) deadline=150\n"
      "  task b1 prio=3 wcet=20\n";
  const CliRun ok = invoke(
      {"search", "-", "--strategy", "exhaustive", "--max-permutations", "6"}, text);
  EXPECT_EQ(ok.exit_code, 0) << ok.err;
  EXPECT_NE(ok.out.find("6 evaluations"), std::string::npos);
  const CliRun blocked = invoke(
      {"search", "-", "--strategy", "exhaustive", "--max-permutations", "5"}, text);
  EXPECT_EQ(blocked.exit_code, 2);
  EXPECT_NE(blocked.err.find("max_permutations"), std::string::npos);
}

TEST(Cli, SearchJsonCarriesStoreTelemetry) {
  const CliRun r = invoke({"search", "-", "--strategy", "random", "--budget", "10", "--json"},
                          case_study_text());
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("\"query\":\"priority_search\""), std::string::npos);
  EXPECT_NE(r.out.find("\"store\":"), std::string::npos);
  EXPECT_NE(r.out.find("\"search\":"), std::string::npos);
  EXPECT_NE(r.out.find("\"evaluations\":"), std::string::npos);
}

TEST(Cli, Validate) {
  const CliRun good = invoke({"validate", "-"}, case_study_text());
  EXPECT_EQ(good.exit_code, 0);
  EXPECT_NE(good.out.find("ok:"), std::string::npos);

  const CliRun bad = invoke({"validate", "-"}, "system x\n");
  EXPECT_EQ(bad.exit_code, 2);
}

// A system that can miss deadlines with no overload chain declared:
// TWCA can prove nothing (DmmStatus::kNoGuarantee) — exit code 3.
std::string no_guarantee_text() {
  return "system tight\n"
         "chain a kind=sync activation=periodic(100) deadline=10\n"
         "  task t1 prio=2 wcet=9\n"
         "chain b kind=sync activation=periodic(100) deadline=50\n"
         "  task t2 prio=1 wcet=50\n";
}

TEST(Cli, AnalyzeNoGuaranteeExitsThree) {
  const CliRun r = invoke({"analyze", "-"}, no_guarantee_text());
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_NE(r.out.find("no guar"), std::string::npos);
  EXPECT_NE(r.err.find("no-guarantee"), std::string::npos);
}

TEST(Cli, AnalyzeJsonCarriesStatusAndReason) {
  const CliRun r = invoke({"analyze", "-", "--json"}, no_guarantee_text());
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_NE(r.out.find("\"status\":\"no-guarantee\""), std::string::npos);
  EXPECT_NE(r.out.find("\"reason\""), std::string::npos);
  EXPECT_NE(r.out.find("\"diagnostics\""), std::string::npos);
}

TEST(Cli, AnalyzeJsonOkStatus) {
  const CliRun r = invoke({"analyze", "-", "--json", "--k", "3"}, case_study_text());
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(r.out.find("\"cache_hit\":false"), std::string::npos);
  EXPECT_NE(r.out.find("\"cache_misses\":"), std::string::npos);
  // Per-stage artifact-store counters are part of the --json surface.
  EXPECT_NE(r.out.find("\"stages\""), std::string::npos);
  EXPECT_NE(r.out.find("\"busy_window\""), std::string::npos);
  EXPECT_NE(r.out.find("\"bytes_inserted\""), std::string::npos);
}

TEST(Cli, AnalyzeTextCarriesCacheSummary) {
  const CliRun r = invoke({"analyze", "-"}, case_study_text());
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("artifact cache:"), std::string::npos);
  EXPECT_NE(r.out.find("busy_window 0/"), std::string::npos);
}

TEST(Cli, AnalyzeCacheBytesFlag) {
  const CliRun tiny = invoke({"analyze", "-", "--cache-bytes", "1024"}, case_study_text());
  EXPECT_EQ(tiny.exit_code, 0) << tiny.err;
  const CliRun unlimited = invoke({"analyze", "-", "--cache-bytes", "0"}, case_study_text());
  EXPECT_EQ(unlimited.exit_code, 0) << unlimited.err;
  // The budget changes residency, never answers.
  EXPECT_EQ(tiny.out, unlimited.out);
}

TEST(Cli, AnalyzeRejectsBadCacheBytes) {
  const CliRun r = invoke({"analyze", "-", "--cache-bytes", "lots"}, case_study_text());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("invalid --cache-bytes"), std::string::npos);
}

TEST(Cli, AnalyzeJobsProducesIdenticalOutput) {
  const CliRun sequential = invoke({"analyze", "-", "--k", "3,76", "--jobs", "1"},
                                   case_study_text());
  const CliRun parallel = invoke({"analyze", "-", "--k", "3,76", "--jobs", "4"},
                                 case_study_text());
  EXPECT_EQ(sequential.exit_code, 0) << sequential.err;
  EXPECT_EQ(parallel.exit_code, 0) << parallel.err;
  EXPECT_EQ(sequential.out, parallel.out);
}

TEST(Cli, AnalyzeRejectsBadJobs) {
  const CliRun r = invoke({"analyze", "-", "--jobs", "minus-two"}, case_study_text());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("invalid --jobs"), std::string::npos);
}

TEST(Cli, DmmNoGuaranteeExitsThree) {
  const CliRun r = invoke({"dmm", "-", "b"}, no_guarantee_text());
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_NE(r.out.find("no-guarantee"), std::string::npos);
}

TEST(Cli, DmmJsonCarriesStatusFields) {
  const CliRun r = invoke({"dmm", "-", "sigma_c", "--k", "76", "--json"}, case_study_text());
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("\"query\":\"dmm\""), std::string::npos);
  EXPECT_NE(r.out.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(r.out.find("\"dmm\":4"), std::string::npos);
}

TEST(Cli, DmmRejectsJsonWithBreakpoints) {
  const CliRun r = invoke({"dmm", "-", "sigma_c", "--json", "--breakpoints", "100"},
                          case_study_text());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("--breakpoints cannot be combined with --json"), std::string::npos);
}

TEST(Cli, MissingOptionValue) {
  const CliRun r = invoke({"analyze", "-", "--k"}, case_study_text());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("missing value"), std::string::npos);
}

// ---------------------------------------------------------------------------
// path subcommand
// ---------------------------------------------------------------------------

std::string linked_text() {
  // The path_test pipeline fixture: two stages plus an overload chain,
  // path WCL 220, bounded dmm under an end-to-end deadline of 200.
  return "system pipeline\n"
         "chain stage1 kind=sync activation=periodic(300) deadline=300\n"
         "  task s1a prio=6 wcet=20\n"
         "  task s1b prio=2 wcet=25\n"
         "chain stage2 kind=sync activation=periodic(300) deadline=300\n"
         "  task s2a prio=5 wcet=15\n"
         "  task s2b prio=1 wcet=30\n"
         "chain ov kind=sync activation=sporadic(10000) overload\n"
         "  task ov1 prio=7 wcet=35\n";
}

TEST(Cli, PathLatencyOnly) {
  const CliRun r = invoke({"path", "-", "stage1,stage2"}, linked_text());
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("path stage1,stage2"), std::string::npos);
  EXPECT_NE(r.out.find("WCL <="), std::string::npos);
}

TEST(Cli, PathWithDeadlineEmitsDmm) {
  const CliRun r = invoke({"path", "-", "stage1,stage2", "--deadline", "200", "--k", "5,10"},
                          linked_text());
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("dmm_path(5)"), std::string::npos);
  EXPECT_NE(r.out.find("dmm_path(10)"), std::string::npos);
}

TEST(Cli, PathJson) {
  const CliRun r = invoke({"path", "-", "stage1,stage2", "--deadline", "200", "--json"}, linked_text());
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("\"query\":\"path_latency\""), std::string::npos);
  EXPECT_NE(r.out.find("\"query\":\"path_dmm\""), std::string::npos);
  EXPECT_NE(r.out.find("\"budgets\""), std::string::npos);
}

TEST(Cli, PathUnknownChainFails) {
  const CliRun r = invoke({"path", "-", "stage1,nope"}, linked_text());
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("unknown chain"), std::string::npos);
}

TEST(Cli, PathJsonEmitsFailedQueriesAsStatusEntries) {
  // Like analyze --json: a failed query is a structured status entry on
  // stdout, never a bare stderr line with empty stdout.
  const CliRun r = invoke({"path", "-", "stage1,nope", "--json"}, linked_text());
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.out.find("\"status\":\"not-found\""), std::string::npos);
  EXPECT_NE(r.out.find("\"reason\""), std::string::npos);
}

TEST(Cli, PathRejectsKWithoutDeadline) {
  const CliRun r = invoke({"path", "-", "stage1,stage2", "--k", "5"}, linked_text());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("require --deadline"), std::string::npos);
}

TEST(Cli, PathUsage) {
  const CliRun r = invoke({"path", "-"}, linked_text());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("path expects"), std::string::npos);
}

// ---------------------------------------------------------------------------
// serve subcommand (NDJSON session server; see cli/serve.hpp)
// ---------------------------------------------------------------------------

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  for (std::string line; std::getline(stream, line);) lines.push_back(line);
  return lines;
}

TEST(Cli, ServeFullConversation) {
  const std::string conversation =
      "{\"id\":1,\"type\":\"open_session\",\"session\":\"s\",\"system\":\"" +
      io::json_escape(case_study_text()) +
      "\"}\n"
      R"({"id":2,"type":"query","session":"s","queries":[{"kind":"latency","chain":"sigma_c"},{"kind":"dmm","chain":"sigma_c","ks":[76]}]})"
      "\n"
      R"({"id":3,"type":"apply_delta","session":"s","deltas":[{"kind":"set_deadline","chain":"sigma_c","deadline":500}]})"
      "\n"
      R"({"id":4,"type":"query","session":"s","queries":[{"kind":"weakly_hard","chain":"sigma_c","m":2,"k":76}]})"
      "\n"
      R"({"id":5,"type":"diagnostics","session":"s"})"
      "\n"
      R"({"id":6,"type":"close","session":"s"})"
      "\n";
  const CliRun r = invoke({"serve"}, conversation);
  EXPECT_EQ(r.exit_code, 0) << r.err;

  const std::vector<std::string> lines = lines_of(r.out);
  ASSERT_EQ(lines.size(), 6u) << r.out;
  EXPECT_NE(lines[0].find(R"("status":"ok","system":"date17_case_study")"), std::string::npos);
  EXPECT_NE(lines[1].find(R"("query":"latency")"), std::string::npos);
  EXPECT_NE(lines[1].find(R"("wcl":331)"), std::string::npos);
  EXPECT_NE(lines[1].find(R"("dmm":4)"), std::string::npos);  // dmm_sigma_c(76) = 4
  EXPECT_NE(lines[2].find(R"("revision":1)"), std::string::npos);
  EXPECT_NE(lines[3].find(R"("query":"weakly_hard")"), std::string::npos);
  EXPECT_NE(lines[4].find(R"("queries_served":3)"), std::string::npos);
  EXPECT_NE(lines[4].find(R"("sessions_open":1)"), std::string::npos);
  EXPECT_NE(lines[5].find(R"("type":"close","session":"s","status":"ok")"), std::string::npos);
}

TEST(Cli, ServePerRequestErrorsNeverExitNonZero) {
  // The serve-mode exit-code contract: malformed lines, unknown
  // sessions, bad deltas and failing queries are all JSON responses on
  // the stream; the process still exits 0 at EOF.
  const std::string conversation =
      "this is not json\n"
      R"({"id":1,"type":"query","session":"ghost","queries":[]})"
      "\n"
      "{\"id\":2,\"type\":\"open_session\",\"session\":\"s\",\"system\":\"" +
      io::json_escape(case_study_text()) +
      "\"}\n"
      R"({"id":3,"type":"open_session","session":"s","system":"system x"})"
      "\n"
      R"({"id":4,"type":"apply_delta","session":"s","deltas":[{"kind":"remove_chain","chain":"nope"}]})"
      "\n"
      R"({"id":5,"type":"query","session":"s","queries":[{"kind":"latency","chain":"nope"}]})"
      "\n"
      R"({"id":6,"type":"open_session","session":"bad","system":"system x\nbogus"})"
      "\n";
  const CliRun r = invoke({"serve"}, conversation);
  EXPECT_EQ(r.exit_code, 0) << r.err;

  const std::vector<std::string> lines = lines_of(r.out);
  ASSERT_EQ(lines.size(), 7u) << r.out;
  EXPECT_NE(lines[0].find(R"("type":"error","status":"parse-error")"), std::string::npos);
  EXPECT_NE(lines[1].find(R"("status":"not-found")"), std::string::npos);
  EXPECT_NE(lines[2].find(R"("status":"ok")"), std::string::npos);
  EXPECT_NE(lines[3].find("already open"), std::string::npos);
  EXPECT_NE(lines[4].find(R"("status":"not-found")"), std::string::npos);
  // A failing query is a structured per-query status inside an OK
  // response, exactly like analyze --json.
  EXPECT_NE(lines[5].find(R"("status":"ok")"), std::string::npos);
  EXPECT_NE(lines[5].find(R"("status":"not-found")"), std::string::npos);
  EXPECT_NE(lines[6].find(R"("status":"parse-error")"), std::string::npos);
}

TEST(Cli, ServeSessionsAreIncrementalAcrossDeltas) {
  // Same query before and after a priority-swap delta: the second query
  // response must show busy-window hits (only the touched slices were
  // re-keyed) — the incrementality is visible on the wire.
  const std::string conversation =
      "{\"id\":1,\"type\":\"open_session\",\"session\":\"s\",\"system\":\"" +
      io::json_escape(case_study_text()) +
      "\"}\n"
      R"({"id":2,"type":"query","session":"s","queries":[{"kind":"latency","chain":"sigma_c"},{"kind":"latency","chain":"sigma_d"}]})"
      "\n"
      R"({"id":3,"type":"apply_delta","session":"s","deltas":[{"kind":"set_priority","task":"sigma_c.tau1_c","priority":7},{"kind":"set_priority","task":"sigma_c.tau2_c","priority":8}]})"
      "\n"
      R"({"id":4,"type":"query","session":"s","queries":[{"kind":"latency","chain":"sigma_c"},{"kind":"latency","chain":"sigma_d"}]})"
      "\n";
  const CliRun r = invoke({"serve"}, conversation);
  EXPECT_EQ(r.exit_code, 0) << r.err;
  const std::vector<std::string> lines = lines_of(r.out);
  ASSERT_EQ(lines.size(), 4u) << r.out;
  EXPECT_NE(lines[3].find(R"("revision":1)"), std::string::npos);
  // The re-query after the swap reuses untouched chains' artifacts.
  EXPECT_NE(lines[3].find(R"("cache_hits":)"), std::string::npos);
  EXPECT_EQ(lines[3].find(R"("cache_hits":0,)"), std::string::npos) << lines[3];
}

TEST(Cli, ServeShutdownMessageEndsTheLoop) {
  const std::string conversation =
      R"({"id":1,"type":"shutdown"})"
      "\n"
      R"({"id":2,"type":"diagnostics","session":"s"})"
      "\n";
  const CliRun r = invoke({"serve"}, conversation);
  EXPECT_EQ(r.exit_code, 0) << r.err;
  const std::vector<std::string> lines = lines_of(r.out);
  // Nothing after the shutdown acknowledgement is processed.
  ASSERT_EQ(lines.size(), 1u) << r.out;
  EXPECT_NE(lines[0].find(R"("type":"shutdown","status":"ok")"), std::string::npos);
}

TEST(Cli, ServeUsageErrors) {
  const CliRun positional = invoke({"serve", "file.wharf"});
  EXPECT_EQ(positional.exit_code, 1);
  EXPECT_NE(positional.err.find("no positional"), std::string::npos);

  const CliRun bad_port = invoke({"serve", "--listen", "notaport"});
  EXPECT_EQ(bad_port.exit_code, 1);
  EXPECT_NE(bad_port.err.find("invalid --listen"), std::string::npos);

  const CliRun bad_jobs = invoke({"serve", "--jobs", "-3"});
  EXPECT_EQ(bad_jobs.exit_code, 1);
}

TEST(Cli, HelpDocumentsServeExitCodes) {
  const CliRun help = invoke({"help"});
  EXPECT_EQ(help.exit_code, 0);
  EXPECT_NE(help.out.find("wharf serve"), std::string::npos);
  EXPECT_NE(help.out.find("--max-connections"), std::string::npos);
  // The canonical exit-code contract sentence — docs/serve-protocol.md
  // and the README state the same contract; this line is the normative
  // wording the CLI prints.
  EXPECT_NE(help.out.find("serve exit codes: 0 clean shutdown or EOF; 1 usage error; "
                          "4 transport failure"),
            std::string::npos);
  EXPECT_NE(help.out.find("neither ever exits the server"), std::string::npos);
}

TEST(Cli, ServeHelpPrintsUsageInsteadOfServing) {
  // `wharf serve --help` must print the usage (with the exit-code
  // contract) and exit 0 — it used to fall through into the serve loop
  // and sit reading stdin.
  const CliRun r = invoke({"serve", "--help"}, "this would be a protocol error\n");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
  EXPECT_NE(r.out.find("serve exit codes: 0 clean shutdown or EOF; 1 usage error; "
                       "4 transport failure"),
            std::string::npos);
  // No serve responses were emitted: the subcommand never ran.
  EXPECT_EQ(r.out.find("\"type\":\"error\""), std::string::npos);
}

TEST(Cli, ServeOpenSessionHonorsTwcaOptions) {
  // Two sessions over the same system: defaults, and a divergence guard
  // far below the real busy window — the optioned session must answer
  // differently (unbounded latency), proving the wire options reach the
  // Session instead of being accepted-but-ignored.
  const std::string conversation =
      "{\"id\":1,\"type\":\"open_session\",\"session\":\"plain\",\"system\":\"" +
      io::json_escape(case_study_text()) +
      "\"}\n"
      R"({"id":2,"type":"query","session":"plain","queries":[{"kind":"latency","chain":"sigma_c"}]})"
      "\n"
      "{\"id\":3,\"type\":\"open_session\",\"session\":\"guarded\",\"system\":\"" +
      io::json_escape(case_study_text()) +
      "\",\"options\":{\"divergence_guard\":50}}\n"
      R"({"id":4,"type":"query","session":"guarded","queries":[{"kind":"latency","chain":"sigma_c"}]})"
      "\n";
  const CliRun r = invoke({"serve"}, conversation);
  EXPECT_EQ(r.exit_code, 0) << r.err;
  const std::vector<std::string> lines = lines_of(r.out);
  ASSERT_EQ(lines.size(), 4u) << r.out;
  EXPECT_NE(lines[1].find(R"("bounded":true)"), std::string::npos);
  EXPECT_NE(lines[1].find(R"("wcl":331)"), std::string::npos);
  EXPECT_NE(lines[3].find(R"("bounded":false)"), std::string::npos) << lines[3];

  // A bad option is a per-request error response, not a process exit.
  const std::string bad =
      "{\"id\":1,\"type\":\"open_session\",\"session\":\"s\",\"system\":\"" +
      io::json_escape(case_study_text()) + "\",\"options\":{\"frobnicate\":true}}\n";
  const CliRun rejected = invoke({"serve"}, bad);
  EXPECT_EQ(rejected.exit_code, 0) << rejected.err;
  EXPECT_NE(rejected.out.find(R"("status":"invalid-argument")"), std::string::npos);
  EXPECT_NE(rejected.out.find("unknown analysis option"), std::string::npos);
}

}  // namespace
}  // namespace wharf::cli
