// Property-based tests on randomized systems: the analytic bounds must
// dominate every simulated behaviour, the ablation baseline must never
// beat the improved analysis, and solver/enumeration variants must agree.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/case_studies.hpp"
#include "core/twca.hpp"
#include "engine/engine.hpp"
#include "gen/random_systems.hpp"
#include "io/system_format.hpp"
#include "sim/arrival_sequence.hpp"
#include "sim/busy_windows.hpp"
#include "sim/simulator.hpp"

namespace wharf {
namespace {

gen::RandomSystemSpec property_spec(bool with_async) {
  gen::RandomSystemSpec spec;
  spec.min_chains = 2;
  spec.max_chains = 4;
  spec.min_tasks = 1;
  spec.max_tasks = 5;
  spec.utilization = 0.6;
  spec.overload_chains = 1;
  spec.overload_gap = 20'000;
  spec.overload_wcet_max = 25;
  spec.async_fraction = with_async ? 0.4 : 0.0;
  return spec;
}

/// Builds adversarial arrivals: all chains released at t=0, periodic
/// chains at full rate, overload chains as dense as legal.
std::vector<std::vector<Time>> adversarial_arrivals(const System& sys, Time horizon) {
  std::vector<std::vector<Time>> arrivals;
  for (int c = 0; c < sys.size(); ++c) {
    arrivals.push_back(sim::greedy_arrivals(sys.chain(c).arrival(), 0, horizon));
  }
  return arrivals;
}

class RandomSystemProperties : public ::testing::TestWithParam<int> {};

TEST_P(RandomSystemProperties, SimulatedLatencyNeverExceedsWcl) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 1000003 + 17);
  const System sys = gen::random_system(property_spec(GetParam() % 3 == 0), rng);
  TwcaAnalyzer analyzer{sys};

  const Time horizon = 60'000;
  const auto arrivals = adversarial_arrivals(sys, horizon);
  const sim::SimResult sim = sim::simulate(sys, arrivals);

  for (int c : sys.regular_indices()) {
    const LatencyResult& bound = analyzer.latency(c);
    if (!bound.bounded) continue;  // analysis gives no bound; nothing to check
    EXPECT_LE(sim.chains[static_cast<std::size_t>(c)].max_latency, bound.wcl)
        << "chain " << sys.chain(c).name() << " seed " << GetParam();
  }
}

TEST_P(RandomSystemProperties, SimulatedWindowMissesNeverExceedDmm) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 999983 + 3);
  const System sys = gen::random_system(property_spec(false), rng);
  TwcaAnalyzer analyzer{sys};

  const Time horizon = 100'000;
  const auto arrivals = adversarial_arrivals(sys, horizon);
  const sim::SimResult sim = sim::simulate(sys, arrivals);

  for (int c : sys.regular_indices()) {
    const LatencyResult& latency = analyzer.latency(c);
    if (!latency.bounded) continue;
    // The paper's standing assumption: at most one overload activation
    // per busy window.  Check it *exactly* on the observed run (Def. 6
    // busy windows) instead of a conservative proxy.
    const auto windows = sim::observed_busy_windows(sim.chains[static_cast<std::size_t>(c)]);
    bool assumption_holds = true;
    for (int o : sys.overload_indices()) {
      assumption_holds =
          assumption_holds &&
          sim::at_most_one_arrival_per_window(windows, arrivals[static_cast<std::size_t>(o)]);
    }
    if (!assumption_holds) continue;
    for (Count k : {1, 5, 10}) {
      const DmmResult bound = analyzer.dmm(c, k);
      const Count observed = sim.chains[static_cast<std::size_t>(c)].max_misses_in_window(k);
      EXPECT_LE(observed, bound.dmm)
          << "chain " << sys.chain(c).name() << " k=" << k << " seed " << GetParam();
    }
  }
}

TEST_P(RandomSystemProperties, NaiveLatencyNeverBeatsImprovedForSyncSystems) {
  // Restricted to fully synchronous systems on purpose: for a deferred
  // *asynchronous* chain, Eq. (1) line 4 counts the header segment both
  // in eta*C_header and inside the per-segment sum, so the segment-aware
  // analysis is not uniformly tighter than the all-arbitrary baseline.
  // For synchronous interferers the deferred term (one critical segment)
  // is always <= eta * C_a, hence the dominance below.
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7907 + 29);
  const System sys = gen::random_system(property_spec(false), rng);

  AnalysisOptions naive;
  naive.naive_arbitrary = true;
  for (int c : sys.regular_indices()) {
    const LatencyResult improved = latency_analysis(sys, c);
    const LatencyResult coarse = latency_analysis(sys, c, naive);
    if (!coarse.bounded) continue;  // naive may diverge where improved does not
    ASSERT_TRUE(improved.bounded) << "improved must be bounded whenever naive is";
    EXPECT_LE(improved.wcl, coarse.wcl) << "chain " << sys.chain(c).name();
  }
}

TEST_P(RandomSystemProperties, DmmMonotoneInK) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 11);
  const System sys = gen::random_system(property_spec(false), rng);
  TwcaAnalyzer analyzer{sys};
  for (int c : sys.regular_indices()) {
    Count prev = 0;
    bool first = true;
    for (Count k : {1, 2, 3, 5, 8, 13, 21}) {
      const Count v = analyzer.dmm(c, k).dmm;
      if (!first) {
        EXPECT_GE(v, prev) << "chain " << sys.chain(c).name() << " k=" << k;
      }
      prev = v;
      first = false;
    }
  }
}

TEST_P(RandomSystemProperties, DmmMonotoneAndCappedAtKViaEngine) {
  // The satellite property: over random systems, dmm(k) is monotone
  // non-decreasing in k and never exceeds k when cap_at_k is set —
  // checked through the Engine facade, cross-validated against the
  // analyzer core.
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  const System sys = gen::random_system(property_spec(GetParam() % 2 == 0), rng);

  std::vector<Count> ks;
  for (Count k = 1; k <= 24; ++k) ks.push_back(k);

  TwcaOptions options;
  ASSERT_TRUE(options.cap_at_k);  // the default the property relies on

  AnalysisRequest request{sys, options, {}};
  for (int c : sys.regular_indices()) {
    if (sys.chain(c).deadline().has_value()) {
      request.queries.push_back(DmmQuery{sys.chain(c).name(), ks});
    }
  }
  Engine engine;
  const AnalysisReport report = engine.run(request);
  ASSERT_TRUE(report.ok()) << report.worst_status().to_string();

  const TwcaAnalyzer analyzer{sys};
  for (const QueryResult& result : report.results) {
    const auto& answer = std::get<DmmAnswer>(result.answer);
    ASSERT_EQ(answer.curve.size(), ks.size());
    Count prev = 0;
    for (std::size_t i = 0; i < ks.size(); ++i) {
      const DmmResult& r = answer.curve[i];
      EXPECT_EQ(r.k, ks[i]);
      EXPECT_GE(r.dmm, 0) << "chain " << answer.chain << " k=" << r.k;
      EXPECT_LE(r.dmm, r.k) << "cap_at_k violated on chain " << answer.chain;
      EXPECT_GE(r.dmm, prev) << "non-monotone on chain " << answer.chain << " at k=" << r.k;
      prev = r.dmm;
      // The facade must agree with the analyzer core bit for bit.
      const auto chain = sys.chain_index(answer.chain);
      ASSERT_TRUE(chain.has_value());
      EXPECT_EQ(r.dmm, analyzer.dmm(*chain, ks[i]).dmm);
    }
  }
}

TEST_P(RandomSystemProperties, MinimalAndFullEnumerationAgree) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 4241 + 5);
  gen::RandomSystemSpec spec = property_spec(false);
  spec.overload_chains = 2;
  const System sys = gen::random_system(spec, rng);

  TwcaOptions minimal;
  minimal.minimal_only = true;
  TwcaOptions full;
  full.minimal_only = false;
  TwcaAnalyzer a{sys, minimal};
  TwcaAnalyzer b{sys, full};
  for (int c : sys.regular_indices()) {
    for (Count k : {1, 5, 20}) {
      const DmmResult ra = a.dmm(c, k);
      const DmmResult rb = b.dmm(c, k);
      EXPECT_EQ(ra.dmm, rb.dmm) << "chain " << sys.chain(c).name() << " k=" << k;
      EXPECT_EQ(ra.status, rb.status);
    }
  }
}

TEST_P(RandomSystemProperties, DfsAndIlpPackersAgree) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 3571 + 23);
  gen::RandomSystemSpec spec = property_spec(false);
  spec.overload_chains = 2;
  const System sys = gen::random_system(spec, rng);

  TwcaOptions ilp_opts;
  TwcaOptions dfs_opts;
  dfs_opts.use_dfs_packer = true;
  TwcaAnalyzer ilp_an{sys, ilp_opts};
  TwcaAnalyzer dfs_an{sys, dfs_opts};
  for (int c : sys.regular_indices()) {
    for (Count k : {1, 7, 30}) {
      EXPECT_EQ(ilp_an.dmm(c, k).dmm, dfs_an.dmm(c, k).dmm)
          << "chain " << sys.chain(c).name() << " k=" << k;
    }
  }
}

TEST_P(RandomSystemProperties, DmmZeroIffScheduable) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 2713 + 7);
  const System sys = gen::random_system(property_spec(false), rng);
  TwcaAnalyzer analyzer{sys};
  for (int c : sys.regular_indices()) {
    const LatencyResult& lat = analyzer.latency(c);
    if (!lat.bounded) continue;
    const DmmResult r = analyzer.dmm(c, 10);
    if (lat.schedulable) {
      EXPECT_EQ(r.status, DmmStatus::kAlwaysMeets);
      EXPECT_EQ(r.dmm, 0);
    } else {
      EXPECT_NE(r.status, DmmStatus::kAlwaysMeets);
    }
  }
}

TEST_P(RandomSystemProperties, SerializationRoundTripPreservesAnalysis) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 1019 + 2);
  const System sys = gen::random_system(property_spec(GetParam() % 2 == 1), rng);
  TwcaAnalyzer original{sys};
  TwcaAnalyzer reparsed{io::parse_system(io::serialize_system(sys))};
  for (int c : sys.regular_indices()) {
    const LatencyResult& a = original.latency(c);
    const LatencyResult& b = reparsed.latency(c);
    EXPECT_EQ(a.bounded, b.bounded);
    if (a.bounded) {
      EXPECT_EQ(a.wcl, b.wcl);
      EXPECT_EQ(a.K, b.K);
    }
  }
}

TEST_P(RandomSystemProperties, ExactCriterionDominatesEq5) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 90001 + 47);
  gen::RandomSystemSpec spec = property_spec(false);
  spec.deadline_factor = 0.8;  // tight deadlines make combinations matter
  const System sys = gen::random_system(spec, rng);

  TwcaOptions eq5_opts;
  TwcaOptions eq3_opts;
  eq3_opts.criterion = SchedulabilityCriterion::kExactEq3;
  TwcaAnalyzer eq5{sys, eq5_opts};
  TwcaAnalyzer eq3{sys, eq3_opts};
  for (int c : sys.regular_indices()) {
    for (Count k : {1, 5, 15}) {
      const DmmResult a = eq5.dmm(c, k);
      const DmmResult b = eq3.dmm(c, k);
      if (a.status == DmmStatus::kBounded && b.status == DmmStatus::kBounded) {
        EXPECT_GE(b.slack, a.slack) << "chain " << sys.chain(c).name() << " k=" << k;
        EXPECT_LE(b.dmm, a.dmm) << "chain " << sys.chain(c).name() << " k=" << k;
      }
    }
  }
}

TEST_P(RandomSystemProperties, SimulatorIsWorkConservingAndTraceValid) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 80021 + 19);
  const System sys = gen::random_system(property_spec(GetParam() % 2 == 0), rng);

  const Time horizon = 30'000;
  const auto arrivals = adversarial_arrivals(sys, horizon);
  sim::SimOptions options;
  options.record_trace = true;
  const sim::SimResult r = sim::simulate(sys, arrivals, options);

  // (1) Trace slices never overlap (a uniprocessor runs one job at a
  // time) and are within [0, makespan].
  Time prev_end = 0;
  Time busy_ticks = 0;
  for (const sim::ExecSlice& s : r.trace) {
    EXPECT_GE(s.begin, prev_end) << "overlapping slices, seed " << GetParam();
    EXPECT_LT(s.begin, s.end);
    EXPECT_LE(s.end, r.makespan);
    prev_end = s.begin;  // slices are emitted in chronological order
    prev_end = s.end;
    busy_ticks += s.end - s.begin;
  }

  // (2) Work conservation: total executed time equals total released
  // demand (every activation runs to completion; WCETs are exact).
  Time released = 0;
  for (int c = 0; c < sys.size(); ++c) {
    released += static_cast<Time>(arrivals[static_cast<std::size_t>(c)].size()) *
                sys.chain(c).total_wcet();
  }
  EXPECT_EQ(busy_ticks, released) << "seed " << GetParam();

  // (3) Every activation yields exactly one completed instance.
  for (int c = 0; c < sys.size(); ++c) {
    EXPECT_EQ(r.chains[static_cast<std::size_t>(c)].completed,
              static_cast<Count>(arrivals[static_cast<std::size_t>(c)].size()));
  }
}

TEST_P(RandomSystemProperties, LatencyDominatesEveryInstanceNotJustMax) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 52361 + 41);
  const System sys = gen::random_system(property_spec(false), rng);
  TwcaAnalyzer analyzer{sys};

  // Randomized (non-greedy) arrivals exercise non-critical instants.
  std::vector<std::vector<Time>> arrivals;
  for (int c = 0; c < sys.size(); ++c) {
    arrivals.push_back(sim::random_arrivals(sys.chain(c).arrival(), 0, 40'000, 300.0,
                                            static_cast<std::uint64_t>(GetParam()) * 31 +
                                                static_cast<std::uint64_t>(c)));
  }
  const sim::SimResult r = sim::simulate(sys, arrivals);
  for (int c : sys.regular_indices()) {
    const LatencyResult& bound = analyzer.latency(c);
    if (!bound.bounded) continue;
    for (const sim::InstanceRecord& rec :
         r.chains[static_cast<std::size_t>(c)].instances) {
      ASSERT_TRUE(rec.completed);
      EXPECT_LE(rec.latency(), bound.wcl)
          << "chain " << sys.chain(c).name() << " instance " << rec.index;
    }
  }
}

TEST_P(RandomSystemProperties, GranularCacheNeverServesStaleArtifacts) {
  // The incremental-invalidation property: warm an engine on system S,
  // mutate one pair of task priorities, and re-analyze warm.  Every
  // answer must be bit-identical to a cold analysis of the mutated
  // system — a slice key that is too coarse (missing a real dependency)
  // would serve stale artifacts exactly here.
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const System sys = gen::random_system(property_spec(GetParam() % 2 == 0), rng);

  Engine engine;
  (void)engine.run(AnalysisRequest::standard(sys));

  std::vector<Priority> priorities = sys.flat_priorities();
  std::uniform_int_distribution<std::size_t> pick(0, priorities.size() - 1);
  const std::size_t i = pick(rng);
  const std::size_t j = pick(rng);
  std::swap(priorities[i], priorities[j]);
  const System mutated = sys.with_priorities(priorities);

  const AnalysisReport warm = engine.run(AnalysisRequest::standard(mutated, {1, 5, 10}));
  Engine cold_engine;
  const AnalysisReport cold = cold_engine.run(AnalysisRequest::standard(mutated, {1, 5, 10}));

  auto answers_json = [](const AnalysisReport& report) {
    AnalysisReport stripped = report;
    stripped.diagnostics = ReportDiagnostics{};
    return to_json(stripped);
  };
  EXPECT_EQ(answers_json(warm), answers_json(cold)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSystemProperties, ::testing::Range(0, 24));

// ---------------------------------------------------------------------------
// Priority-shuffle sweep on the case study (Experiment 2 soundness):
// whatever the priority assignment, the simulator must respect the bounds.
// ---------------------------------------------------------------------------

class ShuffledCaseStudy : public ::testing::TestWithParam<int> {};

TEST_P(ShuffledCaseStudy, SimulationRespectsAnalysisBounds) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 524287 + 1);
  const System sys = gen::with_random_priorities(
      case_studies::date17_case_study(case_studies::OverloadModel::kRareOverload), rng);
  TwcaAnalyzer analyzer{sys};

  const Time horizon = 80'000;
  std::vector<std::vector<Time>> arrivals;
  for (int c = 0; c < sys.size(); ++c) {
    arrivals.push_back(sim::greedy_arrivals(sys.chain(c).arrival(), 0, horizon));
  }
  const sim::SimResult sim = sim::simulate(sys, arrivals);

  for (int c : sys.regular_indices()) {
    const LatencyResult& lat = analyzer.latency(c);
    if (!lat.bounded) continue;
    EXPECT_LE(sim.chains[static_cast<std::size_t>(c)].max_latency, lat.wcl)
        << "chain " << sys.chain(c).name() << " seed " << GetParam();

    // Windowed misses respect the DMM whenever the one-overload-per-busy-
    // window assumption holds on the observed run (checked exactly via
    // Def. 6 busy windows).
    const auto windows = sim::observed_busy_windows(sim.chains[static_cast<std::size_t>(c)]);
    bool assumption_holds = true;
    for (int o : sys.overload_indices()) {
      assumption_holds =
          assumption_holds &&
          sim::at_most_one_arrival_per_window(windows, arrivals[static_cast<std::size_t>(o)]);
    }
    if (assumption_holds) {
      for (Count k : {1, 5, 10}) {
        EXPECT_LE(sim.chains[static_cast<std::size_t>(c)].max_misses_in_window(k),
                  analyzer.dmm(c, k).dmm)
            << "chain " << sys.chain(c).name() << " k=" << k << " seed " << GetParam();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShuffledCaseStudy, ::testing::Range(0, 12));

}  // namespace
}  // namespace wharf
