// Tests for the serve-mode wire protocol (io/wire.hpp): the minimal
// JSON reader, request parsing for every message/delta/query kind,
// response framing, and the TCP transport (cli/serve.hpp) over a real
// loopback socket.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cli/serve.hpp"
#include "dist/client.hpp"
#include "engine/engine.hpp"
#include "io/json.hpp"
#include "io/wire.hpp"
#include "util/strings.hpp"

namespace wharf::io {
namespace {

// ---------------------------------------------------------------------
// JSON reader
// ---------------------------------------------------------------------

TEST(WireJson, ParsesScalarsContainersAndEscapes) {
  const JsonValue v = parse_json(
      R"({"int":-42,"float":2.5,"bool":true,"none":null,)"
      R"("text":"a\"b\\c\ndA","list":[1,2,3],"nested":{"k":[{"x":1}]}})");
  EXPECT_EQ(v.at("int").as_int(), -42);
  EXPECT_DOUBLE_EQ(v.at("float").as_double(), 2.5);
  EXPECT_TRUE(v.at("bool").as_bool());
  EXPECT_TRUE(v.at("none").is_null());
  EXPECT_EQ(v.at("text").as_string(), "a\"b\\c\ndA");
  ASSERT_EQ(v.at("list").items().size(), 3u);
  EXPECT_EQ(v.at("list").items()[2].as_int(), 3);
  EXPECT_EQ(v.at("nested").at("k").items()[0].at("x").as_int(), 1);
  EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(WireJson, RejectsMalformedDocuments) {
  EXPECT_THROW((void)parse_json(""), ParseError);
  EXPECT_THROW((void)parse_json("{"), ParseError);
  EXPECT_THROW((void)parse_json("{\"a\":1,}"), ParseError);
  EXPECT_THROW((void)parse_json("[1 2]"), ParseError);
  EXPECT_THROW((void)parse_json("\"unterminated"), ParseError);
  EXPECT_THROW((void)parse_json("{\"a\":1} trailing"), ParseError);
  EXPECT_THROW((void)parse_json("nul"), ParseError);
  // Malformed numbers are rejected whole, never prefix-truncated.
  EXPECT_THROW((void)parse_json("{\"a\":1.2.3}"), ParseError);
  EXPECT_THROW((void)parse_json("{\"a\":1e2e3}"), ParseError);
  EXPECT_THROW((void)parse_json("{\"a\":--4}"), ParseError);
}

TEST(WireJson, AccessorsEnforceKinds) {
  const JsonValue v = parse_json(R"({"s":"x","n":1.5})");
  EXPECT_THROW((void)v.at("s").as_int(), InvalidArgument);
  EXPECT_THROW((void)v.at("n").as_int(), InvalidArgument);  // not integral
  EXPECT_THROW((void)v.at("s").items(), InvalidArgument);
  EXPECT_THROW((void)v.at("missing"), InvalidArgument);
}

// ---------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------

TEST(WireRequests, ParsesEveryMessageKind) {
  const Expected<WireRequest> open = parse_request(
      R"({"id":7,"type":"open_session","session":"s","system":"system x\nchain a ..."})");
  ASSERT_TRUE(open) << open.status().to_string();
  EXPECT_EQ(open.value().kind, WireKind::kOpenSession);
  EXPECT_EQ(open.value().id, 7);
  EXPECT_TRUE(open.value().has_id);
  EXPECT_EQ(open.value().session, "s");
  EXPECT_EQ(open.value().system_text, "system x\nchain a ...");

  const Expected<WireRequest> deltas = parse_request(
      R"({"type":"apply_delta","session":"s","deltas":[)"
      R"({"kind":"set_priority","task":"a.t","priority":3},)"
      R"({"kind":"set_wcet","task":"a.t","wcet":9},)"
      R"({"kind":"set_deadline","chain":"a","deadline":100},)"
      R"({"kind":"set_deadline","chain":"a","deadline":null},)"
      R"x({"kind":"set_arrival","chain":"a","arrival":"periodic(200)"},)x"
      R"({"kind":"add_chain","chain":"chain z kind=sync activation=periodic(100)\n  task z1 prio=9 wcet=5"},)"
      R"({"kind":"remove_chain","chain":"a"}]})");
  ASSERT_TRUE(deltas) << deltas.status().to_string();
  ASSERT_EQ(deltas.value().deltas.size(), 7u);
  EXPECT_FALSE(deltas.value().has_id);
  EXPECT_EQ(std::get<SetPriorityDelta>(deltas.value().deltas[0]).priority, 3);
  EXPECT_EQ(std::get<SetWcetDelta>(deltas.value().deltas[1]).wcet, 9);
  EXPECT_EQ(std::get<SetDeadlineDelta>(deltas.value().deltas[2]).deadline,
            std::optional<Time>(100));
  EXPECT_FALSE(std::get<SetDeadlineDelta>(deltas.value().deltas[3]).deadline.has_value());
  EXPECT_EQ(std::get<SetArrivalDelta>(deltas.value().deltas[4]).arrival, "periodic(200)");
  EXPECT_EQ(std::get<AddChainDelta>(deltas.value().deltas[5]).chain.name(), "z");
  EXPECT_EQ(std::get<RemoveChainDelta>(deltas.value().deltas[6]).chain, "a");

  const Expected<WireRequest> queries = parse_request(
      R"({"type":"query","session":"s","queries":[)"
      R"({"kind":"latency","chain":"a","without_overload":true},)"
      R"({"kind":"dmm","chain":"a","ks":[1,10]},)"
      R"({"kind":"weakly_hard","chain":"a","m":1,"k":20},)"
      R"({"kind":"simulation","horizon":5000,"seed":3,"cross_validate":false},)"
      R"({"kind":"priority_search","strategy":"random","budget":10,"seed":4},)"
      R"({"kind":"path_latency","chains":["a","b"]},)"
      R"({"kind":"path_dmm","chains":["a","b"],"deadline":300,"budgets":[100,200],"ks":[5]}]})");
  ASSERT_TRUE(queries) << queries.status().to_string();
  ASSERT_EQ(queries.value().queries.size(), 7u);
  EXPECT_TRUE(std::get<LatencyQuery>(queries.value().queries[0]).without_overload);
  EXPECT_EQ(std::get<DmmQuery>(queries.value().queries[1]).ks, (std::vector<Count>{1, 10}));
  EXPECT_EQ(std::get<WeaklyHardQuery>(queries.value().queries[2]).k, 20);
  EXPECT_EQ(std::get<SimulationQuery>(queries.value().queries[3]).horizon, 5000);
  EXPECT_FALSE(std::get<SimulationQuery>(queries.value().queries[3]).cross_validate);
  EXPECT_EQ(std::get<PrioritySearchQuery>(queries.value().queries[4]).strategy,
            PrioritySearchQuery::Strategy::kRandom);
  EXPECT_EQ(std::get<PathLatencyQuery>(queries.value().queries[5]).chains.size(), 2u);
  EXPECT_EQ(std::get<PathDmmQuery>(queries.value().queries[6]).deadline, 300);
  EXPECT_EQ(std::get<PathDmmQuery>(queries.value().queries[6]).budgets,
            (std::vector<Time>{100, 200}));

  for (const char* line : {R"({"type":"diagnostics","session":"s"})",
                           R"({"type":"close","session":"s"})", R"({"type":"shutdown"})"}) {
    const Expected<WireRequest> r = parse_request(line);
    EXPECT_TRUE(r) << line << ": " << r.status().to_string();
  }
}

// ---------------------------------------------------------------------
// TwcaOptions on open_session
// ---------------------------------------------------------------------

TEST(WireOptions, OpenSessionCarriesTwcaOptions) {
  const Expected<WireRequest> r = parse_request(
      R"({"type":"open_session","session":"s","system":"system x",)"
      R"("options":{"criterion":"exact_eq3","max_combinations":1234,"minimal_only":false,)"
      R"("cap_at_k":false,"use_dfs_packer":true,"max_busy_windows":7,)"
      R"("max_fixed_point_iterations":99,"divergence_guard":1000,"naive_arbitrary":true}})");
  ASSERT_TRUE(r) << r.status().to_string();
  const TwcaOptions& o = r.value().options;
  EXPECT_EQ(o.criterion, SchedulabilityCriterion::kExactEq3);
  EXPECT_EQ(o.max_combinations, 1234u);
  EXPECT_FALSE(o.minimal_only);
  EXPECT_FALSE(o.cap_at_k);
  EXPECT_TRUE(o.use_dfs_packer);
  EXPECT_EQ(o.analysis.max_busy_windows, 7);
  EXPECT_EQ(o.analysis.max_fixed_point_iterations, 99);
  EXPECT_EQ(o.analysis.divergence_guard, 1000);
  EXPECT_TRUE(o.analysis.naive_arbitrary);

  // Absent "options" means defaults — every field.
  const Expected<WireRequest> plain =
      parse_request(R"({"type":"open_session","session":"s","system":"system x"})");
  ASSERT_TRUE(plain) << plain.status().to_string();
  const TwcaOptions defaults;
  EXPECT_EQ(plain.value().options.criterion, defaults.criterion);
  EXPECT_EQ(plain.value().options.cap_at_k, defaults.cap_at_k);
  EXPECT_EQ(plain.value().options.analysis.divergence_guard,
            defaults.analysis.divergence_guard);
}

TEST(WireOptions, TwcaOptionsRoundTripThroughTheWire) {
  TwcaOptions options;
  options.criterion = SchedulabilityCriterion::kExactEq3;
  options.max_combinations = 4321;
  options.minimal_only = false;
  options.cap_at_k = false;
  options.use_dfs_packer = true;
  options.analysis.max_busy_windows = 11;
  options.analysis.max_fixed_point_iterations = 22;
  options.analysis.divergence_guard = 3333;
  options.analysis.naive_arbitrary = true;

  std::ostringstream os;
  JsonWriter w(os);
  write_twca_options(w, options);
  const TwcaOptions parsed = parse_twca_options(parse_json(os.str()));
  EXPECT_EQ(parsed.criterion, options.criterion);
  EXPECT_EQ(parsed.max_combinations, options.max_combinations);
  EXPECT_EQ(parsed.minimal_only, options.minimal_only);
  EXPECT_EQ(parsed.cap_at_k, options.cap_at_k);
  EXPECT_EQ(parsed.use_dfs_packer, options.use_dfs_packer);
  EXPECT_EQ(parsed.analysis.max_busy_windows, options.analysis.max_busy_windows);
  EXPECT_EQ(parsed.analysis.max_fixed_point_iterations,
            options.analysis.max_fixed_point_iterations);
  EXPECT_EQ(parsed.analysis.divergence_guard, options.analysis.divergence_guard);
  EXPECT_EQ(parsed.analysis.naive_arbitrary, options.analysis.naive_arbitrary);

  // Defaults round-trip too (the writer emits every field).
  std::ostringstream defaults_os;
  JsonWriter defaults_writer(defaults_os);
  write_twca_options(defaults_writer, TwcaOptions{});
  const TwcaOptions defaults = parse_twca_options(parse_json(defaults_os.str()));
  EXPECT_EQ(defaults.criterion, TwcaOptions{}.criterion);
  EXPECT_EQ(defaults.max_combinations, TwcaOptions{}.max_combinations);
  EXPECT_EQ(defaults.analysis.divergence_guard, TwcaOptions{}.analysis.divergence_guard);
}

TEST(WireOptions, RejectsUnknownOrInvalidOptionFields) {
  const struct {
    const char* line;
  } cases[] = {
      {R"({"type":"open_session","session":"s","system":"x","options":{"frobnicate":1}})"},
      {R"({"type":"open_session","session":"s","system":"x","options":{"criterion":"psychic"}})"},
      {R"({"type":"open_session","session":"s","system":"x","options":{"max_combinations":0}})"},
      {R"({"type":"open_session","session":"s","system":"x","options":{"divergence_guard":-5}})"},
  };
  for (const auto& c : cases) {
    const Expected<WireRequest> r = parse_request(c.line);
    ASSERT_FALSE(r.has_value()) << c.line;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << c.line;
  }
}

TEST(WireRequests, MalformedRequestsAreStatusesNotThrows) {
  const struct {
    const char* line;
    StatusCode code;
  } cases[] = {
      {"not json", StatusCode::kParseError},
      {R"({"type":"frobnicate","session":"s"})", StatusCode::kInvalidArgument},
      {R"({"type":"open_session"})", StatusCode::kInvalidArgument},       // no session
      {R"({"type":"open_session","session":""})", StatusCode::kInvalidArgument},
      {R"({"type":"open_session","session":"s"})", StatusCode::kInvalidArgument},  // no system
      {R"({"type":"apply_delta","session":"s","deltas":[{"kind":"warp"}]})",
       StatusCode::kInvalidArgument},
      {R"({"type":"query","session":"s","queries":[{"kind":"psychic"}]})",
       StatusCode::kInvalidArgument},
      {R"({"type":"query","session":"s","queries":[{"kind":"priority_search","strategy":"quantum"}]})",
       StatusCode::kInvalidArgument},
  };
  for (const auto& c : cases) {
    const Expected<WireRequest> r = parse_request(c.line);
    ASSERT_FALSE(r.has_value()) << c.line;
    EXPECT_EQ(r.status().code(), c.code) << c.line << " -> " << r.status().to_string();
  }
}

TEST(WireRequests, DeadlineAndStreamFieldsParse) {
  const Expected<WireRequest> both = parse_request(
      R"({"id":1,"type":"query","session":"s","deadline_ms":250,"stream":true,)"
      R"("queries":[{"kind":"latency","chain":"c"}]})");
  ASSERT_TRUE(both) << both.status().to_string();
  EXPECT_EQ(both.value().deadline_ms, 250);
  EXPECT_TRUE(both.value().stream);

  // Both default off: an ordinary request has no deadline, no stream.
  const Expected<WireRequest> plain = parse_request(
      R"({"type":"query","session":"s","queries":[{"kind":"latency","chain":"c"}]})");
  ASSERT_TRUE(plain);
  EXPECT_EQ(plain.value().deadline_ms, 0);
  EXPECT_FALSE(plain.value().stream);

  // deadline_ms rides any request kind (it bounds queue time, not work).
  const Expected<WireRequest> close =
      parse_request(R"({"type":"close","session":"s","deadline_ms":5})");
  ASSERT_TRUE(close);
  EXPECT_EQ(close.value().deadline_ms, 5);

  // Zero and negative deadlines are nonsense, not "already expired".
  for (const char* bad :
       {R"({"type":"close","session":"s","deadline_ms":0})",
        R"({"type":"close","session":"s","deadline_ms":-3})"}) {
    const Expected<WireRequest> r = parse_request(bad);
    ASSERT_FALSE(r.has_value()) << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

// ---------------------------------------------------------------------
// Bounded line framing
// ---------------------------------------------------------------------

TEST(WireFraming, LineAssemblerReassemblesAcrossArbitraryChunks) {
  LineAssembler assembler;
  const std::string text = "first line\nsecond\r\n\nlast";
  // Feed one byte at a time — the torture framing of a dribbling client.
  std::vector<std::string> lines;
  std::string line;
  for (const char c : text) {
    assembler.feed(&c, 1);
    while (assembler.next(line) == LineAssembler::Result::kLine) lines.push_back(line);
  }
  // "last" has no newline yet: buffered, not produced.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "first line");
  EXPECT_EQ(lines[1], "second\r");  // '\r' kept; the parser skips it
  EXPECT_EQ(lines[2], "");
  EXPECT_EQ(assembler.buffered(), 4u);
  assembler.feed("!\n", 2);
  ASSERT_EQ(assembler.next(line), LineAssembler::Result::kLine);
  EXPECT_EQ(line, "last!");
  EXPECT_EQ(assembler.next(line), LineAssembler::Result::kNone);
}

TEST(WireFraming, LineAssemblerDiscardsOversizedLinesAndResyncs) {
  LineAssembler assembler(8);
  std::string line;
  // The bound trips mid-line, long before the newline arrives, and the
  // buffer never grows with the discarded bytes.
  const std::string big(1000, 'x');
  assembler.feed(big.data(), big.size());
  ASSERT_EQ(assembler.next(line), LineAssembler::Result::kOversized);
  EXPECT_LE(assembler.buffered(), 8u);
  // Still discarding: more oversized bytes and the terminating newline
  // are swallowed silently, then the next line parses normally.
  assembler.feed(big.data(), big.size());
  EXPECT_EQ(assembler.next(line), LineAssembler::Result::kNone);
  assembler.feed("\nok\n", 4);
  ASSERT_EQ(assembler.next(line), LineAssembler::Result::kLine);
  EXPECT_EQ(line, "ok");

  // An exactly-at-bound line passes; one byte more trips.
  assembler.feed("12345678\n", 9);
  ASSERT_EQ(assembler.next(line), LineAssembler::Result::kLine);
  EXPECT_EQ(line, "12345678");
  assembler.feed("123456789\n", 10);
  ASSERT_EQ(assembler.next(line), LineAssembler::Result::kOversized);
  EXPECT_EQ(assembler.next(line), LineAssembler::Result::kNone);
}

TEST(WireFraming, ReadLineBoundedMirrorsGetlineWithABound) {
  std::istringstream in("short\n" + std::string(100, 'y') + "\nafter\nfinal");
  std::string line;
  bool oversized = false;
  ASSERT_TRUE(read_line_bounded(in, line, 16, oversized));
  EXPECT_EQ(line, "short");
  EXPECT_FALSE(oversized);
  // The oversized line is reported once and discarded to its newline.
  ASSERT_TRUE(read_line_bounded(in, line, 16, oversized));
  EXPECT_TRUE(oversized);
  ASSERT_TRUE(read_line_bounded(in, line, 16, oversized));
  EXPECT_EQ(line, "after");
  EXPECT_FALSE(oversized);
  // An unterminated final line still counts as a read...
  ASSERT_TRUE(read_line_bounded(in, line, 16, oversized));
  EXPECT_EQ(line, "final");
  // ...and EOF with nothing buffered ends the loop.
  EXPECT_FALSE(read_line_bounded(in, line, 16, oversized));
}

TEST(WireFraming, OversizedLineErrorNamesTheBound) {
  const std::string error = oversized_line_error(4096);
  EXPECT_NE(error.find(R"("type":"error")"), std::string::npos);
  EXPECT_NE(error.find("4096-byte protocol bound"), std::string::npos);
}

TEST(WireResponses, FrameEnvelopeAndExtras) {
  WireRequest request;
  request.kind = WireKind::kApplyDelta;
  request.id = 11;
  request.has_id = true;
  request.session = "s1";

  const std::string ok = wire_response(request, Status::ok(), [](JsonWriter& w) {
    w.key("revision");
    w.value(3);
  });
  EXPECT_EQ(ok, R"({"id":11,"type":"apply_delta","session":"s1","status":"ok","revision":3})");

  const std::string error =
      wire_response(request, Status::not_found("unknown session 's1'"));
  EXPECT_EQ(
      error,
      R"({"id":11,"type":"apply_delta","session":"s1","status":"not-found","reason":"unknown session 's1'"})");

  EXPECT_EQ(wire_protocol_error(Status::parse_error("bad line")),
            R"({"type":"error","status":"parse-error","reason":"bad line"})");
}

// ---------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------

/// Sends `payload` to 127.0.0.1:`port`, half-closes, and drains the
/// response until EOF.
std::string roundtrip_tcp(int port, const std::string& payload) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0)
      << std::strerror(errno);

  std::size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n = ::send(fd, payload.data() + sent, payload.size() - sent, 0);
    if (n <= 0) {
      ADD_FAILURE() << "send(): " << std::strerror(errno);
      break;
    }
    sent += static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);

  std::string out;
  char buffer[4096];
  while (true) {
    const ssize_t n = ::read(fd, buffer, sizeof buffer);
    if (n <= 0) break;
    out.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(WireTcp, ListenerServesAConversationAndShutsDown) {
  Engine engine;
  int port = 0;
  const Expected<int> listener = cli::bind_serve_socket(0, port);
  ASSERT_TRUE(listener) << listener.status().to_string();
  ASSERT_GT(port, 0);

  int exit_code = -1;
  std::ostringstream err;
  std::thread server(
      [&] { exit_code = cli::serve_listener(engine, listener.value(), 2, err); });

  const std::string conversation =
      R"({"id":1,"type":"open_session","session":"s","system":"system t\nchain a kind=sync activation=periodic(100) deadline=90\n  task a1 prio=1 wcet=10\n"})"
      "\n"
      R"({"id":2,"type":"query","session":"s","queries":[{"kind":"dmm","chain":"a","ks":[5]}]})"
      "\n"
      R"({"id":3,"type":"shutdown"})"
      "\n";
  const std::string transcript = roundtrip_tcp(port, conversation);
  server.join();

  EXPECT_EQ(exit_code, 0) << err.str();
  std::vector<std::string> lines;
  std::istringstream stream(transcript);
  for (std::string line; std::getline(stream, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u) << transcript;
  EXPECT_NE(lines[0].find(R"("id":1)"), std::string::npos);
  EXPECT_NE(lines[0].find(R"("status":"ok")"), std::string::npos);
  EXPECT_NE(lines[1].find(R"("report":{"system":"t")"), std::string::npos);
  EXPECT_NE(lines[1].find(R"("dmm":0)"), std::string::npos);
  EXPECT_NE(lines[2].find(R"("type":"shutdown","status":"ok")"), std::string::npos);
}

// ---------------------------------------------------------------------
// Evaluate requests (the distributed sweep's wire surface)
// ---------------------------------------------------------------------

TEST(WireRequests, ParsesEvaluateShardUnits) {
  const Expected<WireRequest> r = parse_request(
      R"({"id":4,"type":"evaluate","session":"s","unit":9,"k":7,)"
      R"("candidates":[[1,2,3],[3,2,1]]})");
  ASSERT_TRUE(r) << r.status().to_string();
  EXPECT_EQ(r.value().kind, WireKind::kEvaluate);
  EXPECT_EQ(r.value().unit, 9u);
  EXPECT_EQ(r.value().eval_k, 7);
  ASSERT_EQ(r.value().candidates.size(), 2u);
  EXPECT_EQ(r.value().candidates[1], (std::vector<Priority>{3, 2, 1}));

  // k is optional (the serve-side default applies); the rest is not.
  const Expected<WireRequest> no_k =
      parse_request(R"({"type":"evaluate","session":"s","unit":0,"candidates":[[1]]})");
  ASSERT_TRUE(no_k) << no_k.status().to_string();
  EXPECT_FALSE(parse_request(R"({"type":"evaluate","session":"s","unit":-1,"candidates":[[1]]})")
                   .has_value());
  EXPECT_FALSE(
      parse_request(R"({"type":"evaluate","session":"s","unit":1,"candidates":[]})").has_value());
  EXPECT_FALSE(parse_request(R"({"type":"evaluate","session":"s","unit":1,"k":0,)"
                             R"("candidates":[[1]]})")
                   .has_value());
}

// ---------------------------------------------------------------------
// Error envelopes through the coordinator's worker transport
// ---------------------------------------------------------------------

// The sweep coordinator's client pool (dist::WorkerLink) against a real
// spawned `wharf serve` worker: every way a request can go wrong must
// come back as a structured envelope on the same stream — never a
// closed connection or a desynchronized protocol.
TEST(WireWorkerPool, ErrorEnvelopesFlowThroughTheCoordinatorTransport) {
  wharf::dist::WorkerSpec spec;
  spec.binary = WHARF_BINARY_PATH;
  Expected<wharf::dist::WorkerLink> opened = wharf::dist::WorkerLink::open(spec);
  ASSERT_TRUE(opened) << opened.status().to_string();
  wharf::dist::WorkerLink worker = std::move(opened.value());

  // An unknown request type is a protocol error envelope.
  ASSERT_TRUE(worker.send_line(R"({"id":1,"type":"frobnicate"})"));
  Expected<std::string> unknown = worker.read_line(20000);
  ASSERT_TRUE(unknown) << unknown.status().to_string();
  EXPECT_NE(unknown.value().find(R"("type":"error")"), std::string::npos) << unknown.value();
  EXPECT_NE(unknown.value().find("unknown request type"), std::string::npos) << unknown.value();

  const std::string system_text =
      "system t\nchain a kind=sync activation=periodic(100) deadline=90\n"
      "  task a1 prio=1 wcet=10\n  task a2 prio=2 wcet=10\n";
  ASSERT_TRUE(worker.send_line(
      util::cat(R"({"id":2,"type":"open_session","session":"s","system":")",
                json_escape(system_text), R"("})")));
  Expected<std::string> ack = worker.read_line(20000);
  ASSERT_TRUE(ack) << ack.status().to_string();
  EXPECT_NE(ack.value().find(R"("status":"ok")"), std::string::npos) << ack.value();

  // A malformed shard unit — a candidate whose arity does not match the
  // session's task count — is an evaluate error envelope, request id
  // preserved (that attribution is what lets the coordinator re-issue
  // the unit elsewhere).
  ASSERT_TRUE(worker.send_line(
      R"({"id":3,"type":"evaluate","session":"s","unit":1,"k":5,"candidates":[[1]]})"));
  Expected<std::string> malformed = worker.read_line(20000);
  ASSERT_TRUE(malformed) << malformed.status().to_string();
  EXPECT_NE(malformed.value().find(R"("id":3)"), std::string::npos) << malformed.value();
  EXPECT_NE(malformed.value().find(R"("type":"evaluate")"), std::string::npos)
      << malformed.value();
  EXPECT_EQ(malformed.value().find(R"("status":"ok")"), std::string::npos) << malformed.value();

  // An oversized request line is answered with the bound-naming error
  // envelope...
  ASSERT_TRUE(worker.send_line(std::string(kMaxWireLineBytes + 16, 'x')));
  Expected<std::string> oversized = worker.read_line(20000);
  ASSERT_TRUE(oversized) << oversized.status().to_string();
  EXPECT_NE(oversized.value().find(R"("type":"error")"), std::string::npos)
      << oversized.value();
  EXPECT_NE(oversized.value().find("protocol bound"), std::string::npos) << oversized.value();

  // ...and the stream stays in sync: the next well-formed unit scores
  // normally on the same connection.
  ASSERT_TRUE(worker.send_line(
      R"({"id":4,"type":"evaluate","session":"s","unit":2,"k":5,"candidates":[[2,1]]})"));
  Expected<std::string> scored = worker.read_line(20000);
  ASSERT_TRUE(scored) << scored.status().to_string();
  EXPECT_NE(scored.value().find(R"("status":"ok")"), std::string::npos) << scored.value();
  EXPECT_NE(scored.value().find(R"("unit":2)"), std::string::npos) << scored.value();
  EXPECT_NE(scored.value().find(R"("objectives":[)"), std::string::npos) << scored.value();

  worker.close_fd();
  worker.reap(/*grace_ms=*/5000);
}

}  // namespace
}  // namespace wharf::io
