// Worker-fault battery for the sharded sweep coordinator (dist/): a
// worker SIGKILL'ed mid-unit, a worker that accepts units and never
// answers (deadline-driven re-issue), a worker answering with error
// envelopes (disqualification), a coordinator-side disconnect, and an
// oversized worker response — each asserting the merged report stays
// bit-identical to the 1-worker / in-process oracle.  Plus the
// randomized differential sweep (random systems x worker counts x kill
// schedules) and the periodic-persist regression: a killed worker must
// leave a snapshot its respawn warm-starts from.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cli/serve.hpp"
#include "core/system.hpp"
#include "dist/client.hpp"
#include "dist/coordinator.hpp"
#include "dist/shard.hpp"
#include "engine/engine.hpp"
#include "engine/store_persist.hpp"
#include "gen/random_systems.hpp"
#include "io/json.hpp"
#include "io/system_format.hpp"
#include "io/wire.hpp"
#include "search/priority_search.hpp"
#include "tests/support/serve_client.hpp"
#include "util/expect.hpp"
#include "util/strings.hpp"

namespace wharf::dist {
namespace {

// ---------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------

/// Three tasks -> 3! = 6 permutations: small enough that every fault
/// scenario sweeps the full space in milliseconds.
std::string tiny_text() {
  return
      "system tiny\n"
      "chain a kind=sync activation=periodic(100) deadline=90\n"
      "  task a1 prio=1 wcet=10\n"
      "  task a2 prio=2 wcet=10\n"
      "chain b kind=sync activation=periodic(200) deadline=150\n"
      "  task b1 prio=3 wcet=20\n";
}

System tiny_system() { return io::parse_system(tiny_text()); }

WorkerSpec spawn_spec() {
  WorkerSpec spec;
  spec.binary = WHARF_BINARY_PATH;
  return spec;
}

WorkerSpec connect_spec(int port) {
  WorkerSpec spec;
  spec.host = "127.0.0.1";
  spec.port = port;
  return spec;
}

/// The bit-identity assertion every fault scenario ends on: the merged
/// sweep result must equal the sequential oracle field by field.
void expect_identical(const SweepOutcome& outcome, const search::Objective& nominal,
                      const search::SearchResult& oracle) {
  EXPECT_EQ(outcome.nominal.chains_missing, nominal.chains_missing);
  EXPECT_EQ(outcome.nominal.total_dmm, nominal.total_dmm);
  EXPECT_EQ(outcome.nominal.total_wcl, nominal.total_wcl);
  EXPECT_EQ(outcome.result.best_priorities, oracle.best_priorities);
  EXPECT_EQ(outcome.result.best_objective.chains_missing, oracle.best_objective.chains_missing);
  EXPECT_EQ(outcome.result.best_objective.total_dmm, oracle.best_objective.total_dmm);
  EXPECT_EQ(outcome.result.best_objective.total_wcl, oracle.best_objective.total_wcl);
  EXPECT_EQ(outcome.result.evaluations, oracle.evaluations);
}

/// A scratch --store-dir family root with recursive cleanup (worker
/// subdirectories included).
struct TempDir {
  std::string path;
  TempDir() {
    char name[] = "/tmp/wharf_dist_test_XXXXXX";
    const char* made = ::mkdtemp(name);
    EXPECT_NE(made, nullptr);
    path = made == nullptr ? "" : made;
  }
  ~TempDir() {
    if (path.empty()) return;
    std::error_code ignored;
    std::filesystem::remove_all(path, ignored);
  }
};

// ---------------------------------------------------------------------
// Scripted stand-in workers
// ---------------------------------------------------------------------

/// A scripted stand-in worker: a loopback listener whose accepted
/// connection is driven line by line through `on_line` (return "" to
/// stay silent — the hung-worker behavior).  Connections are handled
/// sequentially, matching the coordinator's one-link-per-worker
/// topology (a reconnect arrives only after the previous link died).
class FakeWorker {
 public:
  using Handler = std::function<std::string(const std::string&)>;

  explicit FakeWorker(Handler on_line) : on_line_(std::move(on_line)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
    EXPECT_EQ(::listen(listen_fd_, 4), 0);
    socklen_t len = sizeof addr;
    EXPECT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { serve(); });
  }

  ~FakeWorker() {
    // shutdown() on the listening socket unblocks a parked accept().
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] int port() const { return port_; }

 private:
  void serve() {
    while (true) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      handle(fd);
      ::close(fd);
    }
  }

  void handle(int fd) {
    std::string buffer;
    char chunk[4096];
    while (true) {
      const auto newline = buffer.find('\n');
      if (newline != std::string::npos) {
        const std::string line = buffer.substr(0, newline);
        buffer.erase(0, newline + 1);
        const std::string response = on_line_(line);
        if (!response.empty() && !send_all(fd, response + "\n")) return;
        continue;
      }
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n <= 0) return;  // coordinator closed the link (or it died)
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
  }

  static bool send_all(int fd, const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  Handler on_line_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
};

bool is_open_request(const std::string& line) {
  return line.find("\"type\":\"open_session\"") != std::string::npos;
}

std::string open_ack() {
  return R"({"type":"open_session","session":"sweep","status":"ok"})";
}

/// The correct evaluate response a real worker would send, computed
/// in-process — lets a scripted worker answer truthfully while the test
/// controls *when*.
std::string evaluate_ok(search::Evaluator& evaluator, const std::string& line) {
  const Expected<io::WireRequest> request = io::parse_request(line);
  EXPECT_TRUE(request) << request.status().to_string();
  const std::vector<search::Objective> objectives =
      evaluator.evaluate_many(request.value().candidates);
  std::string out = util::cat(R"({"type":"evaluate","session":"sweep","status":"ok","unit":)",
                              request.value().unit, ",\"objectives\":[");
  for (std::size_t i = 0; i < objectives.size(); ++i) {
    if (i != 0) out += ',';
    out += util::cat("{\"chains_missing\":", objectives[i].chains_missing,
                     ",\"total_dmm\":", objectives[i].total_dmm,
                     ",\"total_wcl\":", objectives[i].total_wcl, "}");
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------
// Shard planning and merging (pure, no processes)
// ---------------------------------------------------------------------

TEST(DistShard, PlanningCutsContiguousDenseUnits) {
  std::vector<std::vector<Priority>> candidates;
  for (Priority p = 1; p <= 10; ++p) candidates.push_back({p});
  const std::vector<WorkUnit> units = plan_units(candidates, 4);
  ASSERT_EQ(units.size(), 3u);  // 4 + 4 + 2
  for (std::size_t i = 0; i < units.size(); ++i) {
    EXPECT_EQ(units[i].id, i + 1);  // ids dense from 1 (0 = nominal)
    EXPECT_EQ(units[i].first, i * 4);
  }
  EXPECT_EQ(units[0].candidates.size(), 4u);
  EXPECT_EQ(units[2].candidates.size(), 2u);
  EXPECT_EQ(units[2].candidates[1], candidates[9]);

  EXPECT_THROW((void)plan_units(candidates, 0), InvalidArgument);
  EXPECT_THROW((void)plan_units({}, 4), InvalidArgument);

  // The default unit size keeps several units per worker and respects
  // the [1, 128] clamp.
  EXPECT_EQ(default_unit_size(4, 8), 1u);
  EXPECT_LE(default_unit_size(1 << 20, 1), 128u);
  const std::size_t size = default_unit_size(1000, 4);
  EXPECT_GE(1000 / size, 4u * 2u);  // enough units that stealing can move work
}

TEST(DistShard, MergeMatchesTheSequentialFoldBitForBit) {
  const System system = tiny_system();
  const std::vector<std::vector<Priority>> candidates = search::exhaustive_candidates(system);
  ASSERT_EQ(candidates.size(), 6u);

  search::EvaluationSpec spec;
  spec.k = 5;
  search::PipelineEvaluator evaluator(system, spec);
  const std::vector<search::Objective> objectives = evaluator.evaluate_many(candidates);
  const search::SearchResult merged = merge_objectives(candidates, objectives);

  const search::SearchResult oracle = search::exhaustive_search(system, spec);
  EXPECT_EQ(merged.best_priorities, oracle.best_priorities);
  EXPECT_EQ(merged.best_objective, oracle.best_objective);
  EXPECT_EQ(merged.evaluations, oracle.evaluations);

  // Size mismatches are contract violations, not silent truncation.
  std::vector<search::Objective> short_table(objectives.begin(), objectives.end() - 1);
  EXPECT_THROW((void)merge_objectives(candidates, short_table), InvalidArgument);
  EXPECT_THROW((void)merge_objectives(candidates, {}), InvalidArgument);
}

// ---------------------------------------------------------------------
// The fault battery (real spawned workers + scripted peers)
// ---------------------------------------------------------------------

TEST(DistFaults, TwoWorkersMatchTheSequentialSearch) {
  const System system = tiny_system();
  const std::vector<std::vector<Priority>> candidates = search::exhaustive_candidates(system);
  search::EvaluationSpec espec;
  espec.k = 5;
  const search::SearchResult oracle = search::exhaustive_search(system, espec);
  const search::Objective nominal = search::evaluate_assignment(system, espec);

  SweepOptions sweep;
  sweep.k = 5;
  sweep.unit_size = 1;
  const std::vector<WorkerSpec> workers(2, spawn_spec());
  const Expected<SweepOutcome> outcome = run_sweep(system, {}, candidates, workers, sweep);
  ASSERT_TRUE(outcome) << outcome.status().to_string();
  expect_identical(outcome.value(), nominal, oracle);
  EXPECT_EQ(outcome.value().telemetry.workers, 2);
  EXPECT_EQ(outcome.value().telemetry.units, 7u);  // nominal + 6 single-candidate units
  EXPECT_EQ(outcome.value().telemetry.worker_deaths, 0);
  EXPECT_EQ(outcome.value().telemetry.protocol_errors, 0);
}

TEST(DistFaults, SigkilledWorkerMidUnitRespawnsAndStaysIdentical) {
  const System system = tiny_system();
  const std::vector<std::vector<Priority>> candidates = search::exhaustive_candidates(system);
  search::EvaluationSpec espec;
  espec.k = 5;
  const search::SearchResult oracle = search::exhaustive_search(system, espec);
  const search::Objective nominal = search::evaluate_assignment(system, espec);

  // One worker, killed after two completed units: the sweep *cannot*
  // finish unless the death is observed, the outstanding units requeue,
  // and the respawn (same store dir -> warm start) picks them back up.
  TempDir store;
  WorkerSpec spec = spawn_spec();
  spec.store_dir = util::cat(store.path, "/worker-0");
  spec.persist_interval_ms = 10;

  SweepOptions sweep;
  sweep.k = 5;
  sweep.unit_size = 1;
  FaultInjection kill;
  kill.kind = FaultInjection::Kind::kKillWorker;
  kill.worker = 0;
  kill.after_units = 2;
  sweep.faults.push_back(kill);

  const Expected<SweepOutcome> outcome = run_sweep(system, {}, candidates, {spec}, sweep);
  ASSERT_TRUE(outcome) << outcome.status().to_string();
  expect_identical(outcome.value(), nominal, oracle);
  EXPECT_GE(outcome.value().telemetry.worker_deaths, 1);
  EXPECT_GE(outcome.value().telemetry.worker_restarts, 1);
  EXPECT_EQ(outcome.value().telemetry.protocol_errors, 0);
}

TEST(DistFaults, CoordinatorSideDisconnectReissuesAndStaysIdentical) {
  const System system = tiny_system();
  const std::vector<std::vector<Priority>> candidates = search::exhaustive_candidates(system);
  search::EvaluationSpec espec;
  espec.k = 5;
  const search::SearchResult oracle = search::exhaustive_search(system, espec);
  const search::Objective nominal = search::evaluate_assignment(system, espec);

  SweepOptions sweep;
  sweep.k = 5;
  sweep.unit_size = 1;
  FaultInjection drop;
  drop.kind = FaultInjection::Kind::kDropConnection;
  drop.worker = 0;
  drop.after_units = 2;
  sweep.faults.push_back(drop);

  const std::vector<WorkerSpec> workers(2, spawn_spec());
  const Expected<SweepOutcome> outcome = run_sweep(system, {}, candidates, workers, sweep);
  ASSERT_TRUE(outcome) << outcome.status().to_string();
  expect_identical(outcome.value(), nominal, oracle);
  // The disconnect is synchronous, so the death is always observed.
  EXPECT_GE(outcome.value().telemetry.worker_deaths, 1);
  EXPECT_GE(outcome.value().telemetry.worker_restarts, 1);
}

TEST(DistFaults, HungWorkerUnitsReissueOnDeadline) {
  const System system = tiny_system();
  const std::vector<std::vector<Priority>> candidates = search::exhaustive_candidates(system);
  search::EvaluationSpec espec;
  espec.k = 5;
  const search::SearchResult oracle = search::exhaustive_search(system, espec);
  const search::Objective nominal = search::evaluate_assignment(system, espec);

  // Worker 0 accepts units and never answers; worker 1 answers
  // correctly but only after a delay far beyond the unit deadline, so
  // the hung worker's units are *provably* incomplete when their
  // deadline fires — the re-issue path, not the steal path, must move
  // them (a steal could only land after worker 1's first slow answer).
  FakeWorker hung([](const std::string& line) {
    return is_open_request(line) ? open_ack() : std::string();
  });
  search::PipelineEvaluator evaluator(system, espec);
  FakeWorker slow([&evaluator](const std::string& line) {
    if (is_open_request(line)) return open_ack();
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    return evaluate_ok(evaluator, line);
  });

  SweepOptions sweep;
  sweep.k = 5;
  sweep.unit_size = 2;
  sweep.unit_deadline_ms = 15;
  const std::vector<WorkerSpec> workers = {connect_spec(hung.port()), connect_spec(slow.port())};
  const Expected<SweepOutcome> outcome = run_sweep(system, {}, candidates, workers, sweep);
  ASSERT_TRUE(outcome) << outcome.status().to_string();
  expect_identical(outcome.value(), nominal, oracle);
  EXPECT_GE(outcome.value().telemetry.reissued_units, 1);
  EXPECT_EQ(outcome.value().telemetry.protocol_errors, 0);
}

TEST(DistFaults, ErrorEnvelopeDisqualifiesTheWorkerWithoutRestart) {
  const System system = tiny_system();
  const std::vector<std::vector<Priority>> candidates = search::exhaustive_candidates(system);
  search::EvaluationSpec espec;
  espec.k = 5;
  const search::SearchResult oracle = search::exhaustive_search(system, espec);
  const search::Objective nominal = search::evaluate_assignment(system, espec);

  // Worker 0 answers every unit with an error envelope; its first
  // answer must disqualify it (no restart — the process is alive but
  // unusable) and its units must complete on the healthy worker.
  int faulty_connections = 0;
  FakeWorker faulty([&faulty_connections](const std::string& line) -> std::string {
    if (is_open_request(line)) {
      ++faulty_connections;
      return open_ack();
    }
    return R"({"type":"evaluate","session":"sweep","status":"invalid-argument",)"
           R"("reason":"scripted evaluation fault"})";
  });

  SweepOptions sweep;
  sweep.k = 5;
  sweep.unit_size = 1;
  const std::vector<WorkerSpec> workers = {connect_spec(faulty.port()), spawn_spec()};
  const Expected<SweepOutcome> outcome = run_sweep(system, {}, candidates, workers, sweep);
  ASSERT_TRUE(outcome) << outcome.status().to_string();
  expect_identical(outcome.value(), nominal, oracle);
  EXPECT_GE(outcome.value().telemetry.protocol_errors, 1);
  EXPECT_GE(outcome.value().telemetry.worker_deaths, 1);
  EXPECT_EQ(outcome.value().telemetry.worker_restarts, 0);  // disqualified, never retried
  EXPECT_EQ(faulty_connections, 1);                         // and never reconnected
}

TEST(DistFaults, OversizedWorkerResponseDisqualifies) {
  const System system = tiny_system();
  const std::vector<std::vector<Priority>> candidates = search::exhaustive_candidates(system);
  search::EvaluationSpec espec;
  espec.k = 5;
  const search::SearchResult oracle = search::exhaustive_search(system, espec);
  const search::Objective nominal = search::evaluate_assignment(system, espec);

  // A worker whose evaluate "answer" blows the protocol line bound is a
  // protocol fault like any other: disqualify, re-issue elsewhere.
  FakeWorker shouty([](const std::string& line) -> std::string {
    if (is_open_request(line)) return open_ack();
    return std::string(io::kMaxWireLineBytes + 16, 'x');
  });

  SweepOptions sweep;
  sweep.k = 5;
  sweep.unit_size = 1;
  const std::vector<WorkerSpec> workers = {connect_spec(shouty.port()), spawn_spec()};
  const Expected<SweepOutcome> outcome = run_sweep(system, {}, candidates, workers, sweep);
  ASSERT_TRUE(outcome) << outcome.status().to_string();
  expect_identical(outcome.value(), nominal, oracle);
  EXPECT_GE(outcome.value().telemetry.protocol_errors, 1);
}

TEST(DistFaults, AllWorkersLostFailsWithResourceExhaustion) {
  const System system = tiny_system();
  const std::vector<std::vector<Priority>> candidates = search::exhaustive_candidates(system);

  // The only worker disqualifies itself on its first unit: the sweep
  // must come back as a clean non-OK status, never a hang.
  FakeWorker faulty([](const std::string& line) -> std::string {
    if (is_open_request(line)) return open_ack();
    return R"({"type":"error","status":"parse-error","reason":"scripted protocol fault"})";
  });

  SweepOptions sweep;
  sweep.k = 5;
  sweep.unit_size = 1;
  const Expected<SweepOutcome> outcome =
      run_sweep(system, {}, candidates, {connect_spec(faulty.port())}, sweep);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(outcome.status().message().find("units incomplete"), std::string::npos);
}

TEST(DistFaults, UnstartableWorkerBinaryFailsCleanly) {
  const System system = tiny_system();
  const std::vector<std::vector<Priority>> candidates = search::exhaustive_candidates(system);

  WorkerSpec spec;
  spec.binary = "/nonexistent/wharf-worker-binary";
  SweepOptions sweep;
  sweep.k = 5;
  const Expected<SweepOutcome> outcome = run_sweep(system, {}, candidates, {spec}, sweep);
  // exec failure surfaces as instant EOF: the restart budget burns down
  // and the sweep reports exhaustion instead of spinning forever.
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------
// Randomized differential sweep
// ---------------------------------------------------------------------

TEST(DistDifferential, RandomSystemsWorkerCountsAndKillSchedules) {
  // One real serve worker pool: an in-process TCP listener every
  // connect-mode worker dials into (reconnects after a drop included).
  Engine engine;
  int port = 0;
  const Expected<int> listener = cli::bind_serve_socket(0, port);
  ASSERT_TRUE(listener) << listener.status().to_string();
  ASSERT_GT(port, 0);
  std::ostringstream err;
  std::thread server([&] { (void)cli::serve_listener(engine, listener.value(), 16, err); });

  constexpr int kSeeds = 50;
  constexpr int kSamples = 8;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    std::mt19937_64 rng(seed * 977);
    gen::RandomSystemSpec spec;
    spec.min_chains = 2;
    spec.max_chains = 3;
    spec.min_tasks = 1;
    spec.max_tasks = 2;
    const System system = gen::random_system(spec, rng, util::cat("diff", seed));
    const std::vector<std::vector<Priority>> candidates =
        search::random_candidates(system, kSamples, seed);

    search::EvaluationSpec espec;
    espec.k = 4;
    const search::SearchResult oracle = search::random_search(system, espec, kSamples, seed);
    const search::Objective nominal = search::evaluate_assignment(system, espec);

    for (const int workers : {1, 2, 4}) {
      SweepOptions sweep;
      sweep.k = 4;
      sweep.unit_size = 1;
      if (workers > 1) {
        // A random kill schedule: 1-2 disconnects at random progress
        // points, against random workers.
        const int drops = 1 + static_cast<int>(rng() % 2);
        for (int f = 0; f < drops; ++f) {
          FaultInjection fault;
          fault.kind = FaultInjection::Kind::kDropConnection;
          fault.worker = static_cast<int>(rng() % static_cast<std::uint64_t>(workers));
          fault.after_units = 1 + rng() % candidates.size();
          sweep.faults.push_back(fault);
        }
        std::sort(sweep.faults.begin(), sweep.faults.end(),
                  [](const FaultInjection& a, const FaultInjection& b) {
                    return a.after_units < b.after_units;
                  });
      }
      const std::vector<WorkerSpec> specs(static_cast<std::size_t>(workers),
                                          connect_spec(port));
      const Expected<SweepOutcome> outcome = run_sweep(system, {}, candidates, specs, sweep);
      ASSERT_TRUE(outcome) << "seed " << seed << ", " << workers
                           << " workers: " << outcome.status().to_string();
      SCOPED_TRACE(util::cat("seed ", seed, ", ", workers, " workers"));
      expect_identical(outcome.value(), nominal, oracle);
    }
  }

  testsupport::ServeClient shutdown(port,
                                    [](const std::string& m) { ADD_FAILURE() << m; });
  (void)shutdown.roundtrip(R"({"id":1,"type":"shutdown"})");
  server.join();
}

// ---------------------------------------------------------------------
// Periodic persist regression
// ---------------------------------------------------------------------

// Regression: Engine::persist() used to run only on graceful shutdown,
// so a SIGKILL'ed worker left nothing behind and its respawn started
// cold.  With the periodic persist thread, a killed worker's store dir
// must already hold a snapshot, and the respawned worker must report a
// warm start (persisted_artifacts > 0) through diagnostics.
TEST(DistPersist, SigkilledWorkerLeavesASnapshotItsRespawnLoads) {
  TempDir store;
  WorkerSpec spec = spawn_spec();
  spec.store_dir = store.path;
  spec.persist_interval_ms = 20;

  Expected<WorkerLink> opened = WorkerLink::open(spec);
  ASSERT_TRUE(opened) << opened.status().to_string();
  WorkerLink worker = std::move(opened.value());

  const std::string open_line =
      util::cat(R"({"id":1,"type":"open_session","session":"s","system":")",
                io::json_escape(tiny_text()), R"("})");
  ASSERT_TRUE(worker.send_line(open_line));
  Expected<std::string> ack = worker.read_line(20000);
  ASSERT_TRUE(ack) << ack.status().to_string();
  EXPECT_NE(ack.value().find(R"("status":"ok")"), std::string::npos) << ack.value();

  // Score the full permutation set so the store holds artifacts worth
  // snapshotting.
  const System system = tiny_system();
  std::string evaluate =
      R"({"id":2,"type":"evaluate","session":"s","unit":1,"k":5,"candidates":[)";
  const std::vector<std::vector<Priority>> candidates = search::exhaustive_candidates(system);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (i != 0) evaluate += ',';
    evaluate += '[';
    for (std::size_t p = 0; p < candidates[i].size(); ++p) {
      if (p != 0) evaluate += ',';
      evaluate += util::cat(candidates[i][p]);
    }
    evaluate += ']';
  }
  evaluate += "]}";
  ASSERT_TRUE(worker.send_line(evaluate));
  Expected<std::string> scored = worker.read_line(20000);
  ASSERT_TRUE(scored) << scored.status().to_string();
  EXPECT_NE(scored.value().find(R"("status":"ok")"), std::string::npos) << scored.value();

  // The *periodic* persist must write a snapshot while the worker is
  // alive and busy — no shutdown involved.
  const std::string snapshot = store_snapshot_path(store.path);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (::access(snapshot.c_str(), F_OK) != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(::access(snapshot.c_str(), F_OK), 0)
      << "no periodic snapshot appeared at " << snapshot;

  // Crash, not shutdown: SIGKILL skips every graceful persist path.
  worker.kill_now();
  worker.reap(/*grace_ms=*/5000);
  worker.close_fd();

  // The respawn against the same dir must come up warm.
  Expected<WorkerLink> reopened = WorkerLink::open(spec);
  ASSERT_TRUE(reopened) << reopened.status().to_string();
  WorkerLink respawn = std::move(reopened.value());
  ASSERT_TRUE(respawn.send_line(open_line));
  Expected<std::string> reack = respawn.read_line(20000);
  ASSERT_TRUE(reack) << reack.status().to_string();

  ASSERT_TRUE(respawn.send_line(R"({"id":3,"type":"diagnostics","session":"s"})"));
  Expected<std::string> diagnostics = respawn.read_line(20000);
  ASSERT_TRUE(diagnostics) << diagnostics.status().to_string();
  const io::JsonValue doc = io::parse_json(diagnostics.value());
  EXPECT_GT(doc.at("engine_store").at("persisted_artifacts").as_int(), 0)
      << diagnostics.value();
  EXPECT_EQ(doc.at("engine_store").at("load_skipped_corrupt").as_int(), 0)
      << diagnostics.value();

  respawn.close_fd();
  respawn.reap(/*grace_ms=*/5000);
}

}  // namespace
}  // namespace wharf::dist
