// Unit tests for Task/Chain/System construction and validation
// (src/core/{task,chain,system}).

#include <gtest/gtest.h>

#include <algorithm>

#include "core/case_studies.hpp"
#include "core/chain.hpp"
#include "core/system.hpp"
#include "util/expect.hpp"

namespace wharf {
namespace {

Chain::Spec basic_chain(const std::string& name, std::vector<Task> tasks) {
  Chain::Spec spec;
  spec.name = name;
  spec.kind = ChainKind::kSynchronous;
  spec.arrival = periodic(100);
  spec.deadline = 100;
  spec.tasks = std::move(tasks);
  return spec;
}

TEST(Chain, BasicAccessors) {
  const Chain c(basic_chain("sigma", {Task{"t1", 5, 10}, Task{"t2", 3, 20}, Task{"t3", 7, 30}}));
  EXPECT_EQ(c.name(), "sigma");
  EXPECT_EQ(c.size(), 3);
  EXPECT_EQ(c.total_wcet(), 60);
  EXPECT_EQ(c.min_priority(), 3);
  EXPECT_EQ(c.lowest_priority_index(), 1);
  EXPECT_EQ(c.header().name, "t1");
  EXPECT_EQ(c.tail().name, "t3");
  EXPECT_TRUE(c.is_synchronous());
  EXPECT_FALSE(c.is_overload());
}

TEST(Chain, RejectsEmptyTaskList) {
  EXPECT_THROW(Chain(basic_chain("sigma", {})), InvalidArgument);
}

TEST(Chain, RejectsMissingArrival) {
  Chain::Spec spec = basic_chain("sigma", {Task{"t1", 1, 1}});
  spec.arrival = nullptr;
  EXPECT_THROW(Chain(std::move(spec)), InvalidArgument);
}

TEST(Chain, RejectsDuplicateTaskNames) {
  EXPECT_THROW(Chain(basic_chain("sigma", {Task{"t", 1, 1}, Task{"t", 2, 1}})), InvalidArgument);
}

TEST(Chain, RejectsNegativeWcet) {
  EXPECT_THROW(Chain(basic_chain("sigma", {Task{"t", 1, -1}})), InvalidArgument);
}

TEST(Chain, AllowsZeroWcet) {
  EXPECT_NO_THROW(Chain(basic_chain("sigma", {Task{"t", 1, 0}})));
}

TEST(Chain, RejectsNonPositiveDeadline) {
  Chain::Spec spec = basic_chain("sigma", {Task{"t", 1, 1}});
  spec.deadline = 0;
  EXPECT_THROW(Chain(std::move(spec)), InvalidArgument);
}

TEST(Chain, RejectsAsynchronousOverload) {
  Chain::Spec spec = basic_chain("sigma", {Task{"t", 1, 1}});
  spec.overload = true;
  spec.kind = ChainKind::kAsynchronous;
  EXPECT_THROW(Chain(std::move(spec)), InvalidArgument);
}

TEST(Chain, AllowsSynchronousOverloadWithoutDeadline) {
  Chain::Spec spec = basic_chain("sigma", {Task{"t", 1, 1}});
  spec.overload = true;
  spec.deadline.reset();
  const Chain c(std::move(spec));
  EXPECT_TRUE(c.is_overload());
  EXPECT_FALSE(c.deadline().has_value());
}

TEST(ChainKind, ToString) {
  EXPECT_EQ(to_string(ChainKind::kSynchronous), "synchronous");
  EXPECT_EQ(to_string(ChainKind::kAsynchronous), "asynchronous");
}

TEST(System, CaseStudyShape) {
  const System s = case_studies::date17_case_study();
  EXPECT_EQ(s.name(), "date17_case_study");
  EXPECT_EQ(s.size(), 4);
  EXPECT_EQ(s.task_count(), 13);
  EXPECT_EQ(s.chain(case_studies::kSigmaD).name(), "sigma_d");
  EXPECT_EQ(s.chain(case_studies::kSigmaC).name(), "sigma_c");
  EXPECT_EQ(s.chain(case_studies::kSigmaB).name(), "sigma_b");
  EXPECT_EQ(s.chain(case_studies::kSigmaA).name(), "sigma_a");
  EXPECT_EQ(s.overload_indices(), (std::vector<int>{2, 3}));
  EXPECT_EQ(s.regular_indices(), (std::vector<int>{0, 1}));
}

TEST(System, CaseStudyChainData) {
  const System s = case_studies::date17_case_study();
  const Chain& d = s.chain(case_studies::kSigmaD);
  EXPECT_EQ(d.total_wcet(), 115);
  EXPECT_EQ(d.min_priority(), 2);
  EXPECT_EQ(*d.deadline(), 200);
  const Chain& c = s.chain(case_studies::kSigmaC);
  EXPECT_EQ(c.total_wcet(), 51);
  EXPECT_EQ(c.min_priority(), 1);
  const Chain& b = s.chain(case_studies::kSigmaB);
  EXPECT_EQ(b.total_wcet(), 30);
  EXPECT_TRUE(b.is_overload());
  const Chain& a = s.chain(case_studies::kSigmaA);
  EXPECT_EQ(a.total_wcet(), 20);
  EXPECT_TRUE(a.is_overload());
}

TEST(System, CaseStudyUtilization) {
  const System s = case_studies::date17_case_study();
  // 115/200 + 51/200 + 30/600 + 20/700 = 0.575 + 0.255 + 0.05 + 0.02857...
  EXPECT_NEAR(s.utilization(), 0.90857, 1e-4);
  EXPECT_LT(s.utilization(), 1.0);
}

TEST(System, RejectsDuplicatePriorities) {
  std::vector<Chain> chains;
  chains.emplace_back(basic_chain("x", {Task{"t1", 5, 1}}));
  chains.emplace_back(basic_chain("y", {Task{"t2", 5, 1}}));
  EXPECT_THROW(System("bad", std::move(chains)), InvalidArgument);
}

TEST(System, RejectsDuplicateChainNames) {
  std::vector<Chain> chains;
  chains.emplace_back(basic_chain("x", {Task{"t1", 1, 1}}));
  chains.emplace_back(basic_chain("x", {Task{"t2", 2, 1}}));
  EXPECT_THROW(System("bad", std::move(chains)), InvalidArgument);
}

TEST(System, RejectsEmpty) {
  EXPECT_THROW(System("empty", {}), InvalidArgument);
}

TEST(System, ChainIndexLookup) {
  const System s = case_studies::date17_case_study();
  EXPECT_EQ(s.chain_index("sigma_c"), std::optional<int>(1));
  EXPECT_EQ(s.chain_index("nonexistent"), std::nullopt);
}

TEST(System, FindTask) {
  const System s = case_studies::date17_case_study();
  const auto ref = s.find_task("sigma_c.tau3_c");
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(ref->chain, 1);
  EXPECT_EQ(ref->task, 2);
  EXPECT_FALSE(s.find_task("sigma_c.nope").has_value());
  EXPECT_FALSE(s.find_task("nodot").has_value());
  EXPECT_FALSE(s.find_task("bad.tau1_c").has_value());
}

TEST(System, FlatPrioritiesOrder) {
  const System s = case_studies::date17_case_study();
  const std::vector<Priority> p = s.flat_priorities();
  ASSERT_EQ(p.size(), 13u);
  // sigma_d tasks first.
  EXPECT_EQ(p[0], 11);
  EXPECT_EQ(p[4], 2);
  // sigma_c next.
  EXPECT_EQ(p[5], 8);
  EXPECT_EQ(p[7], 1);
  // sigma_b, sigma_a last.
  EXPECT_EQ(p[8], 13);
  EXPECT_EQ(p[11], 4);
  EXPECT_EQ(p[12], 3);
}

TEST(System, WithPrioritiesRoundTrip) {
  const System s = case_studies::date17_case_study();
  const System t = s.with_priorities(s.flat_priorities());
  EXPECT_EQ(t.flat_priorities(), s.flat_priorities());
  EXPECT_EQ(t.size(), s.size());
  EXPECT_EQ(t.chain(1).name(), "sigma_c");
}

TEST(System, WithPrioritiesReassigns) {
  const System s = case_studies::date17_case_study();
  std::vector<Priority> p = s.flat_priorities();
  std::reverse(p.begin(), p.end());
  const System t = s.with_priorities(p);
  EXPECT_EQ(t.flat_priorities(), p);
  // Structure must be preserved.
  EXPECT_EQ(t.chain(0).total_wcet(), s.chain(0).total_wcet());
  EXPECT_EQ(t.chain(2).is_overload(), true);
}

TEST(System, WithPrioritiesRejectsSizeMismatch) {
  const System s = case_studies::date17_case_study();
  EXPECT_THROW(s.with_priorities({1, 2, 3}), InvalidArgument);
}

TEST(System, WithPrioritiesRejectsDuplicates) {
  const System s = case_studies::date17_case_study();
  std::vector<Priority> p = s.flat_priorities();
  p[0] = p[1];
  EXPECT_THROW(s.with_priorities(p), InvalidArgument);
}

TEST(System, FindTaskDegenerateDottedNames) {
  const System s = case_studies::date17_case_study();
  EXPECT_FALSE(s.find_task("").has_value());
  EXPECT_FALSE(s.find_task(".").has_value());
  EXPECT_FALSE(s.find_task("sigma_c.").has_value());     // empty task part
  EXPECT_FALSE(s.find_task(".tau1_c").has_value());      // empty chain part
  EXPECT_FALSE(s.find_task("sigma_c.tau1_c.x").has_value());  // nested dot
  // Task names resolve only within their own chain.
  EXPECT_FALSE(s.find_task("sigma_d.tau1_c").has_value());
}

TEST(System, FindTaskResolvesFirstAndLastTask) {
  const System s = case_studies::date17_case_study();
  const Chain& sigma_c = s.chain(case_studies::kSigmaC);
  const auto head = s.find_task("sigma_c." + sigma_c.header().name);
  const auto tail = s.find_task("sigma_c." + sigma_c.tail().name);
  ASSERT_TRUE(head.has_value());
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(head->chain, case_studies::kSigmaC);
  EXPECT_EQ(head->task, 0);
  EXPECT_EQ(tail->task, sigma_c.size() - 1);
  EXPECT_EQ(*head, (TaskRef{case_studies::kSigmaC, 0}));
}

TEST(System, WithPrioritiesRejectsEmptyVector) {
  const System s = case_studies::date17_case_study();
  EXPECT_THROW(s.with_priorities({}), InvalidArgument);
}

TEST(System, WithPrioritiesPreservesModelStructure) {
  const System s = case_studies::date17_case_study();
  std::vector<Priority> p = s.flat_priorities();
  std::reverse(p.begin(), p.end());
  const System t = s.with_priorities(p);
  EXPECT_EQ(t.name(), s.name());
  EXPECT_EQ(t.size(), s.size());
  for (int c = 0; c < s.size(); ++c) {
    EXPECT_EQ(t.chain(c).name(), s.chain(c).name());
    EXPECT_EQ(t.chain(c).deadline(), s.chain(c).deadline());
    EXPECT_EQ(t.chain(c).is_overload(), s.chain(c).is_overload());
    EXPECT_EQ(t.chain(c).arrival().describe(), s.chain(c).arrival().describe());
  }
  EXPECT_EQ(t.overload_indices(), s.overload_indices());
}

TEST(System, Figure1Shape) {
  const System s = case_studies::figure1_system();
  EXPECT_EQ(s.size(), 2);
  EXPECT_EQ(s.chain(case_studies::kFig1SigmaA).size(), 6);
  EXPECT_EQ(s.chain(case_studies::kFig1SigmaB).size(), 3);
  EXPECT_EQ(s.chain(0).min_priority(), 1);
  EXPECT_EQ(s.chain(1).min_priority(), 3);
}

}  // namespace
}  // namespace wharf
