// Stress tests for the concurrency layer: unlike the deterministic
// single-flight tests, these *force* sustained overlap — latch-slowed
// computes that hold a flight open until every sibling has joined,
// eviction churn against a tiny byte budget with a concurrent stats()
// reader, and a pack of loopback serve clients replaying the same
// conversation at once.  Every stats() snapshot must be coherent (the
// store-wide totals equal the per-stage sums — a torn counter pair
// breaks the equality), and serve answers must stay bit-identical to
// serialized execution.  Run under both the ASan/UBSan and the TSan CI
// jobs (WHARF_SANITIZE=thread).

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/serve.hpp"
#include "core/case_studies.hpp"
#include "engine/artifact_store.hpp"
#include "engine/engine.hpp"
#include "io/json.hpp"
#include "io/system_format.hpp"
#include "tests/support/serve_client.hpp"

namespace wharf {
namespace {

constexpr std::size_t kDmmStage =
    static_cast<std::size_t>(static_cast<int>(ArtifactStage::kDmmCurve));

std::pair<std::shared_ptr<const void>, std::size_t> payload(int value, std::size_t weight) {
  return {std::make_shared<const int>(value), weight};
}

/// The coherence invariant every stats() snapshot must satisfy: the
/// store-wide totals are exactly the per-stage sums, and residency
/// never exceeds the budget.  stats() takes one lock, so any torn
/// update of an (entries, bytes) counter pair shows up here.
void expect_coherent(const ArtifactStore::Stats& stats, std::size_t byte_budget) {
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t evictions = 0;
  for (const ArtifactStore::StageStats& s : stats.stage) {
    entries += s.resident_entries;
    bytes += s.resident_bytes;
    evictions += s.evictions;
    EXPECT_LE(s.evictions, s.insertions);
  }
  EXPECT_EQ(stats.resident_entries, entries);
  EXPECT_EQ(stats.resident_bytes, bytes);
  EXPECT_EQ(stats.evictions, evictions);
  if (byte_budget > 0) {
    EXPECT_LE(stats.resident_bytes, byte_budget);
  }
}

// ---------------------------------------------------------------------
// Forced overlap: every round, N resolvers of one key truly collide
// ---------------------------------------------------------------------

TEST(StoreStress, OverlappedResolvesShareExactlyOncePerRound) {
  ArtifactStore store;
  constexpr int kThreads = 8;
  constexpr int kRounds = 25;

  // A concurrent reader hammers stats() for the whole run: under TSan
  // this races against every insert/evict path, and the coherence
  // checks catch torn counters even without a sanitizer.
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      expect_coherent(store.stats(), store.byte_budget());
      std::this_thread::yield();
    }
  });

  for (int round = 0; round < kRounds; ++round) {
    const std::string key = "round-" + std::to_string(round);
    const std::size_t shared_before = store.stats().stage[kDmmStage].flights_shared;
    std::atomic<int> computes{0};
    std::atomic<int> shared{0};

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        const ArtifactStore::Resolved resolved =
            store.resolve(ArtifactStage::kDmmCurve, key, [&] {
              ++computes;
              // Latch: hold the flight open until every sibling of this
              // round has joined it, so the overlap is forced — the
              // 1-compute / N-1-shared split is exact, not lucky timing.
              while (store.stats().stage[kDmmStage].flights_shared - shared_before <
                     kThreads - 1) {
                std::this_thread::yield();
              }
              return payload(round, sizeof(int));
            });
        shared += resolved.source == ArtifactStore::ResolveSource::kShared;
        EXPECT_EQ(*static_cast<const int*>(resolved.value.get()), round);
      });
    }
    for (std::thread& th : threads) th.join();

    EXPECT_EQ(computes.load(), 1) << "round " << round;
    EXPECT_EQ(shared.load(), kThreads - 1) << "round " << round;
  }

  done.store(true, std::memory_order_release);
  reader.join();

  const ArtifactStore::Stats stats = store.stats();
  expect_coherent(stats, store.byte_budget());
  EXPECT_EQ(stats.stage[kDmmStage].insertions, static_cast<std::size_t>(kRounds));
  EXPECT_EQ(stats.stage[kDmmStage].flights_shared,
            static_cast<std::size_t>(kRounds) * (kThreads - 1));
}

// ---------------------------------------------------------------------
// Eviction churn: a tiny budget under many writers, readers and clear()
// ---------------------------------------------------------------------

TEST(StoreStress, EvictionChurnUnderConcurrentStatsAndClearStaysCoherent) {
  constexpr std::size_t kBudget = 4096;   // holds ~16 entries of weight 256
  constexpr std::size_t kWeight = 256;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 400;
  ArtifactStore store(kBudget);

  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      expect_coherent(store.stats(), kBudget);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Stages interleave so eviction crosses stage boundaries (the LRU
      // list is store-wide); a deliberately small key universe makes
      // writers collide on keys, exercising first-insertion-wins.
      const ArtifactStage stage =
          t % 2 == 0 ? ArtifactStage::kBusyWindow : ArtifactStage::kOverload;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "k" + std::to_string(i % 40);
        switch (i % 4) {
          case 0:
            store.insert(stage, key, payload(i, kWeight).first, kWeight);
            break;
          case 1:
            (void)store.lookup(stage, key);
            break;
          case 2:
            (void)store.resolve(stage, key, [&] { return payload(i, kWeight); });
            break;
          default:
            if (i % 100 == 3 && t == 0) {
              store.clear();  // counters other than residency survive
            } else {
              (void)store.lookup(stage, key);
            }
            break;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  done.store(true, std::memory_order_release);
  reader.join();

  const ArtifactStore::Stats stats = store.stats();
  expect_coherent(stats, kBudget);
  EXPECT_GT(stats.stage[static_cast<std::size_t>(
                            static_cast<int>(ArtifactStage::kBusyWindow))].insertions,
            0u);
  store.clear();
  const ArtifactStore::Stats cleared = store.stats();
  EXPECT_EQ(cleared.resident_entries, 0u);
  EXPECT_EQ(cleared.resident_bytes, 0u);
  expect_coherent(cleared, kBudget);
}

// ---------------------------------------------------------------------
// Serve hammer: a pack of identical clients, answers bit-identical
// ---------------------------------------------------------------------

std::string case_study_text() {
  return io::serialize_system(
      case_studies::date17_case_study(case_studies::OverloadModel::kRareOverload));
}

std::string open_line(int id, const std::string& session) {
  return "{\"id\":" + std::to_string(id) + ",\"type\":\"open_session\",\"session\":\"" +
         session + "\",\"system\":\"" + io::json_escape(case_study_text()) + "\"}";
}

std::string query_line(int id, const std::string& session) {
  return "{\"id\":" + std::to_string(id) + ",\"type\":\"query\",\"session\":\"" + session +
         "\",\"queries\":[{\"kind\":\"dmm\",\"chain\":\"sigma_c\",\"ks\":[3,7,12]},"
         "{\"kind\":\"latency\",\"chain\":\"sigma_c\"},"
         "{\"kind\":\"latency\",\"chain\":\"sigma_d\"}]}";
}

using testsupport::results_of;

TEST(StoreStress, ServeHammerAnswersStayBitIdenticalAcrossClients) {
  // The serialized, nothing-shared reference answer.
  std::vector<std::string> want;
  {
    Engine engine;
    std::istringstream in(open_line(1, "ref") + "\n" + query_line(2, "ref") + "\n");
    std::ostringstream out;
    (void)cli::serve_stream(engine, in, out);
    std::istringstream replies(out.str());
    for (std::string line; std::getline(replies, line);) {
      if (line.find("\"report\":") != std::string::npos) want.push_back(results_of(line));
    }
  }
  ASSERT_EQ(want.size(), 1u);

  Engine engine;
  int port = 0;
  const Expected<int> listener = cli::bind_serve_socket(0, port);
  ASSERT_TRUE(listener) << listener.status().to_string();
  std::ostringstream err;
  // Fewer slots than clients: the pool queues the overflow, so the
  // hammer also stresses the accept-loop condition variable.
  constexpr int kClients = 6;
  std::thread server([&, fd = listener.value()] {
    (void)cli::serve_listener(engine, fd, kClients - 2, err);
  });

  std::vector<std::vector<std::string>> got(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      testsupport::ServeClient client(
          port, [](const std::string& message) { ADD_FAILURE() << message; });
      const std::string session = "s" + std::to_string(c);
      client.send_line(open_line(1, session));
      EXPECT_NE(client.recv_line().find(R"("status":"ok")"), std::string::npos);
      client.send_line(query_line(2, session));
      const std::string reply = client.recv_line();
      if (reply.find("\"report\":") != std::string::npos) {
        got[static_cast<std::size_t>(c)].push_back(results_of(reply));
      }
      client.send_line("{\"id\":3,\"type\":\"close\",\"session\":\"" + session + "\"}");
      (void)client.recv_line();
    });
  }
  for (std::thread& th : clients) th.join();

  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(got[static_cast<std::size_t>(c)], want) << "client " << c;
  }

  // Single-flight across connections: identical sessions insert each
  // busy-window artifact exactly once no matter the interleaving.
  const ArtifactStore::Stats stats = engine.store_stats();
  expect_coherent(stats, ArtifactStore::kDefaultByteBudget);

  testsupport::ServeClient closer(port);
  closer.send_line(R"({"type":"shutdown"})");
  (void)closer.recv_line();
  closer.close();
  server.join();
  EXPECT_TRUE(err.str().empty()) << err.str();
}

}  // namespace
}  // namespace wharf
