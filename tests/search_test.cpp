// Unit tests for priority-assignment synthesis (src/search).

#include <gtest/gtest.h>

#include "core/case_studies.hpp"
#include "search/priority_search.hpp"
#include "util/expect.hpp"

namespace wharf::search {
namespace {

using case_studies::date17_case_study;
using case_studies::OverloadModel;

/// A small system (5 tasks) where exhaustive search is feasible: one
/// two-task chain, one single-task chain, one two-task overload chain.
System small_system() {
  Chain::Spec x;
  x.name = "x";
  x.arrival = periodic(100);
  x.deadline = 60;
  x.tasks = {Task{"x1", 1, 10}, Task{"x2", 2, 15}};
  Chain::Spec y;
  y.name = "y";
  y.arrival = periodic(200);
  y.deadline = 120;
  y.tasks = {Task{"y1", 3, 30}};
  Chain::Spec o;
  o.name = "o";
  o.arrival = sporadic(5'000);
  o.overload = true;
  o.tasks = {Task{"o1", 4, 8}, Task{"o2", 5, 9}};
  return System("small", {Chain(std::move(x)), Chain(std::move(y)), Chain(std::move(o))});
}

TEST(Objective, LexicographicOrder) {
  EXPECT_LT((Objective{0, 5, 100}), (Objective{1, 0, 0}));
  EXPECT_LT((Objective{1, 2, 100}), (Objective{1, 3, 0}));
  EXPECT_LT((Objective{1, 2, 50}), (Objective{1, 2, 60}));
  EXPECT_EQ((Objective{1, 2, 3}), (Objective{1, 2, 3}));
}

TEST(Evaluate, CaseStudyNominal) {
  const System sys = date17_case_study(OverloadModel::kRareOverload);
  const Objective obj = evaluate_assignment(sys, EvaluationSpec{10, {}});
  // sigma_c misses (dmm 3), sigma_d does not; WCL sum 331 + 175.
  EXPECT_EQ(obj.chains_missing, 1);
  EXPECT_EQ(obj.total_dmm, 3);
  EXPECT_EQ(obj.total_wcl, 331 + 175);
}

TEST(Evaluate, ExplicitTargets) {
  const System sys = date17_case_study(OverloadModel::kRareOverload);
  const Objective only_d = evaluate_assignment(sys, EvaluationSpec{10, {case_studies::kSigmaD}});
  EXPECT_EQ(only_d.chains_missing, 0);
  EXPECT_EQ(only_d.total_wcl, 175);
}

TEST(Evaluate, Validation) {
  const System sys = date17_case_study();
  EXPECT_THROW((void)evaluate_assignment(sys, EvaluationSpec{0, {}}), InvalidArgument);
}

TEST(Evaluate, EmptyTargetsDefaultEqualsExplicitEligibleList) {
  // The empty-targets default means "all non-overload chains with a
  // deadline" — spelling that list out must be equivalent.
  const System sys = date17_case_study(OverloadModel::kRareOverload);
  std::vector<int> eligible;
  for (int c : sys.regular_indices()) {
    if (sys.chain(c).deadline().has_value()) eligible.push_back(c);
  }
  ASSERT_FALSE(eligible.empty());
  EXPECT_EQ(evaluate_assignment(sys, EvaluationSpec{10, {}}),
            evaluate_assignment(sys, EvaluationSpec{10, eligible}));
}

/// A system where the default target set is empty: one regular chain
/// without a deadline plus one overload chain.
System no_eligible_chain_system() {
  Chain::Spec r;
  r.name = "r";
  r.arrival = periodic(100);
  r.tasks = {Task{"r1", 1, 5}};
  Chain::Spec o;
  o.name = "o";
  o.arrival = sporadic(1'000);
  o.overload = true;
  o.tasks = {Task{"o1", 2, 3}};
  return System("no_eligible", {Chain(std::move(r)), Chain(std::move(o))});
}

TEST(Evaluate, ZeroEligibleChainsIsInvalidArgumentEverywhere) {
  const System sys = no_eligible_chain_system();
  const EvaluationSpec spec{10, {}};
  EXPECT_THROW((void)evaluate_assignment(sys, spec), InvalidArgument);
  EXPECT_THROW((void)random_search(sys, spec, 5, 1), InvalidArgument);
  EXPECT_THROW((void)hill_climb(sys, spec), InvalidArgument);
  EXPECT_THROW((void)exhaustive_search(sys, spec), InvalidArgument);
}

TEST(ExhaustiveSearch, FindsOptimumOnSmallSystem) {
  const System sys = small_system();
  const SearchResult result = exhaustive_search(sys, EvaluationSpec{5, {}});
  EXPECT_EQ(result.evaluations, 120);  // 5! permutations
  // The optimum must be at least as good as the nominal assignment and
  // as good as any sampled assignment.
  const Objective nominal = evaluate_assignment(sys, EvaluationSpec{5, {}});
  EXPECT_LE(result.best_objective, nominal);
  const SearchResult sampled = random_search(sys, EvaluationSpec{5, {}}, 50, 3);
  EXPECT_LE(result.best_objective, sampled.best_objective);
}

TEST(ExhaustiveSearch, GuardsAgainstFactorialBlowup) {
  const System sys = date17_case_study();  // 13 tasks -> 13! permutations
  EXPECT_THROW(exhaustive_search(sys, EvaluationSpec{5, {}}, 10'000), InvalidArgument);
}

TEST(ExhaustiveSearch, MaxPermutationsGuardIsInclusive) {
  // 5 tasks -> exactly 120 permutations: a budget of 120 must pass, 119
  // must throw before any evaluation happens.
  const System sys = small_system();
  const SearchResult exact = exhaustive_search(sys, EvaluationSpec{5, {}}, 120);
  EXPECT_EQ(exact.evaluations, 120);
  EXPECT_THROW(exhaustive_search(sys, EvaluationSpec{5, {}}, 119), InvalidArgument);
}

TEST(RandomSearch, DeterministicUnderSeed) {
  const System sys = small_system();
  const SearchResult a = random_search(sys, EvaluationSpec{5, {}}, 30, 42);
  const SearchResult b = random_search(sys, EvaluationSpec{5, {}}, 30, 42);
  EXPECT_EQ(a.best_priorities, b.best_priorities);
  EXPECT_EQ(a.best_objective, b.best_objective);
  EXPECT_EQ(a.evaluations, 30);
}

TEST(RandomSearch, BestIsAtLeastAsGoodAsAnySample) {
  const System sys = small_system();
  const SearchResult r = random_search(sys, EvaluationSpec{5, {}}, 40, 9);
  const System best = sys.with_priorities(r.best_priorities);
  EXPECT_EQ(evaluate_assignment(best, EvaluationSpec{5, {}}), r.best_objective);
}

TEST(HillClimb, ReachesExhaustiveOptimumOnSmallSystem) {
  const System sys = small_system();
  const SearchResult exact = exhaustive_search(sys, EvaluationSpec{5, {}});
  HillClimbOptions options;
  options.restarts = 4;
  options.seed = 11;
  const SearchResult climbed = hill_climb(sys, EvaluationSpec{5, {}}, options);
  EXPECT_EQ(climbed.best_objective, exact.best_objective);
}

TEST(HillClimb, ImprovesOnCaseStudy) {
  // The nominal case-study assignment has dmm_c(10)=3; local search finds
  // assignments where both chains always meet their deadlines.
  const System sys = date17_case_study(OverloadModel::kRareOverload);
  HillClimbOptions options;
  options.restarts = 2;
  options.max_steps = 30;
  options.seed = 5;
  const SearchResult result = hill_climb(sys, EvaluationSpec{10, {}}, options);
  const Objective nominal = evaluate_assignment(sys, EvaluationSpec{10, {}});
  EXPECT_LT(result.best_objective, nominal);
  EXPECT_EQ(result.best_objective.chains_missing, 0);
}

TEST(HillClimb, ResultPrioritiesAreAValidPermutation) {
  const System sys = small_system();
  const SearchResult r = hill_climb(sys, EvaluationSpec{5, {}});
  ASSERT_EQ(r.best_priorities.size(), 5u);
  // Applying them must produce a valid system (unique priorities 1..5).
  EXPECT_NO_THROW(sys.with_priorities(r.best_priorities));
}

TEST(HillClimb, Validation) {
  const System sys = small_system();
  HillClimbOptions bad;
  bad.restarts = 0;
  EXPECT_THROW(hill_climb(sys, EvaluationSpec{5, {}}, bad), InvalidArgument);
}

}  // namespace
}  // namespace wharf::search
