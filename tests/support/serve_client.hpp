/// \file serve_client.hpp
/// Shared loopback plumbing for the concurrent-serve test and bench: a
/// minimal blocking NDJSON client over a 127.0.0.1 TCP socket with
/// poll()-guarded reads (a server regression reports an error instead
/// of hanging the harness), plus the answers-only payload extractor the
/// bit-identity comparisons use.  Header-only; no gtest dependency —
/// callers inject error reporting via `on_error`.

#ifndef WHARF_TESTS_SUPPORT_SERVE_CLIENT_HPP
#define WHARF_TESTS_SUPPORT_SERVE_CLIENT_HPP

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <utility>

namespace wharf::testsupport {

/// The per-query "results":[...] payload of a query response line
/// (answers only — diagnostics legitimately differ between warm, cold
/// and concurrent runs, answers never may).
inline std::string results_of(const std::string& response_line) {
  const auto begin = response_line.find("\"results\":");
  const auto end = response_line.find(",\"diagnostics\"");
  if (begin == std::string::npos || end == std::string::npos) return response_line;
  return response_line.substr(begin, end - begin);
}

/// One blocking TCP client connection speaking the serve NDJSON
/// protocol in lockstep (one request line out, one response line in).
class ServeClient {
 public:
  using ErrorHandler = std::function<void(const std::string&)>;

  /// Connects to 127.0.0.1:`port`.  `on_error` (optional) is invoked
  /// with a message on connect/send/recv failures and timeouts.
  explicit ServeClient(int port, ErrorHandler on_error = {})
      : on_error_(std::move(on_error)) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      fail(std::string("socket(): ") + std::strerror(errno));
      return;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
      fail(std::string("connect(): ") + std::strerror(errno));
      ::close(fd_);
      fd_ = -1;
    }
  }

  ~ServeClient() { close(); }

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// True while the socket is usable and no transport error occurred.
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Sends one '\n'-framed request line.
  void send_line(const std::string& line) { send_raw(line + "\n"); }

  /// Sends bytes as-is (no framing — half-request torture scenarios).
  void send_raw(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        fail(std::string("send(): ") + std::strerror(errno));
        return;
      }
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Reads one '\n'-framed response line; reports an error and returns
  /// "" if no complete line arrives within the timeout.
  std::string recv_line(int timeout_ms = 20000) {
    while (true) {
      const auto newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready <= 0) {
        fail("recv_line: timed out waiting for a response line");
        return "";
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n <= 0) {
        fail("recv_line: connection closed by server");
        return "";
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// One lockstep exchange: send a request line, read its response.
  std::string roundtrip(const std::string& line, int timeout_ms = 20000) {
    if (!connected()) return "";
    send_line(line);
    return recv_line(timeout_ms);
  }

  /// Closes the socket immediately; unread responses are discarded
  /// (the mid-request-disconnect torture path).
  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  /// Closes with SO_LINGER 0 — an abortive RST instead of a FIN, so the
  /// server's next write to this connection fails rather than vanishing
  /// into a half-closed socket.
  void abort_close() {
    if (fd_ < 0) return;
    linger hard{1, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &hard, sizeof hard);
    close();
  }

 private:
  void fail(const std::string& message) {
    if (on_error_) on_error_(message);
  }

  int fd_ = -1;
  std::string buffer_;
  ErrorHandler on_error_;
};

}  // namespace wharf::testsupport

#endif  // WHARF_TESTS_SUPPORT_SERVE_CLIENT_HPP
