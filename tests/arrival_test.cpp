// Unit tests for arrival models (src/core/arrival): exact values per
// model, the eta/delta duality convention, and parse/describe round-trips.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/arrival.hpp"
#include "util/expect.hpp"

namespace wharf {
namespace {

// ---------------------------------------------------------------------------
// Periodic
// ---------------------------------------------------------------------------

TEST(Periodic, EtaPlusMatchesCeil) {
  const auto m = periodic(200);
  EXPECT_EQ(m->eta_plus(0), 0);
  EXPECT_EQ(m->eta_plus(-5), 0);
  EXPECT_EQ(m->eta_plus(1), 1);
  EXPECT_EQ(m->eta_plus(200), 1);  // paper-calibrated convention (DESIGN.md)
  EXPECT_EQ(m->eta_plus(201), 2);
  EXPECT_EQ(m->eta_plus(331), 2);
  EXPECT_EQ(m->eta_plus(400), 2);
  EXPECT_EQ(m->eta_plus(401), 3);
}

TEST(Periodic, EtaMinusMatchesFloor) {
  const auto m = periodic(200);
  EXPECT_EQ(m->eta_minus(0), 0);
  EXPECT_EQ(m->eta_minus(199), 0);
  EXPECT_EQ(m->eta_minus(200), 1);
  EXPECT_EQ(m->eta_minus(401), 2);
}

TEST(Periodic, Deltas) {
  const auto m = periodic(200);
  EXPECT_EQ(m->delta_minus(1), 0);
  EXPECT_EQ(m->delta_minus(2), 200);
  EXPECT_EQ(m->delta_minus(5), 800);
  EXPECT_EQ(m->delta_plus(2), 200);
  EXPECT_EQ(m->delta_plus(5), 800);
  EXPECT_EQ(m->delta_minus(0), 0);
}

TEST(Periodic, InfiniteWindow) {
  const auto m = periodic(200);
  EXPECT_EQ(m->eta_plus(kTimeInfinity), kCountInfinity);
}

TEST(Periodic, RateAndDescribe) {
  const auto m = periodic(200);
  EXPECT_DOUBLE_EQ(m->rate_upper(), 1.0 / 200.0);
  EXPECT_EQ(m->describe(), "periodic(200)");
}

TEST(Periodic, RejectsBadPeriod) {
  EXPECT_THROW(periodic(0), InvalidArgument);
  EXPECT_THROW(periodic(-3), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Sporadic
// ---------------------------------------------------------------------------

TEST(Sporadic, CaseStudyValues) {
  const auto a = sporadic(700);
  EXPECT_EQ(a->eta_plus(731), 2);    // Table II, k=3 window
  EXPECT_EQ(a->eta_plus(15331), 22); // literal model, k=76 window
  EXPECT_EQ(a->delta_minus(2), 700);
  EXPECT_EQ(a->delta_minus(3), 1400);
  EXPECT_EQ(a->delta_plus(2), kTimeInfinity);
  EXPECT_EQ(a->delta_plus(1), 0);
  EXPECT_EQ(a->eta_minus(100000), 0);
}

TEST(Sporadic, Describe) { EXPECT_EQ(sporadic(700)->describe(), "sporadic(700)"); }

// ---------------------------------------------------------------------------
// Periodic with jitter
// ---------------------------------------------------------------------------

TEST(PeriodicJitter, EtaPlus) {
  const auto m = periodic_jitter(100, 30, 5);
  // min(ceil((dt+30)/100), ceil(dt/5))
  EXPECT_EQ(m->eta_plus(0), 0);
  EXPECT_EQ(m->eta_plus(1), 1);
  EXPECT_EQ(m->eta_plus(10), 1);   // ceil(40/100)=1 limits
  EXPECT_EQ(m->eta_plus(71), 2);   // ceil(101/100)=2, ceil(71/5)=15
  EXPECT_EQ(m->eta_plus(170), 2);
  EXPECT_EQ(m->eta_plus(171), 3);
}

TEST(PeriodicJitter, Deltas) {
  const auto m = periodic_jitter(100, 30, 5);
  EXPECT_EQ(m->delta_minus(2), 70);   // max(5, 100-30)
  EXPECT_EQ(m->delta_minus(3), 170);
  EXPECT_EQ(m->delta_plus(2), 130);
  EXPECT_EQ(m->delta_plus(3), 230);
}

TEST(PeriodicJitter, LargeJitterBurst) {
  const auto m = periodic_jitter(100, 250, 2);
  // Jitter larger than two periods: short windows limited by
  // min_distance only: delta_minus(q) = max((q-1)*2, (q-1)*100 - 250).
  EXPECT_EQ(m->delta_minus(2), 2);
  EXPECT_EQ(m->delta_minus(3), 4);
}

TEST(PeriodicJitter, LargeJitterDeltaMinusExact) {
  const auto m = periodic_jitter(100, 250, 2);
  EXPECT_EQ(m->delta_minus(3), 4);
  EXPECT_EQ(m->delta_minus(4), 50);   // max(6, 300-250) = 50
  EXPECT_EQ(m->delta_minus(5), 150);  // max(8, 400-250) = 150
}

TEST(PeriodicJitter, EtaMinus) {
  const auto m = periodic_jitter(100, 30, 5);
  EXPECT_EQ(m->eta_minus(30), 0);
  EXPECT_EQ(m->eta_minus(130), 1);
  EXPECT_EQ(m->eta_minus(229), 1);
  EXPECT_EQ(m->eta_minus(230), 2);
}

TEST(PeriodicJitter, Validation) {
  EXPECT_THROW(periodic_jitter(100, -1, 1), InvalidArgument);
  EXPECT_THROW(periodic_jitter(100, 0, 0), InvalidArgument);
  EXPECT_THROW(periodic_jitter(100, 0, 101), InvalidArgument);
  EXPECT_NO_THROW(periodic_jitter(100, 0, 100));
}

TEST(PeriodicJitter, ZeroJitterEqualsPeriodic) {
  const auto j = periodic_jitter(150, 0, 1);
  const auto p = periodic(150);
  for (Time dt : {0, 1, 149, 150, 151, 300, 301, 1000}) {
    EXPECT_EQ(j->eta_plus(dt), p->eta_plus(dt)) << "dt=" << dt;
  }
  for (Count q = 1; q <= 10; ++q) {
    EXPECT_EQ(j->delta_minus(q), p->delta_minus(q)) << "q=" << q;
  }
}

// ---------------------------------------------------------------------------
// Delta curve (rare overload)
// ---------------------------------------------------------------------------

TEST(DeltaCurve, RareOverloadCalibration) {
  // The curve that reproduces Table II exactly (see DESIGN.md §3).
  const auto m = delta_curve({700, 15200, 50000}, 35000);
  EXPECT_EQ(m->delta_minus(1), 0);
  EXPECT_EQ(m->delta_minus(2), 700);
  EXPECT_EQ(m->delta_minus(3), 15200);
  EXPECT_EQ(m->delta_minus(4), 50000);
  EXPECT_EQ(m->delta_minus(5), 85000);
  EXPECT_EQ(m->delta_minus(6), 120000);

  EXPECT_EQ(m->eta_plus(700), 1);
  EXPECT_EQ(m->eta_plus(701), 2);
  EXPECT_EQ(m->eta_plus(731), 2);     // k=3 window -> Omega 3
  EXPECT_EQ(m->eta_plus(15131), 2);   // k=75 window -> dmm stays 3
  EXPECT_EQ(m->eta_plus(15331), 3);   // k=76 window -> dmm 4 (paper breakpoint)
  EXPECT_EQ(m->eta_plus(49931), 3);   // k=249
  EXPECT_EQ(m->eta_plus(50131), 4);   // k=250 -> dmm 5 (paper breakpoint)
  EXPECT_EQ(m->eta_plus(85001), 5);
}

TEST(DeltaCurve, TailExtrapolation) {
  const auto m = delta_curve({10}, 100);
  EXPECT_EQ(m->delta_minus(2), 10);
  EXPECT_EQ(m->delta_minus(3), 110);
  EXPECT_EQ(m->delta_minus(12), 1010);
  EXPECT_EQ(m->eta_plus(10), 1);
  EXPECT_EQ(m->eta_plus(11), 2);
  EXPECT_EQ(m->eta_plus(110), 2);
  EXPECT_EQ(m->eta_plus(111), 3);
  EXPECT_EQ(m->eta_plus(1011), 12);
}

TEST(DeltaCurve, BurstOfSimultaneousArrivals) {
  // delta_minus(2) = 0: two activations may coincide.
  const auto m = delta_curve({0, 50}, 50);
  EXPECT_EQ(m->eta_plus(1), 2);
  EXPECT_EQ(m->eta_plus(50), 2);
  EXPECT_EQ(m->eta_plus(51), 3);
}

TEST(DeltaCurve, Validation) {
  EXPECT_THROW(delta_curve({}, 100), InvalidArgument);
  EXPECT_THROW(delta_curve({100, 50}, 100), InvalidArgument);  // decreasing
  EXPECT_THROW(delta_curve({100}, 0), InvalidArgument);
}

TEST(DeltaCurveWithPlus, BothCurvesServed) {
  // delta_minus: 250, 550, ... slope 300; delta_plus: 350, 650, ... slope 300.
  const auto m = delta_curve_with_plus({250, 550}, 300, {350, 650}, 300);
  EXPECT_EQ(m->delta_minus(2), 250);
  EXPECT_EQ(m->delta_minus(3), 550);
  EXPECT_EQ(m->delta_minus(4), 850);  // one tail step beyond the prefix
  EXPECT_EQ(m->delta_plus(2), 350);
  EXPECT_EQ(m->delta_plus(3), 650);
  EXPECT_EQ(m->delta_plus(4), 950);
  EXPECT_FALSE(is_infinite(m->delta_plus(50)));
}

TEST(DeltaCurveWithPlus, EtaMinusFromPlusCurve) {
  const auto m = delta_curve_with_plus({250, 550}, 300, {350, 650}, 300);
  // eta_minus(dt) = max{q | delta_plus(q+1) <= dt}.
  EXPECT_EQ(m->eta_minus(349), 0);
  EXPECT_EQ(m->eta_minus(350), 1);
  EXPECT_EQ(m->eta_minus(649), 1);
  EXPECT_EQ(m->eta_minus(650), 2);
  EXPECT_EQ(m->eta_minus(950), 3);
}

TEST(DeltaCurveWithPlus, DescribeAndParseRoundTrip) {
  const auto m = delta_curve_with_plus({250, 550}, 300, {350, 650}, 300);
  EXPECT_EQ(m->describe(), "curve(250,550;300|350,650;300)");
  const auto parsed = parse_arrival(m->describe());
  for (Count q = 1; q <= 10; ++q) {
    EXPECT_EQ(parsed->delta_minus(q), m->delta_minus(q));
    EXPECT_EQ(parsed->delta_plus(q), m->delta_plus(q));
  }
  for (Time dt : {0, 349, 350, 650, 5000}) {
    EXPECT_EQ(parsed->eta_minus(dt), m->eta_minus(dt));
    EXPECT_EQ(parsed->eta_plus(dt), m->eta_plus(dt));
  }
}

TEST(DeltaCurveWithPlus, Validation) {
  // plus below minus is rejected.
  EXPECT_THROW(delta_curve_with_plus({250}, 300, {100}, 300), InvalidArgument);
  // plus tail slower than minus tail is rejected (curves would cross).
  EXPECT_THROW(delta_curve_with_plus({250}, 300, {350}, 200), InvalidArgument);
  // decreasing plus prefix rejected.
  EXPECT_THROW(delta_curve_with_plus({10, 20}, 30, {50, 40}, 30), InvalidArgument);
}

TEST(DeltaCurve, SporadicTail) {
  const auto m = delta_curve({700, 15200, 50000}, 35000);
  EXPECT_EQ(m->delta_plus(2), kTimeInfinity);
  EXPECT_EQ(m->eta_minus(1000000), 0);
  EXPECT_DOUBLE_EQ(m->rate_upper(), 1.0 / 35000.0);
}

// ---------------------------------------------------------------------------
// Sporadic burst
// ---------------------------------------------------------------------------

TEST(SporadicBurst, DeltaMinusPacksBursts) {
  // 3 events per 100-tick window, 10 apart inside a burst.
  const auto m = sporadic_burst(100, 3, 10);
  EXPECT_EQ(m->delta_minus(1), 0);
  EXPECT_EQ(m->delta_minus(2), 10);
  EXPECT_EQ(m->delta_minus(3), 20);
  EXPECT_EQ(m->delta_minus(4), 100);
  EXPECT_EQ(m->delta_minus(5), 110);
  EXPECT_EQ(m->delta_minus(7), 200);
}

TEST(SporadicBurst, EtaPlus) {
  const auto m = sporadic_burst(100, 3, 10);
  EXPECT_EQ(m->eta_plus(0), 0);
  EXPECT_EQ(m->eta_plus(1), 1);
  EXPECT_EQ(m->eta_plus(10), 1);
  EXPECT_EQ(m->eta_plus(11), 2);
  EXPECT_EQ(m->eta_plus(21), 3);
  EXPECT_EQ(m->eta_plus(100), 3);
  EXPECT_EQ(m->eta_plus(101), 4);
  EXPECT_EQ(m->eta_plus(111), 5);
  EXPECT_EQ(m->eta_plus(200), 6);
  EXPECT_EQ(m->eta_plus(201), 7);
}

TEST(SporadicBurst, SingleEventBurstEqualsSporadic) {
  const auto b = sporadic_burst(700, 1, 1);
  const auto s = sporadic(700);
  for (Time dt : {0, 1, 700, 701, 1400, 1401, 15331}) {
    EXPECT_EQ(b->eta_plus(dt), s->eta_plus(dt)) << "dt=" << dt;
  }
  for (Count q = 1; q <= 10; ++q) {
    EXPECT_EQ(b->delta_minus(q), s->delta_minus(q)) << "q=" << q;
  }
}

TEST(SporadicBurst, Validation) {
  EXPECT_THROW(sporadic_burst(0, 1, 1), InvalidArgument);
  EXPECT_THROW(sporadic_burst(100, 0, 1), InvalidArgument);
  EXPECT_THROW(sporadic_burst(100, 3, 0), InvalidArgument);
  EXPECT_THROW(sporadic_burst(100, 3, 51), InvalidArgument);  // (3-1)*51 > 100
  EXPECT_NO_THROW(sporadic_burst(100, 3, 50));
}

TEST(SporadicBurst, SporadicSemantics) {
  const auto m = sporadic_burst(100, 3, 10);
  EXPECT_EQ(m->delta_plus(2), kTimeInfinity);
  EXPECT_EQ(m->eta_minus(10'000), 0);
  EXPECT_DOUBLE_EQ(m->rate_upper(), 0.03);
  EXPECT_EQ(m->describe(), "burst(100,3,10)");
}

// ---------------------------------------------------------------------------
// Duality properties (parameterized across models)
// ---------------------------------------------------------------------------

struct ModelCase {
  std::string name;
  ArrivalModelPtr model;
};

class ArrivalDuality : public ::testing::TestWithParam<int> {
 public:
  static std::vector<ModelCase> cases() {
    return {
        {"periodic200", periodic(200)},
        {"periodic7", periodic(7)},
        {"sporadic700", sporadic(700)},
        {"sporadic1", sporadic(1)},
        {"jitter100_30_5", periodic_jitter(100, 30, 5)},
        {"jitter100_250_2", periodic_jitter(100, 250, 2)},
        {"rare", delta_curve({700, 15200, 50000}, 35000)},
        {"burst_curve", delta_curve({0, 0, 90}, 90)},
        {"burst100_3_10", sporadic_burst(100, 3, 10)},
        {"burst700_2_50", sporadic_burst(700, 2, 50)},
    };
  }
};

TEST_P(ArrivalDuality, EtaDeltaConventionHolds) {
  const ModelCase mc = cases()[static_cast<std::size_t>(GetParam())];
  const ArrivalModel& m = *mc.model;
  for (Count q = 1; q <= 40; ++q) {
    const Time d = m.delta_minus(q);
    if (is_infinite(d)) continue;
    // eta_plus(dt) = max{q | delta_minus(q) < dt} implies both bounds:
    EXPECT_LE(m.eta_plus(d), q - 1) << mc.name << " q=" << q;
    EXPECT_GE(m.eta_plus(d + 1), q) << mc.name << " q=" << q;
  }
}

TEST_P(ArrivalDuality, DeltaMinusMonotone) {
  const ModelCase mc = cases()[static_cast<std::size_t>(GetParam())];
  Time prev = 0;
  for (Count q = 1; q <= 60; ++q) {
    const Time d = mc.model->delta_minus(q);
    EXPECT_GE(d, prev) << mc.name << " q=" << q;
    prev = d;
  }
}

TEST_P(ArrivalDuality, EtaPlusMonotone) {
  const ModelCase mc = cases()[static_cast<std::size_t>(GetParam())];
  Count prev = 0;
  for (Time dt = 0; dt <= 2000; dt += 13) {
    const Count e = mc.model->eta_plus(dt);
    EXPECT_GE(e, prev) << mc.name << " dt=" << dt;
    prev = e;
  }
}

TEST_P(ArrivalDuality, EtaMinusNeverExceedsEtaPlus) {
  const ModelCase mc = cases()[static_cast<std::size_t>(GetParam())];
  for (Time dt = 0; dt <= 2000; dt += 17) {
    EXPECT_LE(mc.model->eta_minus(dt), mc.model->eta_plus(dt)) << mc.name << " dt=" << dt;
  }
}

TEST_P(ArrivalDuality, DeltaPlusDominatesDeltaMinus) {
  const ModelCase mc = cases()[static_cast<std::size_t>(GetParam())];
  for (Count q = 1; q <= 40; ++q) {
    EXPECT_GE(mc.model->delta_plus(q), mc.model->delta_minus(q)) << mc.name << " q=" << q;
  }
}

TEST_P(ArrivalDuality, DescribeParsesBack) {
  const ModelCase mc = cases()[static_cast<std::size_t>(GetParam())];
  const ArrivalModelPtr reparsed = parse_arrival(mc.model->describe());
  for (Time dt : {0, 1, 99, 100, 101, 700, 701, 15331, 50131}) {
    EXPECT_EQ(reparsed->eta_plus(dt), mc.model->eta_plus(dt)) << mc.name << " dt=" << dt;
  }
  for (Count q = 1; q <= 12; ++q) {
    EXPECT_EQ(reparsed->delta_minus(q), mc.model->delta_minus(q)) << mc.name << " q=" << q;
    EXPECT_EQ(reparsed->delta_plus(q), mc.model->delta_plus(q)) << mc.name << " q=" << q;
  }
  EXPECT_EQ(reparsed->describe(), mc.model->describe()) << mc.name;
}

INSTANTIATE_TEST_SUITE_P(AllModels, ArrivalDuality,
                         ::testing::Range(0, static_cast<int>(ArrivalDuality::cases().size())));

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(ParseArrival, Forms) {
  EXPECT_EQ(parse_arrival("periodic(200)")->describe(), "periodic(200)");
  EXPECT_EQ(parse_arrival("sporadic(700)")->describe(), "sporadic(700)");
  EXPECT_EQ(parse_arrival("periodic_jitter(100,30,5)")->describe(),
            "periodic_jitter(100,30,5)");
  EXPECT_EQ(parse_arrival("periodic_jitter(100,30)")->describe(), "periodic_jitter(100,30,1)");
  EXPECT_EQ(parse_arrival("curve(700,15200,50000;35000)")->describe(),
            "curve(700,15200,50000;35000)");
  EXPECT_EQ(parse_arrival("burst(100,3,10)")->describe(), "burst(100,3,10)");
  EXPECT_EQ(parse_arrival("  periodic(42)  ")->describe(), "periodic(42)");
}

TEST(ParseArrival, Errors) {
  EXPECT_THROW(parse_arrival(""), InvalidArgument);
  EXPECT_THROW(parse_arrival("periodic"), InvalidArgument);
  EXPECT_THROW(parse_arrival("periodic(x)"), InvalidArgument);
  EXPECT_THROW(parse_arrival("nonsense(5)"), InvalidArgument);
  EXPECT_THROW(parse_arrival("periodic(0)"), InvalidArgument);
  EXPECT_THROW(parse_arrival("curve(700;)"), InvalidArgument);
  EXPECT_THROW(parse_arrival("curve(700)"), InvalidArgument);
  EXPECT_THROW(parse_arrival("periodic_jitter(100)"), InvalidArgument);
  EXPECT_THROW(parse_arrival("burst(100,3)"), InvalidArgument);
  EXPECT_THROW(parse_arrival("burst(100,3,200)"), InvalidArgument);
}

}  // namespace
}  // namespace wharf
