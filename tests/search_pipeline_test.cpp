// Determinism, parity and staleness regression tests for the
// pipeline-backed search layer (src/search + engine/artifact_store):
//
//  * fixed-seed searches produce identical SearchResult (priorities,
//    objective, evaluation count) for any jobs value and for the
//    pipeline-backed vs. the standalone reference backend;
//  * evaluating through a long-lived shared store stays bit-identical
//    to fresh-store evaluation under search-shaped mutation churn
//    (random pairwise swaps), including LRU eviction pressure from a
//    tiny byte budget;
//  * the Engine's PrioritySearchQuery inherits all of the above.

#include <gtest/gtest.h>

#include <random>

#include "core/case_studies.hpp"
#include "engine/engine.hpp"
#include "gen/random_systems.hpp"
#include "search/priority_search.hpp"

namespace wharf::search {
namespace {

using case_studies::date17_case_study;
using case_studies::OverloadModel;

System case_study() { return date17_case_study(OverloadModel::kRareOverload); }

constexpr std::size_t kBusyWindowStage =
    static_cast<std::size_t>(static_cast<int>(ArtifactStage::kBusyWindow));

void expect_same_result(const SearchResult& a, const SearchResult& b, const char* what) {
  EXPECT_EQ(a.best_priorities, b.best_priorities) << what;
  EXPECT_EQ(a.best_objective, b.best_objective) << what;
  EXPECT_EQ(a.evaluations, b.evaluations) << what;
}

TEST(PipelineSearch, HillClimbDeterministicAcrossJobsAndBackends) {
  const System sys = case_study();
  const EvaluationSpec spec{10, {}};
  HillClimbOptions options;
  options.restarts = 2;
  options.max_steps = 4;
  options.seed = 11;

  ReferenceEvaluator reference(sys, spec);
  const SearchResult expected = hill_climb(reference, options);

  for (const int jobs : {1, 4, 16}) {
    ArtifactStore store;
    PipelineEvaluator evaluator(sys, spec, {}, store, jobs);
    const SearchResult got = hill_climb(evaluator, options);
    expect_same_result(got, expected, ("jobs=" + std::to_string(jobs)).c_str());
  }
}

TEST(PipelineSearch, RandomSearchDeterministicAcrossJobsAndBackends) {
  const System sys = case_study();
  const EvaluationSpec spec{10, {}};

  ReferenceEvaluator reference(sys, spec);
  const SearchResult expected = random_search(reference, 40, 42);
  EXPECT_EQ(expected.evaluations, 40);

  for (const int jobs : {1, 4, 16}) {
    ArtifactStore store;
    PipelineEvaluator evaluator(sys, spec, {}, store, jobs);
    const SearchResult got = random_search(evaluator, 40, 42);
    expect_same_result(got, expected, ("jobs=" + std::to_string(jobs)).c_str());
  }
}

TEST(PipelineSearch, ExhaustiveSearchMatchesReferenceBackend) {
  // 5 tasks keep 5! = 120 permutations cheap; the batched pipeline
  // enumeration must visit them in the same order with equal scores.
  Chain::Spec x;
  x.name = "x";
  x.arrival = periodic(100);
  x.deadline = 60;
  x.tasks = {Task{"x1", 1, 10}, Task{"x2", 2, 15}};
  Chain::Spec y;
  y.name = "y";
  y.arrival = periodic(200);
  y.deadline = 120;
  y.tasks = {Task{"y1", 3, 30}};
  Chain::Spec o;
  o.name = "o";
  o.arrival = sporadic(5'000);
  o.overload = true;
  o.tasks = {Task{"o1", 4, 8}, Task{"o2", 5, 9}};
  const System sys("small", {Chain(std::move(x)), Chain(std::move(y)), Chain(std::move(o))});
  const EvaluationSpec spec{5, {}};

  ReferenceEvaluator reference(sys, spec);
  const SearchResult expected = exhaustive_search(reference);

  ArtifactStore store;
  PipelineEvaluator evaluator(sys, spec, {}, store, 4);
  expect_same_result(exhaustive_search(evaluator), expected, "exhaustive");
}

TEST(PipelineSearch, WarmStoreChangesNothingButReusesBusyWindows) {
  // The same hill climb twice on one evaluator: the second run scores
  // every candidate off the warm store — identical result, and >= 50%
  // of its busy-window lookups come back as hits (the acceptance bar of
  // bench_priority_search).
  const System sys = case_study();
  const EvaluationSpec spec{10, {}};
  HillClimbOptions options;
  options.restarts = 1;
  options.max_steps = 3;
  options.seed = 5;

  ArtifactStore store;
  PipelineEvaluator evaluator(sys, spec, {}, store, 1);
  const SearchResult cold = hill_climb(evaluator, options);
  const EvaluatorStats after_cold = evaluator.stats();

  const SearchResult warm = hill_climb(evaluator, options);
  const EvaluatorStats after_warm = evaluator.stats();
  expect_same_result(warm, cold, "warm rerun");

  const StageDiagnostics& cold_bw = after_cold.stages[kBusyWindowStage];
  const std::size_t warm_lookups =
      after_warm.stages[kBusyWindowStage].lookups - cold_bw.lookups;
  const std::size_t warm_hits = after_warm.stages[kBusyWindowStage].hits - cold_bw.hits;
  ASSERT_GT(warm_lookups, 0u);
  EXPECT_GE(warm_hits * 2, warm_lookups);
  // The first pass itself already reuses neighborhoods (a swap leaves
  // most slices untouched), so even cold hits are plentiful.
  EXPECT_GT(cold_bw.hits, 0u);
}

TEST(PipelineSearch, SwapChurnMatchesFreshEvaluationBitForBit) {
  // Search-shaped staleness property: after any sequence of pairwise
  // priority swaps, scoring through the long-lived store must equal a
  // fresh-store evaluation and the standalone reference, field for
  // field.
  gen::RandomSystemSpec gen_spec;
  gen_spec.min_chains = 3;
  gen_spec.max_chains = 4;
  gen_spec.overload_chains = 1;
  std::mt19937_64 rng(7);
  const EvaluationSpec spec{5, {}};

  for (int trial = 0; trial < 3; ++trial) {
    const System base = gen::random_system(gen_spec, rng, "churn");
    ArtifactStore store;
    PipelineEvaluator warm(base, spec, {}, store, 1);
    ReferenceEvaluator reference(base, spec);

    std::vector<Priority> priorities = base.flat_priorities();
    std::uniform_int_distribution<std::size_t> pick(0, priorities.size() - 1);
    for (int step = 0; step < 10; ++step) {
      std::swap(priorities[pick(rng)], priorities[pick(rng)]);
      const Objective through_store = warm.evaluate(priorities);
      PipelineEvaluator fresh(base, spec);
      EXPECT_EQ(through_store, fresh.evaluate(priorities))
          << "trial " << trial << " step " << step;
      EXPECT_EQ(through_store, reference.evaluate(priorities))
          << "trial " << trial << " step " << step;
    }
  }
}

TEST(PipelineSearch, EvictionPressureKeepsResultsExact) {
  // A byte budget far below the churn's working set: artifacts are
  // evicted and recomputed mid-search, results must not move.
  const System sys = case_study();
  const EvaluationSpec spec{10, {}};
  ArtifactStore tiny{/*byte_budget=*/4096};
  PipelineEvaluator squeezed(sys, spec, {}, tiny, 1);
  ReferenceEvaluator reference(sys, spec);

  std::mt19937_64 rng(13);
  std::vector<Priority> priorities = sys.flat_priorities();
  std::uniform_int_distribution<std::size_t> pick(0, priorities.size() - 1);
  for (int step = 0; step < 8; ++step) {
    std::swap(priorities[pick(rng)], priorities[pick(rng)]);
    EXPECT_EQ(squeezed.evaluate(priorities), reference.evaluate(priorities)) << "step " << step;
  }

  const ArtifactStore::Stats stats = tiny.stats();
  EXPECT_LE(stats.resident_bytes, 4096u);
  std::size_t churn = 0;
  for (const ArtifactStore::StageStats& s : stats.stage) churn += s.evictions + s.rejected;
  EXPECT_GT(churn, 0u);
}

TEST(PipelineSearch, EngineSearchAnswersIdenticalAcrossJobs) {
  PrioritySearchQuery query;
  query.strategy = PrioritySearchQuery::Strategy::kHillClimb;
  query.budget = 3;
  query.restarts = 2;
  query.seed = 3;
  const AnalysisRequest request{case_study(), {}, {query}};

  Engine sequential{EngineOptions{1, EngineOptions{}.cache_bytes}};
  Engine parallel{EngineOptions{4, EngineOptions{}.cache_bytes}};
  const AnalysisReport seq = sequential.run(request);
  const AnalysisReport par = parallel.run(request);
  ASSERT_TRUE(seq.results[0].ok());
  ASSERT_TRUE(par.results[0].ok());
  const auto& a = std::get<SearchAnswer>(seq.results[0].answer);
  const auto& b = std::get<SearchAnswer>(par.results[0].answer);
  EXPECT_EQ(a.nominal, b.nominal);
  expect_same_result(a.result, b.result, "engine jobs 1 vs 4");
  // Store telemetry totals (hit/miss/shared split may shift with
  // scheduling, the work actually looked up may not).
  EXPECT_EQ(a.stats.evaluations, b.stats.evaluations);
}

TEST(PipelineSearch, EngineExhaustiveStrategyFindsSmallOptimum) {
  Chain::Spec x;
  x.name = "x";
  x.arrival = periodic(100);
  x.deadline = 60;
  x.tasks = {Task{"x1", 1, 10}, Task{"x2", 2, 15}};
  Chain::Spec y;
  y.name = "y";
  y.arrival = periodic(200);
  y.deadline = 120;
  y.tasks = {Task{"y1", 3, 30}};
  const System sys("tiny", {Chain(std::move(x)), Chain(std::move(y))});

  PrioritySearchQuery query;
  query.strategy = PrioritySearchQuery::Strategy::kExhaustive;
  query.k = 5;
  Engine engine;
  const AnalysisReport report = engine.run(AnalysisRequest{sys, {}, {query}});
  ASSERT_TRUE(report.results[0].ok()) << report.results[0].status.to_string();
  const auto& answer = std::get<SearchAnswer>(report.results[0].answer);
  EXPECT_EQ(answer.result.evaluations, 6);  // 3! permutations
  EXPECT_LE(answer.result.best_objective, answer.nominal);
  EXPECT_GT(report.diagnostics.search_evaluations, 0);

  // The factorial guard surfaces as a status, not a crash.
  PrioritySearchQuery guarded = query;
  guarded.max_permutations = 5;
  const AnalysisReport blocked = engine.run(AnalysisRequest{sys, {}, {guarded}});
  EXPECT_EQ(blocked.results[0].status.code(), StatusCode::kInvalidArgument);
}

TEST(PipelineSearch, EngineSearchOnZeroEligibleChainsIsStatusNotThrow) {
  Chain::Spec r;
  r.name = "r";
  r.arrival = periodic(100);
  r.tasks = {Task{"r1", 1, 5}};  // no deadline
  Chain::Spec o;
  o.name = "o";
  o.arrival = sporadic(1'000);
  o.overload = true;
  o.tasks = {Task{"o1", 2, 3}};
  const System sys("no_eligible", {Chain(std::move(r)), Chain(std::move(o))});

  Engine engine;
  const AnalysisReport report = engine.run(AnalysisRequest{sys, {}, {PrioritySearchQuery{}}});
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_EQ(report.results[0].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(report.diagnostics.queries_failed, 1u);
}

}  // namespace
}  // namespace wharf::search
