// Unit tests for branch & bound ILP and the packing solvers (src/ilp),
// including cross-validation between the ILP path and the DFS path on
// random packing instances.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "ilp/branch_and_bound.hpp"
#include "ilp/packing.hpp"
#include "util/expect.hpp"

namespace wharf::ilp {
namespace {

constexpr double kTol = 1e-6;

Problem make_ilp(std::vector<double> objective) {
  Problem p{lp::Problem(std::move(objective)), {}};
  p.integrality.assign(static_cast<std::size_t>(p.relaxation.num_vars()), true);
  return p;
}

TEST(BranchAndBound, IntegerKnapsack) {
  // max 8x + 11y + 6z st 5x + 7y + 4z <= 14, x,y,z in {0,1}
  // => y + z (obj 17)? Check: x+z: 8+6=14 weight 9; y+z: 17 weight 11; x+y: 19 weight 12 <= 14!
  Problem p = make_ilp({8.0, 11.0, 6.0});
  p.relaxation.add_le({5.0, 7.0, 4.0}, 14.0);
  for (int j = 0; j < 3; ++j) p.relaxation.add_upper_bound(j, 1.0);
  Options options;
  options.objective_is_integral = true;
  const Solution s = solve(p, options);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 19.0, kTol);  // x = y = 1
}

TEST(BranchAndBound, FractionalRelaxationRoundsDown) {
  // max x st 2x <= 3, x integral => x = 1 (relaxation gives 1.5).
  Problem p = make_ilp({1.0});
  p.relaxation.add_le({2.0}, 3.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 1.0, kTol);
  EXPECT_NEAR(s.x[0], 1.0, kTol);
}

TEST(BranchAndBound, MixedIntegerKeepsContinuousFree) {
  // max x + y st x + y <= 2.5, x integral, y continuous.
  Problem p{lp::Problem({1.0, 1.0}), {true, false}};
  p.relaxation.add_le({1.0, 1.0}, 2.5);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 2.5, kTol);
}

TEST(BranchAndBound, Infeasible) {
  Problem p = make_ilp({1.0});
  p.relaxation.add_ge({1.0}, 5.0);
  p.relaxation.add_le({1.0}, 2.0);
  EXPECT_EQ(solve(p).status, Status::kInfeasible);
}

TEST(BranchAndBound, UnboundedDetected) {
  Problem p = make_ilp({1.0});
  const Solution s = solve(p);
  EXPECT_EQ(s.status, Status::kUnbounded);
}

TEST(BranchAndBound, IntegralityMaskSizeChecked) {
  Problem p{lp::Problem({1.0, 1.0}), {true}};
  EXPECT_THROW(solve(p), InvalidArgument);
}

TEST(BranchAndBound, NontrivialGap) {
  // max 5x + 4y st 6x + 4y <= 24, x + 2y <= 6; LP opt at (3, 1.5) = 21;
  // ILP opt is 5*3+4*1 = 19? check (2,2): 18; (4,0): 24 weight>24 no 6*4=24 ok! x=4,y=0: obj 20, 6*4+0=24<=24, 4+0<=6 feasible => 20.
  Problem p = make_ilp({5.0, 4.0});
  p.relaxation.add_le({6.0, 4.0}, 24.0);
  p.relaxation.add_le({1.0, 2.0}, 6.0);
  Options options;
  options.objective_is_integral = true;
  const Solution s = solve(p, options);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 20.0, kTol);
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

TEST(Packing, SingleItemSingleResource) {
  PackingProblem p;
  p.capacities = {3};
  p.item_resources = {{0}};
  EXPECT_EQ(solve_packing_ilp(p).total, 3);
  EXPECT_EQ(solve_packing_dfs(p).total, 3);
}

TEST(Packing, CaseStudyShape) {
  // Table II shape: one unschedulable combination using both overload
  // resources with capacity 3 each => 3 packings.
  PackingProblem p;
  p.capacities = {3, 3};
  p.item_resources = {{0, 1}};
  EXPECT_EQ(solve_packing_ilp(p).total, 3);
  EXPECT_EQ(solve_packing_dfs(p).total, 3);
}

TEST(Packing, DisjointItemsAdd) {
  PackingProblem p;
  p.capacities = {2, 5};
  p.item_resources = {{0}, {1}};
  EXPECT_EQ(solve_packing_ilp(p).total, 7);
  EXPECT_EQ(solve_packing_dfs(p).total, 7);
}

TEST(Packing, SharedResourceLimits) {
  // Items {0},{0,1}: resource 0 capacity 4 shared.
  PackingProblem p;
  p.capacities = {4, 2};
  p.item_resources = {{0}, {0, 1}};
  EXPECT_EQ(solve_packing_ilp(p).total, 4);
  EXPECT_EQ(solve_packing_dfs(p).total, 4);
}

TEST(Packing, ZeroCapacityBlocksItems) {
  PackingProblem p;
  p.capacities = {0, 3};
  p.item_resources = {{0}, {0, 1}, {1}};
  EXPECT_EQ(solve_packing_ilp(p).total, 3);
  EXPECT_EQ(solve_packing_dfs(p).total, 3);
}

TEST(Packing, EmptyProblem) {
  PackingProblem p;
  p.capacities = {1, 2};
  EXPECT_EQ(solve_packing_ilp(p).total, 0);
  EXPECT_EQ(solve_packing_dfs(p).total, 0);
}

TEST(Packing, ValidationRejectsBadResource) {
  PackingProblem p;
  p.capacities = {1};
  p.item_resources = {{1}};
  EXPECT_THROW(validate(p), InvalidArgument);
}

TEST(Packing, ValidationRejectsDuplicateResourceInItem) {
  PackingProblem p;
  p.capacities = {2};
  p.item_resources = {{0, 0}};
  EXPECT_THROW(validate(p), InvalidArgument);
}

TEST(Packing, ValidationRejectsNegativeCapacity) {
  PackingProblem p;
  p.capacities = {-1};
  p.item_resources = {{0}};
  EXPECT_THROW(validate(p), InvalidArgument);
}

TEST(Packing, CountsAreConsistentWithTotal) {
  PackingProblem p;
  p.capacities = {4, 3, 5};
  p.item_resources = {{0, 1}, {1, 2}, {0, 2}, {2}};
  const PackingSolution ilp_sol = solve_packing_ilp(p);
  const PackingSolution dfs_sol = solve_packing_dfs(p);
  EXPECT_EQ(ilp_sol.total, dfs_sol.total);
  Count sum = 0;
  for (Count c : ilp_sol.counts) sum += c;
  EXPECT_EQ(sum, ilp_sol.total);
  // Verify capacity feasibility of the ILP solution.
  std::vector<Count> used(p.capacities.size(), 0);
  for (std::size_t i = 0; i < p.item_resources.size(); ++i) {
    for (int r : p.item_resources[i]) used[static_cast<std::size_t>(r)] += ilp_sol.counts[i];
  }
  for (std::size_t r = 0; r < used.size(); ++r) EXPECT_LE(used[r], p.capacities[r]);
}

class PackingRandomCross : public ::testing::TestWithParam<int> {};

TEST_P(PackingRandomCross, IlpMatchesDfs) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  std::uniform_int_distribution<int> res_count(1, 5);
  std::uniform_int_distribution<int> item_count(1, 6);
  std::uniform_int_distribution<Count> cap(0, 6);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  PackingProblem p;
  const int resources = res_count(rng);
  p.capacities.resize(static_cast<std::size_t>(resources));
  for (Count& c : p.capacities) c = cap(rng);
  const int items = item_count(rng);
  for (int i = 0; i < items; ++i) {
    std::vector<int> used;
    for (int r = 0; r < resources; ++r) {
      if (coin(rng) < 0.5) used.push_back(r);
    }
    if (used.empty()) used.push_back(0);
    p.item_resources.push_back(std::move(used));
  }

  const PackingSolution a = solve_packing_ilp(p);
  const PackingSolution b = solve_packing_dfs(p);
  EXPECT_EQ(a.total, b.total) << "seed " << GetParam();

  // The decomposed solver is exact too, for every worker count, and the
  // work-stealing schedule never changes the assembled solution.
  const PackingSolution split1 = solve_packing_split(p, 1);
  const PackingSolution split4 = solve_packing_split(p, 4);
  EXPECT_EQ(split1.total, a.total) << "seed " << GetParam();
  EXPECT_EQ(split4.total, split1.total) << "seed " << GetParam();
  EXPECT_EQ(split4.counts, split1.counts) << "seed " << GetParam();
  EXPECT_EQ(split4.nodes, split1.nodes) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackingRandomCross, ::testing::Range(0, 60));

// ---------------------------------------------------------------------------
// Partitioned (work-stealing) packing solve
// ---------------------------------------------------------------------------

TEST(PackingPartition, DisjointItemsSplitIntoSingletons) {
  PackingProblem p;
  p.capacities = {2, 3, 4};
  p.item_resources = {{0}, {1}, {2}};
  const PackingPartition partition = partition_packing(p);
  ASSERT_EQ(partition.subproblems.size(), 3u);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(partition.subproblems[s].item_resources.size(), 1u);
    EXPECT_EQ(partition.item_map[s], std::vector<std::size_t>{s});
  }
  // Dense renumbering: each singleton sees exactly its own resource.
  EXPECT_EQ(partition.subproblems[1].capacities, std::vector<Count>{3});
  EXPECT_EQ(partition.subproblems[1].item_resources[0], std::vector<int>{0});
}

TEST(PackingPartition, SharedResourceCouplesTransitively) {
  // 0-1 share r1, 1-2 share r2: one component; 3 is alone.
  PackingProblem p;
  p.capacities = {5, 5, 5, 5};
  p.item_resources = {{0, 1}, {1, 2}, {2}, {3}};
  const PackingPartition partition = partition_packing(p);
  ASSERT_EQ(partition.subproblems.size(), 2u);
  EXPECT_EQ(partition.item_map[0], (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(partition.item_map[1], std::vector<std::size_t>{3});
}

TEST(PackingPartition, SplitSolveMatchesWholeProblem) {
  PackingProblem p;
  p.capacities = {4, 3, 5, 2};
  p.item_resources = {{0, 1}, {1}, {2}, {2, 3}, {3}};
  const PackingSolution whole = solve_packing_ilp(p);
  const PackingSolution split = solve_packing_split(p, 4);
  EXPECT_EQ(split.total, whole.total);
  // Feasibility of the assembled counts.
  std::vector<Count> used(p.capacities.size(), 0);
  for (std::size_t i = 0; i < p.item_resources.size(); ++i) {
    for (int r : p.item_resources[i]) used[static_cast<std::size_t>(r)] += split.counts[i];
  }
  for (std::size_t r = 0; r < used.size(); ++r) EXPECT_LE(used[r], p.capacities[r]);
}

TEST(PackingPartition, SplitHandlesEmptyAndDfs) {
  PackingProblem empty;
  EXPECT_EQ(solve_packing_split(empty, 4).total, 0);

  PackingProblem p;
  p.capacities = {3, 2};
  p.item_resources = {{0}, {1}, {0, 1}};
  EXPECT_EQ(solve_packing_split(p, 2, /*use_dfs=*/true).total, solve_packing_ilp(p).total);
}

}  // namespace
}  // namespace wharf::ilp
