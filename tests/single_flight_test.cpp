// Concurrency tests for the store-level single-flight table
// (ArtifactStore::resolve): N concurrent callers of one absent key must
// run exactly one computation — one miss, N-1 shared joins — with the
// counts exact (not scheduling-dependent), because the compute callback
// can hold its flight open until every sibling has joined.  The same
// guarantee is asserted end-to-end through Engine::run_batch via a
// gated arrival model.  These tests run under the ASan/UBSan CI job
// (WHARF_SANITIZE) like the rest of the suite.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/arrival.hpp"
#include "engine/artifact_store.hpp"
#include "engine/engine.hpp"

namespace wharf {
namespace {

constexpr std::size_t kIlpStage = static_cast<std::size_t>(static_cast<int>(ArtifactStage::kIlp));
constexpr std::size_t kDmmStage =
    static_cast<std::size_t>(static_cast<int>(ArtifactStage::kDmmCurve));

std::pair<std::shared_ptr<const void>, std::size_t> payload(int value) {
  return {std::make_shared<const int>(value), sizeof(int)};
}

std::size_t ilp_flights_shared(const ArtifactStore& store) {
  return store.stats().stage[kIlpStage].flights_shared;
}

TEST(SingleFlight, ExactlyOneComputeAndNMinusOneShares) {
  ArtifactStore store;
  constexpr int kThreads = 4;
  std::atomic<int> computes{0};
  std::array<ArtifactStore::ResolveSource, kThreads> sources{};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const ArtifactStore::Resolved resolved = store.resolve(ArtifactStage::kIlp, "key", [&] {
        ++computes;
        // Hold the flight open until every other thread has joined it:
        // the 1-miss/N-1-shared split below is exact, not a race.
        while (ilp_flights_shared(store) < kThreads - 1) std::this_thread::yield();
        return payload(42);
      });
      sources[static_cast<std::size_t>(t)] = resolved.source;
      EXPECT_EQ(*static_cast<const int*>(resolved.value.get()), 42);
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(computes.load(), 1);
  int computed = 0;
  int shared = 0;
  for (const ArtifactStore::ResolveSource source : sources) {
    computed += source == ArtifactStore::ResolveSource::kComputed;
    shared += source == ArtifactStore::ResolveSource::kShared;
  }
  EXPECT_EQ(computed, 1);
  EXPECT_EQ(shared, kThreads - 1);
  const ArtifactStore::Stats stats = store.stats();
  EXPECT_EQ(stats.stage[kIlpStage].insertions, 1u);
  EXPECT_EQ(stats.stage[kIlpStage].flights_shared, static_cast<std::size_t>(kThreads - 1));
}

TEST(SingleFlight, ResidentArtifactNeverOpensAFlight) {
  ArtifactStore store;
  store.insert(ArtifactStage::kIlp, "key", payload(7).first, 16);
  const ArtifactStore::Resolved resolved = store.resolve(ArtifactStage::kIlp, "key", [&] {
    ADD_FAILURE() << "compute must not run for a resident artifact";
    return payload(0);
  });
  EXPECT_EQ(resolved.source, ArtifactStore::ResolveSource::kResident);
  EXPECT_EQ(*static_cast<const int*>(resolved.value.get()), 7);
  EXPECT_EQ(ilp_flights_shared(store), 0u);
}

TEST(SingleFlight, SequentialResolveComputesThenFindsResident) {
  ArtifactStore store;
  const auto first = store.resolve(ArtifactStage::kIlp, "key", [&] { return payload(3); });
  EXPECT_EQ(first.source, ArtifactStore::ResolveSource::kComputed);
  EXPECT_EQ(first.weight, sizeof(int));
  const auto second = store.resolve(ArtifactStage::kIlp, "key", [&] { return payload(99); });
  EXPECT_EQ(second.source, ArtifactStore::ResolveSource::kResident);
  EXPECT_EQ(*static_cast<const int*>(second.value.get()), 3);
}

TEST(SingleFlight, ComputeErrorReachesEveryWaiterAndRetiresTheFlight) {
  ArtifactStore store;
  std::atomic<bool> flight_open{false};
  std::atomic<int> failures{0};

  std::thread owner([&] {
    EXPECT_THROW(
        (void)store.resolve(ArtifactStage::kIlp, "key",
                            [&]() -> std::pair<std::shared_ptr<const void>, std::size_t> {
                              flight_open = true;
                              while (ilp_flights_shared(store) < 1) std::this_thread::yield();
                              throw std::runtime_error("boom");
                            }),
        std::runtime_error);
    ++failures;
  });
  std::thread waiter([&] {
    // Join only once the owner's flight is provably open, so this
    // thread deterministically shares the failing computation.
    while (!flight_open) std::this_thread::yield();
    EXPECT_THROW((void)store.resolve(ArtifactStage::kIlp, "key", [&] { return payload(1); }),
                 std::runtime_error);
    ++failures;
  });
  owner.join();
  waiter.join();
  EXPECT_EQ(failures.load(), 2);

  // The flight retired with its error: a later resolve computes afresh.
  const auto retry = store.resolve(ArtifactStage::kIlp, "key", [&] { return payload(5); });
  EXPECT_EQ(retry.source, ArtifactStore::ResolveSource::kComputed);
  EXPECT_EQ(*static_cast<const int*>(retry.value.get()), 5);
}

// ---------------------------------------------------------------------------
// End-to-end: N concurrent engine requests of the same candidate
// ---------------------------------------------------------------------------

/// Periodic arrival whose first curve query blocks on `gate`: installing
/// it in a chain lets a test hold the *first* dmm computation open (the
/// flight owner is the only caller that ever computes) until every
/// sibling request has joined that flight.
class GatedPeriodic final : public ArrivalModel {
 public:
  GatedPeriodic(Time period, std::function<void()> gate)
      : inner_(periodic(period)), gate_(std::move(gate)) {}

  Count eta_plus(Time window) const override {
    wait();
    return inner_->eta_plus(window);
  }
  Count eta_minus(Time window) const override {
    wait();
    return inner_->eta_minus(window);
  }
  Time delta_minus(Count q) const override {
    wait();
    return inner_->delta_minus(q);
  }
  Time delta_plus(Count q) const override {
    wait();
    return inner_->delta_plus(q);
  }
  double rate_upper() const override { return inner_->rate_upper(); }
  std::string describe() const override { return inner_->describe(); }

 private:
  void wait() const { std::call_once(once_, gate_); }

  ArrivalModelPtr inner_;
  std::function<void()> gate_;
  mutable std::once_flag once_;
};

TEST(SingleFlight, BatchSiblingsRecordOneMissAndNMinusOneSharedInDiagnostics) {
  constexpr int kRequests = 4;
  Engine engine{EngineOptions{/*jobs=*/kRequests, EngineOptions{}.cache_bytes}};

  // The gate holds the first (and only) dmm computation open until the
  // other kRequests - 1 sibling requests joined its flight.
  Chain::Spec c;
  c.name = "c";
  c.arrival = std::make_shared<GatedPeriodic>(100, [&engine] {
    while (engine.store_stats().stage[kDmmStage].flights_shared <
           static_cast<std::size_t>(kRequests - 1)) {
      std::this_thread::yield();
    }
  });
  c.deadline = 90;
  c.tasks = {Task{"t", 1, 10}};
  const System sys("gated", {Chain(std::move(c))});

  const AnalysisRequest request{sys, {}, {DmmQuery{"c", {5}}}};
  const std::vector<AnalysisRequest> requests(kRequests, request);
  const std::vector<AnalysisReport> reports = engine.run_batch(requests);
  ASSERT_EQ(reports.size(), static_cast<std::size_t>(kRequests));

  std::size_t lookups = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t shared = 0;
  for (const AnalysisReport& report : reports) {
    ASSERT_TRUE(report.results[0].ok()) << report.results[0].status.to_string();
    const StageDiagnostics& dmm = report.diagnostics.stages[kDmmStage];
    lookups += dmm.lookups;
    hits += dmm.hits;
    misses += dmm.misses;
    shared += dmm.shared;
    // Every sibling gets the identical answer.
    const auto& answer = std::get<DmmAnswer>(report.results[0].answer);
    const auto& expected = std::get<DmmAnswer>(reports.front().results[0].answer);
    EXPECT_EQ(answer.curve.front().dmm, expected.curve.front().dmm);
    EXPECT_EQ(answer.curve.front().status, expected.curve.front().status);
  }
  EXPECT_EQ(lookups, static_cast<std::size_t>(kRequests));
  EXPECT_EQ(hits, 0u);
  EXPECT_EQ(misses, 1u);
  EXPECT_EQ(shared, static_cast<std::size_t>(kRequests - 1));
  EXPECT_EQ(engine.store_stats().stage[kDmmStage].flights_shared,
            static_cast<std::size_t>(kRequests - 1));
  EXPECT_EQ(engine.cache_stats().shared, static_cast<std::size_t>(kRequests - 1));
}

}  // namespace
}  // namespace wharf
