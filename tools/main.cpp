// The `wharf` command-line tool; all logic lives in src/cli (testable).

#include "cli/cli.hpp"

int main(int argc, char** argv) { return wharf::cli::run_main(argc, argv); }
