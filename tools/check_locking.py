#!/usr/bin/env python3
"""Locking-discipline checker for wharf's concurrency layer.

Clang's thread-safety analysis (-Wthread-safety) only sees what is
annotated, and std::mutex / the std RAII guards live in system headers
that the analysis exempts — code that uses them silently opts out.
This grep-style gate (no real C++ parsing; comments and string literals
are stripped first) keeps the gated directories honest:

  1. No std synchronization primitives (std::mutex and friends,
     std::condition_variable{,_any}, std::lock_guard / unique_lock /
     scoped_lock / shared_lock).  Use util::Mutex, util::MutexLock and
     util::CondVar (src/util/mutex.hpp), which carry the capability
     annotations the analysis needs.
  2. No naked .lock() / .unlock() calls — locking is RAII-only
     (util::MutexLock), so no path can leak a held mutex.
  3. Every Mutex member must guard something: a file declaring a
     `Mutex foo_;` member must also reference it in at least one
     WHARF_GUARDED_BY / WHARF_PT_GUARDED_BY / WHARF_REQUIRES /
     WHARF_ACQUIRE annotation — an unreferenced mutex means unannotated
     shared state.
  4. No std::thread::detach() — every thread is joined, so TSan and the
     fork-join error contracts see its whole lifetime.

Exempt: src/util/mutex.hpp (the one place allowed to wrap std::mutex)
and src/util/thread_annotations.hpp (macro definitions).  A line ending
in `// locking: <reason>` is exempt from rules 1-2-4 (used for audited
exceptions; none exist today).

Exit 0 when clean; 1 lists offenders as file:line: message.

Usage: check_locking.py DIR [DIR ...]
"""

import os
import re
import sys

EXEMPT_FILES = {
    os.path.join("src", "util", "mutex.hpp"),
    os.path.join("src", "util", "thread_annotations.hpp"),
}

STD_PRIMITIVE_RE = re.compile(
    r"std\s*::\s*(recursive_mutex|timed_mutex|recursive_timed_mutex|shared_mutex"
    r"|shared_timed_mutex|mutex|condition_variable_any|condition_variable"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock)\b")
NAKED_LOCK_RE = re.compile(r"[.\->]\s*(unlock|lock)\s*\(\s*\)")
DETACH_RE = re.compile(r"\.\s*detach\s*\(\s*\)")
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:util\s*::\s*)?Mutex\s+(\w+)\s*;")
SUPPRESS_RE = re.compile(r"//\s*locking:")


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving newlines."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            end = text.find("\n", i)
            end = n if end == -1 else end
            # Keep the suppression marker visible to the rules below.
            comment = text[i:end]
            out.append("// locking:" if SUPPRESS_RE.search(comment) else "")
            i = end
        elif ch == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            out.append("\n" * text.count("\n", i, end))
            i = end
        elif ch in "\"'":
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + quote)
            i = j + 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def check_file(path: str, rel: str):
    with open(path, encoding="utf-8") as handle:
        raw = handle.read()
    code = strip_comments_and_strings(raw)
    lines = code.splitlines()
    failures = []

    mutex_members = []  # (line_number, member_name)
    for number, line in enumerate(lines, start=1):
        suppressed = bool(SUPPRESS_RE.search(line))
        match = STD_PRIMITIVE_RE.search(line)
        if match and not suppressed:
            failures.append((number, f"std::{match.group(1)} is forbidden here; "
                             "use util::Mutex/MutexLock/CondVar (src/util/mutex.hpp) "
                             "so -Wthread-safety sees the capability"))
        if not suppressed:
            for match in NAKED_LOCK_RE.finditer(line):
                failures.append((number, f"naked .{match.group(1)}() call; locking "
                                 "is RAII-only (util::MutexLock)"))
        if DETACH_RE.search(line) and not suppressed:
            failures.append((number, "detached thread; every thread must be joined"))
        member = MUTEX_MEMBER_RE.match(line)
        if member:
            mutex_members.append((number, member.group(1)))

    for number, name in mutex_members:
        used = re.search(
            r"WHARF_(GUARDED_BY|PT_GUARDED_BY|REQUIRES|ACQUIRE|RELEASE|EXCLUDES"
            r"|ASSERT_CAPABILITY)\s*\(\s*" + re.escape(name) + r"\b", code)
        if not used:
            failures.append((number, f"Mutex member '{name}' guards nothing: add "
                             "WHARF_GUARDED_BY/WHARF_REQUIRES annotations naming it"))

    return [(rel, number, message) for number, message in sorted(failures)]


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    root = os.getcwd()
    failures = []
    for directory in argv[1:]:
        for dirpath, _, filenames in os.walk(directory):
            for filename in sorted(filenames):
                if not filename.endswith((".hpp", ".cpp", ".h", ".cc")):
                    continue
                path = os.path.join(dirpath, filename)
                rel = os.path.relpath(path, root)
                if rel in EXEMPT_FILES:
                    continue
                failures.extend(check_file(path, rel))
    for rel, number, message in failures:
        print(f"{rel}:{number}: {message}")
    if failures:
        print(f"\n{len(failures)} locking-discipline violation(s).")
        return 1
    print("locking discipline: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
