#!/usr/bin/env python3
"""Markdown link checker for README.md and docs/.

Verifies every [text](target) link in the given markdown files:
  * relative file targets exist (resolved against the file's directory);
  * #anchors (same-file or cross-file into another checked .md) match a
    heading, using GitHub's slugification;
  * http(s) targets are accepted without network access.

Exit 0 when every link resolves, 1 otherwise (all failures listed).

Usage: check_markdown_links.py FILE.md [FILE.md ...]
"""

import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: drop markup, lowercase, strip punctuation
    (keeping word characters, spaces and hyphens), spaces -> hyphens."""
    text = heading.strip()
    text = text.replace("`", "")  # inline code markup does not reach the slug
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def parse_markdown(path: str):
    """Returns (links, anchors): links as (line_number, target), anchors
    as the set of heading slugs.  Fenced code blocks are skipped."""
    links = []
    anchors = set()
    seen = {}
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            heading = HEADING_RE.match(line)
            if heading:
                slug = github_slug(heading.group(2))
                # GitHub de-duplicates repeated headings with -1, -2, ...
                count = seen.get(slug, 0)
                seen[slug] = count + 1
                anchors.add(slug if count == 0 else f"{slug}-{count}")
                continue
            for match in LINK_RE.finditer(line):
                links.append((number, match.group(1)))
    return links, anchors


def main(argv):
    files = argv[1:]
    if not files:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    parsed = {}
    for path in files:
        if not os.path.isfile(path):
            print(f"error: no such file: {path}", file=sys.stderr)
            return 2
        parsed[os.path.abspath(path)] = parse_markdown(path)

    failures = []
    # list(): anchors into files outside the checked set are parsed on
    # demand below, which must not mutate the dict mid-iteration.
    for path, (links, anchors) in list(parsed.items()):
        base = os.path.dirname(path)
        for line, target in links:
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            where = f"{os.path.relpath(path)}:{line}"
            if target.startswith("#"):
                if target[1:] not in anchors:
                    failures.append(f"{where}: broken anchor '{target}'")
                continue
            file_part, _, anchor = target.partition("#")
            resolved = os.path.abspath(os.path.join(base, file_part))
            if not os.path.exists(resolved):
                failures.append(f"{where}: missing target '{target}'")
                continue
            if anchor:
                if resolved not in parsed:
                    # Anchor into a file outside the checked set: parse on demand.
                    parsed_target = parse_markdown(resolved)
                    parsed[resolved] = parsed_target
                if anchor not in parsed[resolved][1]:
                    failures.append(f"{where}: broken anchor '{target}'")

    for failure in failures:
        print(failure)
    if failures:
        print(f"{len(failures)} broken link(s)")
        return 1
    print(f"ok: {sum(len(links) for links, _ in parsed.values())} links checked "
          f"across {len(parsed)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
