#!/usr/bin/env python3
"""Doc-comment checker for wharf's public headers.

A deliberately simple, grep-style gate (no real C++ parsing): every
*public* type or function declaration in the given headers must be
documented — a `///` (or `//`/`/*...*/`) comment on the line(s) directly
above, a trailing `///<`, or membership in a contiguous, comment-headed
declaration group (a comment followed by declarations with no blank line
between them covers the whole run).

Checked: namespace-scope and public class-scope declarations of
classes/structs/enums, `using` aliases, and functions.  Exempt: data
members, forward declarations, access specifiers, boilerplate special
members (destructors, copy/move constructors and assignments, `= default`
/ `= delete`), and anything private/protected.

Exit 0 when everything is documented; 1 lists offenders.

Usage: check_doc_comments.py HEADER [HEADER ...]
"""

import re
import sys

COMMENT_RE = re.compile(r"^\s*(///|//|\*|/\*)")
ACCESS_RE = re.compile(r"^\s*(public|private|protected)\s*:")
TYPE_DECL_RE = re.compile(r"^\s*(template\s*<.*>\s*)?(class|struct|enum(\s+class)?)\s+\w+")
USING_RE = re.compile(r"^\s*using\s+\w+\s*=")
FUNCTION_RE = re.compile(
    r"^\s*(\[\[nodiscard\]\]\s*)?(template\s*<.*>\s*)?"
    r"(static\s+|inline\s+|constexpr\s+|explicit\s+|virtual\s+|friend\s+)*"
    r"[~A-Za-z_][\w:<>,&*\s]*\(")
SPECIAL_MEMBER_RE = re.compile(
    r"^\s*~?\w+\s*\(\s*(const\s+)?(\w+\s*&&?\s*\w*)?\s*\)\s*"
    r"(noexcept)?\s*(override)?\s*(=\s*(default|delete))?\s*;")
ASSIGN_OP_RE = re.compile(r"operator\s*=")
DEFAULT_DELETE_RE = re.compile(r"=\s*(default|delete)\s*;")


def is_comment(line: str) -> bool:
    stripped = line.strip()
    return bool(COMMENT_RE.match(line)) or stripped.endswith("*/")


def check_header(path: str):
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()

    failures = []
    # Access-specifier stack per brace depth of class/struct bodies.
    # depth counts all braces; class_stack holds (entry_depth, access).
    depth = 0
    class_stack = []
    prev_covered = False  # previous line was a documented declaration
    prev_blank_or_boundary = True
    pending_continuation = False  # inside a multi-line declaration

    for index, line in enumerate(lines):
        stripped = line.strip()
        code = stripped
        if not code or code.startswith("#"):
            prev_blank_or_boundary = True
            prev_covered = prev_covered and bool(code)
            continue
        if is_comment(line):
            prev_blank_or_boundary = False
            continue

        in_public = not class_stack or class_stack[-1][1] == "public"
        access = ACCESS_RE.match(line)
        if access:
            if class_stack:
                class_stack[-1] = (class_stack[-1][0], access.group(1))
            prev_blank_or_boundary = True
            prev_covered = False
            continue

        is_decl_start = not pending_continuation
        documented = (index > 0 and is_comment(lines[index - 1])) or "///<" in line
        grouped = prev_covered and not prev_blank_or_boundary

        checkable = (
            is_decl_start
            and in_public
            and (TYPE_DECL_RE.match(line) or USING_RE.match(line)
                 or FUNCTION_RE.match(line))
            # forward declarations: `class X;`
            and not re.match(r"^\s*(class|struct|enum(\s+class)?)\s+\w+\s*;", line)
            # boilerplate special members
            and not SPECIAL_MEMBER_RE.match(line)
            and not ASSIGN_OP_RE.search(line)
            and not DEFAULT_DELETE_RE.search(line)
        )

        if checkable:
            if documented or grouped:
                prev_covered = True
            else:
                failures.append((index + 1, stripped))
                prev_covered = False
        elif is_decl_start:
            prev_covered = False

        # Continuation: a code line that ends a statement/body resets it.
        pending_continuation = not (
            code.endswith(";") or code.endswith("{") or code.endswith("}")
            or code.endswith(":") or code.endswith("};"))

        # Brace / class-body bookkeeping (counts only braces outside strings,
        # good enough for headers).
        for char in code:
            if char == "{":
                depth += 1
            elif char == "}":
                depth -= 1
                while class_stack and depth < class_stack[-1][0]:
                    class_stack.pop()
        body_open = TYPE_DECL_RE.match(line) and code.endswith("{")
        if body_open:
            default_access = "private" if re.search(r"\bclass\b", code) else "public"
            class_stack.append((depth, default_access))
        prev_blank_or_boundary = False

    return failures


def main(argv):
    headers = argv[1:]
    if not headers:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    total = 0
    for path in headers:
        for line, text in check_header(path):
            print(f"{path}:{line}: undocumented public symbol: {text}")
            total += 1
    if total:
        print(f"{total} undocumented public symbol(s)")
        return 1
    print(f"ok: {len(headers)} header(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
