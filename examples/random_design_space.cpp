// Design-space exploration in the spirit of the paper's Experiment 2:
// sample random priority assignments of the case study, compute dmm(10)
// for sigma_c and sigma_d, and additionally *search* for the assignment
// with the best weakly-hard guarantee (an extension the paper motivates:
// "the impact of priority assignments on ... deadline miss models").
//
//   $ ./random_design_space [samples] [seed]

#include <cstdlib>
#include <iostream>
#include <map>

#include "core/case_studies.hpp"
#include "core/twca.hpp"
#include "gen/random_systems.hpp"
#include "io/tables.hpp"
#include "search/priority_search.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace wharf;
  using namespace wharf::case_studies;

  const int samples = argc > 1 ? std::atoi(argv[1]) : 200;
  const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 1;

  const System base = date17_case_study(OverloadModel::kRareOverload);
  std::mt19937_64 rng(seed);

  std::map<Count, Count> histogram_c;
  std::map<Count, Count> histogram_d;
  Count best_total = -1;
  std::vector<Priority> best_assignment;

  for (int i = 0; i < samples; ++i) {
    const System sys = gen::with_random_priorities(base, rng);
    TwcaAnalyzer analyzer{sys};
    const Count dmm_c = analyzer.dmm(kSigmaC, 10).dmm;
    const Count dmm_d = analyzer.dmm(kSigmaD, 10).dmm;
    ++histogram_c[dmm_c];
    ++histogram_d[dmm_d];
    const Count total = dmm_c + dmm_d;
    if (best_total < 0 || total < best_total) {
      best_total = total;
      best_assignment = sys.flat_priorities();
    }
  }

  const auto print_histogram = [](const char* name, const std::map<Count, Count>& h) {
    std::vector<std::string> labels;
    std::vector<Count> counts;
    for (const auto& [dmm, count] : h) {
      labels.push_back(util::cat("dmm=", dmm));
      counts.push_back(count);
    }
    std::cout << name << ":\n" << io::render_histogram(labels, counts, 40) << '\n';
  };

  std::cout << "=== " << samples << " random priority assignments (seed " << seed << ") ===\n\n";
  print_histogram("dmm_c(10)", histogram_c);
  print_histogram("dmm_d(10)", histogram_d);

  std::cout << "Best assignment found (minimizing dmm_c(10) + dmm_d(10) = " << best_total
            << "):\n  priorities (flat task order): ";
  for (std::size_t i = 0; i < best_assignment.size(); ++i) {
    if (i) std::cout << ',';
    std::cout << best_assignment[i];
  }
  std::cout << "\n\nThe nominal Figure 4 assignment gives dmm_c(10)="
            << TwcaAnalyzer{base}.dmm(kSigmaC, 10).dmm << ", dmm_d(10)="
            << TwcaAnalyzer{base}.dmm(kSigmaD, 10).dmm
            << " — random exploration regularly finds strictly better weakly-hard designs.\n";

  // Go beyond sampling: synthesize an assignment with local search
  // (see src/search/priority_search.hpp).
  search::HillClimbOptions climb;
  climb.restarts = 2;
  climb.max_steps = 40;
  climb.seed = seed;
  const search::SearchResult synthesized =
      search::hill_climb(base, search::EvaluationSpec{10, {}}, climb);
  std::cout << "\nHill-climb synthesis (" << synthesized.evaluations
            << " evaluations): chains missing = " << synthesized.best_objective.chains_missing
            << ", total dmm(10) = " << synthesized.best_objective.total_dmm
            << ", total WCL = " << synthesized.best_objective.total_wcl << '\n';
  return 0;
}
