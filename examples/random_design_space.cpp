// Design-space exploration in the spirit of the paper's Experiment 2:
// sample random priority assignments of the case study, compute dmm(10)
// for sigma_c and sigma_d, and additionally *search* for the assignment
// with the best weakly-hard guarantee (an extension the paper motivates:
// "the impact of priority assignments on ... deadline miss models").
//
// The whole exploration is one wharf::Engine batch: one request per
// sampled assignment plus one PrioritySearchQuery, evaluated on the
// worker pool.
//
//   $ ./random_design_space [samples] [seed]

#include <cstdlib>
#include <iostream>
#include <map>

#include "core/case_studies.hpp"
#include "engine/engine.hpp"
#include "gen/random_systems.hpp"
#include "io/tables.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace wharf;
  using namespace wharf::case_studies;

  const int samples = argc > 1 ? std::atoi(argv[1]) : 200;
  const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 1;

  const System base = date17_case_study(OverloadModel::kRareOverload);
  std::mt19937_64 rng(seed);

  // One request per sampled assignment; the nominal system rides along
  // as the last two requests (its dmm values and the hill-climb search).
  std::vector<AnalysisRequest> requests;
  requests.reserve(static_cast<std::size_t>(samples) + 2);
  for (int i = 0; i < samples; ++i) {
    requests.push_back(AnalysisRequest{gen::with_random_priorities(base, rng),
                                       {},
                                       {DmmQuery{"sigma_c", {10}}, DmmQuery{"sigma_d", {10}}}});
  }
  requests.push_back(
      AnalysisRequest{base, {}, {DmmQuery{"sigma_c", {10}}, DmmQuery{"sigma_d", {10}}}});
  PrioritySearchQuery climb;
  climb.restarts = 2;
  climb.budget = 40;
  climb.seed = seed;
  requests.push_back(AnalysisRequest{base, {}, {climb}});

  Engine engine{EngineOptions{0, EngineOptions{}.cache_bytes}};  // 0 = all hardware threads
  const std::vector<AnalysisReport> reports = engine.run_batch(requests);

  const auto dmm_of = [](const AnalysisReport& report, std::size_t query) {
    return std::get<DmmAnswer>(report.results[query].answer).curve.front().dmm;
  };

  std::map<Count, Count> histogram_c;
  std::map<Count, Count> histogram_d;
  Count best_total = -1;
  std::size_t best_index = 0;
  for (int i = 0; i < samples; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const Count dmm_c = dmm_of(reports[idx], 0);
    const Count dmm_d = dmm_of(reports[idx], 1);
    ++histogram_c[dmm_c];
    ++histogram_d[dmm_d];
    const Count total = dmm_c + dmm_d;
    if (best_total < 0 || total < best_total) {
      best_total = total;
      best_index = idx;
    }
  }

  const auto print_histogram = [](const char* name, const std::map<Count, Count>& h) {
    std::vector<std::string> labels;
    std::vector<Count> counts;
    for (const auto& [dmm, count] : h) {
      labels.push_back(util::cat("dmm=", dmm));
      counts.push_back(count);
    }
    std::cout << name << ":\n" << io::render_histogram(labels, counts, 40) << '\n';
  };

  std::cout << "=== " << samples << " random priority assignments (seed " << seed << ") ===\n\n";
  print_histogram("dmm_c(10)", histogram_c);
  print_histogram("dmm_d(10)", histogram_d);

  std::cout << "Best assignment found (minimizing dmm_c(10) + dmm_d(10) = " << best_total
            << "):\n  priorities (flat task order): ";
  const std::vector<Priority> best_assignment =
      requests[best_index].system.flat_priorities();
  for (std::size_t i = 0; i < best_assignment.size(); ++i) {
    if (i) std::cout << ',';
    std::cout << best_assignment[i];
  }
  const AnalysisReport& nominal = reports[static_cast<std::size_t>(samples)];
  std::cout << "\n\nThe nominal Figure 4 assignment gives dmm_c(10)=" << dmm_of(nominal, 0)
            << ", dmm_d(10)=" << dmm_of(nominal, 1)
            << " — random exploration regularly finds strictly better weakly-hard designs.\n";

  // Go beyond sampling: synthesize an assignment with local search.
  const auto& synthesized =
      std::get<SearchAnswer>(reports[static_cast<std::size_t>(samples) + 1].results[0].answer);
  std::cout << "\nHill-climb synthesis (" << synthesized.result.evaluations
            << " evaluations): chains missing = "
            << synthesized.result.best_objective.chains_missing
            << ", total dmm(10) = " << synthesized.result.best_objective.total_dmm
            << ", total WCL = " << synthesized.result.best_objective.total_wcl << '\n';
  std::cout << "Candidates scored through the engine's artifact store: "
            << synthesized.stats.hits() << " stage artifacts reused, "
            << synthesized.stats.misses() << " computed.\n";
  return 0;
}
