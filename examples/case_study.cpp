// Full walkthrough of the paper's industrial case study (Figure 4):
// reproduces Table I, the "second analysis" without overload, the
// combination structure described in Section VI, and Table II under both
// overload models.
//
//   $ ./case_study

#include <iostream>

#include "core/busy_window.hpp"
#include "core/case_studies.hpp"
#include "core/combinations.hpp"
#include "core/twca.hpp"
#include "engine/engine.hpp"
#include "io/system_format.hpp"
#include "io/tables.hpp"
#include "util/strings.hpp"

int main() {
  using namespace wharf;
  using namespace wharf::case_studies;

  const System system = date17_case_study();
  std::cout << "=== The Thales-derived case study (paper Figure 4) ===\n\n";
  std::cout << io::serialize_system(system) << '\n';

  // ---------------------------------------------------------------------
  // Experiment 1, Table I: worst-case latencies — one engine request
  // answers both flavours (with and without overload) for both chains.
  // ---------------------------------------------------------------------
  Engine engine;
  const AnalysisReport latencies = engine.run(AnalysisRequest{
      system,
      {},
      {LatencyQuery{"sigma_c", false}, LatencyQuery{"sigma_d", false},
       LatencyQuery{"sigma_c", true}, LatencyQuery{"sigma_d", true},
       DmmQuery{"sigma_c", {3, 76, 250}}}});
  io::TextTable table1({"task chain", "WCL", "D"});
  for (std::size_t q : {0u, 1u}) {
    const auto& answer = std::get<LatencyAnswer>(latencies.results[q].answer);
    const int c = *system.chain_index(answer.chain);
    table1.add_row({answer.chain, util::cat(answer.result.wcl),
                    util::cat(*system.chain(c).deadline())});
  }
  std::cout << "Table I — WCL of task chains sigma_c and sigma_d:\n" << table1.render();
  std::cout << "(paper: 331 and 175; sigma_c can miss its deadline)\n\n";

  // The paper's second analysis: abstract the overload chains away.
  io::TextTable second({"task chain", "WCL without overload", "schedulable"});
  for (std::size_t q : {2u, 3u}) {
    const auto& answer = std::get<LatencyAnswer>(latencies.results[q].answer);
    second.add_row({answer.chain, util::cat(answer.result.wcl),
                    answer.result.schedulable ? "yes" : "no"});
  }
  std::cout << "Second analysis (overload chains abstracted away):\n" << second.render();
  std::cout << "(both chains meet their deadlines without overload)\n\n";

  TwcaAnalyzer analyzer{system};  // the low-level core, for the internals below

  // ---------------------------------------------------------------------
  // Combination structure (Section VI, in-text).
  // ---------------------------------------------------------------------
  const OverloadStructure structure = overload_structure(system, kSigmaC);
  std::cout << "Active segments of the overload chains w.r.t. sigma_c:\n";
  for (const OverloadActiveSegments& pc : structure.per_chain) {
    for (const ActiveSegment& s : pc.active) {
      std::cout << "  " << system.chain(pc.chain).name() << ": "
                << format_task_list(system.chain(pc.chain), s.tasks) << "  (cost " << s.cost
                << ")\n";
    }
  }
  const auto all_combos = enumerate_combinations(system, structure, 1000);
  const InterferenceContext ctx = make_interference_context(system, kSigmaC);
  const Time slack = typical_slack(system, ctx, analyzer.latency(kSigmaC).K, {});
  std::cout << "\nCombinations (slack threshold theta = " << slack << "):\n";
  for (const Combination& c : all_combos) {
    std::cout << "  " << format_combination(system, structure, c) << "  cost " << c.cost << " -> "
              << (c.cost > slack ? "UNSCHEDULABLE" : "schedulable") << '\n';
  }
  std::cout << "(paper: three combinations; only the joint one is unschedulable)\n\n";

  // ---------------------------------------------------------------------
  // Experiment 1, Table II: deadline miss models for sigma_c.
  // ---------------------------------------------------------------------
  const AnalysisReport rare = engine.run(AnalysisRequest{
      date17_case_study(OverloadModel::kRareOverload),
      {},
      {DmmQuery{"sigma_c", {3, 76, 250}}, DmmQuery{"sigma_d", {10}}}});
  const auto& rare_curve = std::get<DmmAnswer>(rare.results[0].answer).curve;
  const auto& literal_curve = std::get<DmmAnswer>(latencies.results[4].answer).curve;

  io::TextTable table2({"k", "dmm_c(k) rare-overload", "dmm_c(k) literal-sporadic", "paper"});
  const std::vector<Count> ks = {3, 76, 250};
  const std::vector<std::string> paper = {"3", "4", "5"};
  for (std::size_t i = 0; i < ks.size(); ++i) {
    table2.add_row({util::cat(ks[i]), util::cat(rare_curve[i].dmm),
                    util::cat(literal_curve[i].dmm), paper[i]});
  }
  std::cout << "Table II — dmm(k) for task chain sigma_c:\n" << table2.render();
  std::cout << "(the rare-overload arrival curve reproduces the paper exactly; the\n"
               " literal sporadic reading of Figure 4 matches only k=3 — see\n"
               " EXPERIMENTS.md for why no pure sporadic curve can match all rows)\n\n";

  // sigma_d needs no DMM: it is schedulable.
  const DmmResult& d = std::get<DmmAnswer>(rare.results[1].answer).curve.front();
  std::cout << "sigma_d: " << to_string(d.status) << " (WCL " << d.wcl
            << " <= 200), dmm(10) = " << d.dmm << "\n";
  return 0;
}
