// Gallery of activation models: how eta+/delta- interact, how the
// "rare overload" curve of the reproduction is calibrated, and how models
// round-trip through the textual system format.
//
//   $ ./custom_arrival

#include <iostream>

#include "core/arrival.hpp"
#include "io/tables.hpp"
#include "sim/arrival_sequence.hpp"
#include "util/strings.hpp"

int main() {
  using namespace wharf;

  const std::vector<ArrivalModelPtr> models = {
      periodic(200),
      periodic_jitter(200, 60, 10),
      sporadic(700),
      delta_curve({700, 15200, 50000}, 35000),  // the calibrated rare-overload curve
  };

  std::cout << "=== eta_plus over growing windows ===\n";
  io::TextTable eta({"model", "dt=100", "dt=200", "dt=731", "dt=15331", "dt=50131"});
  for (const auto& m : models) {
    eta.add_row({m->describe(), util::cat(m->eta_plus(100)), util::cat(m->eta_plus(200)),
                 util::cat(m->eta_plus(731)), util::cat(m->eta_plus(15331)),
                 util::cat(m->eta_plus(50131))});
  }
  std::cout << eta.render() << '\n';

  std::cout << "=== delta_minus (minimum span of q activations) ===\n";
  io::TextTable delta({"model", "q=2", "q=3", "q=4", "q=6"});
  for (const auto& m : models) {
    delta.add_row({m->describe(), util::cat(m->delta_minus(2)), util::cat(m->delta_minus(3)),
                   util::cat(m->delta_minus(4)), util::cat(m->delta_minus(6))});
  }
  std::cout << delta.render() << '\n';

  std::cout << "=== densest legal activation sequences (first events) ===\n";
  for (const auto& m : models) {
    const auto t = sim::greedy_arrivals(*m, 0, 120'000);
    std::cout << "  " << m->describe() << ": ";
    for (std::size_t i = 0; i < std::min<std::size_t>(t.size(), 6); ++i) {
      if (i) std::cout << ", ";
      std::cout << t[i];
    }
    if (t.size() > 6) std::cout << ", ...";
    std::cout << '\n';
  }

  std::cout << "\n=== parse/describe round-trip ===\n";
  for (const auto& m : models) {
    const auto round = parse_arrival(m->describe());
    std::cout << "  " << m->describe() << " -> parse -> " << round->describe() << '\n';
  }

  std::cout << "\nWhy the rare-overload curve: the paper specifies only delta_minus(2)\n"
               "for its sporadic overload chains.  Matching Table II exactly (with\n"
               "k=76/250 as dmm breakpoints) pins delta_minus(3) into [15131, 15331)\n"
               "and delta_minus(4) into [49931, 50131); we use 15200 and 50000 (see\n"
               "EXPERIMENTS.md).\n";
  return 0;
}
