// Quickstart: build a small weakly-hard system in code, compute worst-case
// latencies and a deadline miss model, and print a report.
//
// The system: two periodic chains ("control" and "logging") plus one
// rarely-activated sporadic recovery chain that causes transient overload.
//
//   $ ./quickstart

#include <iostream>

#include "core/twca.hpp"
#include "io/tables.hpp"
#include "util/strings.hpp"

namespace {

wharf::Chain make_chain(wharf::Chain::Spec spec) { return wharf::Chain(std::move(spec)); }

wharf::System build_system() {
  using namespace wharf;

  Chain::Spec control;
  control.name = "control";
  control.kind = ChainKind::kSynchronous;
  control.arrival = periodic(100);  // 100-tick control period
  control.deadline = 100;
  control.tasks = {Task{"sense", 6, 10}, Task{"compute", 5, 15}, Task{"actuate", 1, 12}};

  Chain::Spec logging;
  logging.name = "logging";
  logging.kind = ChainKind::kSynchronous;
  logging.arrival = periodic(400);
  logging.deadline = 400;
  logging.tasks = {Task{"collect", 4, 20}, Task{"flush", 2, 25}};

  Chain::Spec recovery;  // the overload chain
  recovery.name = "recovery";
  recovery.kind = ChainKind::kSynchronous;
  recovery.arrival = sporadic(5'000);  // rare: at most once per 5000 ticks
  recovery.overload = true;
  recovery.tasks = {Task{"diagnose", 8, 18}, Task{"repair", 7, 22}};

  return System("quickstart", {make_chain(std::move(control)), make_chain(std::move(logging)),
                               make_chain(std::move(recovery))});
}

}  // namespace

int main() {
  using namespace wharf;

  const System system = build_system();
  std::cout << "System '" << system.name() << "': " << system.size() << " chains, "
            << system.task_count() << " tasks, utilization " << system.utilization() << "\n\n";

  TwcaAnalyzer analyzer{system};

  // 1. Worst-case latency analysis (Theorem 2 of the paper).
  io::TextTable latency_table({"chain", "WCL", "deadline", "schedulable"});
  for (int c : system.regular_indices()) {
    const LatencyResult& r = analyzer.latency(c);
    latency_table.add_row({system.chain(c).name(),
                           r.bounded ? util::cat(r.wcl) : "unbounded",
                           util::cat(*system.chain(c).deadline()),
                           r.bounded && r.schedulable ? "yes" : "no"});
  }
  std::cout << "Worst-case latencies (with overload):\n" << latency_table.render() << '\n';

  // 2. Deadline miss models (Theorem 3): how many of k consecutive
  //    activations can miss, at worst?
  io::TextTable dmm_table({"chain", "k", "dmm(k)", "status"});
  for (int c : system.regular_indices()) {
    for (Count k : {5, 10, 50}) {
      const DmmResult r = analyzer.dmm(c, k);
      dmm_table.add_row({system.chain(c).name(), util::cat(k), util::cat(r.dmm),
                         to_string(r.status)});
    }
  }
  std::cout << "Deadline miss models:\n" << dmm_table.render() << '\n';

  // 3. Weakly-hard verdicts: is the control chain (2,10)-firm?
  const bool ok = analyzer.satisfies_weakly_hard(0, 2, 10);
  std::cout << "control satisfies the weakly-hard constraint (m=2, k=10): "
            << (ok ? "yes" : "no") << '\n';
  return 0;
}
