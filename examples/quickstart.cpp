// Quickstart: build a small weakly-hard system in code, then answer
// every question about it — worst-case latencies, deadline miss models,
// a weakly-hard (m,k) verdict and a simulation cross-check — with ONE
// wharf::Engine request.
//
// The system: two periodic chains ("control" and "logging") plus one
// rarely-activated sporadic recovery chain that causes transient overload.
//
//   $ ./quickstart

#include <iostream>

#include "engine/engine.hpp"
#include "io/report.hpp"

namespace {

wharf::System build_system() {
  using namespace wharf;

  Chain::Spec control;
  control.name = "control";
  control.kind = ChainKind::kSynchronous;
  control.arrival = periodic(100);  // 100-tick control period
  control.deadline = 100;
  control.tasks = {Task{"sense", 6, 10}, Task{"compute", 5, 15}, Task{"actuate", 1, 12}};

  Chain::Spec logging;
  logging.name = "logging";
  logging.kind = ChainKind::kSynchronous;
  logging.arrival = periodic(400);
  logging.deadline = 400;
  logging.tasks = {Task{"collect", 4, 20}, Task{"flush", 2, 25}};

  Chain::Spec recovery;  // the overload chain
  recovery.name = "recovery";
  recovery.kind = ChainKind::kSynchronous;
  recovery.arrival = sporadic(5'000);  // rare: at most once per 5000 ticks
  recovery.overload = true;
  recovery.tasks = {Task{"diagnose", 8, 18}, Task{"repair", 7, 22}};

  return System("quickstart", {Chain(std::move(control)), Chain(std::move(logging)),
                               Chain(std::move(recovery))});
}

}  // namespace

int main() {
  using namespace wharf;

  const System system = build_system();

  // One request bundles the system with every query; the report comes
  // back with one structured, Status-carrying result per query.
  AnalysisRequest request = AnalysisRequest::standard(system, {5, 10, 50});
  request.queries.push_back(WeaklyHardQuery{"control", /*m=*/2, /*k=*/10});
  request.queries.push_back(SimulationQuery{});  // cross-validates the bounds

  Engine engine;
  const AnalysisReport report = engine.run(request);

  // 1. The full latency + DMM overview (Theorems 2 and 3 of the paper).
  std::cout << io::render_report(system, report);

  // 2. Individual answers are plain structs, addressed by query index.
  for (const QueryResult& result : report.results) {
    if (const auto* verdict = std::get_if<WeaklyHardAnswer>(&result.answer)) {
      std::cout << "\n" << verdict->chain << " satisfies the weakly-hard constraint (m="
                << verdict->m << ", k=" << verdict->k << "): "
                << (verdict->satisfied ? "yes" : "no") << " [dmm=" << verdict->dmm << "]\n";
    } else if (const auto* sim = std::get_if<SimulationAnswer>(&result.answer)) {
      std::cout << "simulation cross-check: "
                << (sim->validated ? "all bounds respected" : "VIOLATION") << " over "
                << sim->chains.front().completed << "+ instances\n";
    }
  }

  // 3. Malformed queries come back as statuses, never exceptions.
  const AnalysisReport oops =
      engine.run(AnalysisRequest{system, {}, {DmmQuery{"no_such_chain", {10}}}});
  std::cout << "\nasking about an unknown chain: " << oops.results[0].status.to_string()
            << "\n";

  // 4. The second run on the same system hits the artifact cache.
  const AnalysisReport again = engine.run(request);
  std::cout << "repeated request hit the artifact cache: "
            << (again.diagnostics.cache_hit ? "yes" : "no") << "\n";
  return 0;
}
