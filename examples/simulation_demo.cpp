// Discrete-event simulation of the case study: renders a Gantt chart of
// the overload scenario (the empirical counterpart of the paper's
// Figure 3 busy-window illustration) and validates the analytic bounds
// against observed behaviour.
//
//   $ ./simulation_demo

#include <iostream>

#include "core/case_studies.hpp"
#include "core/twca.hpp"
#include "io/gantt.hpp"
#include "io/tables.hpp"
#include "sim/arrival_sequence.hpp"
#include "sim/simulator.hpp"
#include "util/strings.hpp"

int main() {
  using namespace wharf;
  using namespace wharf::case_studies;

  const System system = date17_case_study();

  // -----------------------------------------------------------------
  // Scenario 1: the unschedulable combination c3 = {sigma_a, sigma_b}
  // strikes at t=0 while both periodic chains are released.
  // -----------------------------------------------------------------
  const Time horizon = 1'000;
  std::vector<std::vector<Time>> arrivals(static_cast<std::size_t>(system.size()));
  arrivals[kSigmaD] = sim::periodic_arrivals(200, 0, horizon);
  arrivals[kSigmaC] = sim::periodic_arrivals(200, 0, horizon);
  arrivals[kSigmaB] = {0};
  arrivals[kSigmaA] = {0};

  sim::SimOptions options;
  options.record_trace = true;
  const sim::SimResult burst = sim::simulate(system, arrivals, options);

  std::cout << "=== Overload burst at t=0 (combination {sigma_a, sigma_b}) ===\n\n";
  io::GanttOptions gantt;
  gantt.from = 0;
  gantt.to = 240;
  gantt.ticks_per_char = 2;
  std::cout << io::render_gantt(system, burst.trace, gantt) << '\n';

  io::TextTable t({"chain", "instance", "activation", "finish", "latency", "missed"});
  for (int c : {kSigmaD, kSigmaC}) {
    for (const sim::InstanceRecord& rec : burst.chains[static_cast<std::size_t>(c)].instances) {
      if (rec.index > 2) break;
      t.add_row({system.chain(c).name(), util::cat(rec.index), util::cat(rec.activation),
                 util::cat(rec.finish), util::cat(rec.latency()), rec.missed ? "YES" : "no"});
    }
  }
  std::cout << t.render() << '\n';

  // -----------------------------------------------------------------
  // Scenario 2: long adversarial run; compare observations with bounds.
  // -----------------------------------------------------------------
  TwcaAnalyzer analyzer{system};
  const Time long_horizon = 100'000;
  std::vector<std::vector<Time>> dense;
  for (int c = 0; c < system.size(); ++c) {
    dense.push_back(sim::greedy_arrivals(system.chain(c).arrival(), 0, long_horizon));
  }
  const sim::SimResult run = sim::simulate(system, dense);

  std::cout << "=== Greedy arrivals over " << long_horizon << " ticks ===\n";
  io::TextTable v({"chain", "instances", "max latency (sim)", "WCL (analysis)", "misses (sim)",
                   "max misses in 10 (sim)", "dmm(10) (analysis)"});
  for (int c : {kSigmaD, kSigmaC}) {
    const sim::ChainResult& cr = run.chains[static_cast<std::size_t>(c)];
    const LatencyResult& lat = analyzer.latency(c);
    const DmmResult dmm = analyzer.dmm(c, 10);
    v.add_row({system.chain(c).name(), util::cat(cr.completed), util::cat(cr.max_latency),
               util::cat(lat.wcl), util::cat(cr.miss_count),
               util::cat(cr.max_misses_in_window(10)), util::cat(dmm.dmm)});
  }
  std::cout << v.render();
  std::cout << "\nEvery observed quantity is dominated by its analytic bound, as the\n"
               "theory requires: simulated latencies <= WCL and windowed misses <= dmm.\n";
  return 0;
}
