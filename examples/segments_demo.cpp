// Walkthrough of the paper's segment machinery (Definitions 2-8) on the
// Figure 1 system, reproducing every in-text example of Sections IV-V.
//
//   $ ./segments_demo

#include <iostream>

#include "core/case_studies.hpp"
#include "core/combinations.hpp"
#include "core/segments.hpp"
#include "util/strings.hpp"

namespace {

void print_chain(const wharf::Chain& chain) {
  std::cout << "  " << chain.name() << " = (";
  for (int i = 0; i < chain.size(); ++i) {
    if (i) std::cout << ", ";
    std::cout << chain.task(i).name << "/" << chain.task(i).priority;
  }
  std::cout << ")\n";
}

}  // namespace

int main() {
  using namespace wharf;
  using namespace wharf::case_studies;

  const System system = figure1_system();
  const Chain& a = system.chain(kFig1SigmaA);
  const Chain& b = system.chain(kFig1SigmaB);

  std::cout << "=== Figure 1 system (task/priority) ===\n";
  print_chain(a);
  print_chain(b);

  std::cout << "\nDef. 2 — interference classification:\n";
  std::cout << "  sigma_a deferred by sigma_b? " << (is_deferred(a, b) ? "yes" : "no")
            << "  (tau4_a and tau6_a are below sigma_b's min priority "
            << b.min_priority() << ")\n";
  std::cout << "  sigma_b deferred by sigma_a? " << (is_deferred(b, a) ? "yes" : "no")
            << "  (sigma_a's min priority is " << a.min_priority()
            << "; sigma_b arbitrarily interferes)\n";

  std::cout << "\nDef. 3 — segments of sigma_a w.r.t. sigma_b:\n";
  for (const Segment& s : segments_wrt(a, b)) {
    std::cout << "  " << format_task_list(a, s.tasks) << (s.wraps ? "  [wraps]" : "") << '\n';
  }
  std::cout << "  (paper: (tau1,tau2,tau3) and (tau5))\n";

  std::cout << "\nDef. 4 — critical segment: ";
  std::cout << format_task_list(a, critical_segment(a, b)->tasks) << '\n';

  std::cout << "\nDef. 5 — header subchains:\n";
  std::cout << "  s_header of sigma_a (before its own lowest-priority task): "
            << format_task_list(a, header_subchain(a)) << '\n';
  std::cout << "  s_header of sigma_a w.r.t. sigma_b: "
            << format_task_list(a, header_segment_wrt(a, b)) << '\n';

  std::cout << "\nDef. 8 — active segments of sigma_a w.r.t. sigma_b:\n";
  for (const ActiveSegment& s : active_segments_wrt(a, b)) {
    std::cout << "  " << format_task_list(a, s.tasks) << "  (segment " << s.segment_index
              << ")\n";
  }
  std::cout << "  (paper: (tau1,tau2), (tau3), (tau5) — split at tau3 because its\n"
               "   priority 5 is below the priority 6 of sigma_b's tail task)\n";

  // Combinations (Def. 9): mark sigma_a as an overload chain.
  Chain::Spec a_over;
  a_over.name = a.name();
  a_over.kind = ChainKind::kSynchronous;
  a_over.arrival = sporadic(10'000);
  a_over.overload = true;
  a_over.tasks = a.tasks();
  Chain::Spec b_spec;
  b_spec.name = b.name();
  b_spec.kind = b.kind();
  b_spec.arrival = b.arrival_ptr();
  b_spec.deadline = b.deadline();
  b_spec.tasks = b.tasks();
  const System overload_system("figure1_overload",
                               {Chain(std::move(a_over)), Chain(std::move(b_spec))});

  const OverloadStructure structure = overload_structure(overload_system, 1);
  std::cout << "\nDef. 9 — valid combinations of sigma_a's active segments:\n";
  for (const Combination& c :
       enumerate_combinations(overload_system, structure, 1000)) {
    std::cout << "  " << format_combination(overload_system, structure, c) << '\n';
  }
  std::cout << "  (paper: exactly four; (tau5) never combines with the others because\n"
               "   it belongs to a different segment — Lemma 1)\n";
  return 0;
}
