// Paths over chains (paper footnote 1): a two-stage processing pipeline
// where stage1's completions activate stage2.  Shows the derived output
// arrival model, end-to-end latency composition, per-chain deadline
// budgeting for the path DMM, and validation by linked simulation.
//
//   $ ./pipeline_paths

#include <iostream>

#include "core/path_analysis.hpp"
#include "io/tables.hpp"
#include "sim/arrival_sequence.hpp"
#include "sim/simulator.hpp"
#include "util/strings.hpp"

namespace {

wharf::System build_pipeline() {
  using namespace wharf;
  Chain::Spec acquire;
  acquire.name = "acquire";
  acquire.arrival = periodic(300);
  acquire.deadline = 300;
  acquire.tasks = {Task{"capture", 6, 20}, Task{"filter", 2, 25}};

  Chain::Spec process;  // activation replaced by the derived model below
  process.name = "process";
  process.arrival = periodic(300);
  process.deadline = 300;
  process.tasks = {Task{"transform", 5, 15}, Task{"publish", 1, 30}};

  Chain::Spec recovery;
  recovery.name = "recovery";
  recovery.arrival = sporadic(10'000);
  recovery.overload = true;
  recovery.tasks = {Task{"restore", 7, 35}};

  System draft("pipeline", {Chain(std::move(acquire)), Chain(std::move(process)),
                            Chain(std::move(recovery))});

  // Replace stage 2's declared activation by the sound model of stage 1's
  // completions (the CPA contract for linked chains).
  const LatencyResult lat1 = latency_analysis(draft, 0);
  const ArrivalModelPtr derived = derived_output_model(draft.chain(0), lat1);
  std::vector<Chain> chains;
  for (int c = 0; c < draft.size(); ++c) {
    const Chain& chain = draft.chain(c);
    Chain::Spec spec;
    spec.name = chain.name();
    spec.kind = chain.kind();
    spec.arrival = c == 1 ? derived : chain.arrival_ptr();
    spec.deadline = chain.deadline();
    spec.overload = chain.is_overload();
    spec.tasks = chain.tasks();
    chains.emplace_back(std::move(spec));
  }
  return wharf::System("pipeline", std::move(chains));
}

}  // namespace

int main() {
  using namespace wharf;

  const System sys = build_pipeline();
  std::cout << "Derived activation model of 'process' (completions of 'acquire'):\n  "
            << sys.chain(1).arrival().describe() << "\n\n";

  PathAnalyzer analyzer{sys};
  PathSpec path;
  path.chains = {0, 1};

  const PathLatencyResult lat = analyzer.latency(path);
  std::cout << "Path latency bound: " << lat.wcl << "  (per chain: ";
  for (std::size_t i = 0; i < lat.per_chain_wcl.size(); ++i) {
    std::cout << (i ? " + " : "") << lat.per_chain_wcl[i];
  }
  std::cout << ")\n\n";

  path.deadline = 200;
  io::TextTable table({"k", "dmm_path(k)", "budgets", "per-chain dmm"});
  for (Count k : {3, 5, 10, 50}) {
    const PathDmmResult r = analyzer.dmm(path, k);
    std::string budgets;
    std::string per_chain;
    for (std::size_t i = 0; i < r.budgets.size(); ++i) {
      budgets += (i ? "+" : "") + util::cat(r.budgets[i]);
      per_chain += (i ? "+" : "") + util::cat(r.per_chain[i]);
    }
    table.add_row({util::cat(k), util::cat(r.dmm), budgets, per_chain});
  }
  std::cout << "Path DMM with end-to-end deadline 200 (< " << lat.wcl << "):\n"
            << table.render() << '\n';

  // Validate by linked simulation.
  sim::SimOptions options;
  options.links = {sim::ChainLink{0, 1}};
  std::vector<std::vector<Time>> arrivals(3);
  arrivals[0] = sim::periodic_arrivals(300, 0, 120'000);
  arrivals[2] = sim::greedy_arrivals(sys.chain(2).arrival(), 0, 120'000);
  const sim::SimResult run = sim::simulate(sys, arrivals, options);

  Time max_latency = 0;
  Count misses = 0;
  for (Time l : sim::path_latencies(run, path.chains)) {
    max_latency = std::max(max_latency, l);
    if (l > *path.deadline) ++misses;
  }
  std::cout << "Linked simulation over 120000 ticks: " << run.chains[0].completed
            << " path instances, max end-to-end latency " << max_latency << " (bound " << lat.wcl
            << "), " << misses << " deadline misses (path dmm bounds hold).\n";
  return 0;
}
