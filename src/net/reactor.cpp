#include "net/reactor.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "util/expect.hpp"
#include "util/strings.hpp"

namespace wharf::net {

namespace {

/// Writes absolute `when` into the timerfd (0 disarms).  steady_clock
/// is CLOCK_MONOTONIC on Linux, so the time_point converts directly.
void settime(int timer_fd, std::chrono::steady_clock::time_point when) {
  itimerspec spec{};
  if (when != std::chrono::steady_clock::time_point{}) {
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(when.time_since_epoch()).count();
    spec.it_value.tv_sec = static_cast<time_t>(ns / 1000000000);
    spec.it_value.tv_nsec = static_cast<long>(ns % 1000000000);
    // An already-elapsed deadline must still fire: tv_value == 0 would
    // disarm, so clamp to the smallest representable future instant.
    if (spec.it_value.tv_sec == 0 && spec.it_value.tv_nsec == 0) spec.it_value.tv_nsec = 1;
  }
  (void)::timerfd_settime(timer_fd, TFD_TIMER_ABSTIME, &spec, nullptr);
}

}  // namespace

Reactor::Reactor() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  WHARF_EXPECT(epoll_fd_ >= 0, "epoll_create1(): " << util::errno_message(errno));
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  WHARF_EXPECT(wake_fd_ >= 0, "eventfd(): " << util::errno_message(errno));
  timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK);
  WHARF_EXPECT(timer_fd_ >= 0, "timerfd_create(): " << util::errno_message(errno));

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  ev.data.fd = timer_fd_;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &ev);
}

Reactor::~Reactor() {
  ::close(timer_fd_);
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void Reactor::add_fd(int fd, std::uint32_t events, FdHandler handler) {
  handlers_[fd] = std::make_shared<FdHandler>(std::move(handler));
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
}

void Reactor::set_interest(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void Reactor::remove_fd(int fd) {
  handlers_.erase(fd);
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

Reactor::TimerId Reactor::add_timer(std::chrono::steady_clock::time_point when,
                                    std::function<void()> fn) {
  const TimerId id = next_timer_id_++;
  timers_.emplace(id, Timer{when, std::move(fn)});
  arm_timerfd();
  return id;
}

void Reactor::cancel_timer(TimerId id) {
  if (timers_.erase(id) > 0) arm_timerfd();
}

void Reactor::arm_timerfd() {
  std::chrono::steady_clock::time_point earliest{};
  for (const auto& [id, timer] : timers_) {
    if (earliest == std::chrono::steady_clock::time_point{} || timer.when < earliest) {
      earliest = timer.when;
    }
  }
  settime(timer_fd_, earliest);
}

void Reactor::post(std::function<void()> fn) {
  {
    const util::MutexLock lock(mutex_);
    posted_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof one);
}

void Reactor::stop() {
  post([this] { stopped_ = true; });  // locking: stopped_ is loop-thread-only
}

void Reactor::dispatch_wakeup() {
  std::uint64_t drained = 0;
  (void)!::read(wake_fd_, &drained, sizeof drained);
  std::vector<std::function<void()>> batch;
  {
    const util::MutexLock lock(mutex_);
    batch.swap(posted_);
  }
  for (std::function<void()>& fn : batch) fn();
}

void Reactor::dispatch_timerfd() {
  std::uint64_t expirations = 0;
  (void)!::read(timer_fd_, &expirations, sizeof expirations);
  const auto now = std::chrono::steady_clock::now();
  // Collect-then-run: a timer callback may add or cancel timers, so the
  // map must not be mid-iteration while callbacks execute.
  std::vector<std::function<void()>> due;
  for (auto it = timers_.begin(); it != timers_.end();) {
    if (it->second.when <= now) {
      due.push_back(std::move(it->second.fn));
      it = timers_.erase(it);
    } else {
      ++it;
    }
  }
  arm_timerfd();
  for (std::function<void()>& fn : due) fn();
}

void Reactor::run() {
  epoll_event events[64];
  while (!stopped_) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // the epoll fd itself is broken; nothing left to drive
    }
    for (int i = 0; i < n && !stopped_; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        dispatch_wakeup();
        continue;
      }
      if (fd == timer_fd_) {
        dispatch_timerfd();
        continue;
      }
      // A handler earlier in this batch may have removed this fd (or
      // replaced it after a close/reopen race): dispatch only to the
      // handler currently registered.
      const auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      const std::shared_ptr<FdHandler> handler = it->second;
      (*handler)(events[i].events);
    }
  }
}

}  // namespace wharf::net
