#include "net/service.hpp"

#include <utility>

#include "io/json.hpp"
#include "io/system_format.hpp"
#include "util/strings.hpp"

namespace wharf::net {

namespace {

/// Resolves the session a request addresses, or nullptr (the caller
/// answers not-found).
Session* find_session(Conversation& conversation, const std::string& name) {
  const auto it = conversation.sessions.find(name);
  return it == conversation.sessions.end() ? nullptr : &it->second;
}

std::string unknown_session(const io::WireRequest& request) {
  return io::wire_response(
      request, Status::not_found(util::cat("unknown session '", request.session, "'")));
}

void write_session_stats(io::JsonWriter& w, const SessionStats& stats) {
  w.key("revision");
  w.value(static_cast<long long>(stats.revision));
  w.key("deltas_applied");
  w.value(stats.deltas_applied);
  w.key("queries_served");
  w.value(stats.queries_served);
  w.key("store");
  w.begin_object();
  w.key("hits");
  w.value(static_cast<long long>(stats.hits()));
  w.key("misses");
  w.value(static_cast<long long>(stats.misses()));
  w.key("shared");
  w.value(static_cast<long long>(stats.shared()));
  w.key("stages");
  w.begin_object();
  for (std::size_t s = 0; s < kArtifactStageCount; ++s) {
    w.key(to_string(static_cast<ArtifactStage>(static_cast<int>(s))));
    w.begin_object();
    w.key("lookups");
    w.value(static_cast<long long>(stats.stages[s].lookups));
    w.key("hits");
    w.value(static_cast<long long>(stats.stages[s].hits));
    w.key("misses");
    w.value(static_cast<long long>(stats.stages[s].misses));
    w.key("shared");
    w.value(static_cast<long long>(stats.stages[s].shared));
    w.end_object();
  }
  w.end_object();
  w.end_object();
  w.key("slices");
  w.begin_object();
  w.key("hits");
  w.value(static_cast<long long>(stats.slices.hits));
  w.key("misses");
  w.value(static_cast<long long>(stats.slices.misses));
  w.end_object();
}

std::string handle_open(Conversation& conversation, const io::WireRequest& request) {
  if (find_session(conversation, request.session) != nullptr) {
    return io::wire_response(
        request,
        Status::invalid_argument(util::cat("session '", request.session, "' is already open")));
  }
  const Expected<System> system = capture([&] { return io::parse_system(request.system_text); });
  if (!system) return io::wire_response(request, system.status());

  Session session = conversation.engine->open_session(system.value(), request.options);
  const int chains = session.system().size();
  const int tasks = session.system().task_count();
  conversation.sessions.emplace(request.session, std::move(session));
  return io::wire_response(request, Status::ok(), [&](io::JsonWriter& w) {
    w.key("system");
    w.value(system.value().name());
    w.key("chains");
    w.value(chains);
    w.key("tasks");
    w.value(tasks);
    w.key("revision");
    w.value(0);
  });
}

std::string handle_apply(Conversation& conversation, const io::WireRequest& request) {
  Session* session = find_session(conversation, request.session);
  if (session == nullptr) return unknown_session(request);
  const Status applied = session->apply(request.deltas);
  if (!applied.is_ok()) return io::wire_response(request, applied);
  return io::wire_response(request, Status::ok(), [&](io::JsonWriter& w) {
    w.key("revision");
    w.value(static_cast<long long>(session->revision()));
    w.key("deltas_applied");
    w.value(static_cast<long long>(request.deltas.size()));
  });
}

std::string handle_query(Conversation& conversation, const io::WireRequest& request) {
  Session* session = find_session(conversation, request.session);
  if (session == nullptr) return unknown_session(request);
  const AnalysisReport report = session->serve(request.queries);
  return io::wire_response(request, Status::ok(), [&](io::JsonWriter& w) {
    w.key("revision");
    w.value(static_cast<long long>(session->revision()));
    // The exact report schema of `wharf analyze --json` (per-query
    // status entries included — a failing query is a structured result,
    // not a stream error).
    w.key("report");
    w.raw(to_json(report));
  });
}

std::string handle_evaluate(Conversation& conversation, const io::WireRequest& request) {
  Session* session = find_session(conversation, request.session);
  if (session == nullptr) return unknown_session(request);
  // A malformed shard unit (wrong-arity candidate, duplicate priorities)
  // throws inside the evaluator; capture() turns it into the error
  // envelope — the coordinator treats that as a faulty worker response
  // and re-issues the unit elsewhere.
  const auto objectives =
      capture([&] { return session->evaluate_candidates(request.candidates, request.eval_k); });
  if (!objectives) return io::wire_response(request, objectives.status());
  return io::wire_response(request, Status::ok(), [&](io::JsonWriter& w) {
    // The echoed unit id is the coordinator's first-result-wins dedup
    // key (duplicate responses for a unit are discarded by id).
    w.key("unit");
    w.value(static_cast<long long>(request.unit));
    w.key("objectives");
    w.begin_array();
    for (const search::Objective& o : objectives.value()) {
      w.begin_object();
      w.key("chains_missing");
      w.value(o.chains_missing);
      w.key("total_dmm");
      w.value(o.total_dmm);
      w.key("total_wcl");
      w.value(o.total_wcl);
      w.end_object();
    }
    w.end_array();
  });
}

std::string handle_diagnostics(Conversation& conversation, const io::WireRequest& request) {
  Session* session = find_session(conversation, request.session);
  if (session == nullptr) return unknown_session(request);
  const SessionStats stats = session->stats();
  const ArtifactStore::Stats store = conversation.engine->store_stats();
  std::size_t shared_flights = 0;
  for (const ArtifactStore::StageStats& stage : store.stage) {
    shared_flights += stage.flights_shared;
  }
  return io::wire_response(request, Status::ok(), [&](io::JsonWriter& w) {
    write_session_stats(w, stats);
    w.key("engine_store");
    w.begin_object();
    w.key("resident_entries");
    w.value(static_cast<long long>(store.resident_entries));
    w.key("resident_bytes");
    w.value(static_cast<long long>(store.resident_bytes));
    w.key("evictions");
    w.value(static_cast<long long>(store.evictions));
    // Engine-lifetime single-flight joins from any source — batch
    // workers, sibling sessions, other connections (each session's own
    // share is the "shared" counter of its stats above).
    w.key("shared_flights");
    w.value(static_cast<long long>(shared_flights));
    // Startup snapshot-load outcome (both zero without --store-dir or
    // on a genuinely cold start; load_skipped_corrupt > 0 means the
    // snapshot was rejected and the store started cold).
    const Engine::PersistenceStats& persistence = conversation.engine->persistence_stats();
    w.key("persisted_artifacts");
    w.value(static_cast<long long>(persistence.persisted_artifacts));
    w.key("load_skipped_corrupt");
    w.value(static_cast<long long>(persistence.load_skipped_corrupt));
    w.end_object();
    w.key("sessions_open");
    w.value(static_cast<long long>(conversation.sessions.size()));
    if (conversation.server != nullptr) {
      const ServeTelemetry& server = *conversation.server;
      w.key("server");
      w.begin_object();
      w.key("connections_active");
      w.value(server.connections_active.load(std::memory_order_relaxed));
      w.key("connections_served");
      w.value(server.connections_served.load(std::memory_order_relaxed));
      w.key("requests_inflight");
      w.value(server.requests_inflight.load(std::memory_order_relaxed));
      w.key("requests_served");
      w.value(server.requests_served.load(std::memory_order_relaxed));
      w.key("deadline_expired");
      w.value(server.deadline_expired.load(std::memory_order_relaxed));
      w.key("backpressure_stalls");
      w.value(server.backpressure_stalls.load(std::memory_order_relaxed));
      w.key("oversized_lines");
      w.value(server.oversized_lines.load(std::memory_order_relaxed));
      w.key("accept_pauses");
      w.value(server.accept_pauses.load(std::memory_order_relaxed));
      w.key("stream_frames");
      w.value(server.stream_frames.load(std::memory_order_relaxed));
      w.end_object();
    }
  });
}

std::string handle_close(Conversation& conversation, const io::WireRequest& request) {
  const auto it = conversation.sessions.find(request.session);
  if (it == conversation.sessions.end()) return unknown_session(request);
  const SessionStats stats = it->second.stats();
  conversation.sessions.erase(it);
  return io::wire_response(request, Status::ok(), [&](io::JsonWriter& w) {
    w.key("revision");
    w.value(static_cast<long long>(stats.revision));
    w.key("queries_served");
    w.value(stats.queries_served);
  });
}

}  // namespace

std::string handle_request(Conversation& conversation, const io::WireRequest& request,
                           bool& shutdown) {
  switch (request.kind) {
    case io::WireKind::kOpenSession: return handle_open(conversation, request);
    case io::WireKind::kApplyDelta: return handle_apply(conversation, request);
    case io::WireKind::kQuery: return handle_query(conversation, request);
    case io::WireKind::kEvaluate: return handle_evaluate(conversation, request);
    case io::WireKind::kDiagnostics: return handle_diagnostics(conversation, request);
    case io::WireKind::kClose: return handle_close(conversation, request);
    case io::WireKind::kShutdown:
      shutdown = true;
      return io::wire_response(request, Status::ok());
  }
  return io::wire_protocol_error(Status::internal("unhandled request kind"));
}

bool run_query_stream(Conversation& conversation, const io::WireRequest& request,
                      StreamProgress& progress, const Emit& emit,
                      const std::function<bool()>& should_park) {
  // Re-resolved on every resume — cheap, and the pointer stays valid
  // across parks anyway (requests of one connection run strictly FIFO,
  // so nothing closes the session mid-stream).
  Session* session = find_session(conversation, request.session);
  if (session == nullptr) {
    (void)emit(unknown_session(request));
    return true;
  }
  if (!progress.preflighted) {
    progress.preflighted = true;
    progress.results.reserve(request.queries.size());
  }
  while (progress.next < request.queries.size()) {
    if (should_park && should_park()) return false;
    QueryResult result = session->execute(request.queries[progress.next],
                                          request.queries.size());
    const std::string frame =
        io::wire_response(request, Status::ok(), [&](io::JsonWriter& w) {
          w.key("frame");
          w.value("result");
          w.key("index");
          w.value(static_cast<long long>(progress.next));
          // Bit-identical to the corresponding "results" array entry of
          // the monolithic report response (the bench gates on this).
          w.key("result");
          w.raw(to_json(result));
        });
    progress.results.push_back(std::move(result));
    ++progress.next;
    if (conversation.server != nullptr) {
      conversation.server->stream_frames.fetch_add(1, std::memory_order_relaxed);
    }
    if (!emit(frame)) return true;  // transport gone: abort the stream
  }
  const AnalysisReport report = session->collect(std::move(progress.results));
  const std::size_t count = report.results.size();
  // The summary's envelope status is the report's worst status — the
  // monolithic response buries it inside "report", a streaming client
  // reads it straight off the terminal frame.
  (void)emit(io::wire_response(request, report.worst_status(), [&](io::JsonWriter& w) {
    w.key("frame");
    w.value("summary");
    w.key("revision");
    w.value(static_cast<long long>(session->revision()));
    w.key("results");
    w.value(static_cast<long long>(count));
    w.key("diagnostics");
    w.raw(to_json(report.diagnostics));
  }));
  return true;
}

std::string deadline_exceeded_response(const io::WireRequest& request) {
  return io::wire_response(
      request, Status::deadline_exceeded(util::cat("deadline of ", request.deadline_ms,
                                                   "ms elapsed before execution started")));
}

}  // namespace wharf::net
