/// \file server.hpp
/// The async serve core: one epoll reactor (net::Reactor) owning every
/// socket, a fixed worker pool (net::Executor) running the protocol
/// handlers (net::service), and per-connection state machines between
/// them.  This replaces the connection-per-thread listener: serving one
/// slow client or a thousand costs the same fixed thread count
/// (reactor + pool), which is what the ROADMAP's production-connection
/// gate demands.
///
/// The moving parts, per connection:
///  * reads — the loop feeds an io::LineAssembler, parses complete
///    lines in place (parsing is cheap; analysis is not) and queues
///    requests FIFO; protocol errors (malformed JSON, oversized lines)
///    are queued as pre-rendered responses so answers never reorder;
///  * execution — at most one worker at a time owns a connection's
///    Conversation (session contract), draining its request queue;
///    responses are appended to a bounded write queue and the loop is
///    woken to drain it on EPOLLOUT — compute never blocks the loop,
///    slow clients never block a worker (streams park, see below);
///  * deadlines — a request carrying "deadline_ms" arms a reactor
///    timer; firing while the request is still queued marks it
///    cancelled and releases its budget slot, and the worker answers it
///    with the deadline-exceeded envelope at dequeue (in order), never
///    running the work;
///  * backpressure — reads pause (EPOLLIN dropped) while the global
///    in-flight budget is exhausted or the connection's write queue is
///    over its byte bound; a parked streaming query resumes when the
///    queue drains.  Nothing buffers without a bound.
///
/// Shutdown latches the moment a shutdown request *parses* (even if
/// the acknowledgment turns out unwritable): accepting stops and the
/// server exits once every live connection drains — identical to the
/// threaded listener's contract.  The requesting connection's own
/// conversation is over: it closes as soon as its ack drains, so a
/// closer that holds its socket open while waiting for server exit
/// cannot deadlock the drain.

#ifndef WHARF_NET_SERVER_HPP
#define WHARF_NET_SERVER_HPP

#include <chrono>
#include <cstddef>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>

#include "engine/engine.hpp"
#include "io/wire.hpp"
#include "net/executor.hpp"
#include "net/reactor.hpp"
#include "net/service.hpp"

namespace wharf::net {

/// Tuning knobs of one AsyncServer (all have serviceable defaults).
struct AsyncServeOptions {
  /// Global bound on requests parsed-but-unanswered across every
  /// connection (the `--max-connections` budget); <= 0 means the
  /// hardware thread count.  Overshoot is bounded by one read chunk:
  /// lines already buffered when the budget fills still queue.
  int max_inflight = 0;
  /// Worker pool size; <= 0 means the resolved max_inflight (a larger
  /// pool than the admission budget could never be fully busy).
  int pool_threads = 0;
  /// Per-line protocol bound forwarded to io::LineAssembler.
  std::size_t max_line_bytes = io::kMaxWireLineBytes;
  /// Per-connection outgoing byte bound: reads pause above it, and a
  /// streaming query parks instead of producing its next frame; both
  /// resume once the queue drains below half the bound.
  std::size_t write_buffer_limit = std::size_t{1} << 20;
  /// Back-off before retrying accept() after EMFILE/ENFILE.
  std::chrono::milliseconds accept_retry{100};
};

/// True when `errno_value` is fd exhaustion (EMFILE/ENFILE) — the
/// accept errors that mean "pause briefly", not "give up".
[[nodiscard]] bool is_fd_exhaustion(int errno_value);

/// The log line emitted when accept() hits fd exhaustion (contains
/// util::errno_message(errno_value); tests assert on it).
[[nodiscard]] std::string accept_pause_message(int errno_value);

/// The event-driven NDJSON server over one listening socket.  Construct
/// it, then call serve() on the thread that should become the reactor
/// loop.  Takes ownership of `listener_fd`.
class AsyncServer {
 public:
  /// `err` receives human-readable accept diagnostics (loop thread
  /// only); it must outlive serve().
  AsyncServer(Engine& engine, int listener_fd, AsyncServeOptions options, std::ostream& err);
  ~AsyncServer();

  AsyncServer(const AsyncServer&) = delete;
  AsyncServer& operator=(const AsyncServer&) = delete;

  /// Runs the reactor on the calling thread until a client-requested
  /// shutdown (or a fatal accept error) and every live connection has
  /// drained.  Returns true on the graceful endings, false when the
  /// listener itself failed (the caller maps that to its transport
  /// exit code).
  bool serve();

  /// The cross-connection counters (diagnostics responses report them;
  /// thread-safe to read at any time).
  [[nodiscard]] ServeTelemetry& telemetry() { return telemetry_; }

 private:
  struct Conn;
  struct ParkedStream;
  struct PendingItem;

  // Loop-thread entry points.
  void on_accept(std::uint32_t events);
  void on_conn_event(const std::shared_ptr<Conn>& conn, std::uint32_t events);
  void on_readable(const std::shared_ptr<Conn>& conn);
  void on_writable(const std::shared_ptr<Conn>& conn);
  void on_conn_wake(const std::shared_ptr<Conn>& conn);
  void on_deadline(const std::weak_ptr<Conn>& weak, std::uint64_t seq);
  void enqueue_line(const std::shared_ptr<Conn>& conn, const std::string& line);
  void ensure_worker(const std::shared_ptr<Conn>& conn);
  void update_interest(const std::shared_ptr<Conn>& conn);
  void maybe_finish(const std::shared_ptr<Conn>& conn);
  void close_conn(const std::shared_ptr<Conn>& conn);
  void resume_budget_paused();
  void stop_accepting();
  void check_exit();

  // Worker-side (any executor thread).
  void worker_run(const std::shared_ptr<Conn>& conn);
  bool emit_line(const std::shared_ptr<Conn>& conn, const std::string& line);
  void notify(const std::shared_ptr<Conn>& conn);

  [[nodiscard]] bool budget_full() const;

  Engine& engine_;
  std::ostream& err_;
  AsyncServeOptions options_;
  int listener_fd_ = -1;
  ServeTelemetry telemetry_;

  Reactor reactor_;

  // Loop-thread-only state.
  std::map<int, std::shared_ptr<Conn>> conns_;
  std::map<int, std::shared_ptr<Conn>> budget_paused_;  ///< reads off: budget
  bool accepting_ = true;
  bool shutdown_latched_ = false;
  bool accept_failed_ = false;
  std::uint64_t next_seq_ = 1;

  // Declared last: its destructor joins the workers while the reactor
  // and connection map above are still alive for their final posts.
  Executor executor_;
};

}  // namespace wharf::net

#endif  // WHARF_NET_SERVER_HPP
