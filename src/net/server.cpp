#include "net/server.hpp"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <deque>
#include <ostream>
#include <thread>
#include <utility>

#include "util/mutex.hpp"
#include "util/strings.hpp"
#include "util/thread_annotations.hpp"

namespace wharf::net {

namespace {

int default_parallelism() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<int>(hw);
}

/// True for whitespace-only request lines (skipped, like the stdio loop).
bool blank_line(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

}  // namespace

bool is_fd_exhaustion(int errno_value) {
  return errno_value == EMFILE || errno_value == ENFILE;
}

std::string accept_pause_message(int errno_value) {
  return util::cat("serve: accept(): ", util::errno_message(errno_value),
                   "; pausing accepts until descriptors free up");
}

// ---------------------------------------------------------------------
// Per-connection state
// ---------------------------------------------------------------------

/// A streaming query suspended on backpressure: resumes exactly where
/// it stopped once the connection's write queue drains.
struct AsyncServer::ParkedStream {
  io::WireRequest request;
  StreamProgress progress;
};

/// One entry of a connection's FIFO request queue.  Protocol errors
/// ride the same queue as pre-rendered responses (seq == 0) so answers
/// keep request order.
struct AsyncServer::PendingItem {
  std::uint64_t seq = 0;     ///< nonzero: a parsed, budget-counted request
  bool cancelled = false;    ///< deadline fired while still queued
  bool ready = false;        ///< response is pre-rendered (protocol error)
  std::string response;      ///< when ready
  io::WireRequest request;   ///< when !ready
};

/// One live connection.  Plain members belong to the reactor loop
/// thread; everything crossing the loop/worker boundary sits under
/// `mutex` (the busy flag serializes workers, so `conversation` has a
/// single toucher at any moment even though ownership migrates).
struct AsyncServer::Conn {
  int fd = -1;
  io::LineAssembler assembler;  // loop thread only
  Conversation conversation;    // exclusive to the single active worker

  // Loop-thread-only read/interest state.
  bool read_eof = false;
  bool read_paused_budget = false;
  bool read_paused_write = false;
  /// A shutdown request parsed on this connection: its conversation is
  /// over — stop reading, and close once the ack drains (parity with
  /// the stdio loop, whose serve_stream returns after a shutdown; a
  /// closer that waits for server exit while holding its socket open
  /// must not deadlock the drain).
  bool conversation_over = false;

  util::Mutex mutex;
  std::deque<PendingItem> pending WHARF_GUARDED_BY(mutex);
  bool busy WHARF_GUARDED_BY(mutex) = false;  ///< a worker task owns the conn
  bool closed WHARF_GUARDED_BY(mutex) = false;
  std::unique_ptr<ParkedStream> parked WHARF_GUARDED_BY(mutex);
  bool resume_pending WHARF_GUARDED_BY(mutex) = false;
  std::deque<std::string> writes WHARF_GUARDED_BY(mutex);  ///< framed lines
  std::size_t write_offset WHARF_GUARDED_BY(mutex) = 0;    ///< into writes.front()
  std::size_t write_bytes WHARF_GUARDED_BY(mutex) = 0;
  bool wake_posted WHARF_GUARDED_BY(mutex) = false;  ///< a notify() is in flight

  explicit Conn(std::size_t max_line_bytes) : assembler(max_line_bytes) {}
};

// ---------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------

AsyncServer::AsyncServer(Engine& engine, int listener_fd, AsyncServeOptions options,
                         std::ostream& err)
    : engine_(engine),
      err_(err),
      options_(options),
      listener_fd_(listener_fd),
      executor_(static_cast<std::size_t>(
          options.pool_threads > 0
              ? options.pool_threads
              : (options.max_inflight > 0 ? options.max_inflight : default_parallelism()))) {
  if (options_.max_inflight <= 0) options_.max_inflight = default_parallelism();
  if (options_.write_buffer_limit == 0) options_.write_buffer_limit = 1;
  // The listener arrives blocking (bind_serve_socket serves both
  // transports); the reactor's accept-until-EAGAIN loop needs it not.
  const int flags = ::fcntl(listener_fd_, F_GETFL, 0);
  (void)::fcntl(listener_fd_, F_SETFL, flags | O_NONBLOCK);
}

AsyncServer::~AsyncServer() {
  executor_.stop();
  if (listener_fd_ >= 0) ::close(listener_fd_);
}

// ---------------------------------------------------------------------
// Serve loop
// ---------------------------------------------------------------------

bool AsyncServer::serve() {
  reactor_.add_fd(listener_fd_, EPOLLIN, [this](std::uint32_t events) { on_accept(events); });
  reactor_.run();
  // Everything drained (the exit condition): finish any worker still
  // unwinding, then release the listener.
  executor_.stop();
  ::close(listener_fd_);
  listener_fd_ = -1;
  return !accept_failed_;
}

void AsyncServer::on_accept(std::uint32_t /*events*/) {
  while (accepting_) {
    const int fd = ::accept4(listener_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (is_fd_exhaustion(errno)) {
        // Out of descriptors: log once, stop watching the listener, and
        // retry after a short back-off — never spin, never exit.  The
        // kernel keeps ready clients in the accept backlog meanwhile.
        err_ << accept_pause_message(errno) << "\n";
        telemetry_.accept_pauses.fetch_add(1, std::memory_order_relaxed);
        reactor_.set_interest(listener_fd_, 0);
        reactor_.add_timer(std::chrono::steady_clock::now() + options_.accept_retry, [this] {
          if (accepting_) reactor_.set_interest(listener_fd_, EPOLLIN);
        });
        return;
      }
      // Any other accept failure is fatal for the listener: stop
      // accepting, serve out the live connections, exit non-zero.
      err_ << "serve: accept(): " << util::errno_message(errno) << "\n";
      accept_failed_ = true;
      stop_accepting();
      check_exit();
      return;
    }

    auto conn = std::make_shared<Conn>(options_.max_line_bytes);
    conn->fd = fd;
    conn->conversation.engine = &engine_;
    conn->conversation.server = &telemetry_;
    conns_.emplace(fd, conn);
    telemetry_.connections_served.fetch_add(1, std::memory_order_relaxed);
    telemetry_.connections_active.fetch_add(1, std::memory_order_relaxed);
    reactor_.add_fd(fd, EPOLLIN,
                    [this, conn](std::uint32_t events) { on_conn_event(conn, events); });
    if (budget_full()) {
      // Admitted, but not read from yet: the budget governs requests,
      // and this newcomer starts paused like everyone else.
      conn->read_paused_budget = true;
      budget_paused_.emplace(fd, conn);
      telemetry_.backpressure_stalls.fetch_add(1, std::memory_order_relaxed);
      update_interest(conn);
    }
  }
}

void AsyncServer::on_conn_event(const std::shared_ptr<Conn>& conn, std::uint32_t events) {
  if ((events & EPOLLOUT) != 0) on_writable(conn);
  if (conns_.find(conn->fd) == conns_.end()) return;  // writable path closed it
  if ((events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) on_readable(conn);
}

void AsyncServer::on_readable(const std::shared_ptr<Conn>& conn) {
  if (conn->read_paused_budget || conn->read_paused_write || conn->read_eof ||
      conn->conversation_over) {
    return;
  }
  if (budget_full()) {
    conn->read_paused_budget = true;
    budget_paused_.emplace(conn->fd, conn);
    telemetry_.backpressure_stalls.fetch_add(1, std::memory_order_relaxed);
    update_interest(conn);
    return;
  }

  // One chunk per readiness event: level-triggered epoll re-reports
  // leftovers, which keeps a firehose client from starving the rest.
  char buf[16384];
  const ssize_t n = ::read(conn->fd, buf, sizeof buf);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    close_conn(conn);  // ECONNRESET and friends: the peer is gone
    return;
  }
  if (n == 0) {
    // Clean half-close: no more requests, but everything already queued
    // still gets answered before the connection closes.
    conn->read_eof = true;
    update_interest(conn);
    maybe_finish(conn);
    return;
  }

  conn->assembler.feed(buf, static_cast<std::size_t>(n));
  std::string line;
  while (true) {
    const io::LineAssembler::Result result = conn->assembler.next(line);
    if (result == io::LineAssembler::Result::kNone) break;
    if (result == io::LineAssembler::Result::kOversized) {
      telemetry_.oversized_lines.fetch_add(1, std::memory_order_relaxed);
      PendingItem item;
      item.ready = true;
      item.response = io::oversized_line_error(options_.max_line_bytes);
      const util::MutexLock lock(conn->mutex);
      conn->pending.push_back(std::move(item));
      continue;
    }
    if (blank_line(line)) continue;
    enqueue_line(conn, line);
    // A shutdown line ends the conversation: anything buffered after it
    // is dropped, exactly as the stdio loop stops reading there.
    if (conn->conversation_over) break;
  }
  ensure_worker(conn);

  if (budget_full()) {
    conn->read_paused_budget = true;
    budget_paused_.emplace(conn->fd, conn);
    telemetry_.backpressure_stalls.fetch_add(1, std::memory_order_relaxed);
  }
  {
    const util::MutexLock lock(conn->mutex);
    conn->read_paused_write = conn->write_bytes > options_.write_buffer_limit;
  }
  update_interest(conn);
}

void AsyncServer::enqueue_line(const std::shared_ptr<Conn>& conn, const std::string& line) {
  const Expected<io::WireRequest> parsed = io::parse_request(line);
  PendingItem item;
  if (!parsed) {
    item.ready = true;
    item.response = io::wire_protocol_error(parsed.status());
  } else {
    item.request = parsed.value();
    item.seq = next_seq_++;
    telemetry_.requests_inflight.fetch_add(1, std::memory_order_relaxed);
    if (item.request.kind == io::WireKind::kShutdown) {
      conn->conversation_over = true;
      if (!shutdown_latched_) {
        // The latch happens at *parse* time: even if this client
        // vanishes before its acknowledgment is writable, the server
        // still stops.
        shutdown_latched_ = true;
        stop_accepting();
      }
    }
    if (item.request.deadline_ms > 0) {
      const std::weak_ptr<Conn> weak = conn;
      const std::uint64_t seq = item.seq;
      reactor_.add_timer(
          std::chrono::steady_clock::now() + std::chrono::milliseconds(item.request.deadline_ms),
          [this, weak, seq] { on_deadline(weak, seq); });
    }
  }
  const util::MutexLock lock(conn->mutex);
  conn->pending.push_back(std::move(item));
}

void AsyncServer::ensure_worker(const std::shared_ptr<Conn>& conn) {
  bool submit = false;
  {
    const util::MutexLock lock(conn->mutex);
    // A parked stream keeps `busy` held: new requests wait their turn.
    if (!conn->busy && !conn->pending.empty()) {
      conn->busy = true;
      submit = true;
    }
  }
  if (submit) {
    executor_.submit([this, conn] { worker_run(conn); });
  }
}

void AsyncServer::on_deadline(const std::weak_ptr<Conn>& weak, std::uint64_t seq) {
  const std::shared_ptr<Conn> conn = weak.lock();  // locking: weak_ptr::lock, not a mutex
  if (conn == nullptr) return;
  bool expired = false;
  {
    const util::MutexLock lock(conn->mutex);
    for (PendingItem& item : conn->pending) {
      if (item.seq == seq) {
        if (!item.cancelled) {
          item.cancelled = true;
          expired = true;
        }
        break;
      }
    }
  }
  if (!expired) return;  // already dequeued: started work always finishes
  telemetry_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
  telemetry_.requests_inflight.fetch_sub(1, std::memory_order_relaxed);
  resume_budget_paused();
}

void AsyncServer::on_writable(const std::shared_ptr<Conn>& conn) {
  bool broken = false;
  bool resume = false;
  {
    const util::MutexLock lock(conn->mutex);
    while (!conn->writes.empty()) {
      const std::string& front = conn->writes.front();
      const ssize_t n = ::send(conn->fd, front.data() + conn->write_offset,
                               front.size() - conn->write_offset, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
        broken = true;
        break;
      }
      conn->write_offset += static_cast<std::size_t>(n);
      conn->write_bytes -= static_cast<std::size_t>(n);
      if (conn->write_offset == front.size()) {
        conn->writes.pop_front();
        conn->write_offset = 0;
      }
    }
    if (!broken && conn->write_bytes <= options_.write_buffer_limit / 2) {
      if (conn->parked != nullptr && !conn->resume_pending) {
        conn->resume_pending = true;
        resume = true;
      }
    }
  }
  if (broken) {
    close_conn(conn);
    return;
  }
  if (resume) {
    executor_.submit([this, conn] { worker_run(conn); });
  }
  bool below_limit = false;
  {
    const util::MutexLock lock(conn->mutex);
    below_limit = conn->write_bytes <= options_.write_buffer_limit / 2;
  }
  if (below_limit && conn->read_paused_write) {
    conn->read_paused_write = false;
  }
  update_interest(conn);
  maybe_finish(conn);
}

void AsyncServer::on_conn_wake(const std::shared_ptr<Conn>& conn) {
  // Budget slots released by this connection's worker must un-pause
  // siblings even when the connection itself is already closed.
  resume_budget_paused();
  if (conns_.find(conn->fd) == conns_.end()) return;  // already closed
  update_interest(conn);
  // Level-triggered EPOLLOUT will fire immediately for a writable
  // socket, but flushing now saves the extra loop pass (and covers the
  // case where the write queue is the only thing keeping us alive).
  on_writable(conn);
}

void AsyncServer::update_interest(const std::shared_ptr<Conn>& conn) {
  if (conns_.find(conn->fd) == conns_.end()) return;
  std::uint32_t events = 0;
  if (!conn->read_eof && !conn->read_paused_budget && !conn->read_paused_write &&
      !conn->conversation_over) {
    events |= EPOLLIN;
  }
  {
    const util::MutexLock lock(conn->mutex);
    if (!conn->writes.empty()) events |= EPOLLOUT;
  }
  reactor_.set_interest(conn->fd, events);
}

void AsyncServer::maybe_finish(const std::shared_ptr<Conn>& conn) {
  if (!conn->read_eof && !conn->conversation_over) return;
  if (conns_.find(conn->fd) == conns_.end()) return;
  {
    const util::MutexLock lock(conn->mutex);
    if (conn->busy || !conn->pending.empty() || !conn->writes.empty() ||
        conn->parked != nullptr) {
      return;
    }
  }
  close_conn(conn);
}

void AsyncServer::close_conn(const std::shared_ptr<Conn>& conn) {
  const auto it = conns_.find(conn->fd);
  if (it == conns_.end()) return;
  conns_.erase(it);
  budget_paused_.erase(conn->fd);
  reactor_.remove_fd(conn->fd);

  bool kick_parked = false;
  {
    const util::MutexLock lock(conn->mutex);
    conn->closed = true;
    // Queued-but-unanswered requests release their budget slots here;
    // cancelled ones already did at deadline fire.
    for (const PendingItem& item : conn->pending) {
      if (item.seq != 0 && !item.cancelled) {
        telemetry_.requests_inflight.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    conn->pending.clear();
    conn->writes.clear();
    conn->write_offset = 0;
    conn->write_bytes = 0;
    // A parked stream still holds a budget slot: let a worker resume
    // it against the now-closed connection — its first emit fails, the
    // stream aborts, and the normal completion path releases the slot.
    if (conn->parked != nullptr && !conn->resume_pending) {
      conn->resume_pending = true;
      kick_parked = true;
    }
  }
  ::close(conn->fd);
  telemetry_.connections_active.fetch_sub(1, std::memory_order_relaxed);
  if (kick_parked) {
    executor_.submit([this, conn] { worker_run(conn); });
  }
  resume_budget_paused();
  check_exit();
}

void AsyncServer::resume_budget_paused() {
  if (budget_full() || budget_paused_.empty()) return;
  // Budget freed: let every paused connection read again (admission is
  // re-checked per read, so an immediate refill just re-pauses them).
  std::map<int, std::shared_ptr<Conn>> paused;
  paused.swap(budget_paused_);
  for (const auto& [fd, conn] : paused) {
    if (conns_.find(fd) == conns_.end()) continue;
    conn->read_paused_budget = false;
    update_interest(conn);
  }
}

void AsyncServer::stop_accepting() {
  if (!accepting_) return;
  accepting_ = false;
  reactor_.remove_fd(listener_fd_);
}

void AsyncServer::check_exit() {
  if ((shutdown_latched_ || accept_failed_) && conns_.empty()) {
    reactor_.stop();
  }
}

bool AsyncServer::budget_full() const {
  return telemetry_.requests_inflight.load(std::memory_order_relaxed) >= options_.max_inflight;
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

bool AsyncServer::emit_line(const std::shared_ptr<Conn>& conn, const std::string& line) {
  {
    const util::MutexLock lock(conn->mutex);
    if (conn->closed) return false;
    conn->writes.push_back(line + "\n");
    conn->write_bytes += line.size() + 1;
  }
  notify(conn);
  return true;
}

void AsyncServer::notify(const std::shared_ptr<Conn>& conn) {
  {
    const util::MutexLock lock(conn->mutex);
    if (conn->wake_posted) return;  // one post covers any number of emits
    conn->wake_posted = true;
  }
  reactor_.post([this, conn] {
    {
      const util::MutexLock lock(conn->mutex);
      conn->wake_posted = false;
    }
    on_conn_wake(conn);
  });
}

void AsyncServer::worker_run(const std::shared_ptr<Conn>& conn) {
  const Emit emit = [this, &conn](const std::string& line) { return emit_line(conn, line); };
  const std::function<bool()> should_park = [this, &conn] {
    const util::MutexLock lock(conn->mutex);
    return !conn->closed && conn->write_bytes > options_.write_buffer_limit;
  };

  while (true) {
    // Resume a parked stream first: it predates everything queued.
    std::unique_ptr<ParkedStream> stream;
    PendingItem item;
    {
      const util::MutexLock lock(conn->mutex);
      if (conn->parked != nullptr) {
        stream = std::move(conn->parked);
        conn->resume_pending = false;
      } else if (conn->pending.empty()) {
        conn->busy = false;
        break;
      } else {
        item = std::move(conn->pending.front());
        conn->pending.pop_front();
      }
    }

    if (stream == nullptr && !item.ready && item.seq != 0 && !item.cancelled &&
        item.request.stream && item.request.kind == io::WireKind::kQuery) {
      stream = std::make_unique<ParkedStream>();
      stream->request = std::move(item.request);
    }

    if (stream != nullptr) {
      if (!run_query_stream(conn->conversation, stream->request, stream->progress, emit,
                            should_park)) {
        bool resubmit = false;
        {
          const util::MutexLock lock(conn->mutex);
          conn->parked = std::move(stream);
          // The event that would resume us — the drain below the low
          // watermark, or close_conn's kick — may have already happened
          // between the park decision and this re-check: resume
          // ourselves rather than waiting for a wakeup nobody owes us.
          // (A closed connection must resume too: the abort path is
          // what releases the stream's budget slot.)
          if (!conn->resume_pending &&
              (conn->closed || conn->write_bytes <= options_.write_buffer_limit / 2)) {
            conn->resume_pending = true;
            resubmit = true;
          }
        }
        if (resubmit) {
          executor_.submit([this, conn] { worker_run(conn); });
        }
        break;  // busy stays held by the parked stream
      }
      telemetry_.requests_inflight.fetch_sub(1, std::memory_order_relaxed);
      telemetry_.requests_served.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    if (item.ready) {
      (void)emit_line(conn, item.response);
      continue;
    }
    if (item.cancelled) {
      // The deadline fired while this sat in the queue: answer with the
      // envelope, skip the work (the budget slot was released at fire).
      (void)emit_line(conn, deadline_exceeded_response(item.request));
      telemetry_.requests_served.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    bool shutdown = false;  // already latched at parse time by the loop
    const std::string response = handle_request(conn->conversation, item.request, shutdown);
    (void)emit_line(conn, response);
    telemetry_.requests_inflight.fetch_sub(1, std::memory_order_relaxed);
    telemetry_.requests_served.fetch_add(1, std::memory_order_relaxed);
  }
  notify(conn);
}

}  // namespace wharf::net
