/// \file reactor.hpp
/// The event loop at the heart of the async serve core: a thin,
/// single-threaded epoll reactor owning fd readiness, timers, and
/// cross-thread wakeups.
///
/// Threading model (the whole point of the design):
///  * exactly one thread — the one inside run() — touches the fd
///    registry, the timer wheel, and every registered handler; that
///    loop thread never blocks on compute or on a slow peer, it only
///    sleeps in epoll_wait;
///  * other threads communicate with the loop exclusively through
///    post() (and stop(), which is a posted flag): the callable is
///    queued under a mutex and an eventfd write wakes the loop, which
///    runs it on the loop thread.  This is the only cross-thread
///    surface — handlers and timers need no locking of their own.
///
/// Interest is level-triggered (EPOLLIN/EPOLLOUT as plain bitmasks via
/// set_interest), so handlers may consume as little as they like per
/// wakeup without losing edges.  Timers are a deadline map backed by a
/// single timerfd armed to the earliest deadline — the "timer wheel"
/// the serve core schedules request deadlines and accept back-off on.

#ifndef WHARF_NET_REACTOR_HPP
#define WHARF_NET_REACTOR_HPP

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace wharf::net {

/// A single-threaded epoll event loop with posted-callable wakeups and
/// one-shot timers.  See the file comment for the threading contract:
/// every member except post() and stop() is loop-thread-only.
class Reactor {
 public:
  /// Invoked on the loop thread with the ready epoll event bits.
  using FdHandler = std::function<void(std::uint32_t events)>;
  /// Identifies a pending timer for cancel_timer (never reused).
  using TimerId = std::uint64_t;

  /// Creates the epoll instance and the wakeup eventfd/timerfd.  Throws
  /// wharf::Error when the kernel refuses (fd exhaustion at startup).
  Reactor();
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Registers `fd` with the given level-triggered interest bits.  The
  /// handler is invoked on the loop thread for every readiness event;
  /// it may add, re-target, or remove fds (itself included) freely.
  void add_fd(int fd, std::uint32_t events, FdHandler handler);

  /// Replaces the interest bits of a registered fd (e.g. pausing reads
  /// for backpressure means dropping EPOLLIN here).
  void set_interest(int fd, std::uint32_t events);

  /// Deregisters `fd` and drops its handler.  The fd itself stays open
  /// — the connection owns the close.  Safe to call from inside the
  /// fd's own handler; events already harvested for it are skipped.
  void remove_fd(int fd);

  /// Schedules `fn` to run on the loop thread at or after `when`.
  /// Loop-thread-only (like the fd registry); cross-thread scheduling
  /// goes through post().
  TimerId add_timer(std::chrono::steady_clock::time_point when, std::function<void()> fn);

  /// Drops a not-yet-fired timer; a no-op for fired or unknown ids (so
  /// lazy cancellation — just forgetting the id — is also fine).
  void cancel_timer(TimerId id);

  /// Queues `fn` for execution on the loop thread and wakes it.  The
  /// only thread-safe entry point; callable from worker threads and
  /// from the loop itself.  Safe after run() returned (the callable is
  /// then simply never executed).
  void post(std::function<void()> fn) WHARF_EXCLUDES(mutex_);

  /// Makes run() return once the current dispatch pass finishes.
  /// Thread-safe (it is a post()).
  void stop() WHARF_EXCLUDES(mutex_);

  /// Runs the loop on the calling thread until stop().  Dispatches fd
  /// events, due timers, and posted callables, in that order per pass.
  void run();

 private:
  struct Timer {
    std::chrono::steady_clock::time_point when;  ///< absolute deadline
    std::function<void()> fn;                    ///< fires on the loop thread
  };

  void dispatch_wakeup();
  void dispatch_timerfd();
  void arm_timerfd();  ///< (re)arms the timerfd to the earliest deadline

  int epoll_fd_ = -1;
  int wake_fd_ = -1;   ///< eventfd: post() notifications
  int timer_fd_ = -1;  ///< timerfd: earliest timer deadline

  // Loop-thread-only state.  Handlers are held by shared_ptr so a
  // handler that removes an fd mid-dispatch cannot free the closure
  // the loop is currently executing.
  std::map<int, std::shared_ptr<FdHandler>> handlers_;
  std::map<TimerId, Timer> timers_;
  TimerId next_timer_id_ = 1;
  bool stopped_ = false;

  util::Mutex mutex_;
  std::vector<std::function<void()>> posted_ WHARF_GUARDED_BY(mutex_);
};

}  // namespace wharf::net

#endif  // WHARF_NET_REACTOR_HPP
