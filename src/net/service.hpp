/// \file service.hpp
/// Transport-independent request handling of the serve protocol: the
/// per-connection Conversation (named sessions over the shared engine),
/// the request dispatchers, streaming query execution, and the
/// cross-connection telemetry surfaced by `diagnostics` responses.
///
/// Both transports speak through this layer: the blocking stdio loop
/// (cli::serve_stream) and the async serve core (net::AsyncServer) call
/// the same handle_request()/run_query_stream(), so protocol semantics
/// cannot drift between them.  Responses are produced as complete
/// NDJSON lines (no trailing newline) handed to an Emit callback — the
/// transport decides whether that means a blocking FramedWriter write
/// or an append to a reactor-drained write queue.
///
/// Wire formats, frame layouts, and field tables are normative in
/// docs/serve-protocol.md.

#ifndef WHARF_NET_SERVICE_HPP
#define WHARF_NET_SERVICE_HPP

#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/session.hpp"
#include "io/wire.hpp"

namespace wharf::net {

/// Cross-connection counters of one serve process, surfaced in every
/// `diagnostics` response ("server" object, same field order).
/// Thread-safe (plain atomics); shared by every connection of one
/// server — and by the reactor, workers, and timers of the async core.
struct ServeTelemetry {
  std::atomic<long long> connections_served{0};  ///< conversations started
  std::atomic<int> connections_active{0};        ///< currently live
  /// Requests parsed but not yet answered (queued + executing), across
  /// all connections — the quantity the global budget bounds.
  std::atomic<int> requests_inflight{0};
  std::atomic<long long> requests_served{0};     ///< requests answered
  /// Requests answered with deadline-exceeded instead of being run.
  std::atomic<long long> deadline_expired{0};
  /// Times a connection's reads were paused (write queue over its bound
  /// or the global in-flight budget exhausted).
  std::atomic<long long> backpressure_stalls{0};
  /// Request lines rejected for exceeding the protocol line bound.
  std::atomic<long long> oversized_lines{0};
  /// Times the accept loop backed off on EMFILE/ENFILE.
  std::atomic<long long> accept_pauses{0};
  /// Streaming result frames emitted (terminal summaries excluded).
  std::atomic<long long> stream_frames{0};
};

/// The per-conversation state: named sessions over the engine's shared
/// store.  One conversation belongs to one connection; at any moment at
/// most one thread touches it (the stdio loop, or the single worker the
/// async core grants a connection at a time) — sessions are never
/// shared across connections, the ArtifactStore underneath is.
struct Conversation {
  Engine* engine = nullptr;
  ServeTelemetry* server = nullptr;  ///< optional; counters, not ownership
  std::map<std::string, Session> sessions;
};

/// Delivers one complete response line to the transport.  Returns false
/// once the peer is unreachable — the producer stops emitting (streams
/// abort between frames; nothing blocks).
using Emit = std::function<bool(const std::string&)>;

/// Dispatches one parsed non-streaming request and returns its single
/// response line; sets `shutdown` for the shutdown kind.  Streaming
/// queries (request.stream) go through run_query_stream() instead.
[[nodiscard]] std::string handle_request(Conversation& conversation,
                                         const io::WireRequest& request, bool& shutdown);

/// Resumable progress of one streaming query request: which results
/// exist and which query runs next.  Owned by the transport so a parked
/// stream (async backpressure) can continue exactly where it stopped.
struct StreamProgress {
  std::vector<QueryResult> results;
  std::size_t next = 0;       ///< first query not yet executed
  bool preflighted = false;   ///< session lookup already done
};

/// Executes a streaming query request incrementally: one query at a
/// time, emitting a "result" frame per query and a terminal "summary"
/// frame (docs/serve-protocol.md, "Streaming responses").  Between
/// queries `should_park()` is consulted; true suspends execution with
/// the position saved in `progress` — call again later to resume.
/// Returns true when the request is finished (summary emitted, session
/// missing, or the transport failed), false when parked.
bool run_query_stream(Conversation& conversation, const io::WireRequest& request,
                      StreamProgress& progress, const Emit& emit,
                      const std::function<bool()>& should_park);

/// The deadline-exceeded error envelope for a request whose deadline
/// elapsed while it was still queued (shared wording between transports
/// and tests).
[[nodiscard]] std::string deadline_exceeded_response(const io::WireRequest& request);

}  // namespace wharf::net

#endif  // WHARF_NET_SERVICE_HPP
