#include "net/executor.hpp"

#include <utility>

namespace wharf::net {

Executor::Executor(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker(); });
  }
}

Executor::~Executor() { stop(); }

void Executor::submit(std::function<void()> fn) {
  {
    const util::MutexLock lock(mutex_);
    if (stopping_) return;
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void Executor::stop() {
  {
    const util::MutexLock lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void Executor::worker() {
  while (true) {
    std::function<void()> task;
    {
      const util::MutexLock lock(mutex_);
      while (queue_.empty() && !stopping_) {
        work_cv_.wait(mutex_);
      }
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace wharf::net
