/// \file executor.hpp
/// The fixed worker pool of the async serve core: request execution
/// happens here, never on the reactor loop thread.
///
/// This is the bounded hand-off half of the reactor/executor pair (the
/// Tenzir pipeline-executor idiom): the reactor parses requests and
/// enqueues closures; a fixed set of worker threads drains them FIFO.
/// The pool size is decided once at construction — serving one client
/// or a thousand runs on exactly the same thread count, which is the
/// property bench/serve_async.cpp gates on.  The queue itself is not
/// bounded here: the serve core bounds admission upstream (the global
/// in-flight request budget), which keeps the queue short by
/// construction and the backpressure decision in one place.

#ifndef WHARF_NET_EXECUTOR_HPP
#define WHARF_NET_EXECUTOR_HPP

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace wharf::net {

/// A fixed-size FIFO thread pool.  submit() is thread-safe; stop()
/// drains every already-submitted task, then joins the workers.
class Executor {
 public:
  /// Spawns `threads` workers (at least one).
  explicit Executor(std::size_t threads);

  /// Equivalent to stop().
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueues one task.  Thread-safe.  Tasks submitted after stop()
  /// began are refused (dropped) — by then the serve core has already
  /// drained every connection, so there is legitimately nothing to run.
  void submit(std::function<void()> fn) WHARF_EXCLUDES(mutex_);

  /// Stops accepting work, lets the workers finish everything already
  /// queued, and joins them.  Idempotent.
  void stop() WHARF_EXCLUDES(mutex_);

  /// The fixed worker count (telemetry and tests).
  [[nodiscard]] std::size_t threads() const { return workers_.size(); }

 private:
  void worker() WHARF_EXCLUDES(mutex_);

  util::Mutex mutex_;
  util::CondVar work_cv_;
  std::deque<std::function<void()>> queue_ WHARF_GUARDED_BY(mutex_);
  bool stopping_ WHARF_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace wharf::net

#endif  // WHARF_NET_EXECUTOR_HPP
