/// \file client.hpp
/// Coordinator-side worker transport: one NDJSON byte stream per worker
/// process, in either of two modes.
///
///  * **spawn**: fork/exec `<binary> serve` with both stdio ends dup'ed
///    onto one AF_UNIX socketpair — the worker speaks the exact stdio
///    protocol of `wharf serve`, the coordinator holds the other end.
///    The child's pid is exposed so fault tests can SIGKILL it and the
///    coordinator can reap it;
///  * **connect**: a TCP connection to an already-running
///    `wharf serve --listen` worker (possibly on another machine —
///    `wharf sweep --connect host:port,...`).
///
/// A WorkerLink is a dumb pipe plus the read-side line state machine
/// (io::LineAssembler): blocking send_line()/read_line() for tests and
/// simple drivers, or fd() + lines() for the reactor-driven coordinator
/// that must never block.  It is single-caller, like every connection
/// object in wharf.

#ifndef WHARF_DIST_CLIENT_HPP
#define WHARF_DIST_CLIENT_HPP

#include <sys/types.h>

#include <string>
#include <vector>

#include "io/wire.hpp"
#include "util/status.hpp"

namespace wharf::dist {

/// How to reach one worker.  `binary` non-empty selects spawn mode
/// (host/port ignored); empty selects connect mode.
struct WorkerSpec {
  std::string binary;     ///< path of the wharf binary to exec ("" = connect mode)
  int jobs = 1;           ///< worker-side --jobs (spawn mode)
  std::string store_dir;  ///< worker-side --store-dir ("" = no snapshot; spawn mode)
  /// Worker-side --persist-interval in ms (spawn mode; < 0 = serve's
  /// default).  Sweeps keep this short so a killed worker leaves a
  /// near-current snapshot for its respawn to warm-start from.
  long long persist_interval_ms = -1;
  std::string host = "127.0.0.1";  ///< connect mode peer
  int port = 0;                    ///< connect mode port (> 0 selects nothing by itself)
};

/// The path of the currently running executable (/proc/self/exe) — how
/// `wharf sweep` finds the binary to spawn its workers from.
[[nodiscard]] std::string self_binary();

/// One open worker byte stream.  Owns the fd (closed on destruction);
/// does NOT reap a spawned child — callers own the process lifecycle
/// (kill_now()/reap() help).  Movable, not copyable.
class WorkerLink {
 public:
  /// Opens a link per `spec` (spawn or connect).  Errors (exec target
  /// missing, connection refused, ...) come back as a Status.
  [[nodiscard]] static Expected<WorkerLink> open(const WorkerSpec& spec);

  WorkerLink() = default;
  ~WorkerLink();
  WorkerLink(WorkerLink&& other) noexcept;
  WorkerLink& operator=(WorkerLink&& other) noexcept;
  WorkerLink(const WorkerLink&) = delete;
  WorkerLink& operator=(const WorkerLink&) = delete;

  /// The stream fd, or -1 after close_fd()/move-from.
  [[nodiscard]] int fd() const { return fd_; }
  /// The spawned child's pid, or -1 in connect mode.
  [[nodiscard]] pid_t pid() const { return pid_; }
  /// True for spawn mode (there is a child process to reap).
  [[nodiscard]] bool spawned() const { return pid_ > 0; }

  /// The read-side line state machine — the reactor-driven coordinator
  /// feeds raw read() chunks here and drains complete lines.
  [[nodiscard]] io::LineAssembler& lines() { return lines_; }

  /// Blocking write of `line` + '\n'.  False once the transport failed
  /// (EPIPE/ECONNRESET — the worker died or the connection dropped).
  bool send_line(const std::string& line);

  /// Blocking bounded read of the next complete line (poll + feed).
  /// deadline_exceeded after `timeout_ms` without one; internal on EOF
  /// or a transport error.  Test/driver convenience — the coordinator
  /// itself reads through the reactor.
  [[nodiscard]] Expected<std::string> read_line(int timeout_ms);

  /// Closes the stream from this side (coordinator-side disconnect —
  /// the fault tests sever links this way).  A spawned worker sees EOF
  /// on stdin and exits through its graceful persist path.
  void close_fd();

  /// SIGKILLs a spawned worker (no-op in connect mode) — the
  /// mid-flight-crash fault.  The stream stays open until close_fd();
  /// the coordinator observes the death as EOF.
  void kill_now();

  /// Reaps a spawned child: waits up to `grace_ms` for it to exit, then
  /// SIGKILLs and waits again.  Returns immediately in connect mode.
  void reap(int grace_ms);

 private:
  WorkerLink(int fd, pid_t pid) : fd_(fd), pid_(pid) {}

  int fd_ = -1;
  pid_t pid_ = -1;
  io::LineAssembler lines_;
};

}  // namespace wharf::dist

#endif  // WHARF_DIST_CLIENT_HPP
