#include "dist/shard.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace wharf::dist {

std::size_t default_unit_size(std::size_t candidate_count, std::size_t workers) {
  if (workers == 0) workers = 1;
  // Aim for ~8 units per worker so the window/steal machinery has slack
  // to rebalance; the clamp keeps degenerate inputs sane.
  const std::size_t target = candidate_count / (workers * 8);
  return std::clamp<std::size_t>(target, 1, 128);
}

std::vector<WorkUnit> plan_units(const std::vector<std::vector<Priority>>& candidates,
                                 std::size_t unit_size) {
  WHARF_EXPECT(unit_size >= 1, "unit_size must be >= 1");
  WHARF_EXPECT(!candidates.empty(), "cannot plan units over an empty candidate list");
  std::vector<WorkUnit> units;
  units.reserve((candidates.size() + unit_size - 1) / unit_size);
  for (std::size_t first = 0; first < candidates.size(); first += unit_size) {
    WorkUnit unit;
    unit.id = units.size() + 1;  // id 0 is the coordinator's nominal unit
    unit.first = first;
    const std::size_t last = std::min(first + unit_size, candidates.size());
    unit.candidates.assign(candidates.begin() + static_cast<std::ptrdiff_t>(first),
                           candidates.begin() + static_cast<std::ptrdiff_t>(last));
    units.push_back(std::move(unit));
  }
  return units;
}

search::SearchResult merge_objectives(const std::vector<std::vector<Priority>>& candidates,
                                      const std::vector<search::Objective>& objectives) {
  WHARF_EXPECT(!candidates.empty(), "cannot merge an empty candidate list");
  WHARF_EXPECT(objectives.size() == candidates.size(),
               "objective table has " << objectives.size() << " entries for "
                                      << candidates.size() << " candidates");
  search::SearchResult result;
  bool have_best = false;
  search::fold_scores(candidates, objectives, result, have_best);
  result.evaluations = static_cast<long long>(candidates.size());
  return result;
}

}  // namespace wharf::dist
