#include "dist/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "util/expect.hpp"
#include "util/strings.hpp"

namespace wharf::dist {

namespace {

/// Builds the worker command line of spawn mode.  The worker is a stock
/// `wharf serve` on stdio — nothing distributed-specific runs on the
/// worker side, which is what lets --connect target plain remote
/// servers too.
std::vector<std::string> worker_args(const WorkerSpec& spec) {
  std::vector<std::string> args{spec.binary, "serve", "--jobs", util::cat(spec.jobs)};
  if (!spec.store_dir.empty()) {
    args.push_back("--store-dir");
    args.push_back(spec.store_dir);
    if (spec.persist_interval_ms >= 0) {
      args.push_back("--persist-interval");
      args.push_back(util::cat(spec.persist_interval_ms));
    }
  }
  return args;
}

/// (fd, pid) of a freshly opened transport; pid -1 in connect mode.
using Endpoint = std::pair<int, pid_t>;

Expected<Endpoint> open_spawn(const WorkerSpec& spec) {
  int sv[2];
  // CLOEXEC matters: without it every later-spawned worker inherits
  // this link's coordinator end across its exec, and closing the link
  // then no longer delivers EOF to this worker's stdin until those
  // workers exit too (dup2 below clears the flag on the child's stdio).
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0) {
    return Status::internal(util::cat("socketpair(): ", std::strerror(errno)));
  }
  const std::vector<std::string> args = worker_args(spec);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return Status::internal(util::cat("fork(): ", std::strerror(errno)));
  }
  if (pid == 0) {
    // Child: worker end of the socketpair becomes stdio, then exec.
    // Only async-signal-safe calls between fork and exec.
    ::dup2(sv[1], STDIN_FILENO);
    ::dup2(sv[1], STDOUT_FILENO);
    ::close(sv[0]);
    ::close(sv[1]);
    ::execv(argv[0], argv.data());
    _exit(127);  // exec failed; the parent sees immediate EOF
  }
  ::close(sv[1]);
  return Endpoint{sv[0], pid};
}

Expected<Endpoint> open_connect(const WorkerSpec& spec) {
  WHARF_EXPECT(spec.port > 0, "connect mode needs a port, got " << spec.port);
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::internal(util::cat("socket(): ", std::strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(spec.port));
  const std::string host = spec.host == "localhost" ? "127.0.0.1" : spec.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::invalid_argument(util::cat("cannot parse worker host '", spec.host,
                                              "' (numeric IPv4 or localhost)"));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string message =
        util::cat("connect(", host, ":", spec.port, "): ", std::strerror(errno));
    ::close(fd);
    return Status::internal(message);
  }
  return Endpoint{fd, -1};
}

}  // namespace

std::string self_binary() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  WHARF_EXPECT(n > 0, "cannot resolve /proc/self/exe");
  return std::string(buf, static_cast<std::size_t>(n));
}

Expected<WorkerLink> WorkerLink::open(const WorkerSpec& spec) {
  Expected<Endpoint> endpoint = spec.binary.empty() ? open_connect(spec) : open_spawn(spec);
  if (!endpoint.has_value()) return endpoint.status();
  return WorkerLink(endpoint.value().first, endpoint.value().second);
}

WorkerLink::~WorkerLink() { close_fd(); }

WorkerLink::WorkerLink(WorkerLink&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      pid_(std::exchange(other.pid_, -1)),
      lines_(std::move(other.lines_)) {}

WorkerLink& WorkerLink::operator=(WorkerLink&& other) noexcept {
  if (this != &other) {
    close_fd();
    fd_ = std::exchange(other.fd_, -1);
    pid_ = std::exchange(other.pid_, -1);
    lines_ = std::move(other.lines_);
  }
  return *this;
}

bool WorkerLink::send_line(const std::string& line) {
  if (fd_ < 0) return false;
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

Expected<std::string> WorkerLink::read_line(int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  std::string line;
  while (true) {
    switch (lines_.next(line)) {
      case io::LineAssembler::Result::kLine: return line;
      case io::LineAssembler::Result::kOversized:
        return Status::resource_exhausted("worker sent an oversized response line");
      case io::LineAssembler::Result::kNone: break;
    }
    if (fd_ < 0) return Status::internal("worker link is closed");
    const auto now = std::chrono::steady_clock::now();
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count();
    if (left <= 0) {
      return Status::deadline_exceeded(
          util::cat("no worker response line within ", timeout_ms, "ms"));
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(left));
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) {
      return Status::deadline_exceeded(
          util::cat("no worker response line within ", timeout_ms, "ms"));
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n == 0) return Status::internal("worker closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::internal(util::cat("read(): ", std::strerror(errno)));
    }
    lines_.feed(chunk, static_cast<std::size_t>(n));
  }
}

void WorkerLink::close_fd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void WorkerLink::kill_now() {
  if (pid_ > 0) ::kill(pid_, SIGKILL);
}

void WorkerLink::reap(int grace_ms) {
  if (pid_ <= 0) return;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(grace_ms);
  int status = 0;
  while (true) {
    const pid_t done = ::waitpid(pid_, &status, WNOHANG);
    if (done == pid_ || (done < 0 && errno == ECHILD)) {
      pid_ = -1;
      return;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, &status, 0);
      pid_ = -1;
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace wharf::dist
