/// \file coordinator.hpp
/// The sharded-sweep coordinator: drives a pool of `wharf serve` worker
/// processes through the NDJSON `evaluate` request and merges their
/// per-candidate objectives into one SearchResult.
///
/// Topology: one single-threaded, reactor-driven coordinator; N workers
/// reached through WorkerLink (spawned `<binary> serve` children over a
/// socketpair, or TCP connections to `wharf serve --listen` peers).
/// Each worker opens one session on the swept base system and scores
/// WorkUnits — contiguous slices of the global candidate list.
///
/// Scheduling: every worker holds a bounded window of outstanding
/// units.  When the pending queue drains, an idle worker *steals* — the
/// lowest incomplete unit gets a duplicate issue (at most two live
/// copies), so one laggard cannot stall the tail of the sweep.  A unit
/// unanswered past `unit_deadline_ms` is re-queued the same way.
///
/// Fault model: a worker may crash mid-unit (SIGKILL), hang, answer
/// with a protocol/evaluation error envelope, or lose its connection —
/// injectable deterministically via FaultInjection for the test
/// battery.  Crashed/disconnected workers are restarted (bounded by
/// `max_restarts`) against the same --store-dir, so they resume warm
/// from the periodic snapshot; their outstanding units re-issue.  An
/// error envelope disqualifies the worker outright (no restart — the
/// envelope means the process is alive but unusable for this sweep).
///
/// Determinism contract: objectives are pure functions of the
/// candidate, units are deduped by id (first result wins, duplicates
/// discarded), and the merge folds the complete objective table in
/// global candidate order (dist::merge_objectives).  The merged
/// SearchResult is therefore bit-identical to a 1-worker run — and to
/// the in-process search — for any worker count, any steal/re-issue
/// history, and any kill schedule that leaves the sweep completable.

#ifndef WHARF_DIST_COORDINATOR_HPP
#define WHARF_DIST_COORDINATOR_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/system.hpp"
#include "core/twca.hpp"
#include "dist/client.hpp"
#include "search/priority_search.hpp"
#include "util/status.hpp"

namespace wharf::dist {

/// One deterministic scripted fault: once `after_units` units have
/// completed, worker `worker` is injured.  The test battery schedules
/// these to prove the merged result survives crashes bit-identically.
struct FaultInjection {
  /// What happens to the worker.
  enum class Kind {
    kKillWorker,      ///< SIGKILL a spawned worker (crash mid-unit; no-op for TCP peers)
    kDropConnection,  ///< coordinator-side close of the link (either mode)
  };
  Kind kind = Kind::kDropConnection;  ///< which injury
  int worker = 0;                     ///< index into the worker list
  std::uint64_t after_units = 0;      ///< fire once this many units completed
};

/// Sweep scheduling knobs (the candidate list and worker topology are
/// run_sweep arguments).
struct SweepOptions {
  Count k = 10;                    ///< dmm horizon of the objective
  std::size_t unit_size = 0;       ///< candidates per unit (0 = default_unit_size)
  int window = 2;                  ///< outstanding units per worker
  long long unit_deadline_ms = 0;  ///< re-queue a unit unanswered this long (0 = never)
  int max_restarts = 3;            ///< respawn/reconnect budget per worker
  std::vector<FaultInjection> faults;  ///< scripted faults (tests), in firing order
};

/// What the scheduler did — the observability surface the bench gates
/// on (stolen/reissued counts) and the fault tests assert against.
struct SweepTelemetry {
  int workers = 0;                   ///< configured worker count
  std::uint64_t units = 0;           ///< planned units (nominal included)
  long long stolen_units = 0;        ///< duplicate issues to idle workers
  long long reissued_units = 0;      ///< deadline-driven re-queues
  long long duplicate_results = 0;   ///< responses discarded by first-result-wins
  long long worker_deaths = 0;       ///< EOF/EPIPE/kill/disconnect events
  long long worker_restarts = 0;     ///< successful respawns/reconnects
  long long protocol_errors = 0;     ///< error envelopes (each disqualifies a worker)
};

/// A completed sweep: the nominal assignment's objective, the merged
/// search result (bit-identical to the sequential fold), and what the
/// scheduler did along the way.
struct SweepOutcome {
  search::Objective nominal;     ///< score of the base system's own priorities
  search::SearchResult result;   ///< best candidate, objective, evaluation count
  SweepTelemetry telemetry;      ///< scheduling/fault observability
};

/// Runs one distributed sweep of `candidates` (flat task order — from
/// search::exhaustive_candidates / random_candidates) over `workers`.
/// Blocks until every unit completed or the sweep became uncompletable
/// (every worker dead/disqualified with units outstanding — that comes
/// back as a non-OK Status, resource_exhausted).  Spawned workers are
/// always reaped before returning, whatever the outcome.
[[nodiscard]] Expected<SweepOutcome> run_sweep(const System& base, const TwcaOptions& options,
                                               const std::vector<std::vector<Priority>>& candidates,
                                               const std::vector<WorkerSpec>& workers,
                                               const SweepOptions& sweep = {});

}  // namespace wharf::dist

#endif  // WHARF_DIST_COORDINATOR_HPP
