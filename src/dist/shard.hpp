/// \file shard.hpp
/// Work-unit planning and deterministic merging for the distributed
/// priority sweep.
///
/// The coordinator (coordinator.hpp) distributes a *candidate list* —
/// the exact enumeration a single-process search would score, produced
/// by search::exhaustive_candidates / search::random_candidates — over
/// worker processes.  This header owns the two ends that decide
/// determinism:
///
///  * **planning**: the global candidate list is cut into contiguous
///    WorkUnits.  Each unit remembers the global index of its first
///    candidate, so results can be placed back regardless of which
///    worker answered, in which order, or how many times;
///  * **merging**: merge_objectives() folds the index-aligned objective
///    table in global candidate order through search::fold_scores — the
///    same strict-improvement, ties-keep-earlier fold the sequential
///    search loop uses.  Because objectives are pure functions of the
///    candidate, the merged SearchResult is bit-identical to a 1-worker
///    (or in-process) run for any worker count, any scheduling
///    interleaving, and any kill/re-issue history.
///
/// Nothing here does I/O; the functions are pure and synchronous so the
/// unit/differential tests can exercise the determinism contract
/// without processes.

#ifndef WHARF_DIST_SHARD_HPP
#define WHARF_DIST_SHARD_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/system.hpp"
#include "search/priority_search.hpp"

namespace wharf::dist {

/// One distributable slice of the global candidate list.  `id` is the
/// wire-visible dedup key (echoed by the worker's evaluate response;
/// first result wins, duplicates are discarded); `first` anchors the
/// slice in the global list for the merge.
struct WorkUnit {
  std::uint64_t id = 0;                           ///< unique per sweep, issued in plan order
  std::size_t first = 0;                          ///< global index of candidates[0]
  std::vector<std::vector<Priority>> candidates;  ///< flat task order, ready for the wire
};

/// Picks a unit size for `candidate_count` candidates over `workers`
/// workers: small enough that every worker sees several units (so work
/// stealing and re-issue have units to move), large enough that one
/// evaluate round-trip amortizes its framing.  Clamped to [1, 128] —
/// the upper bound mirrors the sequential search's internal block size.
[[nodiscard]] std::size_t default_unit_size(std::size_t candidate_count, std::size_t workers);

/// Cuts `candidates` into contiguous units of `unit_size` (the last one
/// may be short).  Unit ids start at 1 — the coordinator reserves id 0
/// for the nominal-assignment unit it plans itself.  Throws on
/// `unit_size == 0` or an empty candidate list.
[[nodiscard]] std::vector<WorkUnit> plan_units(
    const std::vector<std::vector<Priority>>& candidates, std::size_t unit_size);

/// Folds the complete, index-aligned objective table back into a
/// SearchResult exactly like the sequential loop would (global candidate
/// order, strict improvement).  `objectives[i]` must be the score of
/// `candidates[i]`; evaluations is the candidate count.  Throws on a
/// size mismatch or an empty table.
[[nodiscard]] search::SearchResult merge_objectives(
    const std::vector<std::vector<Priority>>& candidates,
    const std::vector<search::Objective>& objectives);

}  // namespace wharf::dist

#endif  // WHARF_DIST_SHARD_HPP
