#include "dist/coordinator.hpp"

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "dist/shard.hpp"
#include "io/json.hpp"
#include "io/system_format.hpp"
#include "io/wire.hpp"
#include "net/reactor.hpp"
#include "util/expect.hpp"
#include "util/strings.hpp"

namespace wharf::dist {

namespace {

constexpr std::uint64_t kNoUnit = ~std::uint64_t{0};
/// Duplicate-issue cap per unit: one original plus at most one stolen
/// copy keeps tail latency bounded without flooding laggards.
constexpr int kMaxLiveCopies = 2;
/// All units ride one worker-side session.
constexpr const char* kSession = "sweep";

std::string open_request(const System& base, const TwcaOptions& options) {
  std::ostringstream os;
  io::JsonWriter w(os);
  w.begin_object();
  w.key("type");
  w.value("open_session");
  w.key("session");
  w.value(kSession);
  w.key("system");
  w.value(io::serialize_system(base));
  w.key("options");
  io::write_twca_options(w, options);
  w.end_object();
  return os.str();
}

std::string evaluate_request(const WorkUnit& unit, Count k) {
  std::ostringstream os;
  io::JsonWriter w(os);
  w.begin_object();
  // id = unit id: evaluate *error* envelopes echo only the id, so this
  // is what keeps even failures attributable to their unit.
  w.key("id");
  w.value(static_cast<long long>(unit.id));
  w.key("type");
  w.value("evaluate");
  w.key("session");
  w.value(kSession);
  w.key("unit");
  w.value(static_cast<long long>(unit.id));
  w.key("k");
  w.value(static_cast<long long>(k));
  w.key("candidates");
  w.begin_array();
  for (const std::vector<Priority>& candidate : unit.candidates) {
    w.begin_array();
    for (const Priority p : candidate) w.value(static_cast<long long>(p));
    w.end_array();
  }
  w.end_array();
  w.end_object();
  return os.str();
}

std::vector<search::Objective> parse_objectives(const io::JsonValue& doc) {
  std::vector<search::Objective> out;
  for (const io::JsonValue& o : doc.at("objectives").items()) {
    search::Objective obj;
    obj.chains_missing = static_cast<Count>(o.at("chains_missing").as_int());
    obj.total_dmm = static_cast<Count>(o.at("total_dmm").as_int());
    obj.total_wcl = static_cast<Time>(o.at("total_wcl").as_int());
    out.push_back(obj);
  }
  return out;
}

/// The whole sweep as one object: single-threaded, every method runs on
/// the reactor loop thread (run() *is* the loop thread), so there is no
/// locking anywhere — the concurrency lives in the worker processes.
class Coordinator {
 public:
  Coordinator(const System& base, const TwcaOptions& options,
              const std::vector<std::vector<Priority>>& candidates,
              const std::vector<WorkerSpec>& specs, const SweepOptions& sweep)
      : base_(base),
        candidates_(candidates),
        specs_(specs),
        sweep_(sweep),
        open_request_(open_request(base, options)) {
    if (sweep_.window < 1) sweep_.window = 1;
  }

  Expected<SweepOutcome> run() {
    WHARF_EXPECT(!candidates_.empty(), "cannot sweep an empty candidate list");
    WHARF_EXPECT(!specs_.empty(), "need at least one worker");
    plan();
    workers_.resize(specs_.size());
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      workers_[w].restarts_left = sweep_.max_restarts;
      (void)start_worker(w);
    }
    if (live_workers_ == 0) {
      final_status_ = Status::internal("no worker could be started");
    } else {
      reactor_.run();
    }
    for (std::size_t w = 0; w < workers_.size(); ++w) retire(w);
    if (!final_status_.is_ok()) return final_status_;
    return assemble();
  }

 private:
  struct Issue {
    net::Reactor::TimerId timer = 0;  ///< 0 = no deadline armed
    bool expired = false;             ///< deadline fired; copy no longer counted live
  };

  struct Worker {
    std::unique_ptr<WorkerLink> link;  ///< null while dead
    bool ready = false;                ///< open_session acknowledged
    bool disqualified = false;         ///< sent an error envelope; never reused
    int restarts_left = 0;
    std::map<std::uint64_t, Issue> outstanding;  ///< unit id -> issue bookkeeping
  };

  struct Unit {
    WorkUnit work;
    bool completed = false;
    bool queued = false;  ///< sitting in pending_
    int live_copies = 0;  ///< unexpired issues (meaningful only while !completed)
    std::vector<search::Objective> objectives;
  };

  void plan() {
    const std::size_t unit_size = sweep_.unit_size != 0
                                      ? sweep_.unit_size
                                      : default_unit_size(candidates_.size(), specs_.size());
    Unit nominal;
    nominal.work.id = 0;
    nominal.work.candidates = {base_.flat_priorities()};
    units_.push_back(std::move(nominal));
    for (WorkUnit& planned : plan_units(candidates_, unit_size)) {
      Unit unit;
      unit.work = std::move(planned);
      WHARF_EXPECT(unit.work.id == units_.size(), "unit ids must be dense");
      units_.push_back(std::move(unit));
    }
    for (std::uint64_t id = 0; id < units_.size(); ++id) {
      units_[id].queued = true;
      pending_.push_back(id);
    }
    telemetry_.workers = static_cast<int>(specs_.size());
    telemetry_.units = units_.size();
  }

  bool start_worker(std::size_t w) {
    Expected<WorkerLink> link = WorkerLink::open(specs_[w]);
    if (!link.has_value()) return false;
    Worker& worker = workers_[w];
    worker.link = std::make_unique<WorkerLink>(std::move(link.value()));
    worker.ready = false;
    ++live_workers_;
    reactor_.add_fd(worker.link->fd(), EPOLLIN,
                    [this, w](std::uint32_t /*events*/) { on_events(w); });
    if (!worker.link->send_line(open_request_)) {
      worker_down(w);
      return false;
    }
    return true;
  }

  /// Severs worker `w`'s transport: deregisters the fd, closes it, and
  /// reaps a spawned child (EOF on its stdin makes `wharf serve` exit
  /// through the graceful persist path by itself).
  void detach_link(std::size_t w) {
    Worker& worker = workers_[w];
    if (!worker.link) return;
    reactor_.remove_fd(worker.link->fd());
    worker.link->close_fd();
    worker.link->reap(/*grace_ms=*/2000);
    worker.link.reset();
    worker.ready = false;
    --live_workers_;
  }

  void on_events(std::size_t w) {
    Worker& worker = workers_[w];
    if (!worker.link) return;
    char chunk[65536];
    const ssize_t n = ::read(worker.link->fd(), chunk, sizeof chunk);
    if (n == 0) {
      worker_down(w);
      return;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) return;
      worker_down(w);
      return;
    }
    worker.link->lines().feed(chunk, static_cast<std::size_t>(n));
    std::string line;
    // A line handler may kill, restart, or disqualify this very worker —
    // re-check the link each iteration (a restart swaps in a fresh,
    // empty assembler, which simply yields kNone).
    while (workers_[w].link != nullptr && !done_) {
      const io::LineAssembler::Result result = workers_[w].link->lines().next(line);
      if (result == io::LineAssembler::Result::kNone) break;
      if (result == io::LineAssembler::Result::kOversized) {
        disqualify(w);
        break;
      }
      on_line(w, line);
    }
  }

  void on_line(std::size_t w, const std::string& line) {
    io::JsonValue doc;
    std::string type;
    try {
      doc = io::parse_json(line);
      type = doc.at("type").as_string();
    } catch (const std::exception&) {
      disqualify(w);
      return;
    }
    if (type == "error") {
      // The worker could not even parse our request line — systemically
      // broken for this sweep; its units go elsewhere.
      disqualify(w);
      return;
    }
    const io::JsonValue* status = doc.find("status");
    const bool ok = status != nullptr && status->kind() == io::JsonValue::Kind::kString &&
                    status->as_string() == "ok";
    if (type == "open_session") {
      if (!ok) {
        // The base system/options are identical for every worker — a
        // rejected open would reject everywhere, so fail the sweep with
        // the worker's reason instead of cycling restarts.
        const io::JsonValue* reason = doc.find("reason");
        finish(Status::internal(util::cat(
            "worker rejected open_session: ",
            reason != nullptr && reason->kind() == io::JsonValue::Kind::kString
                ? reason->as_string()
                : std::string("(no reason)"))));
        return;
      }
      workers_[w].ready = true;
      refill(w);
      return;
    }
    if (type != "evaluate") return;  // close/shutdown/diagnostics echoes
    if (!ok) {
      disqualify(w);
      return;
    }
    try {
      const std::uint64_t unit_id = static_cast<std::uint64_t>(doc.at("unit").as_int());
      std::vector<search::Objective> objectives = parse_objectives(doc);
      on_result(w, unit_id, std::move(objectives));
    } catch (const std::exception&) {
      disqualify(w);
    }
  }

  void on_result(std::size_t w, std::uint64_t unit_id,
                 std::vector<search::Objective> objectives) {
    if (unit_id >= units_.size()) {
      disqualify(w);
      return;
    }
    Unit& unit = units_[unit_id];
    Worker& worker = workers_[w];
    bool counted_live = false;
    const auto it = worker.outstanding.find(unit_id);
    if (it != worker.outstanding.end()) {
      reactor_.cancel_timer(it->second.timer);
      counted_live = !it->second.expired;
      worker.outstanding.erase(it);
    }
    if (unit.completed) {
      // First result won already; this is a steal/re-issue duplicate.
      ++telemetry_.duplicate_results;
      refill(w);
      return;
    }
    if (counted_live && unit.live_copies > 0) --unit.live_copies;
    if (objectives.size() != unit.work.candidates.size()) {
      disqualify(w);
      return;
    }
    unit.completed = true;
    unit.objectives = std::move(objectives);
    ++completed_;
    apply_faults();
    if (completed_ == units_.size()) {
      finish(Status::ok());
      return;
    }
    kick_all();
  }

  void on_deadline(std::size_t w, std::uint64_t unit_id) {
    Worker& worker = workers_[w];
    const auto it = worker.outstanding.find(unit_id);
    if (it == worker.outstanding.end() || it->second.expired) return;
    it->second.expired = true;
    Unit& unit = units_[unit_id];
    if (unit.completed) return;
    if (unit.live_copies > 0) --unit.live_copies;
    ++telemetry_.reissued_units;
    if (!unit.queued) {
      unit.queued = true;
      pending_.push_front(unit_id);  // expired work jumps the queue
    }
    kick_all();
  }

  void worker_down(std::size_t w) {
    Worker& worker = workers_[w];
    if (!worker.link) return;
    ++telemetry_.worker_deaths;
    detach_link(w);
    // Requeue what died with it (in unit-id order; the map is ordered).
    for (const auto& [unit_id, issue] : worker.outstanding) {
      reactor_.cancel_timer(issue.timer);
      Unit& unit = units_[unit_id];
      if (unit.completed) continue;
      if (!issue.expired && unit.live_copies > 0) --unit.live_copies;
      if (unit.live_copies == 0 && !unit.queued) {
        unit.queued = true;
        pending_.push_back(unit_id);
      }
    }
    worker.outstanding.clear();
    if (!worker.disqualified && worker.restarts_left > 0) {
      --worker.restarts_left;
      if (start_worker(w)) ++telemetry_.worker_restarts;
    }
    check_liveness();
    if (!done_) kick_all();
  }

  void disqualify(std::size_t w) {
    ++telemetry_.protocol_errors;
    workers_[w].disqualified = true;
    worker_down(w);
  }

  void check_liveness() {
    if (done_ || live_workers_ > 0) return;
    finish(Status::resource_exhausted(
        util::cat("all workers lost with ", units_.size() - completed_,
                  " of ", units_.size(), " units incomplete")));
  }

  void kick_all() {
    for (std::size_t w = 0; w < workers_.size() && !done_; ++w) {
      if (workers_[w].link && workers_[w].ready) refill(w);
    }
  }

  void refill(std::size_t w) {
    while (!done_ && workers_[w].link && workers_[w].ready &&
           workers_[w].outstanding.size() < static_cast<std::size_t>(sweep_.window)) {
      const std::uint64_t unit_id = next_unit_for(w);
      if (unit_id == kNoUnit) break;
      if (!issue(w, unit_id)) break;  // transport died; worker_down already ran
    }
  }

  std::uint64_t next_unit_for(std::size_t w) {
    // Pending queue first (compacting completed entries as we scan)...
    for (auto it = pending_.begin(); it != pending_.end();) {
      const std::uint64_t unit_id = *it;
      Unit& unit = units_[unit_id];
      if (unit.completed) {
        unit.queued = false;
        it = pending_.erase(it);
        continue;
      }
      if (workers_[w].outstanding.count(unit_id) != 0) {
        ++it;  // already running here (expired copy); leave it for others
        continue;
      }
      unit.queued = false;
      pending_.erase(it);
      return unit_id;
    }
    // ...then steal: duplicate-issue the lowest incomplete unit below
    // the copy cap.  Deterministic choice; correctness never depends on
    // it (first result wins).
    for (std::uint64_t unit_id = 0; unit_id < units_.size(); ++unit_id) {
      const Unit& unit = units_[unit_id];
      if (unit.completed || unit.queued) continue;
      if (unit.live_copies >= kMaxLiveCopies) continue;
      if (workers_[w].outstanding.count(unit_id) != 0) continue;
      ++telemetry_.stolen_units;
      return unit_id;
    }
    return kNoUnit;
  }

  bool issue(std::size_t w, std::uint64_t unit_id) {
    Worker& worker = workers_[w];
    Unit& unit = units_[unit_id];
    if (!worker.link->send_line(evaluate_request(unit.work, sweep_.k))) {
      worker_down(w);
      return false;
    }
    Issue record;
    if (sweep_.unit_deadline_ms > 0) {
      record.timer = reactor_.add_timer(
          std::chrono::steady_clock::now() + std::chrono::milliseconds(sweep_.unit_deadline_ms),
          [this, w, unit_id] { on_deadline(w, unit_id); });
    }
    worker.outstanding.emplace(unit_id, record);
    ++unit.live_copies;
    return true;
  }

  void apply_faults() {
    while (next_fault_ < sweep_.faults.size() &&
           sweep_.faults[next_fault_].after_units <= completed_) {
      const FaultInjection fault = sweep_.faults[next_fault_++];
      const auto w = static_cast<std::size_t>(fault.worker);
      if (fault.worker < 0 || w >= workers_.size() || !workers_[w].link) continue;
      if (fault.kind == FaultInjection::Kind::kKillWorker) {
        // Death surfaces as EOF on the link via the reactor.
        workers_[w].link->kill_now();
      } else {
        worker_down(w);  // coordinator-side disconnect
      }
    }
  }

  void finish(Status status) {
    if (done_) return;
    done_ = true;
    final_status_ = std::move(status);
    reactor_.stop();
  }

  void retire(std::size_t w) {
    if (workers_[w].link) {
      detach_link(w);
      workers_[w].outstanding.clear();
    }
  }

  Expected<SweepOutcome> assemble() {
    SweepOutcome out;
    out.nominal = units_[0].objectives[0];
    std::vector<search::Objective> table(candidates_.size());
    for (std::uint64_t unit_id = 1; unit_id < units_.size(); ++unit_id) {
      const Unit& unit = units_[unit_id];
      for (std::size_t i = 0; i < unit.objectives.size(); ++i) {
        table[unit.work.first + i] = unit.objectives[i];
      }
    }
    out.result = merge_objectives(candidates_, table);
    out.telemetry = telemetry_;
    return out;
  }

  const System& base_;
  const std::vector<std::vector<Priority>>& candidates_;
  const std::vector<WorkerSpec>& specs_;
  SweepOptions sweep_;
  const std::string open_request_;

  net::Reactor reactor_;
  std::vector<Worker> workers_;
  std::vector<Unit> units_;  ///< indexed by unit id (0 = nominal)
  std::deque<std::uint64_t> pending_;
  std::uint64_t completed_ = 0;
  std::size_t next_fault_ = 0;
  int live_workers_ = 0;
  bool done_ = false;
  Status final_status_;
  SweepTelemetry telemetry_;
};

}  // namespace

Expected<SweepOutcome> run_sweep(const System& base, const TwcaOptions& options,
                                 const std::vector<std::vector<Priority>>& candidates,
                                 const std::vector<WorkerSpec>& workers,
                                 const SweepOptions& sweep) {
  Coordinator coordinator(base, options, candidates, workers, sweep);
  return coordinator.run();
}

}  // namespace wharf::dist
