#include "sim/simulator.hpp"

#include <algorithm>
#include <deque>
#include <queue>

#include "util/expect.hpp"

namespace wharf::sim {

Count ChainResult::max_misses_in_window(Count k) const {
  WHARF_EXPECT(k >= 1, "window size must be >= 1, got " << k);
  Count best = 0;
  Count in_window = 0;
  std::size_t left = 0;
  for (std::size_t right = 0; right < instances.size(); ++right) {
    if (instances[right].missed) ++in_window;
    if (static_cast<Count>(right - left + 1) > k) {
      if (instances[left].missed) --in_window;
      ++left;
    }
    best = std::max(best, in_window);
  }
  return best;
}

namespace {

/// One released task instance awaiting (or receiving) CPU time.
struct Job {
  int chain = -1;
  Count instance = 0;
  int task = -1;
  Time remaining = 0;
  Priority priority = 0;
  long long seq = 0;  ///< creation order; FIFO among equal priorities
};

struct JobOrder {
  /// Highest priority first; FIFO (lowest seq) among equal priorities.
  bool operator()(const Job& a, const Job& b) const {
    if (a.priority != b.priority) return a.priority < b.priority;  // max-heap on priority
    return a.seq > b.seq;                                          // min-heap on seq
  }
};

struct ChainState {
  bool busy = false;                 ///< synchronous chains: instance in flight?
  std::deque<Count> pending;         ///< synchronous chains: queued activations
  Count next_instance = 0;
};

class Engine {
 public:
  Engine(const System& system, const std::vector<std::vector<Time>>& arrivals,
         const SimOptions& options)
      : system_(system), arrivals_(arrivals), options_(options) {
    WHARF_EXPECT(arrivals.size() == static_cast<std::size_t>(system.size()),
                 "expected one arrival vector per chain (" << system.size() << "), got "
                                                           << arrivals.size());
    for (std::size_t c = 0; c < arrivals.size(); ++c) {
      const auto& v = arrivals[c];
      WHARF_EXPECT(std::is_sorted(v.begin(), v.end()),
                   "arrival times of chain '" << system.chain(static_cast<int>(c)).name()
                                              << "' must be sorted");
      WHARF_EXPECT(v.empty() || v.front() >= 0, "arrival times must be non-negative");
    }
    validate_links();
    result_.chains.resize(static_cast<std::size_t>(system.size()));
    chain_state_.resize(static_cast<std::size_t>(system.size()));
    cursor_.assign(static_cast<std::size_t>(system.size()), 0);
    for (int c = 0; c < system.size(); ++c) {
      result_.chains[static_cast<std::size_t>(c)].instances.reserve(
          arrivals[static_cast<std::size_t>(c)].size());
    }
  }

  SimResult run() {
    Time now = 0;
    while (true) {
      const Time next_arr = next_arrival_time();
      if (ready_.empty()) {
        if (next_arr == kTimeInfinity) break;  // drained
        now = std::max(now, next_arr);
        admit_arrivals(now);
        continue;
      }
      Job job = ready_.top();
      const Time finish_at = now + job.remaining;
      if (finish_at <= next_arr) {
        // The running job completes before (or exactly when) the next
        // activation arrives; completions are processed first on ties so
        // that a synchronous chain can immediately accept a coincident
        // activation.
        ready_.pop();
        record_slice(job, now, finish_at);
        now = finish_at;
        complete(job, now);
      } else {
        // Execute until the arrival, then let preemption re-evaluate.
        ready_.pop();
        record_slice(job, now, next_arr);
        job.remaining -= next_arr - now;
        now = next_arr;
        ready_.push(job);
        admit_arrivals(now);
      }
    }
    finalize_trace();
    result_.makespan = makespan_;
    return std::move(result_);
  }

 private:
  void validate_links() {
    std::vector<bool> has_activator(static_cast<std::size_t>(system_.size()), false);
    for (const ChainLink& link : options_.links) {
      WHARF_EXPECT(link.from >= 0 && link.from < system_.size(),
                   "link source " << link.from << " out of range");
      WHARF_EXPECT(link.to >= 0 && link.to < system_.size(),
                   "link target " << link.to << " out of range");
      WHARF_EXPECT(link.from != link.to, "a chain cannot activate itself");
      WHARF_EXPECT(!has_activator[static_cast<std::size_t>(link.to)],
                   "chain '" << system_.chain(link.to).name()
                             << "' has two activators (joins are out of scope)");
      has_activator[static_cast<std::size_t>(link.to)] = true;
      WHARF_EXPECT(arrivals_[static_cast<std::size_t>(link.to)].empty(),
                   "linked chain '" << system_.chain(link.to).name()
                                    << "' must not also have external arrivals");
    }
    // Acyclicity: since every chain has at most one inbound link, walking
    // the unique activator pointers must terminate for every start chain.
    for (int start = 0; start < system_.size(); ++start) {
      int current = start;
      int steps = 0;
      while (steps++ <= system_.size()) {
        int activator = -1;
        for (const ChainLink& link : options_.links) {
          if (link.to == current) {
            activator = link.from;
            break;
          }
        }
        if (activator < 0) break;
        current = activator;
        WHARF_EXPECT(current != start, "link cycle through chain '"
                                           << system_.chain(start).name() << "'");
      }
    }
  }

  [[nodiscard]] Time next_arrival_time() const {
    Time t = kTimeInfinity;
    for (int c = 0; c < system_.size(); ++c) {
      const auto& v = arrivals_[static_cast<std::size_t>(c)];
      const std::size_t i = cursor_[static_cast<std::size_t>(c)];
      if (i < v.size()) t = std::min(t, v[i]);
    }
    return t;
  }

  void admit_arrivals(Time now) {
    for (int c = 0; c < system_.size(); ++c) {
      const auto& v = arrivals_[static_cast<std::size_t>(c)];
      std::size_t& i = cursor_[static_cast<std::size_t>(c)];
      while (i < v.size() && v[i] <= now) {
        activate(c, v[i], now);
        ++i;
      }
    }
  }

  void activate(int c, Time activation_time, Time now) {
    const Chain& chain = system_.chain(c);
    ChainState& state = chain_state_[static_cast<std::size_t>(c)];
    const Count instance = state.next_instance++;

    InstanceRecord record;
    record.index = instance;
    record.activation = activation_time;
    result_.chains[static_cast<std::size_t>(c)].instances.push_back(record);

    if (chain.is_asynchronous()) {
      release(c, instance, 0, now);
      return;
    }
    if (state.busy) {
      state.pending.push_back(instance);
    } else {
      state.busy = true;
      release(c, instance, 0, now);
    }
  }

  void release(int c, Count instance, int task, Time /*now*/) {
    const Chain& chain = system_.chain(c);
    Job job;
    job.chain = c;
    job.instance = instance;
    job.task = task;
    job.remaining = chain.task(task).wcet;
    job.priority = chain.task(task).priority;
    job.seq = next_seq_++;
    ready_.push(job);
  }

  void complete(const Job& job, Time now) {
    makespan_ = std::max(makespan_, now);
    const Chain& chain = system_.chain(job.chain);
    if (job.task + 1 < chain.size()) {
      release(job.chain, job.instance, job.task + 1, now);
      return;
    }
    // Tail task finished: the chain instance completes.
    ChainResult& cr = result_.chains[static_cast<std::size_t>(job.chain)];
    InstanceRecord& record = cr.instances[static_cast<std::size_t>(job.instance)];
    record.finish = now;
    record.completed = true;
    ++cr.completed;
    const Time latency = record.latency();
    cr.max_latency = std::max(cr.max_latency, latency);
    if (chain.deadline().has_value() && latency > *chain.deadline()) {
      record.missed = true;
      ++cr.miss_count;
    }

    if (chain.is_synchronous()) {
      ChainState& state = chain_state_[static_cast<std::size_t>(job.chain)];
      if (state.pending.empty()) {
        state.busy = false;
      } else {
        const Count next = state.pending.front();
        state.pending.pop_front();
        release(job.chain, next, 0, now);
      }
    }

    // Linked activation: this completion is the arrival of downstream
    // chains (paths / forks).
    for (const ChainLink& link : options_.links) {
      if (link.from == job.chain) activate(link.to, now, now);
    }
  }

  void record_slice(const Job& job, Time begin, Time end) {
    if (!options_.record_trace || begin == end) return;
    if (!trace_.empty()) {
      ExecSlice& last = trace_.back();
      if (last.chain == job.chain && last.task == job.task && last.instance == job.instance &&
          last.end == begin) {
        last.end = end;  // merge contiguous slices of the same job
        return;
      }
    }
    trace_.push_back(ExecSlice{job.chain, job.task, job.instance, begin, end});
  }

  void finalize_trace() { result_.trace = std::move(trace_); }

  const System& system_;
  const std::vector<std::vector<Time>>& arrivals_;
  SimOptions options_;
  SimResult result_;
  std::vector<ChainState> chain_state_;
  std::vector<std::size_t> cursor_;
  std::priority_queue<Job, std::vector<Job>, JobOrder> ready_;
  std::vector<ExecSlice> trace_;
  long long next_seq_ = 0;
  Time makespan_ = 0;
};

}  // namespace

SimResult simulate(const System& system, const std::vector<std::vector<Time>>& arrivals,
                   const SimOptions& options) {
  Engine engine(system, arrivals, options);
  return engine.run();
}

std::vector<Time> path_latencies(const SimResult& result, const std::vector<int>& chains) {
  WHARF_EXPECT(!chains.empty(), "path_latencies needs at least one chain");
  for (int c : chains) {
    WHARF_EXPECT(c >= 0 && c < static_cast<int>(result.chains.size()),
                 "chain index " << c << " out of range");
  }
  const auto& head = result.chains[static_cast<std::size_t>(chains.front())].instances;
  const auto& tail = result.chains[static_cast<std::size_t>(chains.back())].instances;
  WHARF_EXPECT(head.size() == tail.size(),
               "path chains completed different instance counts (" << head.size() << " vs "
                                                                   << tail.size() << ")");
  std::vector<Time> latencies;
  latencies.reserve(head.size());
  for (std::size_t n = 0; n < head.size(); ++n) {
    WHARF_EXPECT(tail[n].completed, "instance " << n << " of the last path chain is pending");
    latencies.push_back(tail[n].finish - head[n].activation);
  }
  return latencies;
}

}  // namespace wharf::sim
