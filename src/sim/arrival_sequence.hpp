/// \file arrival_sequence.hpp
/// Concrete activation-time generators for the discrete-event simulator.
///
/// The analysis consumes arrival *curves*; the simulator consumes arrival
/// *sequences* (explicit activation times).  Every generator here emits a
/// sequence that is legal for a given ArrivalModel — i.e. any q
/// consecutive activations span at least delta_minus(q) — which is what
/// makes simulation results valid test vectors against the analytic
/// bounds (any legal sequence must respect them).

#ifndef WHARF_SIM_ARRIVAL_SEQUENCE_HPP
#define WHARF_SIM_ARRIVAL_SEQUENCE_HPP

#include <cstdint>
#include <vector>

#include "core/arrival.hpp"
#include "util/types.hpp"

namespace wharf::sim {

/// Activation times of a strictly periodic chain: phase, phase+P, ...
/// up to (excluding) `horizon`.
[[nodiscard]] std::vector<Time> periodic_arrivals(Time period, Time phase, Time horizon);

/// The densest sequence legal for `model` starting at `start`:
///   t_n = max over q of (t_{n+1-q} + delta_minus(q)).
/// This is the adversarial "as fast as allowed" input that worst-case
/// analysis must dominate.  Stops at (excluding) `horizon`.
[[nodiscard]] std::vector<Time> greedy_arrivals(const ArrivalModel& model, Time start,
                                                Time horizon);

/// A randomized legal sequence: greedy spacing plus non-negative random
/// extra gaps with the given mean (geometric-ish, derived from the seed).
/// `mean_extra_gap == 0` reduces to greedy_arrivals.
[[nodiscard]] std::vector<Time> random_arrivals(const ArrivalModel& model, Time start,
                                                Time horizon, double mean_extra_gap,
                                                std::uint64_t seed);

/// Checks that `times` (sorted, non-negative) is legal for `model`: every
/// window of q consecutive activations spans at least delta_minus(q), for
/// q up to `max_q` (capped at the sequence length).
[[nodiscard]] bool is_legal_sequence(const std::vector<Time>& times, const ArrivalModel& model,
                                     Count max_q = 64);

}  // namespace wharf::sim

#endif  // WHARF_SIM_ARRIVAL_SEQUENCE_HPP
