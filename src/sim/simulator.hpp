/// \file simulator.hpp
/// Discrete-event simulator for uniprocessor SPP systems of task chains.
///
/// Faithful to the paper's execution semantics (Section II):
///  * Static Priority Preemptive scheduling of task instances; globally
///    unique task priorities make scheduling deterministic.  Instances of
///    the same task (possible in asynchronous chains) run FIFO.
///  * Synchronous chains: an incoming activation is queued until all
///    previous instances of the chain have finished.
///  * Asynchronous chains: every activation immediately releases the
///    header task; instances overlap and may self-interfere.
///  * When task τ^i finishes, τ^{i+1} of the same instance is released
///    at that instant.
///  * The scheduler is deadline-agnostic: instances always run to
///    completion, even after missing their deadline.
///
/// The simulator exists to *validate* the analysis: any legal arrival
/// sequence must produce latencies <= WCL_b and windowed miss counts
/// <= dmm_b(k).

#ifndef WHARF_SIM_SIMULATOR_HPP
#define WHARF_SIM_SIMULATOR_HPP

#include <vector>

#include "core/system.hpp"

namespace wharf::sim {

/// One completed (or still pending) chain instance.
struct InstanceRecord {
  Count index = 0;      ///< instance number within its chain, 0-based
  Time activation = 0;  ///< arrival time at the chain input
  Time finish = -1;     ///< completion time of the tail task (-1: pending)
  bool completed = false;
  bool missed = false;  ///< completed && chain has deadline && latency > D

  /// End-to-end latency (valid when completed).
  [[nodiscard]] Time latency() const { return finish - activation; }
};

/// A maximal interval during which one task instance occupied the CPU.
/// The trace is the exact schedule; the Gantt renderer consumes it.
struct ExecSlice {
  int chain = -1;
  int task = -1;
  Count instance = 0;
  Time begin = 0;
  Time end = 0;
};

/// Per-chain simulation outcome.
struct ChainResult {
  std::vector<InstanceRecord> instances;
  Time max_latency = 0;   ///< over completed instances
  Count miss_count = 0;   ///< completed instances with missed deadline
  Count completed = 0;

  /// Maximum number of misses within any window of `k` consecutive
  /// completed instances (the empirical counterpart of dmm(k)).
  [[nodiscard]] Count max_misses_in_window(Count k) const;
};

/// Whole-run outcome.
struct SimResult {
  std::vector<ChainResult> chains;  ///< indexed like System::chains()
  std::vector<ExecSlice> trace;     ///< filled when SimOptions::record_trace
  Time makespan = 0;                ///< completion time of the last job
};

/// Completion of chain `from` immediately activates chain `to` — the
/// mechanism behind *paths* (paper footnote 1).  A chain may feed several
/// downstream chains (fork); a chain may have at most one activator
/// (joins are out of scope, as in the paper), and links must be acyclic.
struct ChainLink {
  int from = -1;
  int to = -1;
};

/// Simulation knobs.
struct SimOptions {
  bool record_trace = false;
  /// Linked activations; chains that appear as `to` must be fed an empty
  /// arrival vector.
  std::vector<ChainLink> links;
};

/// Simulates the system fed with explicit activation times per chain
/// (`arrivals[c]` sorted, non-negative).  All released work is drained to
/// completion, so every activation yields a completed instance.
[[nodiscard]] SimResult simulate(const System& system,
                                 const std::vector<std::vector<Time>>& arrivals,
                                 const SimOptions& options = {});

/// End-to-end latencies of a linked path: for every instance n, the time
/// from the n-th activation of the first chain to the n-th completion of
/// the last chain.  All listed chains must have completed equally many
/// instances (guaranteed after a drained linked simulation).
[[nodiscard]] std::vector<Time> path_latencies(const SimResult& result,
                                               const std::vector<int>& chains);

}  // namespace wharf::sim

#endif  // WHARF_SIM_SIMULATOR_HPP
