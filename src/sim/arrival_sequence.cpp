#include "sim/arrival_sequence.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "util/expect.hpp"

namespace wharf::sim {

namespace {

/// Earliest legal time for the next activation given the history so far.
Time next_legal_time(const std::vector<Time>& history, const ArrivalModel& model) {
  if (history.empty()) return 0;
  const Count n = static_cast<Count>(history.size());
  Time earliest = history.back();  // non-decreasing
  // With the new event, the last q events are history[n+1-q .. n-1] plus
  // the new one; they must span at least delta_minus(q).
  for (Count q = 2; q <= n + 1; ++q) {
    const Time dq = model.delta_minus(q);
    if (is_infinite(dq)) continue;
    const Time anchor = history[static_cast<std::size_t>(n + 1 - q)];
    earliest = std::max(earliest, sat_add(anchor, dq));
    // Once the constraint window reaches past the first event with slack
    // larger than any later constraint can impose, stop early: for the
    // models in this library delta_minus grows at least linearly beyond
    // its prefix, so anchors further back cannot bind once dq exceeds
    // history.back() - anchor by more than the remaining range.
  }
  return earliest;
}

}  // namespace

std::vector<Time> periodic_arrivals(Time period, Time phase, Time horizon) {
  WHARF_EXPECT(period >= 1, "period must be >= 1, got " << period);
  WHARF_EXPECT(phase >= 0, "phase must be >= 0, got " << phase);
  std::vector<Time> out;
  for (Time t = phase; t < horizon; t = sat_add(t, period)) out.push_back(t);
  return out;
}

std::vector<Time> greedy_arrivals(const ArrivalModel& model, Time start, Time horizon) {
  WHARF_EXPECT(start >= 0, "start must be >= 0, got " << start);
  std::vector<Time> out;
  if (start >= horizon) return out;
  out.push_back(start);
  while (true) {
    const Time t = next_legal_time(out, model);
    if (t >= horizon) break;
    out.push_back(t);
  }
  return out;
}

std::vector<Time> random_arrivals(const ArrivalModel& model, Time start, Time horizon,
                                  double mean_extra_gap, std::uint64_t seed) {
  WHARF_EXPECT(start >= 0, "start must be >= 0, got " << start);
  WHARF_EXPECT(mean_extra_gap >= 0.0, "mean_extra_gap must be >= 0");
  std::vector<Time> out;
  if (start >= horizon) return out;
  std::mt19937_64 engine(seed);
  std::exponential_distribution<double> extra(mean_extra_gap > 0 ? 1.0 / mean_extra_gap : 1.0);
  out.push_back(start);
  while (true) {
    Time t = next_legal_time(out, model);
    if (mean_extra_gap > 0) {
      t = sat_add(t, static_cast<Time>(std::llround(extra(engine))));
    }
    if (t >= horizon) break;
    out.push_back(t);
  }
  return out;
}

bool is_legal_sequence(const std::vector<Time>& times, const ArrivalModel& model, Count max_q) {
  if (!std::is_sorted(times.begin(), times.end())) return false;
  if (!times.empty() && times.front() < 0) return false;
  const Count n = static_cast<Count>(times.size());
  const Count q_cap = std::min<Count>(max_q, n);
  for (Count q = 2; q <= q_cap; ++q) {
    const Time dq = model.delta_minus(q);
    for (Count i = 0; i + q - 1 < n; ++i) {
      const Time span = times[static_cast<std::size_t>(i + q - 1)] - times[static_cast<std::size_t>(i)];
      if (span < dq) return false;
    }
  }
  return true;
}

}  // namespace wharf::sim
