#include "sim/busy_windows.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace wharf::sim {

std::vector<BusyWindow> observed_busy_windows(const ChainResult& chain) {
  std::vector<BusyWindow> intervals;
  intervals.reserve(chain.instances.size());
  for (const InstanceRecord& rec : chain.instances) {
    WHARF_EXPECT(rec.completed, "busy-window extraction requires completed instances (instance "
                                    << rec.index << " is pending)");
    intervals.push_back(BusyWindow{rec.activation, rec.finish});
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const BusyWindow& a, const BusyWindow& b) { return a.begin < b.begin; });

  std::vector<BusyWindow> merged;
  for (const BusyWindow& w : intervals) {
    if (!merged.empty() && w.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, w.end);
    } else {
      merged.push_back(w);
    }
  }
  return merged;
}

bool at_most_one_arrival_per_window(const std::vector<BusyWindow>& windows,
                                    const std::vector<Time>& overload_arrivals) {
  // Both inputs are sorted; sweep them together.
  std::size_t i = 0;
  for (const BusyWindow& w : windows) {
    while (i < overload_arrivals.size() && overload_arrivals[i] < w.begin) ++i;
    std::size_t in_window = 0;
    std::size_t j = i;
    while (j < overload_arrivals.size() && overload_arrivals[j] < w.end) {
      ++in_window;
      ++j;
    }
    if (in_window > 1) return false;
  }
  return true;
}

Time max_busy_window_length(const std::vector<BusyWindow>& windows) {
  Time best = 0;
  for (const BusyWindow& w : windows) best = std::max(best, w.end - w.begin);
  return best;
}

}  // namespace wharf::sim
