/// \file busy_windows.hpp
/// Observed σ_b-busy-windows (paper Definition 6) extracted from
/// simulation results, plus the checker for the paper's standing TWCA
/// assumption that at most one activation of an overload chain falls
/// into any busy window of the analyzed chain.

#ifndef WHARF_SIM_BUSY_WINDOWS_HPP
#define WHARF_SIM_BUSY_WINDOWS_HPP

#include <vector>

#include "core/system.hpp"
#include "sim/simulator.hpp"

namespace wharf::sim {

/// A maximal interval during which at least one instance of the chain
/// was pending (activated but not finished) — Definition 6.
struct BusyWindow {
  Time begin = 0;
  Time end = 0;

  friend bool operator==(const BusyWindow&, const BusyWindow&) = default;
};

/// Extracts the observed busy windows of one chain from its instance
/// records: the union of the pending intervals [activation, finish],
/// merged where they touch or overlap.  Instances must all be completed
/// (which simulate() guarantees).
[[nodiscard]] std::vector<BusyWindow> observed_busy_windows(const ChainResult& chain);

/// Checks the paper's assumption for TWCA soundness: no busy window of
/// the analyzed chain contains more than one activation of any single
/// overload chain.  `overload_arrivals` are the activation times of one
/// overload chain; an arrival lies in a window when begin <= t < end.
[[nodiscard]] bool at_most_one_arrival_per_window(const std::vector<BusyWindow>& windows,
                                                  const std::vector<Time>& overload_arrivals);

/// Longest observed busy window, or 0 when there are none.
[[nodiscard]] Time max_busy_window_length(const std::vector<BusyWindow>& windows);

}  // namespace wharf::sim

#endif  // WHARF_SIM_BUSY_WINDOWS_HPP
