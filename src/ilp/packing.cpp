#include "ilp/packing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ilp/branch_and_bound.hpp"
#include "util/expect.hpp"

namespace wharf::ilp {

void validate(const PackingProblem& problem) {
  const int num_resources = static_cast<int>(problem.capacities.size());
  for (Count cap : problem.capacities) {
    WHARF_EXPECT(cap >= 0, "packing capacity must be non-negative, got " << cap);
  }
  for (const auto& item : problem.item_resources) {
    WHARF_EXPECT(!item.empty(), "packing item must consume at least one resource");
    std::vector<int> sorted = item;
    std::sort(sorted.begin(), sorted.end());
    WHARF_EXPECT(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
                 "packing item references a resource twice");
    for (int r : item) {
      WHARF_EXPECT(r >= 0 && r < num_resources,
                   "packing item references resource " << r << " out of range [0, "
                                                       << num_resources << ")");
    }
  }
}

PackingSolution solve_packing_ilp(const PackingProblem& problem) {
  validate(problem);
  const int n = static_cast<int>(problem.item_resources.size());
  PackingSolution out;
  out.counts.assign(static_cast<std::size_t>(n), 0);
  if (n == 0) return out;

  lp::Problem relaxation(std::vector<double>(static_cast<std::size_t>(n), 1.0));
  for (std::size_t r = 0; r < problem.capacities.size(); ++r) {
    std::vector<double> row(static_cast<std::size_t>(n), 0.0);
    bool used = false;
    for (int i = 0; i < n; ++i) {
      const auto& res = problem.item_resources[static_cast<std::size_t>(i)];
      if (std::find(res.begin(), res.end(), static_cast<int>(r)) != res.end()) {
        row[static_cast<std::size_t>(i)] = 1.0;
        used = true;
      }
    }
    if (used) relaxation.add_le(std::move(row), static_cast<double>(problem.capacities[r]));
  }

  Problem ilp{std::move(relaxation), std::vector<bool>(static_cast<std::size_t>(n), true)};
  Options options;
  options.objective_is_integral = true;
  const Solution sol = solve(ilp, options);
  WHARF_EXPECT(sol.status == Status::kOptimal || sol.status == Status::kInfeasible,
               "packing ILP did not solve to optimality: status "
                   << static_cast<int>(sol.status));
  out.nodes = sol.nodes_explored;
  if (sol.status == Status::kOptimal) {
    out.total = static_cast<Count>(std::llround(sol.objective));
    for (int i = 0; i < n; ++i) {
      out.counts[static_cast<std::size_t>(i)] =
          static_cast<Count>(std::llround(sol.x[static_cast<std::size_t>(i)]));
    }
  }
  return out;
}

namespace {

/// Optimistic completion bound: sum over the remaining items of the
/// largest multiplicity each could take if it were alone (capacities not
/// decremented between items), which dominates any feasible completion.
Count optimistic_bound(const PackingProblem& problem, std::size_t first_item,
                       const std::vector<Count>& remaining) {
  Count bound = 0;
  for (std::size_t i = first_item; i < problem.item_resources.size(); ++i) {
    Count item_max = std::numeric_limits<Count>::max();
    for (int r : problem.item_resources[i]) {
      item_max = std::min(item_max, remaining[static_cast<std::size_t>(r)]);
    }
    if (item_max == std::numeric_limits<Count>::max()) item_max = 0;
    bound += item_max;
  }
  return bound;
}

struct DfsState {
  const PackingProblem* problem = nullptr;
  std::vector<Count> remaining;
  std::vector<Count> counts;
  std::vector<Count> best_counts;
  Count best = 0;
  long long nodes = 0;
};

void dfs(DfsState& state, std::size_t item, Count packed) {
  ++state.nodes;
  if (packed > state.best) {
    state.best = packed;
    state.best_counts = state.counts;
  }
  if (item >= state.problem->item_resources.size()) return;
  if (packed + optimistic_bound(*state.problem, item, state.remaining) <= state.best) return;

  Count item_max = std::numeric_limits<Count>::max();
  for (int r : state.problem->item_resources[item]) {
    item_max = std::min(item_max, state.remaining[static_cast<std::size_t>(r)]);
  }
  // Try the largest multiplicities first: good incumbents early.
  for (Count take = item_max; take >= 0; --take) {
    for (int r : state.problem->item_resources[item]) {
      state.remaining[static_cast<std::size_t>(r)] -= take;
    }
    state.counts[item] = take;
    dfs(state, item + 1, packed + take);
    state.counts[item] = 0;
    for (int r : state.problem->item_resources[item]) {
      state.remaining[static_cast<std::size_t>(r)] += take;
    }
  }
}

}  // namespace

PackingSolution solve_packing_dfs(const PackingProblem& problem) {
  validate(problem);
  PackingSolution out;
  out.counts.assign(problem.item_resources.size(), 0);
  if (problem.item_resources.empty()) return out;

  DfsState state;
  state.problem = &problem;
  state.remaining = problem.capacities;
  state.counts.assign(problem.item_resources.size(), 0);
  state.best_counts = state.counts;
  dfs(state, 0, 0);

  out.total = state.best;
  out.counts = state.best_counts;
  out.nodes = state.nodes;
  return out;
}

}  // namespace wharf::ilp
