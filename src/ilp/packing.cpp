#include "ilp/packing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "ilp/branch_and_bound.hpp"
#include "util/expect.hpp"
#include "util/work_stealing.hpp"

namespace wharf::ilp {

void validate(const PackingProblem& problem) {
  const int num_resources = static_cast<int>(problem.capacities.size());
  for (Count cap : problem.capacities) {
    WHARF_EXPECT(cap >= 0, "packing capacity must be non-negative, got " << cap);
  }
  for (const auto& item : problem.item_resources) {
    WHARF_EXPECT(!item.empty(), "packing item must consume at least one resource");
    std::vector<int> sorted = item;
    std::sort(sorted.begin(), sorted.end());
    WHARF_EXPECT(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
                 "packing item references a resource twice");
    for (int r : item) {
      WHARF_EXPECT(r >= 0 && r < num_resources,
                   "packing item references resource " << r << " out of range [0, "
                                                       << num_resources << ")");
    }
  }
}

PackingSolution solve_packing_ilp(const PackingProblem& problem) {
  validate(problem);
  const int n = static_cast<int>(problem.item_resources.size());
  PackingSolution out;
  out.counts.assign(static_cast<std::size_t>(n), 0);
  if (n == 0) return out;

  lp::Problem relaxation(std::vector<double>(static_cast<std::size_t>(n), 1.0));
  for (std::size_t r = 0; r < problem.capacities.size(); ++r) {
    std::vector<double> row(static_cast<std::size_t>(n), 0.0);
    bool used = false;
    for (int i = 0; i < n; ++i) {
      const auto& res = problem.item_resources[static_cast<std::size_t>(i)];
      if (std::find(res.begin(), res.end(), static_cast<int>(r)) != res.end()) {
        row[static_cast<std::size_t>(i)] = 1.0;
        used = true;
      }
    }
    if (used) relaxation.add_le(std::move(row), static_cast<double>(problem.capacities[r]));
  }

  Problem ilp{std::move(relaxation), std::vector<bool>(static_cast<std::size_t>(n), true)};
  Options options;
  options.objective_is_integral = true;
  const Solution sol = solve(ilp, options);
  WHARF_EXPECT(sol.status == Status::kOptimal || sol.status == Status::kInfeasible,
               "packing ILP did not solve to optimality: status "
                   << static_cast<int>(sol.status));
  out.nodes = sol.nodes_explored;
  if (sol.status == Status::kOptimal) {
    out.total = static_cast<Count>(std::llround(sol.objective));
    for (int i = 0; i < n; ++i) {
      out.counts[static_cast<std::size_t>(i)] =
          static_cast<Count>(std::llround(sol.x[static_cast<std::size_t>(i)]));
    }
  }
  return out;
}

namespace {

/// Optimistic completion bound: sum over the remaining items of the
/// largest multiplicity each could take if it were alone (capacities not
/// decremented between items), which dominates any feasible completion.
Count optimistic_bound(const PackingProblem& problem, std::size_t first_item,
                       const std::vector<Count>& remaining) {
  Count bound = 0;
  for (std::size_t i = first_item; i < problem.item_resources.size(); ++i) {
    Count item_max = std::numeric_limits<Count>::max();
    for (int r : problem.item_resources[i]) {
      item_max = std::min(item_max, remaining[static_cast<std::size_t>(r)]);
    }
    if (item_max == std::numeric_limits<Count>::max()) item_max = 0;
    bound += item_max;
  }
  return bound;
}

struct DfsState {
  const PackingProblem* problem = nullptr;
  std::vector<Count> remaining;
  std::vector<Count> counts;
  std::vector<Count> best_counts;
  Count best = 0;
  long long nodes = 0;
};

void dfs(DfsState& state, std::size_t item, Count packed) {
  ++state.nodes;
  if (packed > state.best) {
    state.best = packed;
    state.best_counts = state.counts;
  }
  if (item >= state.problem->item_resources.size()) return;
  if (packed + optimistic_bound(*state.problem, item, state.remaining) <= state.best) return;

  Count item_max = std::numeric_limits<Count>::max();
  for (int r : state.problem->item_resources[item]) {
    item_max = std::min(item_max, state.remaining[static_cast<std::size_t>(r)]);
  }
  // Try the largest multiplicities first: good incumbents early.
  for (Count take = item_max; take >= 0; --take) {
    for (int r : state.problem->item_resources[item]) {
      state.remaining[static_cast<std::size_t>(r)] -= take;
    }
    state.counts[item] = take;
    dfs(state, item + 1, packed + take);
    state.counts[item] = 0;
    for (int r : state.problem->item_resources[item]) {
      state.remaining[static_cast<std::size_t>(r)] += take;
    }
  }
}

}  // namespace

PackingSolution solve_packing_dfs(const PackingProblem& problem) {
  validate(problem);
  PackingSolution out;
  out.counts.assign(problem.item_resources.size(), 0);
  if (problem.item_resources.empty()) return out;

  DfsState state;
  state.problem = &problem;
  state.remaining = problem.capacities;
  state.counts.assign(problem.item_resources.size(), 0);
  state.best_counts = state.counts;
  dfs(state, 0, 0);

  out.total = state.best;
  out.counts = state.best_counts;
  out.nodes = state.nodes;
  return out;
}

PackingPartition partition_packing(const PackingProblem& problem) {
  validate(problem);
  const std::size_t n = problem.item_resources.size();

  // Union-find over items; resources link the items that share them.
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  const auto find = [&parent](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::vector<std::size_t> resource_owner(problem.capacities.size(),
                                          std::numeric_limits<std::size_t>::max());
  for (std::size_t i = 0; i < n; ++i) {
    for (const int r : problem.item_resources[i]) {
      std::size_t& owner = resource_owner[static_cast<std::size_t>(r)];
      if (owner == std::numeric_limits<std::size_t>::max()) {
        owner = i;
      } else {
        parent[find(owner)] = find(i);
      }
    }
  }

  // Assign dense subproblem ids in order of first (smallest) item index,
  // so the partition is deterministic regardless of union order.
  PackingPartition partition;
  std::vector<std::size_t> component(n, std::numeric_limits<std::size_t>::max());
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = find(i);
    if (component[root] == std::numeric_limits<std::size_t>::max()) {
      component[root] = partition.subproblems.size();
      partition.subproblems.emplace_back();
      partition.item_map.emplace_back();
    }
    const std::size_t s = component[root];
    // Keep original resource ids for now; they are renumbered densely
    // once the whole group is known.
    partition.subproblems[s].item_resources.push_back(problem.item_resources[i]);
    partition.item_map[s].push_back(i);
  }

  // Remap resource ids densely per subproblem (ascending original id).
  for (PackingProblem& sub : partition.subproblems) {
    std::vector<int> used;
    for (const auto& item : sub.item_resources) used.insert(used.end(), item.begin(), item.end());
    std::sort(used.begin(), used.end());
    used.erase(std::unique(used.begin(), used.end()), used.end());
    sub.capacities.reserve(used.size());
    for (const int r : used) sub.capacities.push_back(problem.capacities[static_cast<std::size_t>(r)]);
    for (auto& item : sub.item_resources) {
      for (int& r : item) {
        r = static_cast<int>(std::lower_bound(used.begin(), used.end(), r) - used.begin());
      }
    }
  }
  return partition;
}

PackingSolution solve_packing_split(const PackingProblem& problem, int jobs, bool use_dfs) {
  const PackingPartition partition = partition_packing(problem);
  PackingSolution out;
  out.counts.assign(problem.item_resources.size(), 0);
  if (partition.subproblems.empty()) return out;

  // Every subproblem writes its own preallocated slot; work stealing
  // only changes the schedule, so the assembled solution is identical
  // for any jobs value.
  std::vector<PackingSolution> solved(partition.subproblems.size());
  util::work_steal_for_index(partition.subproblems.size(), jobs, [&](std::size_t s) {
    solved[s] = use_dfs ? solve_packing_dfs(partition.subproblems[s])
                        : solve_packing_ilp(partition.subproblems[s]);
  });

  for (std::size_t s = 0; s < partition.subproblems.size(); ++s) {
    out.total += solved[s].total;
    out.nodes += solved[s].nodes;
    for (std::size_t j = 0; j < partition.item_map[s].size(); ++j) {
      out.counts[partition.item_map[s][j]] = solved[s].counts[j];
    }
  }
  return out;
}

}  // namespace wharf::ilp
