/// \file branch_and_bound.hpp
/// Integer linear programming by LP-relaxation branch and bound.
///
/// Together with `lp/simplex.hpp` this forms the in-repo substitute for
/// the MILP solver used by the paper's authors for Theorem 3.  Nodes are
/// explored best-bound-first; when the objective is known to be integral
/// (true for the TWCA packing ILP, whose costs are all 1) bounds are
/// floored before pruning, which closes the gap quickly.

#ifndef WHARF_ILP_BRANCH_AND_BOUND_HPP
#define WHARF_ILP_BRANCH_AND_BOUND_HPP

#include <vector>

#include "lp/simplex.hpp"

namespace wharf::ilp {

/// An ILP: the LP relaxation plus per-variable integrality flags.
struct Problem {
  lp::Problem relaxation;
  /// integrality[j] == true forces x_j integral.  Must match num_vars().
  std::vector<bool> integrality;
};

/// Solver knobs.
struct Options {
  /// Branch-and-bound node cap; exceeded => Status::kNodeLimit.
  int max_nodes = 200'000;
  /// Tolerance for deciding that a relaxation value is integral.
  double integrality_eps = 1e-6;
  /// Declared when every feasible objective value is an integer, enabling
  /// floor-based pruning.
  bool objective_is_integral = false;
  lp::Options lp_options;
};

/// Outcome classification.
enum class Status { kOptimal, kInfeasible, kUnbounded, kNodeLimit };

/// Result of `solve`.
struct Solution {
  Status status = Status::kNodeLimit;
  double objective = 0.0;
  std::vector<double> x;
  /// Number of branch-and-bound nodes whose relaxation was solved.
  int nodes_explored = 0;
};

/// Solves the ILP exactly (within tolerances).
[[nodiscard]] Solution solve(const Problem& problem, const Options& options = {});

}  // namespace wharf::ilp

#endif  // WHARF_ILP_BRANCH_AND_BOUND_HPP
