/// \file packing.hpp
/// The multi-dimensional packing problem at the heart of Theorem 3.
///
/// Items are "unschedulable combinations"; resources are (overload chain,
/// active segment) pairs with capacity Ω^a_b.  Each copy of an item
/// consumes one unit of each resource it references, and the objective is
/// to maximize the total number of packed copies — i.e. the number of
/// busy windows that can be made unschedulable.
///
/// Two exact solvers are provided: the production path reduces to the ILP
/// of `branch_and_bound.hpp` (mirroring the paper's use of an ILP solver),
/// and an independent depth-first enumeration serves as a cross-check in
/// tests and ablation benchmarks.

#ifndef WHARF_ILP_PACKING_HPP
#define WHARF_ILP_PACKING_HPP

#include <vector>

#include "util/types.hpp"

namespace wharf::ilp {

/// Integer packing: maximize sum(x_i) subject to, for every resource r,
/// sum over items i that use r of x_i <= capacity[r], x_i >= 0 integral.
struct PackingProblem {
  /// item_resources[i] lists the resource indices item i consumes
  /// (one unit each); indices must be unique within an item.
  std::vector<std::vector<int>> item_resources;
  /// Per-resource capacities (>= 0).
  std::vector<Count> capacities;
};

/// Result of a packing solve.
struct PackingSolution {
  /// Maximum total number of packed item copies.
  Count total = 0;
  /// Optimal multiplicity per item.
  std::vector<Count> counts;
  /// Search nodes explored (DFS) or B&B nodes (ILP path).
  long long nodes = 0;
};

/// Exact solver via the branch-and-bound ILP (production path).
[[nodiscard]] PackingSolution solve_packing_ilp(const PackingProblem& problem);

/// Exact solver via bounded depth-first enumeration (cross-check path).
[[nodiscard]] PackingSolution solve_packing_dfs(const PackingProblem& problem);

/// An exact decomposition of a packing problem into independent
/// subproblems: items coupled (transitively) through shared resources
/// land in the same subproblem, so the optimum of the whole problem is
/// the sum of the subproblem optima.  In the TWCA instance, items are
/// unschedulable combinations and resources are (overload chain, active
/// segment) pairs — combinations touching disjoint chain/segment sets
/// decompose, which is what makes one target's packing solve splittable
/// across a worker pool.
struct PackingPartition {
  /// Subproblems in deterministic order (by smallest original item
  /// index), each with resources renumbered densely.
  std::vector<PackingProblem> subproblems;
  /// item_map[s][j] = original index of subproblem s's item j.
  std::vector<std::vector<std::size_t>> item_map;
};

/// Partitions a problem into independent subproblems (validates first).
[[nodiscard]] PackingPartition partition_packing(const PackingProblem& problem);

/// Exact solve via decomposition: partitions the problem and solves the
/// independent subproblems on `jobs` workers through a work-stealing
/// deque (subproblem sizes are skewed; stealing balances them).  The
/// result — total, per-item counts, summed node count — is bit-identical
/// for every jobs value, including 1.  `use_dfs` selects the DFS
/// cross-check solver per subproblem instead of the B&B ILP.
[[nodiscard]] PackingSolution solve_packing_split(const PackingProblem& problem, int jobs,
                                                  bool use_dfs = false);

/// Validates a packing problem (non-negative capacities, resource indices
/// in range, no duplicate resource within an item); throws
/// wharf::InvalidArgument on violation.
void validate(const PackingProblem& problem);

}  // namespace wharf::ilp

#endif  // WHARF_ILP_PACKING_HPP
