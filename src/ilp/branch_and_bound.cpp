#include "ilp/branch_and_bound.hpp"

#include <cmath>
#include <limits>
#include <queue>
#include <utility>

#include "util/expect.hpp"

namespace wharf::ilp {

namespace {

/// One additional bound introduced by branching.
struct Branch {
  int var = 0;
  bool is_upper = false;  // true: x_var <= value; false: x_var >= value
  double value = 0.0;
};

struct Node {
  std::vector<Branch> branches;
  double bound = std::numeric_limits<double>::infinity();
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const { return a.bound < b.bound; }
};

lp::Problem with_branches(const lp::Problem& base, const std::vector<Branch>& branches) {
  lp::Problem p = base;
  for (const Branch& br : branches) {
    if (br.is_upper) {
      p.add_upper_bound(br.var, br.value);
    } else {
      p.add_lower_bound(br.var, br.value);
    }
  }
  return p;
}

/// Index of the first integral variable with a fractional relaxation
/// value, or -1 when the point is integral.
int first_fractional(const std::vector<double>& x, const std::vector<bool>& integrality,
                     double eps) {
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (!integrality[j]) continue;
    const double frac = std::abs(x[j] - std::round(x[j]));
    if (frac > eps) return static_cast<int>(j);
  }
  return -1;
}

}  // namespace

Solution solve(const Problem& problem, const Options& options) {
  WHARF_EXPECT(problem.integrality.size() ==
                   static_cast<std::size_t>(problem.relaxation.num_vars()),
               "integrality mask size must equal the number of variables");

  Solution best;
  best.status = Status::kInfeasible;
  best.objective = -std::numeric_limits<double>::infinity();
  best.nodes_explored = 0;

  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
  open.push(Node{});

  bool any_feasible_relaxation = false;

  while (!open.empty()) {
    Node node = open.top();
    open.pop();

    if (best.nodes_explored >= options.max_nodes) {
      best.status = Status::kNodeLimit;
      return best;
    }

    // Bound-based pruning (valid because bounds only tighten down the tree).
    double prune_bound = node.bound;
    if (options.objective_is_integral && std::isfinite(prune_bound)) {
      prune_bound = std::floor(prune_bound + options.integrality_eps);
    }
    if (prune_bound <= best.objective + options.integrality_eps && !best.x.empty()) continue;

    const lp::Problem node_lp = with_branches(problem.relaxation, node.branches);
    const lp::Solution relax = lp::solve(node_lp, options.lp_options);
    ++best.nodes_explored;

    if (relax.status == lp::Status::kIterationLimit) {
      best.status = Status::kNodeLimit;
      return best;
    }
    if (relax.status == lp::Status::kInfeasible) continue;
    if (relax.status == lp::Status::kUnbounded) {
      // With integral variables an unbounded relaxation at any node means
      // the ILP itself is unbounded along that ray (costs are rational).
      best.status = Status::kUnbounded;
      return best;
    }
    any_feasible_relaxation = true;

    double bound = relax.objective;
    if (options.objective_is_integral) bound = std::floor(bound + options.integrality_eps);
    if (!best.x.empty() && bound <= best.objective + options.integrality_eps) continue;

    const int frac = first_fractional(relax.x, problem.integrality, options.integrality_eps);
    if (frac < 0) {
      if (relax.objective > best.objective + options.integrality_eps || best.x.empty()) {
        best.objective = relax.objective;
        best.x = relax.x;
        best.status = Status::kOptimal;
      }
      continue;
    }

    const double v = relax.x[static_cast<std::size_t>(frac)];
    Node down = node;
    down.bound = relax.objective;
    down.branches.push_back(Branch{frac, /*is_upper=*/true, std::floor(v)});
    Node up = node;
    up.bound = relax.objective;
    up.branches.push_back(Branch{frac, /*is_upper=*/false, std::floor(v) + 1.0});
    open.push(std::move(down));
    open.push(std::move(up));
  }

  if (best.x.empty()) {
    best.status = Status::kInfeasible;
    best.objective = 0.0;
    (void)any_feasible_relaxation;
  }
  return best;
}

}  // namespace wharf::ilp
