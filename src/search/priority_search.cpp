#include "search/priority_search.hpp"

#include <algorithm>
#include <random>
#include <utility>

#include "engine/session.hpp"
#include "gen/random_systems.hpp"
#include "util/expect.hpp"
#include "util/strings.hpp"
#include "util/worker_pool.hpp"

namespace wharf::search {

namespace {

/// Dotted "chain.task" names in flat task order (the address space of
/// SetPriorityDelta batches).
std::vector<std::string> dotted_task_names(const System& system) {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(system.task_count()));
  for (const Chain& chain : system.chains()) {
    for (const Task& task : chain.tasks()) {
      names.push_back(util::cat(chain.name(), ".", task.name));
    }
  }
  return names;
}

/// Resolves (and validates) the evaluation targets of `spec` against
/// `system`: explicit indices, or every non-overload chain with a
/// deadline.  The eligible set is invariant under priority permutation
/// (with_priorities changes neither kinds nor deadlines), so one
/// resolution serves every candidate.
std::vector<int> resolve_targets(const System& system, const EvaluationSpec& spec) {
  WHARF_EXPECT(spec.k >= 1, "evaluation horizon k must be >= 1, got " << spec.k);
  std::vector<int> targets = spec.targets;
  if (targets.empty()) {
    for (int c : system.regular_indices()) {
      if (system.chain(c).deadline().has_value()) targets.push_back(c);
    }
  }
  WHARF_EXPECT(!targets.empty(), "no evaluable chains (need non-overload chains with deadlines)");
  return targets;
}

/// The shared factorial guard of exhaustive_search/exhaustive_candidates:
/// returns the base priorities sorted into enumeration start order,
/// throwing when the permutation count exceeds `max_permutations`.
std::vector<Priority> exhaustive_start(const System& base, long long max_permutations) {
  std::vector<Priority> priorities = base.flat_priorities();
  std::sort(priorities.begin(), priorities.end());
  long long permutations = 1;
  for (std::size_t i = 2; i <= priorities.size(); ++i) {
    permutations *= static_cast<long long>(i);
    WHARF_EXPECT(permutations <= max_permutations,
                 "exhaustive search over " << priorities.size()
                                           << " tasks exceeds max_permutations="
                                           << max_permutations);
  }
  return priorities;
}

}  // namespace

void fold_scores(const std::vector<std::vector<Priority>>& candidates,
                 const std::vector<Objective>& scores, SearchResult& result, bool& have_best) {
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (!have_best || scores[i] < result.best_objective) {
      have_best = true;
      result.best_objective = scores[i];
      result.best_priorities = candidates[i];
    }
  }
}

std::vector<std::vector<Priority>> exhaustive_candidates(const System& base,
                                                         long long max_permutations) {
  std::vector<Priority> priorities = exhaustive_start(base, max_permutations);
  std::vector<std::vector<Priority>> candidates;
  do {
    candidates.push_back(priorities);
  } while (std::next_permutation(priorities.begin(), priorities.end()));
  return candidates;
}

std::vector<std::vector<Priority>> random_candidates(const System& base, int samples,
                                                     std::uint64_t seed) {
  WHARF_EXPECT(samples >= 1, "need at least one sample");
  std::mt19937_64 rng(seed);
  const int n = base.task_count();
  std::vector<std::vector<Priority>> candidates;
  candidates.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) candidates.push_back(gen::shuffled_priorities(n, rng));
  return candidates;
}

// ---------------------------------------------------------------------
// EvaluatorStats / Evaluator
// ---------------------------------------------------------------------

std::size_t EvaluatorStats::lookups() const {
  std::size_t n = 0;
  for (const StageDiagnostics& s : stages) n += s.lookups;
  return n;
}

std::size_t EvaluatorStats::hits() const {
  std::size_t n = 0;
  for (const StageDiagnostics& s : stages) n += s.hits;
  return n;
}

std::size_t EvaluatorStats::misses() const {
  std::size_t n = 0;
  for (const StageDiagnostics& s : stages) n += s.misses;
  return n;
}

std::size_t EvaluatorStats::shared() const {
  std::size_t n = 0;
  for (const StageDiagnostics& s : stages) n += s.shared;
  return n;
}

Evaluator::~Evaluator() = default;

std::vector<Objective> Evaluator::evaluate_many(
    const std::vector<std::vector<Priority>>& candidates) {
  std::vector<Objective> scores(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) scores[i] = evaluate(candidates[i]);
  return scores;
}

// ---------------------------------------------------------------------
// PipelineEvaluator
// ---------------------------------------------------------------------

PipelineEvaluator::PipelineEvaluator(System base, EvaluationSpec spec, TwcaOptions options,
                                     ArtifactStore& store, int jobs)
    : base_(std::move(base)),
      spec_(std::move(spec)),
      targets_(resolve_targets(base_, spec_)),
      options_(options),
      store_(&store),
      jobs_(jobs),
      session_(std::make_unique<Session>(base_, options_, *store_, 1)),
      base_priorities_(base_.flat_priorities()),
      task_names_(dotted_task_names(base_)) {}

PipelineEvaluator::PipelineEvaluator(System base, EvaluationSpec spec, TwcaOptions options,
                                     std::size_t cache_bytes)
    : base_(std::move(base)),
      spec_(std::move(spec)),
      targets_(resolve_targets(base_, spec_)),
      options_(options),
      owned_store_(std::make_unique<ArtifactStore>(cache_bytes)),
      store_(owned_store_.get()),
      session_(std::make_unique<Session>(base_, options_, *store_, 1)),
      base_priorities_(base_.flat_priorities()),
      task_names_(dotted_task_names(base_)) {}

PipelineEvaluator::~PipelineEvaluator() = default;

const System& PipelineEvaluator::base() const { return base_; }

Objective PipelineEvaluator::score(const std::vector<Priority>& priorities, int ilp_jobs) {
  // Candidate = delta batch: one SetPriorityDelta per task the candidate
  // moves off the base assignment.  speculate() opens the candidate's
  // own store epoch — artifacts resolved by *earlier* candidates (or
  // earlier engine requests) classify as hits, which is what makes
  // neighborhood reuse observable in stats() — and shares the base
  // session's SliceCache, so only the moved chains' key fragments are
  // re-serialized.
  WHARF_EXPECT(priorities.size() == base_priorities_.size(),
               "expected " << base_priorities_.size() << " priorities, got "
                           << priorities.size());
  std::vector<Delta> deltas;
  for (std::size_t i = 0; i < priorities.size(); ++i) {
    if (priorities[i] != base_priorities_[i]) {
      deltas.push_back(SetPriorityDelta{task_names_[i], priorities[i]});
    }
  }
  Session candidate = session_->speculate(deltas, ilp_jobs);

  Objective obj;
  for (const int c : targets_) {
    const DmmResult r = candidate.dmm(c, spec_.k);
    if (r.dmm > 0) ++obj.chains_missing;
    obj.total_dmm += r.dmm;
    const LatencyResult lat = candidate.latency(c);
    obj.total_wcl = sat_add(obj.total_wcl,
                            lat.bounded ? lat.wcl : options_.analysis.divergence_guard);
  }

  const SessionStats diag = candidate.stats();
  {
    const util::MutexLock guard(stats_mutex_);
    ++stats_.evaluations;
    for (std::size_t s = 0; s < kArtifactStageCount; ++s) {
      stats_.stages[s].lookups += diag.stages[s].lookups;
      stats_.stages[s].hits += diag.stages[s].hits;
      stats_.stages[s].misses += diag.stages[s].misses;
      stats_.stages[s].shared += diag.stages[s].shared;
      stats_.stages[s].bytes_inserted += diag.stages[s].bytes_inserted;
    }
  }
  return obj;
}

Objective PipelineEvaluator::evaluate(const std::vector<Priority>& priorities) {
  return score(priorities, jobs_);
}

std::vector<Objective> PipelineEvaluator::evaluate_many(
    const std::vector<std::vector<Priority>>& candidates) {
  std::vector<Objective> scores(candidates.size());
  // Parallelism across candidates, not inside one candidate's ILP: each
  // index writes its own slot and a candidate's objective is a pure
  // function of its priorities, so scores are identical for any jobs.
  util::parallel_for_index(candidates.size(), jobs_, [&](std::size_t i) {
    scores[i] = score(candidates[i], /*ilp_jobs=*/1);
  });
  return scores;
}

EvaluatorStats PipelineEvaluator::stats() const {
  EvaluatorStats out;
  {
    const util::MutexLock guard(stats_mutex_);
    out = stats_;
  }
  // The slice memo is shared by every candidate session; its lifetime
  // counters live on the base session.
  out.slices = session_->stats().slices;
  return out;
}

// ---------------------------------------------------------------------
// ReferenceEvaluator
// ---------------------------------------------------------------------

ReferenceEvaluator::ReferenceEvaluator(System base, EvaluationSpec spec, TwcaOptions options)
    : base_(std::move(base)),
      spec_(std::move(spec)),
      targets_(resolve_targets(base_, spec_)),
      options_(options) {}

const System& ReferenceEvaluator::base() const { return base_; }

Objective ReferenceEvaluator::evaluate(const std::vector<Priority>& priorities) {
  const TwcaAnalyzer analyzer{base_.with_priorities(priorities), options_};
  Objective obj;
  for (const int c : targets_) {
    const DmmResult r = analyzer.dmm(c, spec_.k);
    if (r.dmm > 0) ++obj.chains_missing;
    obj.total_dmm += r.dmm;
    const LatencyResult& lat = analyzer.latency(c);
    obj.total_wcl = sat_add(obj.total_wcl,
                            lat.bounded ? lat.wcl : options_.analysis.divergence_guard);
  }
  ++evaluations_;
  return obj;
}

EvaluatorStats ReferenceEvaluator::stats() const {
  EvaluatorStats stats;
  stats.evaluations = evaluations_;
  return stats;
}

// ---------------------------------------------------------------------
// Free functions
// ---------------------------------------------------------------------

Objective evaluate_assignment(const System& system, const EvaluationSpec& spec,
                              const TwcaOptions& options) {
  PipelineEvaluator evaluator(system, spec, options);
  return evaluator.evaluate(system.flat_priorities());
}

SearchResult exhaustive_search(Evaluator& evaluator, long long max_permutations) {
  std::vector<Priority> priorities = exhaustive_start(evaluator.base(), max_permutations);

  SearchResult result;
  bool have_best = false;
  constexpr std::size_t kBlock = 128;
  std::vector<std::vector<Priority>> block;
  block.reserve(kBlock);
  const auto flush = [&] {
    const std::vector<Objective> scores = evaluator.evaluate_many(block);
    result.evaluations += static_cast<long long>(block.size());
    fold_scores(block, scores, result, have_best);
    block.clear();
  };
  do {
    block.push_back(priorities);
    if (block.size() == kBlock) flush();
  } while (std::next_permutation(priorities.begin(), priorities.end()));
  if (!block.empty()) flush();
  return result;
}

SearchResult random_search(Evaluator& evaluator, int samples, std::uint64_t seed) {
  WHARF_EXPECT(samples >= 1, "need at least one sample");
  std::mt19937_64 rng(seed);
  const int n = evaluator.base().task_count();

  // Blocked like exhaustive_search: peak memory stays O(kBlock * n) for
  // any budget, and both the rng draw order and the fold order match
  // the one-candidate-at-a-time loop exactly.
  SearchResult result;
  bool have_best = false;
  constexpr int kBlock = 128;
  std::vector<std::vector<Priority>> block;
  block.reserve(kBlock);
  for (int i = 0; i < samples; ++i) {
    block.push_back(gen::shuffled_priorities(n, rng));
    if (static_cast<int>(block.size()) == kBlock || i + 1 == samples) {
      const std::vector<Objective> scores = evaluator.evaluate_many(block);
      result.evaluations += static_cast<long long>(block.size());
      fold_scores(block, scores, result, have_best);
      block.clear();
    }
  }
  return result;
}

SearchResult hill_climb(Evaluator& evaluator, const HillClimbOptions& options) {
  WHARF_EXPECT(options.restarts >= 1, "need at least one restart");
  WHARF_EXPECT(options.max_steps >= 1, "need at least one step");
  std::mt19937_64 rng(options.seed);
  const int n = evaluator.base().task_count();

  SearchResult result;
  bool have_best = false;

  for (int restart = 0; restart < options.restarts; ++restart) {
    std::vector<Priority> current = gen::shuffled_priorities(n, rng);
    Objective current_obj = evaluator.evaluate(current);
    ++result.evaluations;

    for (int step = 0; step < options.max_steps; ++step) {
      // Steepest ascent: the whole pairwise-swap neighborhood scored as
      // one batch, then scanned in (i, j) order — identical to the
      // sequential swap-evaluate-swap-back loop for any jobs value.
      std::vector<std::vector<Priority>> neighborhood;
      neighborhood.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
      for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
          std::vector<Priority> neighbor = current;
          std::swap(neighbor[static_cast<std::size_t>(i)],
                    neighbor[static_cast<std::size_t>(j)]);
          neighborhood.push_back(std::move(neighbor));
        }
      }
      const std::vector<Objective> scores = evaluator.evaluate_many(neighborhood);
      result.evaluations += static_cast<long long>(neighborhood.size());

      Objective best_neighbor_obj = current_obj;
      std::ptrdiff_t best_index = -1;
      for (std::size_t c = 0; c < scores.size(); ++c) {
        if (scores[c] < best_neighbor_obj) {
          best_neighbor_obj = scores[c];
          best_index = static_cast<std::ptrdiff_t>(c);
        }
      }
      if (best_index < 0) break;  // local optimum
      current = std::move(neighborhood[static_cast<std::size_t>(best_index)]);
      current_obj = best_neighbor_obj;
    }

    if (!have_best || current_obj < result.best_objective) {
      have_best = true;
      result.best_objective = current_obj;
      result.best_priorities = current;
    }
  }
  return result;
}

SearchResult exhaustive_search(const System& system, const EvaluationSpec& spec,
                               long long max_permutations, const TwcaOptions& options) {
  PipelineEvaluator evaluator(system, spec, options);
  return exhaustive_search(evaluator, max_permutations);
}

SearchResult random_search(const System& system, const EvaluationSpec& spec, int samples,
                           std::uint64_t seed, const TwcaOptions& options) {
  PipelineEvaluator evaluator(system, spec, options);
  return random_search(evaluator, samples, seed);
}

SearchResult hill_climb(const System& system, const EvaluationSpec& spec,
                        const HillClimbOptions& options, const TwcaOptions& twca_options) {
  PipelineEvaluator evaluator(system, spec, twca_options);
  return hill_climb(evaluator, options);
}

}  // namespace wharf::search
