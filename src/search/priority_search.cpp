#include "search/priority_search.hpp"

#include <algorithm>
#include <random>

#include "gen/random_systems.hpp"
#include "util/expect.hpp"

namespace wharf::search {

namespace {

std::vector<int> default_targets(const System& system) {
  std::vector<int> targets;
  for (int c : system.regular_indices()) {
    if (system.chain(c).deadline().has_value()) targets.push_back(c);
  }
  return targets;
}

Objective evaluate_with_targets(const System& system, const std::vector<int>& targets, Count k,
                                const TwcaOptions& options) {
  TwcaAnalyzer analyzer{system, options};
  Objective obj;
  for (int c : targets) {
    const DmmResult r = analyzer.dmm(c, k);
    if (r.dmm > 0) ++obj.chains_missing;
    obj.total_dmm += r.dmm;
    const LatencyResult& lat = analyzer.latency(c);
    obj.total_wcl = sat_add(obj.total_wcl,
                            lat.bounded ? lat.wcl : options.analysis.divergence_guard);
  }
  return obj;
}

}  // namespace

Objective evaluate_assignment(const System& system, const EvaluationSpec& spec,
                              const TwcaOptions& options) {
  WHARF_EXPECT(spec.k >= 1, "evaluation horizon k must be >= 1, got " << spec.k);
  const std::vector<int> targets =
      spec.targets.empty() ? default_targets(system) : spec.targets;
  WHARF_EXPECT(!targets.empty(), "no evaluable chains (need non-overload chains with deadlines)");
  return evaluate_with_targets(system, targets, spec.k, options);
}

SearchResult exhaustive_search(const System& system, const EvaluationSpec& spec,
                               long long max_permutations, const TwcaOptions& options) {
  std::vector<Priority> priorities = system.flat_priorities();
  std::sort(priorities.begin(), priorities.end());

  long long permutations = 1;
  for (std::size_t i = 2; i <= priorities.size(); ++i) {
    permutations *= static_cast<long long>(i);
    WHARF_EXPECT(permutations <= max_permutations,
                 "exhaustive search over " << priorities.size()
                                           << " tasks exceeds max_permutations="
                                           << max_permutations);
  }

  SearchResult result;
  bool first = true;
  do {
    const System candidate = system.with_priorities(priorities);
    const Objective obj = evaluate_assignment(candidate, spec, options);
    ++result.evaluations;
    if (first || obj < result.best_objective) {
      first = false;
      result.best_objective = obj;
      result.best_priorities = priorities;
    }
  } while (std::next_permutation(priorities.begin(), priorities.end()));
  return result;
}

SearchResult random_search(const System& system, const EvaluationSpec& spec, int samples,
                           std::uint64_t seed, const TwcaOptions& options) {
  WHARF_EXPECT(samples >= 1, "need at least one sample");
  std::mt19937_64 rng(seed);
  SearchResult result;
  bool first = true;
  for (int i = 0; i < samples; ++i) {
    const std::vector<Priority> priorities =
        gen::shuffled_priorities(system.task_count(), rng);
    const System candidate = system.with_priorities(priorities);
    const Objective obj = evaluate_assignment(candidate, spec, options);
    ++result.evaluations;
    if (first || obj < result.best_objective) {
      first = false;
      result.best_objective = obj;
      result.best_priorities = priorities;
    }
  }
  return result;
}

SearchResult hill_climb(const System& system, const EvaluationSpec& spec,
                        const HillClimbOptions& options, const TwcaOptions& twca_options) {
  WHARF_EXPECT(options.restarts >= 1, "need at least one restart");
  WHARF_EXPECT(options.max_steps >= 1, "need at least one step");
  std::mt19937_64 rng(options.seed);
  const int n = system.task_count();

  SearchResult result;
  bool have_best = false;

  for (int restart = 0; restart < options.restarts; ++restart) {
    std::vector<Priority> current = gen::shuffled_priorities(n, rng);
    Objective current_obj =
        evaluate_assignment(system.with_priorities(current), spec, twca_options);
    ++result.evaluations;

    for (int step = 0; step < options.max_steps; ++step) {
      // Steepest ascent over all pairwise swaps.
      Objective best_neighbor_obj = current_obj;
      int best_i = -1;
      int best_j = -1;
      for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
          std::swap(current[static_cast<std::size_t>(i)], current[static_cast<std::size_t>(j)]);
          const Objective obj =
              evaluate_assignment(system.with_priorities(current), spec, twca_options);
          ++result.evaluations;
          if (obj < best_neighbor_obj) {
            best_neighbor_obj = obj;
            best_i = i;
            best_j = j;
          }
          std::swap(current[static_cast<std::size_t>(i)], current[static_cast<std::size_t>(j)]);
        }
      }
      if (best_i < 0) break;  // local optimum
      std::swap(current[static_cast<std::size_t>(best_i)],
                current[static_cast<std::size_t>(best_j)]);
      current_obj = best_neighbor_obj;
    }

    if (!have_best || current_obj < result.best_objective) {
      have_best = true;
      result.best_objective = current_obj;
      result.best_priorities = current;
    }
  }
  return result;
}

}  // namespace wharf::search
