/// \file priority_search.hpp
/// Priority-assignment synthesis for weakly-hard systems.
///
/// The paper's Experiment 2 demonstrates that the priority assignment
/// decides both schedulability and the quality of the deadline miss
/// model; this module turns that observation into a design tool: search
/// the space of priority permutations for the assignment with the best
/// weakly-hard guarantees.  Three strategies with one shared objective:
///
///  * exhaustive enumeration (exact, factorial — small systems only);
///  * random sampling (the paper's Experiment 2 loop, kept as baseline);
///  * steepest-ascent hill climbing over pairwise priority swaps with
///    random restarts (scales to realistic task counts).
///
/// Scoring goes through the `Evaluator` boundary.  The production
/// backend, `PipelineEvaluator`, drives the Engine's staged pipeline
/// against a shared ArtifactStore: a candidate re-solves only the
/// artifacts whose model slices its priorities changed (a pairwise swap
/// typically recomputes ~2 of 2·N busy windows), neighborhoods are
/// scored as one work-pool-parallel batch, and identical concurrent
/// candidates share computation via the store's single-flight
/// resolve().  Results are bit-identical to sequential standalone
/// evaluation for any jobs value — `ReferenceEvaluator` (one
/// TwcaAnalyzer per candidate, no reuse) stays around as the parity
/// reference and cold benchmark baseline.

#ifndef WHARF_SEARCH_PRIORITY_SEARCH_HPP
#define WHARF_SEARCH_PRIORITY_SEARCH_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/model_slice.hpp"
#include "core/twca.hpp"
#include "engine/artifact_store.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "engine/pipeline.hpp"

namespace wharf {
class Session;  // engine/session.hpp
}  // namespace wharf

namespace wharf::search {

/// Lexicographic quality of one priority assignment; *smaller is better*
/// and comparisons go field by field in declaration order:
/// fewer chains missing deadlines, then fewer total misses per horizon,
/// then lower total latency.
struct Objective {
  Count chains_missing = 0;  ///< #evaluated chains with dmm(k) > 0
  Count total_dmm = 0;       ///< sum of dmm(k) over evaluated chains
  Time total_wcl = 0;        ///< sum of WCL (divergence counts as a large penalty)

  friend auto operator<=>(const Objective&, const Objective&) = default;
};

/// What to evaluate: which chains (default: all non-overload chains with
/// a deadline) and at which dmm horizon k.
struct EvaluationSpec {
  Count k = 10;
  /// Chain indices to include; empty = all non-overload chains that have
  /// a deadline.
  std::vector<int> targets;
};

/// Telemetry of one Evaluator: how many candidates it scored and how the
/// artifact store served their stage lookups (all zero for backends that
/// do not cache).  `evaluations` counts every scored candidate over the
/// evaluator's lifetime, including nominal/baseline scores — search
/// algorithms count their own evaluations in SearchResult.
struct EvaluatorStats {
  long long evaluations = 0;
  std::array<StageDiagnostics, kArtifactStageCount> stages{};
  /// Per-chain key-fragment memo reuse (the cross-candidate slice memo
  /// shared by every speculative candidate session; zero for backends
  /// that do not cache).
  SliceCache::Stats slices;

  [[nodiscard]] std::size_t lookups() const;
  [[nodiscard]] std::size_t hits() const;    ///< served from the store
  [[nodiscard]] std::size_t misses() const;  ///< computed afresh
  [[nodiscard]] std::size_t shared() const;  ///< joined an in-flight compute
};

/// Scoring backend boundary: search algorithms see candidates in, one
/// Objective per candidate out.  Implementations must be pure in the
/// candidate — equal priorities yield equal objectives regardless of
/// history or concurrency — which is what makes batched scoring
/// bit-identical to sequential evaluation.
class Evaluator {
 public:
  virtual ~Evaluator();

  /// The base system whose task priorities are being searched.
  [[nodiscard]] virtual const System& base() const = 0;

  /// Scores one candidate assignment (flat task order; applied via
  /// System::with_priorities).
  [[nodiscard]] virtual Objective evaluate(const std::vector<Priority>& priorities) = 0;

  /// Scores a whole neighborhood, index-aligned with `candidates`.
  /// Backends may parallelize; the result is bit-identical to calling
  /// evaluate() element by element.  Default: the sequential loop.
  [[nodiscard]] virtual std::vector<Objective> evaluate_many(
      const std::vector<std::vector<Priority>>& candidates);

  [[nodiscard]] virtual EvaluatorStats stats() const = 0;
};

/// The production backend: scores candidates through wharf::Session —
/// each candidate is a *delta batch* (one SetPriorityDelta per task the
/// candidate moves) speculated off a base session against the shared
/// ArtifactStore.  Every candidate session opens its own store epoch, so
/// reuse across candidates is observable as hits in stats(), and all
/// candidates share the base session's SliceCache (the cross-candidate
/// slice memo: a candidate re-serializes only the per-chain key
/// fragments its deltas touch).  evaluate_many() scores candidates on a
/// worker pool (`jobs`), with concurrent identical slices shared through
/// the store's single-flight resolve().
class PipelineEvaluator final : public Evaluator {
 public:
  /// Shares `store` (must outlive the evaluator) — the Engine passes its
  /// own store so searches warm, and profit from, the same artifacts as
  /// every other query.  `jobs` sizes evaluate_many parallelism (0 = all
  /// hardware threads).
  PipelineEvaluator(System base, EvaluationSpec spec, TwcaOptions options,
                    ArtifactStore& store, int jobs = 1);

  /// Owns a private store with byte budget `cache_bytes` (0 = unlimited).
  explicit PipelineEvaluator(System base, EvaluationSpec spec = {}, TwcaOptions options = {},
                             std::size_t cache_bytes = ArtifactStore::kDefaultByteBudget);

  ~PipelineEvaluator() override;

  [[nodiscard]] const System& base() const override;
  [[nodiscard]] Objective evaluate(const std::vector<Priority>& priorities) override;
  [[nodiscard]] std::vector<Objective> evaluate_many(
      const std::vector<std::vector<Priority>>& candidates) override;
  [[nodiscard]] EvaluatorStats stats() const override;

  [[nodiscard]] const ArtifactStore& store() const { return *store_; }

 private:
  [[nodiscard]] Objective score(const std::vector<Priority>& priorities, int ilp_jobs);

  System base_;
  EvaluationSpec spec_;
  std::vector<int> targets_;
  TwcaOptions options_;
  std::unique_ptr<ArtifactStore> owned_store_;  ///< engaged by the owning ctor
  ArtifactStore* store_ = nullptr;
  int jobs_ = 1;
  /// The base session candidates speculate from (owns the shared
  /// SliceCache; never mutated itself).
  std::unique_ptr<Session> session_;
  std::vector<Priority> base_priorities_;  ///< flat, aligned with task_names_
  std::vector<std::string> task_names_;    ///< dotted "chain.task" per flat index
  mutable util::Mutex stats_mutex_;
  EvaluatorStats stats_ WHARF_GUARDED_BY(stats_mutex_);
};

/// The pre-pipeline reference backend: a standalone TwcaAnalyzer per
/// candidate, no artifact reuse, strictly sequential.  Kept as the
/// parity oracle of the determinism regression tests and the cold
/// baseline of bench_priority_search; production callers want
/// PipelineEvaluator.
class ReferenceEvaluator final : public Evaluator {
 public:
  explicit ReferenceEvaluator(System base, EvaluationSpec spec = {}, TwcaOptions options = {});

  [[nodiscard]] const System& base() const override;
  [[nodiscard]] Objective evaluate(const std::vector<Priority>& priorities) override;
  [[nodiscard]] EvaluatorStats stats() const override;

 private:
  System base_;
  EvaluationSpec spec_;
  std::vector<int> targets_;
  TwcaOptions options_;
  long long evaluations_ = 0;
};

/// Scores one system (one priority assignment) through a transient
/// pipeline-backed evaluator.  For loops, construct a PipelineEvaluator
/// once and reuse it — that is what makes neighborhoods cheap.
[[nodiscard]] Objective evaluate_assignment(const System& system, const EvaluationSpec& spec,
                                            const TwcaOptions& options = {});

/// Search outcome: the best priorities found (flat task order, apply via
/// System::with_priorities), their objective and the evaluation count.
struct SearchResult {
  std::vector<Priority> best_priorities;
  Objective best_objective;
  long long evaluations = 0;
};

/// The exact candidate list exhaustive_search() scores, in its exact
/// enumeration order (sorted priority multiset, std::next_permutation).
/// Materialized for shard planners — the distributed sweep slices this
/// list into work units, and merging per-candidate objectives back in
/// index order via fold_scores() reproduces exhaustive_search()'s
/// result bit for bit.  Same factorial guard: throws when the
/// permutation count exceeds `max_permutations`.
[[nodiscard]] std::vector<std::vector<Priority>> exhaustive_candidates(
    const System& base, long long max_permutations = 50'000);

/// The exact candidate list random_search() scores for the same
/// (samples, seed), in rng draw order — the random-strategy counterpart
/// of exhaustive_candidates().
[[nodiscard]] std::vector<std::vector<Priority>> random_candidates(const System& base,
                                                                   int samples,
                                                                   std::uint64_t seed);

/// Folds index-aligned scores into the incumbent exactly like the
/// sequential search loops do: candidates in index order, strict
/// improvement only (ties keep the earlier candidate).  `have_best`
/// threads the "incumbent exists yet" state across calls so a caller can
/// fold block by block; final `result.evaluations` bookkeeping stays
/// with the caller.  This is the merge kernel of the distributed sweep.
void fold_scores(const std::vector<std::vector<Priority>>& candidates,
                 const std::vector<Objective>& scores, SearchResult& result, bool& have_best);

/// Exhaustively scores every permutation of the existing priority set.
/// Throws wharf::InvalidArgument when the permutation count exceeds
/// `max_permutations` (guard against factorial blow-up).
[[nodiscard]] SearchResult exhaustive_search(Evaluator& evaluator,
                                             long long max_permutations = 50'000);

/// Samples `samples` uniformly random permutations (Experiment 2 style).
[[nodiscard]] SearchResult random_search(Evaluator& evaluator, int samples,
                                         std::uint64_t seed);

/// Options of the local search.
struct HillClimbOptions {
  int restarts = 4;             ///< independent random starting points
  int max_steps = 200;          ///< improving steps per restart
  std::uint64_t seed = 1;
};

/// Steepest-ascent hill climbing: from a random permutation, repeatedly
/// applies the pairwise priority swap that improves the objective most,
/// until a local optimum; keeps the best across restarts.  Each
/// neighborhood (all pairwise swaps) is scored as one evaluate_many
/// batch.
[[nodiscard]] SearchResult hill_climb(Evaluator& evaluator,
                                      const HillClimbOptions& options = {});

// ---------------------------------------------------------------------
// Conveniences binding a private pipeline-backed evaluator per call
// ---------------------------------------------------------------------

[[nodiscard]] SearchResult exhaustive_search(const System& system, const EvaluationSpec& spec,
                                             long long max_permutations = 50'000,
                                             const TwcaOptions& options = {});

[[nodiscard]] SearchResult random_search(const System& system, const EvaluationSpec& spec,
                                         int samples, std::uint64_t seed,
                                         const TwcaOptions& options = {});

[[nodiscard]] SearchResult hill_climb(const System& system, const EvaluationSpec& spec,
                                      const HillClimbOptions& options = {},
                                      const TwcaOptions& twca_options = {});

}  // namespace wharf::search

#endif  // WHARF_SEARCH_PRIORITY_SEARCH_HPP
