/// \file priority_search.hpp
/// Priority-assignment synthesis for weakly-hard systems.
///
/// The paper's Experiment 2 demonstrates that the priority assignment
/// decides both schedulability and the quality of the deadline miss
/// model; this module turns that observation into a design tool: search
/// the space of priority permutations for the assignment with the best
/// weakly-hard guarantees.  Three strategies with one shared objective:
///
///  * exhaustive enumeration (exact, factorial — small systems only);
///  * random sampling (the paper's Experiment 2 loop, kept as baseline);
///  * steepest-ascent hill climbing over pairwise priority swaps with
///    random restarts (scales to realistic task counts).

#ifndef WHARF_SEARCH_PRIORITY_SEARCH_HPP
#define WHARF_SEARCH_PRIORITY_SEARCH_HPP

#include <cstdint>
#include <vector>

#include "core/twca.hpp"

namespace wharf::search {

/// Lexicographic quality of one priority assignment; *smaller is better*
/// and comparisons go field by field in declaration order:
/// fewer chains missing deadlines, then fewer total misses per horizon,
/// then lower total latency.
struct Objective {
  Count chains_missing = 0;  ///< #evaluated chains with dmm(k) > 0
  Count total_dmm = 0;       ///< sum of dmm(k) over evaluated chains
  Time total_wcl = 0;        ///< sum of WCL (divergence counts as a large penalty)

  friend auto operator<=>(const Objective&, const Objective&) = default;
};

/// What to evaluate: which chains (default: all non-overload chains with
/// a deadline) and at which dmm horizon k.
struct EvaluationSpec {
  Count k = 10;
  /// Chain indices to include; empty = all non-overload chains that have
  /// a deadline.
  std::vector<int> targets;
};

/// Scores one system (one priority assignment).
[[nodiscard]] Objective evaluate_assignment(const System& system, const EvaluationSpec& spec,
                                            const TwcaOptions& options = {});

/// Search outcome: the best priorities found (flat task order, apply via
/// System::with_priorities), their objective and the evaluation count.
struct SearchResult {
  std::vector<Priority> best_priorities;
  Objective best_objective;
  long long evaluations = 0;
};

/// Exhaustively scores every permutation of the existing priority set.
/// Throws wharf::InvalidArgument when the permutation count exceeds
/// `max_permutations` (guard against factorial blow-up).
[[nodiscard]] SearchResult exhaustive_search(const System& system, const EvaluationSpec& spec,
                                             long long max_permutations = 50'000,
                                             const TwcaOptions& options = {});

/// Samples `samples` uniformly random permutations (Experiment 2 style).
[[nodiscard]] SearchResult random_search(const System& system, const EvaluationSpec& spec,
                                         int samples, std::uint64_t seed,
                                         const TwcaOptions& options = {});

/// Options of the local search.
struct HillClimbOptions {
  int restarts = 4;             ///< independent random starting points
  int max_steps = 200;          ///< improving steps per restart
  std::uint64_t seed = 1;
};

/// Steepest-ascent hill climbing: from a random permutation, repeatedly
/// applies the pairwise priority swap that improves the objective most,
/// until a local optimum; keeps the best across restarts.
[[nodiscard]] SearchResult hill_climb(const System& system, const EvaluationSpec& spec,
                                      const HillClimbOptions& options = {},
                                      const TwcaOptions& twca_options = {});

}  // namespace wharf::search

#endif  // WHARF_SEARCH_PRIORITY_SEARCH_HPP
