#include "cli/cli.hpp"

#include "cli/serve.hpp"

#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>

#include "core/dmm_curve.hpp"
#include "core/twca.hpp"
#include "dist/client.hpp"
#include "dist/coordinator.hpp"
#include "engine/engine.hpp"
#include "search/priority_search.hpp"
#include "io/gantt.hpp"
#include "io/json.hpp"
#include "io/report.hpp"
#include "io/system_format.hpp"
#include "io/tables.hpp"
#include "util/expect.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace wharf::cli {

namespace {

constexpr int kOk = 0;
constexpr int kUsageError = 1;
constexpr int kInputError = 2;
constexpr int kNoGuaranteeExit = 3;

const char kUsage[] = R"(wharf — weakly-hard analysis of SPP task-chain systems (DATE'17 TWCA)

usage:
  wharf analyze  <file> [--k K1,K2,...] [--json] [--jobs N] [--cache-bytes N]
                 [--store-dir DIR]
  wharf dmm      <file> <chain> [--k K] [--breakpoints KMAX] [--json]
  wharf path     <file> <chain1,chain2,...> [--deadline D] [--budgets B1,B2,...]
                 [--k K1,K2,...] [--json] [--jobs N]
  wharf simulate <file> [--horizon H] [--seed S] [--extra-gap G] [--gantt WIDTH]
  wharf search   <file> [--k K] [--strategy hill|random|exhaustive] [--budget N]
                 [--restarts R] [--max-permutations N] [--seed S] [--json]
                 [--jobs N] [--cache-bytes N] [--store-dir DIR]
  wharf sweep    <file> [--k K] [--strategy exhaustive|random] [--budget N]
                 [--seed S] [--max-permutations N]
                 [--workers N | --connect host:port,...] [--unit-size N]
                 [--window N] [--unit-deadline-ms MS] [--max-restarts N]
                 [--jobs N] [--store-dir DIR] [--json]
  wharf serve    [--jobs N] [--cache-bytes N] [--store-dir DIR]
                 [--persist-interval MS] [--listen PORT] [--max-connections N]
  wharf validate <file>
  wharf help

<file> is a system description (see io/system_format.hpp); '-' reads stdin.
any subcommand accepts --help (print this text, exit 0).
--store-dir DIR persists the artifact store across runs: analysis
artifacts load from DIR/wharf_store.snapshot at startup and spill back
on clean exit, so repeat invocations start warm.  Corrupt or
version-mismatched snapshots fall back to a cold start (never an error).
exit codes: 0 ok; 1 usage error; 2 input error; 3 analysis gave no guarantee.

serve: a long-lived NDJSON request/response loop over stdin/stdout, or a
127.0.0.1 TCP socket with --listen (port 0 picks one) serving multiple
concurrent connections — one thread per connection, at most
--max-connections at a time (default: hardware threads), all sharing one
engine and artifact store — speaking {open_session, apply_delta, query,
diagnostics, close, shutdown} against incremental analysis sessions
(spec: docs/serve-protocol.md).
serve exit codes: 0 clean shutdown or EOF; 1 usage error; 4 transport failure
(cannot bind/listen/accept, or broken stdio output).
Per-request errors (malformed JSON, unknown session, bad delta/query)
are JSON error responses on the stream, and one client's transport
failure ends only that connection: neither ever exits the server.
--persist-interval MS re-snapshots the store to --store-dir every MS ms
while it has new artifacts (default 200 when --store-dir is set; 0
disables), so even a killed server leaves a warm snapshot behind.

sweep: the distributed form of `search --strategy exhaustive|random`:
shards the candidate permutations over --workers spawned `wharf serve`
processes (or over already-running `wharf serve --listen` peers via
--connect), keeps --window units outstanding per worker, steals work
from laggards, re-issues units lost to crashed, hung (--unit-deadline-ms)
or disconnected workers, and merges deterministically — the result is
bit-identical to `wharf search` and to a 1-worker sweep for any worker
count and any fault history (spec: docs/distributed.md).  --store-dir
DIR gives spawned worker i the snapshot family DIR/worker-<i>, so a
respawned worker starts warm from its periodic snapshot; --jobs is the
per-worker thread count.
)";

/// Parsed --key value / --flag options plus positional arguments.
struct Options {
  std::vector<std::string> positional;
  std::map<std::string, std::string> values;
  bool has(const std::string& key) const { return values.count(key) != 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
};

/// Options that take a value (everything else with a leading -- is a flag).
bool option_takes_value(const std::string& name) {
  return name == "--k" || name == "--breakpoints" || name == "--horizon" || name == "--seed" ||
         name == "--extra-gap" || name == "--gantt" || name == "--strategy" ||
         name == "--budget" || name == "--restarts" || name == "--max-permutations" ||
         name == "--jobs" || name == "--cache-bytes" || name == "--deadline" ||
         name == "--budgets" || name == "--listen" || name == "--max-connections" ||
         name == "--store-dir" || name == "--persist-interval" || name == "--workers" ||
         name == "--connect" || name == "--unit-size" || name == "--window" ||
         name == "--unit-deadline-ms" || name == "--max-restarts";
}

bool parse_options(const std::vector<std::string>& args, std::size_t first, Options& out,
                   std::ostream& err) {
  for (std::size_t i = first; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (util::starts_with(a, "--")) {
      if (option_takes_value(a)) {
        if (i + 1 >= args.size()) {
          err << "missing value for " << a << "\n";
          return false;
        }
        out.values[a] = args[++i];
      } else {
        out.values[a] = "";
      }
    } else {
      out.positional.push_back(a);
    }
  }
  return true;
}

bool parse_count(const std::string& text, Count& out, std::ostream& err,
                 const std::string& what) {
  long long v = 0;
  if (!util::parse_int64(text, v) || v < 1) {
    err << "invalid " << what << ": '" << text << "'\n";
    return false;
  }
  out = v;
  return true;
}

/// Parses --jobs (>= 1, or 0 for all hardware threads).
bool parse_jobs(const Options& options, int& jobs, std::ostream& err) {
  jobs = 1;
  if (!options.has("--jobs")) return true;
  long long v = 0;
  if (!util::parse_int64(options.get("--jobs", ""), v) || v < 0) {
    err << "invalid --jobs: '" << options.get("--jobs", "") << "'\n";
    return false;
  }
  jobs = static_cast<int>(v);
  return true;
}

/// Parses --cache-bytes (>= 0; 0 = unlimited artifact-store budget).
bool parse_cache_bytes(const Options& options, std::size_t& bytes, std::ostream& err) {
  bytes = EngineOptions{}.cache_bytes;
  if (!options.has("--cache-bytes")) return true;
  long long v = 0;
  if (!util::parse_int64(options.get("--cache-bytes", ""), v) || v < 0) {
    err << "invalid --cache-bytes: '" << options.get("--cache-bytes", "") << "'\n";
    return false;
  }
  bytes = static_cast<std::size_t>(v);
  return true;
}

/// Spills the engine's store back to --store-dir when one was given.
/// A failing save is a stderr warning, never an exit-code change — the
/// analysis answer was already produced; persistence only affects how
/// warm the *next* run starts.
void spill_store(Engine& engine, std::ostream& err) {
  const StoreSaveResult saved = engine.persist();
  if (!saved.status.is_ok()) {
    err << "warning: snapshot save failed: " << saved.status.message() << "\n";
  }
}

std::optional<System> load_system(const std::string& path, std::istream& in, std::ostream& err) {
  std::string text;
  if (path == "-") {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream file(path);
    if (!file) {
      err << "cannot open '" << path << "'\n";
      return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }
  const Expected<System> system = capture([&] { return io::parse_system(text); });
  if (!system) {
    err << system.status().message() << "\n";
    return std::nullopt;
  }
  return system.value();
}

std::vector<Count> parse_k_list(const std::string& text, std::ostream& err) {
  std::vector<Count> ks;
  for (const std::string& field : util::split(text, ',')) {
    Count k = 0;
    if (!parse_count(field, k, err, "k value")) return {};
    ks.push_back(k);
  }
  return ks;
}

/// Maps a report outcome onto the CLI exit-code contract.
int exit_code_for(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return kOk;
    case StatusCode::kNoGuarantee: return kNoGuaranteeExit;
    default: return kInputError;
  }
}

int cmd_analyze(const Options& options, std::istream& in, std::ostream& out, std::ostream& err) {
  if (options.positional.size() != 1) {
    err << "analyze expects exactly one file argument\n";
    return kUsageError;
  }
  const auto system = load_system(options.positional[0], in, err);
  if (!system.has_value()) return kInputError;

  std::vector<Count> ks = {10};
  if (options.has("--k")) {
    ks = parse_k_list(options.get("--k", ""), err);
    if (ks.empty()) return kUsageError;
  }
  int jobs = 1;
  if (!parse_jobs(options, jobs, err)) return kUsageError;
  std::size_t cache_bytes = 0;
  if (!parse_cache_bytes(options, cache_bytes, err)) return kUsageError;

  Engine engine{EngineOptions{jobs, cache_bytes, options.get("--store-dir", "")}};
  const AnalysisReport report = engine.run(AnalysisRequest::standard(*system, ks));
  spill_store(engine, err);

  if (options.has("--json")) {
    out << to_json(report) << "\n";
  } else {
    out << io::render_report(*system, report);
  }
  const Status status = report.worst_status();
  if (!status.is_ok() && !options.has("--json")) err << status.to_string() << "\n";
  return exit_code_for(status);
}

int cmd_dmm(const Options& options, std::istream& in, std::ostream& out, std::ostream& err) {
  if (options.positional.size() != 2) {
    err << "dmm expects <file> <chain>\n";
    return kUsageError;
  }
  const auto system = load_system(options.positional[0], in, err);
  if (!system.has_value()) return kInputError;
  const std::string& chain_name = options.positional[1];

  Count k = 10;
  if (options.has("--k") && !parse_count(options.get("--k", ""), k, err, "k")) {
    return kUsageError;
  }
  if (options.has("--json") && options.has("--breakpoints")) {
    err << "--breakpoints cannot be combined with --json (the table would corrupt the "
           "JSON stream); use --k with a grid instead\n";
    return kUsageError;
  }

  Engine engine;
  const AnalysisReport report =
      engine.run(AnalysisRequest{*system, {}, {DmmQuery{chain_name, {k}}}});
  const QueryResult& result = report.results.front();
  if (!result.ok()) {
    err << result.status.to_string() << "\n";
    return exit_code_for(result.status);
  }
  const DmmResult& r = std::get<DmmAnswer>(result.answer).curve.front();

  if (options.has("--json")) {
    out << to_json(report) << "\n";
  } else {
    out << "dmm_" << chain_name << "(" << k << ") = " << r.dmm << "  [" << to_string(r.status)
        << (r.reason.empty() ? "" : ": " + r.reason) << "]\n";
  }

  if (options.has("--breakpoints")) {
    Count k_max = 0;
    if (!parse_count(options.get("--breakpoints", ""), k_max, err, "breakpoint horizon")) {
      return kUsageError;
    }
    // The breakpoint scan queries adaptively (binary search between
    // steps), so it drives the analyzer core directly.
    const auto table_or = capture([&] {
      TwcaAnalyzer analyzer{*system};
      const auto chain = system->chain_index(chain_name);
      WHARF_EXPECT(chain.has_value(), "unknown chain '" << chain_name << "'");
      io::TextTable table({"first k", "dmm(k)"});
      for (const DmmBreakpoint& bp : dmm_breakpoints(analyzer, *chain, k_max)) {
        table.add_row({util::cat(bp.k), util::cat(bp.dmm)});
      }
      return table.render();
    });
    if (!table_or) {
      err << table_or.status().message() << "\n";
      return exit_code_for(table_or.status());
    }
    out << table_or.value();
  }
  return r.status == DmmStatus::kNoGuarantee ? kNoGuaranteeExit : kOk;
}

int cmd_path(const Options& options, std::istream& in, std::ostream& out, std::ostream& err) {
  if (options.positional.size() != 2) {
    err << "path expects <file> <chain1,chain2,...>\n";
    return kUsageError;
  }
  const auto system = load_system(options.positional[0], in, err);
  if (!system.has_value()) return kInputError;
  const std::vector<std::string> chains = util::split(options.positional[1], ',');

  AnalysisRequest request{*system, {}, {PathLatencyQuery{chains}}};
  if (options.has("--deadline")) {
    PathDmmQuery dmm_query;
    dmm_query.chains = chains;
    Count deadline = 0;
    if (!parse_count(options.get("--deadline", ""), deadline, err, "deadline")) {
      return kUsageError;
    }
    dmm_query.deadline = deadline;
    if (options.has("--budgets")) {
      for (const std::string& field : util::split(options.get("--budgets", ""), ',')) {
        Count budget = 0;
        if (!parse_count(field, budget, err, "budget")) return kUsageError;
        dmm_query.budgets.push_back(budget);
      }
    }
    if (options.has("--k")) {
      dmm_query.ks = parse_k_list(options.get("--k", ""), err);
      if (dmm_query.ks.empty()) return kUsageError;
    }
    request.queries.push_back(dmm_query);
  } else if (options.has("--budgets") || options.has("--k")) {
    err << "--budgets/--k require --deadline (they parameterize the path DMM)\n";
    return kUsageError;
  }
  int jobs = 1;
  if (!parse_jobs(options, jobs, err)) return kUsageError;

  Engine engine{EngineOptions{jobs, EngineOptions{}.cache_bytes, ""}};
  const AnalysisReport report = engine.run(request);

  if (options.has("--json")) {
    // Like analyze: failed queries are structured status entries in the
    // JSON stream, never a bare stderr line with empty stdout.
    out << to_json(report) << "\n";
    return exit_code_for(report.worst_status());
  }

  for (const QueryResult& result : report.results) {
    if (!result.ok()) {
      err << result.status.to_string() << "\n";
      return exit_code_for(result.status);
    }
  }

  const auto& latency = std::get<PathLatencyAnswer>(report.results.front().answer);
  out << "path " << options.positional[1] << ": ";
  if (latency.result.bounded) {
    out << "WCL <= " << latency.result.wcl << " (per chain:";
    for (const Time t : latency.result.per_chain_wcl) out << ' ' << t;
    out << ")\n";
  } else {
    out << "unbounded: " << latency.result.reason << "\n";
  }
  if (report.results.size() > 1) {
    const auto& dmm = std::get<PathDmmAnswer>(report.results[1].answer);
    for (const PathDmmResult& r : dmm.curve) {
      out << "dmm_path(" << r.k << ") = " << r.dmm << "  [" << to_string(r.status)
          << (r.reason.empty() ? "" : ": " + r.reason) << "]\n";
    }
  }
  return exit_code_for(report.worst_status());
}

int cmd_simulate(const Options& options, std::istream& in, std::ostream& out, std::ostream& err) {
  if (options.positional.size() != 1) {
    err << "simulate expects exactly one file argument\n";
    return kUsageError;
  }
  const auto system = load_system(options.positional[0], in, err);
  if (!system.has_value()) return kInputError;

  SimulationQuery query;
  query.cross_validate = false;  // plain observation, as before
  Count horizon = 100'000;
  if (options.has("--horizon") &&
      !parse_count(options.get("--horizon", ""), horizon, err, "horizon")) {
    return kUsageError;
  }
  query.horizon = horizon;
  Count seed = 1;
  if (options.has("--seed") && !parse_count(options.get("--seed", ""), seed, err, "seed")) {
    return kUsageError;
  }
  query.seed = static_cast<std::uint64_t>(seed);
  if (options.has("--extra-gap")) {
    Count gap = 0;
    if (!parse_count(options.get("--extra-gap", ""), gap, err, "extra gap")) {
      return kUsageError;
    }
    query.extra_gap = static_cast<double>(gap);
  }
  query.record_trace = options.has("--gantt");

  Engine engine;
  const AnalysisReport report = engine.run(AnalysisRequest{*system, {}, {query}});
  const QueryResult& result = report.results.front();
  if (!result.ok()) {
    err << result.status.to_string() << "\n";
    return exit_code_for(result.status);
  }
  const SimulationAnswer& answer = std::get<SimulationAnswer>(result.answer);

  io::TextTable table({"chain", "instances", "max latency", "misses",
                       util::cat("max misses/", query.check_k)});
  for (const SimulationAnswer::ChainStats& cr : answer.chains) {
    table.add_row({cr.chain, util::cat(cr.completed), util::cat(cr.max_latency),
                   util::cat(cr.miss_count),
                   cr.completed == 0 ? "-" : util::cat(cr.max_window_misses)});
  }
  out << table.render();

  if (options.has("--gantt")) {
    Count width = 0;
    if (!parse_count(options.get("--gantt", ""), width, err, "gantt width")) {
      return kUsageError;
    }
    io::GanttOptions gantt;
    gantt.to = std::min<Time>(answer.makespan, width);
    gantt.ticks_per_char = std::max<Time>(1, gantt.to / 100);
    out << '\n' << io::render_gantt(*system, answer.trace, gantt);
  }
  return kOk;
}

int cmd_search(const Options& options, std::istream& in, std::ostream& out, std::ostream& err) {
  if (options.positional.size() != 1) {
    err << "search expects exactly one file argument\n";
    return kUsageError;
  }
  const auto system = load_system(options.positional[0], in, err);
  if (!system.has_value()) return kInputError;

  PrioritySearchQuery query;
  Count k = 10;
  if (options.has("--k") && !parse_count(options.get("--k", ""), k, err, "k")) {
    return kUsageError;
  }
  query.k = k;
  Count budget = 200;
  if (options.has("--budget") &&
      !parse_count(options.get("--budget", ""), budget, err, "budget")) {
    return kUsageError;
  }
  query.budget = static_cast<int>(budget);
  Count seed = 1;
  if (options.has("--seed") && !parse_count(options.get("--seed", ""), seed, err, "seed")) {
    return kUsageError;
  }
  query.seed = static_cast<std::uint64_t>(seed);
  Count restarts = 4;
  if (options.has("--restarts") &&
      !parse_count(options.get("--restarts", ""), restarts, err, "restarts")) {
    return kUsageError;
  }
  query.restarts = static_cast<int>(restarts);
  Count max_permutations = 0;
  if (options.has("--max-permutations")) {
    if (!parse_count(options.get("--max-permutations", ""), max_permutations, err,
                     "max permutations")) {
      return kUsageError;
    }
    query.max_permutations = max_permutations;
  }
  const std::string strategy = options.get("--strategy", "hill");
  if (strategy == "random") {
    query.strategy = PrioritySearchQuery::Strategy::kRandom;
  } else if (strategy == "hill" || strategy == "climb") {
    query.strategy = PrioritySearchQuery::Strategy::kHillClimb;
  } else if (strategy == "exhaustive") {
    query.strategy = PrioritySearchQuery::Strategy::kExhaustive;
  } else {
    err << "unknown strategy '" << strategy << "' (use hill|random|exhaustive)\n";
    return kUsageError;
  }
  int jobs = 1;
  if (!parse_jobs(options, jobs, err)) return kUsageError;
  std::size_t cache_bytes = 0;
  if (!parse_cache_bytes(options, cache_bytes, err)) return kUsageError;

  Engine engine{EngineOptions{jobs, cache_bytes, options.get("--store-dir", "")}};
  const AnalysisReport report = engine.run(AnalysisRequest{*system, {}, {query}});
  spill_store(engine, err);
  const QueryResult& result = report.results.front();
  if (!result.ok()) {
    if (options.has("--json")) {
      out << to_json(report) << "\n";
    } else {
      err << result.status.to_string() << "\n";
    }
    return exit_code_for(result.status);
  }
  if (options.has("--json")) {
    out << to_json(report) << "\n";
    return kOk;
  }
  const SearchAnswer& answer = std::get<SearchAnswer>(result.answer);

  out << "nominal:  missing=" << answer.nominal.chains_missing
      << " dmm=" << answer.nominal.total_dmm << " wcl=" << answer.nominal.total_wcl << "\n";
  out << "best:     missing=" << answer.result.best_objective.chains_missing
      << " dmm=" << answer.result.best_objective.total_dmm
      << " wcl=" << answer.result.best_objective.total_wcl << "  (" << answer.result.evaluations
      << " evaluations)\n";
  out << "priorities (flat task order):";
  for (Priority p : answer.result.best_priorities) out << ' ' << p;
  out << '\n';
  out << "store: " << answer.stats.hits() << " hits / " << answer.stats.misses()
      << " misses / " << answer.stats.shared() << " shared\n";
  return kOk;
}

int cmd_sweep(const Options& options, std::istream& in, std::ostream& out, std::ostream& err) {
  if (options.positional.size() != 1) {
    err << "sweep expects exactly one file argument\n";
    return kUsageError;
  }
  const auto system = load_system(options.positional[0], in, err);
  if (!system.has_value()) return kInputError;

  Count k = 10;
  if (options.has("--k") && !parse_count(options.get("--k", ""), k, err, "k")) {
    return kUsageError;
  }
  Count budget = 200;
  if (options.has("--budget") &&
      !parse_count(options.get("--budget", ""), budget, err, "budget")) {
    return kUsageError;
  }
  Count seed = 1;
  if (options.has("--seed") && !parse_count(options.get("--seed", ""), seed, err, "seed")) {
    return kUsageError;
  }
  Count max_permutations = 50'000;
  if (options.has("--max-permutations") &&
      !parse_count(options.get("--max-permutations", ""), max_permutations, err,
                   "max permutations")) {
    return kUsageError;
  }
  const std::string strategy = options.get("--strategy", "exhaustive");
  if (strategy != "exhaustive" && strategy != "random") {
    err << "unknown sweep strategy '" << strategy
        << "' (use exhaustive|random; hill climbing is sequential — use `wharf search`)\n";
    return kUsageError;
  }
  int jobs = 1;
  if (!parse_jobs(options, jobs, err)) return kUsageError;

  // The candidate list is the exact enumeration `wharf search` scores —
  // that is the determinism contract the merge leans on.
  const auto candidates = capture([&] {
    return strategy == "exhaustive"
               ? search::exhaustive_candidates(*system, max_permutations)
               : search::random_candidates(*system, static_cast<int>(budget),
                                           static_cast<std::uint64_t>(seed));
  });
  if (!candidates) {
    err << candidates.status().message() << "\n";
    return kInputError;
  }

  std::vector<dist::WorkerSpec> workers;
  if (options.has("--connect")) {
    if (options.has("--workers")) {
      err << "--workers and --connect are mutually exclusive\n";
      return kUsageError;
    }
    for (const std::string& peer : util::split(options.get("--connect", ""), ',')) {
      const auto colon = peer.rfind(':');
      long long port = 0;
      if (colon == std::string::npos || colon == 0 ||
          !util::parse_int64(peer.substr(colon + 1), port) || port < 1 || port > 65535) {
        err << "invalid --connect peer '" << peer << "' (want host:port)\n";
        return kUsageError;
      }
      dist::WorkerSpec spec;
      spec.host = peer.substr(0, colon);
      spec.port = static_cast<int>(port);
      workers.push_back(std::move(spec));
    }
    if (workers.empty()) {
      err << "--connect needs at least one host:port peer\n";
      return kUsageError;
    }
  } else {
    Count worker_count = 2;
    if (options.has("--workers") &&
        !parse_count(options.get("--workers", ""), worker_count, err, "worker count")) {
      return kUsageError;
    }
    const std::string binary = dist::self_binary();
    const std::string store_dir = options.get("--store-dir", "");
    for (Count i = 0; i < worker_count; ++i) {
      dist::WorkerSpec spec;
      spec.binary = binary;
      spec.jobs = jobs;
      if (!store_dir.empty()) spec.store_dir = util::cat(store_dir, "/worker-", i);
      workers.push_back(std::move(spec));
    }
  }

  dist::SweepOptions sweep;
  sweep.k = k;
  Count value = 0;
  if (options.has("--unit-size")) {
    if (!parse_count(options.get("--unit-size", ""), value, err, "unit size")) {
      return kUsageError;
    }
    sweep.unit_size = static_cast<std::size_t>(value);
  }
  if (options.has("--window")) {
    if (!parse_count(options.get("--window", ""), value, err, "window")) return kUsageError;
    sweep.window = static_cast<int>(value);
  }
  if (options.has("--unit-deadline-ms")) {
    if (!parse_count(options.get("--unit-deadline-ms", ""), value, err, "unit deadline")) {
      return kUsageError;
    }
    sweep.unit_deadline_ms = value;
  }
  if (options.has("--max-restarts")) {
    if (!parse_count(options.get("--max-restarts", ""), value, err, "restart budget")) {
      return kUsageError;
    }
    sweep.max_restarts = static_cast<int>(value);
  }

  const Expected<dist::SweepOutcome> outcome =
      dist::run_sweep(*system, {}, candidates.value(), workers, sweep);
  if (!outcome.has_value()) {
    err << outcome.status().to_string() << "\n";
    return exit_code_for(outcome.status());
  }
  const dist::SweepOutcome& sweep_result = outcome.value();
  const dist::SweepTelemetry& telemetry = sweep_result.telemetry;

  if (options.has("--json")) {
    io::JsonWriter w(out);
    w.begin_object();
    w.key("nominal");
    w.begin_object();
    w.key("chains_missing");
    w.value(sweep_result.nominal.chains_missing);
    w.key("total_dmm");
    w.value(sweep_result.nominal.total_dmm);
    w.key("total_wcl");
    w.value(sweep_result.nominal.total_wcl);
    w.end_object();
    w.key("best");
    w.begin_object();
    w.key("chains_missing");
    w.value(sweep_result.result.best_objective.chains_missing);
    w.key("total_dmm");
    w.value(sweep_result.result.best_objective.total_dmm);
    w.key("total_wcl");
    w.value(sweep_result.result.best_objective.total_wcl);
    w.key("priorities");
    w.begin_array();
    for (const Priority p : sweep_result.result.best_priorities) {
      w.value(static_cast<long long>(p));
    }
    w.end_array();
    w.end_object();
    w.key("evaluations");
    w.value(sweep_result.result.evaluations);
    w.key("sweep");
    w.begin_object();
    w.key("workers");
    w.value(telemetry.workers);
    w.key("units");
    w.value(static_cast<long long>(telemetry.units));
    w.key("stolen_units");
    w.value(telemetry.stolen_units);
    w.key("reissued_units");
    w.value(telemetry.reissued_units);
    w.key("duplicate_results");
    w.value(telemetry.duplicate_results);
    w.key("worker_deaths");
    w.value(telemetry.worker_deaths);
    w.key("worker_restarts");
    w.value(telemetry.worker_restarts);
    w.key("protocol_errors");
    w.value(telemetry.protocol_errors);
    w.end_object();
    w.end_object();
    out << "\n";
    return kOk;
  }

  out << "nominal:  missing=" << sweep_result.nominal.chains_missing
      << " dmm=" << sweep_result.nominal.total_dmm << " wcl=" << sweep_result.nominal.total_wcl
      << "\n";
  out << "best:     missing=" << sweep_result.result.best_objective.chains_missing
      << " dmm=" << sweep_result.result.best_objective.total_dmm
      << " wcl=" << sweep_result.result.best_objective.total_wcl << "  ("
      << sweep_result.result.evaluations << " evaluations)\n";
  out << "priorities (flat task order):";
  for (Priority p : sweep_result.result.best_priorities) out << ' ' << p;
  out << '\n';
  out << "sweep: " << telemetry.workers << " workers, " << telemetry.units << " units, "
      << telemetry.stolen_units << " stolen, " << telemetry.reissued_units << " reissued, "
      << telemetry.duplicate_results << " duplicates, " << telemetry.worker_deaths
      << " deaths, " << telemetry.worker_restarts << " restarts\n";
  return kOk;
}

int cmd_serve_dispatch(const Options& options, std::istream& in, std::ostream& out,
                       std::ostream& err) {
  if (!options.positional.empty()) {
    err << "serve takes no positional arguments\n";
    return kUsageError;
  }
  int jobs = 1;
  if (!parse_jobs(options, jobs, err)) return kUsageError;
  std::size_t cache_bytes = 0;
  if (!parse_cache_bytes(options, cache_bytes, err)) return kUsageError;
  int listen_port = -1;
  if (options.has("--listen")) {
    long long port = 0;
    if (!util::parse_int64(options.get("--listen", ""), port) || port < 0 || port > 65535) {
      err << "invalid --listen port: '" << options.get("--listen", "") << "'\n";
      return kUsageError;
    }
    listen_port = static_cast<int>(port);
  }
  int max_connections = 0;  // 0 = hardware_concurrency
  if (options.has("--max-connections")) {
    long long value = 0;
    if (!util::parse_int64(options.get("--max-connections", ""), value) || value < 1 ||
        value > std::numeric_limits<int>::max()) {
      err << "invalid --max-connections: '" << options.get("--max-connections", "") << "'\n";
      return kUsageError;
    }
    max_connections = static_cast<int>(value);
  }
  long long persist_interval_ms = -1;  // default: on (200ms) iff --store-dir
  if (options.has("--persist-interval")) {
    if (!util::parse_int64(options.get("--persist-interval", ""), persist_interval_ms) ||
        persist_interval_ms < 0) {
      err << "invalid --persist-interval: '" << options.get("--persist-interval", "") << "'\n";
      return kUsageError;
    }
  }
  return cmd_serve(jobs, cache_bytes, options.get("--store-dir", ""), persist_interval_ms,
                   listen_port, max_connections, in, out, err);
}

int cmd_validate(const Options& options, std::istream& in, std::ostream& out, std::ostream& err) {
  if (options.positional.size() != 1) {
    err << "validate expects exactly one file argument\n";
    return kUsageError;
  }
  const auto system = load_system(options.positional[0], in, err);
  if (!system.has_value()) return kInputError;
  out << "ok: system '" << system->name() << "' with " << system->size() << " chains, "
      << system->task_count() << " tasks, utilization " << system->utilization() << '\n';
  return kOk;
}

}  // namespace

int run(const std::vector<std::string>& args, std::istream& in, std::ostream& out,
        std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help" || args[0] == "-h") {
    out << kUsage;
    return args.empty() ? kUsageError : kOk;
  }
  // `wharf <subcommand> --help` prints the usage (with the exit-code
  // contract) and exits 0 — it must never run the subcommand (a serve
  // invocation would otherwise sit reading stdin).
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--help" || args[i] == "-h") {
      out << kUsage;
      return kOk;
    }
  }
  Options options;
  if (!parse_options(args, 1, options, err)) return kUsageError;

  const std::string& command = args[0];
  if (command == "analyze") return cmd_analyze(options, in, out, err);
  if (command == "dmm") return cmd_dmm(options, in, out, err);
  if (command == "path") return cmd_path(options, in, out, err);
  if (command == "simulate") return cmd_simulate(options, in, out, err);
  if (command == "search") return cmd_search(options, in, out, err);
  if (command == "sweep") return cmd_sweep(options, in, out, err);
  if (command == "serve") return cmd_serve_dispatch(options, in, out, err);
  if (command == "validate") return cmd_validate(options, in, out, err);
  err << "unknown command '" << command << "'\n" << kUsage;
  return kUsageError;
}

int run_main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return run(args, std::cin, std::cout, std::cerr);
}

}  // namespace wharf::cli
