#include "cli/cli.hpp"

#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>

#include "core/dmm_curve.hpp"
#include "core/twca.hpp"
#include "io/gantt.hpp"
#include "io/json.hpp"
#include "io/report.hpp"
#include "io/system_format.hpp"
#include "io/tables.hpp"
#include "search/priority_search.hpp"
#include "sim/arrival_sequence.hpp"
#include "sim/simulator.hpp"
#include "util/expect.hpp"
#include "util/strings.hpp"

namespace wharf::cli {

namespace {

constexpr int kOk = 0;
constexpr int kUsageError = 1;
constexpr int kInputError = 2;

const char kUsage[] = R"(wharf — weakly-hard analysis of SPP task-chain systems (DATE'17 TWCA)

usage:
  wharf analyze  <file> [--k K1,K2,...] [--json]
  wharf dmm      <file> <chain> [--k K] [--breakpoints KMAX]
  wharf simulate <file> [--horizon H] [--seed S] [--extra-gap G] [--gantt WIDTH]
  wharf search   <file> [--k K] [--strategy random|climb] [--budget N] [--seed S]
  wharf validate <file>
  wharf help

<file> is a system description (see io/system_format.hpp); '-' reads stdin.
)";

/// Parsed --key value / --flag options plus positional arguments.
struct Options {
  std::vector<std::string> positional;
  std::map<std::string, std::string> values;
  bool has(const std::string& key) const { return values.count(key) != 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
};

/// Options that take a value (everything else with a leading -- is a flag).
bool option_takes_value(const std::string& name) {
  return name == "--k" || name == "--breakpoints" || name == "--horizon" || name == "--seed" ||
         name == "--extra-gap" || name == "--gantt" || name == "--strategy" ||
         name == "--budget";
}

bool parse_options(const std::vector<std::string>& args, std::size_t first, Options& out,
                   std::ostream& err) {
  for (std::size_t i = first; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (util::starts_with(a, "--")) {
      if (option_takes_value(a)) {
        if (i + 1 >= args.size()) {
          err << "missing value for " << a << "\n";
          return false;
        }
        out.values[a] = args[++i];
      } else {
        out.values[a] = "";
      }
    } else {
      out.positional.push_back(a);
    }
  }
  return true;
}

bool parse_count(const std::string& text, Count& out, std::ostream& err,
                 const std::string& what) {
  long long v = 0;
  if (!util::parse_int64(text, v) || v < 1) {
    err << "invalid " << what << ": '" << text << "'\n";
    return false;
  }
  out = v;
  return true;
}

std::optional<System> load_system(const std::string& path, std::istream& in, std::ostream& err) {
  std::string text;
  if (path == "-") {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream file(path);
    if (!file) {
      err << "cannot open '" << path << "'\n";
      return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }
  try {
    return io::parse_system(text);
  } catch (const Error& e) {
    err << e.what() << "\n";
    return std::nullopt;
  }
}

std::vector<Count> parse_k_list(const std::string& text, std::ostream& err) {
  std::vector<Count> ks;
  for (const std::string& field : util::split(text, ',')) {
    Count k = 0;
    if (!parse_count(field, k, err, "k value")) return {};
    ks.push_back(k);
  }
  return ks;
}

int cmd_analyze(const Options& options, std::istream& in, std::ostream& out, std::ostream& err) {
  if (options.positional.size() != 1) {
    err << "analyze expects exactly one file argument\n";
    return kUsageError;
  }
  const auto system = load_system(options.positional[0], in, err);
  if (!system.has_value()) return kInputError;

  std::vector<Count> ks = {10};
  if (options.has("--k")) {
    ks = parse_k_list(options.get("--k", ""), err);
    if (ks.empty()) return kUsageError;
  }

  TwcaAnalyzer analyzer{*system};
  if (options.has("--json")) {
    out << "{\"system\":\"" << system->name() << "\",\"chains\":[";
    bool first_chain = true;
    for (int c : system->regular_indices()) {
      if (!system->chain(c).deadline().has_value()) continue;
      if (!first_chain) out << ',';
      first_chain = false;
      out << "{\"name\":\"" << system->chain(c).name() << "\",\"latency\":"
          << io::to_json(analyzer.latency(c)) << ",\"dmm\":[";
      for (std::size_t i = 0; i < ks.size(); ++i) {
        if (i != 0) out << ',';
        out << io::to_json(analyzer.dmm(c, ks[i]));
      }
      out << "]}";
    }
    out << "]}\n";
  } else {
    out << io::render_system_report(analyzer, ks);
  }
  return kOk;
}

int cmd_dmm(const Options& options, std::istream& in, std::ostream& out, std::ostream& err) {
  if (options.positional.size() != 2) {
    err << "dmm expects <file> <chain>\n";
    return kUsageError;
  }
  const auto system = load_system(options.positional[0], in, err);
  if (!system.has_value()) return kInputError;
  const auto chain = system->chain_index(options.positional[1]);
  if (!chain.has_value()) {
    err << "unknown chain '" << options.positional[1] << "'\n";
    return kInputError;
  }

  Count k = 10;
  if (options.has("--k") && !parse_count(options.get("--k", ""), k, err, "k")) {
    return kUsageError;
  }
  TwcaAnalyzer analyzer{*system};
  try {
    const DmmResult r = analyzer.dmm(*chain, k);
    out << "dmm_" << options.positional[1] << "(" << k << ") = " << r.dmm << "  ["
        << to_string(r.status) << (r.reason.empty() ? "" : ": " + r.reason) << "]\n";
    if (options.has("--breakpoints")) {
      Count k_max = 0;
      if (!parse_count(options.get("--breakpoints", ""), k_max, err, "breakpoint horizon")) {
        return kUsageError;
      }
      io::TextTable table({"first k", "dmm(k)"});
      for (const DmmBreakpoint& bp : dmm_breakpoints(analyzer, *chain, k_max)) {
        table.add_row({util::cat(bp.k), util::cat(bp.dmm)});
      }
      out << table.render();
    }
  } catch (const Error& e) {
    err << e.what() << "\n";
    return kInputError;
  }
  return kOk;
}

int cmd_simulate(const Options& options, std::istream& in, std::ostream& out, std::ostream& err) {
  if (options.positional.size() != 1) {
    err << "simulate expects exactly one file argument\n";
    return kUsageError;
  }
  const auto system = load_system(options.positional[0], in, err);
  if (!system.has_value()) return kInputError;

  Count horizon = 100'000;
  if (options.has("--horizon") &&
      !parse_count(options.get("--horizon", ""), horizon, err, "horizon")) {
    return kUsageError;
  }
  Count seed = 1;
  if (options.has("--seed") && !parse_count(options.get("--seed", ""), seed, err, "seed")) {
    return kUsageError;
  }

  std::vector<std::vector<Time>> arrivals;
  for (int c = 0; c < system->size(); ++c) {
    const ArrivalModel& model = system->chain(c).arrival();
    if (options.has("--extra-gap")) {
      Count gap = 0;
      if (!parse_count(options.get("--extra-gap", ""), gap, err, "extra gap")) {
        return kUsageError;
      }
      arrivals.push_back(sim::random_arrivals(model, 0, horizon, static_cast<double>(gap),
                                              static_cast<std::uint64_t>(seed + c)));
    } else {
      arrivals.push_back(sim::greedy_arrivals(model, 0, horizon));
    }
  }

  sim::SimOptions sim_options;
  sim_options.record_trace = options.has("--gantt");
  const sim::SimResult result = sim::simulate(*system, arrivals, sim_options);

  io::TextTable table({"chain", "instances", "max latency", "misses", "max misses/10"});
  for (int c = 0; c < system->size(); ++c) {
    const sim::ChainResult& cr = result.chains[static_cast<std::size_t>(c)];
    table.add_row({system->chain(c).name(), util::cat(cr.completed), util::cat(cr.max_latency),
                   util::cat(cr.miss_count),
                   cr.instances.empty() ? "-" : util::cat(cr.max_misses_in_window(10))});
  }
  out << table.render();

  if (options.has("--gantt")) {
    Count width = 0;
    if (!parse_count(options.get("--gantt", ""), width, err, "gantt width")) {
      return kUsageError;
    }
    io::GanttOptions gantt;
    gantt.to = std::min<Time>(result.makespan, width);
    gantt.ticks_per_char = std::max<Time>(1, gantt.to / 100);
    out << '\n' << io::render_gantt(*system, result.trace, gantt);
  }
  return kOk;
}

int cmd_search(const Options& options, std::istream& in, std::ostream& out, std::ostream& err) {
  if (options.positional.size() != 1) {
    err << "search expects exactly one file argument\n";
    return kUsageError;
  }
  const auto system = load_system(options.positional[0], in, err);
  if (!system.has_value()) return kInputError;

  Count k = 10;
  if (options.has("--k") && !parse_count(options.get("--k", ""), k, err, "k")) {
    return kUsageError;
  }
  Count budget = 200;
  if (options.has("--budget") &&
      !parse_count(options.get("--budget", ""), budget, err, "budget")) {
    return kUsageError;
  }
  Count seed = 1;
  if (options.has("--seed") && !parse_count(options.get("--seed", ""), seed, err, "seed")) {
    return kUsageError;
  }
  const std::string strategy = options.get("--strategy", "climb");

  const search::EvaluationSpec spec{k, {}};
  search::SearchResult result;
  try {
    if (strategy == "random") {
      result = search::random_search(*system, spec, static_cast<int>(budget),
                                     static_cast<std::uint64_t>(seed));
    } else if (strategy == "climb") {
      search::HillClimbOptions climb;
      climb.seed = static_cast<std::uint64_t>(seed);
      result = search::hill_climb(*system, spec, climb);
    } else {
      err << "unknown strategy '" << strategy << "' (use random|climb)\n";
      return kUsageError;
    }
  } catch (const Error& e) {
    err << e.what() << "\n";
    return kInputError;
  }

  const search::Objective nominal = search::evaluate_assignment(*system, spec);
  out << "nominal:  missing=" << nominal.chains_missing << " dmm=" << nominal.total_dmm
      << " wcl=" << nominal.total_wcl << "\n";
  out << "best:     missing=" << result.best_objective.chains_missing
      << " dmm=" << result.best_objective.total_dmm << " wcl=" << result.best_objective.total_wcl
      << "  (" << result.evaluations << " evaluations)\n";
  out << "priorities (flat task order):";
  for (Priority p : result.best_priorities) out << ' ' << p;
  out << '\n';
  return kOk;
}

int cmd_validate(const Options& options, std::istream& in, std::ostream& out, std::ostream& err) {
  if (options.positional.size() != 1) {
    err << "validate expects exactly one file argument\n";
    return kUsageError;
  }
  const auto system = load_system(options.positional[0], in, err);
  if (!system.has_value()) return kInputError;
  out << "ok: system '" << system->name() << "' with " << system->size() << " chains, "
      << system->task_count() << " tasks, utilization " << system->utilization() << '\n';
  return kOk;
}

}  // namespace

int run(const std::vector<std::string>& args, std::istream& in, std::ostream& out,
        std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help" || args[0] == "-h") {
    out << kUsage;
    return args.empty() ? kUsageError : kOk;
  }
  Options options;
  if (!parse_options(args, 1, options, err)) return kUsageError;

  const std::string& command = args[0];
  if (command == "analyze") return cmd_analyze(options, in, out, err);
  if (command == "dmm") return cmd_dmm(options, in, out, err);
  if (command == "simulate") return cmd_simulate(options, in, out, err);
  if (command == "search") return cmd_search(options, in, out, err);
  if (command == "validate") return cmd_validate(options, in, out, err);
  err << "unknown command '" << command << "'\n" << kUsage;
  return kUsageError;
}

int run_main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return run(args, std::cin, std::cout, std::cerr);
}

}  // namespace wharf::cli
