/// \file serve.hpp
/// `wharf serve`: the long-lived NDJSON request/response server over the
/// session API (io/wire.hpp speaks the protocol, net/service.hpp does
/// the request handling, engine/session.hpp does the work).  The full
/// protocol specification lives in docs/serve-protocol.md.
///
/// Transport modes:
///  * stdio (default) — one conversation on stdin/stdout until EOF or a
///    shutdown request;
///  * TCP (`--listen PORT`) — 127.0.0.1 socket served by the async core
///    (net/server.hpp): one epoll reactor thread plus a fixed worker
///    pool, serving **any number of concurrent connections** with
///    `--max-connections` as the global in-flight *request* budget.
///    Each connection owns its sessions; all connections share one
///    Engine/ArtifactStore, so identical lookups from different clients
///    coalesce through the store's single-flight table and repeat
///    clients start warm.
///
/// Exit-code contract (the serve-mode consistency rule): a *per-request*
/// error — malformed JSON line, oversized line, unknown session, failing
/// delta, bad query, expired deadline — is answered with a JSON error
/// response on the stream and the server keeps going; the process exits
/// non-zero only for usage errors (1) and transport failures (4: cannot
/// bind/listen/accept, or the stdio output stream broke).  One client's
/// transport failure — a disconnect mid-request, an unwritable socket —
/// terminates only that connection, never the server.  Clean EOF and
/// client-requested shutdown (which stops accepting and drains the live
/// connections) exit 0.

#ifndef WHARF_CLI_SERVE_HPP
#define WHARF_CLI_SERVE_HPP

#include <cstddef>
#include <iosfwd>
#include <string>

#include "engine/engine.hpp"
#include "net/service.hpp"
#include "util/status.hpp"

namespace wharf::cli {

/// Exit code for transport failures in serve mode (bind/listen/accept
/// errors, unwritable stdio output stream).
inline constexpr int kTransportError = 4;

/// The serve counters live with the transport-independent handlers now
/// (net/service.hpp); the alias keeps the historical spelling working.
using ServeTelemetry = net::ServeTelemetry;

/// Runs one NDJSON conversation on `in`/`out` (sessions live for the
/// conversation; `engine` provides the shared store and jobs; `server`,
/// when given, is reported in diagnostics responses and collects the
/// request counters).  Responses are written through an
/// io::FramedWriter, and a failing writer ends the conversation —
/// transport errors stay confined to this stream.  Streaming queries
/// work here too (frames are written back-to-back); request deadlines
/// never expire in this mode because execution starts the moment a
/// request is read.  Returns true when the client requested shutdown,
/// false on EOF or transport failure.  Thread-safe with respect to
/// sibling conversations: concurrent serve_stream calls may share one
/// `engine`.
bool serve_stream(Engine& engine, std::istream& in, std::ostream& out,
                  ServeTelemetry* server = nullptr);

/// Binds a listening TCP socket on 127.0.0.1:`port` (0 picks an
/// ephemeral port, reported via `bound_port`).  Returns the listener fd.
Expected<int> bind_serve_socket(int port, int& bound_port);

/// Serves the listener with the async core (net::AsyncServer): a single
/// reactor thread (the calling one) plus a `max_connections`-sized
/// worker pool, with `max_connections` doubling as the global in-flight
/// request budget (<= 0 means hardware_concurrency).  Connections
/// beyond the budget are accepted and held; their requests queue behind
/// the budget.  A client-requested shutdown stops the accept loop and
/// drains: live connections keep being served until their clients
/// disconnect, then the listener closes and 0 is returned.  Returns
/// kTransportError only when accept() itself fails fatally.
int serve_listener(Engine& engine, int listener_fd, int max_connections, std::ostream& err);

/// The PR-5 connection-per-thread listener, kept as the comparison
/// baseline for bench/serve_async.cpp (thread count grows with the
/// connection count — exactly the scaling the reactor removes).  Same
/// contract as serve_listener.
int serve_listener_threaded(Engine& engine, int listener_fd, int max_connections,
                            std::ostream& err);

/// Default periodic-persist interval of a serve worker with a
/// --store-dir (milliseconds): frequent enough that a SIGKILL'ed sweep
/// worker loses at most a beat of artifacts, coarse enough that the
/// atomic snapshot writes stay off the serving hot path.
inline constexpr long long kDefaultServePersistIntervalMs = 200;

/// The `wharf serve` subcommand: `listen_port` < 0 means stdio mode;
/// `max_connections` <= 0 means hardware_concurrency (TCP mode only).
/// A non-empty `store_dir` loads the persistent artifact snapshot at
/// startup and spills it back on graceful exit (EOF, shutdown request,
/// drained listener) — see engine/store_persist.hpp.  Between those
/// endpoints the engine re-spills periodically (`persist_interval_ms`;
/// < 0 picks kDefaultServePersistIntervalMs when store_dir is set, 0
/// disables) so even an abrupt kill leaves a warm snapshot.
int cmd_serve(int jobs, std::size_t cache_bytes, const std::string& store_dir,
              long long persist_interval_ms, int listen_port, int max_connections,
              std::istream& in, std::ostream& out, std::ostream& err);

}  // namespace wharf::cli

#endif  // WHARF_CLI_SERVE_HPP
