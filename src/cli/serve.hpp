/// \file serve.hpp
/// `wharf serve`: the long-lived NDJSON request/response server over the
/// session API (io/wire.hpp speaks the protocol, engine/session.hpp does
/// the work).  The full protocol specification lives in
/// docs/serve-protocol.md.
///
/// Transport modes:
///  * stdio (default) — one conversation on stdin/stdout until EOF or a
///    shutdown request;
///  * TCP (`--listen PORT`) — 127.0.0.1 socket serving **multiple
///    concurrent connections** (connection-per-thread, bounded by
///    `--max-connections`).  Each connection owns its sessions; all
///    connections share one Engine/ArtifactStore, so identical lookups
///    from different clients coalesce through the store's single-flight
///    table and repeat clients start warm.
///
/// Exit-code contract (the serve-mode consistency rule): a *per-request*
/// error — malformed JSON line, unknown session, failing delta, bad
/// query — is answered with a JSON error response on the stream and the
/// server keeps going; the process exits non-zero only for usage errors
/// (1) and transport failures (4: cannot bind/listen/accept, or the
/// stdio output stream broke).  One client's transport failure — a
/// disconnect mid-request, an unwritable socket — terminates only that
/// connection, never the server.  Clean EOF and client-requested
/// shutdown (which stops accepting and drains the live connections)
/// exit 0.

#ifndef WHARF_CLI_SERVE_HPP
#define WHARF_CLI_SERVE_HPP

#include <atomic>
#include <cstddef>
#include <iosfwd>
#include <string>

#include "engine/engine.hpp"
#include "util/status.hpp"

namespace wharf::cli {

/// Exit code for transport failures in serve mode (bind/listen/accept
/// errors, unwritable stdio output stream).
inline constexpr int kTransportError = 4;

/// Cross-connection counters of one serve process, surfaced in every
/// `diagnostics` response.  Thread-safe (plain atomics); shared by all
/// connection threads of one listener.
struct ServeTelemetry {
  std::atomic<long long> connections_served{0};  ///< conversations started
  std::atomic<int> connections_active{0};        ///< currently live
};

/// Runs one NDJSON conversation on `in`/`out` (sessions live for the
/// conversation; `engine` provides the shared store and jobs; `server`,
/// when given, is reported in diagnostics responses).  Responses are
/// written through an io::FramedWriter, and a failing writer ends the
/// conversation — transport errors stay confined to this stream.
/// Returns true when the client requested shutdown, false on EOF or
/// transport failure.  Thread-safe with respect to sibling
/// conversations: concurrent serve_stream calls may share one `engine`.
bool serve_stream(Engine& engine, std::istream& in, std::ostream& out,
                  const ServeTelemetry* server = nullptr);

/// Binds a listening TCP socket on 127.0.0.1:`port` (0 picks an
/// ephemeral port, reported via `bound_port`).  Returns the listener fd.
Expected<int> bind_serve_socket(int port, int& bound_port);

/// Accepts and serves connections concurrently, one thread per
/// connection, at most `max_connections` at a time (<= 0 means
/// hardware_concurrency); excess connections queue in the accept
/// backlog.  A client-requested shutdown stops the accept loop and
/// drains: live connections keep being served until their clients
/// disconnect, then the listener closes and 0 is returned.  Returns
/// kTransportError only when accept() itself fails.
int serve_listener(Engine& engine, int listener_fd, int max_connections, std::ostream& err);

/// The `wharf serve` subcommand: `listen_port` < 0 means stdio mode;
/// `max_connections` <= 0 means hardware_concurrency (TCP mode only).
/// A non-empty `store_dir` loads the persistent artifact snapshot at
/// startup and spills it back on graceful exit (EOF, shutdown request,
/// drained listener) — see engine/store_persist.hpp.
int cmd_serve(int jobs, std::size_t cache_bytes, const std::string& store_dir, int listen_port,
              int max_connections, std::istream& in, std::ostream& out, std::ostream& err);

}  // namespace wharf::cli

#endif  // WHARF_CLI_SERVE_HPP
