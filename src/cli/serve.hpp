/// \file serve.hpp
/// `wharf serve`: the long-lived NDJSON request/response server over the
/// session API (io/wire.hpp speaks the protocol, engine/session.hpp does
/// the work).
///
/// Transport modes:
///  * stdio (default) — one conversation on stdin/stdout until EOF or a
///    shutdown request;
///  * TCP (`--listen PORT`) — 127.0.0.1 socket, one connection served at
///    a time (sessions are per connection; the engine's artifact store
///    persists across connections, so repeat clients start warm).
///
/// Exit-code contract (the serve-mode consistency rule): a *per-request*
/// error — malformed JSON line, unknown session, failing delta, bad
/// query — is answered with a JSON error response on the stream and the
/// server keeps going; the process exits non-zero only for usage errors
/// (1) and transport failures (4: cannot bind/accept, broken output
/// stream).  Clean EOF and client-requested shutdown exit 0.

#ifndef WHARF_CLI_SERVE_HPP
#define WHARF_CLI_SERVE_HPP

#include <cstddef>
#include <iosfwd>
#include <string>

#include "engine/engine.hpp"
#include "util/status.hpp"

namespace wharf::cli {

/// Exit code for transport failures in serve mode (bind/accept errors,
/// unwritable output stream).
inline constexpr int kTransportError = 4;

/// Runs one NDJSON conversation on `in`/`out` (sessions live for the
/// conversation; `engine` provides store and jobs).  Returns true when
/// the client requested shutdown, false on plain EOF.
bool serve_stream(Engine& engine, std::istream& in, std::ostream& out);

/// Binds a listening TCP socket on 127.0.0.1:`port` (0 picks an
/// ephemeral port, reported via `bound_port`).  Returns the listener fd.
Expected<int> bind_serve_socket(int port, int& bound_port);

/// Accepts and serves connections one at a time until a client requests
/// shutdown; closes the listener.  Returns 0 or kTransportError.
int serve_listener(Engine& engine, int listener_fd, std::ostream& err);

/// The `wharf serve` subcommand: `listen_port` < 0 means stdio mode.
int cmd_serve(int jobs, std::size_t cache_bytes, int listen_port, std::istream& in,
              std::ostream& out, std::ostream& err);

}  // namespace wharf::cli

#endif  // WHARF_CLI_SERVE_HPP
