#include "cli/serve.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <istream>
#include <list>
#include <map>
#include <ostream>
#include <string>
#include <thread>
#include <utility>

#include "engine/session.hpp"
#include "io/system_format.hpp"
#include "io/wire.hpp"
#include "util/mutex.hpp"
#include "util/strings.hpp"
#include "util/thread_annotations.hpp"

namespace wharf::cli {

namespace {

// ---------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------

/// The per-conversation state: named sessions over the engine's shared
/// store.  One conversation belongs to one connection thread — sessions
/// are never shared across connections; the ArtifactStore underneath is.
struct Conversation {
  Engine* engine = nullptr;
  const ServeTelemetry* server = nullptr;
  std::map<std::string, Session> sessions;
};

/// Resolves the session a request addresses, or nullptr (the caller
/// answers not-found).
Session* find_session(Conversation& conversation, const std::string& name) {
  const auto it = conversation.sessions.find(name);
  return it == conversation.sessions.end() ? nullptr : &it->second;
}

void write_session_stats(io::JsonWriter& w, const SessionStats& stats) {
  w.key("revision");
  w.value(static_cast<long long>(stats.revision));
  w.key("deltas_applied");
  w.value(stats.deltas_applied);
  w.key("queries_served");
  w.value(stats.queries_served);
  w.key("store");
  w.begin_object();
  w.key("hits");
  w.value(static_cast<long long>(stats.hits()));
  w.key("misses");
  w.value(static_cast<long long>(stats.misses()));
  w.key("shared");
  w.value(static_cast<long long>(stats.shared()));
  w.key("stages");
  w.begin_object();
  for (std::size_t s = 0; s < kArtifactStageCount; ++s) {
    w.key(to_string(static_cast<ArtifactStage>(static_cast<int>(s))));
    w.begin_object();
    w.key("lookups");
    w.value(static_cast<long long>(stats.stages[s].lookups));
    w.key("hits");
    w.value(static_cast<long long>(stats.stages[s].hits));
    w.key("misses");
    w.value(static_cast<long long>(stats.stages[s].misses));
    w.key("shared");
    w.value(static_cast<long long>(stats.stages[s].shared));
    w.end_object();
  }
  w.end_object();
  w.end_object();
  w.key("slices");
  w.begin_object();
  w.key("hits");
  w.value(static_cast<long long>(stats.slices.hits));
  w.key("misses");
  w.value(static_cast<long long>(stats.slices.misses));
  w.end_object();
}

std::string handle_open(Conversation& conversation, const io::WireRequest& request) {
  if (find_session(conversation, request.session) != nullptr) {
    return io::wire_response(
        request,
        Status::invalid_argument(util::cat("session '", request.session, "' is already open")));
  }
  const Expected<System> system = capture([&] { return io::parse_system(request.system_text); });
  if (!system) return io::wire_response(request, system.status());

  Session session = conversation.engine->open_session(system.value(), request.options);
  const int chains = session.system().size();
  const int tasks = session.system().task_count();
  conversation.sessions.emplace(request.session, std::move(session));
  return io::wire_response(request, Status::ok(), [&](io::JsonWriter& w) {
    w.key("system");
    w.value(system.value().name());
    w.key("chains");
    w.value(chains);
    w.key("tasks");
    w.value(tasks);
    w.key("revision");
    w.value(0);
  });
}

std::string handle_apply(Conversation& conversation, const io::WireRequest& request) {
  Session* session = find_session(conversation, request.session);
  if (session == nullptr) {
    return io::wire_response(
        request, Status::not_found(util::cat("unknown session '", request.session, "'")));
  }
  const Status applied = session->apply(request.deltas);
  if (!applied.is_ok()) return io::wire_response(request, applied);
  return io::wire_response(request, Status::ok(), [&](io::JsonWriter& w) {
    w.key("revision");
    w.value(static_cast<long long>(session->revision()));
    w.key("deltas_applied");
    w.value(static_cast<long long>(request.deltas.size()));
  });
}

std::string handle_query(Conversation& conversation, const io::WireRequest& request) {
  Session* session = find_session(conversation, request.session);
  if (session == nullptr) {
    return io::wire_response(
        request, Status::not_found(util::cat("unknown session '", request.session, "'")));
  }
  const AnalysisReport report = session->serve(request.queries);
  return io::wire_response(request, Status::ok(), [&](io::JsonWriter& w) {
    w.key("revision");
    w.value(static_cast<long long>(session->revision()));
    // The exact report schema of `wharf analyze --json` (per-query
    // status entries included — a failing query is a structured result,
    // not a stream error).
    w.key("report");
    w.raw(to_json(report));
  });
}

std::string handle_diagnostics(Conversation& conversation, const io::WireRequest& request) {
  Session* session = find_session(conversation, request.session);
  if (session == nullptr) {
    return io::wire_response(
        request, Status::not_found(util::cat("unknown session '", request.session, "'")));
  }
  const SessionStats stats = session->stats();
  const ArtifactStore::Stats store = conversation.engine->store_stats();
  std::size_t shared_flights = 0;
  for (const ArtifactStore::StageStats& stage : store.stage) {
    shared_flights += stage.flights_shared;
  }
  return io::wire_response(request, Status::ok(), [&](io::JsonWriter& w) {
    write_session_stats(w, stats);
    w.key("engine_store");
    w.begin_object();
    w.key("resident_entries");
    w.value(static_cast<long long>(store.resident_entries));
    w.key("resident_bytes");
    w.value(static_cast<long long>(store.resident_bytes));
    w.key("evictions");
    w.value(static_cast<long long>(store.evictions));
    // Engine-lifetime single-flight joins from any source — batch
    // workers, sibling sessions, other connections (each session's own
    // share is the "shared" counter of its stats above).
    w.key("shared_flights");
    w.value(static_cast<long long>(shared_flights));
    // Startup snapshot-load outcome (both zero without --store-dir or
    // on a genuinely cold start; load_skipped_corrupt > 0 means the
    // snapshot was rejected and the store started cold).
    const Engine::PersistenceStats& persistence = conversation.engine->persistence_stats();
    w.key("persisted_artifacts");
    w.value(static_cast<long long>(persistence.persisted_artifacts));
    w.key("load_skipped_corrupt");
    w.value(static_cast<long long>(persistence.load_skipped_corrupt));
    w.end_object();
    w.key("sessions_open");
    w.value(static_cast<long long>(conversation.sessions.size()));
    if (conversation.server != nullptr) {
      w.key("server");
      w.begin_object();
      w.key("connections_active");
      w.value(conversation.server->connections_active.load(std::memory_order_relaxed));
      w.key("connections_served");
      w.value(conversation.server->connections_served.load(std::memory_order_relaxed));
      w.end_object();
    }
  });
}

std::string handle_close(Conversation& conversation, const io::WireRequest& request) {
  const auto it = conversation.sessions.find(request.session);
  if (it == conversation.sessions.end()) {
    return io::wire_response(
        request, Status::not_found(util::cat("unknown session '", request.session, "'")));
  }
  const SessionStats stats = it->second.stats();
  conversation.sessions.erase(it);
  return io::wire_response(request, Status::ok(), [&](io::JsonWriter& w) {
    w.key("revision");
    w.value(static_cast<long long>(stats.revision));
    w.key("queries_served");
    w.value(stats.queries_served);
  });
}

/// Dispatches one parsed request; sets `shutdown` for the shutdown kind.
std::string handle_request(Conversation& conversation, const io::WireRequest& request,
                           bool& shutdown) {
  switch (request.kind) {
    case io::WireKind::kOpenSession: return handle_open(conversation, request);
    case io::WireKind::kApplyDelta: return handle_apply(conversation, request);
    case io::WireKind::kQuery: return handle_query(conversation, request);
    case io::WireKind::kDiagnostics: return handle_diagnostics(conversation, request);
    case io::WireKind::kClose: return handle_close(conversation, request);
    case io::WireKind::kShutdown:
      shutdown = true;
      return io::wire_response(request, Status::ok());
  }
  return io::wire_protocol_error(Status::internal("unhandled request kind"));
}

// ---------------------------------------------------------------------
// Connection pool
// ---------------------------------------------------------------------

/// Shared state of one listener: the shutdown latch and the bounded
/// connection-slot accounting the accept loop blocks on.
struct ListenerState {
  std::atomic<bool> shutdown{false};
  util::Mutex mutex;
  util::CondVar slot_cv;
  int active WHARF_GUARDED_BY(mutex) = 0;  ///< live connections (the cv predicate)
};

/// One accepted connection: its serving thread plus a done flag the
/// accept loop uses to reap finished threads without blocking.
struct Connection {
  std::thread thread;
  std::atomic<bool> done{false};
};

/// Joins and erases every finished connection (keeps the pool list
/// bounded by the number of *live* connections on long-running servers).
void reap_finished(std::list<Connection>& connections) {
  for (auto it = connections.begin(); it != connections.end();) {
    if (it->done.load(std::memory_order_acquire)) {
      it->thread.join();
      it = connections.erase(it);
    } else {
      ++it;
    }
  }
}

int default_max_connections() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<int>(hw);
}

}  // namespace

// ---------------------------------------------------------------------
// Public surface
// ---------------------------------------------------------------------

bool serve_stream(Engine& engine, std::istream& in, std::ostream& out,
                  const ServeTelemetry* server) {
  Conversation conversation;
  conversation.engine = &engine;
  conversation.server = server;
  io::FramedWriter writer(out);

  std::string line;
  bool shutdown = false;
  while (!shutdown && std::getline(in, line)) {
    if (line.empty() || line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const Expected<io::WireRequest> request = io::parse_request(line);
    std::string response;
    if (!request) {
      // A malformed line is a per-request error: answer it and keep the
      // stream alive (the framing is by line, so we are still in sync).
      response = io::wire_protocol_error(request.status());
    } else {
      response = handle_request(conversation, request.value(), shutdown);
    }
    if (!writer.write_line(response)) {
      // The client is gone (or the pipe broke): a transport failure of
      // *this* conversation only — never a process exit.  A shutdown
      // request was accepted the moment it parsed, though: it still
      // stops the server even when its acknowledgment was unwritable.
      return shutdown;
    }
  }
  return shutdown;
}

Expected<int> bind_serve_socket(int port, int& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::internal(util::cat("socket(): ", util::errno_message(errno)));

  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const Status status =
        Status::internal(util::cat("bind(127.0.0.1:", port, "): ", util::errno_message(errno)));
    ::close(fd);
    return status;
  }
  // The backlog queues clients beyond --max-connections instead of
  // refusing them; SOMAXCONN lets the kernel cap it.
  if (::listen(fd, SOMAXCONN) != 0) {
    const Status status = Status::internal(util::cat("listen(): ", util::errno_message(errno)));
    ::close(fd);
    return status;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port = static_cast<int>(ntohs(bound.sin_port));
  } else {
    bound_port = port;
  }
  return fd;
}

int serve_listener(Engine& engine, int listener_fd, int max_connections, std::ostream& err) {
  if (max_connections <= 0) max_connections = default_max_connections();

  ListenerState state;
  ServeTelemetry telemetry;
  std::list<Connection> connections;
  int result = 0;

  while (true) {
    {
      // Bound the pool: accept only when a connection slot is free (a
      // queued client waits in the listen backlog, never dropped).
      const util::MutexLock lock(state.mutex);
      while (state.active >= max_connections &&
             !state.shutdown.load(std::memory_order_acquire)) {
        state.slot_cv.wait(state.mutex);
      }
    }
    if (state.shutdown.load(std::memory_order_acquire)) break;
    reap_finished(connections);

    const int client = ::accept(listener_fd, nullptr, nullptr);
    if (client < 0) {
      if (state.shutdown.load(std::memory_order_acquire)) break;  // woken by shutdown
      if (errno == EINTR || errno == ECONNABORTED) continue;
      err << "serve: accept(): " << util::errno_message(errno) << "\n";
      result = kTransportError;
      break;
    }
    if (state.shutdown.load(std::memory_order_acquire)) {
      // Shutdown raced the accept: stop accepting, drop the newcomer.
      ::close(client);
      break;
    }

    {
      const util::MutexLock lock(state.mutex);
      ++state.active;
    }
    telemetry.connections_served.fetch_add(1, std::memory_order_relaxed);
    telemetry.connections_active.fetch_add(1, std::memory_order_relaxed);

    connections.emplace_back();
    Connection& connection = connections.back();
    connection.thread = std::thread([&engine, &state, &telemetry, &connection, client,
                                     listener_fd] {
      {
        io::FdStreambuf buffer(client);
        std::istream in(&buffer);
        std::ostream out(&buffer);
        if (serve_stream(engine, in, out, &telemetry)) {
          // This client asked for shutdown: latch it and kick the
          // accept loop awake (the listener stops accepting; sibling
          // connections drain at their own pace).
          state.shutdown.store(true, std::memory_order_release);
          ::shutdown(listener_fd, SHUT_RDWR);
        }
      }
      telemetry.connections_active.fetch_sub(1, std::memory_order_relaxed);
      {
        const util::MutexLock lock(state.mutex);
        --state.active;
      }
      connection.done.store(true, std::memory_order_release);
      state.slot_cv.notify_all();
    });
  }

  // Drain: every live connection keeps being served until its client
  // disconnects or asks for shutdown; only then does the process exit.
  for (Connection& connection : connections) {
    if (connection.thread.joinable()) connection.thread.join();
  }
  ::close(listener_fd);
  return result;
}

namespace {

/// Graceful-exit spill: persists the engine's store to --store-dir (a
/// no-op without one).  Failures are reported on `err` but never change
/// the exit code — persistence is an optimization, not a correctness
/// requirement of the serve contract.
void spill_store(Engine& engine, std::ostream& err) {
  const StoreSaveResult saved = engine.persist();
  if (!saved.status.is_ok()) {
    err << "serve: snapshot save failed: " << saved.status.message() << "\n";
  }
}

}  // namespace

int cmd_serve(int jobs, std::size_t cache_bytes, const std::string& store_dir, int listen_port,
              int max_connections, std::istream& in, std::ostream& out, std::ostream& err) {
  Engine engine{EngineOptions{jobs, cache_bytes, store_dir}};
  if (listen_port < 0) {
    // stdio mode is one implicit connection; diagnostics still report
    // the server object so the response shape matches TCP mode.
    ServeTelemetry telemetry;
    telemetry.connections_served.store(1, std::memory_order_relaxed);
    telemetry.connections_active.store(1, std::memory_order_relaxed);
    serve_stream(engine, in, out, &telemetry);
    // Both graceful endings — clean EOF and a shutdown wire request —
    // pass through here; only a broken output stream skips the spill's
    // "graceful" label, and even then the save itself is still safe.
    spill_store(engine, err);
    if (out.fail()) {
      err << "serve: output stream failed\n";
      return kTransportError;
    }
    return 0;
  }

  int bound_port = listen_port;
  const Expected<int> listener = bind_serve_socket(listen_port, bound_port);
  if (!listener) {
    err << "serve: " << listener.status().message() << "\n";
    return kTransportError;
  }
  err << "serve: listening on 127.0.0.1:" << bound_port << "\n";
  err.flush();
  const int result = serve_listener(engine, listener.value(), max_connections, err);
  // serve_listener returns only after every connection drained, so the
  // spill sees the final store state (shutdown requests included).
  spill_store(engine, err);
  return result;
}

}  // namespace wharf::cli
