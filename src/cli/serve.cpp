#include "cli/serve.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <istream>
#include <map>
#include <ostream>
#include <streambuf>
#include <string>
#include <utility>

#include "engine/session.hpp"
#include "io/system_format.hpp"
#include "io/wire.hpp"
#include "util/strings.hpp"

namespace wharf::cli {

namespace {

// ---------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------

/// The per-conversation state: named sessions over the engine's shared
/// store.
struct Conversation {
  Engine* engine = nullptr;
  std::map<std::string, Session> sessions;
};

/// Resolves the session a request addresses, or nullptr (the caller
/// answers not-found).
Session* find_session(Conversation& conversation, const std::string& name) {
  const auto it = conversation.sessions.find(name);
  return it == conversation.sessions.end() ? nullptr : &it->second;
}

void write_session_stats(io::JsonWriter& w, const SessionStats& stats) {
  w.key("revision");
  w.value(static_cast<long long>(stats.revision));
  w.key("deltas_applied");
  w.value(stats.deltas_applied);
  w.key("queries_served");
  w.value(stats.queries_served);
  w.key("store");
  w.begin_object();
  w.key("hits");
  w.value(static_cast<long long>(stats.hits()));
  w.key("misses");
  w.value(static_cast<long long>(stats.misses()));
  w.key("shared");
  w.value(static_cast<long long>(stats.shared()));
  w.key("stages");
  w.begin_object();
  for (std::size_t s = 0; s < kArtifactStageCount; ++s) {
    w.key(to_string(static_cast<ArtifactStage>(static_cast<int>(s))));
    w.begin_object();
    w.key("lookups");
    w.value(static_cast<long long>(stats.stages[s].lookups));
    w.key("hits");
    w.value(static_cast<long long>(stats.stages[s].hits));
    w.key("misses");
    w.value(static_cast<long long>(stats.stages[s].misses));
    w.key("shared");
    w.value(static_cast<long long>(stats.stages[s].shared));
    w.end_object();
  }
  w.end_object();
  w.end_object();
  w.key("slices");
  w.begin_object();
  w.key("hits");
  w.value(static_cast<long long>(stats.slices.hits));
  w.key("misses");
  w.value(static_cast<long long>(stats.slices.misses));
  w.end_object();
}

std::string handle_open(Conversation& conversation, const io::WireRequest& request) {
  if (find_session(conversation, request.session) != nullptr) {
    return io::wire_response(
        request,
        Status::invalid_argument(util::cat("session '", request.session, "' is already open")));
  }
  const Expected<System> system = capture([&] { return io::parse_system(request.system_text); });
  if (!system) return io::wire_response(request, system.status());

  Session session = conversation.engine->open_session(system.value());
  const int chains = session.system().size();
  const int tasks = session.system().task_count();
  conversation.sessions.emplace(request.session, std::move(session));
  return io::wire_response(request, Status::ok(), [&](io::JsonWriter& w) {
    w.key("system");
    w.value(system.value().name());
    w.key("chains");
    w.value(chains);
    w.key("tasks");
    w.value(tasks);
    w.key("revision");
    w.value(0);
  });
}

std::string handle_apply(Conversation& conversation, const io::WireRequest& request) {
  Session* session = find_session(conversation, request.session);
  if (session == nullptr) {
    return io::wire_response(
        request, Status::not_found(util::cat("unknown session '", request.session, "'")));
  }
  const Status applied = session->apply(request.deltas);
  if (!applied.is_ok()) return io::wire_response(request, applied);
  return io::wire_response(request, Status::ok(), [&](io::JsonWriter& w) {
    w.key("revision");
    w.value(static_cast<long long>(session->revision()));
    w.key("deltas_applied");
    w.value(static_cast<long long>(request.deltas.size()));
  });
}

std::string handle_query(Conversation& conversation, const io::WireRequest& request) {
  Session* session = find_session(conversation, request.session);
  if (session == nullptr) {
    return io::wire_response(
        request, Status::not_found(util::cat("unknown session '", request.session, "'")));
  }
  const AnalysisReport report = session->serve(request.queries);
  return io::wire_response(request, Status::ok(), [&](io::JsonWriter& w) {
    w.key("revision");
    w.value(static_cast<long long>(session->revision()));
    // The exact report schema of `wharf analyze --json` (per-query
    // status entries included — a failing query is a structured result,
    // not a stream error).
    w.key("report");
    w.raw(to_json(report));
  });
}

std::string handle_diagnostics(Conversation& conversation, const io::WireRequest& request) {
  Session* session = find_session(conversation, request.session);
  if (session == nullptr) {
    return io::wire_response(
        request, Status::not_found(util::cat("unknown session '", request.session, "'")));
  }
  const SessionStats stats = session->stats();
  const ArtifactStore::Stats store = conversation.engine->store_stats();
  return io::wire_response(request, Status::ok(), [&](io::JsonWriter& w) {
    write_session_stats(w, stats);
    w.key("engine_store");
    w.begin_object();
    w.key("resident_entries");
    w.value(static_cast<long long>(store.resident_entries));
    w.key("resident_bytes");
    w.value(static_cast<long long>(store.resident_bytes));
    w.key("evictions");
    w.value(static_cast<long long>(store.evictions));
    w.end_object();
    w.key("sessions_open");
    w.value(static_cast<long long>(conversation.sessions.size()));
  });
}

std::string handle_close(Conversation& conversation, const io::WireRequest& request) {
  const auto it = conversation.sessions.find(request.session);
  if (it == conversation.sessions.end()) {
    return io::wire_response(
        request, Status::not_found(util::cat("unknown session '", request.session, "'")));
  }
  const SessionStats stats = it->second.stats();
  conversation.sessions.erase(it);
  return io::wire_response(request, Status::ok(), [&](io::JsonWriter& w) {
    w.key("revision");
    w.value(static_cast<long long>(stats.revision));
    w.key("queries_served");
    w.value(stats.queries_served);
  });
}

/// Dispatches one parsed request; sets `shutdown` for the shutdown kind.
std::string handle_request(Conversation& conversation, const io::WireRequest& request,
                           bool& shutdown) {
  switch (request.kind) {
    case io::WireKind::kOpenSession: return handle_open(conversation, request);
    case io::WireKind::kApplyDelta: return handle_apply(conversation, request);
    case io::WireKind::kQuery: return handle_query(conversation, request);
    case io::WireKind::kDiagnostics: return handle_diagnostics(conversation, request);
    case io::WireKind::kClose: return handle_close(conversation, request);
    case io::WireKind::kShutdown:
      shutdown = true;
      return io::wire_response(request, Status::ok());
  }
  return io::wire_protocol_error(Status::internal("unhandled request kind"));
}

// ---------------------------------------------------------------------
// TCP plumbing
// ---------------------------------------------------------------------

/// A minimal bidirectional streambuf over a connected socket fd (owned:
/// closed on destruction).
class FdStreambuf final : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) {
    setg(in_, in_, in_);
    setp(out_, out_ + sizeof out_);
  }

  ~FdStreambuf() override {
    sync();
    ::close(fd_);
  }

  FdStreambuf(const FdStreambuf&) = delete;
  FdStreambuf& operator=(const FdStreambuf&) = delete;

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    const ssize_t n = ::read(fd_, in_, sizeof in_);
    if (n <= 0) return traits_type::eof();
    setg(in_, in_, in_ + n);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type ch) override {
    if (flush_out() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return flush_out(); }

 private:
  int flush_out() {
    const char* p = pbase();
    while (p < pptr()) {
      const ssize_t n = ::write(fd_, p, static_cast<std::size_t>(pptr() - p));
      if (n <= 0) return -1;
      p += n;
    }
    setp(out_, out_ + sizeof out_);
    return 0;
  }

  int fd_;
  char in_[4096];
  char out_[4096];
};

}  // namespace

// ---------------------------------------------------------------------
// Public surface
// ---------------------------------------------------------------------

bool serve_stream(Engine& engine, std::istream& in, std::ostream& out) {
  Conversation conversation;
  conversation.engine = &engine;

  std::string line;
  bool shutdown = false;
  while (!shutdown && std::getline(in, line)) {
    if (line.empty() || line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const Expected<io::WireRequest> request = io::parse_request(line);
    std::string response;
    if (!request) {
      // A malformed line is a per-request error: answer it and keep the
      // stream alive (the framing is by line, so we are still in sync).
      response = io::wire_protocol_error(request.status());
    } else {
      response = handle_request(conversation, request.value(), shutdown);
    }
    out << response << '\n';
    out.flush();
  }
  return shutdown;
}

Expected<int> bind_serve_socket(int port, int& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::internal(util::cat("socket(): ", std::strerror(errno)));

  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const Status status =
        Status::internal(util::cat("bind(127.0.0.1:", port, "): ", std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 1) != 0) {
    const Status status = Status::internal(util::cat("listen(): ", std::strerror(errno)));
    ::close(fd);
    return status;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port = static_cast<int>(ntohs(bound.sin_port));
  } else {
    bound_port = port;
  }
  return fd;
}

int serve_listener(Engine& engine, int listener_fd, std::ostream& err) {
  bool shutdown = false;
  while (!shutdown) {
    const int client = ::accept(listener_fd, nullptr, nullptr);
    if (client < 0) {
      err << "serve: accept(): " << std::strerror(errno) << "\n";
      ::close(listener_fd);
      return kTransportError;
    }
    FdStreambuf buffer(client);
    std::istream in(&buffer);
    std::ostream out(&buffer);
    shutdown = serve_stream(engine, in, out);
  }
  ::close(listener_fd);
  return 0;
}

int cmd_serve(int jobs, std::size_t cache_bytes, int listen_port, std::istream& in,
              std::ostream& out, std::ostream& err) {
  Engine engine{EngineOptions{jobs, cache_bytes}};
  if (listen_port < 0) {
    serve_stream(engine, in, out);
    if (out.fail()) {
      err << "serve: output stream failed\n";
      return kTransportError;
    }
    return 0;
  }

  int bound_port = listen_port;
  const Expected<int> listener = bind_serve_socket(listen_port, bound_port);
  if (!listener) {
    err << "serve: " << listener.status().message() << "\n";
    return kTransportError;
  }
  err << "serve: listening on 127.0.0.1:" << bound_port << "\n";
  err.flush();
  return serve_listener(engine, listener.value(), err);
}

}  // namespace wharf::cli
