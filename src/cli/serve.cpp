#include "cli/serve.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <istream>
#include <list>
#include <ostream>
#include <string>
#include <thread>
#include <utility>

#include "io/wire.hpp"
#include "net/server.hpp"
#include "net/service.hpp"
#include "util/mutex.hpp"
#include "util/strings.hpp"
#include "util/thread_annotations.hpp"

namespace wharf::cli {

namespace {

int default_max_connections() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<int>(hw);
}

/// True for whitespace-only request lines (skipped, not answered).
bool blank_line(const std::string& line) {
  return line.empty() || line.find_first_not_of(" \t\r") == std::string::npos;
}

}  // namespace

// ---------------------------------------------------------------------
// Public surface
// ---------------------------------------------------------------------

bool serve_stream(Engine& engine, std::istream& in, std::ostream& out, ServeTelemetry* server) {
  net::Conversation conversation;
  conversation.engine = &engine;
  conversation.server = server;
  io::FramedWriter writer(out);

  std::string line;
  bool shutdown = false;
  while (!shutdown) {
    bool oversized = false;
    if (!io::read_line_bounded(in, line, io::kMaxWireLineBytes, oversized)) break;
    std::string response;
    if (oversized) {
      // An over-bound line is a per-request error like any other: the
      // reader already discarded through the next newline, so the
      // framing is intact and the conversation continues.
      if (server != nullptr) {
        server->oversized_lines.fetch_add(1, std::memory_order_relaxed);
      }
      response = io::oversized_line_error(io::kMaxWireLineBytes);
    } else {
      if (blank_line(line)) continue;
      const Expected<io::WireRequest> request = io::parse_request(line);
      if (!request) {
        // A malformed line is a per-request error: answer it and keep
        // the stream alive (the framing is by line, so we are in sync).
        response = io::wire_protocol_error(request.status());
      } else if (request.value().kind == io::WireKind::kQuery && request.value().stream) {
        // Streaming runs synchronously here — frames come back-to-back
        // through the same writer (and deadlines never expire, since
        // execution starts immediately).
        net::StreamProgress progress;
        const net::Emit emit = [&](const std::string& l) { return writer.write_line(l); };
        (void)net::run_query_stream(conversation, request.value(), progress, emit, {});
        if (server != nullptr) {
          server->requests_served.fetch_add(1, std::memory_order_relaxed);
        }
        if (writer.failed()) return shutdown;
        continue;
      } else {
        response = net::handle_request(conversation, request.value(), shutdown);
        if (server != nullptr) {
          server->requests_served.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    if (!writer.write_line(response)) {
      // The client is gone (or the pipe broke): a transport failure of
      // *this* conversation only — never a process exit.  A shutdown
      // request was accepted the moment it parsed, though: it still
      // stops the server even when its acknowledgment was unwritable.
      return shutdown;
    }
  }
  return shutdown;
}

Expected<int> bind_serve_socket(int port, int& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::internal(util::cat("socket(): ", util::errno_message(errno)));

  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const Status status =
        Status::internal(util::cat("bind(127.0.0.1:", port, "): ", util::errno_message(errno)));
    ::close(fd);
    return status;
  }
  // The backlog queues clients beyond the admission budget instead of
  // refusing them; SOMAXCONN lets the kernel cap it.
  if (::listen(fd, SOMAXCONN) != 0) {
    const Status status = Status::internal(util::cat("listen(): ", util::errno_message(errno)));
    ::close(fd);
    return status;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port = static_cast<int>(ntohs(bound.sin_port));
  } else {
    bound_port = port;
  }
  return fd;
}

int serve_listener(Engine& engine, int listener_fd, int max_connections, std::ostream& err) {
  net::AsyncServeOptions options;
  options.max_inflight = max_connections;  // <= 0 resolved inside
  net::AsyncServer server(engine, listener_fd, options, err);
  return server.serve() ? 0 : kTransportError;
}

// ---------------------------------------------------------------------
// Thread-per-connection baseline (bench comparison only)
// ---------------------------------------------------------------------

namespace {

/// Shared state of one threaded listener: the shutdown latch and the
/// bounded connection-slot accounting the accept loop blocks on.
struct ListenerState {
  std::atomic<bool> shutdown{false};
  util::Mutex mutex;
  util::CondVar slot_cv;
  int active WHARF_GUARDED_BY(mutex) = 0;  ///< live connections (the cv predicate)
};

/// One accepted connection: its serving thread plus a done flag the
/// accept loop uses to reap finished threads without blocking.
struct Connection {
  std::thread thread;
  std::atomic<bool> done{false};
};

/// Joins and erases every finished connection (keeps the pool list
/// bounded by the number of *live* connections on long-running servers).
void reap_finished(std::list<Connection>& connections) {
  for (auto it = connections.begin(); it != connections.end();) {
    if (it->done.load(std::memory_order_acquire)) {
      it->thread.join();
      it = connections.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace

int serve_listener_threaded(Engine& engine, int listener_fd, int max_connections,
                            std::ostream& err) {
  if (max_connections <= 0) max_connections = default_max_connections();

  ListenerState state;
  ServeTelemetry telemetry;
  std::list<Connection> connections;
  int result = 0;

  while (true) {
    {
      // Bound the pool: accept only when a connection slot is free (a
      // queued client waits in the listen backlog, never dropped).
      const util::MutexLock lock(state.mutex);
      while (state.active >= max_connections &&
             !state.shutdown.load(std::memory_order_acquire)) {
        state.slot_cv.wait(state.mutex);
      }
    }
    if (state.shutdown.load(std::memory_order_acquire)) break;
    reap_finished(connections);

    const int client = ::accept(listener_fd, nullptr, nullptr);
    if (client < 0) {
      if (state.shutdown.load(std::memory_order_acquire)) break;  // woken by shutdown
      if (errno == EINTR || errno == ECONNABORTED) continue;
      err << "serve: accept(): " << util::errno_message(errno) << "\n";
      result = kTransportError;
      break;
    }
    if (state.shutdown.load(std::memory_order_acquire)) {
      // Shutdown raced the accept: stop accepting, drop the newcomer.
      ::close(client);
      break;
    }

    {
      const util::MutexLock lock(state.mutex);
      ++state.active;
    }
    telemetry.connections_served.fetch_add(1, std::memory_order_relaxed);
    telemetry.connections_active.fetch_add(1, std::memory_order_relaxed);

    connections.emplace_back();
    Connection& connection = connections.back();
    connection.thread = std::thread([&engine, &state, &telemetry, &connection, client,
                                     listener_fd] {
      {
        io::FdStreambuf buffer(client);
        std::istream in(&buffer);
        std::ostream out(&buffer);
        if (serve_stream(engine, in, out, &telemetry)) {
          // This client asked for shutdown: latch it and kick the
          // accept loop awake (the listener stops accepting; sibling
          // connections drain at their own pace).
          state.shutdown.store(true, std::memory_order_release);
          ::shutdown(listener_fd, SHUT_RDWR);
        }
      }
      telemetry.connections_active.fetch_sub(1, std::memory_order_relaxed);
      {
        const util::MutexLock lock(state.mutex);
        --state.active;
      }
      connection.done.store(true, std::memory_order_release);
      state.slot_cv.notify_all();
    });
  }

  // Drain: every live connection keeps being served until its client
  // disconnects or asks for shutdown; only then does the process exit.
  for (Connection& connection : connections) {
    if (connection.thread.joinable()) connection.thread.join();
  }
  ::close(listener_fd);
  return result;
}

namespace {

/// Graceful-exit spill: persists the engine's store to --store-dir (a
/// no-op without one).  Failures are reported on `err` but never change
/// the exit code — persistence is an optimization, not a correctness
/// requirement of the serve contract.
void spill_store(Engine& engine, std::ostream& err) {
  const StoreSaveResult saved = engine.persist();
  if (!saved.status.is_ok()) {
    err << "serve: snapshot save failed: " << saved.status.message() << "\n";
  }
}

}  // namespace

int cmd_serve(int jobs, std::size_t cache_bytes, const std::string& store_dir,
              long long persist_interval_ms, int listen_port, int max_connections,
              std::istream& in, std::ostream& out, std::ostream& err) {
  if (persist_interval_ms < 0) {
    persist_interval_ms = store_dir.empty() ? 0 : kDefaultServePersistIntervalMs;
  }
  Engine engine{EngineOptions{jobs, cache_bytes, store_dir,
                              store_dir.empty() ? 0 : persist_interval_ms}};
  if (listen_port < 0) {
    // stdio mode is one implicit connection; diagnostics still report
    // the server object so the response shape matches TCP mode.
    ServeTelemetry telemetry;
    telemetry.connections_served.store(1, std::memory_order_relaxed);
    telemetry.connections_active.store(1, std::memory_order_relaxed);
    serve_stream(engine, in, out, &telemetry);
    // Both graceful endings — clean EOF and a shutdown wire request —
    // pass through here; only a broken output stream skips the spill's
    // "graceful" label, and even then the save itself is still safe.
    spill_store(engine, err);
    if (out.fail()) {
      err << "serve: output stream failed\n";
      return kTransportError;
    }
    return 0;
  }

  int bound_port = listen_port;
  const Expected<int> listener = bind_serve_socket(listen_port, bound_port);
  if (!listener) {
    err << "serve: " << listener.status().message() << "\n";
    return kTransportError;
  }
  err << "serve: listening on 127.0.0.1:" << bound_port << "\n";
  err.flush();
  const int result = serve_listener(engine, listener.value(), max_connections, err);
  // serve_listener returns only after every connection drained, so the
  // spill sees the final store state (shutdown requests included).
  spill_store(engine, err);
  return result;
}

}  // namespace wharf::cli
