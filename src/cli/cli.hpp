/// \file cli.hpp
/// The `wharf` command-line tool, implemented as a library so the whole
/// surface is unit-testable (the binary in tools/ is a two-line main).
///
/// Subcommands (all analysis commands run on the wharf::Engine facade):
///   analyze  <file> [--k K1,K2,...] [--json] [--jobs N]   latency + DMM report
///   dmm      <file> <chain> [--k K] [--breakpoints KMAX] [--json]
///   simulate <file> [--horizon H] [--seed S] [--extra-gap G] [--gantt W]
///   search   <file> [--k K] [--strategy random|climb] [--budget N] [--seed S]
///   serve    [--jobs N] [--cache-bytes N] [--listen PORT]  NDJSON session server
///   validate <file>                                parse + validate only
///   help
///
/// `<file>` may be `-` to read the system description from stdin.
/// `serve` (cli/serve.hpp) has its own exit-code contract: per-request
/// errors are JSON responses on the stream; only usage (1) and transport
/// (4) failures exit non-zero.

#ifndef WHARF_CLI_CLI_HPP
#define WHARF_CLI_CLI_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace wharf::cli {

/// Runs the CLI on the given arguments (excluding argv[0]).  All I/O
/// goes through the supplied streams.  Returns a process exit code:
/// 0 success, 1 usage error, 2 input/parse error, 3 analysis ran but
/// gave no guarantee (DmmStatus::kNoGuarantee / unbounded latency).
int run(const std::vector<std::string>& args, std::istream& in, std::ostream& out,
        std::ostream& err);

/// Convenience overload for main(): converts argv and the std streams.
int run_main(int argc, char** argv);

}  // namespace wharf::cli

#endif  // WHARF_CLI_CLI_HPP
