#include "gen/random_systems.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/expect.hpp"
#include "util/strings.hpp"

namespace wharf::gen {

std::vector<double> uunifast(int n, double total, std::mt19937_64& rng) {
  WHARF_EXPECT(n >= 1, "uunifast needs n >= 1, got " << n);
  WHARF_EXPECT(total >= 0.0, "uunifast needs total >= 0, got " << total);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::vector<double> out(static_cast<std::size_t>(n));
  double sum = total;
  for (int i = 1; i < n; ++i) {
    const double next = sum * std::pow(uniform(rng), 1.0 / static_cast<double>(n - i));
    out[static_cast<std::size_t>(i - 1)] = sum - next;
    sum = next;
  }
  out[static_cast<std::size_t>(n - 1)] = sum;
  return out;
}

std::vector<Priority> shuffled_priorities(int count, std::mt19937_64& rng) {
  WHARF_EXPECT(count >= 1, "need at least one priority");
  std::vector<Priority> out(static_cast<std::size_t>(count));
  std::iota(out.begin(), out.end(), 1);
  std::shuffle(out.begin(), out.end(), rng);
  return out;
}

System with_random_priorities(const System& system, std::mt19937_64& rng) {
  return system.with_priorities(shuffled_priorities(system.task_count(), rng));
}

namespace {

int uniform_int(std::mt19937_64& rng, int lo, int hi) {
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(rng);
}

/// Splits `total >= parts` into `parts` positive integers, uniformly-ish.
std::vector<Time> random_composition(Time total, int parts, std::mt19937_64& rng) {
  WHARF_ASSERT(total >= parts);
  std::vector<Time> out(static_cast<std::size_t>(parts), 1);
  Time remaining = total - parts;
  // Distribute the remainder with independent uniform picks.
  std::uniform_int_distribution<int> pick(0, parts - 1);
  // Spread in chunks to keep this O(parts) rather than O(total).
  while (remaining > 0) {
    const Time chunk = std::max<Time>(1, remaining / parts);
    out[static_cast<std::size_t>(pick(rng))] += chunk;
    remaining -= chunk;
  }
  return out;
}

}  // namespace

System random_system(const RandomSystemSpec& spec, std::mt19937_64& rng,
                     const std::string& name) {
  WHARF_EXPECT(spec.min_chains >= 1 && spec.max_chains >= spec.min_chains,
               "invalid chain-count range");
  WHARF_EXPECT(spec.min_tasks >= 1 && spec.max_tasks >= spec.min_tasks,
               "invalid task-count range");
  WHARF_EXPECT(!spec.periods.empty(), "need at least one period");
  WHARF_EXPECT(spec.utilization > 0.0 && spec.utilization < 1.0,
               "regular utilization must be in (0, 1), got " << spec.utilization);

  const int regular = uniform_int(rng, spec.min_chains, spec.max_chains);
  const std::vector<double> shares = uunifast(regular, spec.utilization, rng);

  std::vector<Chain::Spec> specs;
  std::uniform_real_distribution<double> uniform01(0.0, 1.0);

  for (int c = 0; c < regular; ++c) {
    Chain::Spec s;
    s.name = util::cat("chain", c);
    s.kind = uniform01(rng) < spec.async_fraction ? ChainKind::kAsynchronous
                                                  : ChainKind::kSynchronous;
    const Time period =
        spec.periods[static_cast<std::size_t>(uniform_int(rng, 0, static_cast<int>(spec.periods.size()) - 1))];
    s.arrival = periodic(period);
    s.deadline = std::max<Time>(1, static_cast<Time>(std::llround(
                                       spec.deadline_factor * static_cast<double>(period))));
    const int tasks = uniform_int(rng, spec.min_tasks, spec.max_tasks);
    const Time budget = std::max<Time>(
        tasks, static_cast<Time>(std::llround(shares[static_cast<std::size_t>(c)] *
                                              static_cast<double>(period))));
    const std::vector<Time> wcets = random_composition(budget, tasks, rng);
    for (int t = 0; t < tasks; ++t) {
      s.tasks.push_back(Task{util::cat("c", c, "t", t), 0, wcets[static_cast<std::size_t>(t)]});
    }
    specs.push_back(std::move(s));
  }

  for (int o = 0; o < spec.overload_chains; ++o) {
    Chain::Spec s;
    s.name = util::cat("overload", o);
    s.kind = ChainKind::kSynchronous;
    s.arrival = sporadic(spec.overload_gap);
    s.overload = true;
    const int tasks = uniform_int(rng, 1, spec.overload_tasks_max);
    for (int t = 0; t < tasks; ++t) {
      s.tasks.push_back(Task{util::cat("o", o, "t", t), 0,
                             static_cast<Time>(uniform_int(
                                 rng, 1, static_cast<int>(spec.overload_wcet_max)))});
    }
    specs.push_back(std::move(s));
  }

  int task_count = 0;
  for (const auto& s : specs) task_count += static_cast<int>(s.tasks.size());
  const std::vector<Priority> priorities = shuffled_priorities(task_count, rng);
  std::size_t next = 0;
  std::vector<Chain> chains;
  chains.reserve(specs.size());
  for (auto& s : specs) {
    for (Task& t : s.tasks) t.priority = priorities[next++];
    chains.emplace_back(std::move(s));
  }
  return System(name, std::move(chains));
}

}  // namespace wharf::gen
