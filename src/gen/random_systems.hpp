/// \file random_systems.hpp
/// Random system generation: priority shuffles (paper Experiment 2) and
/// fully synthetic chain systems for property tests and scalability
/// benchmarks ("derived synthetic test cases" in the paper's abstract).

#ifndef WHARF_GEN_RANDOM_SYSTEMS_HPP
#define WHARF_GEN_RANDOM_SYSTEMS_HPP

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "core/system.hpp"

namespace wharf::gen {

/// UUniFast (Bini & Buttazzo): draws `n` utilizations summing to `total`.
[[nodiscard]] std::vector<double> uunifast(int n, double total, std::mt19937_64& rng);

/// A uniformly random permutation of the priorities 1..count.
[[nodiscard]] std::vector<Priority> shuffled_priorities(int count, std::mt19937_64& rng);

/// Experiment 2 sampler: returns a copy of `system` whose task priorities
/// are a fresh random permutation of 1..task_count (flat task order).
[[nodiscard]] System with_random_priorities(const System& system, std::mt19937_64& rng);

/// Parameters of the synthetic system generator.
struct RandomSystemSpec {
  int min_chains = 2;        ///< regular (non-overload) chains, lower bound
  int max_chains = 4;        ///< regular chains, upper bound
  int min_tasks = 1;         ///< tasks per regular chain, lower bound
  int max_tasks = 5;         ///< tasks per regular chain, upper bound
  double utilization = 0.7;  ///< total utilization of the regular chains
  std::vector<Time> periods = {200, 400, 500, 800, 1000};
  double deadline_factor = 1.0;  ///< D = round(factor * period)
  double async_fraction = 0.0;   ///< probability a regular chain is asynchronous

  int overload_chains = 1;      ///< number of sporadic overload chains
  int overload_tasks_max = 3;   ///< tasks per overload chain, in [1, max]
  Time overload_gap = 20'000;   ///< delta_minus(2) of overload chains
  Time overload_wcet_max = 30;  ///< per-task WCET of overload chains, in [1, max]
};

/// Generates a random system: regular periodic chains with UUniFast
/// utilization split, plus rare sporadic overload chains; priorities are
/// a random permutation of 1..task_count.
[[nodiscard]] System random_system(const RandomSystemSpec& spec, std::mt19937_64& rng,
                                   const std::string& name = "random");

}  // namespace wharf::gen

#endif  // WHARF_GEN_RANDOM_SYSTEMS_HPP
