#include "io/tables.hpp"

#include <algorithm>
#include <sstream>

#include "util/expect.hpp"

namespace wharf::io {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  WHARF_EXPECT(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  WHARF_EXPECT(cells.size() == headers_.size(),
               "row has " << cells.size() << " cells, table has " << headers_.size()
                          << " columns");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream os;
  const auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    os << '\n';
  };

  rule();
  emit(headers_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
  return os.str();
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string TextTable::render_csv() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string render_histogram(const std::vector<std::string>& labels,
                             const std::vector<Count>& counts, int width) {
  WHARF_EXPECT(labels.size() == counts.size(), "labels and counts must have equal size");
  WHARF_EXPECT(width >= 1, "histogram width must be >= 1");
  Count max_count = 1;
  std::size_t label_width = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    max_count = std::max(max_count, counts[i]);
    label_width = std::max(label_width, labels[i].size());
  }
  std::ostringstream os;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const int bar = static_cast<int>((counts[i] * width + max_count - 1) / max_count);
    os << labels[i] << std::string(label_width - labels[i].size(), ' ') << " | "
       << std::string(static_cast<std::size_t>(counts[i] > 0 ? std::max(bar, 1) : 0), '#') << ' '
       << counts[i] << '\n';
  }
  return os.str();
}

}  // namespace wharf::io
