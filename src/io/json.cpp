#include "io/json.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/expect.hpp"

namespace wharf::io {

void JsonWriter::prefix() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) os_ << ',';
    needs_comma_.back() = true;
  }
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::write_string(const std::string& s) { os_ << '"' << json_escape(s) << '"'; }

void JsonWriter::begin_object() {
  prefix();
  os_ << '{';
  needs_comma_.push_back(false);
}

void JsonWriter::end_object() {
  WHARF_ASSERT(!needs_comma_.empty());
  needs_comma_.pop_back();
  os_ << '}';
}

void JsonWriter::begin_array() {
  prefix();
  os_ << '[';
  needs_comma_.push_back(false);
}

void JsonWriter::end_array() {
  WHARF_ASSERT(!needs_comma_.empty());
  needs_comma_.pop_back();
  os_ << ']';
}

void JsonWriter::key(const std::string& k) {
  prefix();
  write_string(k);
  os_ << ':';
  pending_key_ = true;
}

void JsonWriter::value(const std::string& v) {
  prefix();
  write_string(v);
}

void JsonWriter::value(const char* v) { value(std::string(v)); }

void JsonWriter::value(long long v) {
  prefix();
  os_ << v;
}

void JsonWriter::value(double v) {
  prefix();
  if (std::isfinite(v)) {
    os_ << v;
  } else {
    os_ << "null";
  }
}

void JsonWriter::value(bool v) {
  prefix();
  os_ << (v ? "true" : "false");
}

void JsonWriter::null() {
  prefix();
  os_ << "null";
}

void JsonWriter::raw(const std::string& json) {
  prefix();
  os_ << json;
}

std::string to_json(const LatencyResult& result) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("bounded");
  w.value(result.bounded);
  if (!result.bounded) {
    w.key("reason");
    w.value(result.reason);
  } else {
    w.key("K");
    w.value(result.K);
    w.key("wcl");
    w.value(result.wcl);
    w.key("worst_q");
    w.value(result.worst_q);
    w.key("busy_times");
    w.begin_array();
    for (Time b : result.busy_times) w.value(b);
    w.end_array();
    if (result.misses_per_window.has_value()) {
      w.key("misses_per_window");
      w.value(*result.misses_per_window);
      w.key("schedulable");
      w.value(result.schedulable);
    }
  }
  w.end_object();
  return os.str();
}

std::string to_json(const DmmResult& result) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("k");
  w.value(result.k);
  w.key("dmm");
  w.value(result.dmm);
  w.key("status");
  w.value(to_string(result.status));
  if (!result.reason.empty()) {
    w.key("reason");
    w.value(result.reason);
  }
  w.key("wcl");
  w.value(result.wcl);
  w.key("K");
  w.value(result.K);
  w.key("n_b");
  w.value(result.n_b);
  w.key("slack");
  w.value(result.slack);
  w.key("omegas");
  w.begin_array();
  for (Count o : result.omegas) w.value(o);
  w.end_array();
  w.key("unschedulable_combinations");
  w.value(static_cast<std::int64_t>(result.unschedulable_count));
  w.key("packing_optimum");
  w.value(result.packing_optimum);
  w.key("solver_nodes");
  w.value(result.solver_nodes);
  w.end_object();
  return os.str();
}

}  // namespace wharf::io
