#include "io/wire.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <charconv>
#include <cstring>
#include <limits>
#include <sstream>

#include "io/system_format.hpp"
#include "util/expect.hpp"
#include "util/strings.hpp"

namespace wharf::io {

// ---------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------

void LineAssembler::feed(const char* data, std::size_t n) {
  if (!discarding_) {
    buffer_.append(data, n);
    return;
  }
  // Inside an oversized line: only the tail after the next newline may
  // be kept — everything before it belongs to the line being discarded.
  const char* nl = static_cast<const char*>(std::memchr(data, '\n', n));
  if (nl == nullptr) return;  // still discarding; drop the whole chunk
  discarding_ = false;
  buffer_.append(nl + 1, static_cast<std::size_t>(data + n - (nl + 1)));
}

LineAssembler::Result LineAssembler::next(std::string& line) {
  const std::size_t nl = buffer_.find('\n');
  if (nl == std::string::npos) {
    if (buffer_.size() > max_line_) {
      // The line is already over the bound with no end in sight: report
      // it now and discard until its newline eventually arrives.
      buffer_.clear();
      discarding_ = true;
      return Result::kOversized;
    }
    return Result::kNone;
  }
  if (nl > max_line_) {
    buffer_.erase(0, nl + 1);
    return Result::kOversized;
  }
  line.assign(buffer_, 0, nl);
  buffer_.erase(0, nl + 1);
  return Result::kLine;
}

bool read_line_bounded(std::istream& in, std::string& line, std::size_t max_line_bytes,
                       bool& oversized) {
  line.clear();
  oversized = false;
  char c = 0;
  while (in.get(c)) {
    if (c == '\n') return true;
    if (line.size() >= max_line_bytes) {
      // Over the bound: stop storing, eat the rest of the line so the
      // stream stays framed, and report the line as oversized.
      oversized = true;
      line.clear();
      while (in.get(c) && c != '\n') {
      }
      return true;
    }
    line += c;
  }
  return !line.empty();  // EOF: deliver a final unterminated line, if any
}

std::string oversized_line_error(std::size_t max_line_bytes) {
  return wire_protocol_error(Status::invalid_argument(
      util::cat("request line exceeds the ", max_line_bytes, "-byte protocol bound")));
}

FdStreambuf::FdStreambuf(int fd) : fd_(fd) {
  setg(in_, in_, in_);
  setp(out_, out_ + sizeof out_);
}

FdStreambuf::~FdStreambuf() {
  sync();
  ::close(fd_);
}

FdStreambuf::int_type FdStreambuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  const ssize_t n = ::read(fd_, in_, sizeof in_);
  if (n <= 0) return traits_type::eof();
  setg(in_, in_, in_ + n);
  return traits_type::to_int_type(*gptr());
}

FdStreambuf::int_type FdStreambuf::overflow(int_type ch) {
  if (flush_out() != 0) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int FdStreambuf::sync() { return flush_out(); }

int FdStreambuf::flush_out() {
  const char* p = pbase();
  while (p < pptr()) {
    // MSG_NOSIGNAL: a peer that vanished mid-response must fail this
    // connection's stream, not raise SIGPIPE against the whole process.
    const ssize_t n =
        ::send(fd_, p, static_cast<std::size_t>(pptr() - p), MSG_NOSIGNAL);
    if (n <= 0) return -1;
    p += n;
  }
  setp(out_, out_ + sizeof out_);
  return 0;
}

bool FramedWriter::write_line(const std::string& line) {
  const util::MutexLock guard(mutex_);
  if (failed_) return false;
  out_ << line << '\n';
  out_.flush();
  failed_ = out_.fail();
  return !failed_;
}

bool FramedWriter::failed() const {
  const util::MutexLock guard(mutex_);
  return failed_;
}

// ---------------------------------------------------------------------
// JsonValue accessors
// ---------------------------------------------------------------------

bool JsonValue::as_bool() const {
  WHARF_EXPECT(kind_ == Kind::kBool, "expected a JSON boolean");
  return bool_;
}

long long JsonValue::as_int() const {
  WHARF_EXPECT(kind_ == Kind::kNumber && integral_, "expected a JSON integer");
  return int_;
}

double JsonValue::as_double() const {
  WHARF_EXPECT(kind_ == Kind::kNumber, "expected a JSON number");
  return integral_ ? static_cast<double>(int_) : double_;
}

const std::string& JsonValue::as_string() const {
  WHARF_EXPECT(kind_ == Kind::kString, "expected a JSON string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  WHARF_EXPECT(kind_ == Kind::kArray, "expected a JSON array");
  return items_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  WHARF_EXPECT(kind_ == Kind::kObject, "expected a JSON object");
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* found = find(key);
  WHARF_EXPECT(found != nullptr, "missing required field '" << key << "'");
  return *found;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  WHARF_EXPECT(kind_ == Kind::kObject, "expected a JSON object");
  return members_;
}

// ---------------------------------------------------------------------
// JSON parsing (recursive descent; protocol documents are one line)
// ---------------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message + " (at offset " + std::to_string(pos_) + ")", 1);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kBool;
        if (consume_literal("true")) {
          v.bool_ = true;
        } else if (consume_literal("false")) {
          v.bool_ = false;
        } else {
          fail("malformed literal");
        }
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("malformed literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("malformed \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (the protocol is ASCII in
            // practice; surrogate pairs are out of scope).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);

    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    if (token.find_first_of(".eE") == std::string::npos) {
      long long parsed = 0;
      const auto [end, ec] = std::from_chars(token.data(), token.data() + token.size(), parsed);
      if (ec != std::errc() || end != token.data() + token.size()) fail("malformed integer");
      v.integral_ = true;
      v.int_ = parsed;
    } else {
      // from_chars, not stod: the whole token must parse ("1.2.3" is a
      // protocol error, not 1.2).
      double parsed = 0;
      const auto [end, ec] = std::from_chars(token.data(), token.data() + token.size(), parsed);
      if (ec != std::errc() || end != token.data() + token.size()) fail("malformed number");
      v.double_ = parsed;
    }
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items_.push_back(parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']'");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      if (peek() != '"') fail("expected a string key");
      std::string key = parse_string();
      expect(':');
      v.members_.emplace_back(std::move(key), parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue parse_json(const std::string& text) { return JsonParser(text).parse(); }

// ---------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------

const char* to_string(WireKind kind) {
  switch (kind) {
    case WireKind::kOpenSession: return "open_session";
    case WireKind::kApplyDelta: return "apply_delta";
    case WireKind::kQuery: return "query";
    case WireKind::kEvaluate: return "evaluate";
    case WireKind::kDiagnostics: return "diagnostics";
    case WireKind::kClose: return "close";
    case WireKind::kShutdown: return "shutdown";
  }
  return "unknown";
}

namespace {

std::vector<Count> parse_count_array(const JsonValue& value, const char* what) {
  std::vector<Count> out;
  for (const JsonValue& item : value.items()) {
    const long long v = item.as_int();
    WHARF_EXPECT(v >= 1, what << " values must be >= 1, got " << v);
    out.push_back(v);
  }
  return out;
}

std::vector<std::string> parse_string_array(const JsonValue& value) {
  std::vector<std::string> out;
  for (const JsonValue& item : value.items()) out.push_back(item.as_string());
  return out;
}

Delta parse_delta(const JsonValue& value) {
  const std::string& kind = value.at("kind").as_string();
  if (kind == "set_priority") {
    return SetPriorityDelta{value.at("task").as_string(),
                            static_cast<Priority>(value.at("priority").as_int())};
  }
  if (kind == "set_wcet") {
    return SetWcetDelta{value.at("task").as_string(), value.at("wcet").as_int()};
  }
  if (kind == "set_deadline") {
    SetDeadlineDelta delta;
    delta.chain = value.at("chain").as_string();
    const JsonValue* deadline = value.find("deadline");
    if (deadline != nullptr && !deadline->is_null()) delta.deadline = deadline->as_int();
    return delta;
  }
  if (kind == "set_arrival") {
    return SetArrivalDelta{value.at("chain").as_string(), value.at("arrival").as_string()};
  }
  if (kind == "add_chain") {
    return AddChainDelta{parse_chain(value.at("chain").as_string())};
  }
  if (kind == "remove_chain") {
    return RemoveChainDelta{value.at("chain").as_string()};
  }
  throw InvalidArgument(util::cat("unknown delta kind '", kind, "'"));
}

Query parse_query(const JsonValue& value) {
  const std::string& kind = value.at("kind").as_string();
  if (kind == "latency") {
    LatencyQuery q;
    q.chain = value.at("chain").as_string();
    if (const JsonValue* flag = value.find("without_overload")) {
      q.without_overload = flag->as_bool();
    }
    return q;
  }
  if (kind == "dmm") {
    DmmQuery q;
    q.chain = value.at("chain").as_string();
    if (const JsonValue* ks = value.find("ks")) q.ks = parse_count_array(*ks, "k");
    return q;
  }
  if (kind == "weakly_hard") {
    WeaklyHardQuery q;
    q.chain = value.at("chain").as_string();
    if (const JsonValue* m = value.find("m")) q.m = m->as_int();
    if (const JsonValue* k = value.find("k")) q.k = k->as_int();
    return q;
  }
  if (kind == "simulation") {
    SimulationQuery q;
    if (const JsonValue* horizon = value.find("horizon")) q.horizon = horizon->as_int();
    if (const JsonValue* seed = value.find("seed")) {
      q.seed = static_cast<std::uint64_t>(seed->as_int());
    }
    if (const JsonValue* gap = value.find("extra_gap")) q.extra_gap = gap->as_double();
    if (const JsonValue* check = value.find("check_k")) q.check_k = check->as_int();
    if (const JsonValue* cross = value.find("cross_validate")) {
      q.cross_validate = cross->as_bool();
    }
    return q;
  }
  if (kind == "priority_search") {
    PrioritySearchQuery q;
    if (const JsonValue* strategy = value.find("strategy")) {
      const std::string& name = strategy->as_string();
      if (name == "random") {
        q.strategy = PrioritySearchQuery::Strategy::kRandom;
      } else if (name == "hill" || name == "climb") {
        q.strategy = PrioritySearchQuery::Strategy::kHillClimb;
      } else if (name == "exhaustive") {
        q.strategy = PrioritySearchQuery::Strategy::kExhaustive;
      } else {
        throw InvalidArgument(util::cat("unknown search strategy '", name, "'"));
      }
    }
    if (const JsonValue* k = value.find("k")) q.k = k->as_int();
    if (const JsonValue* budget = value.find("budget")) {
      q.budget = static_cast<int>(budget->as_int());
    }
    if (const JsonValue* restarts = value.find("restarts")) {
      q.restarts = static_cast<int>(restarts->as_int());
    }
    if (const JsonValue* seed = value.find("seed")) {
      q.seed = static_cast<std::uint64_t>(seed->as_int());
    }
    if (const JsonValue* cap = value.find("max_permutations")) {
      q.max_permutations = cap->as_int();
    }
    return q;
  }
  if (kind == "path_latency") {
    return PathLatencyQuery{parse_string_array(value.at("chains"))};
  }
  if (kind == "path_dmm") {
    PathDmmQuery q;
    q.chains = parse_string_array(value.at("chains"));
    q.deadline = value.at("deadline").as_int();
    if (const JsonValue* budgets = value.find("budgets")) {
      for (const JsonValue& b : budgets->items()) q.budgets.push_back(b.as_int());
    }
    if (const JsonValue* ks = value.find("ks")) q.ks = parse_count_array(*ks, "k");
    return q;
  }
  throw InvalidArgument(util::cat("unknown query kind '", kind, "'"));
}

}  // namespace

TwcaOptions parse_twca_options(const JsonValue& value) {
  TwcaOptions options;
  for (const auto& [key, field] : value.members()) {
    if (key == "criterion") {
      const std::string& name = field.as_string();
      if (name == "sufficient_eq5") {
        options.criterion = SchedulabilityCriterion::kSufficientEq5;
      } else if (name == "exact_eq3") {
        options.criterion = SchedulabilityCriterion::kExactEq3;
      } else {
        throw InvalidArgument(util::cat("unknown criterion '", name,
                                        "' (use sufficient_eq5|exact_eq3)"));
      }
    } else if (key == "max_combinations") {
      const long long v = field.as_int();
      WHARF_EXPECT(v >= 1, "max_combinations must be >= 1, got " << v);
      options.max_combinations = static_cast<std::size_t>(v);
    } else if (key == "minimal_only") {
      options.minimal_only = field.as_bool();
    } else if (key == "cap_at_k") {
      options.cap_at_k = field.as_bool();
    } else if (key == "use_dfs_packer") {
      options.use_dfs_packer = field.as_bool();
    } else if (key == "max_busy_windows") {
      const long long v = field.as_int();
      WHARF_EXPECT(v >= 1, "max_busy_windows must be >= 1, got " << v);
      options.analysis.max_busy_windows = v;
    } else if (key == "max_fixed_point_iterations") {
      const long long v = field.as_int();
      WHARF_EXPECT(v >= 1 && v <= std::numeric_limits<int>::max(),
                   "max_fixed_point_iterations must be in [1, 2^31), got " << v);
      options.analysis.max_fixed_point_iterations = static_cast<int>(v);
    } else if (key == "divergence_guard") {
      const long long v = field.as_int();
      WHARF_EXPECT(v >= 1, "divergence_guard must be >= 1, got " << v);
      options.analysis.divergence_guard = v;
    } else if (key == "naive_arbitrary") {
      options.analysis.naive_arbitrary = field.as_bool();
    } else {
      throw InvalidArgument(util::cat("unknown analysis option '", key, "'"));
    }
  }
  return options;
}

void write_twca_options(JsonWriter& w, const TwcaOptions& options) {
  w.begin_object();
  w.key("criterion");
  w.value(options.criterion == SchedulabilityCriterion::kExactEq3 ? "exact_eq3"
                                                                  : "sufficient_eq5");
  w.key("max_combinations");
  w.value(static_cast<long long>(options.max_combinations));
  w.key("minimal_only");
  w.value(options.minimal_only);
  w.key("cap_at_k");
  w.value(options.cap_at_k);
  w.key("use_dfs_packer");
  w.value(options.use_dfs_packer);
  w.key("max_busy_windows");
  w.value(options.analysis.max_busy_windows);
  w.key("max_fixed_point_iterations");
  w.value(options.analysis.max_fixed_point_iterations);
  w.key("divergence_guard");
  w.value(options.analysis.divergence_guard);
  w.key("naive_arbitrary");
  w.value(options.analysis.naive_arbitrary);
  w.end_object();
}

Expected<WireRequest> parse_request(const std::string& line) {
  return capture([&] {
    const JsonValue root = parse_json(line);
    WireRequest request;
    if (const JsonValue* id = root.find("id")) {
      request.id = id->as_int();
      request.has_id = true;
    }
    if (const JsonValue* deadline = root.find("deadline_ms")) {
      const long long v = deadline->as_int();
      WHARF_EXPECT(v >= 1, "deadline_ms must be >= 1, got " << v);
      request.deadline_ms = v;
    }
    const std::string& type = root.at("type").as_string();
    if (type == "open_session") {
      request.kind = WireKind::kOpenSession;
    } else if (type == "apply_delta") {
      request.kind = WireKind::kApplyDelta;
    } else if (type == "query") {
      request.kind = WireKind::kQuery;
    } else if (type == "evaluate") {
      request.kind = WireKind::kEvaluate;
    } else if (type == "diagnostics") {
      request.kind = WireKind::kDiagnostics;
    } else if (type == "close") {
      request.kind = WireKind::kClose;
    } else if (type == "shutdown") {
      request.kind = WireKind::kShutdown;
      return request;
    } else {
      throw InvalidArgument(util::cat("unknown request type '", type, "'"));
    }

    request.session = root.at("session").as_string();
    WHARF_EXPECT(!request.session.empty(), "session name must not be empty");
    switch (request.kind) {
      case WireKind::kOpenSession:
        request.system_text = root.at("system").as_string();
        if (const JsonValue* options = root.find("options")) {
          request.options = parse_twca_options(*options);
        }
        break;
      case WireKind::kApplyDelta:
        for (const JsonValue& d : root.at("deltas").items()) {
          request.deltas.push_back(parse_delta(d));
        }
        break;
      case WireKind::kQuery:
        for (const JsonValue& q : root.at("queries").items()) {
          request.queries.push_back(parse_query(q));
        }
        if (const JsonValue* stream = root.find("stream")) {
          request.stream = stream->as_bool();
        }
        break;
      case WireKind::kEvaluate: {
        const long long unit = root.at("unit").as_int();
        WHARF_EXPECT(unit >= 0, "unit must be >= 0, got " << unit);
        request.unit = static_cast<std::uint64_t>(unit);
        for (const JsonValue& candidate : root.at("candidates").items()) {
          std::vector<Priority> priorities;
          for (const JsonValue& p : candidate.items()) {
            priorities.push_back(static_cast<Priority>(p.as_int()));
          }
          request.candidates.push_back(std::move(priorities));
        }
        WHARF_EXPECT(!request.candidates.empty(), "candidates must not be empty");
        if (const JsonValue* k = root.find("k")) {
          const long long v = k->as_int();
          WHARF_EXPECT(v >= 1, "k must be >= 1, got " << v);
          request.eval_k = static_cast<Count>(v);
        }
        break;
      }
      default: break;
    }
    return request;
  });
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

namespace {

void write_envelope(JsonWriter& w, const WireRequest& request, const Status& status) {
  if (request.has_id) {
    w.key("id");
    w.value(request.id);
  }
  w.key("type");
  w.value(to_string(request.kind));
  if (!request.session.empty()) {
    w.key("session");
    w.value(request.session);
  }
  w.key("status");
  w.value(to_string(status.code()));
  if (!status.message().empty()) {
    w.key("reason");
    w.value(status.message());
  }
}

}  // namespace

std::string wire_response(const WireRequest& request, const Status& status,
                          const std::function<void(JsonWriter&)>& extra) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  write_envelope(w, request, status);
  if (extra) extra(w);
  w.end_object();
  return os.str();
}

std::string wire_protocol_error(const Status& status) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("type");
  w.value("error");
  w.key("status");
  w.value(to_string(status.code()));
  if (!status.message().empty()) {
    w.key("reason");
    w.value(status.message());
  }
  w.end_object();
  return os.str();
}

}  // namespace wharf::io
