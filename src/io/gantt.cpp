#include "io/gantt.hpp"

#include <algorithm>
#include <sstream>

#include "util/expect.hpp"

namespace wharf::io {

std::string render_gantt(const System& system, const std::vector<sim::ExecSlice>& trace,
                         const GanttOptions& options) {
  WHARF_EXPECT(options.ticks_per_char >= 1, "ticks_per_char must be >= 1");
  Time end = options.to;
  if (end == 0) {
    for (const sim::ExecSlice& s : trace) end = std::max(end, s.end);
  }
  const Time begin = options.from;
  WHARF_EXPECT(end >= begin, "gantt window must not be empty");
  const Time span = end - begin;
  const std::size_t columns =
      static_cast<std::size_t>(ceil_div(std::max<Time>(span, 1), options.ticks_per_char));

  // Row per task, labelled "chain.task".
  std::vector<std::string> labels;
  std::vector<std::pair<int, int>> row_of;  // (chain, task) per row
  std::size_t label_width = 0;
  for (int c = 0; c < system.size(); ++c) {
    for (int t = 0; t < system.chain(c).size(); ++t) {
      labels.push_back(system.chain(c).name() + "." + system.chain(c).task(t).name);
      row_of.emplace_back(c, t);
      label_width = std::max(label_width, labels.back().size());
    }
  }
  std::vector<std::string> rows(labels.size(), std::string(columns, '.'));

  for (const sim::ExecSlice& s : trace) {
    const Time lo = std::max(s.begin, begin);
    const Time hi = std::min(s.end, end);
    if (lo >= hi) continue;
    std::size_t row = 0;
    for (std::size_t r = 0; r < row_of.size(); ++r) {
      if (row_of[r].first == s.chain && row_of[r].second == s.task) {
        row = r;
        break;
      }
    }
    const std::size_t c0 = static_cast<std::size_t>((lo - begin) / options.ticks_per_char);
    const std::size_t c1 = static_cast<std::size_t>(
        ceil_div(hi - begin, options.ticks_per_char));
    for (std::size_t c = c0; c < std::max(c1, c0 + 1) && c < columns; ++c) rows[row][c] = '#';
  }

  std::ostringstream os;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    os << labels[r] << std::string(label_width - labels[r].size(), ' ') << " |" << rows[r]
       << "|\n";
  }
  // Time axis with a marker every 10 characters.
  os << std::string(label_width, ' ') << " +";
  for (std::size_t c = 0; c < columns; ++c) os << (c % 10 == 0 ? '+' : '-');
  os << "+\n";
  os << std::string(label_width, ' ') << "  ";
  for (std::size_t c = 0; c < columns; c += 10) {
    const std::string mark = std::to_string(begin + static_cast<Time>(c) * options.ticks_per_char);
    os << mark;
    if (mark.size() < 10 && c + 10 < columns + 1) os << std::string(10 - mark.size(), ' ');
  }
  os << '\n';
  return os.str();
}

}  // namespace wharf::io
