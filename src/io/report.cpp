#include "io/report.hpp"

#include <map>
#include <sstream>

#include "io/tables.hpp"
#include "util/strings.hpp"

namespace wharf::io {

namespace {

/// Prints the system header and overload inventory shared by both
/// report flavours.
void render_system_header(std::ostream& out, const System& system) {
  out << "System '" << system.name() << "': " << system.size() << " chains, "
      << system.task_count() << " tasks, utilization upper bound " << system.utilization()
      << "\n\n";
}

void render_overload_inventory(std::ostream& out, const System& system) {
  if (system.overload_indices().empty()) return;
  out << "\nOverload chains (C_over):\n";
  for (int c : system.overload_indices()) {
    const Chain& chain = system.chain(c);
    out << "  " << chain.name() << ": " << chain.arrival().describe() << ", total WCET "
        << chain.total_wcet() << '\n';
  }
}

/// The data behind one table row.  Null pointers mean "the answer is
/// missing" (a failed or absent query in the Engine flavour) and render
/// as "error" cells; the analyzer flavour always supplies everything it
/// is asked for.
struct ChainRowData {
  const LatencyResult* full = nullptr;
  const LatencyResult* typical = nullptr;
  const std::vector<DmmResult>* curve = nullptr;  ///< required only for weakly-hard chains
};

/// The shared layout: chain | D | WCL | WCL w/o overload | verdict |
/// dmm(k)... — both report flavours must stay visually identical, so
/// the row logic lives exactly once.
std::string render_chain_table(const System& system, const std::vector<Count>& ks,
                               const std::map<int, ChainRowData>& rows) {
  std::vector<std::string> headers = {"chain", "D", "WCL", "WCL w/o overload", "verdict"};
  for (Count k : ks) headers.push_back(util::cat("dmm(", k, ")"));
  TextTable table(std::move(headers));

  const auto wcl_cell = [](const LatencyResult* r) -> std::string {
    if (r == nullptr) return "error";
    return r->bounded ? util::cat(r->wcl) : "unbounded";
  };

  for (int c : system.regular_indices()) {
    const Chain& chain = system.chain(c);
    const ChainRowData& data = rows.at(c);
    std::vector<std::string> row;
    row.push_back(chain.name());
    row.push_back(chain.deadline().has_value() ? util::cat(*chain.deadline()) : "-");
    row.push_back(wcl_cell(data.full));
    row.push_back(wcl_cell(data.typical));

    if (!chain.deadline().has_value()) {
      row.push_back("no deadline");
      for (std::size_t i = 0; i < ks.size(); ++i) row.push_back("-");
    } else if (data.full == nullptr) {
      row.push_back("error");
      for (std::size_t i = 0; i < ks.size(); ++i) row.push_back("error");
    } else if (!data.full->bounded) {
      row.push_back("no guarantee");
      for (Count k : ks) row.push_back(util::cat(k));
    } else if (data.full->schedulable) {
      row.push_back("always meets");
      for (std::size_t i = 0; i < ks.size(); ++i) row.push_back("0");
    } else if (data.curve == nullptr) {
      row.push_back("error");
      for (std::size_t i = 0; i < ks.size(); ++i) row.push_back("error");
    } else {
      row.push_back("weakly hard");
      for (std::size_t i = 0; i < ks.size(); ++i) {
        if (i >= data.curve->size()) {
          row.push_back("-");
          continue;
        }
        const DmmResult& r = (*data.curve)[i];
        row.push_back(r.status == DmmStatus::kNoGuarantee ? util::cat(r.dmm, " (no guar.)")
                                                          : util::cat(r.dmm));
      }
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

}  // namespace

std::string render_system_report(const TwcaAnalyzer& analyzer, std::vector<Count> ks) {
  if (ks.empty()) ks.push_back(10);
  const System& system = analyzer.system();

  // Materialize the dmm curves only where the table shows them
  // (weakly-hard chains); the map keeps the vectors' addresses stable.
  std::map<int, std::vector<DmmResult>> curves;
  std::map<int, ChainRowData> rows;
  for (int c : system.regular_indices()) {
    ChainRowData data;
    data.full = &analyzer.latency(c);
    data.typical = &analyzer.latency_without_overload(c);
    if (system.chain(c).deadline().has_value() && data.full->bounded &&
        !data.full->schedulable) {
      data.curve = &(curves[c] = analyzer.dmm_curve(c, ks));
    }
    rows[c] = data;
  }

  std::ostringstream out;
  render_system_header(out, system);
  out << render_chain_table(system, ks, rows);
  render_overload_inventory(out, system);
  return out.str();
}

std::string render_report(const System& system, const AnalysisReport& report) {
  // Index the answers by (chain, flavour).
  std::map<std::string, const LatencyResult*> full_latency;
  std::map<std::string, const LatencyResult*> typical_latency;
  std::map<std::string, const std::vector<DmmResult>*> dmm;
  bool any_error = false;
  for (const QueryResult& r : report.results) {
    if (!r.ok()) {
      any_error = true;
      continue;
    }
    if (const auto* lat = std::get_if<LatencyAnswer>(&r.answer)) {
      (lat->without_overload ? typical_latency : full_latency)[lat->chain] = &lat->result;
    } else if (const auto* d = std::get_if<DmmAnswer>(&r.answer)) {
      dmm[d->chain] = &d->curve;
    }
  }

  std::vector<Count> ks;
  for (const auto& [name, curve] : dmm) {
    if (!curve->empty()) {
      for (const DmmResult& r : *curve) ks.push_back(r.k);
      break;
    }
  }
  if (ks.empty()) ks.push_back(10);

  std::map<int, ChainRowData> rows;
  for (int c : system.regular_indices()) {
    const std::string& name = system.chain(c).name();
    ChainRowData data;
    if (const auto it = full_latency.find(name); it != full_latency.end()) data.full = it->second;
    if (const auto it = typical_latency.find(name); it != typical_latency.end()) {
      data.typical = it->second;
    }
    if (const auto it = dmm.find(name); it != dmm.end()) data.curve = it->second;
    rows[c] = data;
  }

  std::ostringstream out;
  render_system_header(out, system);
  out << render_chain_table(system, ks, rows);
  render_overload_inventory(out, system);

  const std::string cache_line = render_diagnostics(report.diagnostics);
  if (!cache_line.empty()) out << '\n' << cache_line << '\n';

  const Status status = report.worst_status();
  if (!status.is_ok() || any_error) {
    out << "\nstatus: " << status.to_string() << '\n';
  }
  return out.str();
}

std::string render_diagnostics(const ReportDiagnostics& diagnostics) {
  std::size_t lookups = 0;
  for (const StageDiagnostics& stage : diagnostics.stages) lookups += stage.lookups;

  std::ostringstream out;
  if (lookups > 0) {
    out << "artifact cache:";
    for (std::size_t s = 0; s < kArtifactStageCount; ++s) {
      const StageDiagnostics& stage = diagnostics.stages[s];
      out << ' ' << to_string(static_cast<ArtifactStage>(static_cast<int>(s))) << ' '
          << stage.hits << '/' << stage.lookups;
    }
    out << " (hits/lookups)";
  }
  if (diagnostics.search_evaluations > 0) {
    if (lookups > 0) out << '\n';
    out << "search store: " << diagnostics.search_hits << " hits / "
        << diagnostics.search_misses << " misses / " << diagnostics.search_shared
        << " shared over " << diagnostics.search_evaluations << " evaluations";
  }
  return out.str();
}

}  // namespace wharf::io
