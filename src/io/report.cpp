#include "io/report.hpp"

#include <sstream>

#include "io/tables.hpp"
#include "util/strings.hpp"

namespace wharf::io {

std::string render_system_report(const TwcaAnalyzer& analyzer, std::vector<Count> ks) {
  if (ks.empty()) ks.push_back(10);
  const System& system = analyzer.system();

  std::ostringstream out;
  out << "System '" << system.name() << "': " << system.size() << " chains, "
      << system.task_count() << " tasks, utilization upper bound " << system.utilization()
      << "\n\n";

  std::vector<std::string> headers = {"chain", "D", "WCL", "WCL w/o overload", "verdict"};
  for (Count k : ks) headers.push_back(util::cat("dmm(", k, ")"));
  TextTable table(std::move(headers));

  for (int c : system.regular_indices()) {
    const Chain& chain = system.chain(c);
    std::vector<std::string> row;
    row.push_back(chain.name());
    row.push_back(chain.deadline().has_value() ? util::cat(*chain.deadline()) : "-");

    const LatencyResult& full = analyzer.latency(c);
    const LatencyResult& typical = analyzer.latency_without_overload(c);
    row.push_back(full.bounded ? util::cat(full.wcl) : "unbounded");
    row.push_back(typical.bounded ? util::cat(typical.wcl) : "unbounded");

    if (!chain.deadline().has_value()) {
      row.push_back("no deadline");
      for (std::size_t i = 0; i < ks.size(); ++i) row.push_back("-");
    } else if (!full.bounded) {
      row.push_back("no guarantee");
      for (Count k : ks) row.push_back(util::cat(k));
    } else if (full.schedulable) {
      row.push_back("always meets");
      for (std::size_t i = 0; i < ks.size(); ++i) row.push_back("0");
    } else {
      row.push_back("weakly hard");
      for (Count k : ks) {
        const DmmResult r = analyzer.dmm(c, k);
        row.push_back(r.status == DmmStatus::kNoGuarantee ? util::cat(r.dmm, " (no guar.)")
                                                          : util::cat(r.dmm));
      }
    }
    table.add_row(std::move(row));
  }
  out << table.render();

  if (!system.overload_indices().empty()) {
    out << "\nOverload chains (C_over):\n";
    for (int c : system.overload_indices()) {
      const Chain& chain = system.chain(c);
      out << "  " << chain.name() << ": " << chain.arrival().describe() << ", total WCET "
          << chain.total_wcet() << '\n';
    }
  }
  return out.str();
}

}  // namespace wharf::io
