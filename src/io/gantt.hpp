/// \file gantt.hpp
/// ASCII Gantt rendering of simulator traces (the visual counterpart of
/// the paper's Figure 3, which shows active segments of one chain
/// executing inside busy windows of another).

#ifndef WHARF_IO_GANTT_HPP
#define WHARF_IO_GANTT_HPP

#include <string>
#include <vector>

#include "core/system.hpp"
#include "sim/simulator.hpp"

namespace wharf::io {

/// Gantt rendering knobs.
struct GanttOptions {
  Time from = 0;            ///< first tick shown
  Time to = 0;              ///< one past the last tick shown (0: trace end)
  Time ticks_per_char = 1;  ///< horizontal compression factor
};

/// Renders one row per task (chain order), marking execution with '#',
/// plus a time axis.  Slices outside [from, to) are clipped.
[[nodiscard]] std::string render_gantt(const System& system,
                                       const std::vector<sim::ExecSlice>& trace,
                                       const GanttOptions& options = {});

}  // namespace wharf::io

#endif  // WHARF_IO_GANTT_HPP
