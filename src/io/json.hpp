/// \file json.hpp
/// Minimal streaming JSON writer (no external dependencies) plus
/// converters for the analysis result types.  Used by benchmarks and
/// examples to emit machine-readable results next to the ASCII tables.

#ifndef WHARF_IO_JSON_HPP
#define WHARF_IO_JSON_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/busy_window.hpp"
#include "core/twca.hpp"

namespace wharf::io {

/// Streaming JSON writer with automatic comma placement and string
/// escaping.  Usage:
///   JsonWriter w(os);
///   w.begin_object();
///   w.key("name"); w.value("sigma_c");
///   w.key("values"); w.begin_array(); w.value(1); w.value(2); w.end_array();
///   w.end_object();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(const std::string& k);

  void value(const std::string& v);
  void value(const char* v);
  void value(long long v);
  void value(long v) { value(static_cast<long long>(v)); }
  void value(int v) { value(static_cast<long long>(v)); }
  void value(double v);
  void value(bool v);
  void null();

  /// Splices a pre-serialized JSON fragment in value position (comma
  /// placement still handled).  The caller guarantees well-formedness.
  void raw(const std::string& json);

 private:
  void prefix();
  void write_string(const std::string& s);

  std::ostream& os_;
  /// One frame per open container: true once a first element was emitted.
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

/// Escapes `text` as the body of a JSON string literal (no surrounding
/// quotes) — the exact escaping JsonWriter applies, control characters
/// included.  For hand-framed protocol lines (tests, benches, clients).
[[nodiscard]] std::string json_escape(const std::string& text);

/// Serializes a LatencyResult as a JSON object.
[[nodiscard]] std::string to_json(const LatencyResult& result);

/// Serializes a DmmResult as a JSON object.
[[nodiscard]] std::string to_json(const DmmResult& result);

}  // namespace wharf::io

#endif  // WHARF_IO_JSON_HPP
