/// \file report.hpp
/// Human-readable full-system analysis reports: the one-call overview a
/// downstream user wants after loading a system description.

#ifndef WHARF_IO_REPORT_HPP
#define WHARF_IO_REPORT_HPP

#include <string>
#include <vector>

#include "core/twca.hpp"
#include "engine/engine.hpp"

namespace wharf::io {

/// Renders a complete analysis report: per non-overload chain the
/// latency results (with and without overload), the schedulability
/// verdict, and dmm(k) for each requested horizon; followed by the
/// overload chain inventory.  `ks` defaults to {10} when empty.
[[nodiscard]] std::string render_system_report(const TwcaAnalyzer& analyzer,
                                               std::vector<Count> ks = {});

/// Same layout, but driven by an Engine response (the answers of an
/// AnalysisRequest::standard() run): per-chain latency with/without
/// overload, verdict and dmm columns, plus the overload inventory and a
/// one-line artifact-cache summary (render_diagnostics).
/// Queries that failed render as "error" cells.
[[nodiscard]] std::string render_report(const System& system, const AnalysisReport& report);

/// One-line per-stage artifact-cache summary of a served request, e.g.
/// "artifact cache: interference 0/4 busy_window 0/8 ... (hits/lookups)".
/// Empty when the request resolved no artifacts.
[[nodiscard]] std::string render_diagnostics(const ReportDiagnostics& diagnostics);

}  // namespace wharf::io

#endif  // WHARF_IO_REPORT_HPP
