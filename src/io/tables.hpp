/// \file tables.hpp
/// ASCII tables, histograms and CSV output for the benchmark harness —
/// the pieces that print the same rows/series the paper reports.

#ifndef WHARF_IO_TABLES_HPP
#define WHARF_IO_TABLES_HPP

#include <string>
#include <vector>

#include "util/types.hpp"

namespace wharf::io {

/// Column-aligned ASCII table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends one row; must have as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with aligned columns and +---+ borders.
  [[nodiscard]] std::string render() const;

  /// Renders as CSV (RFC-4180-style quoting of commas/quotes/newlines).
  [[nodiscard]] std::string render_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a histogram as rows "label | ### count" scaled to `width`
/// characters for the largest bucket.  `labels` and `counts` must agree.
[[nodiscard]] std::string render_histogram(const std::vector<std::string>& labels,
                                           const std::vector<Count>& counts, int width = 50);

}  // namespace wharf::io

#endif  // WHARF_IO_TABLES_HPP
