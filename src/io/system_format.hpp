/// \file system_format.hpp
/// Line-oriented textual description of systems: parse and serialize.
///
/// Format (comments with '#', blank lines ignored):
///
///     system date17_case_study
///     chain sigma_d kind=sync activation=periodic(200) deadline=200
///       task tau1_d prio=11 wcet=38
///       task tau2_d prio=10 wcet=6
///     chain sigma_a kind=sync activation=sporadic(700) overload
///       task tau1_a prio=4 wcet=10
///
/// `kind` is `sync` or `async`; `deadline` is optional; the flag
/// `overload` marks members of C_over.  Arrival specs use the syntax of
/// wharf::parse_arrival.  Round-trips with serialize_system().

#ifndef WHARF_IO_SYSTEM_FORMAT_HPP
#define WHARF_IO_SYSTEM_FORMAT_HPP

#include <string>

#include "core/system.hpp"

namespace wharf::io {

/// Parses a system description; throws wharf::ParseError (with a 1-based
/// line number) on malformed input and wharf::InvalidArgument when the
/// described system violates model invariants.
[[nodiscard]] System parse_system(const std::string& text);

/// Serializes to the same format parse_system() accepts.
[[nodiscard]] std::string serialize_system(const System& system);

/// Parses one standalone `chain ...` block (a `chain` line plus its
/// `task` lines, same syntax as inside a system description).  System-
/// level invariants (name/priority uniqueness) are checked when the
/// chain joins a System — wire AddChain deltas parse through this.
[[nodiscard]] Chain parse_chain(const std::string& text);

/// Serializes one chain as the block parse_chain() accepts.
[[nodiscard]] std::string serialize_chain(const Chain& chain);

}  // namespace wharf::io

#endif  // WHARF_IO_SYSTEM_FORMAT_HPP
