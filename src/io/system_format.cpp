#include "io/system_format.hpp"

#include <optional>
#include <sstream>
#include <vector>

#include "util/expect.hpp"
#include "util/strings.hpp"

namespace wharf::io {

namespace {

struct PendingChain {
  Chain::Spec spec;
  int line = 0;
};

[[noreturn]] void fail(int line, const std::string& message) { throw ParseError(message, line); }

/// Splits "key=value"; returns false when there is no '='.
bool split_kv(const std::string& token, std::string& key, std::string& value) {
  const auto eq = token.find('=');
  if (eq == std::string::npos) return false;
  key = token.substr(0, eq);
  value = token.substr(eq + 1);
  return true;
}

Time parse_time_field(const std::string& value, const std::string& key, int line) {
  long long v = 0;
  if (!util::parse_int64(value, v)) {
    fail(line, util::cat("cannot parse integer value '", value, "' for '", key, "'"));
  }
  return static_cast<Time>(v);
}

void finish_chain(std::vector<Chain>& chains, std::optional<PendingChain>& pending) {
  if (!pending.has_value()) return;
  if (pending->spec.tasks.empty()) {
    fail(pending->line, util::cat("chain '", pending->spec.name, "' has no tasks"));
  }
  chains.emplace_back(std::move(pending->spec));
  pending.reset();
}

/// Parses one `chain <name> key=value...` line into a pending spec.
PendingChain parse_chain_header(const std::vector<std::string>& tokens, int line_no) {
  if (tokens.size() < 2) fail(line_no, "expected: chain <name> key=value...");
  PendingChain pc;
  pc.line = line_no;
  pc.spec.name = tokens[1];
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    if (tokens[i] == "overload") {
      pc.spec.overload = true;
      continue;
    }
    std::string key;
    std::string value;
    if (!split_kv(tokens[i], key, value)) {
      fail(line_no, util::cat("unexpected token '", tokens[i], "' (expected key=value)"));
    }
    if (key == "kind") {
      if (value == "sync") {
        pc.spec.kind = ChainKind::kSynchronous;
      } else if (value == "async") {
        pc.spec.kind = ChainKind::kAsynchronous;
      } else {
        fail(line_no, util::cat("kind must be sync|async, got '", value, "'"));
      }
    } else if (key == "activation") {
      try {
        pc.spec.arrival = parse_arrival(value);
      } catch (const InvalidArgument& e) {
        fail(line_no, e.what());
      }
    } else if (key == "deadline") {
      pc.spec.deadline = parse_time_field(value, key, line_no);
    } else {
      fail(line_no, util::cat("unknown chain attribute '", key, "'"));
    }
  }
  if (pc.spec.arrival == nullptr) {
    fail(line_no, util::cat("chain '", pc.spec.name, "' needs activation=..."));
  }
  return pc;
}

/// Parses one `task <name> prio=N wcet=N` line.
Task parse_task_line(const std::vector<std::string>& tokens, int line_no) {
  if (tokens.size() < 2) fail(line_no, "expected: task <name> prio=N wcet=N");
  Task task;
  task.name = tokens[1];
  bool have_prio = false;
  bool have_wcet = false;
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    std::string key;
    std::string value;
    if (!split_kv(tokens[i], key, value)) {
      fail(line_no, util::cat("unexpected token '", tokens[i], "' (expected key=value)"));
    }
    if (key == "prio") {
      task.priority = static_cast<Priority>(parse_time_field(value, key, line_no));
      have_prio = true;
    } else if (key == "wcet") {
      task.wcet = parse_time_field(value, key, line_no);
      have_wcet = true;
    } else {
      fail(line_no, util::cat("unknown task attribute '", key, "'"));
    }
  }
  if (!have_prio || !have_wcet) {
    fail(line_no, util::cat("task '", task.name, "' needs both prio= and wcet="));
  }
  return task;
}

}  // namespace

System parse_system(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;

  std::string system_name;
  std::vector<Chain> chains;
  std::optional<PendingChain> pending;

  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto tokens = util::split_whitespace(line);
    if (tokens.empty()) continue;

    const std::string& head = tokens[0];
    if (head == "system") {
      if (tokens.size() != 2) fail(line_no, "expected: system <name>");
      if (!system_name.empty()) fail(line_no, "duplicate 'system' line");
      system_name = tokens[1];
    } else if (head == "chain") {
      if (system_name.empty()) fail(line_no, "'chain' before 'system'");
      finish_chain(chains, pending);
      pending = parse_chain_header(tokens, line_no);
    } else if (head == "task") {
      if (!pending.has_value()) fail(line_no, "'task' outside of a chain");
      pending->spec.tasks.push_back(parse_task_line(tokens, line_no));
    } else {
      fail(line_no, util::cat("unknown directive '", head, "'"));
    }
  }
  finish_chain(chains, pending);
  if (system_name.empty()) fail(line_no, "missing 'system <name>' line");
  if (chains.empty()) fail(line_no, "system has no chains");
  return System(system_name, std::move(chains));
}

Chain parse_chain(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  std::optional<PendingChain> pending;
  std::vector<Chain> chains;

  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto tokens = util::split_whitespace(line);
    if (tokens.empty()) continue;

    const std::string& head = tokens[0];
    if (head == "chain") {
      if (pending.has_value()) fail(line_no, "expected exactly one chain block");
      pending = parse_chain_header(tokens, line_no);
    } else if (head == "task") {
      if (!pending.has_value()) fail(line_no, "'task' outside of a chain");
      pending->spec.tasks.push_back(parse_task_line(tokens, line_no));
    } else {
      fail(line_no, util::cat("unknown directive '", head, "'"));
    }
  }
  if (!pending.has_value()) fail(line_no, "missing 'chain <name>' line");
  finish_chain(chains, pending);
  return std::move(chains.front());
}

std::string serialize_chain(const Chain& chain) {
  std::ostringstream out;
  out << "chain " << chain.name()
      << " kind=" << (chain.is_synchronous() ? "sync" : "async")
      << " activation=" << chain.arrival().describe();
  if (chain.deadline().has_value()) out << " deadline=" << *chain.deadline();
  if (chain.is_overload()) out << " overload";
  out << '\n';
  for (const Task& task : chain.tasks()) {
    out << "  task " << task.name << " prio=" << task.priority << " wcet=" << task.wcet << '\n';
  }
  return out.str();
}

std::string serialize_system(const System& system) {
  std::ostringstream out;
  out << "# wharf system description\n";
  out << "system " << system.name() << '\n';
  for (const Chain& chain : system.chains()) out << serialize_chain(chain);
  return out.str();
}

}  // namespace wharf::io
