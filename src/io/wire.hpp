/// \file wire.hpp
/// The NDJSON wire protocol of `wharf serve` plus the transport
/// primitives the server is built on.  The *normative* protocol
/// specification — every request/response field, the error envelope,
/// the exit-code contract, concurrency semantics — lives in
/// docs/serve-protocol.md; this header documents the C++ surface.
///
/// Requests (`id` is an optional client correlation token, echoed back;
/// `session` names a session within one connection's conversation):
///
///   {"id":1,"type":"open_session","session":"s","system":"system x\n...",
///    "options":{"cap_at_k":false}}
///   {"id":2,"type":"apply_delta","session":"s","deltas":[{"kind":"set_priority",...}]}
///   {"id":3,"type":"query","session":"s","queries":[{"kind":"latency","chain":"a"}]}
///   {"id":7,"type":"evaluate","session":"s","unit":12,"k":10,
///    "candidates":[[2,1,3],[3,1,2]]}
///   {"id":4,"type":"diagnostics","session":"s"}
///   {"id":5,"type":"close","session":"s"}
///   {"id":6,"type":"shutdown"}
///
/// Every response is one JSON object on one line carrying the echoed
/// id/type/session plus "status" ("ok" or a StatusCode name) and, on
/// error, "reason".  Per-request errors — unknown session, malformed
/// JSON, a failing delta — are *responses on the stream*, never a
/// process exit; only transport failures terminate the server, and in
/// TCP mode a transport failure only terminates the affected connection
/// (see cli/serve.hpp).
///
/// This header also exposes the minimal JSON reader the protocol needs
/// (JsonValue/parse_json) — the writing side reuses io::JsonWriter.

#ifndef WHARF_IO_WIRE_HPP
#define WHARF_IO_WIRE_HPP

#include <cstdint>
#include <functional>
#include <ostream>
#include <streambuf>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "engine/session.hpp"
#include "io/json.hpp"
#include "util/mutex.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"

namespace wharf::io {

// ---------------------------------------------------------------------
// JSON reading
// ---------------------------------------------------------------------

/// A parsed JSON document node.  Numbers keep both integral and double
/// views (the protocol's quantities are integral).  Accessors throw
/// wharf::InvalidArgument on kind mismatches — capture() at the protocol
/// boundary turns that into an error response.  Immutable once parsed;
/// concurrent reads are safe, like any const object.
class JsonValue {
 public:
  /// The JSON node kinds.
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  /// The node's kind tag (object, array, string, ...).
  [[nodiscard]] Kind kind() const { return kind_; }
  /// True for the JSON `null` literal (and default-constructed nodes).
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }

  /// The boolean payload; throws unless kind() is kBool.
  [[nodiscard]] bool as_bool() const;
  /// The integer payload; throws unless the node is an integral number.
  [[nodiscard]] long long as_int() const;
  /// The numeric payload widened to double; throws unless kind() is kNumber.
  [[nodiscard]] double as_double() const;
  /// The string payload; throws unless kind() is kString.
  [[nodiscard]] const std::string& as_string() const;
  /// The array elements; throws unless kind() is kArray.
  [[nodiscard]] const std::vector<JsonValue>& items() const;

  /// Object member by key, or nullptr when absent (objects only).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  /// Object member by key; throws when absent.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  /// All object members in document order; throws unless kind() is kObject.
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members() const;

 private:
  friend JsonValue parse_json(const std::string&);
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  long long int_ = 0;
  double double_ = 0;
  bool integral_ = false;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one JSON document (the whole string must be consumed, modulo
/// whitespace).  Throws wharf::ParseError on malformed input.
[[nodiscard]] JsonValue parse_json(const std::string& text);

// ---------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------

/// Hard bound on one NDJSON request line (bytes, newline excluded).  A
/// longer line is a protocol violation: the server answers with the
/// error envelope and discards bytes until the next newline instead of
/// growing its assembly buffer without limit — the buffer never holds
/// more than this many payload bytes per connection.
inline constexpr std::size_t kMaxWireLineBytes = 1 << 20;

/// Incremental NDJSON line assembly over arbitrary byte chunks — the
/// read-side protocol state machine of the async serve core (and of any
/// non-blocking transport).  feed() appends whatever arrived; next()
/// yields complete lines one at a time, flagging (and swallowing) lines
/// that exceed the byte bound.  Single-caller; memory stays bounded by
/// the line limit regardless of what the peer sends.
class LineAssembler {
 public:
  /// What next() found.
  enum class Result {
    kNone,       ///< no complete line buffered yet
    kLine,       ///< one complete line produced
    kOversized,  ///< a line exceeded the bound; it was discarded
  };

  /// Uses the protocol-wide default bound (kMaxWireLineBytes).
  LineAssembler() = default;
  /// Custom bound (tests shrink it to force the oversized path).
  explicit LineAssembler(std::size_t max_line_bytes) : max_line_(max_line_bytes) {}

  /// Appends `n` raw bytes from the transport.
  void feed(const char* data, std::size_t n);

  /// Extracts the next complete line into `line` (newline stripped; a
  /// trailing '\r' is kept — the parser treats it as whitespace).
  /// kOversized reports one over-bound line exactly once; its bytes to
  /// the next newline are discarded, keeping the stream in sync.
  [[nodiscard]] Result next(std::string& line);

  /// Bytes currently buffered (tests; always <= the bound + one chunk).
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

 private:
  std::string buffer_;
  std::size_t max_line_ = kMaxWireLineBytes;
  bool discarding_ = false;  ///< inside an oversized line, eating to '\n'
};

/// Bounded std::getline for the blocking stdio conversation: reads one
/// '\n'-terminated line of at most `max_line_bytes`, sets `oversized`
/// (and discards to the newline) when the bound is hit.  Returns false
/// at EOF with nothing read — the serve_stream loop condition.
bool read_line_bounded(std::istream& in, std::string& line, std::size_t max_line_bytes,
                       bool& oversized);

/// The error envelope for an over-bound request line (shared wording
/// between the stdio and async transports).
[[nodiscard]] std::string oversized_line_error(std::size_t max_line_bytes);

/// A minimal bidirectional streambuf over a connected socket fd (owned:
/// closed on destruction).  Writes use send(MSG_NOSIGNAL), so a peer
/// that disconnected surfaces as a stream failure on this connection —
/// never as a process-killing SIGPIPE.  Not thread-safe: one connection
/// thread owns its streambuf (see FramedWriter for the write framing).
class FdStreambuf final : public std::streambuf {
 public:
  /// Takes ownership of the connected socket `fd`.
  explicit FdStreambuf(int fd);
  ~FdStreambuf() override;

  FdStreambuf(const FdStreambuf&) = delete;
  FdStreambuf& operator=(const FdStreambuf&) = delete;

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  int flush_out();

  int fd_;
  char in_[4096];
  char out_[4096];
};

/// Thread-safe framed response writer: write_line() emits exactly one
/// `line + '\n'` and flushes, atomically under an internal mutex, so
/// concurrent writers on one stream can never interleave partial lines.
/// A transport failure is sticky and per-writer: write_line() returns
/// false from then on, isolating one dead client from the rest of the
/// process (the caller stops serving that connection; nothing throws).
class FramedWriter {
 public:
  /// Wraps `out`, which must outlive the writer.
  explicit FramedWriter(std::ostream& out) : out_(out) {}

  FramedWriter(const FramedWriter&) = delete;
  FramedWriter& operator=(const FramedWriter&) = delete;

  /// Writes one framed line; returns false once the stream has failed.
  bool write_line(const std::string& line) WHARF_EXCLUDES(mutex_);

  /// True after any write_line() observed a stream failure.
  [[nodiscard]] bool failed() const WHARF_EXCLUDES(mutex_);

 private:
  std::ostream& out_ WHARF_GUARDED_BY(mutex_);
  mutable util::Mutex mutex_;
  bool failed_ WHARF_GUARDED_BY(mutex_) = false;
};

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// The request kinds of the serve protocol, in wire order.
enum class WireKind {
  kOpenSession,
  kApplyDelta,
  kQuery,
  kEvaluate,
  kDiagnostics,
  kClose,
  kShutdown,
};

/// Stable wire name of a request kind ("open_session", ...).
[[nodiscard]] const char* to_string(WireKind kind);

/// One parsed request line.  Field population depends on `kind`; see
/// docs/serve-protocol.md for the per-request field tables.
struct WireRequest {
  WireKind kind = WireKind::kShutdown;
  long long id = 0;             ///< client correlation token (echoed back)
  bool has_id = false;          ///< whether the request carried an "id"
  std::string session;          ///< empty only for shutdown
  std::string system_text;      ///< open_session: text-format system
  TwcaOptions options;          ///< open_session: analysis knobs ("options")
  std::vector<Delta> deltas;    ///< apply_delta
  std::vector<Query> queries;   ///< query
  /// Optional per-request deadline in milliseconds (0 = none).  In the
  /// async server a request still *pending* when its deadline elapses is
  /// answered with a deadline-exceeded envelope and skipped at dequeue;
  /// work that already started always completes.
  long long deadline_ms = 0;
  /// query only: stream each result as its own NDJSON frame followed by
  /// a terminal summary frame (docs/serve-protocol.md, "Streaming
  /// responses") instead of one monolithic report response.
  bool stream = false;
  /// evaluate: the coordinator's shard-unit id, echoed in the response —
  /// the first-result-wins dedup key of the distributed sweep (see
  /// docs/distributed.md).
  std::uint64_t unit = 0;
  /// evaluate: candidate priority assignments to score, one flat
  /// task-order vector per candidate (applied via
  /// System::with_priorities; a wrong-arity or non-permutation candidate
  /// is a per-request error envelope, not a transport failure).
  std::vector<std::vector<Priority>> candidates;
  /// evaluate: the dmm horizon k of the scoring objective.
  Count eval_k = 10;
};

/// Parses one request line.  Errors (malformed JSON, unknown type or
/// kind, missing fields) come back as a Status — the caller answers with
/// an error response and keeps the stream alive.
[[nodiscard]] Expected<WireRequest> parse_request(const std::string& line);

/// Parses an open_session "options" object into TwcaOptions: every
/// field optional, defaults from TwcaOptions{}, unknown keys refused
/// (throws InvalidArgument — the protocol is strict, not lenient).
[[nodiscard]] TwcaOptions parse_twca_options(const JsonValue& value);

/// Writes `options` as the wire "options" object (every field, in the
/// stable order documented in docs/serve-protocol.md).  Round-trips
/// through parse_twca_options exactly.
void write_twca_options(JsonWriter& w, const TwcaOptions& options);

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

/// One response line (no trailing newline): the request's echoed
/// id/type/session, the status (+ reason when non-OK), then whatever
/// `extra` writes into the still-open top-level object (e.g. a spliced
/// report).
[[nodiscard]] std::string wire_response(
    const WireRequest& request, const Status& status,
    const std::function<void(JsonWriter&)>& extra = {});

/// An error response for a line that never parsed into a request (the
/// id, if any, is unknown): {"type":"error","status":...,"reason":...}.
[[nodiscard]] std::string wire_protocol_error(const Status& status);

}  // namespace wharf::io

#endif  // WHARF_IO_WIRE_HPP
