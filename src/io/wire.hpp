/// \file wire.hpp
/// The NDJSON wire protocol of `wharf serve`: a long-lived
/// request/response stream over stdin/stdout (or a TCP socket), one JSON
/// object per line, framed in the existing JSON report schema.
///
/// Requests (`id` is an optional client correlation token, echoed back;
/// `session` names a session within the stream):
///
///   {"id":1,"type":"open_session","session":"s","system":"system x\n..."}
///   {"id":2,"type":"apply_delta","session":"s","deltas":[{"kind":"set_priority",...}]}
///   {"id":3,"type":"query","session":"s","queries":[{"kind":"latency","chain":"a"}]}
///   {"id":4,"type":"diagnostics","session":"s"}
///   {"id":5,"type":"close","session":"s"}
///   {"id":6,"type":"shutdown"}
///
/// Every response is one JSON object on one line carrying the echoed
/// id/type/session plus "status" ("ok" or a StatusCode name) and, on
/// error, "reason".  Query responses embed a full AnalysisReport (the
/// exact wharf::to_json schema of `wharf analyze --json`) under
/// "report".  Per-request errors — unknown session, malformed JSON, a
/// failing delta — are *responses on the stream*, never a process exit;
/// only transport failures terminate the server (see cli/serve.hpp).
///
/// This header also exposes the minimal JSON reader the protocol needs
/// (JsonValue/parse_json) — the writing side reuses io::JsonWriter.

#ifndef WHARF_IO_WIRE_HPP
#define WHARF_IO_WIRE_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "engine/session.hpp"
#include "io/json.hpp"
#include "util/status.hpp"

namespace wharf::io {

// ---------------------------------------------------------------------
// JSON reading
// ---------------------------------------------------------------------

/// A parsed JSON document node.  Numbers keep both integral and double
/// views (the protocol's quantities are integral).  Accessors throw
/// wharf::InvalidArgument on kind mismatches — capture() at the protocol
/// boundary turns that into an error response.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] long long as_int() const;      ///< requires an integral number
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;  ///< array elements

  /// Object member by key, or nullptr when absent (objects only).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  /// Object member by key; throws when absent.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members() const;

 private:
  friend JsonValue parse_json(const std::string&);
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  long long int_ = 0;
  double double_ = 0;
  bool integral_ = false;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one JSON document (the whole string must be consumed, modulo
/// whitespace).  Throws wharf::ParseError on malformed input.
[[nodiscard]] JsonValue parse_json(const std::string& text);

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

enum class WireKind {
  kOpenSession,
  kApplyDelta,
  kQuery,
  kDiagnostics,
  kClose,
  kShutdown,
};

/// Stable wire name of a request kind ("open_session", ...).
[[nodiscard]] const char* to_string(WireKind kind);

struct WireRequest {
  WireKind kind = WireKind::kShutdown;
  long long id = 0;
  bool has_id = false;
  std::string session;            ///< empty only for shutdown
  std::string system_text;        ///< open_session: text-format system
  std::vector<Delta> deltas;      ///< apply_delta
  std::vector<Query> queries;     ///< query
};

/// Parses one request line.  Errors (malformed JSON, unknown type or
/// kind, missing fields) come back as a Status — the caller answers with
/// an error response and keeps the stream alive.
[[nodiscard]] Expected<WireRequest> parse_request(const std::string& line);

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

/// One response line (no trailing newline): the request's echoed
/// id/type/session, the status (+ reason when non-OK), then whatever
/// `extra` writes into the still-open top-level object (e.g. a spliced
/// report).
[[nodiscard]] std::string wire_response(
    const WireRequest& request, const Status& status,
    const std::function<void(JsonWriter&)>& extra = {});

/// An error response for a line that never parsed into a request (the
/// id, if any, is unknown): {"type":"error","status":...,"reason":...}.
[[nodiscard]] std::string wire_protocol_error(const Status& status);

}  // namespace wharf::io

#endif  // WHARF_IO_WIRE_HPP
