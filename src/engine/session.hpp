/// \file session.hpp
/// Long-lived, incrementally mutable analysis sessions — the stateful
/// core of the wharf Engine API.
///
/// A Session is opened from a System (Engine::open_session, or directly
/// against an ArtifactStore) and then *kept*: clients sweeping a design
/// space (the paper's Fig. 5 / priority-search workload, SAW-style
/// interactive tooling) apply typed Deltas instead of re-shipping whole
/// systems, and query the mutated model through the same query kinds
/// Engine::run answers.  Incrementality is API semantics, not a cache
/// accident: a delta re-keys only the model slices it touches, so after
/// a pairwise priority swap on an m-chain system a query re-solves ~2 of
/// m busy windows — the store proves it via the per-stage telemetry in
/// SessionStats.
///
/// Contracts:
///  * apply() is atomic per batch — every delta validates against the
///    model the batch started from, and the first error leaves the
///    session untouched (Status out, never an exception);
///  * query answers are bit-identical to a one-shot
///    Engine::analyze/run of the mutated system, for any jobs value and
///    any cache budget (Engine::run itself is a thin adapter over an
///    ephemeral Session);
///  * **external synchronization required**: a Session is a
///    single-caller object.  One thread (or one externally locked
///    caller chain) drives apply()/serve()/query(); no member may be
///    invoked concurrently with another on the same session, stats()
///    included.  The parallelism happens *inside* (serve() spreads
///    queries over the worker pool) and *between* sessions: distinct
///    sessions of one Engine — each `wharf serve` connection's, every
///    speculate() candidate — may run concurrently without any locking,
///    sharing artifacts through the store's thread-safe single-flight
///    resolve.  That is how the search evaluator scores whole
///    neighborhoods in parallel and how the concurrent server isolates
///    clients.
///
/// The epoch/key plumbing: each applied batch advances the shared
/// store's epoch, so artifacts computed before the delta classify as
/// *hits* afterwards and the per-stage counters read as "what this
/// revision reused vs. re-solved".  A shared SliceCache memoizes
/// per-chain key fragments across revisions and speculative candidates;
/// structural deltas (anything except SetPriority) invalidate it.

#ifndef WHARF_ENGINE_SESSION_HPP
#define WHARF_ENGINE_SESSION_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "core/chain.hpp"
#include "core/model_slice.hpp"
#include "engine/engine.hpp"

namespace wharf {

// ---------------------------------------------------------------------
// Deltas
// ---------------------------------------------------------------------

/// Re-prioritizes one task ("chain.task" dotted name; names containing
/// dots are handled by trying every split — a reference resolving to
/// more than one task is refused, never guessed).  Batch several to
/// express a swap — priority uniqueness is validated once per batch, so
/// transient duplicates inside a batch are fine.
struct SetPriorityDelta {
  std::string task;  ///< dotted "chain.task" name
  Priority priority = 0;
};

/// Replaces one task's WCET.
struct SetWcetDelta {
  std::string task;  ///< dotted "chain.task" name
  Time wcet = 0;
};

/// Replaces (or removes, via nullopt) one chain's end-to-end deadline.
struct SetDeadlineDelta {
  std::string chain;
  std::optional<Time> deadline;
};

/// Replaces one chain's activation model (wharf::parse_arrival syntax,
/// e.g. "periodic(200)" or "sporadic(700)").
struct SetArrivalDelta {
  std::string chain;
  std::string arrival;
};

/// Appends a chain to the system (io::parse_chain builds one from the
/// text format).  Validated like any system construction: unique chain
/// name, globally unique priorities.
struct AddChainDelta {
  Chain chain;
};

/// Removes a chain by name.  Later queries naming it fail with
/// kNotFound; the system must keep at least one chain.
struct RemoveChainDelta {
  std::string chain;
};

/// Any one typed model mutation a session batch can carry.
using Delta = std::variant<SetPriorityDelta, SetWcetDelta, SetDeadlineDelta, SetArrivalDelta,
                           AddChainDelta, RemoveChainDelta>;

/// True for every delta kind that changes structural model content
/// (anything except SetPriority) — these invalidate the session's
/// SliceCache; priority deltas re-key through it.
[[nodiscard]] bool is_structural(const Delta& delta);

// ---------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------

/// Lifetime telemetry of one session: how many delta batches and queries
/// it served and how the shared store answered its stage lookups.  The
/// store counters are the incrementality proof — on a mutation sweep the
/// busy-window misses stay near "slices touched", far below
/// "revisions x targets".
struct SessionStats {
  std::uint64_t revision = 0;       ///< applied delta batches
  long long deltas_applied = 0;     ///< individual deltas across batches
  long long queries_served = 0;     ///< queries answered (query/serve/execute)
  std::array<StageDiagnostics, kArtifactStageCount> stages{};
  SliceCache::Stats slices;         ///< per-chain key-fragment memo reuse

  [[nodiscard]] std::size_t lookups() const;  ///< store lookups, summed over stages
  [[nodiscard]] std::size_t hits() const;     ///< resident-before-epoch lookups
  [[nodiscard]] std::size_t misses() const;   ///< lookups this session computed
  [[nodiscard]] std::size_t shared() const;   ///< single-flight joins (work coalesced)
};

// ---------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------

/// One long-lived, incrementally mutable analysis conversation.
/// Externally synchronized (single caller; see the file comment) —
/// distinct sessions are fully independent and may run concurrently.
class Session {
 public:
  /// Opens a session on `store` (which must outlive it).  Begins a fresh
  /// store epoch.  `jobs` sizes serve() parallelism and intra-ILP work
  /// stealing (1 = sequential, 0 = all hardware threads).
  Session(System system, TwcaOptions options, ArtifactStore& store, int jobs = 1);

  /// Batch-driver variant (Engine::run_batch): adopts an already-begun
  /// store epoch so sibling sessions of one batch classify hits against
  /// a common baseline.
  Session(System system, TwcaOptions options, ArtifactStore& store, int jobs,
          std::uint64_t epoch);

  ~Session();
  Session(Session&&) noexcept;
  Session& operator=(Session&&) noexcept;

  /// The current model.  The reference is invalidated by the next
  /// successful apply() (the session swaps in the rebuilt system).
  [[nodiscard]] const System& system() const;
  [[nodiscard]] const TwcaOptions& options() const;
  [[nodiscard]] std::uint64_t revision() const;

  /// Applies a delta batch atomically: all deltas are validated and
  /// applied against the current model in order, the rebuilt system is
  /// re-validated (priority uniqueness etc.), and only then does the
  /// session advance — a new revision, a new store epoch, slice-cache
  /// invalidation iff the batch was structural.  Any error returns a
  /// non-OK Status and leaves the session exactly as it was.
  Status apply(const std::vector<Delta>& deltas);

  /// A hypothetical session: the current model plus `deltas`, sharing
  /// this session's store (own epoch) and — for priority-only batches —
  /// its SliceCache, so speculative candidates reuse each other's key
  /// fragments.  Throws on invalid deltas (the search evaluator builds
  /// them by construction); `jobs` < 0 inherits this session's.
  [[nodiscard]] Session speculate(const std::vector<Delta>& deltas, int jobs = -1) const;

  /// Answers one query on the current model (same kinds and the same
  /// Status-not-exception contract as Engine::run).
  [[nodiscard]] QueryResult query(const Query& query);

  /// Answers a query batch on the worker pool and bundles it as an
  /// AnalysisReport whose diagnostics cover exactly this call.
  [[nodiscard]] AnalysisReport serve(const std::vector<Query>& queries);

  /// Building blocks for batch drivers (Engine::run_batch flattens the
  /// queries of many sessions onto one pool): execute() answers one
  /// query (`concurrent_tasks` = how many query tasks the caller runs
  /// concurrently overall), collect() bundles previously produced
  /// results with the store telemetry accumulated since the last
  /// collect()/construction.
  [[nodiscard]] QueryResult execute(const Query& query, std::size_t concurrent_tasks);
  [[nodiscard]] AnalysisReport collect(std::vector<QueryResult> results);

  /// Typed single-stage accessors for programmatic loops (the search
  /// evaluator scores candidates through these).  Core exception
  /// contract: malformed arguments throw like TwcaAnalyzer.
  [[nodiscard]] LatencyResult latency(int chain, bool without_overload = false);
  [[nodiscard]] DmmResult dmm(int chain, Count k);

  /// Scores a batch of candidate priority assignments (flat task order,
  /// applied via System::with_priorities) against this session's store —
  /// the worker half of the distributed sweep's `evaluate` request.
  /// Index-aligned with `candidates`; objectives are pure functions of
  /// the candidate, so equal inputs yield bit-equal outputs on any
  /// worker, warm or cold.  Throws (core contract) on wrong-arity or
  /// non-permutation candidates — the protocol layer captures that into
  /// an error envelope.
  [[nodiscard]] std::vector<search::Objective> evaluate_candidates(
      const std::vector<std::vector<Priority>>& candidates, Count k);

  /// Whole-request fingerprint of the current model + options (the
  /// ReportDiagnostics::system_hash of reports served at this revision).
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Lifetime telemetry snapshot (revision, deltas, store counters).
  [[nodiscard]] SessionStats stats() const;

 private:
  /// Delegation target of every constructor (and speculate()): a null
  /// `slices` means a fresh cache.
  Session(System system, TwcaOptions options, ArtifactStore& store, int jobs,
          std::uint64_t epoch, std::shared_ptr<SliceCache> slices);

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace wharf

#endif  // WHARF_ENGINE_SESSION_HPP
