/// \file pipeline.hpp
/// The staged evaluation pipeline of wharf::Engine: per-request glue
/// between the core stage-boundary functions (core/twca.hpp,
/// core/path_analysis.hpp) and the shared ArtifactStore.
///
/// A Pipeline is created per served request.  Every stage accessor
/// resolves its artifact in three steps: a request-local memo (so one
/// request never looks the same key up twice, and concurrent queries of
/// one request wait instead of duplicating work), then the shared store
/// via its single-flight resolve() (keyed by the stage's model slice;
/// concurrent *requests* — batch siblings, search candidates — needing
/// the same absent artifact share one computation), then the core
/// computation — whose upstream inputs go through the same resolution
/// recursively.  The packing-ILP solve is intercepted the same way and
/// split across the worker pool (ilp::solve_packing_split).
///
/// Path queries run through the same machinery: each per-chain budgeted
/// dmm spawns a sub-pipeline over System::with_deadline that shares the
/// store and this request's diagnostics, so path analyses reuse (and
/// populate) the very artifacts plain latency/dmm queries use.

#ifndef WHARF_ENGINE_PIPELINE_HPP
#define WHARF_ENGINE_PIPELINE_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/path_analysis.hpp"
#include "core/twca.hpp"
#include "engine/artifact_store.hpp"

namespace wharf {

class SliceCache;  // core/model_slice.hpp

/// Store telemetry of one served request, per pipeline stage.  A request
/// counts one lookup per distinct artifact it resolves, and
/// lookups == hits + misses + shared.  Hits (artifact resident before
/// the request's epoch began, see artifact_store.hpp) are deterministic
/// for any jobs value; so is misses + shared, but the split between the
/// two is not: a `shared` lookup joined a computation another thread had
/// in flight (store-level single-flight), which in a sequential run
/// would have been a plain miss.  Within run() of a request without
/// concurrent siblings, shared is zero and every counter is exactly
/// reproducible.
struct StageDiagnostics {
  std::size_t lookups = 0;         ///< distinct artifacts resolved
  std::size_t hits = 0;            ///< resident before this request's epoch
  std::size_t misses = 0;          ///< computed here (or inserted this epoch)
  std::size_t shared = 0;          ///< joined another caller's in-flight compute
  std::size_t bytes_inserted = 0;  ///< weight of artifacts this request computed
};

/// Per-request staged evaluator.  Thread-safe: the engine calls stage
/// accessors concurrently from its worker pool.
class Pipeline {
 public:
  /// `system` and `store` must outlive the pipeline; `epoch` is the
  /// request's store epoch; `jobs` sizes the intra-ILP work stealing.
  /// A non-null `slices` (also outliving the pipeline) memoizes
  /// per-chain slice strings across pipelines — sessions and the search
  /// evaluator pass one so candidates/revisions that leave a chain's
  /// priority sub-vector untouched reuse its serialized slice; the
  /// caller owns the SliceCache soundness contract (model_slice.hpp).
  Pipeline(const System& system, const TwcaOptions& options, ArtifactStore& store,
           std::uint64_t epoch, int jobs, SliceCache* slices = nullptr);
  ~Pipeline();

  Pipeline(Pipeline&&) noexcept;
  Pipeline& operator=(Pipeline&&) = delete;

  /// The system this pipeline analyzes (borrowed; see the constructor).
  [[nodiscard]] const System& system() const;

  /// Stage 1: interference context of `target` (Defs 2-5).
  [[nodiscard]] std::shared_ptr<const InterferenceContext> interference(int target);

  /// Stage 2: busy-window/latency results (Thm 1/2), full and
  /// overload-free variants.
  [[nodiscard]] std::shared_ptr<const LatencyResult> latency(int target);
  [[nodiscard]] std::shared_ptr<const LatencyResult> latency_without_overload(int target);

  /// Batches the busy-window resolution of several (chain index,
  /// without_overload) members into one store artifact: the batch's
  /// compute resolves every member through the normal per-member path
  /// (so members stay individually cached and counted) under a single
  /// coarse single-flight window — concurrent requests of the same
  /// member set join one in-flight computation instead of racing on
  /// µs-scale per-target flights.  Members are deduplicated; fewer than
  /// two distinct valid members is a no-op.  Member failures are
  /// swallowed here and surface in the individual queries.
  void prime_busy_windows(const std::vector<std::pair<int, bool>>& members);

  /// Stage 3: k-independent overload artifacts of `target`.
  [[nodiscard]] std::shared_ptr<const TargetArtifacts> overload_artifacts(int target);

  /// Stages 4+5: dmm(k) per Theorem 3, with the packing solve cached by
  /// problem content and split across the worker pool.
  [[nodiscard]] DmmResult dmm(int target, Count k);
  [[nodiscard]] std::vector<DmmResult> dmm_curve(int target, const std::vector<Count>& ks);

  /// Path queries over the same artifacts (budgeted per-chain dmm runs
  /// in sub-pipelines sharing this request's store and diagnostics).
  [[nodiscard]] PathLatencyResult path_latency(const PathSpec& path);
  [[nodiscard]] PathDmmResult path_dmm(const PathSpec& path, Count k);

  /// Snapshot of this request's per-stage telemetry.
  [[nodiscard]] std::array<StageDiagnostics, kArtifactStageCount> stage_diagnostics() const;

  /// Sub-pipeline over a variant of the system with `target`'s deadline
  /// replaced (owned copy), sharing store, epoch, jobs and diagnostics
  /// with this pipeline.  Path dmm queries use it for per-chain budgets.
  /// Memoized per (target, deadline) for the pipeline's lifetime, so a
  /// k-grid over one budget resolves each artifact once.
  [[nodiscard]] Pipeline& budgeted(int target, Time deadline);

 private:
  struct Shared;
  struct State;

  Pipeline(std::shared_ptr<const System> owned, const TwcaOptions& options,
           std::shared_ptr<Shared> shared);

  std::unique_ptr<State> state_;
};

}  // namespace wharf

#endif  // WHARF_ENGINE_PIPELINE_HPP
